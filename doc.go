// Package decorr is a from-scratch Go reproduction of "Complex Query
// Decorrelation" (Seshadri, Pirahesh, Leung; ICDE 1996): magic
// decorrelation implemented as a rewrite over a Starburst-style Query
// Graph Model, together with the full substrate the paper depends on — a
// SQL parser, the QGM plan IR, a rule-based rewrite engine, a volcano
// executor with hash joins and index access, the competing decorrelation
// algorithms (nested iteration, Kim's method with its historical COUNT
// bug, Dayal's method, Ganski/Wong), a TPC-D-style workload generator, and
// a shared-nothing parallel execution simulator for the paper's §6.
//
// # Quick start
//
//	db := decorr.EmpDept()
//	eng := decorr.NewEngine(db)
//	rows, stats, err := eng.Query(decorr.ExampleQuery, decorr.Magic)
//
// The same query can be executed under any Strategy; running it under NI
// (nested iteration) gives the semantic ground truth the rewrites are
// differentially tested against.
//
// # Inspecting plans and the rewrite
//
//	p, _ := eng.PrepareTraced(decorr.ExampleQuery, decorr.Magic)
//	fmt.Println(p.Explain())         // the decorrelated QGM
//	for _, s := range p.Trace.Steps { // Figures 2–4, stage by stage
//		fmt.Println(s.Title)
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package decorr
