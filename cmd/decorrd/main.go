// Command decorrd serves the decorrelation engine over the network.
// Clients speak the wire protocol directly or, more usually, through the
// database/sql driver in decorr/driver:
//
//	decorrd -addr 127.0.0.1:7531 -dataset empdept -emp 1000000
//
//	db, _ := sql.Open("decorr", "127.0.0.1:7531?strategy=auto")
//	rows, _ := db.Query("select name from emp where building = ?", "B1")
//
// Results stream: a million-row answer crosses the wire batch by batch
// with both peers holding one batch at a time, queries remain killable
// mid-stream (from any connection, or `\kill` in a local decorr REPL
// pointed at the same engine), and the sys.* system catalog is mounted,
// so remote clients can SELECT from sys.active_queries and
// sys.query_log like any other table.
//
// Shutdown is graceful: the first SIGINT/SIGTERM begins a drain — the
// listener closes, new sessions are refused with a retryable error, and
// in-flight queries and open cursors run to completion, bounded by
// -drain. A second signal (or the -drain deadline) forces the hard
// close. The -chaos-* flags enable seeded fault injection at the wire
// layer for the chaos harness; they are test infrastructure, not
// serving options.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"decorr"
	"decorr/internal/engine"
	"decorr/internal/faultinject"
	"decorr/internal/server"
	"decorr/internal/tpcd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7531", "listen address")
	dataset := flag.String("dataset", "empdept", "dataset: empdept or tpcd")
	sf := flag.Float64("sf", 0.1, "TPC-D scale factor (dataset=tpcd)")
	seed := flag.Int64("seed", 42, "generator seed")
	emp := flag.Int("emp", 0, "dataset=empdept: generate this many emp rows (0 = the paper's default data)")
	strategy := flag.String("strategy", "auto", "default strategy: ni | nimemo | nibatch | kim | dayal | gw | magic | optmagic | auto")
	workers := flag.Int("workers", 0, "default executor workers per query (0 = GOMAXPROCS)")
	planCache := flag.Int("plancache", 256, "prepared-plan cache capacity (0 = disabled)")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "concurrent session cap")
	fetchRows := flag.Int("fetch-rows", server.DefaultFetchRows, "default rows per fetch reply")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none)")
	maxRows := flag.Int64("max-rows", 0, "per-query row budget (0 = none)")
	maxMem := flag.Int64("max-mem", 0, "per-query tracked-byte budget (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain bound on SIGINT/SIGTERM before hard close (0 = immediate hard close)")
	handshakeTimeout := flag.Duration("handshake-timeout", server.DefaultHandshakeTimeout, "drop peers that do not complete a handshake in time (<0 = no bound)")
	readTimeout := flag.Duration("read-timeout", 0, "drop sessions idle past this between requests (0 = no bound)")
	writeTimeout := flag.Duration("write-timeout", server.DefaultWriteTimeout, "drop peers that stall a reply write past this (<0 = no bound)")
	maxActive := flag.Int("max-active-queries", 0, "shed new work while this many queries run (0 = no cap)")
	maxHeap := flag.Int64("max-heap", 0, "shed new work while the heap exceeds this many bytes (0 = no cap)")
	retryAfter := flag.Duration("retry-after", server.DefaultRetryAfter, "backoff hint sent with retryable rejections")
	chaosSeed := flag.Int64("chaos-seed", 0, "fault-injection seed for the -chaos-* rules")
	chaosReadErr := flag.Int("chaos-read-err-every", 0, "inject a read fault on ~1/N frame reads (0 = off)")
	chaosWriteErr := flag.Int("chaos-write-err-every", 0, "inject a torn frame on ~1/N frame writes (0 = off)")
	chaosLatencyEvery := flag.Int("chaos-latency-every", 0, "inject -chaos-latency on ~1/N frame reads and writes (0 = off)")
	chaosLatency := flag.Duration("chaos-latency", 5*time.Millisecond, "injected frame latency for -chaos-latency-every")
	flag.Parse()

	s, ok := server.ParseStrategy(*strategy)
	if !ok {
		fatalf("unknown strategy %q", *strategy)
	}
	if *workers < 0 || *planCache < 0 || *maxSessions <= 0 || *fetchRows <= 0 {
		fatalf("-workers and -plancache must be >= 0; -max-sessions and -fetch-rows must be > 0")
	}
	if *timeout < 0 || *maxRows < 0 || *maxMem < 0 {
		fatalf("-timeout, -max-rows, and -max-mem must be >= 0 (0 = unlimited)")
	}
	if *drain < 0 || *maxActive < 0 || *maxHeap < 0 || *retryAfter < 0 {
		fatalf("-drain, -max-active-queries, -max-heap, and -retry-after must be >= 0")
	}
	if *chaosReadErr < 0 || *chaosWriteErr < 0 || *chaosLatencyEvery < 0 || *chaosLatency < 0 {
		fatalf("the -chaos-* rates and latency must be >= 0")
	}

	if *chaosReadErr > 0 || *chaosWriteErr > 0 || *chaosLatencyEvery > 0 {
		faultinject.Enable(faultinject.Plan{
			Seed: *chaosSeed,
			Rules: map[faultinject.Point]faultinject.Rule{
				faultinject.WireRead: {
					ErrEvery:     *chaosReadErr,
					LatencyEvery: *chaosLatencyEvery,
					Latency:      *chaosLatency,
				},
				faultinject.WireWrite: {
					ErrEvery:     *chaosWriteErr,
					LatencyEvery: *chaosLatencyEvery,
					Latency:      *chaosLatency,
				},
			},
		})
		fmt.Fprintf(os.Stderr, "decorrd: CHAOS enabled (seed %d, read-err 1/%d, write-err 1/%d, latency 1/%d x %s)\n",
			*chaosSeed, *chaosReadErr, *chaosWriteErr, *chaosLatencyEvery, *chaosLatency)
	}

	var db *decorr.DB
	switch strings.ToLower(*dataset) {
	case "empdept":
		if *emp > 0 {
			db = tpcd.EmpDeptSized(40, *emp, 6, *seed)
		} else {
			db = decorr.EmpDept()
		}
	case "tpcd":
		db = decorr.TPCD(*sf, *seed)
	default:
		fatalf("unknown dataset %q (want empdept or tpcd)", *dataset)
	}

	eng := engine.New(db)
	eng.Workers = *workers
	eng.Limits = decorr.Limits{
		Timeout:             *timeout,
		MaxOutputRows:       *maxRows,
		MaxIntermediateRows: *maxRows,
		MaxTrackedBytes:     *maxMem,
	}
	if *planCache > 0 {
		eng.EnablePlanCache(*planCache)
	}
	eng.MountSystemCatalog()

	srv := server.New(server.Config{
		Engine:           eng,
		Strategy:         s,
		MaxSessions:      *maxSessions,
		FetchRows:        *fetchRows,
		HandshakeTimeout: *handshakeTimeout,
		ReadTimeout:      *readTimeout,
		WriteTimeout:     *writeTimeout,
		MaxActiveQueries: *maxActive,
		MaxHeapBytes:     uint64(*maxHeap),
		RetryAfter:       *retryAfter,
	})

	// First signal: graceful drain (in-flight queries finish, new work is
	// refused with a retryable error). Second signal or the -drain
	// deadline: hard close. drained resolves either way so main can exit
	// cleanly after Serve returns.
	drained := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		defer close(drained)
		<-sigs
		if *drain <= 0 {
			fmt.Fprintln(os.Stderr, "decorrd: shutting down")
			srv.Close()
			return
		}
		fmt.Fprintf(os.Stderr, "decorrd: draining (up to %s; signal again to force)\n", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		go func() {
			select {
			case <-sigs:
				fmt.Fprintln(os.Stderr, "decorrd: forcing shutdown")
				cancel()
			case <-ctx.Done():
			}
		}()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "decorrd: drain cut short: %v\n", err)
			return
		}
		fmt.Fprintln(os.Stderr, "decorrd: drained")
	}()

	// Listen before announcing, so the printed address is the bound one
	// (with -addr 127.0.0.1:0 the kernel picks the port) and a parent
	// process can scrape it from stderr once it appears.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "decorrd: serving %s on %s (strategy %s)\n", *dataset, ln.Addr(), s)
	if err := srv.Serve(ln); err != nil {
		fatalf("%v", err)
	}
	// Serve returns as soon as the listener closes; the drain itself may
	// still be completing. Wait for it so in-flight streams finish before
	// the process exits.
	<-drained
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "decorrd: "+format+"\n", args...)
	os.Exit(1)
}
