// Command decorrd serves the decorrelation engine over the network.
// Clients speak the wire protocol directly or, more usually, through the
// database/sql driver in decorr/driver:
//
//	decorrd -addr 127.0.0.1:7531 -dataset empdept -emp 1000000
//
//	db, _ := sql.Open("decorr", "127.0.0.1:7531?strategy=auto")
//	rows, _ := db.Query("select name from emp where building = ?", "B1")
//
// Results stream: a million-row answer crosses the wire batch by batch
// with both peers holding one batch at a time, queries remain killable
// mid-stream (from any connection, or `\kill` in a local decorr REPL
// pointed at the same engine), and the sys.* system catalog is mounted,
// so remote clients can SELECT from sys.active_queries and
// sys.query_log like any other table.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"decorr"
	"decorr/internal/engine"
	"decorr/internal/server"
	"decorr/internal/tpcd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7531", "listen address")
	dataset := flag.String("dataset", "empdept", "dataset: empdept or tpcd")
	sf := flag.Float64("sf", 0.1, "TPC-D scale factor (dataset=tpcd)")
	seed := flag.Int64("seed", 42, "generator seed")
	emp := flag.Int("emp", 0, "dataset=empdept: generate this many emp rows (0 = the paper's default data)")
	strategy := flag.String("strategy", "auto", "default strategy: ni | nimemo | nibatch | kim | dayal | gw | magic | optmagic | auto")
	workers := flag.Int("workers", 0, "default executor workers per query (0 = GOMAXPROCS)")
	planCache := flag.Int("plancache", 256, "prepared-plan cache capacity (0 = disabled)")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "concurrent session cap")
	fetchRows := flag.Int("fetch-rows", server.DefaultFetchRows, "default rows per fetch reply")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none)")
	maxRows := flag.Int64("max-rows", 0, "per-query row budget (0 = none)")
	maxMem := flag.Int64("max-mem", 0, "per-query tracked-byte budget (0 = none)")
	flag.Parse()

	s, ok := server.ParseStrategy(*strategy)
	if !ok {
		fatalf("unknown strategy %q", *strategy)
	}
	if *workers < 0 || *planCache < 0 || *maxSessions <= 0 || *fetchRows <= 0 {
		fatalf("-workers and -plancache must be >= 0; -max-sessions and -fetch-rows must be > 0")
	}
	if *timeout < 0 || *maxRows < 0 || *maxMem < 0 {
		fatalf("-timeout, -max-rows, and -max-mem must be >= 0 (0 = unlimited)")
	}

	var db *decorr.DB
	switch strings.ToLower(*dataset) {
	case "empdept":
		if *emp > 0 {
			db = tpcd.EmpDeptSized(40, *emp, 6, *seed)
		} else {
			db = decorr.EmpDept()
		}
	case "tpcd":
		db = decorr.TPCD(*sf, *seed)
	default:
		fatalf("unknown dataset %q (want empdept or tpcd)", *dataset)
	}

	eng := engine.New(db)
	eng.Workers = *workers
	eng.Limits = decorr.Limits{
		Timeout:             *timeout,
		MaxOutputRows:       *maxRows,
		MaxIntermediateRows: *maxRows,
		MaxTrackedBytes:     *maxMem,
	}
	if *planCache > 0 {
		eng.EnablePlanCache(*planCache)
	}
	eng.MountSystemCatalog()

	srv := server.New(server.Config{
		Engine:      eng,
		Strategy:    s,
		MaxSessions: *maxSessions,
		FetchRows:   *fetchRows,
	})

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "decorrd: shutting down")
		srv.Close()
	}()

	// Listen before announcing, so the printed address is the bound one
	// (with -addr 127.0.0.1:0 the kernel picks the port) and a parent
	// process can scrape it from stderr once it appears.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "decorrd: serving %s on %s (strategy %s)\n", *dataset, ln.Addr(), s)
	if err := srv.Serve(ln); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "decorrd: "+format+"\n", args...)
	os.Exit(1)
}
