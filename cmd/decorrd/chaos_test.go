package main

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	decdrv "decorr/driver"
	"decorr/internal/engine"
	"decorr/internal/tpcd"
	"decorr/internal/trace"
	"decorr/internal/wire"
)

// TestChaosSmoke is the `make chaos-smoke` target: the serving layer's
// end-to-end robustness contract under network faults and shutdown.
//
// wire-faults starts a real decorrd subprocess with seeded fault
// injection at every protocol frame read and write (torn frames,
// abandoned reads, injected latency), hammers it with concurrent
// database/sql clients, and SIGTERMs it mid-run. Every client-visible
// outcome must be either the exact correct result (bag-compared against
// a fault-free in-process run of the same seeded dataset) or an error
// cleanly classifiable with errors.Is/As — never a wrong answer, an
// unexplained failure, or a hang. The process must exit 0.
//
// drain-stream pins the graceful-drain guarantee without chaos: a
// million-row stream is mid-flight when SIGTERM arrives; new work must
// be refused with a retryable CodeUnavailable the driver backs off on,
// the in-flight stream must complete to the last row, and the process
// must then exit 0.
//
// With BENCH_CHAOS_JSON set (the Makefile sets it), the run's outcome
// counts are written there as machine-readable results.
func TestChaosSmoke(t *testing.T) {
	var res chaosResult
	res.Short = testing.Short()
	t.Run("wire-faults", func(t *testing.T) { chaosWireFaults(t, &res) })
	t.Run("drain-stream", func(t *testing.T) { chaosDrainStream(t, &res) })
	if path := os.Getenv("BENCH_CHAOS_JSON"); path != "" && !t.Failed() {
		writeChaosBench(t, path, res)
	}
}

// chaosQuery is one workload entry: SQL plus its fault-free reference
// bag.
type chaosQuery struct {
	sql  string
	want []string
}

func chaosWireFaults(t *testing.T, res *chaosResult) {
	const (
		nEmp    = 5000
		clients = 6
		opsEach = 30
	)

	// Fault-free reference bags from an in-process engine over the exact
	// dataset decorrd will serve (same generator parameters and seed).
	eng := engine.New(tpcd.EmpDeptSized(40, nEmp, 6, 42))
	queries := []chaosQuery{
		{sql: tpcd.ExampleQuery},
		{sql: "select name, building from emp where building = 'B1'"},
		{sql: "select name, budget from dept where budget > 100"},
		{sql: "select count(*) from emp"},
	}
	for i := range queries {
		rows, _, err := eng.Query(queries[i].sql, engine.Auto)
		if err != nil {
			t.Fatalf("reference run of %q: %v", queries[i].sql, err)
		}
		bag := make([]string, len(rows))
		for j, r := range rows {
			s := ""
			for k, v := range r {
				if k > 0 {
					s += "|"
				}
				s += v.String()
			}
			bag[j] = s
		}
		sort.Strings(bag)
		queries[i].want = bag
	}

	p := startDecorrdProc(t, nEmp,
		"-max-sessions", "128",
		"-drain", "60s",
		"-chaos-seed", "7",
		"-chaos-read-err-every", "40",
		"-chaos-write-err-every", "40",
		"-chaos-latency-every", "25",
		"-chaos-latency", "2ms",
	)

	var (
		mu           sync.Mutex
		categories   = map[string]int{}
		unclassified []string
		wrong        []string
		opsDone      atomic.Int64
		okOps        atomic.Int64
		termOnce     sync.Once
	)
	record := func(cat, detail string) {
		mu.Lock()
		defer mu.Unlock()
		switch cat {
		case "":
			unclassified = append(unclassified, detail)
		case "WRONG":
			wrong = append(wrong, detail)
		default:
			categories[cat]++
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			dsn := fmt.Sprintf("decorr://%s?fetch=512&retries=6&retry_seed=%d&dial_timeout=2s", p.addr, worker+1)
			db, err := sql.Open("decorr", dsn)
			if err != nil {
				record("", fmt.Sprintf("open: %v", err))
				return
			}
			defer db.Close()
			for op := 0; op < opsEach; op++ {
				q := queries[(worker*opsEach+op)%len(queries)]
				runChaosOp(db, q, record, &okOps)
				// Halfway through the total workload, begin a graceful
				// drain under full fault load.
				if opsDone.Add(1) == int64(clients*opsEach/2) {
					termOnce.Do(func() { p.signal(syscall.SIGTERM) })
				}
			}
		}(i)
	}
	wg.Wait()
	termOnce.Do(func() { p.signal(syscall.SIGTERM) }) // in case ops raced the halfway mark

	if err := p.waitExit(t, 90*time.Second); err != nil {
		t.Errorf("decorrd exit under chaos+drain = %v, want status 0", err)
	}

	mu.Lock()
	defer mu.Unlock()
	t.Logf("chaos outcomes: %d ok, clean errors %v", okOps.Load(), categories)
	if len(wrong) > 0 {
		t.Errorf("WRONG ANSWERS under faults (%d):\n%s", len(wrong), wrong[0])
	}
	if len(unclassified) > 0 {
		t.Errorf("unclassifiable errors (%d), e.g.:\n%s", len(unclassified), unclassified[0])
	}
	if okOps.Load() == 0 {
		t.Error("no operation ever succeeded under the configured fault rates")
	}
	res.Ops = int64(clients * opsEach)
	res.OkOps = okOps.Load()
	res.CleanErrors = map[string]int{}
	for k, v := range categories {
		res.CleanErrors[k] = v
	}
	res.WrongAnswers = len(wrong)
	res.Unclassified = len(unclassified)
}

// runChaosOp runs one query and either verifies its rows against the
// reference bag or classifies its error.
func runChaosOp(db *sql.DB, q chaosQuery, record func(cat, detail string), okOps *atomic.Int64) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rows, err := db.QueryContext(ctx, q.sql)
	if err != nil {
		record(classifyChaosErr(err), fmt.Sprintf("query %q: %v", q.sql, err))
		return
	}
	cols, err := rows.Columns()
	if err != nil {
		rows.Close()
		record(classifyChaosErr(err), fmt.Sprintf("columns: %v", err))
		return
	}
	var got []string
	for rows.Next() {
		vals := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range vals {
			ptrs[i] = &vals[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			rows.Close()
			record(classifyChaosErr(err), fmt.Sprintf("scan: %v", err))
			return
		}
		s := ""
		for i, v := range vals {
			if i > 0 {
				s += "|"
			}
			s += fmt.Sprintf("%v", v)
		}
		got = append(got, s)
	}
	err = rows.Err()
	rows.Close()
	if err != nil {
		record(classifyChaosErr(err), fmt.Sprintf("stream %q: %v", q.sql, err))
		return
	}
	sort.Strings(got)
	if len(got) != len(q.want) {
		record("WRONG", fmt.Sprintf("%q: %d rows, want %d", q.sql, len(got), len(q.want)))
		return
	}
	for i := range got {
		if got[i] != q.want[i] {
			record("WRONG", fmt.Sprintf("%q row %d: %q != %q", q.sql, i, got[i], q.want[i]))
			return
		}
	}
	okOps.Add(1)
}

// classifyChaosErr buckets an error by the typed identity a client is
// entitled to rely on. An empty string means unclassifiable — a test
// failure.
func classifyChaosErr(err error) string {
	var werr *wire.Error
	switch {
	case errors.As(err, &werr):
		// Typed server error; includes the exec sentinels via wire.Error.Is.
		return fmt.Sprintf("wire-code-%d", werr.Code)
	case errors.Is(err, decdrv.ErrTransport):
		return "transport"
	case errors.Is(err, sqldriver.ErrBadConn), errors.Is(err, sql.ErrConnDone):
		return "badconn"
	case errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, io.EOF):
		return "eof"
	case errors.Is(err, syscall.ECONNREFUSED), errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.EPIPE):
		return "conn"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "ctx"
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return "net"
	}
	return ""
}

func chaosDrainStream(t *testing.T, res *chaosResult) {
	nEmp := 1_000_000
	if testing.Short() {
		nEmp = 100_000
	}
	p := startDecorrdProc(t, nEmp, "-drain", "120s")

	db, err := sql.Open("decorr", fmt.Sprintf("decorr://%s?fetch=4096&retries=6&retry_seed=9&dial_timeout=2s", p.addr))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Ping(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	rows, err := db.Query("select name from emp")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var n int64
	for n < 1000 && rows.Next() {
		n++
	}
	if n < 1000 {
		t.Fatalf("stream ended after %d rows: %v", n, rows.Err())
	}

	// Establish a wire-level session with an open mid-stream cursor
	// before the drain. Such a session provably survives the drain to
	// serve its fetches, so it observes the refusal of new work
	// deterministically — a raw pre-accepted connection would race the
	// listener close in the kernel's accept backlog.
	wc := dialWire(t, p.addr)
	defer wc.Close()
	wc.SetDeadline(time.Now().Add(60 * time.Second))
	if err := wire.Write(wc, &wire.Execute{SQL: "select name from emp"}); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.Read(wc)
	if err != nil {
		t.Fatal(err)
	}
	execOK, ok := reply.(*wire.ExecuteOK)
	if !ok {
		t.Fatalf("Execute reply %T: %v", reply, reply)
	}
	if err := wire.Write(wc, &wire.Fetch{CursorID: execOK.CursorID, MaxRows: 128}); err != nil {
		t.Fatal(err)
	}
	if reply, err = wire.Read(wc); err != nil {
		t.Fatal(err)
	}
	if _, ok := reply.(*wire.Batch); !ok {
		t.Fatalf("Fetch reply %T: %v", reply, reply)
	}

	if err := p.signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The listener closing is the observable "drain has begun" edge.
	deadline := time.Now().Add(10 * time.Second)
	for {
		nc, err := net.DialTimeout("tcp", p.addr, time.Second)
		if err != nil {
			break
		}
		nc.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting 10s after SIGTERM")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// New work on the surviving session is refused with the retryable
	// drain code — the typed signal a client backs off on — while its
	// open cursor keeps streaming.
	if err := wire.Write(wc, &wire.Execute{SQL: "select count(*) from emp"}); err != nil {
		t.Fatal(err)
	}
	if reply, err = wire.Read(wc); err != nil {
		t.Fatal(err)
	}
	if e, ok := reply.(*wire.Error); !ok || e.Code != wire.CodeUnavailable || !e.IsRetryable() || e.RetryAfterMs == 0 {
		t.Errorf("Execute during drain replied %T %v, want retryable CodeUnavailable with a retry-after hint", reply, reply)
	}
	// Release the session's cursor so it cannot hold the drain open.
	if err := wire.Write(wc, &wire.CloseCursor{CursorID: execOK.CursorID}); err != nil {
		t.Fatal(err)
	}
	if reply, err = wire.Read(wc); err != nil {
		t.Fatal(err)
	}
	if _, ok := reply.(*wire.CloseOK); !ok {
		t.Fatalf("CloseCursor reply %T: %v", reply, reply)
	}
	wc.Close()

	// A new pool connection cannot be dialed during drain: the driver
	// backs off and retries (visible in its retry counter) before the
	// failure surfaces as a clean, classifiable error.
	retriesBefore := trace.Metrics.Counter("driver.retries").Value()
	_, qerr := db.Query("select name from dept")
	if qerr == nil {
		t.Error("new query during drain unexpectedly succeeded")
	} else if classifyChaosErr(qerr) == "" {
		t.Errorf("drain-time query error is unclassifiable: %v", qerr)
	}
	if got := trace.Metrics.Counter("driver.retries").Value(); got <= retriesBefore {
		t.Errorf("driver.retries did not move during drain (%d -> %d)", retriesBefore, got)
	}

	// The in-flight stream completes to the last row while the server
	// drains around it.
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("stream under drain failed after %d rows: %v", n, err)
	}
	rows.Close()
	if n != int64(nEmp) {
		t.Fatalf("stream under drain returned %d rows, want %d", n, nEmp)
	}
	elapsed := time.Since(start)

	// With its last cursor closed, the drain completes and the process
	// exits cleanly.
	if err := p.waitExit(t, 60*time.Second); err != nil {
		t.Errorf("decorrd exit after drain = %v, want status 0", err)
	}
	res.DrainRows = n
	res.DrainSeconds = elapsed.Seconds()
	t.Logf("drained %d rows in %s with a graceful shutdown mid-stream", n, elapsed.Round(time.Millisecond))
}

type chaosResult struct {
	Ops          int64          `json:"ops"`
	OkOps        int64          `json:"ok_ops"`
	CleanErrors  map[string]int `json:"clean_errors"`
	WrongAnswers int            `json:"wrong_answers"`
	Unclassified int            `json:"unclassified_errors"`
	DrainRows    int64          `json:"drain_rows"`
	DrainSeconds float64        `json:"drain_seconds"`
	Short        bool           `json:"short"`
}

func writeChaosBench(t *testing.T, path string, r chaosResult) {
	t.Helper()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	t.Logf("wrote %s", path)
}
