package main

import (
	"bufio"
	"context"
	"database/sql"
	"encoding/json"
	"errors"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"decorr"
	_ "decorr/driver"
	"decorr/internal/server"
	"decorr/internal/wire"
)

// TestServerSmoke is the `make server-smoke` target: build and start the
// real decorrd binary on a million-row dataset (exactly the package
// documentation's `decorrd -emp 1000000`), run a database/sql client
// against it from this process, and pin the two load-bearing claims of
// the network path —
//
//  1. the million-row result streams end to end in constant memory on
//     both sides of the wire: the client's peak heap (runtime.ReadMemStats
//     here) stays an order of magnitude below the materialized result,
//     and the server's peak heap (Status frames polled over a second
//     connection mid-stream) never grows a result buffer on top of the
//     stored table; and
//
//  2. a concurrent out-of-band Cancel — victim ID discovered by
//     SELECTing sys.active_queries over the wire, kill delivered on
//     another connection — terminates the victim's stream client-side
//     with the typed decorr.ErrCanceled sentinel, and the pool survives.
//
// With BENCH_SERVER_JSON set (the Makefile sets it), throughput and the
// peak heaps are written there as machine-readable results.
func TestServerSmoke(t *testing.T) {
	nEmp := 1_000_000
	if testing.Short() {
		nEmp = 100_000
	}

	addr := startDecorrd(t, nEmp)

	// Server-side heap watcher: a raw protocol connection polling Status
	// frames for the peak across the whole run.
	var peakServerHeap atomic.Uint64
	stopStatus := make(chan struct{})
	statusDone := make(chan struct{})
	sc := dialWire(t, addr)
	defer sc.Close()
	serverHeap := func() uint64 {
		if err := wire.Write(sc, &wire.Status{}); err != nil {
			return 0
		}
		reply, err := wire.Read(sc)
		if err != nil {
			return 0
		}
		st, ok := reply.(*wire.StatusOK)
		if !ok {
			return 0
		}
		if cur := peakServerHeap.Load(); st.HeapAlloc > cur {
			peakServerHeap.Store(st.HeapAlloc)
		}
		return st.HeapAlloc
	}
	baselineServerHeap := serverHeap()
	if baselineServerHeap == 0 {
		t.Fatal("no Status reply from decorrd")
	}
	go func() {
		defer close(statusDone)
		for {
			select {
			case <-stopStatus:
				return
			case <-time.After(5 * time.Millisecond):
			}
			serverHeap()
		}
	}()
	defer func() {
		close(stopStatus)
		<-statusDone
	}()

	db, err := sql.Open("decorr", "decorr://"+addr+"?fetch=4096")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	// --- Claim 1: the million-row stream, constant memory on both sides.
	stmt, err := db.Prepare("select name, building from emp where building <> ?")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()

	var peakClientHeap uint64
	sampleClient := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peakClientHeap {
			peakClientHeap = ms.HeapAlloc
		}
	}
	sampleClient()

	start := time.Now()
	rows, err := stmt.Query("no-such-building")
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	var name, building string
	for rows.Next() {
		if n == 0 || n == int64(nEmp)/2 {
			// Spot-check decoding without paying Scan on every row.
			if err := rows.Scan(&name, &building); err != nil {
				t.Fatal(err)
			}
			if name == "" || building == "" {
				t.Fatalf("row %d: empty values %q %q", n, name, building)
			}
		}
		n++
		if n%100_000 == 0 {
			sampleClient()
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	elapsed := time.Since(start)
	sampleClient()

	if n != int64(nEmp) {
		t.Fatalf("streamed %d rows, want %d", n, nEmp)
	}

	// The client holds one fetch batch (4096 rows) at a time; a
	// materialized million-row result would be well north of 100 MB
	// (row headers plus two string-bearing values per row). 64 MB leaves
	// room for the test binary and GC pacing but not for the result.
	const clientBudget = 64 << 20
	if peakClientHeap > clientBudget {
		t.Errorf("client peak heap %d bytes over the %d budget", peakClientHeap, clientBudget)
	}
	// The server's only resident data is the stored table (the baseline);
	// streaming must not stack a result buffer on top of it. decorrd runs
	// under GOGC=40 (set by startDecorrd) so transient batch garbage
	// cannot legitimately double the heap, which keeps the bound sharp:
	// a buffered copy of the result (~the table's own size again) cannot
	// fit in the allowance.
	serverBudget := baselineServerHeap + baselineServerHeap/2 + 16<<20
	if peak := peakServerHeap.Load(); peak > serverBudget {
		t.Errorf("server peak heap %d bytes over the %d budget (baseline %d): a result buffer is growing with the stream",
			peak, serverBudget, baselineServerHeap)
	}

	// --- Claim 2: concurrent kill, typed sentinel client-side.
	victim, err := db.Query("select name, building from emp")
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	for i := 0; i < 10; i++ {
		if !victim.Next() {
			t.Fatalf("victim ended after %d rows: %v", i, victim.Err())
		}
	}
	// The victim idles between fetches, so sys.active_queries (read over
	// the same pool) shows it; filter out the introspection query itself.
	var victimID int64
	ids, err := db.Query("select id, query from sys.active_queries")
	if err != nil {
		t.Fatal(err)
	}
	for ids.Next() {
		var id int64
		var text string
		if err := ids.Scan(&id, &text); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(text, "active_queries") {
			victimID = id
		}
	}
	if err := ids.Err(); err != nil {
		t.Fatal(err)
	}
	ids.Close()
	if victimID == 0 {
		t.Fatal("victim query not visible in sys.active_queries")
	}
	kc := dialWire(t, addr)
	defer kc.Close()
	if err := wire.Write(kc, &wire.Cancel{QueryID: victimID}); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.Read(kc)
	if err != nil {
		t.Fatal(err)
	}
	if ok, isOK := reply.(*wire.KillOK); !isOK || !ok.Found {
		t.Fatalf("kill reply %#v", reply)
	}
	for victim.Next() {
	}
	if err := victim.Err(); !errors.Is(err, decorr.ErrCanceled) {
		t.Fatalf("victim terminal error %v does not match decorr.ErrCanceled", err)
	}
	// The pool is not poisoned by its query being killed.
	var depts int64
	if err := db.QueryRow("select count(*) from dept").Scan(&depts); err != nil {
		t.Fatalf("pool unusable after kill: %v", err)
	}

	t.Logf("streamed %d rows in %s (%.0f rows/sec); heap: server baseline=%d peak=%d, client peak=%d",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(),
		baselineServerHeap, peakServerHeap.Load(), peakClientHeap)

	if path := os.Getenv("BENCH_SERVER_JSON"); path != "" {
		writeBench(t, path, benchResult{
			Rows:               n,
			Seconds:            elapsed.Seconds(),
			RowsPerSec:         float64(n) / elapsed.Seconds(),
			FetchRows:          4096,
			ServerBaselineHeap: baselineServerHeap,
			PeakServerHeap:     peakServerHeap.Load(),
			PeakClientHeap:     peakClientHeap,
			Short:              testing.Short(),
		})
	}
}

// startDecorrd builds the decorrd binary and starts it on a kernel-picked
// port serving a sized emp table, returning the bound address scraped
// from its startup line. GOGC=40 keeps the server's heap tracking its
// live set, so Status-frame peaks measure residency, not GC slack.
func startDecorrd(t *testing.T, nEmp int) (addr string) {
	t.Helper()
	return startDecorrdProc(t, nEmp).addr
}

// decorrdProc is a running decorrd subprocess: its bound address, its
// process handle (for signals), and its exit status.
type decorrdProc struct {
	cmd    *exec.Cmd
	addr   string
	exited chan error // buffered; receives cmd.Wait() exactly once
}

// signal delivers sig to the subprocess (SIGTERM begins a graceful
// drain; a second one forces the hard close).
func (p *decorrdProc) signal(sig os.Signal) error { return p.cmd.Process.Signal(sig) }

// waitExit blocks until the subprocess exits or the timeout fires,
// returning its Wait error (nil = exit status 0).
func (p *decorrdProc) waitExit(t *testing.T, timeout time.Duration) error {
	t.Helper()
	select {
	case err := <-p.exited:
		p.exited <- err // re-arm for the Cleanup reader
		return err
	case <-time.After(timeout):
		t.Fatalf("decorrd did not exit within %s", timeout)
		return nil
	}
}

// startDecorrdProc builds and starts decorrd with the standard dataset
// flags plus extraArgs, waits for the startup line, and returns the
// process handle.
func startDecorrdProc(t *testing.T, nEmp int, extraArgs ...string) *decorrdProc {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "decorrd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	args := []string{
		"-addr", "127.0.0.1:0",
		"-dataset", "empdept",
		"-emp", strconv.Itoa(nEmp),
		"-seed", "42",
	}
	args = append(args, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), "GOGC=40")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 2)
	go func() {
		err := cmd.Wait()
		exited <- err
		exited <- err
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-exited
	})

	// The "serving ... on HOST:PORT" line appears only after Listen
	// succeeded, so once parsed the server is accepting.
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, " on ") {
				select {
				case lines <- line:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case line := <-lines:
		fields := strings.Fields(line)
		for i, f := range fields {
			if f == "on" && i+1 < len(fields) {
				addr = fields[i+1]
			}
		}
		if addr == "" {
			t.Fatalf("no address in startup line %q", line)
		}
	case err := <-exited:
		t.Fatalf("decorrd exited before serving: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("decorrd did not start within 60s")
	}
	return &decorrdProc{cmd: cmd, addr: addr, exited: exited}
}

type benchResult struct {
	Rows               int64   `json:"rows"`
	Seconds            float64 `json:"seconds"`
	RowsPerSec         float64 `json:"rows_per_sec"`
	FetchRows          int     `json:"fetch_rows"`
	ServerBaselineHeap uint64  `json:"server_baseline_heap_bytes"`
	PeakServerHeap     uint64  `json:"peak_server_heap_bytes"`
	PeakClientHeap     uint64  `json:"peak_client_heap_bytes"`
	Short              bool    `json:"short"`
}

func writeBench(t *testing.T, path string, r benchResult) {
	t.Helper()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	t.Logf("wrote %s", path)
}

// dialWire opens and handshakes one raw protocol connection.
func dialWire(t *testing.T, addr string) net.Conn {
	t.Helper()
	var d net.Dialer
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(nc, &wire.Hello{Version: wire.Version}); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.Read(nc)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reply.(*wire.HelloOK); !ok {
		t.Fatalf("handshake reply %T: %v", reply, reply)
	}
	return nc
}

// The smoke test reuses main's building blocks; keep the flag-validation
// helpers honest too.
func TestParseStrategyTable(t *testing.T) {
	for _, name := range []string{"ni", "nimemo", "nibatch", "kim", "dayal", "gw", "magic", "optmagic", "auto"} {
		if _, ok := server.ParseStrategy(name); !ok {
			t.Errorf("strategy %q missing from the server table", name)
		}
	}
	if _, ok := server.ParseStrategy("bogus"); ok {
		t.Error("bogus strategy accepted")
	}
}
