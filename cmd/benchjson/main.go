// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON array, one object per benchmark result:
//
//	go test -bench 'BenchmarkFigure[5-9]' -benchtime=1x . | benchjson > BENCH_exec.json
//
// Each object carries the benchmark name (procs suffix split off),
// iteration count, ns/op, and every custom metric the benchmark reported
// (rows/op, speedup/op, ...). Non-benchmark lines are passed through to
// stderr so failures stay visible in CI logs.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []result
	ok := true
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			fmt.Fprintln(os.Stderr, line)
			if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL") {
				ok = false
			}
			continue
		}
		if r, err := parseLine(line); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
		} else {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []result{} // emit [] rather than null for empty runs
	}
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	if !ok {
		os.Exit(1)
	}
}

// parseLine decodes one benchmark result line, e.g.
//
//	BenchmarkFigure5/magic-8  3  431002 ns/op  12.0 rows/op  2.1 speedup/op
func parseLine(line string) (result, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return result{}, fmt.Errorf("too few fields")
	}
	r := result{Name: f[0], Procs: 1, Metrics: map[string]float64{}}
	if i := strings.LastIndex(f[0], "-"); i >= 0 {
		if p, err := strconv.Atoi(f[0][i+1:]); err == nil {
			r.Name, r.Procs = f[0][:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, fmt.Errorf("iterations: %w", err)
	}
	r.Iterations = iters
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, fmt.Errorf("value %q: %w", f[i], err)
		}
		if f[i+1] == "ns/op" {
			r.NsPerOp = v
		} else {
			r.Metrics[f[i+1]] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, nil
}
