package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"decorr/internal/differ"
)

// runFuzz is the `decorr fuzz` subcommand: it drives the differential
// correctness harness (internal/differ) and returns the process exit code —
// 0 when every variant agreed with the nested-iteration oracle (modulo the
// Kim allowlist), 1 otherwise.
func runFuzz(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	seed := fs.Int64("seed", 42, "generator seed; (seed, n) identifies the run exactly")
	n := fs.Int("n", 200, "number of generated statements")
	size := fs.Int("size", 8, "database row-count knob")
	verbose := fs.Bool("v", false, "log every generated statement")
	faults := fs.Bool("faults", false, "run the seeded fault-injection sweep instead of the plain differential run")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `usage: decorr fuzz [-seed N] [-n QUERIES] [-size ROWS] [-faults] [-v]

Generates random correlated queries over the EMP/DEPT and TPC-D schemas and
cross-checks every decorrelation strategy and knob combination against
nested iteration. Divergences are shrunk to minimal reproducers and printed
as ready-to-paste regression tests.

With -faults, every strategy × worker-count combination instead runs under
seeded fault injection (errors, panics, and latency at storage scans, hash
builds, and morsel claims); each run must either agree with the no-fault
oracle or fail with a clean typed error — never a wrong answer, a hang, or
a crash.
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *faults {
		rep := differ.FaultSweep(differ.FaultConfig{Seed: *seed, N: *n, Size: *size, Out: out, Verbose: *verbose})
		if !rep.Clean() {
			fmt.Fprintf(out, "FAIL: %d fault-contract violation(s)\n", len(rep.Failures))
			return 1
		}
		fmt.Fprintln(out, "PASS: every faulted run returned correct results or a clean typed error")
		return 0
	}
	rep := differ.Run(differ.Config{Seed: *seed, N: *n, Size: *size, Out: out, Verbose: *verbose})
	if !rep.Clean() {
		fmt.Fprintf(out, "FAIL: %d divergence(s)\n", len(rep.Divergences))
		return 1
	}
	fmt.Fprintln(out, "PASS: all strategies agree with nested iteration")
	return 0
}

// fuzzMain dispatches the subcommand form before flag parsing sees it.
func fuzzMain() {
	if len(os.Args) > 1 && os.Args[1] == "fuzz" {
		os.Exit(runFuzz(os.Args[2:], os.Stdout))
	}
}
