package main

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"decorr"
	"decorr/internal/qgm"
	"decorr/internal/rewrite"
)

func TestRunFuzzClean(t *testing.T) {
	var out strings.Builder
	code := runFuzz([]string{"-seed", "42", "-n", "15"}, &out)
	if code != 0 {
		t.Fatalf("fuzz smoke returned %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("missing PASS line:\n%s", out.String())
	}
}

func TestExitCode(t *testing.T) {
	if got := exitCode(errors.New("parse error")); got != 1 {
		t.Errorf("plain error: exit code %d, want 1", got)
	}
	wrapped := fmt.Errorf("rewrite: no fixpoint after 64 passes: %w", rewrite.ErrNoFixpoint)
	if got := exitCode(wrapped); got != 2 {
		t.Errorf("fixpoint error: exit code %d, want 2", got)
	}
}

// churn flips a box label back and forth, so it always reports a change
// and the rule set can never converge.
type churn struct{}

func (churn) Name() string { return "churn" }
func (churn) Apply(g *qgm.Graph) (bool, error) {
	if g.Root.Label == "A" {
		g.Root.Label = "B"
	} else {
		g.Root.Label = "A"
	}
	return true, nil
}

func nonConvergingEngine() *decorr.Engine {
	eng := decorr.NewEngine(decorr.EmpDept())
	eng.CleanupFactory = func() *rewrite.Engine {
		e := rewrite.NewCleanup()
		e.Rules = append(e.Rules, churn{})
		return e
	}
	return eng
}

// TestExecStatementSurfacesNoFixpoint checks the REPL path: a rule set that
// never converges must be returned to the caller (for the exit code), not
// swallowed after printing.
func TestExecStatementSurfacesNoFixpoint(t *testing.T) {
	eng := nonConvergingEngine()
	err := execStatement(eng, "select name from dept", decorr.Magic, false, false, false)
	if !errors.Is(err, rewrite.ErrNoFixpoint) {
		t.Fatalf("execStatement returned %v, want ErrNoFixpoint", err)
	}
}

// TestRunScriptAbortsOnNoFixpoint checks that script mode stops at the
// engine bug and propagates it, instead of continuing with later
// statements.
func TestRunScriptAbortsOnNoFixpoint(t *testing.T) {
	eng := nonConvergingEngine()
	script := "select name from dept; select budget from dept;"
	err := runScript(eng, strings.NewReader(script), decorr.Magic)
	if !errors.Is(err, rewrite.ErrNoFixpoint) {
		t.Fatalf("runScript returned %v, want ErrNoFixpoint", err)
	}
}

// TestRunScriptContinuesOnOrdinaryErrors keeps the long-standing behaviour
// for plain statement errors: print, continue, return nil.
func TestRunScriptContinuesOnOrdinaryErrors(t *testing.T) {
	eng := decorr.NewEngine(decorr.EmpDept())
	script := "select nonsense from nowhere; select name from dept;"
	if err := runScript(eng, strings.NewReader(script), decorr.NI); err != nil {
		t.Fatalf("runScript returned %v, want nil", err)
	}
}

func TestRunFuzzUsageError(t *testing.T) {
	// Unknown flags exit via flag.ExitOnError in real runs; here we only
	// check the happy parse of every supported flag.
	var out strings.Builder
	code := runFuzz([]string{"-seed", "7", "-n", "3", "-size", "4", "-v"}, &out)
	if code != 0 {
		t.Fatalf("fuzz with all flags returned %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "case 0") {
		t.Errorf("verbose run did not log cases:\n%s", out.String())
	}
}
