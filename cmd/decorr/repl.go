package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"decorr"
	"decorr/internal/plancache"
	"decorr/internal/rewrite"
	"decorr/internal/trace"
)

// repl reads semicolon-terminated statements interactively, executing each
// under the session strategy. Meta commands: \strategy <name>, \explain,
// \analyze, \timing, \trace, \metrics, \quit.
func repl(eng *decorr.Engine, s decorr.Strategy) {
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	explain, analyze, timing := false, false, false
	// \trace swaps the engine tracer for a ring buffer and prints the
	// span tree after every statement; toggling off restores the tracer
	// the session started with (e.g. a -trace file sink).
	var ring *trace.RingSink
	savedTracer := eng.Tracer
	fmt.Println("decorr — Complex Query Decorrelation (ICDE 1996) reproduction")
	fmt.Printf("strategy %s; end statements with ';', \\q quits, \\h for help\n", s)
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("decorr> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			switch {
			case trimmed == "\\q" || trimmed == "\\quit":
				return
			case trimmed == "\\h" || trimmed == "\\help":
				fmt.Println(`meta commands:
  \strategy ni|nimemo|nibatch|kim|dayal|gw|magic|optmagic|auto
  \explain   toggle plan printing
  \analyze   toggle per-box profiles
  \timing    toggle wall-clock reporting
  \workers N set executor worker goroutines (0 = GOMAXPROCS, 1 = serial)
  \limits [timeout=DUR] [rows=N] [mem=BYTES] | off   show or set per-query budgets
  \plancache [N|off]  show plan-cache stats, set capacity, or disable
  \queries   list running queries (id, elapsed, strategy, progress)
  \kill ID   cancel a running query (it fails with the canceled error)
  \trace     toggle per-statement pipeline traces
  \metrics   print the process metrics registry
  \q         quit`)
			case strings.HasPrefix(trimmed, "\\strategy"):
				name := strings.TrimSpace(strings.TrimPrefix(trimmed, "\\strategy"))
				if ns, ok := strategies[strings.ToLower(name)]; ok {
					s = ns
					fmt.Printf("strategy = %s\n", s)
				} else {
					fmt.Printf("unknown strategy %q\n", name)
				}
			case trimmed == "\\explain":
				explain = !explain
				fmt.Printf("explain = %v\n", explain)
			case trimmed == "\\analyze":
				analyze = !analyze
				fmt.Printf("analyze = %v\n", analyze)
			case trimmed == "\\timing":
				timing = !timing
				fmt.Printf("timing = %v\n", timing)
			case strings.HasPrefix(trimmed, "\\workers"):
				arg := strings.TrimSpace(strings.TrimPrefix(trimmed, "\\workers"))
				var n int
				if _, err := fmt.Sscanf(arg, "%d", &n); err != nil || n < 0 {
					fmt.Printf("usage: \\workers N (0 = GOMAXPROCS, 1 = single-threaded)\n")
				} else {
					eng.Workers = n
					fmt.Printf("workers = %d\n", n)
				}
			case strings.HasPrefix(trimmed, "\\limits"):
				setLimits(eng, strings.TrimSpace(strings.TrimPrefix(trimmed, "\\limits")))
			case strings.HasPrefix(trimmed, "\\plancache"):
				arg := strings.TrimSpace(strings.TrimPrefix(trimmed, "\\plancache"))
				switch {
				case arg == "":
					if c := eng.PlanCache(); c == nil {
						fmt.Println("plancache = off")
					} else {
						st := plancache.StatsNow()
						fmt.Printf("plancache = on (%d plans; hits=%d misses=%d evictions=%d invalidations=%d)\n",
							c.Len(), st.Hits, st.Misses, st.Evictions, st.Invalidations)
					}
				case arg == "off":
					eng.DisablePlanCache()
					fmt.Println("plancache = off")
				default:
					var n int
					if _, err := fmt.Sscanf(arg, "%d", &n); err != nil || n < 0 {
						fmt.Printf("usage: \\plancache [N|off] (N > 0 sets capacity, 0 or off disables)\n")
					} else if n == 0 {
						eng.DisablePlanCache()
						fmt.Println("plancache = off")
					} else {
						eng.EnablePlanCache(n)
						fmt.Printf("plancache = on (capacity %d)\n", n)
					}
				}
			case trimmed == "\\queries":
				listQueries(eng)
			case strings.HasPrefix(trimmed, "\\kill"):
				fmt.Println(killQuery(eng, strings.TrimSpace(strings.TrimPrefix(trimmed, "\\kill"))))
			case trimmed == "\\trace":
				if ring == nil {
					ring = trace.NewRingSink(0)
					eng.Tracer = trace.New(ring)
				} else {
					ring = nil
					eng.Tracer = savedTracer
				}
				fmt.Printf("trace = %v\n", ring != nil)
			case trimmed == "\\metrics":
				fmt.Print(trace.Metrics.Snapshot().String())
			default:
				fmt.Printf("unknown meta command %q (\\h for help)\n", trimmed)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		for {
			stmt, rest, ok := splitStatement(buf.String())
			if !ok {
				break
			}
			buf.Reset()
			buf.WriteString(rest)
			if strings.TrimSpace(stmt) != "" {
				execStatement(eng, stmt, s, explain, analyze, timing)
				if ring != nil {
					fmt.Print(trace.FormatEvents(ring.Events(), true))
					ring.Reset()
				}
			}
		}
		if strings.TrimSpace(buf.String()) == "" {
			buf.Reset()
		}
		prompt()
	}
}

// killQuery implements \kill: parse the target ID and cancel it through
// the governor, returning the line to print. Three outcomes, each with a
// distinct message: a malformed argument (usage), a live query (killed —
// it fails with the canceled error), and an unknown or already-finished
// ID (no such query).
func killQuery(eng *decorr.Engine, arg string) string {
	var id int64
	if n, err := fmt.Sscanf(arg, "%d", &id); err != nil || n != 1 {
		return "usage: \\kill ID (ids from \\queries)"
	}
	if eng.Kill(id) {
		return fmt.Sprintf("killed query %d", id)
	}
	return fmt.Sprintf("no running query with id %d", id)
}

// listQueries implements \queries: one line per running query with live
// progress counters. The REPL executes statements synchronously, so the
// interesting use is watching another client of the same process — e.g. a
// long query issued over the engine API while this REPL observes — or
// querying sys.active_queries with SQL instead.
func listQueries(eng *decorr.Engine) {
	reg := eng.Registry()
	if reg == nil {
		fmt.Println("query registry disabled")
		return
	}
	active := reg.Active()
	if len(active) == 0 {
		fmt.Println("no running queries")
		return
	}
	fmt.Printf("%-5s %-12s %-8s %-12s %s\n", "id", "elapsed", "strategy", "rows-scanned", "query")
	for _, q := range active {
		text := strings.Join(strings.Fields(q.Text), " ")
		if len(text) > 60 {
			text = text[:57] + "..."
		}
		fmt.Printf("%-5d %-12s %-8s %-12d %s\n",
			q.ID, time.Since(q.Start).Round(time.Millisecond), q.Strategy, q.Progress.RowsScanned, text)
	}
}

// setLimits implements \limits: no argument shows the session budgets,
// "off" clears them, and key=value tokens (timeout=DUR, rows=N, mem=BYTES)
// update individual ones. rows= caps both output and intermediate rows,
// matching the -max-rows flag.
func setLimits(eng *decorr.Engine, arg string) {
	show := func() {
		l := eng.Limits
		if !l.Enabled() {
			fmt.Println("limits = off")
			return
		}
		fmt.Printf("limits: timeout=%s rows=%d mem=%d\n", l.Timeout, l.MaxIntermediateRows, l.MaxTrackedBytes)
	}
	if arg == "" {
		show()
		return
	}
	if arg == "off" {
		eng.Limits = decorr.Limits{}
		fmt.Println("limits = off")
		return
	}
	l := eng.Limits
	for _, tok := range strings.Fields(arg) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			fmt.Printf("usage: \\limits [timeout=DUR] [rows=N] [mem=BYTES] | off\n")
			return
		}
		switch key {
		case "timeout":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				fmt.Printf("bad timeout %q (want a duration like 50ms)\n", val)
				return
			}
			l.Timeout = d
		case "rows":
			var n int64
			if _, err := fmt.Sscanf(val, "%d", &n); err != nil || n < 0 {
				fmt.Printf("bad rows %q (want a non-negative integer)\n", val)
				return
			}
			l.MaxOutputRows, l.MaxIntermediateRows = n, n
		case "mem":
			var n int64
			if _, err := fmt.Sscanf(val, "%d", &n); err != nil || n < 0 {
				fmt.Printf("bad mem %q (want a non-negative byte count)\n", val)
				return
			}
			l.MaxTrackedBytes = n
		default:
			fmt.Printf("unknown limit %q (want timeout, rows, or mem)\n", key)
			return
		}
	}
	eng.Limits = l
	show()
}

// runScript executes a file of semicolon-separated statements. Statement
// errors print and continue, except a rewrite-convergence failure: that is
// an engine bug, so the script aborts and the error is returned for the
// exit code.
func runScript(eng *decorr.Engine, r io.Reader, s decorr.Strategy) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	src := string(data)
	for {
		stmt, rest, ok := splitStatement(src)
		if !ok {
			if strings.TrimSpace(src) != "" {
				return execStatement(eng, src, s, false, false, false)
			}
			return nil
		}
		if strings.TrimSpace(stmt) != "" {
			if err := execStatement(eng, stmt, s, false, false, false); errors.Is(err, rewrite.ErrNoFixpoint) {
				return err
			}
		}
		src = rest
	}
}

// reportError prints a statement failure. A fixpoint exhaustion gets a
// distinct message: no plan exists at that point (executing or printing a
// half-rewritten graph would be misleading), and the statement itself is a
// reproducer worth keeping.
func reportError(err error) error {
	if errors.Is(err, rewrite.ErrNoFixpoint) {
		fmt.Printf("engine bug: %v\nno plan was produced; please keep the statement as a reproducer\n", err)
		return err
	}
	fmt.Printf("error: %v\n", err)
	return err
}

func execStatement(eng *decorr.Engine, stmt string, s decorr.Strategy, explain, analyze, timing bool) error {
	lower := strings.ToLower(strings.TrimSpace(stmt))
	if strings.HasPrefix(lower, "create view") {
		if err := eng.CreateView(stmt); err != nil {
			return reportError(err)
		}
		fmt.Println("view created")
		return nil
	}
	// PrepareCached consults the session plan cache when one is enabled
	// (\plancache) and degrades to a plain Prepare otherwise.
	p, err := eng.PrepareCached(stmt, s)
	if err != nil {
		return reportError(err)
	}
	if explain {
		fmt.Print(p.Explain())
	}
	if analyze {
		out, err := p.ExplainAnalyze()
		if err != nil {
			return reportError(err)
		}
		fmt.Print(out)
	}
	start := time.Now()
	rows, stats, err := p.Run()
	if err != nil {
		return reportError(err)
	}
	fmt.Println(strings.Join(p.Columns, " | "))
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows, %s)\n", len(rows), s)
	if timing {
		fmt.Printf("time: %s  %s\n", time.Since(start).Round(10*time.Microsecond), stats)
	}
	return nil
}

// splitStatement returns the first semicolon-terminated statement and the
// remainder; ok=false when no terminator is present outside quotes.
func splitStatement(src string) (stmt, rest string, ok bool) {
	inString := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c == '\'' {
			// A doubled quote inside a string is an escape.
			if inString && i+1 < len(src) && src[i+1] == '\'' {
				i++
				continue
			}
			inString = !inString
			continue
		}
		if c == ';' && !inString {
			return src[:i], src[i+1:], true
		}
	}
	return "", src, false
}
