package main

import "testing"

func TestSplitStatement(t *testing.T) {
	cases := []struct {
		src, stmt, rest string
		ok              bool
	}{
		{"select 1; rest", "select 1", " rest", true},
		{"select 1", "", "select 1", false},
		{"select 'a;b'; x", "select 'a;b'", " x", true},
		{"select 'it''s;fine'; x", "select 'it''s;fine'", " x", true},
		{"; next", "", " next", true},
		{"select 'open ;", "", "select 'open ;", false}, // ; inside unterminated string
	}
	for _, c := range cases {
		stmt, rest, ok := splitStatement(c.src)
		if ok != c.ok || stmt != c.stmt || rest != c.rest {
			t.Errorf("splitStatement(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.src, stmt, rest, ok, c.stmt, c.rest, c.ok)
		}
	}
}

func TestStrategyFlagTable(t *testing.T) {
	for name := range strategies {
		if name == "" {
			t.Error("empty strategy name")
		}
	}
	for _, want := range []string{"ni", "nimemo", "kim", "dayal", "gw", "magic", "optmagic"} {
		if _, ok := strategies[want]; !ok {
			t.Errorf("strategy %q missing from the CLI table", want)
		}
	}
}

func TestNamedQueriesNonEmpty(t *testing.T) {
	for name, sql := range namedQueries {
		if len(sql) < 20 {
			t.Errorf("named query %q suspiciously short", name)
		}
	}
}
