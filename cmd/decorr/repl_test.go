package main

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"decorr"
)

// The \kill meta command: each of its three outcomes prints a distinct
// message, and killing a live query actually terminates it with the
// typed cancellation error.
func TestKillQueryCommand(t *testing.T) {
	eng := decorr.NewEngine(decorr.EmpDeptSized(40, 20000, 6, 7))
	eng.EnableRegistry(64)

	if got := killQuery(eng, "banana"); got != "usage: \\kill ID (ids from \\queries)" {
		t.Errorf("malformed arg: %q", got)
	}
	if got := killQuery(eng, ""); got != "usage: \\kill ID (ids from \\queries)" {
		t.Errorf("empty arg: %q", got)
	}
	if got := killQuery(eng, "999"); got != "no running query with id 999" {
		t.Errorf("unknown id: %q", got)
	}

	// Start a streaming query so there is a live registry entry to kill,
	// exactly what \queries would show alongside a concurrent client.
	st, err := eng.QueryStream(context.Background(), "select name from emp", decorr.NI, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	id := st.ID()
	if id == 0 {
		t.Fatal("stream has no registry id")
	}
	if got, want := killQuery(eng, fmt.Sprint(id)), fmt.Sprintf("killed query %d", id); got != want {
		t.Errorf("live kill: got %q want %q", got, want)
	}
	for {
		batch, err := st.Next()
		if err != nil {
			if !errors.Is(err, decorr.ErrCanceled) {
				t.Fatalf("killed stream failed with %v, want ErrCanceled", err)
			}
			break
		}
		if batch == nil {
			t.Fatal("killed stream drained cleanly")
		}
	}
	// The query is gone from the registry, so a second kill misses.
	if got, want := killQuery(eng, fmt.Sprint(id)), fmt.Sprintf("no running query with id %d", id); got != want {
		t.Errorf("re-kill: got %q want %q", got, want)
	}
}

func TestSplitStatement(t *testing.T) {
	cases := []struct {
		src, stmt, rest string
		ok              bool
	}{
		{"select 1; rest", "select 1", " rest", true},
		{"select 1", "", "select 1", false},
		{"select 'a;b'; x", "select 'a;b'", " x", true},
		{"select 'it''s;fine'; x", "select 'it''s;fine'", " x", true},
		{"; next", "", " next", true},
		{"select 'open ;", "", "select 'open ;", false}, // ; inside unterminated string
	}
	for _, c := range cases {
		stmt, rest, ok := splitStatement(c.src)
		if ok != c.ok || stmt != c.stmt || rest != c.rest {
			t.Errorf("splitStatement(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.src, stmt, rest, ok, c.stmt, c.rest, c.ok)
		}
	}
}

func TestStrategyFlagTable(t *testing.T) {
	for name := range strategies {
		if name == "" {
			t.Error("empty strategy name")
		}
	}
	for _, want := range []string{"ni", "nimemo", "nibatch", "kim", "dayal", "gw", "magic", "optmagic"} {
		if _, ok := strategies[want]; !ok {
			t.Errorf("strategy %q missing from the CLI table", want)
		}
	}
}

func TestNamedQueriesNonEmpty(t *testing.T) {
	for name, sql := range namedQueries {
		if len(sql) < 20 {
			t.Errorf("named query %q suspiciously short", name)
		}
	}
}
