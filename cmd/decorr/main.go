// Command decorr parses, rewrites, explains and executes SQL against the
// built-in datasets under any decorrelation strategy.
//
// Usage:
//
//	decorr [flags] [SQL]
//	decorr fuzz [-seed N] [-n QUERIES] [-faults]
//
// Examples:
//
//	decorr -query example -strategy magic -stages     # Figures 2–4 stages
//	decorr -dataset tpcd -sf 0.1 -query q1 -compare   # one row per strategy
//	decorr -query q1 -strategy magic -trace out.json  # chrome://tracing trace
//	decorr -dataset empdept -metrics "select count(*) from emp"
//	decorr -timeout 50ms -max-rows 100000 -query q1   # governed execution
//	decorr fuzz -seed 42 -n 200                       # differential harness
//	decorr fuzz -faults -n 25                         # fault-injection sweep
//
// Exit codes: 0 success, 1 error, 2 a rewrite rule set failed to converge
// (an engine bug — the statement is a reproducer worth reporting).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"decorr"
	"decorr/internal/engine"
	"decorr/internal/qgm"
	"decorr/internal/rewrite"
	"decorr/internal/trace"
)

var namedQueries = map[string]string{
	"example": decorr.ExampleQuery,
	"q1":      decorr.Query1,
	"q1b":     decorr.Query1b,
	"q2":      decorr.Query2,
	"q3":      decorr.Query3,
}

var strategies = map[string]decorr.Strategy{
	"ni": decorr.NI, "nimemo": decorr.NIMemo, "nibatch": decorr.NIBatch,
	"kim": decorr.Kim, "dayal": decorr.Dayal, "gw": decorr.GanskiWong,
	"magic": decorr.Magic, "optmagic": decorr.OptMagic,
}

func main() {
	fuzzMain()
	dataset := flag.String("dataset", "empdept", "dataset: empdept or tpcd")
	sf := flag.Float64("sf", 0.1, "TPC-D scale factor (dataset=tpcd)")
	seed := flag.Int64("seed", 42, "generator seed")
	strategy := flag.String("strategy", "ni", "ni | nimemo | nibatch | kim | dayal | gw | magic | optmagic")
	queryName := flag.String("query", "", "named query: example | q1 | q1b | q2 | q3")
	explain := flag.Bool("explain", false, "print the (rewritten) QGM plan")
	dot := flag.Bool("dot", false, "print the (rewritten) QGM as Graphviz DOT (paper Figure 1 style)")
	analyze := flag.Bool("analyze", false, "run with per-box profiling and print the annotated plan")
	stages := flag.Bool("stages", false, "print every rewrite stage (Figures 2-4)")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON (chrome://tracing) of the whole pipeline to this file")
	metrics := flag.Bool("metrics", false, "print the metrics-registry delta for this invocation")
	stats := flag.Bool("stats", false, "print work counters")
	compare := flag.Bool("compare", false, "run the query under every strategy")
	workers := flag.Int("workers", 0, "executor worker goroutines (0 = GOMAXPROCS, 1 = single-threaded)")
	planCache := flag.Int("plancache", 0, "prepared-plan cache capacity (0 = disabled)")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none); expiry fails the query with a deadline error")
	maxRows := flag.Int64("max-rows", 0, "per-query row budget (0 = none): caps both output rows and intermediate rows")
	maxMem := flag.Int64("max-mem", 0, "per-query tracked-byte budget for hash tables and caches (0 = none)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	interactive := flag.Bool("i", false, "interactive REPL (statements end with ';')")
	script := flag.String("f", "", "execute a file of semicolon-separated statements")
	flag.Parse()

	s0, ok := strategies[strings.ToLower(*strategy)]
	if !ok {
		fatalf("unknown strategy %q", *strategy)
	}
	// Garbage knob values fail loudly here instead of being reinterpreted
	// deep in the executor (which clamps defensively for library callers).
	if *workers < 0 {
		fatalf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	if *planCache < 0 {
		fatalf("-plancache must be >= 0 (0 = disabled), got %d", *planCache)
	}
	if *timeout < 0 || *maxRows < 0 || *maxMem < 0 {
		fatalf("-timeout, -max-rows, and -max-mem must be >= 0 (0 = unlimited)")
	}
	limits := decorr.Limits{
		Timeout:             *timeout,
		MaxOutputRows:       *maxRows,
		MaxIntermediateRows: *maxRows,
		MaxTrackedBytes:     *maxMem,
	}
	if *metricsAddr != "" {
		addr, stop, err := startMetricsServer(*metricsAddr)
		if err != nil {
			fatalf("%v", err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (pprof under /debug/pprof/)\n", addr)
	}
	metricsBefore := trace.Metrics.Snapshot()
	if *interactive || *script != "" {
		db := buildDB(*dataset, *sf, *seed)
		eng := decorr.NewEngine(db)
		eng.Workers = *workers
		eng.Limits = limits
		if *planCache > 0 {
			eng.EnablePlanCache(*planCache)
		}
		// The sys.* catalog rides along in every session: live queries,
		// the query log, metrics, and latency histograms become plain
		// SELECT targets (see docs/observability.md).
		eng.MountSystemCatalog()
		finishTrace := attachTracer(eng, *traceFile)
		if *script != "" {
			f, err := os.Open(*script)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			if err := runScript(eng, f, s0); err != nil {
				fatalErr(err)
			}
			finishTrace()
			reportMetrics(*metrics, metricsBefore)
			return
		}
		repl(eng, s0)
		finishTrace()
		reportMetrics(*metrics, metricsBefore)
		return
	}

	sql := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if *queryName != "" {
		q, ok := namedQueries[*queryName]
		if !ok {
			fatalf("unknown named query %q (want example|q1|q1b|q2|q3)", *queryName)
		}
		sql = q
	}
	if sql == "" || sql == "-" {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatalf("reading stdin: %v", err)
		}
		sql = strings.TrimSpace(string(b))
	}
	if sql == "" {
		fatalf("no query: pass SQL as an argument, via -query, or on stdin")
	}

	db := buildDB(*dataset, *sf, *seed)
	eng := decorr.NewEngine(db)
	eng.Workers = *workers
	eng.Limits = limits
	if *planCache > 0 {
		eng.EnablePlanCache(*planCache)
	}
	eng.MountSystemCatalog()
	finishTrace := attachTracer(eng, *traceFile)

	if *compare {
		noFixpoint := false
		for _, s := range engine.Strategies {
			if err := runOne(eng, sql, s, false, false, true); errors.Is(err, rewrite.ErrNoFixpoint) {
				noFixpoint = true
			}
		}
		finishTrace()
		reportMetrics(*metrics, metricsBefore)
		if noFixpoint {
			// A strategy row already shows the error; the exit code makes
			// the engine bug visible to scripts too.
			os.Exit(2)
		}
		return
	}
	s := s0
	if *stages {
		p, err := eng.PrepareTraced(sql, s)
		if err != nil {
			fatalErr(err)
		}
		for i, st := range p.Trace.Steps {
			fmt.Printf("--- stage %d: %s ---\n%s\n", i, st.Title, st.Plan)
		}
	}
	switch {
	case *dot:
		p, err := eng.Prepare(sql, s)
		if err != nil {
			fatalErr(err)
		}
		fmt.Print(qgm.Dot(p.Graph))
	case *analyze:
		p, err := eng.Prepare(sql, s)
		if err != nil {
			fatalErr(err)
		}
		out, err := p.ExplainAnalyze()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(out)
	default:
		runOne(eng, sql, s, *explain, *stats, false)
	}
	finishTrace()
	reportMetrics(*metrics, metricsBefore)
}

// attachTracer wires a Chrome trace-event sink writing to path onto eng;
// the returned function flushes and closes it (a no-op for path == "").
func attachTracer(eng *decorr.Engine, path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	sink := trace.NewChromeSink(f)
	eng.Tracer = trace.New(sink)
	return func() {
		if err := sink.Flush(); err != nil {
			fatalf("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("writing trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", path)
	}
}

// reportMetrics prints the registry delta accumulated since startup.
func reportMetrics(enabled bool, before trace.Snapshot) {
	if !enabled {
		return
	}
	fmt.Print("--- metrics ---\n" + trace.Metrics.Snapshot().Diff(before).String())
}

func runOne(eng *decorr.Engine, sql string, s decorr.Strategy, explain, stats, compact bool) error {
	p, err := eng.Prepare(sql, s)
	if err != nil {
		if compact {
			fmt.Printf("%-8s %v\n", s, err)
			return err
		}
		fatalf2(exitCode(err), "%s: %v", s, err)
	}
	if explain {
		fmt.Println(p.Explain())
	}
	rows, st, err := p.Run()
	if err != nil {
		fatalf2(exitCode(err), "%s: %v", s, err)
	}
	if compact {
		fmt.Printf("%-8s rows=%-6d %s\n", s, len(rows), st.String())
		return nil
	}
	fmt.Println(strings.Join(p.Columns, " | "))
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows, strategy %s)\n", len(rows), s)
	if stats {
		fmt.Println(st.String())
	}
	return nil
}

func buildDB(dataset string, sf float64, seed int64) *decorr.DB {
	switch dataset {
	case "empdept":
		return decorr.EmpDept()
	case "tpcd":
		return decorr.TPCD(sf, seed)
	}
	fatalf("unknown dataset %q (want empdept or tpcd)", dataset)
	return nil
}

func fatalf(format string, args ...any) {
	fatalf2(1, format, args...)
}

func fatalf2(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "decorr: "+format+"\n", args...)
	os.Exit(code)
}

// fatalErr exits with the code classifying err.
func fatalErr(err error) {
	fatalf2(exitCode(err), "%v", err)
}

// exitCode maps an engine error to the process exit code: a rewrite rule
// set that failed to reach a fixpoint is an engine bug, distinguished as 2
// so scripts (and CI) can tell it from an ordinary bad statement.
func exitCode(err error) int {
	if errors.Is(err, rewrite.ErrNoFixpoint) {
		return 2
	}
	return 1
}
