package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"decorr"
)

// TestObsSmoke is the `make obs-smoke` target: bring up the observability
// surface exactly as `decorr -metrics-addr` does — metrics/pprof HTTP
// server plus a mounted sys.* catalog — run a workload, scrape /metrics
// once, and SELECT from every sys.* table, asserting each is non-empty.
func TestObsSmoke(t *testing.T) {
	addr, stop, err := startMetricsServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("metrics server: %v", err)
	}
	defer stop()

	eng := decorr.NewEngine(decorr.EmpDept())
	eng.EnablePlanCache(64)
	eng.MountSystemCatalog()
	for _, s := range []decorr.Strategy{decorr.NI, decorr.Magic} {
		if _, _, err := eng.Query(decorr.ExampleQuery, s); err != nil {
			t.Fatalf("workload under %s: %v", s, err)
		}
	}

	for _, table := range []string{
		"sys.metrics", "sys.histograms", "sys.active_queries", "sys.plan_cache", "sys.query_log",
	} {
		rows, _, err := eng.Query("select * from "+table, decorr.NI)
		if err != nil {
			t.Errorf("select * from %s: %v", table, err)
			continue
		}
		if len(rows) == 0 {
			t.Errorf("%s is empty after a workload", table)
		}
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("scrape body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	exposition := string(body)
	for _, want := range []string{
		"# TYPE decorr_engine_executions counter",
		"decorr_stage_exec_ns{quantile=\"0.99\"}",
		"decorr_exec_strategy_NI_ns_count",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof status %d", resp.StatusCode)
	}
}
