package main

import (
	"net"
	"net/http"
	"net/http/pprof"

	"decorr/internal/trace"
)

// startMetricsServer serves GET /metrics (the process metrics registry in
// Prometheus text exposition format, including the stage/strategy latency
// summaries) and the net/http/pprof profiling handlers under /debug/pprof/
// on addr. It returns the bound address — pass ":0" or "127.0.0.1:0" to
// let the kernel pick a port — and a function that stops the server.
func startMetricsServer(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = trace.Metrics.WritePrometheus(w)
	})
	// The pprof handlers are mounted explicitly on a private mux: the
	// blank-import idiom would register them on http.DefaultServeMux,
	// which this server deliberately does not use.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
