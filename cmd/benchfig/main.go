// Command benchfig regenerates the paper's tables and figures: it runs
// each experiment of internal/bench and prints the measured rows next to
// the paper's qualitative finding.
//
// Usage:
//
//	benchfig              # every experiment
//	benchfig -fig fig8    # one experiment
//	benchfig -sf 0.2 -repeats 5
package main

import (
	"flag"
	"fmt"
	"os"

	"decorr/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "experiment id (table1, fig1, fig2-4, fig5..fig9, parallel, ablation) or all")
	sf := flag.Float64("sf", 0.1, "TPC-D scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	repeats := flag.Int("repeats", 3, "timed repetitions per measurement (minimum reported)")
	csv := flag.Bool("csv", false, "emit plot-ready CSV instead of formatted tables")
	flag.Parse()

	cfg := bench.Config{SF: *sf, Seed: *seed, Repeats: *repeats}
	if *csv {
		fmt.Println(bench.CSVHeader)
	}
	if *fig != "all" {
		ex := bench.Find(*fig)
		if ex == nil {
			fmt.Fprintf(os.Stderr, "benchfig: unknown experiment %q\n", *fig)
			os.Exit(1)
		}
		run(*ex, cfg, *csv)
		return
	}
	for _, ex := range bench.Experiments {
		run(ex, cfg, *csv)
	}
}

func run(ex bench.Experiment, cfg bench.Config, csv bool) {
	r, err := ex.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: %s: %v\n", ex.ID, err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(r.CSV())
		return
	}
	fmt.Println(r)
}
