// Command tpcdgen generates the TPC-D-style benchmark database and prints
// its cardinalities next to the paper's Table 1 contract (exact at SF=1).
//
// Usage:
//
//	tpcdgen -sf 0.1 -seed 42
//	tpcdgen -sf 0.01 -dump suppliers   # CSV of one table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"decorr"
	"decorr/internal/tpcd"
)

func main() {
	sf := flag.Float64("sf", 0.1, "scale factor (1.0 = the paper's 120 MB database)")
	seed := flag.Int64("seed", 42, "generator seed")
	dump := flag.String("dump", "", "print this table as CSV instead of the summary")
	flag.Parse()

	db := decorr.TPCD(*sf, *seed)
	if *dump != "" {
		t := db.Table(*dump)
		if t == nil {
			fmt.Fprintf(os.Stderr, "tpcdgen: unknown table %q\n", *dump)
			os.Exit(1)
		}
		cols := make([]string, len(t.Def.Columns))
		for i, c := range t.Def.Columns {
			cols[i] = c.Name
		}
		fmt.Println(strings.Join(cols, ","))
		for _, r := range t.Rows {
			parts := make([]string, len(r))
			for i, v := range r {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, ","))
		}
		return
	}

	paper := map[string]int{
		"customers": tpcd.BaseCustomers, "parts": tpcd.BaseParts,
		"suppliers": tpcd.BaseSuppliers, "partsupp": tpcd.BasePartSupp,
		"lineitem": tpcd.BaseLineItem,
	}
	fmt.Printf("TPC-D database at SF=%g (seed %d); paper's Table 1 is SF=1\n\n", *sf, *seed)
	fmt.Printf("%-10s %10s %14s\n", "table", "tuples", "paper (SF=1)")
	for _, name := range []string{"customers", "parts", "suppliers", "partsupp", "lineitem"} {
		fmt.Printf("%-10s %10d %14d\n", name, len(db.MustTable(name).Rows), paper[name])
	}
}
