GO ?= go

.PHONY: check vet build test bench fmt

# check is the CI gate: static analysis, a full build, and the test suite
# under the race detector.
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# bench regenerates every paper figure as a Go benchmark (shortened).
bench:
	$(GO) test -short -bench=. -benchmem ./...

fmt:
	gofmt -l -w .
