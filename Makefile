GO ?= go

.PHONY: check vet build test bench bench-smoke fmt fuzz-smoke fault-smoke obs-smoke server-smoke chaos-smoke

# check is the CI gate: static analysis, a full build, and the test suite
# under the race detector.
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# bench regenerates every paper figure as a Go benchmark (shortened).
bench:
	$(GO) test -short -bench=. -benchmem ./...

# bench-smoke runs every paper figure benchmark once (-benchtime=1x) at
# the -short scale and emits machine-readable results to BENCH_exec.json
# — a cheap CI check that the measurement path itself works, not a
# performance gate. The row-vs-columnar and batched-fan-out comparisons
# additionally run at full scale with enough iterations for stable ratios,
# so the JSON's speedup/op numbers reflect the real engine, not -short
# fixed overheads.
bench-smoke:
	( $(GO) test -run '^$$' -bench '^BenchmarkFigure[0-9]' -benchtime=1x -benchmem -short . && \
	  $(GO) test -run '^$$' -bench '^BenchmarkFigureRowVsColumnar' -benchtime=20x -benchmem . && \
	  $(GO) test -run '^$$' -bench '^BenchmarkFigureBatchedFanout' -benchtime=20x -benchmem . ) \
		| $(GO) run ./cmd/benchjson > BENCH_exec.json
	@echo "wrote BENCH_exec.json ($$(wc -c < BENCH_exec.json) bytes)"
	$(GO) test -run '^$$' -bench 'BenchmarkPlanCache' -benchtime=100x -short . \
		| $(GO) run ./cmd/benchjson > BENCH_plancache.json
	@echo "wrote BENCH_plancache.json ($$(wc -c < BENCH_plancache.json) bytes)"

# obs-smoke exercises the observability surface end to end: the metrics/
# pprof HTTP server comes up exactly as `decorr -metrics-addr` brings it
# up, /metrics is scraped once, and every sys.* table is SELECTed and
# asserted non-empty (TestObsSmoke). BenchmarkObservabilityOverhead then
# measures a fully observed engine against a bare one on the cached-plan
# hot path, enforces the <5% execution-overhead budget, and emits the
# numbers to BENCH_obs.json.
obs-smoke:
	$(GO) test -run TestObsSmoke -v ./cmd/decorr
	$(GO) test -run '^$$' -bench 'BenchmarkObservabilityOverhead' -benchtime=2000x . \
		| $(GO) run ./cmd/benchjson > BENCH_obs.json
	@echo "wrote BENCH_obs.json ($$(wc -c < BENCH_obs.json) bytes)"

# server-smoke drives the served path end to end: it builds the real
# decorrd binary, starts it on a million-row dataset, streams the full
# result through the database/sql driver while polling the server's heap
# over a second connection, and kills a second query mid-stream expecting
# the typed ErrCanceled sentinel client-side (TestServerSmoke). Rows/sec
# and the peak heaps on both sides land in BENCH_server.json.
server-smoke:
	BENCH_SERVER_JSON=$(CURDIR)/BENCH_server.json $(GO) test -run TestServerSmoke -v -count=1 -timeout 300s ./cmd/decorrd
	@echo "wrote BENCH_server.json ($$(wc -c < BENCH_server.json) bytes)"

# chaos-smoke extends the fault-injection contract to the wire: a real
# decorrd subprocess runs with seeded faults at every protocol frame
# (torn writes, abandoned reads, latency) while concurrent database/sql
# clients hammer it and a SIGTERM drains it mid-run. Every client must
# end with correct rows (bag-compared against a fault-free run) or a
# cleanly classifiable typed error — no wrong answers, hangs, or
# crashes — and a million-row stream must survive a graceful drain to
# its last row (TestChaosSmoke). Outcome counts land in BENCH_chaos.json.
chaos-smoke:
	BENCH_CHAOS_JSON=$(CURDIR)/BENCH_chaos.json $(GO) test -run TestChaosSmoke -v -count=1 -timeout 300s ./cmd/decorrd
	@echo "wrote BENCH_chaos.json ($$(wc -c < BENCH_chaos.json) bytes)"

# fuzz-smoke runs the differential correctness harness deterministically:
# a fixed seed, 200 generated queries, every strategy and knob combination
# cross-checked against nested iteration. Exit 1 on any unallowlisted
# divergence (the output contains the shrunk reproducer to pin).
fuzz-smoke:
	$(GO) run ./cmd/decorr fuzz -seed 42 -n 200

# fault-smoke sweeps the same differential harness under seeded fault
# injection (errors, panics, and latency at storage scans, hash builds,
# and morsel claims). Every strategy × worker combination must either
# match the no-fault oracle or fail with a clean typed error; a wrong
# answer, hang, or crash exits 1.
fault-smoke:
	$(GO) run ./cmd/decorr fuzz -faults -seed 1 -n 15

fmt:
	gofmt -l -w .
