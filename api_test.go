package decorr_test

import (
	"fmt"
	"strings"
	"testing"

	"decorr"
)

func TestPublicAPISurface(t *testing.T) {
	// Build a database through the public constructors only.
	db := decorr.NewDB()
	emp := db.Create(decorr.NewTable("emp",
		decorr.Column{Name: "name", Type: decorr.TString},
		decorr.Column{Name: "building", Type: decorr.TString},
	).AddKey("name"))
	for _, r := range [][2]string{{"ada", "X"}, {"bo", "X"}, {"cy", "Y"}} {
		if err := emp.Insert(decorr.Row{decorr.String(r[0]), decorr.String(r[1])}); err != nil {
			t.Fatal(err)
		}
	}
	eng := decorr.NewEngine(db)
	rows, stats, err := eng.Query(`select building, count(*) from emp group by building order by 1`, decorr.NI)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][1].I != 2 || rows[1][1].I != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if stats.RowsScanned == 0 {
		t.Error("stats not populated")
	}
}

func TestPublicValueConstructors(t *testing.T) {
	if !decorr.Null.IsNull() || decorr.Int(3).I != 3 ||
		decorr.Float(2.5).F != 2.5 || decorr.String("x").S != "x" {
		t.Error("value constructors broken")
	}
}

func TestPublicDatasetsAndQueries(t *testing.T) {
	if db := decorr.EmpDept(); db.Table("dept") == nil {
		t.Error("EmpDept missing dept")
	}
	db := decorr.TPCD(0.01, 7)
	for _, tbl := range []string{"customers", "parts", "suppliers", "partsupp", "lineitem"} {
		if db.Table(tbl) == nil {
			t.Errorf("TPCD missing %s", tbl)
		}
	}
	for _, q := range []string{decorr.ExampleQuery, decorr.Query1, decorr.Query1b, decorr.Query2, decorr.Query3} {
		if !strings.Contains(strings.ToLower(q), "select") {
			t.Error("query constant is not SQL")
		}
	}
}

func TestPublicParallelSimulation(t *testing.T) {
	db := decorr.EmpDeptSized(200, 800, 16, 3)
	ni, err := decorr.SimulateNestedIteration(db, decorr.ParallelConfig{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := decorr.SimulateMagic(db, decorr.ParallelConfig{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(ni.Rows, ",") != strings.Join(mg.Rows, ",") {
		t.Error("simulated plans disagree")
	}
	if ni.Metrics.Fragments <= mg.Metrics.Fragments {
		t.Error("NI should schedule more fragments")
	}
}

// ExampleEngine_Query demonstrates running the paper's §2 example under
// magic decorrelation.
func ExampleEngine_Query() {
	eng := decorr.NewEngine(decorr.EmpDept())
	rows, stats, err := eng.Query(decorr.ExampleQuery, decorr.Magic)
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Println(r[0])
	}
	fmt.Println("correlated invocations:", stats.SubqueryInvocations)
	// Output:
	// archives
	// toys
	// correlated invocations: 0
}

// ExampleEngine_Prepare shows plan inspection: the decorrelated QGM names
// the paper's helper views.
func ExampleEngine_Prepare() {
	eng := decorr.NewEngine(decorr.EmpDept())
	p, err := eng.Prepare(decorr.ExampleQuery, decorr.Magic)
	if err != nil {
		panic(err)
	}
	plan := p.Explain()
	fmt.Println(strings.Contains(plan, "SUPP"), strings.Contains(plan, "MAGIC"))
	// Output: true true
}

// ExampleEngine_CreateView registers and queries a view.
func ExampleEngine_CreateView() {
	eng := decorr.NewEngine(decorr.EmpDept())
	if err := eng.CreateView(
		"create view crowded(b) as select building from emp group by building having count(*) >= 2"); err != nil {
		panic(err)
	}
	rows, _, err := eng.Query("select b from crowded order by b", decorr.NI)
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Println(r[0])
	}
	// Output:
	// B1
	// B2
}
