package decorr

import (
	"io"

	"decorr/internal/core"
	"decorr/internal/engine"
	"decorr/internal/exec"
	"decorr/internal/parallel"
	"decorr/internal/plancache"
	"decorr/internal/schema"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
	"decorr/internal/trace"
)

// Core query-processing types.
type (
	// DB is an in-memory database: a catalog plus stored tables with
	// optional hash indexes.
	DB = storage.DB
	// Row is one result or stored tuple.
	Row = storage.Row
	// Value is a SQL datum (NULL, integer, double, varchar, boolean).
	Value = sqltypes.Value
	// Engine prepares and executes SQL under a decorrelation strategy.
	Engine = engine.Engine
	// Prepared is a parsed, rewritten, validated query.
	Prepared = engine.Prepared
	// Strategy selects the decorrelation algorithm.
	Strategy = engine.Strategy
	// Stats are the machine-independent work counters of one execution.
	Stats = exec.Stats
	// Limits are per-query resource budgets: a deadline, output and
	// intermediate row caps, and a tracked-byte cap. Assign them to
	// Engine.Limits; the zero value imposes nothing. Limits are
	// execution-time policy only — they never affect planning or the plan
	// cache, so a cached plan runs correctly under any Limits (see
	// docs/robustness.md).
	Limits = exec.Limits
	// RewriteOptions are the §4.4 decorrelation knobs.
	RewriteOptions = core.Options
	// Stream is one running query yielding its result batch-at-a-time —
	// obtain one from Engine.QueryStream or Prepared.Stream. It carries
	// the full query lifecycle (registry tracking, Kill, budgets, metrics,
	// tracing) stretched over the iterator: call Next until it returns
	// (nil, nil) or an error, then Close (idempotent). A million-row
	// result holds one batch in memory at a time; this is the path decorrd
	// serves network results through (see docs/server.md).
	Stream = engine.Stream
	// StreamOpts are per-call execution overrides (worker count, budgets)
	// for Prepared.StreamWithOpts, letting one shared Engine serve
	// sessions with different execution policies.
	StreamOpts = engine.StreamOpts
	// Table is a table definition (columns plus candidate keys).
	Table = schema.Table
	// Column is one column of a table definition.
	Column = schema.Column
)

// Decorrelation strategies (§5.1 of the paper).
const (
	// NI is tuple-at-a-time nested iteration (the System R baseline).
	NI = engine.NI
	// NIMemo is nested iteration with per-binding memoization.
	NIMemo = engine.NIMemo
	// NIBatch is nested iteration with runtime subquery batching:
	// correlated subqueries evaluate set-at-a-time over the distinct
	// outer bindings, bit-identical to NI.
	NIBatch = engine.NIBatch
	// Kim is Kim's method [Kim82] — COUNT bug included, faithfully.
	Kim = engine.Kim
	// Dayal is Dayal's outer-join method [Day87].
	Dayal = engine.Dayal
	// GanskiWong is the Ganski/Wong method [GW87].
	GanskiWong = engine.GanskiWong
	// Magic is magic decorrelation, the paper's contribution.
	Magic = engine.Magic
	// OptMagic adds the supplementary-table CSE elimination (OptMag).
	OptMagic = engine.OptMagic
	// Auto optimizes the query twice — as written and decorrelated —
	// and keeps the plan with the lower estimated cost (§7).
	Auto = engine.Auto
)

// Column type constants for NewTable.
const (
	TInt    = schema.TInt
	TFloat  = schema.TFloat
	TString = schema.TString
	TBool   = schema.TBool
)

// Value constructors.
var (
	// Null is the SQL NULL value.
	Null = sqltypes.Null
	// Int builds an integer value.
	Int = sqltypes.NewInt
	// Float builds a double value.
	Float = sqltypes.NewFloat
	// String builds a varchar value.
	String = sqltypes.NewString
)

// NewEngine creates an execution engine over db with the paper's default
// knobs (full decorrelation, outer joins available). Optional behavior is
// toggled on the returned engine: CoreOpts (the §4.4 decorrelation knobs),
// MaterializeCSE (§5.3 ablation), MagicSets ([MFPR90] join-binding
// propagation), Workers (intra-query parallelism: 0 = GOMAXPROCS,
// 1 = single-threaded; results are identical at every setting — see
// docs/parallel-execution.md), and EnablePlanCache (a sharded LRU of
// prepared plans keyed by statement text and knobs, invalidated by view
// DDL — see docs/plan-cache.md).
//
// Statements may contain `?` placeholders bound at execution time via
// Engine.ExecParams/QueryParams or Prepared.RunParams, so one cached plan
// serves many bindings. An Engine is safe for concurrent use once
// configured (set the knob fields before sharing it).
func NewEngine(db *DB) *Engine { return engine.New(db) }

// PlanCacheStats reports the process-wide plan-cache counters (hits,
// misses, evictions, epoch invalidations); they also appear in Metrics
// under plancache.*.
type PlanCacheStats = plancache.Stats

// PlanCacheStatsNow reads the current plan-cache counters.
func PlanCacheStatsNow() PlanCacheStats { return plancache.StatsNow() }

// NewDB creates an empty database.
func NewDB() *DB { return storage.NewDB() }

// NewTable builds a table definition; register it with DB.Create and
// declare candidate keys with AddKey.
func NewTable(name string, cols ...Column) *Table {
	return schema.NewTable(name, cols...)
}

// EmpDept returns the paper's §2 running-example database, including the
// COUNT-bug witness (a low-budget department in a building where nobody
// works).
func EmpDept() *DB { return tpcd.EmpDept() }

// EmpDeptSized returns a synthetic EMP/DEPT database for scaling studies.
func EmpDeptSized(nDept, nEmp, nBuildings int, seed int64) *DB {
	return tpcd.EmpDeptSized(nDept, nEmp, nBuildings, seed)
}

// TPCD generates the TPC-D-style benchmark database of the paper's §5.2;
// sf=1.0 reproduces Table 1's cardinalities exactly.
func TPCD(sf float64, seed int64) *DB {
	return tpcd.Generate(tpcd.Config{SF: sf, Seed: seed})
}

// The paper's workload queries.
const (
	// ExampleQuery is the §2 running example over EMP/DEPT.
	ExampleQuery = tpcd.ExampleQuery
	// Query1 is the §5.3 supplier/min-cost query (Figure 5).
	Query1 = tpcd.Query1
	// Query1b is its wide-predicate variant (Figure 6/7).
	Query1b = tpcd.Query1b
	// Query2 is the §5.3 average-quantity query (Figure 8).
	Query2 = tpcd.Query2
	// Query3 is the §5.3 non-linear UNION query (Figure 9).
	Query3 = tpcd.Query3
)

// Shared-nothing simulation (§6).
type (
	// ParallelConfig parameterizes the shared-nothing simulator.
	ParallelConfig = parallel.Config
	// ParallelResult is the simulated answer plus cost metrics.
	ParallelResult = parallel.Result
	// ParallelMetrics are messages, shipped rows, fragments, work and
	// makespan.
	ParallelMetrics = parallel.Metrics
)

// Observability: end-to-end pipeline tracing and process metrics (see
// docs/observability.md).
type (
	// Tracer threads span/event tracing through parse, semant, rewrite
	// rules, decorrelation, and per-box execution; assign one to
	// Engine.Tracer. A nil Tracer is fully disabled at zero cost.
	Tracer = trace.Tracer
	// TraceEvent is one finished span or instant event.
	TraceEvent = trace.Event
	// TraceSink receives finished trace events.
	TraceSink = trace.Sink
	// MetricsRegistry holds named monotonic counters, gauges, and latency
	// histograms with a snapshot/diff API.
	MetricsRegistry = trace.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = trace.Snapshot
	// Histogram is a lock-free log-bucketed latency histogram; obtain one
	// with Metrics.Histogram(name), record with Observe.
	Histogram = trace.Histogram
	// HistogramSnapshot is a point-in-time histogram summary
	// (count/sum/min/max and p50/p95/p99).
	HistogramSnapshot = trace.HistogramSnapshot
)

// Introspection: the live query registry and the sys.* system catalog
// (see docs/observability.md). Engine.MountSystemCatalog registers the
// sys.metrics, sys.histograms, sys.active_queries, sys.plan_cache, and
// sys.query_log virtual tables (enabling the registry as a side effect);
// Engine.EnableRegistry turns on query tracking alone; Engine.Kill cancels
// a running query by ID through the governor's cancellation path, so the
// victim fails with ErrCanceled.
type (
	// QueryRegistry tracks running queries (Active) and a bounded ring of
	// completed ones (Log).
	QueryRegistry = engine.Registry
	// ActiveQuery is a point-in-time view of one running query: ID,
	// statement text, strategy, start time, and live progress counters.
	ActiveQuery = engine.ActiveQuery
	// QueryLogEntry records one completed query: outcome, duration, error
	// text, budget-trip classification, and final progress counters.
	QueryLogEntry = engine.QueryLogEntry
)

// Metrics is the process-wide registry the engine, executor, and parallel
// simulator publish into.
var Metrics = trace.Metrics

// Query-lifecycle governance sentinels (see docs/robustness.md). Match
// them with errors.Is: every governed failure — a canceled context, an
// expired deadline, a tripped budget, a recovered operator panic — unwinds
// to the caller as one of these, and the engine stays fully usable for
// subsequent statements. Cancellation is requested through the *Context
// entry points (Engine.ExecContext/QueryContext, Prepared.RunParamsContext).
var (
	// ErrCanceled reports that the run's context was canceled mid-query.
	ErrCanceled = exec.ErrCanceled
	// ErrDeadlineExceeded reports an expired Limits.Timeout or context
	// deadline.
	ErrDeadlineExceeded = exec.ErrDeadlineExceeded
	// ErrRowBudget reports a MaxOutputRows or MaxIntermediateRows trip.
	ErrRowBudget = exec.ErrRowBudget
	// ErrMemBudget reports a MaxTrackedBytes trip.
	ErrMemBudget = exec.ErrMemBudget
	// ErrPanic marks an operator panic recovered into an error; the
	// concrete value is a *exec.PanicError carrying the operator stack.
	ErrPanic = exec.ErrPanic
)

// NewTracer creates a tracer emitting into sink.
func NewTracer(sink TraceSink) *Tracer { return trace.New(sink) }

// NewRingSink creates an in-memory sink holding the most recent limit
// events (non-positive means 4096).
func NewRingSink(limit int) *trace.RingSink { return trace.NewRingSink(limit) }

// NewJSONLSink creates a sink streaming one JSON object per event to w.
func NewJSONLSink(w io.Writer) *trace.JSONLSink { return trace.NewJSONLSink(w) }

// NewChromeSink creates a sink that writes a Chrome trace-event JSON
// document (chrome://tracing / Perfetto compatible) on Flush.
func NewChromeSink(w io.Writer) *trace.ChromeSink { return trace.NewChromeSink(w) }

// Parallel placements.
const (
	// PartitionByPrimaryKey spreads tables by key (the general case).
	PartitionByPrimaryKey = parallel.PartitionByPrimaryKey
	// PartitionByCorrelation co-partitions on the correlation attribute.
	PartitionByCorrelation = parallel.PartitionByCorrelation
)

// SimulateNestedIteration runs the §6.1 nested-iteration execution of the
// example query over a partitioned EMP/DEPT database.
func SimulateNestedIteration(db *DB, cfg ParallelConfig) (*ParallelResult, error) {
	return parallel.RunNestedIteration(db, cfg)
}

// SimulateMagic runs the §6.2 decorrelated execution.
func SimulateMagic(db *DB, cfg ParallelConfig) (*ParallelResult, error) {
	return parallel.RunMagic(db, cfg)
}

// ParallelPlanCost estimates the shared-nothing execution cost (messages,
// shipped rows, computation fragments) of any prepared plan — the §6
// analysis generalized beyond the example query.
func ParallelPlanCost(db *DB, p *Prepared, cfg ParallelConfig) ParallelMetrics {
	return parallel.PlanCost(db, p.Graph, cfg)
}
