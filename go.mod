module decorr

go 1.22
