// Benchmarks regenerating every table and figure of the paper's
// evaluation. Run them all with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark has one sub-benchmark per strategy; strategies the
// paper reports as inapplicable (Kim/Dayal on the non-linear Query 3) are
// skipped, mirroring the missing bars in the published figures. The
// work/op metric is the machine-independent row-operation count; shapes
// should be compared against EXPERIMENTS.md.
package decorr_test

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"decorr"
	"decorr/internal/classic"
	"decorr/internal/parallel"
)

// benchSF scales the benchmark database; -short quarters it.
func benchSF() float64 {
	if testing.Short() {
		return 0.025
	}
	return 0.1
}

var tpcdOnce = sync.OnceValue(func() *decorr.DB {
	return decorr.TPCD(benchSF(), 42)
})

var tpcdNoIndexOnce = sync.OnceValue(func() *decorr.DB {
	db := decorr.TPCD(benchSF(), 42)
	if err := db.MustTable("partsupp").DropIndex("ps_partkey"); err != nil {
		panic(err)
	}
	return db
})

var figureStrategies = []decorr.Strategy{
	decorr.NI, decorr.NIMemo, decorr.NIBatch, decorr.Kim, decorr.Dayal, decorr.Magic, decorr.OptMagic,
}

func benchFigure(b *testing.B, db *decorr.DB, sql string) {
	e := decorr.NewEngine(db)
	for _, s := range figureStrategies {
		b.Run(s.String(), func(b *testing.B) {
			p, err := e.Prepare(sql, s)
			if errors.Is(err, classic.ErrNotApplicable) {
				b.Skipf("%s: %v (matches the paper's missing bar)", s, err)
			}
			if err != nil {
				b.Fatal(err)
			}
			var work, invocations int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := p.Run()
				if err != nil {
					b.Fatal(err)
				}
				work = stats.Work()
				invocations = stats.SubqueryInvocations
			}
			b.ReportMetric(float64(work), "work/op")
			b.ReportMetric(float64(invocations), "subqinv/op")
		})
	}
}

// BenchmarkTable1 measures database generation and asserts the SF=1
// cardinality contract indirectly through scaled counts.
func BenchmarkTable1Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := decorr.TPCD(0.01, int64(i))
		if len(db.MustTable("lineitem").Rows) == 0 {
			b.Fatal("empty lineitem")
		}
	}
}

// BenchmarkFigure5 — Query 1 with all indexes present.
func BenchmarkFigure5(b *testing.B) { benchFigure(b, tpcdOnce(), decorr.Query1) }

// BenchmarkFigure6 — Query 1(b): no size predicate, two regions, thousands
// of (heavily duplicated) correlation bindings.
func BenchmarkFigure6(b *testing.B) { benchFigure(b, tpcdOnce(), decorr.Query1b) }

// BenchmarkFigure7 — Query 1(c): the index the subquery probes is dropped,
// inflating per-invocation cost.
func BenchmarkFigure7(b *testing.B) { benchFigure(b, tpcdNoIndexOnce(), decorr.Query1b) }

// BenchmarkFigure8 — Query 2: key correlation, cheap subquery;
// decorrelation must not hurt.
func BenchmarkFigure8(b *testing.B) { benchFigure(b, tpcdOnce(), decorr.Query2) }

// BenchmarkFigure9 — Query 3: non-linear UNION subquery, 5 distinct
// bindings; Kim and Dayal are skipped (inapplicable).
func BenchmarkFigure9(b *testing.B) { benchFigure(b, tpcdOnce(), decorr.Query3) }

// BenchmarkParallelSpeedup measures the real multi-core gain of the morsel
// scheduler: every Figure 5–9 workload, every strategy, workers=1 versus
// workers=NumCPU, reporting the wall-clock ratio as a speedup/op metric
// (1.0 on a single-CPU host — the scheduler degenerates to the inline
// sequential path there). The first iteration also re-verifies the
// determinism contract: both worker counts must produce identical rows in
// identical order.
func BenchmarkParallelSpeedup(b *testing.B) {
	ncpu := runtime.NumCPU()
	figures := []struct {
		name, sql string
		db        func() *decorr.DB
	}{
		{"Figure5", decorr.Query1, tpcdOnce},
		{"Figure6", decorr.Query1b, tpcdOnce},
		{"Figure7", decorr.Query1b, tpcdNoIndexOnce},
		{"Figure8", decorr.Query2, tpcdOnce},
		{"Figure9", decorr.Query3, tpcdOnce},
	}
	for _, fig := range figures {
		for _, s := range figureStrategies {
			b.Run(fig.name+"/"+s.String(), func(b *testing.B) {
				db := fig.db()
				prep := func(workers int) (*decorr.Prepared, error) {
					e := decorr.NewEngine(db)
					e.Workers = workers
					return e.Prepare(fig.sql, s)
				}
				p1, err := prep(1)
				if errors.Is(err, classic.ErrNotApplicable) {
					b.Skipf("%s: %v (matches the paper's missing bar)", s, err)
				}
				if err != nil {
					b.Fatal(err)
				}
				pN, err := prep(ncpu)
				if err != nil {
					b.Fatal(err)
				}
				rows1, _, err := p1.Run()
				if err != nil {
					b.Fatal(err)
				}
				rowsN, _, err := pN.Run()
				if err != nil {
					b.Fatal(err)
				}
				if len(rows1) != len(rowsN) {
					b.Fatalf("workers=1 produced %d rows, workers=%d produced %d", len(rows1), ncpu, len(rowsN))
				}
				for i := range rows1 {
					for j := range rows1[i] {
						if rows1[i][j].String() != rowsN[i][j].String() {
							b.Fatalf("row %d col %d: workers=1 %q, workers=%d %q",
								i, j, rows1[i][j], ncpu, rowsN[i][j])
						}
					}
				}
				var t1, tN time.Duration
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					start := time.Now()
					if _, _, err := p1.Run(); err != nil {
						b.Fatal(err)
					}
					t1 += time.Since(start)
					start = time.Now()
					if _, _, err := pN.Run(); err != nil {
						b.Fatal(err)
					}
					tN += time.Since(start)
				}
				if tN > 0 {
					b.ReportMetric(float64(t1)/float64(tN), "speedup/op")
				}
				b.ReportMetric(float64(ncpu), "workers")
			})
		}
	}
}

// BenchmarkFigureRowVsColumnar pits the vectorized executor against the
// row-at-a-time path on every Figure 5–9 workload at workers=1 (no
// parallelism — the ratio is pure batch-execution gain). The row and
// columnar sub-benchmarks carry allocs/op so the allocation reduction is
// visible next to the time; the speedup sub-benchmark interleaves both
// engines in one timed loop and reports the wall-clock ratio, verifying
// on the first iteration that the two paths produce identical rows in
// identical order. make bench-smoke lands all three in BENCH_exec.json.
func BenchmarkFigureRowVsColumnar(b *testing.B) {
	figures := []struct {
		name, sql string
		db        func() *decorr.DB
	}{
		{"Figure5", decorr.Query1, tpcdOnce},
		{"Figure6", decorr.Query1b, tpcdOnce},
		{"Figure7", decorr.Query1b, tpcdNoIndexOnce},
		{"Figure8", decorr.Query2, tpcdOnce},
		{"Figure9", decorr.Query3, tpcdOnce},
	}
	prep := func(b *testing.B, db *decorr.DB, sql string, rowMode bool) *decorr.Prepared {
		e := decorr.NewEngine(db)
		e.Workers = 1
		e.RowMode = rowMode
		p, err := e.Prepare(sql, decorr.Magic)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	for _, fig := range figures {
		b.Run(fig.name+"/row", func(b *testing.B) {
			p := prep(b, fig.db(), fig.sql, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fig.name+"/columnar", func(b *testing.B) {
			p := prep(b, fig.db(), fig.sql, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fig.name+"/speedup", func(b *testing.B) {
			db := fig.db()
			pRow := prep(b, db, fig.sql, true)
			pCol := prep(b, db, fig.sql, false)
			rowRows, _, err := pRow.Run()
			if err != nil {
				b.Fatal(err)
			}
			colRows, _, err := pCol.Run()
			if err != nil {
				b.Fatal(err)
			}
			if len(rowRows) != len(colRows) {
				b.Fatalf("row path produced %d rows, columnar %d", len(rowRows), len(colRows))
			}
			for i := range rowRows {
				for j := range rowRows[i] {
					if rowRows[i][j].String() != colRows[i][j].String() {
						b.Fatalf("row %d col %d: row path %q, columnar %q",
							i, j, rowRows[i][j], colRows[i][j])
					}
				}
			}
			var tRow, tCol time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, _, err := pRow.Run(); err != nil {
					b.Fatal(err)
				}
				tRow += time.Since(start)
				// Collect outside the timed windows so one engine's garbage
				// is not charged to the other's wall clock.
				runtime.GC()
				start = time.Now()
				if _, _, err := pCol.Run(); err != nil {
					b.Fatal(err)
				}
				tCol += time.Since(start)
				runtime.GC()
			}
			if tCol > 0 {
				b.ReportMetric(float64(tRow)/float64(tCol), "speedup/op")
			}
		})
	}
}

// BenchmarkExampleQuery — the §2 running example under every strategy
// (including Ganski/Wong, which applies to its single-table outer block).
func BenchmarkExampleQuery(b *testing.B) {
	e := decorr.NewEngine(decorr.EmpDept())
	for _, s := range []decorr.Strategy{
		decorr.NI, decorr.NIMemo, decorr.Kim, decorr.Dayal,
		decorr.GanskiWong, decorr.Magic, decorr.OptMagic,
	} {
		b.Run(s.String(), func(b *testing.B) {
			p, err := e.Prepare(decorr.ExampleQuery, s)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSection6 sweeps cluster sizes over the shared-nothing
// simulator, reporting fragments and messages per configuration.
func BenchmarkParallelSection6(b *testing.B) {
	db := decorr.EmpDeptSized(800, 4000, 32, 7)
	for _, nodes := range []int{2, 4, 8, 16, 32} {
		cfg := parallel.Config{Nodes: nodes}
		b.Run("NI/nodes="+itoa(nodes), func(b *testing.B) {
			var m parallel.Metrics
			for i := 0; i < b.N; i++ {
				r, err := parallel.RunNestedIteration(db, cfg)
				if err != nil {
					b.Fatal(err)
				}
				m = r.Metrics
			}
			b.ReportMetric(float64(m.Fragments), "fragments/op")
			b.ReportMetric(float64(m.Messages), "messages/op")
			b.ReportMetric(float64(m.Makespan), "makespan/op")
		})
		b.Run("Magic/nodes="+itoa(nodes), func(b *testing.B) {
			var m parallel.Metrics
			for i := 0; i < b.N; i++ {
				r, err := parallel.RunMagic(db, cfg)
				if err != nil {
					b.Fatal(err)
				}
				m = r.Metrics
			}
			b.ReportMetric(float64(m.Fragments), "fragments/op")
			b.ReportMetric(float64(m.Messages), "messages/op")
			b.ReportMetric(float64(m.Makespan), "makespan/op")
		})
	}
}

// BenchmarkAblationMaterializeCSE quantifies the §5.3 wish: materializing
// the supplementary common subexpression instead of recomputing it.
func BenchmarkAblationMaterializeCSE(b *testing.B) {
	for _, mat := range []bool{false, true} {
		name := "recompute"
		if mat {
			name = "materialize"
		}
		b.Run(name, func(b *testing.B) {
			e := decorr.NewEngine(tpcdOnce())
			e.MaterializeCSE = mat
			p, err := e.Prepare(decorr.Query1, decorr.Magic)
			if err != nil {
				b.Fatal(err)
			}
			var work int64
			for i := 0; i < b.N; i++ {
				_, stats, err := p.Run()
				if err != nil {
					b.Fatal(err)
				}
				work = stats.Work()
			}
			b.ReportMetric(float64(work), "work/op")
		})
	}
}

// BenchmarkAblationExistentialKnob compares decorrelating an EXISTS
// subquery against leaving it correlated (§4.4).
func BenchmarkAblationExistentialKnob(b *testing.B) {
	const existsQuery = `
		select d.name from dept d
		where d.budget < 10000 and exists
		  (select * from emp e where e.building = d.building)`
	db := decorr.EmpDeptSized(2000, 8000, 24, 5)
	for _, on := range []bool{true, false} {
		name := "decorrelate"
		if !on {
			name = "keep-correlated"
		}
		b.Run(name, func(b *testing.B) {
			e := decorr.NewEngine(db)
			e.CoreOpts.DecorrelateExistential = on
			p, err := e.Prepare(existsQuery, decorr.Magic)
			if err != nil {
				b.Fatal(err)
			}
			var inv int64
			for i := 0; i < b.N; i++ {
				_, stats, err := p.Run()
				if err != nil {
					b.Fatal(err)
				}
				inv = stats.SubqueryInvocations
			}
			b.ReportMetric(float64(inv), "subqinv/op")
		})
	}
}

// BenchmarkTraceOverhead measures the execution hot path with tracing
// disabled versus enabled. The disabled case is the contract: the tracer
// hooks are guarded by nil checks, so allocs/op must not exceed the
// pre-instrumentation baseline (compare the sub-benchmarks' allocs/op to
// see the tracing cost land only on the enabled side).
func BenchmarkTraceOverhead(b *testing.B) {
	e := decorr.NewEngine(decorr.EmpDept())
	p, err := e.Prepare(decorr.ExampleQuery, decorr.Magic)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("disabled", func(b *testing.B) {
		e.Tracer = nil
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		ring := decorr.NewRingSink(0)
		e.Tracer = decorr.NewTracer(ring)
		defer func() { e.Tracer = nil }()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Run(); err != nil {
				b.Fatal(err)
			}
			ring.Reset()
		}
	})
}

// BenchmarkRewriteOverhead isolates the cost of the magic decorrelation
// rewrite itself (parse + bind + decorrelate + cleanup).
func BenchmarkRewriteOverhead(b *testing.B) {
	e := decorr.NewEngine(tpcdOnce())
	for _, s := range []decorr.Strategy{decorr.NI, decorr.Magic} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Prepare(decorr.Query1, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanCache measures the prepared-plan cache. ColdPrepare runs
// the full parse → bind → rewrite → cost pipeline every iteration;
// WarmPrepare serves the same statement from the cache (the interesting
// ratio — the cache earns its keep at ≥5× here); WarmExec is the
// end-to-end repeated-statement path with a `?` parameter rebound per
// iteration; ConcurrentExec shares one cached engine across all procs.
func BenchmarkPlanCache(b *testing.B) {
	db := decorr.EmpDept()
	const paramQ = "select name from emp where building = ?"
	b.Run("ColdPrepare", func(b *testing.B) {
		e := decorr.NewEngine(db)
		for i := 0; i < b.N; i++ {
			if _, err := e.Prepare(decorr.ExampleQuery, decorr.Magic); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("WarmPrepare", func(b *testing.B) {
		e := decorr.NewEngine(db)
		e.EnablePlanCache(64)
		if _, err := e.PrepareCached(decorr.ExampleQuery, decorr.Magic); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.PrepareCached(decorr.ExampleQuery, decorr.Magic); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("WarmExec", func(b *testing.B) {
		e := decorr.NewEngine(db)
		e.EnablePlanCache(64)
		buildings := []decorr.Value{decorr.String("B1"), decorr.String("B2"), decorr.String("B3")}
		if _, _, err := e.ExecParams(paramQ, decorr.Magic, buildings[:1]); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.ExecParams(paramQ, decorr.Magic, buildings[i%3:i%3+1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ConcurrentExec", func(b *testing.B) {
		e := decorr.NewEngine(db)
		e.EnablePlanCache(64)
		if _, _, err := e.ExecParams(paramQ, decorr.Magic, []decorr.Value{decorr.String("B1")}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			args := []decorr.Value{decorr.String("B2")}
			for pb.Next() {
				if _, _, err := e.ExecParams(paramQ, decorr.Magic, args); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkObservabilityOverhead compares one engine with the full
// observability surface enabled (query registry, mounted sys.* catalog —
// which wraps every run in a cancelable context and so buys a governor
// checkpoint per morsel claim and box eval) against a bare engine, both on
// the cached-plan hot path where fixed per-query cost is largest relative
// to work. The iterations interleave the engines and are split into
// batches; the comparison uses each engine's fastest batch, which filters
// scheduler preemptions and GC pauses out of both sides — a mean would
// attribute whichever side a pause landed on. Reports ns-bare/op,
// ns-observed/op, and overhead-pct; at a meaningful iteration count it
// fails if the overhead exceeds the 5% budget (make obs-smoke emits
// BENCH_obs.json from this).
func BenchmarkObservabilityOverhead(b *testing.B) {
	db := decorr.EmpDept()
	bare := decorr.NewEngine(db)
	bare.EnablePlanCache(64)
	observed := decorr.NewEngine(db)
	observed.EnablePlanCache(64)
	observed.MountSystemCatalog()
	for _, e := range []*decorr.Engine{bare, observed} {
		if _, _, err := e.Query(decorr.ExampleQuery, decorr.OptMagic); err != nil {
			b.Fatal(err)
		}
	}
	batches := 10
	if b.N < batches {
		batches = 1
	}
	per := b.N / batches
	minBare, minObserved := time.Duration(1<<62), time.Duration(1<<62)
	done := 0
	b.ResetTimer()
	for batch := 0; batch < batches; batch++ {
		n := per
		if batch == batches-1 {
			n = b.N - done // the last batch absorbs the remainder
		}
		done += n
		var tBare, tObserved time.Duration
		for i := 0; i < n; i++ {
			start := time.Now()
			if _, _, err := bare.Query(decorr.ExampleQuery, decorr.OptMagic); err != nil {
				b.Fatal(err)
			}
			tBare += time.Since(start)
			start = time.Now()
			if _, _, err := observed.Query(decorr.ExampleQuery, decorr.OptMagic); err != nil {
				b.Fatal(err)
			}
			tObserved += time.Since(start)
		}
		if d := tBare / time.Duration(n); d < minBare {
			minBare = d
		}
		if d := tObserved / time.Duration(n); d < minObserved {
			minObserved = d
		}
	}
	b.StopTimer()
	nsBare := float64(minBare.Nanoseconds())
	nsObserved := float64(minObserved.Nanoseconds())
	pct := (nsObserved - nsBare) / nsBare * 100
	b.ReportMetric(nsBare, "ns-bare/op")
	b.ReportMetric(nsObserved, "ns-observed/op")
	b.ReportMetric(pct, "overhead-pct")
	if b.N >= 1000 && pct >= 5 {
		b.Fatalf("observability overhead %.2f%% exceeds the 5%% budget (bare %.0f ns/op, observed %.0f ns/op)",
			pct, nsBare, nsObserved)
	}
}

// fanoutOnce builds the high-fan-out workload of the batched-subquery
// benchmark: 600 outer rows sharing 61 distinct correlation values probe a
// 2000-row inner table with NO index on the correlation column. Per-row
// nested iteration pays a full inner scan per outer row (600 scans); the
// batched executor collapses the fan-out to one decorrelated execution of
// the shared signature.
var fanoutOnce = sync.OnceValue(func() *decorr.DB {
	db := decorr.NewDB()
	outr := db.Create(decorr.NewTable("outr",
		decorr.Column{Name: "id", Type: decorr.TInt},
		decorr.Column{Name: "k", Type: decorr.TInt}))
	for i := 0; i < 600; i++ {
		if err := outr.Insert(decorr.Row{decorr.Int(int64(i)), decorr.Int(int64(i % 61))}); err != nil {
			panic(err)
		}
	}
	innr := db.Create(decorr.NewTable("innr",
		decorr.Column{Name: "k", Type: decorr.TInt},
		decorr.Column{Name: "v", Type: decorr.TInt}))
	for i := 0; i < 2000; i++ {
		if err := innr.Insert(decorr.Row{decorr.Int(int64(i % 40)), decorr.Int(int64(i))}); err != nil {
			panic(err)
		}
	}
	return db
})

const fanoutQuery = `Select O.id From outr O
Where Exists (Select * From innr I Where I.k = O.k)
Order By O.id`

// BenchmarkFigureBatchedFanout measures runtime subquery batching against
// per-row nested iteration on the high-fan-out shape NIBatch targets. The
// speedup sub-benchmark interleaves both strategies in one timed loop
// (verifying identical rows in identical order on the first iteration) and
// reports the wall-clock ratio; make bench-smoke lands it in
// BENCH_exec.json.
func BenchmarkFigureBatchedFanout(b *testing.B) {
	prep := func(b *testing.B, db *decorr.DB, s decorr.Strategy) *decorr.Prepared {
		e := decorr.NewEngine(db)
		e.Workers = 1
		p, err := e.Prepare(fanoutQuery, s)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	b.Run("ni", func(b *testing.B) {
		p := prep(b, fanoutOnce(), decorr.NI)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		p := prep(b, fanoutOnce(), decorr.NIBatch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("speedup", func(b *testing.B) {
		db := fanoutOnce()
		pNI := prep(b, db, decorr.NI)
		pBat := prep(b, db, decorr.NIBatch)
		niRows, _, err := pNI.Run()
		if err != nil {
			b.Fatal(err)
		}
		batRows, batStats, err := pBat.Run()
		if err != nil {
			b.Fatal(err)
		}
		if batStats.BatchExecutions == 0 {
			b.Fatal("batched path never engaged on the fan-out workload")
		}
		if len(niRows) != len(batRows) {
			b.Fatalf("NI produced %d rows, NIBatch %d", len(niRows), len(batRows))
		}
		for i := range niRows {
			for j := range niRows[i] {
				if niRows[i][j].String() != batRows[i][j].String() {
					b.Fatalf("row %d col %d: NI %q, NIBatch %q",
						i, j, niRows[i][j], batRows[i][j])
				}
			}
		}
		var tNI, tBat time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			if _, _, err := pNI.Run(); err != nil {
				b.Fatal(err)
			}
			tNI += time.Since(start)
			// Collect outside the timed windows so one strategy's garbage
			// is not charged to the other's wall clock.
			runtime.GC()
			start = time.Now()
			if _, _, err := pBat.Run(); err != nil {
				b.Fatal(err)
			}
			tBat += time.Since(start)
			runtime.GC()
		}
		if tBat > 0 {
			b.ReportMetric(float64(tNI)/float64(tBat), "speedup/op")
		}
	})
}
