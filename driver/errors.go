package driver

import "errors"

// ErrTransport is the sentinel for mid-request transport failures:
// errors.Is(err, ErrTransport) holds when the connection died after the
// driver started writing a request (or while reading its reply), so the
// server may or may not have executed the statement. The driver
// deliberately does NOT surface these as driver.ErrBadConn — that would
// make database/sql retry transparently and risk executing the
// statement twice. Callers that know their statement is idempotent can
// classify with this sentinel and retry themselves.
var ErrTransport = errors.New("decorr: transport failure")

// TransportError wraps the underlying I/O failure of a mid-request
// transport error with the protocol operation that hit it.
type TransportError struct {
	// Op is the protocol operation: "write" (request may be partially
	// sent) or "read" (request sent, reply lost).
	Op  string
	Err error
}

func (e *TransportError) Error() string {
	return "decorr: transport failure during " + e.Op + ": " + e.Err.Error()
}

// Unwrap exposes the underlying I/O error for errors.Is/As chains.
func (e *TransportError) Unwrap() error { return e.Err }

// Is matches the ErrTransport sentinel.
func (e *TransportError) Is(target error) bool { return target == ErrTransport }
