package driver

import (
	"database/sql/driver"
	"fmt"
	"io"

	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/wire"
)

// rows streams one cursor's result. It buffers at most one fetch reply:
// Next serves from the buffer and pulls the next batch from the server
// only when the buffer drains, so client-side memory is one batch
// regardless of result size.
type rows struct {
	c          *conn
	cursorID   uint64
	columns    []string
	buf        []storage.Row
	pos        int
	done       bool
	finalErr   error // terminal error, replayed on every Next after it
	stopCancel func()
}

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.columns }

// Next implements driver.Rows.
func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.buf) {
		if r.done {
			if r.finalErr != nil {
				return r.finalErr
			}
			return io.EOF
		}
		if err := r.fetch(); err != nil {
			return err
		}
		if r.done {
			if r.finalErr != nil {
				return r.finalErr
			}
			return io.EOF
		}
	}
	row := r.buf[r.pos]
	r.pos++
	for i := range dest {
		if i < len(row) {
			dest[i] = toDriverValue(row[i])
		} else {
			dest[i] = nil
		}
	}
	return nil
}

// fetch pulls one batch. Done and query errors both mark the cursor
// finished — the server has already closed it on its side.
func (r *rows) fetch() error {
	reply, err := r.c.rpc(&wire.Fetch{CursorID: r.cursorID, MaxRows: r.c.cfg.fetch})
	if err != nil {
		r.done = true
		r.finalErr = err
		return err
	}
	switch m := reply.(type) {
	case *wire.Batch:
		r.buf, r.pos = m.Rows, 0
		return nil
	case *wire.Done:
		r.done = true
		return nil
	default:
		r.c.broken = true
		r.done = true
		r.finalErr = fmt.Errorf("decorr: unexpected fetch reply %T", reply)
		return r.finalErr
	}
}

// Close implements driver.Rows. Closing an unfinished cursor abandons it
// server-side (the registry logs the rows streamed so far); closing a
// finished one only releases the cancel watcher.
func (r *rows) Close() error {
	if r.stopCancel != nil {
		r.stopCancel()
		r.stopCancel = nil
	}
	if r.done || r.c.broken {
		return nil
	}
	r.done = true
	// CloseCursor is idempotent server-side, so racing a concurrent Done
	// is harmless.
	reply, err := r.c.rpc(&wire.CloseCursor{CursorID: r.cursorID})
	if err != nil {
		return err
	}
	if _, ok := reply.(*wire.CloseOK); !ok {
		r.c.broken = true
		return fmt.Errorf("decorr: unexpected close reply %T", reply)
	}
	return nil
}

// toDriverValue maps an engine value onto database/sql's value domain.
func toDriverValue(v sqltypes.Value) driver.Value {
	switch v.K {
	case sqltypes.KindNull:
		return nil
	case sqltypes.KindInt:
		return v.I
	case sqltypes.KindFloat:
		return v.F
	case sqltypes.KindString:
		return v.S
	case sqltypes.KindBool:
		return v.B
	}
	return nil
}
