package driver

import (
	"context"
	"database/sql/driver"

	"decorr/internal/wire"
)

// stmt is a server-side prepared statement handle. The plan lives in the
// server's plan cache; re-executing with new parameter bindings skips
// parsing and rewriting entirely.
type stmt struct {
	c         *conn
	id        uint64
	numParams int
	columns   []string
}

// Close implements driver.Stmt.
func (s *stmt) Close() error {
	// The conn may already be gone (pool shutdown); closing a handle on a
	// broken conn is a no-op, not an error.
	if s.c.broken {
		return nil
	}
	_, err := s.c.rpc(&wire.CloseStmt{StmtID: s.id})
	return err
}

// NumInput implements driver.Stmt: database/sql pre-checks arity.
func (s *stmt) NumInput() int { return s.numParams }

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.QueryContext(context.Background(), namedValues(args))
}

// QueryContext implements driver.StmtQueryContext.
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	params, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	return s.c.execute(ctx, &wire.Execute{StmtID: s.id, Params: params})
}

// Exec implements driver.Stmt.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.ExecContext(context.Background(), namedValues(args))
}

// ExecContext implements driver.StmtExecContext.
func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	params, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	return s.c.exec(ctx, &wire.Exec{StmtID: s.id, Params: params})
}

// namedValues adapts the legacy positional-args form.
func namedValues(args []driver.Value) []driver.NamedValue {
	out := make([]driver.NamedValue, len(args))
	for i, v := range args {
		out[i] = driver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return out
}
