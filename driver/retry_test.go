package driver

import (
	"context"
	"database/sql/driver"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"decorr/internal/wire"
)

// scriptConn is an in-memory conn whose reads replay scripted reply
// frames and whose writes can be made to fail after n bytes.
type scriptConn struct {
	replies   []wire.Message // consumed one per wire.Read
	replyBuf  []byte
	failAfter int64 // write bytes accepted before failing; -1 = never
	written   int64
	readErr   error
}

func (c *scriptConn) Read(p []byte) (int, error) {
	if c.readErr != nil {
		return 0, c.readErr
	}
	if len(c.replyBuf) == 0 {
		if len(c.replies) == 0 {
			return 0, io.EOF
		}
		var buf writerBuf
		if err := wire.Write(&buf, c.replies[0]); err != nil {
			return 0, err
		}
		c.replies = c.replies[1:]
		c.replyBuf = buf.b
	}
	n := copy(p, c.replyBuf)
	c.replyBuf = c.replyBuf[n:]
	return n, nil
}

func (c *scriptConn) Write(p []byte) (int, error) {
	if c.failAfter >= 0 && c.written+int64(len(p)) > c.failAfter {
		accept := c.failAfter - c.written
		if accept < 0 {
			accept = 0
		}
		c.written += accept
		return int(accept), errors.New("scripted write failure")
	}
	c.written += int64(len(p))
	return len(p), nil
}

func (c *scriptConn) Close() error { return nil }

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func testConn(sc *scriptConn) *conn {
	return &conn{nc: sc, cfg: config{retries: 2}, rng: newRNG(7)}
}

// ErrBadConn discipline: a write that put zero bytes on the wire may be
// retried transparently (the server never saw it); once any byte went
// out, the failure must surface as ErrTransport instead.
func TestRPCBadConnOnlyWhenNothingWritten(t *testing.T) {
	c := testConn(&scriptConn{failAfter: 0})
	if _, err := c.rpc(&wire.Ping{}); !errors.Is(err, driver.ErrBadConn) {
		t.Fatalf("unsent request: err = %v, want ErrBadConn", err)
	}
	if c.IsValid() {
		t.Fatal("conn still valid after a transport failure")
	}

	c = testConn(&scriptConn{failAfter: 3}) // header is 5 bytes: partial write
	_, err := c.rpc(&wire.Ping{})
	if errors.Is(err, driver.ErrBadConn) {
		t.Fatalf("partially sent request surfaced as ErrBadConn: %v", err)
	}
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("partially sent request: err = %v, want ErrTransport", err)
	}
	var te *TransportError
	if !errors.As(err, &te) || te.Op != "write" {
		t.Fatalf("err = %#v, want *TransportError{Op: write}", err)
	}

	c = testConn(&scriptConn{failAfter: -1, readErr: io.ErrUnexpectedEOF})
	_, err = c.rpc(&wire.Ping{})
	if errors.Is(err, driver.ErrBadConn) || !errors.Is(err, ErrTransport) {
		t.Fatalf("lost reply: err = %v, want ErrTransport (not ErrBadConn)", err)
	}
	if !errors.As(err, &te) || te.Op != "read" {
		t.Fatalf("err = %#v, want *TransportError{Op: read}", err)
	}
}

// Overload sheds are retried on the same connection, honoring the retry
// budget; a drain refusal surrenders the conn as ErrBadConn.
func TestRPCRetryOverloadedAndDrain(t *testing.T) {
	overloaded := &wire.Error{Code: wire.CodeOverloaded, Msg: "busy", Retryable: true, RetryAfterMs: 1}
	c := testConn(&scriptConn{failAfter: -1, replies: []wire.Message{overloaded, overloaded, &wire.Pong{}}})
	reply, err := c.rpcRetry(context.Background(), &wire.Ping{})
	if err != nil {
		t.Fatalf("rpcRetry past two sheds = %v", err)
	}
	if _, ok := reply.(*wire.Pong); !ok {
		t.Fatalf("reply = %T, want Pong", reply)
	}

	// Budget exhausted: the shed error surfaces.
	c = testConn(&scriptConn{failAfter: -1, replies: []wire.Message{overloaded, overloaded, overloaded, overloaded}})
	_, err = c.rpcRetry(context.Background(), &wire.Ping{})
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeOverloaded {
		t.Fatalf("exhausted retries: err = %v, want CodeOverloaded", err)
	}

	// Drain refusal: ErrBadConn immediately (provably not executed, and
	// this session will never accept work again).
	drain := &wire.Error{Code: wire.CodeUnavailable, Msg: "draining", Retryable: true, RetryAfterMs: 1}
	c = testConn(&scriptConn{failAfter: -1, replies: []wire.Message{drain}})
	if _, err := c.rpcRetry(context.Background(), &wire.Ping{}); !errors.Is(err, driver.ErrBadConn) {
		t.Fatalf("drain refusal: err = %v, want ErrBadConn", err)
	}
	if c.IsValid() {
		t.Fatal("conn still valid after a drain refusal")
	}

	// A canceled context stops the backoff loop.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c = testConn(&scriptConn{failAfter: -1, replies: []wire.Message{overloaded, &wire.Pong{}}})
	if _, err := c.rpcRetry(ctx, &wire.Ping{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled backoff: err = %v, want context.Canceled", err)
	}
}

// A mid-request transport failure on Ping maps to ErrBadConn — pings
// have no server-side effect, so the pool may probe another conn.
func TestPingTransportFailureIsBadConn(t *testing.T) {
	c := testConn(&scriptConn{failAfter: -1, readErr: io.EOF})
	if err := c.Ping(context.Background()); !errors.Is(err, driver.ErrBadConn) {
		t.Fatalf("ping over dead conn = %v, want ErrBadConn", err)
	}
}

// Connector.Connect retries retryable handshake rejections with backoff
// and gives up on non-retryable ones immediately.
func TestConnectRetriesRetryableRejections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var dials atomic.Int64
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			n := dials.Add(1)
			go func(nc net.Conn, n int64) {
				defer nc.Close()
				if _, err := wire.Read(nc); err != nil {
					return
				}
				if n <= 2 {
					wire.Write(nc, &wire.Error{Code: wire.CodeUnavailable, Msg: "draining", Retryable: true, RetryAfterMs: 1})
					return
				}
				wire.Write(nc, &wire.HelloOK{Version: wire.Version, ServerName: "t"})
				// Keep the session open briefly so the client's probe sees
				// a healthy conn.
				time.Sleep(200 * time.Millisecond)
			}(nc, n)
		}
	}()

	cfg, err := parseDSN(ln.Addr().String() + "?retries=4&retry_seed=1")
	if err != nil {
		t.Fatal(err)
	}
	cn, err := (&connector{cfg: cfg}).Connect(context.Background())
	if err != nil {
		t.Fatalf("Connect past two drain refusals = %v", err)
	}
	cn.Close()
	if got := dials.Load(); got != 3 {
		t.Fatalf("dial count = %d, want 3", got)
	}

	retried := cRetries.Value()
	if retried == 0 {
		t.Fatal("driver.retries counter never moved")
	}
}

// A non-retryable handshake rejection (version mismatch style) must not
// be retried.
func TestConnectDoesNotRetryNonRetryable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var dials atomic.Int64
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			dials.Add(1)
			go func(nc net.Conn) {
				defer nc.Close()
				if _, err := wire.Read(nc); err != nil {
					return
				}
				wire.Write(nc, &wire.Error{Code: wire.CodeProtocol, Msg: "no"})
			}(nc)
		}
	}()
	cfg, err := parseDSN(ln.Addr().String() + "?retries=4")
	if err != nil {
		t.Fatal(err)
	}
	_, err = (&connector{cfg: cfg}).Connect(context.Background())
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeProtocol {
		t.Fatalf("Connect = %v, want the protocol rejection", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("non-retryable rejection dialed %d times", got)
	}
}

// The resilience DSN options parse, validate, and default.
func TestDSNResilienceOptions(t *testing.T) {
	cfg, err := parseDSN("h:1?dial_timeout=250ms&retries=7&retry_seed=99")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.dialTimeout != 250*time.Millisecond || cfg.retries != 7 || cfg.retrySeed != 99 {
		t.Fatalf("cfg = %+v", cfg)
	}
	cfg, err = parseDSN("h:1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.dialTimeout != DefaultDialTimeout || cfg.retries != DefaultRetries {
		t.Fatalf("defaults: cfg = %+v", cfg)
	}
	if cfg.retrySeed == 0 {
		t.Fatal("default retry_seed is zero, want an address-derived seed")
	}
	other, _ := parseDSN("h:2")
	if other.retrySeed == cfg.retrySeed {
		t.Fatal("distinct addresses share a retry seed")
	}
	for _, bad := range []string{"h:1?dial_timeout=x", "h:1?retries=-1", "h:1?retry_seed=abc"} {
		if _, err := parseDSN(bad); err == nil {
			t.Fatalf("parseDSN(%q) accepted a bad value", bad)
		}
	}
}

// Backoff is deterministic under a seed, grows with attempts, respects
// the cap, and never drops below the server's hint.
func TestBackoffDelay(t *testing.T) {
	a := newRNG(42)
	b := newRNG(42)
	for i := 0; i < 10; i++ {
		da, db := backoffDelay(a, i, 0), backoffDelay(b, i, 0)
		if da != db {
			t.Fatalf("attempt %d: same seed produced %v and %v", i, da, db)
		}
		base := retryBase << i
		if base > retryCap || base <= 0 {
			base = retryCap
		}
		if da < base/2 || da > base {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, da, base/2, base)
		}
	}
	if d := backoffDelay(newRNG(1), 0, 500*time.Millisecond); d < 500*time.Millisecond {
		t.Fatalf("delay %v ignored the 500ms server hint", d)
	}
}

// An idle pooled conn whose server has gone away must be discarded by
// ResetSession (as ErrBadConn) instead of surfacing a mid-request
// transport error to the next query.
func TestResetSessionDetectsDeadServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		if _, err := wire.Read(nc); err == nil {
			wire.Write(nc, &wire.HelloOK{Version: wire.Version, ServerName: "t"})
		}
		accepted <- nc
	}()
	cfg, err := parseDSN(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cn, err := dial(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	srvConn := <-accepted

	if err := cn.ResetSession(context.Background()); err != nil {
		t.Fatalf("ResetSession on a live conn = %v", err)
	}
	srvConn.Close()
	// Give the FIN a moment to arrive.
	deadline := time.Now().Add(5 * time.Second)
	for cn.ResetSession(context.Background()) == nil {
		if time.Now().After(deadline) {
			t.Fatal("ResetSession never noticed the server closing the conn")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(cn.ResetSession(context.Background()), driver.ErrBadConn) {
		t.Fatal("dead idle conn did not report ErrBadConn")
	}
}
