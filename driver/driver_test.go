package driver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"decorr/internal/engine"
	"decorr/internal/exec"
	"decorr/internal/server"
	"decorr/internal/tpcd"
	"decorr/internal/wire"
)

// startServer serves a sized EmpDept engine on loopback and returns its
// address.
func startServer(t *testing.T, nEmp int, limits exec.Limits) (string, *engine.Engine) {
	t.Helper()
	e := engine.New(tpcd.EmpDeptSized(40, nEmp, 6, 11))
	e.Limits = limits
	e.EnablePlanCache(64)
	e.MountSystemCatalog()
	srv := server.New(server.Config{Engine: e})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), e
}

func openDB(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	db, err := sql.Open("decorr", dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestDriverQueryRoundTrip(t *testing.T) {
	addr, eng := startServer(t, 500, exec.Limits{})
	db := openDB(t, addr)
	if err := db.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	want, _, err := eng.Query("select name, building from emp where building <> 'B1'", engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("select name, building from emp where building <> 'B1'")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil || len(cols) != 2 || cols[0] != "name" || cols[1] != "building" {
		t.Fatalf("columns = %v, %v", cols, err)
	}
	var got []string
	for rows.Next() {
		var name, building string
		if err := rows.Scan(&name, &building); err != nil {
			t.Fatal(err)
		}
		got = append(got, name+"|"+building)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i, w := range want {
		if s := w[0].String() + "|" + w[1].String(); got[i] != s {
			t.Fatalf("row %d: got %q want %q", i, got[i], s)
		}
	}
}

// Prepared statements bind parameters per execution, NULLs and every
// scalar kind cross the wire intact, and aggregates come back typed.
func TestDriverPreparedAndTypes(t *testing.T) {
	addr, _ := startServer(t, 300, exec.Limits{})
	db := openDB(t, addr)

	stmt, err := db.Prepare("select count(*) from emp where building = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	var total int64
	for _, b := range []string{"B1", "B2", "B3"} {
		var n int64
		if err := stmt.QueryRow(b).Scan(&n); err != nil {
			t.Fatalf("building %s: %v", b, err)
		}
		if n <= 0 {
			t.Fatalf("building %s: count %d", b, n)
		}
		total += n
	}
	// Wrong arity is rejected client-side by database/sql via NumInput.
	if _, err := stmt.Query(); err == nil {
		t.Fatal("missing parameter accepted")
	}

	var avg float64
	if err := db.QueryRow("select avg(budget) from dept").Scan(&avg); err != nil {
		t.Fatal(err)
	}
	if avg <= 0 {
		t.Fatalf("avg(budget) = %v", avg)
	}
	_ = total
}

// DDL goes through Exec; the created view is queryable on the same pool.
func TestDriverExecDDL(t *testing.T) {
	addr, _ := startServer(t, 100, exec.Limits{})
	db := openDB(t, addr)
	if _, err := db.Exec("create view rich as select name from dept where budget > 100"); err != nil {
		t.Fatalf("create view: %v", err)
	}
	var n int64
	if err := db.QueryRow("select count(*) from rich").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("view returned no rows")
	}
	// Errors are ordinary: a bad statement fails without poisoning the pool.
	if _, err := db.Exec("create view broken as select nope from dept"); err == nil {
		t.Fatal("bad view accepted")
	}
	if err := db.Ping(); err != nil {
		t.Fatalf("pool unusable after statement error: %v", err)
	}
}

// A row budget tripped server-side surfaces through database/sql with
// its typed identity intact.
func TestDriverTypedBudgetError(t *testing.T) {
	addr, _ := startServer(t, 4000, exec.Limits{MaxOutputRows: 100})
	db := openDB(t, addr)
	rows, err := db.Query("select name from emp")
	if err != nil {
		// The trip may beat the first batch; either surface is fine.
		if !errors.Is(err, exec.ErrRowBudget) {
			t.Fatalf("query error %v does not match exec.ErrRowBudget", err)
		}
		return
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); !errors.Is(err, exec.ErrRowBudget) {
		t.Fatalf("rows.Err() = %v, want exec.ErrRowBudget (after %d rows)", err, n)
	}
	if n > 100 {
		t.Fatalf("%d rows crossed the wire past a 100-row budget", n)
	}
}

// Canceling the query context mid-stream terminates iteration with a
// cancellation error and leaves the pool usable. (Whether the typed
// server-side error or database/sql's own context.Canceled surfaces
// first is a benign race between the out-of-band kill and database/sql
// closing the rows; the deterministic out-of-band path is pinned by
// TestDriverOutOfBandCancel.)
func TestDriverContextCancelMidStream(t *testing.T) {
	addr, _ := startServer(t, 50000, exec.Limits{})
	db := openDB(t, "decorr://"+addr+"?fetch=64")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := db.QueryContext(ctx, "select name from emp")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	// Read a few rows to prove the stream is live, then cancel.
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended after %d rows: %v", i, rows.Err())
		}
	}
	cancel()
	for rows.Next() {
	}
	err = rows.Err()
	if !errors.Is(err, exec.ErrCanceled) && !errors.Is(err, context.Canceled) {
		t.Fatalf("rows.Err() = %v, want a cancellation error", err)
	}
	// The pool recovers: the canceled conn may be discarded, but new
	// queries work.
	var n int64
	if err := db.QueryRow("select count(*) from dept").Scan(&n); err != nil {
		t.Fatalf("pool unusable after cancel: %v", err)
	}
}

// The out-of-band cancel path, deterministically: below database/sql
// (whose own context watcher would race the kill by closing the rows),
// cancel the context mid-stream and verify the server-side query dies
// with the typed error and a "canceled" query-log classification.
func TestDriverOutOfBandCancel(t *testing.T) {
	addr, eng := startServer(t, 50000, exec.Limits{})
	cfg, err := parseDSN(addr + "?fetch=64")
	if err != nil {
		t.Fatal(err)
	}
	c, err := dial(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const sql = "select name from emp"
	r, err := c.execute(ctx, &wire.Execute{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dest := make([]driver.Value, 1)
	for i := 0; i < 10; i++ {
		if err := r.Next(dest); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	cancel()
	var finalErr error
	for {
		if err := r.Next(dest); err != nil {
			if err == io.EOF {
				t.Fatal("stream drained fully before the out-of-band cancel landed")
			}
			finalErr = err
			break
		}
	}
	if !errors.Is(finalErr, exec.ErrCanceled) {
		t.Fatalf("terminal error %v does not match exec.ErrCanceled", finalErr)
	}
	// The kill lands in the query log as a "canceled" trip. (The log
	// records the plan's normalized text, so match the classification —
	// this server instance kills exactly one query.)
	deadline := time.Now().Add(5 * time.Second)
	for {
		found := false
		for _, le := range eng.Registry().Log() {
			if le.Trip == "canceled" {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("canceled query never reached the query log")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The connection survives its query being killed.
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("conn unusable after kill: %v", err)
	}
}

// Abandoning rows early (Close before exhaustion) releases the cursor
// server-side and the connection stays usable.
func TestDriverEarlyClose(t *testing.T) {
	addr, eng := startServer(t, 20000, exec.Limits{})
	db := openDB(t, addr)
	db.SetMaxOpenConns(1) // force reuse of the same conn
	rows, err := db.Query("select name from emp")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no first row")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db.QueryRow("select count(*) from emp").Scan(&n); err != nil {
		t.Fatalf("conn unusable after early close: %v", err)
	}
	if n != 20000 {
		t.Fatalf("count(*) = %d", n)
	}
	// The abandoned query is logged cleanly, not as an error.
	for _, le := range eng.Registry().Log() {
		if le.Text == "select name from emp" && le.Err != "" {
			t.Fatalf("abandoned query logged an error: %q", le.Err)
		}
	}
}

// DSN parsing: session options reach the server (bad ones fail the
// connect), unknown keys are rejected client-side.
func TestDriverDSN(t *testing.T) {
	addr, _ := startServer(t, 100, exec.Limits{})
	good := openDB(t, "decorr://"+addr+"?strategy=magic&workers=2&fetch=16")
	if err := good.Ping(); err != nil {
		t.Fatalf("good DSN: %v", err)
	}
	var name string
	if err := good.QueryRow(tpcd.ExampleQuery).Scan(&name); err != nil && err != sql.ErrNoRows {
		t.Fatalf("decorrelated query over DSN strategy: %v", err)
	}

	bad := openDB(t, addr+"?strategy=bogus")
	if err := bad.Ping(); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	if _, err := sql.Open("decorr", addr+"?nope=1"); err == nil {
		// sql.Open defers dialing but parses the DSN through OpenConnector.
		t.Fatal("unknown DSN key accepted")
	}
	if _, err := sql.Open("decorr", "?strategy=ni"); err == nil {
		t.Fatal("empty address accepted")
	}
}

// Unsupported features fail loudly rather than silently.
func TestDriverUnsupported(t *testing.T) {
	addr, _ := startServer(t, 50, exec.Limits{})
	db := openDB(t, addr)
	if _, err := db.Begin(); err == nil {
		t.Fatal("transactions accepted")
	}
	if _, err := db.Query("select name from dept where name = ?", time.Now()); err == nil {
		t.Fatal("time.Time parameter accepted")
	}
}

func ExampleDriver() {
	// db, _ := sql.Open("decorr", "127.0.0.1:7531?strategy=auto")
	// rows, _ := db.Query("select name from emp where building = ?", "B1")
	fmt.Println("see package documentation")
	// Output: see package documentation
}
