package driver

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"decorr/internal/trace"
	"decorr/internal/wire"
)

// Retry/backoff policy. Dials and retryable server rejections (drain,
// overload) are retried with seeded-jitter exponential backoff: the
// jitter decorrelates a thundering herd of clients reconnecting to a
// restarted server, and the seed (retry_seed DSN option) makes a chaos
// run's exact retry timing reproducible.
const (
	// DefaultRetries is how many times a dial or retryable rejection is
	// retried before the error surfaces (retries DSN option).
	DefaultRetries = 4
	// DefaultDialTimeout bounds each dial-plus-handshake attempt
	// (dial_timeout DSN option).
	DefaultDialTimeout = 5 * time.Second

	retryBase = 25 * time.Millisecond
	retryCap  = time.Second
)

// cRetries counts every backoff-and-retry the driver performs, published
// in trace.Metrics (sys.metrics, Prometheus) as driver.retries.
var cRetries = trace.Metrics.Counter("driver.retries")

// connectSeq perturbs the per-connection RNG stream so concurrent dials
// from one process do not share a jitter sequence (which would
// re-synchronize the herd the jitter exists to spread).
var connectSeq atomic.Uint64

// rng is a splitmix64 stream: deterministic from its seed, no locks, no
// global state — retry timing replays exactly under a fixed retry_seed.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// backoffDelay computes attempt's wait: exponential growth from
// retryBase capped at retryCap, jittered into [d/2, d], floored at the
// server's retry-after hint when it gave one.
func backoffDelay(r *rng, attempt int, hint time.Duration) time.Duration {
	d := retryCap
	if attempt < 6 { // 25ms << 6 already exceeds the 1s cap
		d = retryBase << attempt
	}
	if d > retryCap {
		d = retryCap
	}
	d = d/2 + time.Duration(r.next()%uint64(d/2+1))
	if d < hint {
		d = hint
	}
	return d
}

// sleepBackoff waits out attempt's backoff, bailing early on ctx.
func sleepBackoff(ctx context.Context, r *rng, attempt int, hint time.Duration) error {
	t := time.NewTimer(backoffDelay(r, attempt, hint))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterHint extracts the server's backoff hint, if err carries one.
func retryAfterHint(err error) time.Duration {
	var we *wire.Error
	if errors.As(err, &we) {
		return we.RetryAfter()
	}
	return 0
}
