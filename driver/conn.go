package driver

import (
	"context"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"syscall"
	"time"

	"decorr/internal/sqltypes"
	"decorr/internal/wire"
)

// conn is one protocol connection. database/sql guarantees a conn is
// used by one goroutine at a time, and never while a Rows or Stmt
// operation on it is mid-flight, so the request/reply exchange needs no
// locking. broken latches transport failures: once the stream state is
// unknown the conn reports itself invalid and the pool discards it.
type conn struct {
	nc interface {
		Read([]byte) (int, error)
		Write([]byte) (int, error)
		Close() error
	}
	cfg    config
	rng    *rng
	broken bool
}

// countWriter counts bytes handed to the connection, so rpc can tell
// whether any of the request reached the wire before a failure.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// rpc runs one request/reply exchange. Transport errors mark the conn
// broken; a *wire.Error reply is returned as the operation's error with
// the connection still usable.
//
// The error discipline is the heart of the retry contract:
//
//   - driver.ErrBadConn only when NO byte of the request reached the
//     connection — the server provably never saw it, so database/sql's
//     transparent retry on another conn cannot execute it twice.
//   - *TransportError (errors.Is ErrTransport) once any request byte
//     was written, or when the reply read fails: the server may have
//     executed the statement, so the error must surface to the caller.
func (c *conn) rpc(req wire.Message) (wire.Message, error) {
	if c.broken {
		return nil, driver.ErrBadConn
	}
	cw := &countWriter{w: c.nc}
	if err := wire.Write(cw, req); err != nil {
		c.broken = true
		if cw.n == 0 {
			return nil, driver.ErrBadConn
		}
		return nil, &TransportError{Op: "write", Err: err}
	}
	reply, err := wire.Read(c.nc)
	if err != nil {
		c.broken = true
		return nil, &TransportError{Op: "read", Err: err}
	}
	if werr, ok := reply.(*wire.Error); ok {
		if werr.Code == wire.CodeProtocol {
			// The server closes the connection after a protocol error.
			c.broken = true
		}
		return nil, werr
	}
	return reply, nil
}

// rpcRetry runs an exchange for requests that start new work (Prepare,
// Execute, Exec), absorbing the server's retryable rejections:
//
//   - A drain rejection (CodeUnavailable, retryable) means this session
//     will never accept new work again. The request was provably not
//     executed, so the conn is surrendered as driver.ErrBadConn and
//     database/sql transparently moves to another connection — whose
//     dial the connector backs off for.
//   - An overload shed (CodeOverloaded, retryable) is transient for
//     this same session: back off (respecting the server's hint) and
//     retry here, up to the configured retry budget.
func (c *conn) rpcRetry(ctx context.Context, req wire.Message) (wire.Message, error) {
	for attempt := 0; ; attempt++ {
		reply, err := c.rpc(req)
		var werr *wire.Error
		if err == nil || !errors.As(err, &werr) || !werr.IsRetryable() {
			return reply, err
		}
		if werr.Code == wire.CodeUnavailable {
			c.broken = true
			return nil, driver.ErrBadConn
		}
		if attempt >= c.cfg.retries {
			return nil, werr
		}
		cRetries.Inc()
		if serr := sleepBackoff(ctx, c.rng, attempt, werr.RetryAfter()); serr != nil {
			return nil, serr
		}
	}
}

// IsValid implements driver.Validator: broken connections leave the pool.
func (c *conn) IsValid() bool { return !c.broken }

// ResetSession implements driver.SessionResetter: before the pool hands
// an idle conn to a new request, probe the socket. A server that
// drained or died while the conn sat idle has already closed it; the
// kernel would still accept our next request write locally, and only
// the reply read would fail — a mid-request TransportError the caller
// must handle. Catching the close here instead turns it into
// driver.ErrBadConn, which database/sql absorbs by dialing afresh.
func (c *conn) ResetSession(ctx context.Context) error {
	if c.broken || !connAlive(c.nc) {
		c.broken = true
		return driver.ErrBadConn
	}
	return nil
}

// connAlive peeks at an idle connection with a non-blocking read. The
// protocol never pushes unsolicited frames, so a healthy idle conn has
// nothing to read (EAGAIN); readable data or EOF both mean the conn is
// useless. Connections that expose no raw syscall access (test pipes)
// are assumed alive.
func connAlive(nc any) bool {
	sc, ok := nc.(syscall.Conn)
	if !ok {
		return true
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	alive := false
	var b [1]byte
	rerr := rc.Read(func(fd uintptr) bool {
		n, err := syscall.Read(int(fd), b[:])
		alive = n < 0 && (err == syscall.EAGAIN || err == syscall.EWOULDBLOCK)
		return true // never wait for readability
	})
	return rerr == nil && alive
}

// Close implements driver.Conn.
func (c *conn) Close() error { return c.nc.Close() }

// Begin implements driver.Conn. The engine has no transactions — every
// statement runs against a stable snapshot of the in-memory database.
func (c *conn) Begin() (driver.Tx, error) {
	return nil, errors.New("decorr: transactions are not supported")
}

// Ping implements driver.Pinger. A ping has no server-side effect, so
// even a mid-request transport failure is safe to report as ErrBadConn
// — database/sql then discards the conn and pings a fresh one.
func (c *conn) Ping(ctx context.Context) error {
	reply, err := c.rpc(&wire.Ping{})
	if err != nil {
		if errors.Is(err, ErrTransport) {
			return driver.ErrBadConn
		}
		return err
	}
	if _, ok := reply.(*wire.Pong); !ok {
		c.broken = true
		return fmt.Errorf("decorr: unexpected ping reply %T", reply)
	}
	return nil
}

// Prepare implements driver.Conn.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext implements driver.ConnPrepareContext.
func (c *conn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reply, err := c.rpcRetry(ctx, &wire.Prepare{SQL: query})
	if err != nil {
		return nil, err
	}
	ok, isOK := reply.(*wire.PrepareOK)
	if !isOK {
		c.broken = true
		return nil, fmt.Errorf("decorr: unexpected prepare reply %T", reply)
	}
	return &stmt{c: c, id: ok.StmtID, numParams: int(ok.NumParams), columns: ok.Columns}, nil
}

// QueryContext implements driver.QueryerContext: one-shot queries skip
// the prepare round trip.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	params, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	return c.execute(ctx, &wire.Execute{SQL: query, Params: params})
}

// ExecContext implements driver.ExecerContext. DDL (CREATE VIEW) arrives
// here; the statement runs to completion server-side.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	params, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	return c.exec(ctx, &wire.Exec{SQL: query, Params: params})
}

// execute opens a streaming cursor and wraps it as driver.Rows.
func (c *conn) execute(ctx context.Context, req *wire.Execute) (driver.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reply, err := c.rpcRetry(ctx, req)
	if err != nil {
		return nil, err
	}
	ok, isOK := reply.(*wire.ExecuteOK)
	if !isOK {
		c.broken = true
		return nil, fmt.Errorf("decorr: unexpected execute reply %T", reply)
	}
	r := &rows{c: c, cursorID: ok.CursorID, columns: ok.Columns}
	r.stopCancel = watchCancel(ctx, c.cfg, ok.QueryID)
	return r, nil
}

// exec runs a statement to completion server-side.
func (c *conn) exec(ctx context.Context, req *wire.Exec) (driver.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reply, err := c.rpcRetry(ctx, req)
	if err != nil {
		return nil, err
	}
	ok, isOK := reply.(*wire.ExecOK)
	if !isOK {
		c.broken = true
		return nil, fmt.Errorf("decorr: unexpected exec reply %T", reply)
	}
	return result{rows: int64(ok.RowsOut)}, nil
}

// watchCancel arranges out-of-band cancellation for one remote query:
// when ctx is canceled first, a short-lived connection delivers a Cancel
// frame for queryID. The returned stop function ends the watch and, if
// the cancel fired, waits for it to finish (so tests observe its effect
// deterministically). A zero queryID (server without a registry) or a
// context that cannot fire leaves nothing to watch.
func watchCancel(ctx context.Context, cfg config, queryID int64) (stop func()) {
	if queryID == 0 || ctx.Done() == nil {
		return func() {}
	}
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		select {
		case <-stopCh:
		case <-ctx.Done():
			sendCancel(cfg, queryID)
		}
	}()
	return func() {
		close(stopCh)
		<-doneCh
	}
}

// sendCancel dials, handshakes, and delivers one Cancel frame. Failures
// are dropped: cancellation is best-effort and the query's own context
// error still surfaces to the caller through the pending fetch.
func sendCancel(cfg config, queryID int64) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cc, err := dial(ctx, cfg)
	if err != nil {
		return
	}
	defer cc.Close()
	cc.rpc(&wire.Cancel{QueryID: queryID})
}

// result implements driver.Result for server-side executions.
type result struct {
	rows int64
}

func (result) LastInsertId() (int64, error) {
	return 0, errors.New("decorr: LastInsertId is not supported")
}

func (r result) RowsAffected() (int64, error) { return r.rows, nil }

// convertArgs maps database/sql parameter values into the engine's value
// domain. database/sql's default converter has already normalized
// integers to int64 and floats to float64.
func convertArgs(args []driver.NamedValue) ([]sqltypes.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]sqltypes.Value, len(args))
	for i, a := range args {
		if a.Name != "" {
			return nil, errors.New("decorr: named parameters are not supported, use ?")
		}
		switch v := a.Value.(type) {
		case nil:
			out[i] = sqltypes.Null
		case int64:
			out[i] = sqltypes.NewInt(v)
		case float64:
			out[i] = sqltypes.NewFloat(v)
		case bool:
			out[i] = sqltypes.NewBool(v)
		case string:
			out[i] = sqltypes.NewString(v)
		case []byte:
			out[i] = sqltypes.NewString(string(v))
		default:
			return nil, fmt.Errorf("decorr: unsupported parameter type %T", a.Value)
		}
	}
	return out, nil
}
