// Package driver is a database/sql driver for decorrd, the decorrelation
// engine's network server.
//
//	import _ "decorr/driver"
//
//	db, err := sql.Open("decorr", "127.0.0.1:7531?strategy=auto&workers=4")
//	rows, err := db.QueryContext(ctx, "select name from emp where building = ?", "B1")
//
// The DSN is "host:port" (an optional "decorr://" prefix is accepted)
// with optional query parameters:
//
//	strategy      default decorrelation strategy for the session
//	              (ni | nimemo | kim | dayal | gw | magic | optmagic | auto)
//	workers       executor worker goroutines per query (0 = server default)
//	fetch         rows per fetch reply (0 = server default)
//	dial_timeout  per-attempt dial+handshake bound (Go duration; default 5s)
//	retries       retry budget for dials and retryable rejections (default 4)
//	retry_seed    seed for the retry jitter (default derived from the address)
//
// Results stream: sql.Rows pulls one batch at a time from the server, so
// iterating a million-row result holds one batch on each side of the
// connection, never the full set.
//
// Resilience. Dial failures and the server's retryable rejections — a
// drain refusal (CodeUnavailable) or an overload shed (CodeOverloaded)
// — are retried with seeded-jitter exponential backoff, honoring the
// server's retry-after hint. Mid-request transport failures are NOT
// silently retried: once any request byte reached the wire the server
// may have executed the statement, so the error surfaces as a
// *TransportError (errors.Is(err, ErrTransport)) and the retry decision
// belongs to the caller. driver.ErrBadConn — which database/sql retries
// transparently — is reserved for failures where the request provably
// never reached the server.
//
// Context cancellation is out-of-band, Postgres style. The primary
// connection is blocked in a request/reply exchange, so when a query
// context is canceled the driver dials a short-lived second connection
// and sends a Cancel frame naming the server-side query ID; the victim's
// governor trips within one morsel of work and the pending fetch returns
// the typed cancellation error.
//
// Typed errors survive the wire: errors.Is(err, decorr.ErrRowBudget),
// decorr.ErrCanceled, decorr.ErrDeadlineExceeded, decorr.ErrMemBudget,
// and decorr.ErrPanic all hold on errors returned by this driver exactly
// as they do in-process.
package driver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"net"
	"net/url"
	"strconv"
	"strings"
	"time"

	"decorr/internal/wire"
)

func init() {
	sql.Register("decorr", &Driver{})
}

// Driver implements driver.Driver and driver.DriverContext.
type Driver struct{}

// Open connects with the given DSN.
func (d *Driver) Open(name string) (driver.Conn, error) {
	c, err := d.OpenConnector(name)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector parses the DSN once; database/sql then dials new
// connections through the returned Connector as its pool grows.
func (d *Driver) OpenConnector(name string) (driver.Connector, error) {
	cfg, err := parseDSN(name)
	if err != nil {
		return nil, err
	}
	return &connector{cfg: cfg}, nil
}

// config is a parsed DSN.
type config struct {
	addr        string
	options     []string // handshake key/value pairs
	fetch       uint32   // client-side fetch size (0 = server default)
	dialTimeout time.Duration
	retries     int
	retrySeed   uint64
}

func parseDSN(name string) (config, error) {
	s := strings.TrimPrefix(name, "decorr://")
	var query string
	if i := strings.IndexByte(s, '?'); i >= 0 {
		s, query = s[:i], s[i+1:]
	}
	if s == "" {
		return config{}, errors.New("decorr: empty address in DSN")
	}
	cfg := config{addr: s, dialTimeout: DefaultDialTimeout, retries: DefaultRetries}
	vals, err := url.ParseQuery(query)
	if err != nil {
		return config{}, fmt.Errorf("decorr: bad DSN parameters: %w", err)
	}
	var seedSet bool
	for key, vs := range vals {
		v := vs[len(vs)-1]
		switch key {
		case "strategy", "workers":
			// Validated server-side during the handshake.
			cfg.options = append(cfg.options, key, v)
		case "fetch":
			n, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				return config{}, fmt.Errorf("decorr: bad fetch parameter %q", v)
			}
			cfg.fetch = uint32(n)
		case "dial_timeout":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return config{}, fmt.Errorf("decorr: bad dial_timeout parameter %q", v)
			}
			cfg.dialTimeout = d
		case "retries":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return config{}, fmt.Errorf("decorr: bad retries parameter %q", v)
			}
			cfg.retries = n
		case "retry_seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return config{}, fmt.Errorf("decorr: bad retry_seed parameter %q", v)
			}
			cfg.retrySeed = n
			seedSet = true
		default:
			return config{}, fmt.Errorf("decorr: unknown DSN parameter %q", key)
		}
	}
	if !seedSet {
		// FNV-1a of the address: stable per target, distinct across
		// targets, no wall-clock or global randomness involved.
		var h uint64 = 1469598103934665603
		for i := 0; i < len(cfg.addr); i++ {
			h ^= uint64(cfg.addr[i])
			h *= 1099511628211
		}
		cfg.retrySeed = h
	}
	return cfg, nil
}

type connector struct {
	cfg config
}

func (c *connector) Driver() driver.Driver { return &Driver{} }

// Connect dials with retry: dial and handshake failures, and the
// server's retryable rejections (drain, overload), are retried with
// seeded-jitter exponential backoff up to the configured budget. A
// non-retryable server rejection (version mismatch, bad option) or an
// expired caller context surfaces immediately.
func (c *connector) Connect(ctx context.Context) (driver.Conn, error) {
	r := newRNG(c.cfg.retrySeed ^ splitmix64(connectSeq.Add(1)))
	for attempt := 0; ; attempt++ {
		cn, err := dial(ctx, c.cfg)
		if err == nil {
			cn.rng = r
			return cn, nil
		}
		if attempt >= c.cfg.retries || !retryableConnect(ctx, err) {
			return nil, err
		}
		cRetries.Inc()
		if serr := sleepBackoff(ctx, r, attempt, retryAfterHint(err)); serr != nil {
			return nil, serr
		}
	}
}

// retryableConnect classifies connect failures. Anything that happened
// before the handshake completed left no server-side state, so dial and
// transport failures are all retryable; a server rejection is retryable
// exactly when it says so (drain, overload, capacity). An expired
// caller context is never retryable.
func retryableConnect(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var we *wire.Error
	if errors.As(err, &we) {
		return we.IsRetryable()
	}
	return true
}

// splitmix64 decorrelates per-connection jitter streams (see retry.go).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// dial opens and handshakes one protocol connection. The whole attempt
// — TCP connect plus handshake round trip — runs under dialTimeout, so
// a black-holed or stalled server cannot pin Connect past its budget.
func dial(ctx context.Context, cfg config) (*conn, error) {
	if cfg.dialTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.dialTimeout)
		defer cancel()
	}
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", cfg.addr)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		nc.SetDeadline(dl)
	}
	if err := wire.Write(nc, &wire.Hello{Version: wire.Version, Options: cfg.options}); err != nil {
		nc.Close()
		return nil, err
	}
	reply, err := wire.Read(nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch m := reply.(type) {
	case *wire.HelloOK:
		nc.SetDeadline(time.Time{})
		return &conn{nc: nc, cfg: cfg, rng: newRNG(cfg.retrySeed)}, nil
	case *wire.Error:
		nc.Close()
		return nil, m
	default:
		nc.Close()
		return nil, fmt.Errorf("decorr: unexpected handshake reply %T", reply)
	}
}
