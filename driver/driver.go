// Package driver is a database/sql driver for decorrd, the decorrelation
// engine's network server.
//
//	import _ "decorr/driver"
//
//	db, err := sql.Open("decorr", "127.0.0.1:7531?strategy=auto&workers=4")
//	rows, err := db.QueryContext(ctx, "select name from emp where building = ?", "B1")
//
// The DSN is "host:port" (an optional "decorr://" prefix is accepted)
// with optional query parameters:
//
//	strategy  default decorrelation strategy for the session
//	          (ni | nimemo | kim | dayal | gw | magic | optmagic | auto)
//	workers   executor worker goroutines per query (0 = server default)
//	fetch     rows per fetch reply (0 = server default)
//
// Results stream: sql.Rows pulls one batch at a time from the server, so
// iterating a million-row result holds one batch on each side of the
// connection, never the full set.
//
// Context cancellation is out-of-band, Postgres style. The primary
// connection is blocked in a request/reply exchange, so when a query
// context is canceled the driver dials a short-lived second connection
// and sends a Cancel frame naming the server-side query ID; the victim's
// governor trips within one morsel of work and the pending fetch returns
// the typed cancellation error.
//
// Typed errors survive the wire: errors.Is(err, decorr.ErrRowBudget),
// decorr.ErrCanceled, decorr.ErrDeadlineExceeded, decorr.ErrMemBudget,
// and decorr.ErrPanic all hold on errors returned by this driver exactly
// as they do in-process.
package driver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"net"
	"net/url"
	"strconv"
	"strings"

	"decorr/internal/wire"
)

func init() {
	sql.Register("decorr", &Driver{})
}

// Driver implements driver.Driver and driver.DriverContext.
type Driver struct{}

// Open connects with the given DSN.
func (d *Driver) Open(name string) (driver.Conn, error) {
	c, err := d.OpenConnector(name)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector parses the DSN once; database/sql then dials new
// connections through the returned Connector as its pool grows.
func (d *Driver) OpenConnector(name string) (driver.Connector, error) {
	cfg, err := parseDSN(name)
	if err != nil {
		return nil, err
	}
	return &connector{cfg: cfg}, nil
}

// config is a parsed DSN.
type config struct {
	addr    string
	options []string // handshake key/value pairs
	fetch   uint32   // client-side fetch size (0 = server default)
}

func parseDSN(name string) (config, error) {
	s := strings.TrimPrefix(name, "decorr://")
	var query string
	if i := strings.IndexByte(s, '?'); i >= 0 {
		s, query = s[:i], s[i+1:]
	}
	if s == "" {
		return config{}, errors.New("decorr: empty address in DSN")
	}
	cfg := config{addr: s}
	vals, err := url.ParseQuery(query)
	if err != nil {
		return config{}, fmt.Errorf("decorr: bad DSN parameters: %w", err)
	}
	for key, vs := range vals {
		v := vs[len(vs)-1]
		switch key {
		case "strategy", "workers":
			// Validated server-side during the handshake.
			cfg.options = append(cfg.options, key, v)
		case "fetch":
			n, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				return config{}, fmt.Errorf("decorr: bad fetch parameter %q", v)
			}
			cfg.fetch = uint32(n)
		default:
			return config{}, fmt.Errorf("decorr: unknown DSN parameter %q", key)
		}
	}
	return cfg, nil
}

type connector struct {
	cfg config
}

func (c *connector) Driver() driver.Driver { return &Driver{} }

func (c *connector) Connect(ctx context.Context) (driver.Conn, error) {
	return dial(ctx, c.cfg)
}

// dial opens and handshakes one protocol connection.
func dial(ctx context.Context, cfg config) (*conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", cfg.addr)
	if err != nil {
		return nil, err
	}
	if err := wire.Write(nc, &wire.Hello{Version: wire.Version, Options: cfg.options}); err != nil {
		nc.Close()
		return nil, err
	}
	reply, err := wire.Read(nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch m := reply.(type) {
	case *wire.HelloOK:
		return &conn{nc: nc, cfg: cfg}, nil
	case *wire.Error:
		nc.Close()
		return nil, m
	default:
		nc.Close()
		return nil, fmt.Errorf("decorr: unexpected handshake reply %T", reply)
	}
}
