package differ

import "testing"

// The DDL-interleaving check must be clean across seeds covering both
// schemas (the seed picks the schema).
func TestDDLInterleavingClean(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		if err := DDLInterleaving(seed, 0); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// A dropped view must fail identically on both engines — pin the error
// parity branch with a stream long enough to drop views.
func TestDDLInterleavingLongStream(t *testing.T) {
	if testing.Short() {
		t.Skip("long stream")
	}
	if err := DDLInterleaving(12345, 400); err != nil {
		t.Error(err)
	}
}
