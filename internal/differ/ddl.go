// DDL-interleaving check: the plan cache's epoch invalidation is fuzzed by
// feeding one deterministic statement stream — CREATE VIEW, DROP VIEW, and
// repeated queries — to a cache-enabled engine and a plain engine side by
// side. Any divergence means a stale plan was served (or DDL behaved
// differently under caching), which is exactly the bug class the epoch
// mechanism exists to prevent. Repetition makes the cached engine take the
// warm path, and the deliberately tiny cache exercises eviction as well.
package differ

import (
	"fmt"
	"math/rand"
	"sort"

	"decorr/internal/engine"
)

// ddlStrategies are the rewrite paths the interleaving check executes
// under; the plain engine always runs the same strategy, so disagreements
// isolate the cache, not the rewrite.
var ddlStrategies = []engine.Strategy{engine.NI, engine.Magic, engine.OptMagic, engine.Auto}

// DDLInterleaving runs the check for `rounds` steps (<=0 selects 60).
// It returns an error describing the first divergence, with the statement
// stream position so the seed reproduces it.
func DDLInterleaving(seed int64, rounds int) error {
	if rounds <= 0 {
		rounds = 60
	}
	r := rand.New(rand.NewSource(seed))
	schemaName := SchemaNames[int(uint64(seed))%len(SchemaNames)]
	db := DBSpec{Schema: schemaName, Seed: seed, Size: 8}.Build()
	cached := engine.New(db)
	cached.EnablePlanCache(4) // small on purpose: evictions must also be safe
	plain := engine.New(db)

	// A small pool of statements so repeats are common enough to hit the
	// warm path between DDL steps.
	queries := make([]string, 0, 4)
	for len(queries) < 4 {
		queries = append(queries, Generate(r, schemaName).SQL())
	}
	views := map[string]bool{}
	for i := 0; i < rounds; i++ {
		switch op := r.Intn(10); {
		case op < 2:
			// Create or redefine a view over a freshly generated query.
			name := fmt.Sprintf("fuzzview%d", r.Intn(3))
			def := fmt.Sprintf("create view %s as %s", name, Generate(r, schemaName).SQL())
			errC := cached.CreateView(def)
			errP := plain.CreateView(def)
			if (errC == nil) != (errP == nil) {
				return fmt.Errorf("step %d (seed %d): DDL parity broken on %q: cached=%v plain=%v",
					i, seed, def, errC, errP)
			}
			if errC == nil {
				views[name] = true
			}
		case op < 3 && len(views) > 0:
			name := pickView(r, views)
			cached.DropView(name)
			plain.DropView(name)
			delete(views, name)
		default:
			sql := queries[r.Intn(len(queries))]
			if len(views) > 0 && r.Intn(2) == 0 {
				// COUNT(*) is well-formed over any live view regardless of
				// its column list; over a dropped view both engines must
				// fail identically instead of serving a cached plan.
				sql = fmt.Sprintf("select count(*) from %s", pickView(r, views))
			}
			s := ddlStrategies[r.Intn(len(ddlStrategies))]
			got, _, errC := cached.Exec(sql, s)
			want, _, errP := plain.Query(sql, s)
			if (errC == nil) != (errP == nil) {
				return fmt.Errorf("step %d (seed %d): error parity broken on %q [%s]: cached=%v plain=%v",
					i, seed, sql, s, errC, errP)
			}
			if errC != nil {
				continue
			}
			if !bagsEqual(bagOf(got), bagOf(want)) {
				return fmt.Errorf("step %d (seed %d): stale result for %q [%s]:\ncached: %v\n plain: %v",
					i, seed, sql, s, renderSorted(got), renderSorted(want))
			}
		}
	}
	return nil
}

// pickView chooses a live view deterministically from the rng.
func pickView(r *rand.Rand, views map[string]bool) string {
	names := make([]string, 0, len(views))
	for n := range views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names[r.Intn(len(names))]
}
