package differ

import (
	"math/rand"
	"strings"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

func row(vals ...sqltypes.Value) storage.Row { return storage.Row(vals) }

func TestBagHelpers(t *testing.T) {
	i := sqltypes.NewInt
	f := sqltypes.NewFloat
	n := sqltypes.Null
	a := bagOf([]storage.Row{row(i(1), n), row(i(1), n), row(f(2), i(3))})
	b := bagOf([]storage.Row{row(f(2), i(3)), row(i(1), n), row(i(1), n)})
	if !bagsEqual(a, b) {
		t.Fatal("identical multisets in different order must compare equal")
	}
	// Bag equality is the grouping notion: INT 3 and DOUBLE 3.0 coincide.
	if !bagsEqual(bagOf([]storage.Row{row(i(3))}), bagOf([]storage.Row{row(f(3))})) {
		t.Fatal("int 3 and float 3.0 rows must land on the same bag key")
	}
	c := bagOf([]storage.Row{row(i(1), n)})
	if !bagSubset(c, a) {
		t.Fatal("c is a sub-multiset of a")
	}
	if bagSubset(a, c) {
		t.Fatal("a exceeds c's multiplicities")
	}
	if bagsEqual(a, c) {
		t.Fatal("different cardinalities must not compare equal")
	}
}

// TestGeneratorValid runs many generated statements through the oracle:
// every statement must parse, bind, and execute. Generator drift (emitting
// SQL the engine rejects) would silently hollow out the fuzzer.
func TestGeneratorValid(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		schemaName := SchemaNames[seed%2]
		q := Generate(rand.New(rand.NewSource(seed)), schemaName)
		sql := q.SQL()
		db := DBSpec{Schema: schemaName, Seed: seed, Size: 4}.Build()
		if _, _, err := engine.New(db).Query(sql, engine.NI); err != nil {
			t.Fatalf("seed %d: oracle rejects generated statement: %v\nsql: %s", seed, err, sql)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := Generate(rand.New(rand.NewSource(seed)), "tpcd").SQL()
		b := Generate(rand.New(rand.NewSource(seed)), "tpcd").SQL()
		if a != b {
			t.Fatalf("seed %d: generator not deterministic:\n%s\n%s", seed, a, b)
		}
	}
}

// TestShrink drives the shrinker with a synthetic failure predicate: the
// "bug" persists as long as the query still contains its subquery and the
// database has at least two rows. The minimum must drop everything else.
func TestShrink(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var q Query
	for {
		q = Generate(r, "empdept")
		if q.Outer.Sub != nil && (len(q.Outer.Preds) > 0 || len(q.Outer.Cols) > 1) {
			break
		}
	}
	db := DBSpec{Schema: "empdept", Seed: 7, Size: 16}
	stillFails := func(d DBSpec, c Query) bool {
		return c.Outer.Sub != nil && d.Size >= 2
	}
	sdb, sq := Shrink(db, q, stillFails)
	if sdb.Size != 2 {
		t.Errorf("size not minimized: got %d, want 2", sdb.Size)
	}
	if sq.Outer.Sub == nil {
		t.Fatal("shrinker removed the failing feature")
	}
	if len(sq.Outer.Preds) != 0 {
		t.Errorf("outer predicates not dropped: %v", sq.Outer.Preds)
	}
	if len(sq.Outer.Preds)+len(sq.Outer.Sub.Inner.Preds) != 0 {
		t.Errorf("inner predicates not dropped: %v", sq.Outer.Sub.Inner.Preds)
	}
	if sq.Outer.Sub.Inner.Sub != nil {
		t.Error("nested subquery not dropped")
	}
	// Original query untouched (Clone isolation).
	if q.Outer.Sub == nil {
		t.Error("shrinking mutated the original query")
	}
}

func TestReproTestRendering(t *testing.T) {
	d := &Divergence{
		Variant:   "magic-noexist",
		ShrunkDB:  DBSpec{Schema: "tpcd", Seed: 42, Size: 2},
		ShrunkSQL: "select o.p_size from parts o",
	}
	got := reproTest(d)
	for _, want := range []string{
		"func TestDifferRegression_magic_noexist_tpcd_42(t *testing.T)",
		`differ.DBSpec{Schema: "tpcd", Seed: 42, Size: 2}`,
		"`select o.p_size from parts o`",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("repro test missing %q:\n%s", want, got)
		}
	}
}

func TestVariantByName(t *testing.T) {
	for _, v := range Variants() {
		got, ok := VariantByName(v.Name)
		if !ok || got.Name != v.Name {
			t.Errorf("VariantByName(%q) failed", v.Name)
		}
	}
	if _, ok := VariantByName("nonesuch"); ok {
		t.Error("unknown variant resolved")
	}
}

// TestSmoke is the deterministic tier-1 fuzz gate: a fixed seed, enough
// statements to exercise every form and both schemas, zero unallowlisted
// divergences. CI runs the same configuration via `make fuzz-smoke`.
func TestSmoke(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 20
	}
	rep := Run(Config{Seed: 42, N: n})
	if !rep.Clean() {
		for _, d := range rep.Divergences {
			t.Errorf("divergence:\n%s\nrepro:\n%s", d, d.ReproTest)
		}
	}
	if rep.OracleSkips > 0 {
		t.Errorf("oracle skipped %d statements (generator drift)", rep.OracleSkips)
	}
	if rep.Comparisons == 0 {
		t.Error("no comparisons ran")
	}
	t.Logf("%s", rep)
}

func TestParallelAgreement(t *testing.T) {
	if err := ParallelAgreement(); err != nil {
		t.Errorf("parallel simulator disagrees with engine: %v", err)
	}
}
