package differ

import (
	"strings"
	"testing"
)

// The fault-sweep contract: under seeded injected errors, panics, and
// latency at the storage-scan, hash-build, and morsel-claim points, every
// strategy × worker combination either reproduces the no-fault NI oracle
// or fails with a clean typed error — never a wrong answer, hang, or
// process crash.
func TestFaultSweepContractHolds(t *testing.T) {
	rep := FaultSweep(FaultConfig{Seed: 1, N: 8, Size: 8})
	if !rep.Clean() {
		t.Fatalf("fault sweep violated the contract:\n%s", rep.String())
	}
	if rep.Cases == 0 || rep.Executions == 0 {
		t.Fatalf("sweep did nothing: %+v", rep)
	}
	// The plan's injection rates guarantee both outcomes appear: some runs
	// dodge every fault and agree with the oracle, others hit one and fail
	// cleanly. A sweep where either count is zero isn't exercising the
	// contract.
	if rep.Agreements == 0 {
		t.Errorf("no faulted run agreed with the oracle: %+v", rep)
	}
	if rep.CleanErrors == 0 {
		t.Errorf("no faulted run hit an injected fault: %+v", rep)
	}
}

// Same seed, same sweep: the injection schedule is deterministic at
// workers=1, and the report totals are reproducible in aggregate.
func TestFaultSweepSeededReproducible(t *testing.T) {
	a := FaultSweep(FaultConfig{Seed: 7, N: 4, Size: 6})
	b := FaultSweep(FaultConfig{Seed: 7, N: 4, Size: 6})
	if a.Cases != b.Cases || a.Executions != b.Executions {
		t.Fatalf("same seed, different sweep shape: %+v vs %+v", a, b)
	}
	if !a.Clean() || !b.Clean() {
		t.Fatalf("contract violated: %s / %s", a.String(), b.String())
	}
}

func TestFaultReportString(t *testing.T) {
	rep := FaultReport{Cases: 2, Executions: 10, Agreements: 6, CleanErrors: 4}
	s := rep.String()
	for _, want := range []string{"2", "10", "6", "4"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
	rep.Failures = append(rep.Failures, &FaultFailure{Kind: "wrong-answer", SQL: "select 1"})
	if rep.Clean() {
		t.Error("report with failures is not clean")
	}
}
