package differ

import (
	"math/rand"
	"strings"
)

// Form enumerates where and how a subquery attaches to its parent block.
type Form int

const (
	// FormScalarWhere is "operand cmp (select agg ...)" in WHERE.
	FormScalarWhere Form = iota
	// FormScalarSelect is "(select agg ...)" in the SELECT list.
	FormScalarSelect
	// FormExists is "exists (select * ...)".
	FormExists
	// FormNotExists is "not exists (select * ...)".
	FormNotExists
	// FormIn is "operand in (select col ...)".
	FormIn
	// FormNotIn is "operand not in (select col ...)".
	FormNotIn
	// FormAny is "operand cmp any (select col ...)".
	FormAny
	// FormAll is "operand cmp all (select col ...)".
	FormAll
	// FormLateral is a correlated aggregating derived table in FROM.
	FormLateral
)

// Block is one SELECT block over a single base table. Preds are rendered
// conjuncts the shrinker can drop one at a time.
type Block struct {
	Table string
	Alias string
	Cols  []string // rendered projections (outer block only)
	Preds []string
	Sub   *Sub
}

// Sub is a subquery attached to a Block. Operand/Cmp/Col are rendered
// fragments whose use depends on Form; Corr is the correlation conjunct
// living inside the inner block's WHERE ("" = uncorrelated).
type Sub struct {
	Form    Form
	Agg     string
	Operand string
	Cmp     string
	Col     string
	Corr    string
	Inner   Block
}

// Query is one shrinkable generated statement.
type Query struct {
	Outer Block
}

func (s *Sub) clone() *Sub {
	if s == nil {
		return nil
	}
	c := *s
	c.Inner = s.Inner.clone()
	return &c
}

func (b Block) clone() Block {
	b.Cols = append([]string(nil), b.Cols...)
	b.Preds = append([]string(nil), b.Preds...)
	b.Sub = b.Sub.clone()
	return b
}

// Clone deep-copies q so shrink candidates can mutate freely.
func (q Query) Clone() Query { return Query{Outer: q.Outer.clone()} }

// SQL renders the query in the engine's dialect.
func (q Query) SQL() string {
	b := q.Outer
	sel := append([]string(nil), b.Cols...)
	if b.Sub != nil && b.Sub.Form == FormScalarSelect {
		sel = append(sel, "("+subSelect(b.Sub)+")")
	}
	from := b.Table + " " + b.Alias
	if b.Sub != nil && b.Sub.Form == FormLateral {
		from += ", (" + subSelect(b.Sub) + ") as x(v)"
	}
	sql := "select " + strings.Join(sel, ", ") + " from " + from
	if w := conjuncts(b); len(w) > 0 {
		sql += " where " + strings.Join(w, " and ")
	}
	return sql
}

// conjuncts returns the block's WHERE conjuncts, including the one the
// subquery contributes in the WHERE-attached forms.
func conjuncts(b Block) []string {
	out := append([]string(nil), b.Preds...)
	s := b.Sub
	if s == nil {
		return out
	}
	switch s.Form {
	case FormScalarWhere:
		out = append(out, s.Operand+" "+s.Cmp+" ("+subSelect(s)+")")
	case FormExists:
		out = append(out, "exists ("+subSelect(s)+")")
	case FormNotExists:
		out = append(out, "not exists ("+subSelect(s)+")")
	case FormIn:
		out = append(out, s.Operand+" in ("+subSelect(s)+")")
	case FormNotIn:
		out = append(out, s.Operand+" not in ("+subSelect(s)+")")
	case FormAny:
		out = append(out, s.Operand+" "+s.Cmp+" any ("+subSelect(s)+")")
	case FormAll:
		out = append(out, s.Operand+" "+s.Cmp+" all ("+subSelect(s)+")")
	}
	return out
}

func subSelect(s *Sub) string {
	var item string
	switch s.Form {
	case FormScalarWhere, FormScalarSelect, FormLateral:
		item = s.Agg
	case FormExists, FormNotExists:
		item = "*"
	default:
		item = s.Col
	}
	where := conjuncts(s.Inner)
	if s.Corr != "" {
		where = append(where, s.Corr)
	}
	sql := "select " + item + " from " + s.Inner.Table + " " + s.Inner.Alias
	if len(where) > 0 {
		sql += " where " + strings.Join(where, " and ")
	}
	return sql
}

// HasScalarAggSub reports whether the query contains a scalar aggregate
// subquery — the shape Kim's method rewrites, and therefore the shape on
// which Kim's documented empty-group (COUNT bug) wrongness is expected.
func (q Query) HasScalarAggSub() bool {
	for s := q.Outer.Sub; s != nil; s = s.Inner.Sub {
		switch s.Form {
		case FormScalarWhere, FormScalarSelect, FormLateral:
			return true
		}
	}
	return false
}

var cmpOps = []string{"=", "<>", "<", "<=", ">", ">="}

// Generate emits one random query over the named schema. All randomness
// flows from r, so (schema, seed) reproduces the statement exactly.
func Generate(r *rand.Rand, schemaName string) Query {
	s := schemas[schemaName]
	g := &gen{r: r, s: s}
	outer := s.tables[s.order[r.Intn(len(s.order))]]
	b := Block{Table: outer.name, Alias: "o"}
	// Project one or two columns; the first stays through shrinking.
	nCols := 1 + r.Intn(2)
	perm := r.Perm(len(outer.cols))
	for i := 0; i < nCols && i < len(perm); i++ {
		b.Cols = append(b.Cols, "o."+outer.cols[perm[i]].name)
	}
	for i := r.Intn(3); i > 0; i-- {
		b.Preds = append(b.Preds, g.randPred(outer, "o"))
	}
	b.Sub = g.genSub(1, []frame{{alias: "o", table: outer}})
	q := Query{Outer: b}
	if q.Outer.Sub != nil && q.Outer.Sub.Form == FormLateral {
		q.Outer.Cols = append(q.Outer.Cols, "x.v")
	}
	return q
}

// frame is one ancestor block a deeper subquery may correlate to,
// nearest first.
type frame struct {
	alias string
	table *tableInfo
}

type gen struct {
	r *rand.Rand
	s *schemaInfo
}

// genSub builds a subquery at the given depth (1 or 2). The immediate
// parent is ancestors[0].
func (g *gen) genSub(depth int, ancestors []frame) *Sub {
	r := g.r
	alias := [...]string{"", "i1", "i2"}[depth]
	// Pick the correlation target: the immediate parent, or (in nested
	// subqueries) sometimes the grandparent — the multi-level correlation
	// the paper's §4.3 absorbs level by level.
	target := ancestors[0]
	if len(ancestors) > 1 && r.Intn(2) == 0 {
		target = ancestors[1]
	}
	edges := g.s.edgesFrom(target.table.name)
	if len(edges) == 0 {
		target = ancestors[0]
		edges = g.s.edgesFrom(target.table.name)
	}
	var inner *tableInfo
	corr := ""
	if len(edges) == 0 || r.Float64() < 0.08 {
		// Uncorrelated subquery over a random table.
		inner = g.s.tables[g.s.order[r.Intn(len(g.s.order))]]
	} else {
		e := edges[r.Intn(len(edges))]
		inner = g.s.tables[e.innerTable]
		corr = alias + "." + e.innerCol + " = " + target.alias + "." + e.outerCol
	}

	var form Form
	if depth == 1 {
		form = Form(r.Intn(int(FormLateral) + 1))
	} else {
		// Deeper levels attach as WHERE conjuncts only.
		form = [...]Form{FormScalarWhere, FormExists, FormNotExists, FormIn, FormNotIn}[r.Intn(5)]
	}

	sub := &Sub{Form: form, Corr: corr}
	sub.Inner = Block{Table: inner.name, Alias: alias}
	for i := r.Intn(3); i > 0; i-- {
		sub.Inner.Preds = append(sub.Inner.Preds, g.randPred(inner, alias))
	}
	if depth == 1 && r.Float64() < 0.45 {
		sub.Inner.Sub = g.genSub(depth+1, append([]frame{{alias: alias, table: inner}}, ancestors...))
	}

	parent := ancestors[0]
	switch form {
	case FormScalarWhere, FormScalarSelect, FormLateral:
		sub.Agg = g.randAgg(inner, alias)
		sub.Cmp = cmpOps[r.Intn(len(cmpOps))]
		sub.Operand = g.randOperand(parent, 'i', 'f')
	case FormIn, FormNotIn, FormAny, FormAll:
		c := inner.cols[r.Intn(len(inner.cols))]
		sub.Col = alias + "." + c.name
		sub.Cmp = cmpOps[r.Intn(len(cmpOps))]
		sub.Operand = g.randOperandKind(parent, c)
	}
	return sub
}

// randAgg renders an aggregate over the table: COUNT(*), COUNT(col), or
// SUM/AVG over a numeric column, MIN/MAX over any column.
func (g *gen) randAgg(t *tableInfo, alias string) string {
	r := g.r
	switch r.Intn(5) {
	case 0:
		return "count(*)"
	case 1:
		return "count(" + alias + "." + t.cols[r.Intn(len(t.cols))].name + ")"
	case 2, 3:
		if nc := t.numericCols(); len(nc) > 0 {
			op := [...]string{"sum", "avg"}[r.Intn(2)]
			return op + "(" + alias + "." + nc[r.Intn(len(nc))].name + ")"
		}
		return "count(*)"
	default:
		op := [...]string{"min", "max"}[r.Intn(2)]
		return op + "(" + alias + "." + t.cols[r.Intn(len(t.cols))].name + ")"
	}
}

// randOperand renders a comparison operand from the parent block: a column
// of one of the given kinds, or a small integer constant.
func (g *gen) randOperand(parent frame, kinds ...byte) string {
	var cands []colInfo
	for _, c := range parent.table.cols {
		for _, k := range kinds {
			if c.kind == k {
				cands = append(cands, c)
			}
		}
	}
	if len(cands) == 0 || g.r.Intn(4) == 0 {
		return [...]string{"0", "1", "2", "3"}[g.r.Intn(4)]
	}
	return parent.alias + "." + cands[g.r.Intn(len(cands))].name
}

// randOperandKind renders an operand type-compatible with the subquery
// output column c: a parent column of the same kind, or one of c's
// constants.
func (g *gen) randOperandKind(parent frame, c colInfo) string {
	kind := c.kind
	if kind == 'f' {
		kind = 'i' // numeric cross-kind comparisons are the point
		if g.r.Intn(2) == 0 {
			kind = 'f'
		}
	}
	var cands []colInfo
	for _, pc := range parent.table.cols {
		if pc.kind == kind || (pc.kind == 'f' && kind == 'i') || (pc.kind == 'i' && kind == 'f') {
			cands = append(cands, pc)
		}
	}
	if len(cands) == 0 || g.r.Intn(4) == 0 {
		return c.consts[g.r.Intn(len(c.consts))]
	}
	return parent.alias + "." + cands[g.r.Intn(len(cands))].name
}

// randPred renders one plain conjunct over the table.
func (g *gen) randPred(t *tableInfo, alias string) string {
	r := g.r
	c := t.cols[r.Intn(len(t.cols))]
	ref := alias + "." + c.name
	switch r.Intn(5) {
	case 0:
		return ref + " is null"
	case 1:
		return ref + " is not null"
	case 2:
		c2 := t.cols[r.Intn(len(t.cols))]
		return "(" + ref + " " + cmpOps[r.Intn(len(cmpOps))] + " " + c.consts[r.Intn(len(c.consts))] +
			" or " + alias + "." + c2.name + " is null)"
	default:
		return ref + " " + cmpOps[r.Intn(len(cmpOps))] + " " + c.consts[r.Intn(len(c.consts))]
	}
}
