package differ

import (
	"errors"
	"fmt"
	"strings"

	"decorr/internal/classic"
	"decorr/internal/engine"
	"decorr/internal/storage"
)

// Shrink minimizes a failing (database, query) pair: it repeatedly tries
// the one-step reductions — drop a predicate, drop the correlation
// conjunct, drop a nesting level, narrow the projection, halve the data —
// keeping any candidate for which stillFails holds, until none applies.
// stillFails must be deterministic.
func Shrink(db DBSpec, q Query, stillFails func(DBSpec, Query) bool) (DBSpec, Query) {
	for steps := 0; steps < 200; steps++ {
		reduced := false
		// Data first: smaller databases make every later check cheaper.
		for db.Size > 1 {
			half := db
			half.Size = db.Size / 2
			if !stillFails(half, q) {
				break
			}
			db = half
			reduced = true
		}
		for _, cand := range reductions(q) {
			if stillFails(db, cand) {
				q = cand
				reduced = true
				break
			}
		}
		if !reduced {
			return db, q
		}
	}
	return db, q
}

// reductions enumerates every one-step syntactic reduction of q.
func reductions(q Query) []Query {
	var out []Query
	// Drop one outer predicate.
	for i := range q.Outer.Preds {
		c := q.Clone()
		c.Outer.Preds = append(c.Outer.Preds[:i], c.Outer.Preds[i+1:]...)
		out = append(out, c)
	}
	if s := q.Outer.Sub; s != nil {
		// Drop one depth-1 inner predicate.
		for i := range s.Inner.Preds {
			c := q.Clone()
			c.Outer.Sub.Inner.Preds = append(c.Outer.Sub.Inner.Preds[:i], c.Outer.Sub.Inner.Preds[i+1:]...)
			out = append(out, c)
		}
		// Uncorrelate the subquery.
		if s.Corr != "" {
			c := q.Clone()
			c.Outer.Sub.Corr = ""
			out = append(out, c)
		}
		if s2 := s.Inner.Sub; s2 != nil {
			// Drop the nested level entirely.
			c := q.Clone()
			c.Outer.Sub.Inner.Sub = nil
			out = append(out, c)
			// Or reduce inside it.
			for i := range s2.Inner.Preds {
				c := q.Clone()
				c.Outer.Sub.Inner.Sub.Inner.Preds = append(
					c.Outer.Sub.Inner.Sub.Inner.Preds[:i],
					c.Outer.Sub.Inner.Sub.Inner.Preds[i+1:]...)
				out = append(out, c)
			}
			if s2.Corr != "" {
				c := q.Clone()
				c.Outer.Sub.Inner.Sub.Corr = ""
				out = append(out, c)
			}
		}
	}
	// Narrow the projection to the first column (keep x.v for laterals —
	// dropping it would orphan the derived table, which is fine, but the
	// first column may BE x.v only if it was the sole projection).
	if len(q.Outer.Cols) > 1 {
		c := q.Clone()
		c.Outer.Cols = c.Outer.Cols[:1]
		if q.Outer.Sub != nil && q.Outer.Sub.Form == FormLateral {
			// Keep the lateral output referenced so the plan shape under
			// test survives the projection shrink.
			c.Outer.Cols = []string{"x.v"}
		}
		out = append(out, c)
	}
	return out
}

// shrinkDivergence minimizes d in place and attaches the reproducer test.
func shrinkDivergence(d *Divergence, q Query, v Variant) {
	errMode := d.Err != nil
	fails := func(db DBSpec, cand Query) bool {
		sql := cand.SQL()
		dbi := db.Build()
		want, _, err := engine.New(dbi).Query(sql, engine.NI)
		if err != nil {
			return false // oracle must keep working on the reproducer
		}
		got, err := runVariant(dbi, v, sql)
		if err != nil {
			// An error reproduces an error-divergence; applicability
			// refusals reproduce nothing.
			return errMode && !(v.Tolerant && errors.Is(err, classic.ErrNotApplicable))
		}
		if errMode {
			return false
		}
		gotBag, wantBag := bagOf(got), bagOf(want)
		if bagsEqual(gotBag, wantBag) {
			return false
		}
		// The reproducer must stay an unallowlisted divergence.
		return !allowlistedKim(v, cand, gotBag, wantBag)
	}
	sdb, sq := Shrink(d.DB, q, fails)
	d.ShrunkDB = sdb
	d.ShrunkSQL = sq.SQL()
	d.ReproTest = reproTest(d)
}

// reproTest renders a ready-to-paste regression test pinning the shrunk
// reproducer (destination: internal/differ/regression_test.go).
func reproTest(d *Divergence) string {
	name := fmt.Sprintf("%s_%s_%d", strings.NewReplacer("-", "_").Replace(d.Variant), d.ShrunkDB.Schema, d.ShrunkDB.Seed)
	return fmt.Sprintf(`func TestDifferRegression_%s(t *testing.T) {
	differ.CheckSQL(t,
		differ.DBSpec{Schema: %q, Seed: %d, Size: %d},
		%q,
		`+"`%s`"+`)
}
`, name, d.ShrunkDB.Schema, d.ShrunkDB.Seed, d.ShrunkDB.Size, d.Variant, d.ShrunkSQL)
}

// TB is the subset of *testing.T CheckSQL needs (kept tiny so the package
// does not import "testing" into non-test binaries).
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Errorf(format string, args ...any)
}

// CheckSQL pins one differential comparison: the named variant must agree
// with the nested-iteration oracle on sql over the given database. Pinned
// reproducers call it from regression tests.
func CheckSQL(t TB, dbs DBSpec, variant, sql string) {
	t.Helper()
	CheckSQLOnDB(t, dbs.Build(), dbs.String(), variant, sql)
}

// CheckSQLOnDB is CheckSQL over a caller-built database — for regressions
// whose witness data the generated schemas cannot express (NULL vs
// empty-string binding keys, negative-zero floats, mixed int/float
// correlation columns). label names the database in failure messages.
func CheckSQLOnDB(t TB, db *storage.DB, label, variant, sql string) {
	t.Helper()
	v, ok := VariantByName(variant)
	if !ok {
		t.Fatalf("unknown variant %q", variant)
	}
	want, _, err := engine.New(db).Query(sql, engine.NI)
	if err != nil {
		t.Fatalf("NI oracle failed on %s: %v\nsql: %s", label, err, sql)
	}
	got, err := runVariant(db, v, sql)
	if err != nil {
		t.Fatalf("%s failed on %s: %v\nsql: %s", variant, label, err, sql)
	}
	if !bagsEqual(bagOf(got), bagOf(want)) {
		t.Errorf("%s diverges from NI on %s\nsql: %s\nwant %v\ngot  %v",
			variant, label, sql, renderSorted(want), renderSorted(got))
	}
}
