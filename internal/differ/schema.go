// Package differ is the differential correctness harness: it generates
// random correlated queries over the EMP/DEPT and TPC-D schemas, executes
// every statement under nested iteration (the oracle) and under every
// applicable decorrelation strategy and knob combination, and compares the
// answers under NULL-aware bag equality. On a mismatch it shrinks the
// query and data to a minimal reproducer and emits a ready-to-paste
// regression test. The paper's Figures 5–9 compare only costs because all
// five strategies are assumed answer-equivalent; this package checks that
// assumption continuously.
package differ

import (
	"fmt"

	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

// DBSpec names a reproducible fuzz database: a schema, a generator seed,
// and a size knob (the shrinker halves Size while a failure persists).
type DBSpec struct {
	Schema string // "empdept" or "tpcd"
	Seed   int64
	Size   int
}

// Build materializes the database.
func (d DBSpec) Build() *storage.DB {
	size := d.Size
	if size < 1 {
		size = 1
	}
	switch d.Schema {
	case "empdept":
		return tpcd.EmpDeptRandom(d.Seed, size, 2*size, 4)
	case "tpcd":
		return tpcd.TPCDMini(d.Seed, size)
	}
	panic(fmt.Sprintf("differ: unknown schema %q", d.Schema))
}

func (d DBSpec) String() string {
	return fmt.Sprintf("%s(seed=%d, size=%d)", d.Schema, d.Seed, d.Size)
}

// colInfo describes one usable column: its type class and a few rendered
// constants from the generator's value domain (so predicates actually
// select and reject rows instead of being vacuous).
type colInfo struct {
	name   string
	kind   byte // 'i' int, 'f' float, 's' string
	consts []string
}

type tableInfo struct {
	name string
	cols []colInfo
}

func (t *tableInfo) numericCols() []colInfo {
	var out []colInfo
	for _, c := range t.cols {
		if c.kind == 'i' || c.kind == 'f' {
			out = append(out, c)
		}
	}
	return out
}

// pairInfo is one correlatable equality: a.ca = b.cb joins table a to b.
// Pairs are usable in either direction.
type pairInfo struct {
	a, ca, b, cb string
}

type schemaInfo struct {
	name   string
	tables map[string]*tableInfo
	order  []string // deterministic table pick order
	pairs  []pairInfo
}

// corrEdge is a correlation opportunity seen from one side: innerTable's
// innerCol equi-joins the given outer column.
type corrEdge struct {
	innerTable, innerCol, outerCol string
}

// edgesFrom lists correlation edges whose outer side is outerTable.
func (s *schemaInfo) edgesFrom(outerTable string) []corrEdge {
	var out []corrEdge
	for _, p := range s.pairs {
		if p.a == outerTable {
			out = append(out, corrEdge{innerTable: p.b, innerCol: p.cb, outerCol: p.ca})
		}
		if p.b == outerTable {
			out = append(out, corrEdge{innerTable: p.a, innerCol: p.ca, outerCol: p.cb})
		}
	}
	return out
}

var schemas = map[string]*schemaInfo{
	"empdept": {
		name: "empdept",
		tables: map[string]*tableInfo{
			"dept": {name: "dept", cols: []colInfo{
				{name: "name", kind: 's', consts: []string{"'dept-0'", "'dept-1'"}},
				{name: "budget", kind: 'i', consts: []string{"0", "2000", "5000"}},
				{name: "num_emps", kind: 'i', consts: []string{"0", "1", "2", "3"}},
				{name: "building", kind: 's', consts: []string{"'B0'", "'B1'", "'B3'"}},
			}},
			"emp": {name: "emp", cols: []colInfo{
				{name: "name", kind: 's', consts: []string{"'emp-0'", "'emp-1'"}},
				{name: "building", kind: 's', consts: []string{"'B0'", "'B1'", "'B3'"}},
			}},
		},
		order: []string{"dept", "emp"},
		pairs: []pairInfo{{a: "dept", ca: "building", b: "emp", cb: "building"}},
	},
	"tpcd": {
		name: "tpcd",
		tables: map[string]*tableInfo{
			"parts": {name: "parts", cols: []colInfo{
				{name: "p_partkey", kind: 'i', consts: []string{"1", "2", "3"}},
				{name: "p_size", kind: 'i', consts: []string{"1", "2", "3"}},
				{name: "p_retailprice", kind: 'f', consts: []string{"0.5", "1", "2"}},
				{name: "p_brand", kind: 's', consts: []string{"'Brand#1'", "'Brand#2'"}},
				{name: "p_container", kind: 's', consts: []string{"'SM CASE'", "'MED BOX'"}},
			}},
			"suppliers": {name: "suppliers", cols: []colInfo{
				{name: "s_suppkey", kind: 'i', consts: []string{"1", "2"}},
				{name: "s_acctbal", kind: 'f', consts: []string{"0.5", "1.5", "2"}},
				{name: "s_nation", kind: 's', consts: []string{"'ALGERIA'", "'ARGENTINA'"}},
				{name: "s_region", kind: 's', consts: []string{"'AFRICA'", "'AMERICA'"}},
			}},
			"partsupp": {name: "partsupp", cols: []colInfo{
				{name: "ps_partkey", kind: 'i', consts: []string{"1", "2", "3"}},
				{name: "ps_suppkey", kind: 'i', consts: []string{"1", "2"}},
				{name: "ps_availqty", kind: 'i', consts: []string{"0", "1", "2", "3"}},
				{name: "ps_supplycost", kind: 'f', consts: []string{"0.5", "1", "1.5"}},
			}},
			"lineitem": {name: "lineitem", cols: []colInfo{
				{name: "l_orderkey", kind: 'i', consts: []string{"1", "2"}},
				{name: "l_partkey", kind: 'i', consts: []string{"1", "2", "3"}},
				{name: "l_suppkey", kind: 'i', consts: []string{"1", "2"}},
				{name: "l_quantity", kind: 'i', consts: []string{"1", "2", "3"}},
				{name: "l_extendedprice", kind: 'f', consts: []string{"0.5", "1.5", "2.5"}},
			}},
			"customers": {name: "customers", cols: []colInfo{
				{name: "c_custkey", kind: 'i', consts: []string{"1", "2"}},
				{name: "c_acctbal", kind: 'f', consts: []string{"0.5", "1.5", "2"}},
				{name: "c_mktsegment", kind: 's', consts: []string{"'AUTOMOBILE'", "'BUILDING'"}},
				{name: "c_nation", kind: 's', consts: []string{"'ALGERIA'", "'ARGENTINA'"}},
				{name: "c_region", kind: 's', consts: []string{"'AFRICA'", "'AMERICA'"}},
			}},
		},
		order: []string{"parts", "suppliers", "partsupp", "lineitem", "customers"},
		pairs: []pairInfo{
			{a: "parts", ca: "p_partkey", b: "partsupp", cb: "ps_partkey"},
			{a: "parts", ca: "p_partkey", b: "lineitem", cb: "l_partkey"},
			{a: "suppliers", ca: "s_suppkey", b: "partsupp", cb: "ps_suppkey"},
			{a: "suppliers", ca: "s_suppkey", b: "lineitem", cb: "l_suppkey"},
			{a: "partsupp", ca: "ps_partkey", b: "lineitem", cb: "l_partkey"},
			{a: "partsupp", ca: "ps_suppkey", b: "lineitem", cb: "l_suppkey"},
			{a: "customers", ca: "c_nation", b: "suppliers", cb: "s_nation"},
			{a: "customers", ca: "c_region", b: "suppliers", cb: "s_region"},
		},
	},
}

// SchemaNames lists the generator's schemas in deterministic order.
var SchemaNames = []string{"empdept", "tpcd"}
