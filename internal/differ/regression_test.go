package differ_test

// Shrunk reproducers found by `decorr fuzz` during development, pinned
// exactly as the harness emitted them. Each one was a real divergence from
// the nested-iteration oracle before its fix landed:
//
//   - The NULL-binding ties: decorrelation joined the outer block back to
//     the decorrelated view (and MAGIC to the compensation join) with
//     comparison equality, so outer rows whose correlation column is NULL
//     were silently dropped — the NULL cousin of the COUNT bug. Fixed by
//     using grouping equality (IS NOT DISTINCT FROM) for tie and
//     compensation predicates (internal/core/decorrelate.go).
//
//   - The nested-subquery binding flow: when the correlation reaches the
//     child only through a nested NOT EXISTS, the decorrelated view holds a
//     NULL-keyed group with a real aggregate; the compensation join must
//     re-find it instead of NULL-extending. Same fix.
//
//   - OptMag over existential quantifiers: eliminating the supplementary
//     table is only sound when the fed quantifier contributes rows;
//     doing it for IN/EXISTS left the outer block with no range and an
//     invalid graph. Fixed by gating optFeed on row-contributing kinds.

import (
	"math"
	"testing"

	"decorr/internal/differ"
	"decorr/internal/schema"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

func TestDifferRegression_magic_empdept_16000090(t *testing.T) {
	differ.CheckSQL(t,
		differ.DBSpec{Schema: "empdept", Seed: 16000090, Size: 4},
		"magic",
		`select o.building, (select count(i1.building) from dept i1 where i1.num_emps <= (select count(*) from dept i2 where i2.building = o.building)) from emp o`)
}

func TestDifferRegression_magic_empdept_20000102(t *testing.T) {
	differ.CheckSQL(t,
		differ.DBSpec{Schema: "empdept", Seed: 20000102, Size: 2},
		"magic",
		`select x.v from emp o, (select avg(i1.budget) from dept i1 where i1.building = o.building) as x(v)`)
}

func TestDifferRegression_gw_empdept_26000120(t *testing.T) {
	differ.CheckSQL(t,
		differ.DBSpec{Schema: "empdept", Seed: 26000120, Size: 4},
		"gw",
		`select o.budget from dept o where 0 <= (select count(*) from emp i1 where i1.building = o.building)`)
}

func TestDifferRegression_magic_empdept_26000120(t *testing.T) {
	differ.CheckSQL(t,
		differ.DBSpec{Schema: "empdept", Seed: 26000120, Size: 4},
		"magic",
		`select o.budget from dept o where 0 <= (select count(*) from emp i1 where i1.building = o.building)`)
}

func TestDifferRegression_magic_empdept_28000126(t *testing.T) {
	differ.CheckSQL(t,
		differ.DBSpec{Schema: "empdept", Seed: 28000126, Size: 2},
		"magic",
		`select o.building, (select count(*) from dept i1 where i1.name in (select i2.name from dept i2 where i2.building = o.building)) from emp o`)
}

func TestDifferRegression_magic_empdept_48000186(t *testing.T) {
	differ.CheckSQL(t,
		differ.DBSpec{Schema: "empdept", Seed: 48000186, Size: 2},
		"magic",
		`select o.building from emp o where 0 >= (select count(i1.budget) from dept i1 where i1.budget > (select avg(i2.num_emps) from dept i2 where i2.building = o.building))`)
}

func TestDifferRegression_magic_tpcd_29000129(t *testing.T) {
	differ.CheckSQL(t,
		differ.DBSpec{Schema: "tpcd", Seed: 29000129, Size: 4},
		"magic",
		`select o.l_suppkey, (select max(i1.ps_supplycost) from partsupp i1 where not exists (select * from partsupp i2 where i2.ps_suppkey = o.l_suppkey)) from lineitem o`)
}

func TestDifferRegression_magic_tpcd_55000207(t *testing.T) {
	differ.CheckSQL(t,
		differ.DBSpec{Schema: "tpcd", Seed: 55000207, Size: 2},
		"magic",
		`select o.s_acctbal, (select avg(i1.c_custkey) from customers i1 where i1.c_nation = o.s_nation) from suppliers o`)
}

func TestDifferRegression_gw_tpcd_55000207(t *testing.T) {
	differ.CheckSQL(t,
		differ.DBSpec{Schema: "tpcd", Seed: 55000207, Size: 2},
		"gw",
		`select o.s_acctbal, (select avg(i1.c_custkey) from customers i1 where i1.c_nation = o.s_nation) from suppliers o`)
}

func TestDifferRegression_optmagic_tpcd_55000207(t *testing.T) {
	differ.CheckSQL(t,
		differ.DBSpec{Schema: "tpcd", Seed: 55000207, Size: 2},
		"optmagic",
		`select o.s_acctbal, (select avg(i1.c_custkey) from customers i1 where i1.c_nation = o.s_nation) from suppliers o`)
}

// The next two pinned OptMag's invalid-graph failure ("select box has no
// row-contributing quantifier"): the fed quantifier is existential, so the
// supplementary table must not be eliminated. CheckSQL fails loudly on any
// strategy error, so these assert the graph stays valid.

func TestDifferRegression_optmagic_tpcd_57000213(t *testing.T) {
	differ.CheckSQL(t,
		differ.DBSpec{Schema: "tpcd", Seed: 57000213, Size: 8},
		"optmagic",
		`select o.p_container, o.p_brand from parts o where not exists (select * from partsupp i1 where (i1.ps_suppkey = 1 or i1.ps_supplycost is null) and 'AFRICA' in (select i2.s_region from suppliers i2 where i2.s_acctbal < 2 and i2.s_suppkey = i1.ps_suppkey) and i1.ps_partkey = o.p_partkey)`)
}

func TestDifferRegression_optmagic_tpcd_59000219(t *testing.T) {
	differ.CheckSQL(t,
		differ.DBSpec{Schema: "tpcd", Seed: 59000219, Size: 8},
		"optmagic",
		`select o.p_brand from parts o where o.p_retailprice <> 0.5 and (o.p_container < 'MED BOX' or o.p_retailprice is null) and o.p_retailprice in (select i1.l_suppkey from lineitem i1 where i1.l_quantity is not null and i1.l_partkey = o.p_partkey)`)
}

// The binding-key canonicalization pins. The memoized and batched NI
// executors share subquery results between outer tuples whose correlation
// bindings encode to the same sqltypes key, so the key's equality notion
// must be exactly the grouping notion the comparisons use: NULL and the
// empty string must stay distinct keys, while numerically equal values of
// different kinds (1 vs 1.0, -0.0 vs 0.0) may share one — sharing is only
// sound because comparison equality agrees. Each test hand-builds the
// witness data the generated schemas cannot express and checks both
// result-sharing variants against the per-tuple NI oracle.

func bindingKeyStringDB() *storage.DB {
	db := storage.NewDB()
	outr := db.Create(schema.NewTable("outr",
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "s", Type: schema.TString}))
	for i, v := range []sqltypes.Value{
		sqltypes.Null, sqltypes.NewString(""), sqltypes.NewString("x"),
		sqltypes.NewString(""), sqltypes.Null,
	} {
		if err := outr.Insert(storage.Row{sqltypes.NewInt(int64(i)), v}); err != nil {
			panic(err)
		}
	}
	innr := db.Create(schema.NewTable("innr",
		schema.Column{Name: "s", Type: schema.TString},
		schema.Column{Name: "v", Type: schema.TInt}))
	for i, v := range []sqltypes.Value{
		sqltypes.NewString(""), sqltypes.NewString("x"), sqltypes.NewString("x"), sqltypes.Null,
	} {
		if err := innr.Insert(storage.Row{v, sqltypes.NewInt(int64(10 + i))}); err != nil {
			panic(err)
		}
	}
	return db
}

func bindingKeyNumericDB() *storage.DB {
	db := storage.NewDB()
	outr := db.Create(schema.NewTable("outr",
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "k", Type: schema.TFloat}))
	// Mixed kinds in one correlation column: int 1 vs float 1.0 and
	// -0.0 vs 0.0 vs int 0 must behave exactly as comparison equality does.
	for i, v := range []sqltypes.Value{
		sqltypes.NewInt(1), sqltypes.NewFloat(1.0),
		sqltypes.NewFloat(math.Copysign(0, -1)), sqltypes.NewFloat(0.0), sqltypes.NewInt(0),
		sqltypes.NewFloat(2.5), sqltypes.Null,
	} {
		if err := outr.Insert(storage.Row{sqltypes.NewInt(int64(i)), v}); err != nil {
			panic(err)
		}
	}
	innr := db.Create(schema.NewTable("innr",
		schema.Column{Name: "k", Type: schema.TFloat}))
	for _, v := range []sqltypes.Value{
		sqltypes.NewFloat(1.0), sqltypes.NewInt(0), sqltypes.NewFloat(2.5), sqltypes.Null,
	} {
		if err := innr.Insert(storage.Row{v}); err != nil {
			panic(err)
		}
	}
	return db
}

func TestDifferRegression_bindingkey_null_vs_empty(t *testing.T) {
	const sql = `select o.id, (select count(*) from innr i where i.s = o.s) from outr o`
	for _, variant := range []string{"nimemo", "nibatch"} {
		differ.CheckSQLOnDB(t, bindingKeyStringDB(), "bindingkey-strings", variant, sql)
	}
}

func TestDifferRegression_bindingkey_null_vs_empty_exists(t *testing.T) {
	const sql = `select o.id from outr o where exists (select * from innr i where i.s = o.s)`
	for _, variant := range []string{"nimemo", "nibatch"} {
		differ.CheckSQLOnDB(t, bindingKeyStringDB(), "bindingkey-strings", variant, sql)
	}
}

func TestDifferRegression_bindingkey_int_float_zero(t *testing.T) {
	const sql = `select o.id, (select count(*) from innr i where i.k = o.k) from outr o`
	for _, variant := range []string{"nimemo", "nibatch"} {
		differ.CheckSQLOnDB(t, bindingKeyNumericDB(), "bindingkey-numeric", variant, sql)
	}
}
