package differ

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"decorr/internal/classic"
	"decorr/internal/engine"
	"decorr/internal/exec"
	"decorr/internal/faultinject"
	"decorr/internal/storage"
)

// FaultConfig parameterizes a fault-injection sweep (FaultSweep).
type FaultConfig struct {
	// Seed drives query generation, data generation, and the injection
	// plan; (Seed, N) identifies the whole sweep.
	Seed int64
	// N is the number of generated statements (default 25).
	N int
	// Size is the database row knob (default 8).
	Size int
	// Out receives progress and failure reports (nil discards).
	Out io.Writer
	// Verbose additionally logs every generated statement.
	Verbose bool
}

// FaultFailure is one violation of the failure-handling contract: under
// injected faults a query must either return the correct result or a
// clean typed error — a wrong answer or an unclassified error is a bug.
type FaultFailure struct {
	DB      DBSpec
	Variant string
	Workers int
	SQL     string
	// Kind is "wrong-answer" (rows returned, bag differs from the no-fault
	// oracle) or "dirty-error" (an error not in the typed allowlist —
	// including a hang, which the governor's deadline converts into an
	// error that then fails classification only if untyped).
	Kind   string
	Detail string
}

func (f *FaultFailure) String() string {
	return fmt.Sprintf("%s workers=%d on %s: %s: %s\n  sql: %s",
		f.Variant, f.Workers, f.DB, f.Kind, f.Detail, f.SQL)
}

// FaultReport summarizes one sweep.
type FaultReport struct {
	Cases       int // statements swept (oracle ran clean without faults)
	Executions  int // variant × workers runs under injection
	Agreements  int // runs returning the exact oracle bag despite faults
	CleanErrors int // runs failing with an allowlisted typed error
	Skipped     int // tolerant ErrNotApplicable refusals
	Allowlisted int // Kim COUNT-bug row losses, expected
	OracleSkips int // statements the no-fault oracle could not run
	Failures    []*FaultFailure
}

// Clean reports whether the sweep found no contract violations.
func (r *FaultReport) Clean() bool { return len(r.Failures) == 0 }

func (r *FaultReport) String() string {
	return fmt.Sprintf("cases=%d executions=%d agreements=%d clean-errors=%d skipped=%d allowlisted=%d oracle-skips=%d failures=%d",
		r.Cases, r.Executions, r.Agreements, r.CleanErrors, r.Skipped,
		r.Allowlisted, r.OracleSkips, len(r.Failures))
}

// faultSweepWorkers are the worker counts every variant is swept at: the
// deterministic single-threaded engine and a parallel one, so injected
// faults land both on the caller's stack and inside worker goroutines.
var faultSweepWorkers = []int{1, 4}

// faultHangGuard bounds each governed execution; a run that neither
// finishes nor fails within it is reported as a hang. It is generous
// because the point is detecting a stuck engine, not a slow one.
const faultHangGuard = 30 * time.Second

// faultPlan derives one case's injection plan. Every site gets an error
// stream; hash builds and morsel claims additionally panic (exercising
// morsel recovery and the engine boundary) and morsel claims add latency
// (exercising deadline checks under slow operators). The Every values are
// spread over small primes so streams interleave rather than align.
func faultPlan(seed int64) faultinject.Plan {
	return faultinject.Plan{
		Seed: seed,
		Rules: map[faultinject.Point]faultinject.Rule{
			faultinject.StorageScan: {ErrEvery: 11},
			faultinject.HashBuild:   {ErrEvery: 13, PanicEvery: 29},
			faultinject.MorselClaim: {ErrEvery: 37, PanicEvery: 41, LatencyEvery: 7, Latency: 100 * time.Microsecond},
		},
	}
}

// cleanFaultError reports whether an execution failure under injection is
// an allowlisted typed error: the injected fault itself, a recovered
// panic, or a governance trip. Anything else is a dirty error.
func cleanFaultError(err error) bool {
	return errors.Is(err, faultinject.ErrInjected) ||
		errors.Is(err, exec.ErrPanic) ||
		errors.Is(err, exec.ErrCanceled) ||
		errors.Is(err, exec.ErrDeadlineExceeded) ||
		errors.Is(err, exec.ErrRowBudget) ||
		errors.Is(err, exec.ErrMemBudget)
}

// FaultSweep fuzzes statements and re-runs every variant × worker count
// under seeded fault injection, proving the failure-handling contract:
// each run either agrees with the no-fault nested-iteration oracle or
// fails with a clean typed error — never a wrong answer, a hang, or a
// process crash. Which operation a given fault lands on can vary with
// scheduling at workers>1 (hit indexes are assigned in arrival order),
// but the contract itself must hold for every interleaving, which is
// exactly what the sweep checks. Injection state is process-global: the
// sweep must not run concurrently with other engine work.
func FaultSweep(cfg FaultConfig) *FaultReport {
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	if cfg.Size <= 0 {
		cfg.Size = 8
	}
	if cfg.N <= 0 {
		cfg.N = 25
	}
	rep := &FaultReport{}
	defer faultinject.Disable()
	variants := append([]Variant{{Name: "ni", Strategy: engine.NI}}, Variants()...)
	for i := 0; i < cfg.N; i++ {
		caseSeed := cfg.Seed + int64(i)*999983
		r := rand.New(rand.NewSource(caseSeed))
		schemaName := SchemaNames[i%len(SchemaNames)]
		q := Generate(r, schemaName)
		dbs := DBSpec{Schema: schemaName, Seed: caseSeed, Size: cfg.Size}
		db := dbs.Build()
		sql := q.SQL()
		if cfg.Verbose {
			fmt.Fprintf(out, "case %d [%s]: %s\n", i, dbs, sql)
		}
		// The oracle runs without injection: it defines correctness.
		faultinject.Disable()
		want, _, err := engine.New(db).Query(sql, engine.NI)
		if err != nil {
			rep.OracleSkips++
			fmt.Fprintf(out, "oracle-skip [%s]: %v\n  sql: %s\n", dbs, err, sql)
			continue
		}
		wantBag := bagOf(want)
		rep.Cases++
		faultinject.Enable(faultPlan(caseSeed))
		for _, v := range variants {
			for _, w := range faultSweepWorkers {
				rep.Executions++
				got, err := runFaulted(db, v, sql, w)
				switch {
				case err == nil:
					gotBag := bagOf(got)
					if bagsEqual(gotBag, wantBag) {
						rep.Agreements++
					} else if allowlistedKim(v, q, gotBag, wantBag) {
						rep.Allowlisted++
					} else {
						f := &FaultFailure{DB: dbs, Variant: v.Name, Workers: w, SQL: sql,
							Kind: "wrong-answer",
							Detail: fmt.Sprintf("want %v, got %v",
								renderSorted(want), renderSorted(got))}
						rep.Failures = append(rep.Failures, f)
						fmt.Fprintf(out, "FAULT-FAILURE %s\n", f)
					}
				case v.Tolerant && errors.Is(err, classic.ErrNotApplicable):
					rep.Skipped++
				case cleanFaultError(err):
					rep.CleanErrors++
				default:
					f := &FaultFailure{DB: dbs, Variant: v.Name, Workers: w, SQL: sql,
						Kind: "dirty-error", Detail: err.Error()}
					rep.Failures = append(rep.Failures, f)
					fmt.Fprintf(out, "FAULT-FAILURE %s\n", f)
				}
			}
		}
		faultinject.Disable()
	}
	fmt.Fprintf(out, "%s\n", rep)
	return rep
}

// runFaulted executes sql under one variant on a fresh engine with the
// sweep's hang guard armed.
func runFaulted(db *storage.DB, v Variant, sql string, workers int) ([]storage.Row, error) {
	e := engine.New(db)
	e.Workers = workers
	e.Limits = exec.Limits{Timeout: faultHangGuard}
	if v.Configure != nil {
		v.Configure(e)
	}
	rows, _, err := e.Query(sql, v.Strategy)
	return rows, err
}
