package differ

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"decorr/internal/classic"
	"decorr/internal/engine"
	"decorr/internal/parallel"
	"decorr/internal/rewrite"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

// Variant is one execution configuration cross-checked against the nested
// iteration oracle: a strategy plus optional engine knobs.
type Variant struct {
	Name     string
	Strategy engine.Strategy
	// Tolerant variants may refuse a query with classic.ErrNotApplicable
	// (Kim/Dayal/GW have documented applicability limits); that counts as
	// a skip, not a divergence.
	Tolerant  bool
	Configure func(e *engine.Engine)
}

// Variants lists every configuration the harness checks: the five paper
// strategies, the memoized and runtime-batched baselines, Auto, the §4.4
// decorrelation knobs,
// the §5.3 CSE ablation, magic sets, a cleanup rule toggle that disables
// predicate pushdown and projection pruning, and the rowmode pair that
// pits the row-at-a-time executor against the vectorized oracle.
func Variants() []Variant {
	return []Variant{
		{Name: "nimemo", Strategy: engine.NIMemo},
		{Name: "nibatch", Strategy: engine.NIBatch},
		{Name: "kim", Strategy: engine.Kim, Tolerant: true},
		{Name: "dayal", Strategy: engine.Dayal, Tolerant: true},
		{Name: "gw", Strategy: engine.GanskiWong, Tolerant: true},
		{Name: "magic", Strategy: engine.Magic},
		{Name: "optmagic", Strategy: engine.OptMagic},
		{Name: "auto", Strategy: engine.Auto},
		{Name: "magic-noexist", Strategy: engine.Magic,
			Configure: func(e *engine.Engine) { e.CoreOpts.DecorrelateExistential = false }},
		{Name: "magic-noouterjoin", Strategy: engine.Magic,
			Configure: func(e *engine.Engine) { e.CoreOpts.UseOuterJoin = false }},
		{Name: "magic-csemat", Strategy: engine.Magic,
			Configure: func(e *engine.Engine) { e.MaterializeCSE = true }},
		{Name: "magic-magicsets", Strategy: engine.Magic,
			Configure: func(e *engine.Engine) { e.MagicSets = true }},
		{Name: "magic-nopushprune", Strategy: engine.Magic,
			Configure: func(e *engine.Engine) {
				e.CleanupFactory = func() *rewrite.Engine {
					return rewrite.NewCleanupWithout("push-predicates", "prune-projections")
				}
			}},
		// The rowmode variants force the row-at-a-time executor; since the
		// oracle runs with default knobs (vectorized engine on), every
		// fuzzed statement cross-checks the columnar and row paths for
		// bit-identical bags under both NI and decorrelated plan shapes.
		{Name: "rowmode-ni", Strategy: engine.NI,
			Configure: func(e *engine.Engine) { e.RowMode = true }},
		{Name: "rowmode-magic", Strategy: engine.Magic,
			Configure: func(e *engine.Engine) { e.RowMode = true }},
	}
}

// VariantByName resolves a variant (for pinned regression tests).
func VariantByName(name string) (Variant, bool) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, true
		}
	}
	return Variant{}, false
}

// Config parameterizes a fuzzing run.
type Config struct {
	// Seed drives query and data generation; every case derives its own
	// sub-seed, so (Seed, N) identifies the whole run.
	Seed int64
	// N is the number of generated statements.
	N int
	// Size is the database row knob (default 8).
	Size int
	// Out receives progress and divergence reports (nil discards).
	Out io.Writer
	// Verbose additionally logs every generated statement.
	Verbose bool
}

// Divergence is one observed disagreement with the oracle.
type Divergence struct {
	DB      DBSpec
	Variant string
	SQL     string
	Want    []string // oracle rows, rendered, sorted
	Got     []string
	Err     error // the variant errored instead of answering
	// Shrunk is the minimized reproducer; ReproTest is a ready-to-paste
	// regression test for it.
	ShrunkDB  DBSpec
	ShrunkSQL string
	ReproTest string
}

func (d *Divergence) String() string {
	if d.Err != nil {
		return fmt.Sprintf("%s on %s: error: %v\n  sql: %s", d.Variant, d.DB, d.Err, d.SQL)
	}
	return fmt.Sprintf("%s on %s:\n  sql: %s\n  want(NI): %v\n  got:      %v\n  shrunk [%s]: %s",
		d.Variant, d.DB, d.SQL, d.Want, d.Got, d.ShrunkDB, d.ShrunkSQL)
}

// Report summarizes one run.
type Report struct {
	Queries     int // statements generated
	Comparisons int // variant executions compared against the oracle
	Skipped     int // tolerant strategies that refused (ErrNotApplicable)
	OracleSkips int // statements the oracle itself could not run
	Allowlisted int // Kim empty-group (COUNT bug) divergences, expected
	Divergences []*Divergence
}

// Clean reports whether the run found no unallowlisted divergences.
func (r *Report) Clean() bool { return len(r.Divergences) == 0 }

func (r *Report) String() string {
	return fmt.Sprintf("queries=%d comparisons=%d skipped=%d oracle-skips=%d allowlisted=%d divergences=%d",
		r.Queries, r.Comparisons, r.Skipped, r.OracleSkips, r.Allowlisted, len(r.Divergences))
}

// Run fuzzes N statements and cross-checks every variant, then runs the
// fixed-query parallel-simulator check. Deterministic in cfg.
func Run(cfg Config) *Report {
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	if cfg.Size <= 0 {
		cfg.Size = 8
	}
	if cfg.N <= 0 {
		cfg.N = 100
	}
	rep := &Report{}
	for i := 0; i < cfg.N; i++ {
		caseSeed := cfg.Seed + int64(i)*1000003
		r := rand.New(rand.NewSource(caseSeed))
		schemaName := SchemaNames[i%len(SchemaNames)]
		q := Generate(r, schemaName)
		db := DBSpec{Schema: schemaName, Seed: caseSeed, Size: cfg.Size}
		rep.Queries++
		if cfg.Verbose {
			fmt.Fprintf(out, "case %d [%s]: %s\n", i, db, q.SQL())
		}
		runCase(rep, db, q, out)
	}
	if err := ParallelAgreement(); err != nil {
		rep.Divergences = append(rep.Divergences, &Divergence{
			Variant: "parallel-simulator",
			SQL:     tpcd.ExampleQuery,
			Err:     err,
		})
		fmt.Fprintf(out, "DIVERGENCE parallel-simulator: %v\n", err)
	} else {
		rep.Comparisons++
	}
	if err := DDLInterleaving(cfg.Seed, 0); err != nil {
		rep.Divergences = append(rep.Divergences, &Divergence{
			Variant: "plancache-ddl",
			SQL:     "(interleaved DDL stream)",
			Err:     err,
		})
		fmt.Fprintf(out, "DIVERGENCE plancache-ddl: %v\n", err)
	} else {
		rep.Comparisons++
	}
	fmt.Fprintf(out, "%s\n", rep)
	return rep
}

// parallelCheckWorkers is the worker count of the fuzzer's determinism
// cross-check (>1 so morsels actually interleave, small so the single-CPU
// CI runner is not oversubscribed).
const parallelCheckWorkers = 4

// runCase executes one statement under the oracle and all variants.
func runCase(rep *Report, dbs DBSpec, q Query, out io.Writer) {
	sql := q.SQL()
	db := dbs.Build()
	want, _, err := engine.New(db).Query(sql, engine.NI)
	if err != nil {
		// The oracle itself cannot run the statement (generator drift or a
		// runtime limit); nothing to compare — but it must not be silent.
		rep.OracleSkips++
		fmt.Fprintf(out, "oracle-skip [%s]: %v\n  sql: %s\n", dbs, err, sql)
		return
	}
	if d := parallelCheck(rep, db, Variant{Name: "ni", Strategy: engine.NI}, sql, want); d != nil {
		d.DB = dbs
		rep.Divergences = append(rep.Divergences, d)
		fmt.Fprintf(out, "DIVERGENCE %s\n%s\n", d.Variant, d)
	}
	wantBag := bagOf(want)
	for _, v := range Variants() {
		got, err := runVariant(db, v, sql)
		if err != nil {
			if v.Tolerant && errors.Is(err, classic.ErrNotApplicable) {
				rep.Skipped++
				continue
			}
			d := &Divergence{DB: dbs, Variant: v.Name, SQL: sql, Err: err}
			shrinkDivergence(d, q, v)
			rep.Divergences = append(rep.Divergences, d)
			fmt.Fprintf(out, "DIVERGENCE %s\n%s\n", d.Variant, d)
			continue
		}
		if v.Configure == nil {
			if d := parallelCheck(rep, db, v, sql, got); d != nil {
				d.DB = dbs
				rep.Divergences = append(rep.Divergences, d)
				fmt.Fprintf(out, "DIVERGENCE %s\n%s\n", d.Variant, d)
			}
		}
		gotBag := bagOf(got)
		if bagsEqual(gotBag, wantBag) {
			rep.Comparisons++
			continue
		}
		if allowlistedKim(v, q, gotBag, wantBag) {
			rep.Allowlisted++
			continue
		}
		d := &Divergence{DB: dbs, Variant: v.Name, SQL: sql,
			Want: renderSorted(want), Got: renderSorted(got)}
		shrinkDivergence(d, q, v)
		rep.Divergences = append(rep.Divergences, d)
		fmt.Fprintf(out, "DIVERGENCE %s\n%s\nrepro:\n%s\n", d.Variant, d, d.ReproTest)
	}
}

// parallelCheck re-runs the variant at workers>1 and compares against the
// single-threaded rows — *ordered, unsorted* equality, because the engine's
// contract is determinism at any worker count, not just the same bag. The
// shrinker is skipped: the single-threaded run is the reference, so the
// statement itself already is the reproducer.
func parallelCheck(rep *Report, db *storage.DB, v Variant, sql string, seq []storage.Row) *Divergence {
	e := engine.New(db)
	e.Workers = parallelCheckWorkers
	if v.Configure != nil {
		v.Configure(e)
	}
	name := v.Name + "-parallel"
	got, _, err := e.Query(sql, v.Strategy)
	if err != nil {
		return &Divergence{Variant: name, SQL: sql, Err: fmt.Errorf("workers=%d: %w", parallelCheckWorkers, err)}
	}
	wantR, gotR := renderOrdered(seq), renderOrdered(got)
	if len(wantR) != len(gotR) {
		return &Divergence{Variant: name, SQL: sql, Want: wantR, Got: gotR}
	}
	for i := range wantR {
		if wantR[i] != gotR[i] {
			return &Divergence{Variant: name, SQL: sql, Want: wantR, Got: gotR}
		}
	}
	rep.Comparisons++
	return nil
}

// allowlistedKim recognizes Kim's documented historical wrongness: scalar
// aggregate subqueries lose outer rows whose correlation group is empty
// (the COUNT bug, §2 of the paper). The divergence must be a strict row
// loss — anything else is a real bug even under Kim.
func allowlistedKim(v Variant, q Query, got, want map[string]int) bool {
	return v.Name == "kim" && q.HasScalarAggSub() && bagSubset(got, want)
}

// runVariant executes sql under one variant on a fresh engine.
func runVariant(db *storage.DB, v Variant, sql string) ([]storage.Row, error) {
	e := engine.New(db)
	if v.Configure != nil {
		v.Configure(e)
	}
	rows, _, err := e.Query(sql, v.Strategy)
	return rows, err
}

// bagOf builds the NULL-aware multiset of rows: two rows land on the same
// key iff they are Identical column-wise (NULL matches NULL; INT 3 matches
// DOUBLE 3.0 — the grouping notion of equality, which is what result bags
// need).
func bagOf(rows []storage.Row) map[string]int {
	m := make(map[string]int, len(rows))
	for _, r := range rows {
		m[sqltypes.Key(r)]++
	}
	return m
}

func bagsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// bagSubset reports whether sub ⊆ super as multisets.
func bagSubset(sub, super map[string]int) bool {
	for k, n := range sub {
		if super[k] < n {
			return false
		}
	}
	return true
}

func renderSorted(rows []storage.Row) []string {
	out := renderOrdered(rows)
	sort.Strings(out)
	return out
}

// renderOrdered renders rows preserving engine order (the parallel
// determinism check compares order, not just contents).
func renderOrdered(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// ParallelAgreement cross-checks the §6 shared-nothing simulator against
// the single-node engine on the example query: both placements, several
// node counts, the fixed §2 database and a larger synthetic one.
func ParallelAgreement() error {
	dbs := []struct {
		name string
		db   *storage.DB
	}{
		{"empdept", tpcd.EmpDept()},
		{"empdept-sized", tpcd.EmpDeptSized(40, 120, 8, 1)},
	}
	for _, d := range dbs {
		want, _, err := engine.New(d.db).Query(tpcd.ExampleQuery, engine.NI)
		if err != nil {
			return fmt.Errorf("engine NI on %s: %w", d.name, err)
		}
		wantNames := renderSorted(want)
		for _, placement := range []parallel.Placement{parallel.PartitionByPrimaryKey, parallel.PartitionByCorrelation} {
			for _, nodes := range []int{1, 3, 4} {
				cfg := parallel.Config{Nodes: nodes, Placement: placement}
				for _, sim := range []struct {
					name string
					run  func(*storage.DB, parallel.Config) (*parallel.Result, error)
				}{
					{"ni", parallel.RunNestedIteration},
					{"magic", parallel.RunMagic},
				} {
					res, err := sim.run(d.db, cfg)
					if err != nil {
						return fmt.Errorf("parallel %s on %s (%v, %d nodes): %w", sim.name, d.name, placement, nodes, err)
					}
					got := append([]string(nil), res.Rows...)
					sort.Strings(got)
					if strings.Join(got, ";") != strings.Join(wantNames, ";") {
						return fmt.Errorf("parallel %s on %s (%v, %d nodes): got %v, engine NI %v",
							sim.name, d.name, placement, nodes, got, wantNames)
					}
				}
			}
		}
	}
	return nil
}
