package core

import (
	"fmt"
	"sort"

	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
)

// Decorrelate rewrites the graph in place, eliminating (as far as the
// options allow) all correlations. The caller should run the cleanup
// rewrite rules afterwards to merge the helper boxes the algorithm
// introduces, and Validate the graph.
func Decorrelate(g *qgm.Graph, opts Options, tr *Trace) error {
	d := &decorrelator{
		g:    g,
		opts: opts,
		tr:   tr,
		fed:  map[*qgm.Quantifier]bool{},
		done: map[*qgm.Box]bool{},
	}
	d.snap("initial correlated QGM (Fig 2a)")
	if err := d.process(g.Root); err != nil {
		return err
	}
	if err := qgm.Validate(g); err != nil {
		return fmt.Errorf("core: decorrelation left inconsistent graph: %w", err)
	}
	d.snap("final decorrelated QGM")
	return nil
}

type decorrelator struct {
	g    *qgm.Graph
	opts Options
	tr   *Trace
	fed  map[*qgm.Quantifier]bool
	done map[*qgm.Box]bool
}

// process walks the graph top-down. At each SELECT box it feeds every
// correlated child; absorbed children may expose new correlations one
// level down, handled when recursion reaches them — this is the paper's
// level-by-level propagation of correlation bindings.
func (d *decorrelator) process(b *qgm.Box) error {
	if d.done[b] {
		return nil
	}
	d.done[b] = true
	if b.Kind == qgm.BoxSelect {
		for {
			fed := false
			for _, q := range append([]*qgm.Quantifier(nil), b.Quants...) {
				if d.fed[q] || !qgm.CorrelatedTo(q.Input, b) {
					continue
				}
				d.fed[q] = true
				if !d.canDecorrelate(b, q) {
					continue
				}
				if err := d.feed(b, q); err != nil {
					return err
				}
				fed = true
				break
			}
			if !fed {
				break
			}
		}
	}
	for _, q := range append([]*qgm.Quantifier(nil), b.Quants...) {
		if err := d.process(q.Input); err != nil {
			return err
		}
	}
	return nil
}

// canDecorrelate is the "deciding to decorrelate" step (§4.1): it checks
// the child's shape, the knobs, and the feasibility of COUNT-bug
// compensation.
func (d *decorrelator) canDecorrelate(b *qgm.Box, q *qgm.Quantifier) bool {
	child := q.Input
	if !absorbable(child) {
		return false
	}
	if q.Kind.IsSubquery() && !d.opts.DecorrelateExistential {
		return false
	}
	if q.Kind == qgm.QAll {
		// A universal quantifier's tie predicates are conditions every
		// row must meet; the magic-equality tie would have to act as a
		// restriction instead. The box encapsulator therefore declines,
		// exactly the situation §4.4 describes for ALL subqueries.
		return false
	}
	// Shared children (common subexpressions) are left alone; the paper
	// assumes hierarchical queries for the rewrite.
	refs := 0
	for _, box := range qgm.Boxes(d.g.Root) {
		for _, bq := range box.Quants {
			if bq.Input == child {
				refs++
			}
		}
	}
	if refs > 1 {
		return false
	}
	// Correlation must come from row-contributing quantifiers of b.
	for _, r := range qgm.FreeRefs(child) {
		if r.Q.Owner == b && r.Q.Kind.IsSubquery() {
			return false
		}
	}
	comp := d.compensationPlan(b, q)
	if comp.need && (!d.opts.UseOuterJoin || !comp.ok) {
		return false
	}
	return true
}

// compPlan captures the COUNT-bug analysis for one fed subquery.
type compPlan struct {
	need      bool             // a compensating outer join is required
	ok        bool             // the analysis succeeded
	emptyVals []sqltypes.Value // per-column value for unmatched bindings
}

func (d *decorrelator) compensationPlan(b *qgm.Box, q *qgm.Quantifier) compPlan {
	child := q.Input
	if q.Kind.IsSubquery() {
		// EXISTS/ANY/ALL quantifier semantics over the decorrelated view
		// are preserved by the tie predicates alone (an absent binding is
		// an empty set, which is what nested iteration saw too).
		return compPlan{ok: true}
	}
	if guaranteesRow(child) {
		vals, ok := emptyRowValues(child)
		if !ok {
			return compPlan{need: true}
		}
		allNull := true
		for _, v := range vals {
			if !v.IsNull() {
				allNull = false
				break
			}
		}
		if allNull && q.Kind == qgm.QScalar && refsNullRejecting(b, q) {
			// NI would produce NULLs that null-rejecting predicates
			// filter; the inner join drops the same rows (§5.2: "none of
			// the queries required the use of an outer-join").
			return compPlan{ok: true}
		}
		return compPlan{need: true, ok: true, emptyVals: vals}
	}
	if q.Kind == qgm.QScalar && !refsNullRejecting(b, q) {
		nulls := make([]sqltypes.Value, len(child.Cols))
		return compPlan{need: true, ok: true, emptyVals: nulls}
	}
	return compPlan{ok: true}
}

// orderOf returns the NI binding order of b's quantifiers.
func (d *decorrelator) orderOf(b *qgm.Box) []*qgm.Quantifier {
	if d.opts.Order != nil {
		return d.opts.Order(b)
	}
	// Fallback: declared order, respecting lateral dependencies among
	// ForEach quantifiers, with late quantifiers (scalar/existential) at
	// their earliest dependency position.
	own := map[*qgm.Quantifier]bool{}
	for _, q := range b.Quants {
		own[q] = true
	}
	type entry struct {
		q    *qgm.Quantifier
		row  bool // ForEach quantifiers join rows; others are "late"
		deps map[*qgm.Quantifier]bool
	}
	var entries []entry
	for _, q := range b.Quants {
		deps := map[*qgm.Quantifier]bool{}
		for _, r := range qgm.FreeRefs(q.Input) {
			if own[r.Q] && !r.Q.Kind.IsSubquery() {
				deps[r.Q] = true
			}
		}
		if q.Kind != qgm.QForEach {
			for _, p := range b.Preds {
				if qgm.RefsQuant(p, q) {
					for x := range qgm.QuantSet(p) {
						if own[x] && !x.Kind.IsSubquery() {
							deps[x] = true
						}
					}
				}
			}
		}
		entries = append(entries, entry{q: q, row: q.Kind == qgm.QForEach, deps: deps})
	}
	var out []*qgm.Quantifier
	boundSet := map[*qgm.Quantifier]bool{}
	ready := func(e entry) bool {
		for x := range e.deps {
			if !boundSet[x] {
				return false
			}
		}
		return true
	}
	emit := func(i int) {
		out = append(out, entries[i].q)
		boundSet[entries[i].q] = true
		entries = append(entries[:i], entries[i+1:]...)
	}
	for len(entries) > 0 {
		progressed := false
		// Late quantifiers first (earliest placement), then the first
		// ready row quantifier in declared order.
		for i := 0; i < len(entries); i++ {
			if !entries[i].row && ready(entries[i]) {
				emit(i)
				progressed = true
				break
			}
		}
		if progressed {
			continue
		}
		for i := 0; i < len(entries); i++ {
			if entries[i].row && ready(entries[i]) {
				emit(i)
				progressed = true
				break
			}
		}
		if !progressed {
			// Dependency cycle: emit in declared order to terminate.
			emit(0)
		}
	}
	return out
}

// feed runs the FEED stage for child quantifier q of cur, then absorbs the
// magic table into the child and ties the decorrelated view back to the
// outer block (the paper's Figures 2–4 in one pass, with the CI merge
// fused in).
func (d *decorrelator) feed(cur *qgm.Box, q *qgm.Quantifier) error {
	child := q.Input

	// 1. NI order and the supplementary split: everything bound before the
	// subquery goes into SUPP.
	order := d.orderOf(cur)
	pos := -1
	for i, oq := range order {
		if oq == q {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("core: quantifier %s missing from join order", q.Name())
	}
	suppSet := map[*qgm.Quantifier]bool{}
	for _, oq := range order[:pos] {
		suppSet[oq] = true
	}
	// Every quantifier the child's correlation references must be in SUPP.
	for _, r := range qgm.FreeRefs(child) {
		if r.Q.Owner == cur && !suppSet[r.Q] {
			return fmt.Errorf("core: correlation source %s ordered after the subquery", r.Q.Name())
		}
	}
	if len(suppSet) == 0 {
		return fmt.Errorf("core: empty supplementary for %s", q.Name())
	}

	// 2. Build the SUPP box: move the quantifiers and the predicates fully
	// contained in them.
	supp := d.g.NewBox(qgm.BoxSelect, "SUPP")
	for _, sq := range append([]*qgm.Quantifier(nil), cur.Quants...) {
		if suppSet[sq] {
			cur.RemoveQuant(sq)
			sq.Owner = supp
			supp.Quants = append(supp.Quants, sq)
		}
	}
	var keep []qgm.Expr
	for _, p := range cur.Preds {
		inSupp := true
		for x := range qgm.QuantSet(p) {
			if x.Owner == cur { // still owned by cur -> references a remaining quant
				inSupp = false
				break
			}
		}
		if inSupp {
			supp.Preds = append(supp.Preds, p)
		} else {
			keep = append(keep, p)
		}
	}
	cur.Preds = keep

	// 3. SUPP outputs: every column of the moved quantifiers referenced
	// from outside SUPP (by cur itself or by any remaining child subtree).
	outside := []*qgm.Box{cur}
	for _, rq := range cur.Quants {
		outside = append(outside, qgm.Boxes(rq.Input)...)
	}
	needed := map[qgm.RefKey]bool{}
	var orderedKeys []qgm.RefKey
	for _, box := range outside {
		box.ExprSlots(func(slot *qgm.Expr) {
			for _, r := range qgm.Refs(*slot) {
				k := qgm.RefKey{Q: r.Q, Col: r.Col}
				if suppSet[r.Q] && !needed[k] {
					needed[k] = true
					orderedKeys = append(orderedKeys, k)
				}
			}
		})
	}
	sort.Slice(orderedKeys, func(i, j int) bool {
		if orderedKeys[i].Q.ID != orderedKeys[j].Q.ID {
			return orderedKeys[i].Q.ID < orderedKeys[j].Q.ID
		}
		return orderedKeys[i].Col < orderedKeys[j].Col
	})
	outPos := map[qgm.RefKey]int{}
	for _, k := range orderedKeys {
		name := fmt.Sprintf("c%d", len(supp.Cols))
		if k.Col < len(k.Q.Input.Cols) && k.Q.Input.Cols[k.Col].Name != "" {
			name = k.Q.Input.Cols[k.Col].Name
		}
		outPos[k] = len(supp.Cols)
		supp.Cols = append(supp.Cols, qgm.OutCol{Name: name, Expr: qgm.Ref(k.Q, k.Col)})
	}
	qsupp := d.g.AddQuant(cur, qgm.QForEach, supp)
	// Redirect all outside references to the supplementary outputs.
	mapping := map[qgm.RefKey]qgm.Expr{}
	for k, p := range outPos {
		mapping[k] = qgm.Ref(qsupp, p)
	}
	for _, box := range outside {
		box.ExprSlots(func(slot *qgm.Expr) {
			*slot = qgm.Rewrite(*slot, func(e qgm.Expr) qgm.Expr {
				if r, ok := e.(*qgm.ColRef); ok {
					if repl, ok := mapping[qgm.RefKey{Q: r.Q, Col: r.Col}]; ok {
						return qgm.CloneExpr(repl)
					}
				}
				return e
			})
		})
	}
	d.snap(fmt.Sprintf("FEED: supplementary table SUPP collected for %s (Fig 2b)", q.Name()))

	// 4. Correlation columns: the SUPP outputs the child actually uses.
	corrSet := map[int]bool{}
	for _, r := range qgm.FreeRefs(child) {
		if r.Q == qsupp {
			corrSet[r.Col] = true
		}
	}
	var corrCols []int
	for c := range corrSet {
		corrCols = append(corrCols, c)
	}
	sort.Ints(corrCols)
	if len(corrCols) == 0 {
		return fmt.Errorf("core: no correlation columns survived the supplementary split for %s", q.Name())
	}

	comp := d.compensationPlan(cur, q)

	// 5. OptMag: when the correlation attributes form a key of SUPP and no
	// compensation is needed, use SUPP itself as the magic table and drop
	// the duplicate reference entirely. Only a row-contributing quantifier
	// can take over SUPP's role: an existential one feeds no rows to the
	// outer block, which would be left without a range.
	if d.opts.EliminateSupplementary && !comp.need && !q.Kind.IsSubquery() && qgm.KeyWithin(supp, corrSet) {
		return d.optFeed(cur, q, qsupp, supp, corrCols)
	}

	// 6. The MAGIC box: distinct projection of the correlation bindings.
	magic := d.g.NewBox(qgm.BoxSelect, "MAGIC")
	magic.Distinct = true
	qm := d.g.AddQuant(magic, qgm.QForEach, supp)
	refMap := map[qgm.RefKey]int{}
	for j, c := range corrCols {
		magic.Cols = append(magic.Cols, qgm.OutCol{Name: supp.Cols[c].Name, Expr: qgm.Ref(qm, c)})
		refMap[qgm.RefKey{Q: qsupp, Col: c}] = j
	}
	d.snap(fmt.Sprintf("FEED: magic table projected for %s (Fig 2c)", q.Name()))

	// 7. ABSORB: push the magic table into the child.
	w := len(child.Cols)
	magicPos, err := d.absorb(child, magic, refMap)
	if err != nil {
		return err
	}
	d.snap(fmt.Sprintf("ABSORB: %s absorbed the magic table (Fig 3c/4c)", q.Name()))

	// 8. COUNT-bug compensation: left outer join the magic table with the
	// decorrelated subquery, coalescing lost zero counts (Fig 3d, §2.1's
	// BugRemoval view).
	if comp.need {
		bug := d.g.NewBox(qgm.BoxLeftJoin, "BUGFIX")
		qbm := d.g.AddQuant(bug, qgm.QForEach, magic)
		qbr := d.g.AddQuant(bug, qgm.QForEach, child)
		for j := range corrCols {
			// Grouping equality, not comparison equality: NULL is a distinct
			// binding of MAGIC, and when the correlation reaches the child
			// only through a nested subquery the absorbed view carries a
			// NULL-keyed group that must re-join it.
			bug.Preds = append(bug.Preds, qgm.NewNullEq(qgm.Ref(qbm, j), qgm.Ref(qbr, magicPos[j])))
		}
		for i := 0; i < w; i++ {
			var e qgm.Expr = qgm.Ref(qbr, i)
			if i < len(comp.emptyVals) && !comp.emptyVals[i].IsNull() {
				e = &qgm.Func{Name: "coalesce", Args: []qgm.Expr{e, &qgm.Const{V: comp.emptyVals[i]}}}
			}
			bug.Cols = append(bug.Cols, qgm.OutCol{Name: child.Cols[i].Name, Expr: e})
		}
		for j := range corrCols {
			bug.Cols = append(bug.Cols, qgm.OutCol{Name: magic.Cols[j].Name, Expr: qgm.Ref(qbm, j)})
		}
		q.Input = bug
		d.snap(fmt.Sprintf("COUNT-bug removal: MAGIC LOJ decorrelated %s with COALESCE (Fig 3d)", q.Name()))
	}

	// 9. Tie the decorrelated view to the outer block: the correlating
	// equality predicates (the merged CI box of Fig 2d/§4.2). The magic
	// columns sit at magicPos within the absorbed child, and at w+j within
	// the compensation join's outputs.
	for j, c := range corrCols {
		tiePos := magicPos[j]
		if comp.need {
			tiePos = w + j
		}
		// The tie is grouping equality too: the decorrelated view partitions
		// its rows by binding, NULL bindings included (nested iteration ran
		// the subquery for them like any other, and a correlation used only
		// inside a nested subquery does not filter them out). Comparison
		// equality would be UNKNOWN on NULL = NULL and silently drop those
		// outer rows — the NULL cousin of the COUNT bug.
		cur.Preds = append(cur.Preds, qgm.NewNullEq(qgm.Ref(qsupp, c), qgm.Ref(q, tiePos)))
	}
	if q.Kind == qgm.QScalar {
		q.Kind = qgm.QForEach
	}
	d.snap(fmt.Sprintf("decorrelated view of %s tied to outer block (Fig 4d)", q.Name()))
	return nil
}
