package core

import (
	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
)

// guaranteesRow reports whether a box produces at least one row on every
// evaluation, regardless of the data it sees. An ungrouped aggregate is the
// canonical case: COUNT(*) over an empty scan still yields one row — the
// property behind the COUNT bug, because a grouped rewrite loses that row.
func guaranteesRow(b *qgm.Box) bool {
	switch b.Kind {
	case qgm.BoxGroup:
		return len(b.GroupBy) == 0
	case qgm.BoxSelect:
		if len(b.Preds) > 0 {
			return false
		}
		for _, q := range b.Quants {
			switch q.Kind {
			case qgm.QScalar:
				// Scalar quantifiers always contribute one row (all-NULL
				// when the subquery is empty).
			case qgm.QForEach:
				if !guaranteesRow(q.Input) {
					return false
				}
			default:
				return false // existential/universal quantifiers filter
			}
		}
		return true
	case qgm.BoxUnion:
		for _, q := range b.Quants {
			if guaranteesRow(q.Input) {
				return true
			}
		}
		return false
	case qgm.BoxLeftJoin:
		return guaranteesRow(b.Quants[0].Input)
	}
	return false
}

// emptyRowValues computes, symbolically, the single row a row-guaranteeing
// subquery returns when the correlated binding matches no data: COUNT
// aggregates yield 0, other aggregates NULL, and wrapper projections fold
// constants over those. ok=false when the shape is too complex to analyze
// (the caller then declines to decorrelate rather than risk a wrong
// compensation).
func emptyRowValues(b *qgm.Box) ([]sqltypes.Value, bool) {
	switch b.Kind {
	case qgm.BoxGroup:
		if len(b.GroupBy) != 0 {
			return nil, false
		}
		out := make([]sqltypes.Value, len(b.Cols))
		for i, c := range b.Cols {
			v, ok := foldEmpty(c.Expr, nil, nil)
			if !ok {
				return nil, false
			}
			out[i] = v
		}
		return out, true
	case qgm.BoxSelect:
		if len(b.Preds) > 0 || len(b.Quants) != 1 || b.Quants[0].Kind != qgm.QForEach {
			return nil, false
		}
		inner, ok := emptyRowValues(b.Quants[0].Input)
		if !ok {
			return nil, false
		}
		out := make([]sqltypes.Value, len(b.Cols))
		for i, c := range b.Cols {
			v, ok := foldEmpty(c.Expr, b.Quants[0], inner)
			if !ok {
				return nil, false
			}
			out[i] = v
		}
		return out, true
	}
	return nil, false
}

// foldEmpty evaluates an expression in the empty-group environment:
// aggregates become their empty value, references to quantifier q take the
// supplied inner row, any other reference is NULL (it ranged over the empty
// input).
func foldEmpty(e qgm.Expr, q *qgm.Quantifier, inner []sqltypes.Value) (sqltypes.Value, bool) {
	switch x := e.(type) {
	case *qgm.Agg:
		if x.Op.NeverNullOnEmpty() {
			return sqltypes.NewInt(0), true
		}
		return sqltypes.Null, true
	case *qgm.Const:
		return x.V, true
	case *qgm.ColRef:
		if q != nil && x.Q == q && x.Col < len(inner) {
			return inner[x.Col], true
		}
		return sqltypes.Null, true
	case *qgm.Bin:
		switch x.Op {
		case qgm.OpAdd, qgm.OpSub, qgm.OpMul, qgm.OpDiv:
			l, ok := foldEmpty(x.L, q, inner)
			if !ok {
				return sqltypes.Null, false
			}
			r, ok := foldEmpty(x.R, q, inner)
			if !ok {
				return sqltypes.Null, false
			}
			v, err := sqltypes.Arith(arithOp(x.Op), l, r)
			if err != nil {
				return sqltypes.Null, false
			}
			return v, true
		}
		return sqltypes.Null, false
	case *qgm.Func:
		if x.Name == "coalesce" {
			vals := make([]sqltypes.Value, len(x.Args))
			for i, a := range x.Args {
				v, ok := foldEmpty(a, q, inner)
				if !ok {
					return sqltypes.Null, false
				}
				vals[i] = v
			}
			return sqltypes.Coalesce(vals...), true
		}
	}
	return sqltypes.Null, false
}

func arithOp(op qgm.Op) sqltypes.ArithOp {
	switch op {
	case qgm.OpAdd:
		return sqltypes.OpAdd
	case qgm.OpSub:
		return sqltypes.OpSub
	case qgm.OpMul:
		return sqltypes.OpMul
	}
	return sqltypes.OpDiv
}

// refsNullRejecting reports whether every use of quantifier q in box b is
// inside a null-rejecting predicate: a NULL (or missing) subquery value
// then guarantees the outer row is filtered, so an inner join is equivalent
// to the compensating outer join. The check is conservative: any use in an
// output column, or inside IS NULL / COALESCE / OR, defeats it.
func refsNullRejecting(b *qgm.Box, q *qgm.Quantifier) bool {
	for _, c := range b.Cols {
		if qgm.RefsQuant(c.Expr, q) {
			return false
		}
	}
	for _, ge := range b.GroupBy {
		if qgm.RefsQuant(ge, q) {
			return false
		}
	}
	for _, p := range b.Preds {
		if !qgm.RefsQuant(p, q) {
			continue
		}
		rejecting := true
		qgm.Walk(p, func(e qgm.Expr) bool {
			switch x := e.(type) {
			case *qgm.IsNull, *qgm.Func, *qgm.Case:
				rejecting = false
			case *qgm.Bin:
				if x.Op == qgm.OpOr {
					rejecting = false
				}
			}
			return rejecting
		})
		if !rejecting {
			return false
		}
	}
	return true
}

// absorbable reports whether the magic table can be pushed into box b: the
// spine from b down to the correlated SPJ boxes must consist of SELECT,
// GROUP BY, and UNION boxes only.
func absorbable(b *qgm.Box) bool {
	switch b.Kind {
	case qgm.BoxSelect:
		return true
	case qgm.BoxGroup:
		return absorbable(b.Quants[0].Input)
	case qgm.BoxUnion, qgm.BoxIntersect, qgm.BoxExcept:
		// Tagging every branch row with the magic binding commutes with
		// union, intersection and difference: the bindings partition the
		// rows, so per-binding set operations equal the global ones.
		for _, q := range b.Quants {
			if !absorbable(q.Input) {
				return false
			}
		}
		return true
	}
	return false
}
