package core

import (
	"testing"

	"decorr/internal/parser"
	"decorr/internal/qgm"
	"decorr/internal/semant"
	"decorr/internal/sqltypes"
	"decorr/internal/tpcd"
)

// bindRoot binds sql against the TPC-D catalog and returns the graph.
func bindRoot(t *testing.T, sql string) *qgm.Graph {
	t.Helper()
	q, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	db := tpcd.Generate(tpcd.Config{SF: 0.01, Seed: 1})
	g, err := semant.Bind(q, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGuaranteesRow(t *testing.T) {
	cases := []struct {
		sql  string
		want bool
	}{
		{"select count(*) from parts", true},                               // ungrouped aggregate
		{"select sum(p_size) from parts", true},                            // ditto
		{"select count(*) from parts group by p_brand", false},             // grouped
		{"select p_size from parts", false},                                // plain scan
		{"select p_size from parts where p_size = 1", false},               // filtered
		{"select count(*) from parts union all select 1 from parts", true}, // union keeps rows
	}
	for _, c := range cases {
		g := bindRoot(t, c.sql)
		if got := guaranteesRow(g.Root); got != c.want {
			t.Errorf("guaranteesRow(%q) = %v want %v", c.sql, got, c.want)
		}
	}
}

func TestEmptyRowValues(t *testing.T) {
	cases := []struct {
		sql  string
		want []string // rendered values; nil means "not analyzable"
	}{
		{"select count(*) from parts", []string{"0"}},
		{"select count(*), min(p_size) from parts", []string{"0", "NULL"}},
		{"select sum(p_size), avg(p_size) from parts", []string{"NULL", "NULL"}},
		{"select 0.2 * avg(p_size) from parts", []string{"NULL"}},
		{"select count(*) + 1 from parts", []string{"1"}},
		{"select coalesce(sum(p_size), 0) from parts", []string{"0"}},
		{"select count(*) from parts group by p_brand", nil},
	}
	for _, c := range cases {
		g := bindRoot(t, c.sql)
		vals, ok := emptyRowValues(g.Root)
		if c.want == nil {
			if ok {
				t.Errorf("emptyRowValues(%q) unexpectedly analyzable: %v", c.sql, vals)
			}
			continue
		}
		if !ok {
			t.Errorf("emptyRowValues(%q) not analyzable", c.sql)
			continue
		}
		if len(vals) != len(c.want) {
			t.Errorf("emptyRowValues(%q) = %v", c.sql, vals)
			continue
		}
		for i, v := range vals {
			if v.String() != c.want[i] {
				t.Errorf("emptyRowValues(%q)[%d] = %s want %s", c.sql, i, v, c.want[i])
			}
		}
	}
}

func TestKeyWithin(t *testing.T) {
	// parts: key p_partkey (output 0 below).
	g := bindRoot(t, "select p_partkey, p_brand from parts where p_size = 3")
	if !qgm.KeyWithin(g.Root, map[int]bool{0: true}) {
		t.Error("p_partkey is a key of the filtered parts scan")
	}
	if qgm.KeyWithin(g.Root, map[int]bool{1: true}) {
		t.Error("p_brand is not a key")
	}
	// Join: needs keys from both sides.
	g = bindRoot(t, `select p.p_partkey, ps.ps_partkey, ps.ps_suppkey
	                 from parts p, partsupp ps where p.p_partkey = ps.ps_partkey`)
	if !qgm.KeyWithin(g.Root, map[int]bool{0: true, 1: true, 2: true}) {
		t.Error("part key + partsupp key identify the join")
	}
	if qgm.KeyWithin(g.Root, map[int]bool{0: true}) {
		t.Error("part key alone does not identify the join")
	}
	// DISTINCT over all chosen outputs is a key.
	g = bindRoot(t, "select distinct p_brand from parts")
	if !qgm.KeyWithin(g.Root, map[int]bool{0: true}) {
		t.Error("all columns of a DISTINCT projection form a key")
	}
	// Grouped: group columns are the key.
	g = bindRoot(t, "select p_brand, count(*) from parts group by p_brand")
	// Root here is the projection wrapper; locate the group box.
	var grp *qgm.Box
	for _, b := range qgm.Boxes(g.Root) {
		if b.Kind == qgm.BoxGroup {
			grp = b
		}
	}
	if grp == nil {
		t.Fatal("no group box")
	}
	if !qgm.KeyWithin(grp, map[int]bool{0: true}) {
		t.Error("grouping column is a key of the group box")
	}
	if qgm.KeyWithin(grp, map[int]bool{1: true}) {
		t.Error("the aggregate output is not a key")
	}
}

func TestRefsNullRejecting(t *testing.T) {
	g := qgm.NewGraph()
	base := g.NewBaseBox(tpcd.EmpDept().Catalog.Lookup("dept"))
	b := g.NewBox(qgm.BoxSelect, "b")
	q := g.AddQuant(b, qgm.QForEach, base)
	sub := g.NewBaseBox(tpcd.EmpDept().Catalog.Lookup("emp"))
	qs := g.AddQuant(b, qgm.QForEach, sub)
	b.Cols = []qgm.OutCol{{Name: "n", Expr: qgm.Ref(q, 0)}}

	set := func(p qgm.Expr) { b.Preds = []qgm.Expr{p} }

	set(&qgm.Bin{Op: qgm.OpGt, L: qgm.Ref(q, 1), R: qgm.Ref(qs, 0)})
	if !refsNullRejecting(b, qs) {
		t.Error("comparison is null-rejecting")
	}
	set(&qgm.IsNull{E: qgm.Ref(qs, 0)})
	if refsNullRejecting(b, qs) {
		t.Error("IS NULL is not null-rejecting")
	}
	set(&qgm.Bin{Op: qgm.OpOr,
		L: &qgm.Bin{Op: qgm.OpEq, L: qgm.Ref(qs, 0), R: qgm.ConstInt(1)},
		R: &qgm.Bin{Op: qgm.OpEq, L: qgm.Ref(q, 1), R: qgm.ConstInt(1)}})
	if refsNullRejecting(b, qs) {
		t.Error("OR is not null-rejecting")
	}
	set(&qgm.Bin{Op: qgm.OpEq,
		L: &qgm.Func{Name: "coalesce", Args: []qgm.Expr{qgm.Ref(qs, 0), qgm.ConstInt(0)}},
		R: qgm.ConstInt(0)})
	if refsNullRejecting(b, qs) {
		t.Error("COALESCE is not null-rejecting")
	}
	// Output use defeats the analysis.
	b.Preds = nil
	b.Cols = append(b.Cols, qgm.OutCol{Name: "v", Expr: qgm.Ref(qs, 0)})
	if refsNullRejecting(b, qs) {
		t.Error("output use is not null-rejecting")
	}
}

func TestFoldEmptyArithNullPropagation(t *testing.T) {
	v, ok := foldEmpty(&qgm.Bin{Op: qgm.OpMul,
		L: &qgm.Const{V: sqltypes.NewFloat(0.2)},
		R: &qgm.Agg{Op: qgm.AggAvg, Arg: qgm.ConstInt(1)}}, nil, nil)
	if !ok || !v.IsNull() {
		t.Errorf("0.2 * AVG over empty = %v (ok=%v), want NULL", v, ok)
	}
	v, ok = foldEmpty(&qgm.Bin{Op: qgm.OpAdd,
		L: &qgm.Agg{Op: qgm.AggCountStar},
		R: &qgm.Const{V: sqltypes.NewInt(5)}}, nil, nil)
	if !ok || v.I != 5 {
		t.Errorf("COUNT(*)+5 over empty = %v, want 5", v)
	}
}

func TestAbsorbable(t *testing.T) {
	g := bindRoot(t, "select count(*) from parts group by p_brand")
	if !absorbable(g.Root) {
		t.Error("select-over-group chain is absorbable")
	}
	base := qgm.NewGraph().NewBaseBox(tpcd.EmpDept().Catalog.Lookup("emp"))
	if absorbable(base) {
		t.Error("a base table cannot absorb a magic table")
	}
}
