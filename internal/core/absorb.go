package core

import (
	"fmt"

	"decorr/internal/qgm"
)

// absorb is the ABSORB stage (§4.3): it rewrites box b in place so that it
// computes M × b with the correlated references resolved against the magic
// table, and appends M's columns to b's outputs. It returns the positions
// of the appended magic columns.
//
// SPJ boxes take the magic table directly into their FROM list (§4.3.2).
// Non-SPJ boxes (GROUP BY, UNION) feed the bindings to their children
// first and then absorb: a group box adds the magic columns to its
// grouping list, a union box pushes the magic table into every branch
// (§4.3.1).
func (d *decorrelator) absorb(b *qgm.Box, m *qgm.Box, refMap map[qgm.RefKey]int) ([]int, error) {
	k := len(m.Cols)
	switch b.Kind {
	case qgm.BoxSelect:
		// Snapshot the subtree before attaching the magic quantifier so
		// the rewrite cannot touch M's own internals (SUPP references).
		snapshot := qgm.Boxes(b)
		qm := d.g.AddQuant(b, qgm.QForEach, m)
		for _, box := range snapshot {
			box.ExprSlots(func(slot *qgm.Expr) {
				*slot = qgm.Rewrite(*slot, func(e qgm.Expr) qgm.Expr {
					if r, ok := e.(*qgm.ColRef); ok {
						if j, ok := refMap[qgm.RefKey{Q: r.Q, Col: r.Col}]; ok {
							return qgm.Ref(qm, j)
						}
					}
					return e
				})
			})
		}
		base := len(b.Cols)
		pos := make([]int, k)
		for j := 0; j < k; j++ {
			pos[j] = base + j
			b.Cols = append(b.Cols, qgm.OutCol{Name: m.Cols[j].Name, Expr: qgm.Ref(qm, j)})
		}
		return pos, nil

	case qgm.BoxGroup:
		qd := b.Quants[0]
		childPos, err := d.absorb(qd.Input, m, refMap)
		if err != nil {
			return nil, err
		}
		// The group box's own expressions (aggregate arguments, grouping
		// expressions) may hold correlated references too; they now read
		// the magic columns through the child.
		b.ExprSlots(func(slot *qgm.Expr) {
			*slot = qgm.Rewrite(*slot, func(e qgm.Expr) qgm.Expr {
				if r, ok := e.(*qgm.ColRef); ok {
					if j, ok := refMap[qgm.RefKey{Q: r.Q, Col: r.Col}]; ok {
						return qgm.Ref(qd, childPos[j])
					}
				}
				return e
			})
		})
		base := len(b.Cols)
		pos := make([]int, k)
		for j := 0; j < k; j++ {
			pos[j] = base + j
			b.GroupBy = append(b.GroupBy, qgm.Ref(qd, childPos[j]))
			b.Cols = append(b.Cols, qgm.OutCol{Name: m.Cols[j].Name, Expr: qgm.Ref(qd, childPos[j])})
		}
		return pos, nil

	case qgm.BoxUnion, qgm.BoxIntersect, qgm.BoxExcept:
		// Feed the magic table to every branch; each branch appends the
		// same k columns, so arities stay aligned. For INTERSECT/EXCEPT
		// this is sound because the magic tag partitions the rows:
		// per-binding set operations equal the global tagged ones.
		for _, qb := range b.Quants {
			if _, err := d.absorb(qb.Input, m, refMap); err != nil {
				return nil, err
			}
		}
		base := len(b.Cols)
		pos := make([]int, k)
		for j := 0; j < k; j++ {
			pos[j] = base + j
			b.Cols = append(b.Cols, qgm.OutCol{Name: m.Cols[j].Name})
		}
		return pos, nil
	}
	return nil, fmt.Errorf("core: cannot absorb a magic table into a %s box", b.Kind)
}
