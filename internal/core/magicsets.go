package core

import (
	"fmt"
	"sort"

	"decorr/internal/qgm"
)

// ApplyMagicSets implements the classical (non-recursive) magic sets
// rewriting the paper positions itself against (§7): where magic
// DECORRELATION propagates correlation bindings, magic SETS propagates
// join bindings — a derived table equi-joined to the rest of a SELECT box
// is restricted to the join values that can actually participate, before
// it does its (possibly aggregating) work.
//
// For every SELECT box with a ForEach quantifier q over a non-shared
// derived child D and an equality predicate otherExpr = q.col:
//
//	SUPP  := the box's other row quantifiers and their predicates
//	MAGIC := SELECT DISTINCT otherExpr FROM SUPP
//	D     := D semi-joined with MAGIC on col — pushed below D's GROUP BY
//	         when col is a grouping column (the restriction then limits
//	         the aggregation itself, which is the point of the exercise)
//
// The transformation composes with magic decorrelation: the engine applies
// it when Engine.MagicSets is enabled.
func ApplyMagicSets(g *qgm.Graph, order Orderer) error {
	d := &decorrelator{g: g, opts: Options{Order: order}, fed: map[*qgm.Quantifier]bool{}, done: map[*qgm.Box]bool{}}
	for _, b := range qgm.Boxes(g.Root) {
		if b.Kind != qgm.BoxSelect {
			continue
		}
		for _, q := range append([]*qgm.Quantifier(nil), b.Quants...) {
			if !magicSetsCandidate(g, b, q) {
				continue
			}
			if err := d.feedJoinBindings(b, q); err != nil {
				return err
			}
		}
	}
	if err := qgm.Validate(g); err != nil {
		return fmt.Errorf("core: magic sets left inconsistent graph: %w", err)
	}
	return nil
}

// magicSetsCandidate reports whether q is a derived-table quantifier worth
// restricting: ForEach over a non-shared GROUP BY pipeline (restricting a
// plain SPJ child is MergeSPJ's job), uncorrelated, with at least one
// other row quantifier to derive bindings from.
func magicSetsCandidate(g *qgm.Graph, b *qgm.Box, q *qgm.Quantifier) bool {
	if q.Kind != qgm.QForEach {
		return false
	}
	child := q.Input
	if child.Kind != qgm.BoxGroup && !(child.Kind == qgm.BoxSelect && child.Distinct) {
		return false
	}
	if qgm.IsCorrelated(child) {
		return false
	}
	refs := 0
	for _, box := range qgm.Boxes(g.Root) {
		for _, bq := range box.Quants {
			if bq.Input == child {
				refs++
			}
		}
	}
	if refs > 1 {
		return false
	}
	others := 0
	for _, oq := range b.Quants {
		if oq != q && !oq.Kind.IsSubquery() {
			others++
		}
	}
	return others > 0
}

// msTie is one equality binding pushed by magic sets: child output column
// col equated with an expression over the box's other quantifiers.
type msTie struct {
	col   int
	other qgm.Expr
}

// feedJoinBindings restricts q.Input by the distinct join values of the
// box's other quantifiers.
func (d *decorrelator) feedJoinBindings(cur *qgm.Box, q *qgm.Quantifier) error {
	child := q.Input
	// Collect equality predicates joining q to the other quantifiers,
	// where the q side is a bare column of the child.
	var ties []msTie
	for _, p := range cur.Preds {
		bin, ok := p.(*qgm.Bin)
		if !ok || bin.Op != qgm.OpEq {
			continue
		}
		for _, try := range [][2]qgm.Expr{{bin.L, bin.R}, {bin.R, bin.L}} {
			ref, ok := try[0].(*qgm.ColRef)
			if !ok || ref.Q != q || qgm.RefsQuant(try[1], q) {
				continue
			}
			otherOK := true
			for oq := range qgm.QuantSet(try[1]) {
				if oq.Owner == cur && oq.Kind.IsSubquery() {
					otherOK = false
				}
			}
			if otherOK {
				ties = append(ties, msTie{col: ref.Col, other: try[1]})
			}
			break
		}
	}
	if len(ties) == 0 {
		return nil
	}
	sort.Slice(ties, func(i, j int) bool { return ties[i].col < ties[j].col })

	// MAGIC: the distinct binding values computed from the other
	// quantifiers. (No supplementary split: the other quantifiers stay in
	// place; the magic table references them through a copy of the same
	// inputs would require CSE machinery, so instead project directly from
	// the same input boxes — sharing them as common subexpressions.)
	magic := d.g.NewBox(qgm.BoxSelect, "MAGICSET")
	magic.Distinct = true
	clone := map[*qgm.Quantifier]*qgm.Quantifier{}
	for _, oq := range cur.Quants {
		if oq == q || oq.Kind.IsSubquery() {
			continue
		}
		// Clones keep their kind: a scalar quantifier's empty-input
		// null-fill semantics must carry over to the binding computation.
		clone[oq] = d.g.AddQuant(magic, oq.Kind, oq.Input)
	}
	remap := func(e qgm.Expr) (qgm.Expr, bool) {
		ok := true
		out := qgm.Rewrite(e, func(x qgm.Expr) qgm.Expr {
			if r, isRef := x.(*qgm.ColRef); isRef {
				if nq, has := clone[r.Q]; has {
					return qgm.Ref(nq, r.Col)
				}
				if r.Q.Owner == cur {
					ok = false
				}
			}
			return x
		})
		return out, ok
	}
	// The magic table applies the box's own restrictions over the cloned
	// quantifiers so the binding set is as tight as the outer computation.
	for _, p := range cur.Preds {
		if qgm.RefsQuant(p, q) {
			continue
		}
		np, ok := remap(p)
		if !ok {
			continue
		}
		magic.Preds = append(magic.Preds, np)
	}
	usable := ties[:0]
	for _, t := range ties {
		no, ok := remap(t.other)
		if !ok {
			continue
		}
		magic.Cols = append(magic.Cols, qgm.OutCol{
			Name: fmt.Sprintf("m%d", len(magic.Cols)), Expr: no})
		usable = append(usable, t)
	}
	if len(usable) == 0 || len(magic.Quants) == 0 {
		return nil
	}

	// Restrict the child: semi-join with the magic table, pushed below a
	// GROUP BY when every tie column is a grouping column.
	qm, target, colFor, err := d.pushRestriction(child, magic, usable)
	if err != nil || qm == nil {
		return err
	}
	for i, t := range usable {
		target.Preds = append(target.Preds, qgm.NewEq(colFor(t.col, i), qgm.Ref(qm, i)))
	}
	return nil
}

// pushRestriction attaches a ForEach quantifier over magic to the box that
// should absorb the restriction: the GROUP BY's input when the tie columns
// are grouping columns, the child itself otherwise. It returns the magic
// quantifier, the box holding the new predicates, and a translator from
// (child output ordinal, tie index) to the expression to compare.
func (d *decorrelator) pushRestriction(child, magic *qgm.Box, ties []msTie) (*qgm.Quantifier, *qgm.Box, func(int, int) qgm.Expr, error) {
	if child.Kind == qgm.BoxGroup {
		// Push below the aggregate only when every tie column is a plain
		// grouping column whose source is a column of the group's input.
		body := child.Quants[0].Input
		if body.Kind == qgm.BoxSelect && !body.Distinct {
			sources := make([]qgm.Expr, len(ties))
			ok := true
			for i, t := range ties {
				if t.col >= len(child.Cols) {
					ok = false
					break
				}
				cr, isRef := child.Cols[t.col].Expr.(*qgm.ColRef)
				if !isRef || !isGroupCol(child, cr) {
					ok = false
					break
				}
				sources[i] = qgm.Ref(cr.Q, cr.Col) // ref into the body via the group quant
				// The predicate will live in the body, so reference the
				// body's own output expression instead.
				if cr.Col >= len(body.Cols) {
					ok = false
					break
				}
				sources[i] = body.Cols[cr.Col].Expr
			}
			if ok {
				qm := d.g.AddQuant(body, qgm.QForEach, magic)
				return qm, body, func(col, i int) qgm.Expr {
					return qgm.CloneExpr(sources[i])
				}, nil
			}
		}
	}
	// Fallback: semi-join above the child by wrapping it.
	wrap := d.g.NewBox(qgm.BoxSelect, "RESTRICT")
	qc := d.g.AddQuant(wrap, qgm.QForEach, child)
	qm := d.g.AddQuant(wrap, qgm.QForEach, magic)
	for i, c := range child.Cols {
		wrap.Cols = append(wrap.Cols, qgm.OutCol{Name: c.Name, Expr: qgm.Ref(qc, i)})
	}
	// Replace the child under its consumer.
	for _, b := range qgm.Boxes(d.g.Root) {
		for _, bq := range b.Quants {
			if bq.Input == child && b != wrap {
				bq.Input = wrap
			}
		}
	}
	return qm, wrap, func(col, i int) qgm.Expr {
		return qgm.Ref(qc, col)
	}, nil
}

func isGroupCol(grp *qgm.Box, ref *qgm.ColRef) bool {
	for _, ge := range grp.GroupBy {
		if gr, ok := ge.(*qgm.ColRef); ok && gr.Q == ref.Q && gr.Col == ref.Col {
			return true
		}
	}
	return false
}
