package core_test

import (
	"sort"
	"strings"
	"testing"

	"decorr/internal/core"
	"decorr/internal/engine"
	"decorr/internal/exec"
	"decorr/internal/parser"
	"decorr/internal/qgm"
	"decorr/internal/semant"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

// diff runs sql under NI and under Magic (with the given engine knobs) and
// asserts identical multisets; it returns the Magic stats.
func diff(t *testing.T, db *storage.DB, sql string, tune func(*engine.Engine)) *exec.Stats {
	t.Helper()
	e := engine.New(db)
	if tune != nil {
		tune(e)
	}
	niRows, _, err := e.Query(sql, engine.NI)
	if err != nil {
		t.Fatalf("NI: %v", err)
	}
	magRows, stats, err := e.Query(sql, engine.Magic)
	if err != nil {
		t.Fatalf("Magic: %v", err)
	}
	if got, want := render(magRows), render(niRows); got != want {
		t.Fatalf("Magic diverges from NI on %q:\n got %s\nwant %s", sql, got, want)
	}
	return stats
}

func render(rows []storage.Row) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return strings.Join(out, ";")
}

// The catalogue of correlated query shapes magic decorrelation must
// handle; each is differentially tested against nested iteration.
func TestDecorrelationCatalogue(t *testing.T) {
	db := tpcd.EmpDept()
	cases := []struct {
		name, sql  string
		decorrDone bool // expect zero remaining invocations
	}{
		{"scalar count", tpcd.ExampleQuery, true},
		{"scalar min null-rejecting", `
			select d.name from dept d
			where d.budget > (select min(budget) from dept d2 where d2.building = d.building)`, true},
		{"scalar in output position", `
			select d.name, (select count(*) from emp e where e.building = d.building) from dept d`, true},
		{"scalar sum null output", `
			select d.name, (select sum(budget) from dept d2
			                where d2.building = d.building and d2.budget > d.budget) from dept d`, true},
		{"exists", `
			select d.name from dept d
			where exists (select * from emp e where e.building = d.building)`, true},
		{"not exists", `
			select d.name from dept d
			where not exists (select * from emp e where e.building = d.building)`, true},
		{"in with non-equality correlation", `
			select e.name from emp e
			where e.building in (select building from dept d where d.budget < e.name)`, true},
		{"in correlated", `
			select d.name from dept d
			where d.num_emps in (select count(*) from emp e where e.building = d.building)`, true},
		{"all stays correlated", `
			select d.name from dept d
			where d.budget <= all (select budget from dept d2 where d2.building = d.building)`, false},
		{"multi-level", `
			select d.name from dept d
			where d.num_emps > (
				select count(*) from emp e
				where e.building = d.building and exists (
					select * from emp e2 where e2.building = d.building and e2.name < e.name))`, true},
		{"two subqueries", `
			select d.name from dept d
			where d.num_emps > (select count(*) from emp e where e.building = d.building)
			  and d.budget < (select sum(budget) from dept d2 where d2.building = d.building)`, true},
		{"correlated derived table", `
			select d.name, t.n from dept d,
			  (select count(*) from emp e where e.building = d.building) as t(n)
			where d.budget < 10000`, true},
		{"union subquery", `
			select d.name, t.n from dept d,
			  (select sum(x) from
			    ((select budget from dept a where a.building = d.building)
			     union all
			     (select num_emps from dept b where b.building = d.building)) as u(x)
			  ) as t(n)`, true},
		{"union distinct subquery", `
			select d.name, t.n from dept d,
			  (select sum(x) from
			    ((select budget from dept a where a.building = d.building)
			     union
			     (select budget from dept b where b.building = d.building)) as u(x)
			  ) as t(n)`, true},
		{"intersect subquery", `
			select d.name, t.n from dept d,
			  (select count(x) from
			    ((select building from emp e where e.building = d.building)
			     intersect all
			     (select building from dept d2 where d2.building = d.building)) as u(x)
			  ) as t(n)`, true},
		{"except subquery", `
			select d.name, t.n from dept d,
			  (select count(x) from
			    ((select building from dept d2 where d2.building = d.building)
			     except
			     (select building from emp e where e.building = d.building)) as u(x)
			  ) as t(n)`, true},
		{"avg with expression", `
			select e.name from emp e
			where 1 < (select 0.5 * count(*) from emp e2 where e2.building = e.building)`, true},
		{"correlation under group arg", `
			select d.name from dept d
			where d.budget >= (select max(d.num_emps + d2.budget) from dept d2
			                   where d2.building = d.building)`, true},
		{"two correlation columns", `
			select d.name from dept d
			where d.num_emps >= (select count(*) from dept d2
			                     where d2.building = d.building and d2.budget < d.budget)`, true},
		{"correlated expression not bare column", `
			select d.name from dept d
			where d.budget > (select sum(d2.num_emps) from dept d2
			                  where d2.budget < d.budget + 500)`, true},
		{"not exists with extra condition", `
			select d.name from dept d
			where not exists (select * from emp e
			                  where e.building = d.building and e.name like 'a%')`, true},
		{"exists under scalar compensation", `
			select d.name,
			  (select count(*) from dept d2
			   where d2.building = d.building
			     and exists (select * from emp e where e.building = d2.building))
			from dept d`, true},
		{"duplicate corr values", `
			select d.name, d2.name from dept d, dept d2
			where d.building = d2.building
			  and d.num_emps > (select count(*) from emp e where e.building = d.building)`, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			stats := diff(t, db, c.sql, nil)
			if c.decorrDone && stats.SubqueryInvocations != 0 {
				t.Errorf("expected full decorrelation, %d invocations remain", stats.SubqueryInvocations)
			}
			if !c.decorrDone && stats.SubqueryInvocations == 0 {
				t.Errorf("expected residual correlation, found none")
			}
		})
	}
}

func TestKnobNoExistentialDecorrelation(t *testing.T) {
	db := tpcd.EmpDept()
	sql := `select d.name from dept d
	        where exists (select * from emp e where e.building = d.building)`
	stats := diff(t, db, sql, func(e *engine.Engine) {
		e.CoreOpts.DecorrelateExistential = false
	})
	if stats.SubqueryInvocations == 0 {
		t.Error("existential knob off, but the subquery was decorrelated anyway")
	}
}

func TestKnobNoOuterJoinPartialDecorrelation(t *testing.T) {
	db := tpcd.EmpDept()
	// COUNT needs the compensation LOJ; with outer joins disabled the
	// aggregate stays correlated but the answer must stay right.
	stats := diff(t, db, tpcd.ExampleQuery, func(e *engine.Engine) {
		e.CoreOpts.UseOuterJoin = false
	})
	if stats.SubqueryInvocations == 0 {
		t.Error("without outer joins the COUNT subquery must remain correlated")
	}
}

func TestTraceCapturesEveryStage(t *testing.T) {
	q, err := parser.Parse(tpcd.ExampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.Bind(q, tpcd.EmpDept().Catalog)
	if err != nil {
		t.Fatal(err)
	}
	tr := &core.Trace{}
	if err := core.Decorrelate(g, core.DefaultOptions(), tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) < 5 {
		t.Fatalf("only %d stages captured", len(tr.Steps))
	}
	if tr.Steps[0].Title == "" || !strings.Contains(tr.Steps[0].Title, "initial") {
		t.Errorf("first stage = %q", tr.Steps[0].Title)
	}
	for _, s := range tr.Steps {
		if !strings.Contains(s.Plan, "Box") {
			t.Errorf("stage %q has no plan", s.Title)
		}
	}
}

func TestDecorrelatedPlanMentionsHelperBoxes(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	p, err := e.Prepare(tpcd.ExampleQuery, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	plan := p.Explain()
	for _, want := range []string{"SUPP", "MAGIC", "BUGFIX", "LOJ", "coalesce"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	// And the decorrelated plan has no remaining correlation markers.
	if strings.Contains(plan, "correlated") {
		t.Errorf("plan still correlated:\n%s", plan)
	}
}

func TestValidAfterDecorrelation(t *testing.T) {
	for _, sql := range []string{
		tpcd.ExampleQuery,
	} {
		q, err := parser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		g, err := semant.Bind(q, tpcd.EmpDept().Catalog)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Decorrelate(g, core.DefaultOptions(), nil); err != nil {
			t.Fatal(err)
		}
		if err := qgm.Validate(g); err != nil {
			t.Fatalf("invalid graph after decorrelation: %v", err)
		}
	}
}

func TestUncorrelatedQueryUntouched(t *testing.T) {
	q, err := parser.Parse("select name from dept where budget < 10000")
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.Bind(q, tpcd.EmpDept().Catalog)
	if err != nil {
		t.Fatal(err)
	}
	before := len(qgm.Boxes(g.Root))
	if err := core.Decorrelate(g, core.DefaultOptions(), nil); err != nil {
		t.Fatal(err)
	}
	if got := len(qgm.Boxes(g.Root)); got != before {
		t.Errorf("uncorrelated query rewritten: %d -> %d boxes", before, got)
	}
}
