// Package core implements magic decorrelation — the paper's contribution —
// as a rewrite over the Query Graph Model. The algorithm processes boxes
// top-down; at each SELECT box it runs the FEED stage for every child
// subtree correlated to it (collecting the computation ahead of the
// subquery into a supplementary table, projecting the distinct correlation
// bindings into a magic table) and the ABSORB stage inside the child
// (pushing the magic table down through GROUP BY and UNION boxes to the
// SPJ boxes that hold the correlated predicates). COUNT-bug compensation
// introduces a left outer join with COALESCE, exactly as in §2.1/§4.3.
//
// The implementation fuses the paper's CI-box merge (performed in
// Starburst by pre-existing rewrite rules) into the FEED stage: the
// correlated predicate that would live in a Correlated Input box is
// emitted directly as an equi-join predicate in the parent. The DCO box
// similarly disappears once the child absorbs the magic table; the
// intermediate states are still observable through the Trace.
package core

import (
	"decorr/internal/qgm"
	"decorr/internal/trace"
)

// Orderer supplies the nested-iteration join order of a select box's
// quantifiers; magic decorrelation splits the supplementary table at the
// fed subquery's position in this order (§7: "the magic decorrelation
// algorithm uses the join order of the nested iteration strategy").
type Orderer func(b *qgm.Box) []*qgm.Quantifier

// Options are the paper's §4.4 knobs: which boxes accept magic tables and
// how aggressively to decorrelate.
type Options struct {
	// DecorrelateExistential feeds magic tables to EXISTS/IN/ANY/ALL
	// subqueries too. When false they stay correlated (the paper notes
	// systems without temp-table indexes may prefer that; parallel
	// systems decidedly do not).
	DecorrelateExistential bool
	// UseOuterJoin permits the COUNT-bug compensation join. When false,
	// aggregate subqueries that would need compensation are left
	// correlated (partial decorrelation).
	UseOuterJoin bool
	// EliminateSupplementary enables the OptMag optimization: when the
	// correlation attributes form a key of the supplementary table, the
	// supplementary common subexpression is eliminated (§5.1).
	EliminateSupplementary bool
	// Order overrides the join-order oracle; nil uses declared order with
	// subqueries placed at their earliest dependency point.
	Order Orderer
	// Tracer, when non-nil, receives one instant event per decorrelation
	// step (the same titles the Trace snapshots carry).
	Tracer *trace.Tracer
}

// DefaultOptions enables full decorrelation.
func DefaultOptions() Options {
	return Options{DecorrelateExistential: true, UseOuterJoin: true}
}

// Step is one captured rewrite stage.
type Step struct {
	Title string
	Plan  string
}

// Trace records the intermediate QGM states of the rewrite, the textual
// analogue of the paper's Figures 2–4.
type Trace struct {
	Steps []Step
}

func (d *decorrelator) snap(title string) {
	if t := d.opts.Tracer; t != nil {
		t.Instant(title, "decorrelate",
			trace.Int("boxes", int64(len(qgm.Boxes(d.g.Root)))))
	}
	if d.tr == nil {
		return
	}
	d.tr.Steps = append(d.tr.Steps, Step{Title: title, Plan: qgm.Format(d.g)})
}
