package core

import (
	"fmt"

	"decorr/internal/qgm"
)

// optFeed implements the OptMag variant (§5.1): when the correlation
// attributes form a key of the supplementary table, the magic table is the
// supplementary table itself — there is no point projecting distinct
// bindings out of a relation they already identify, and the common
// subexpression (SUPP referenced both by the outer block and under the
// magic table) disappears. The decorrelated subquery carries every
// supplementary column through its grouping, so the outer block reads SUPP
// through the subquery and drops its own reference.
func (d *decorrelator) optFeed(cur *qgm.Box, q *qgm.Quantifier, qsupp *qgm.Quantifier, supp *qgm.Box, corrCols []int) error {
	child := q.Input

	refMap := map[qgm.RefKey]int{}
	for c := range supp.Cols {
		refMap[qgm.RefKey{Q: qsupp, Col: c}] = c
	}
	pos, err := d.absorb(child, supp, refMap)
	if err != nil {
		return err
	}
	_ = corrCols

	// The outer block now reads every supplementary column through the
	// absorbed child: drop the direct supplementary quantifier and
	// redirect its remaining uses.
	cur.RemoveQuant(qsupp)
	mapping := map[qgm.RefKey]qgm.Expr{}
	for c := range supp.Cols {
		mapping[qgm.RefKey{Q: qsupp, Col: c}] = qgm.Ref(q, pos[c])
	}
	// Rewrite cur's own expressions and every remaining child subtree —
	// except the fed child's, whose supplementary references were already
	// absorbed (and whose subtree now legitimately contains SUPP).
	targets := []*qgm.Box{cur}
	for _, rq := range cur.Quants {
		if rq == q {
			continue
		}
		targets = append(targets, qgm.Boxes(rq.Input)...)
	}
	for _, box := range targets {
		box.ExprSlots(func(slot *qgm.Expr) {
			*slot = qgm.Rewrite(*slot, func(e qgm.Expr) qgm.Expr {
				if r, ok := e.(*qgm.ColRef); ok {
					if repl, ok := mapping[qgm.RefKey{Q: r.Q, Col: r.Col}]; ok {
						return qgm.CloneExpr(repl)
					}
				}
				return e
			})
		})
	}
	if q.Kind == qgm.QScalar {
		q.Kind = qgm.QForEach
	}
	if supp.Label == "SUPP" {
		supp.Label = "SUPP=MAGIC"
	}
	d.snap(fmt.Sprintf("OptMag: supplementary CSE eliminated for %s (correlation attributes form a key of SUPP)", q.Name()))
	return nil
}
