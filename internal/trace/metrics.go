package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process-wide table of named counters, gauges, and latency
// histograms. Counters are monotonic (Add panics on negative deltas);
// gauges are set-to-value; histograms are log-bucketed (see Histogram).
// Instruments are created on first use and live forever, so hot paths can
// cache the *Counter (or *Histogram) and pay one atomic add per update.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Metrics is the default process-wide registry that engine, exec, and
// parallel publish into.
var Metrics = NewRegistry()

// Counter is a monotonically increasing instrument.
type Counter struct{ v atomic.Int64 }

// Add increases the counter by delta (panics if delta < 0: counters are
// monotonic; use a Gauge for values that move both ways).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("trace: negative counter delta %d", delta))
	}
	c.v.Add(delta)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value instrument.
type Gauge struct{ v atomic.Int64 }

// Set records the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the last recorded value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHistogram()
	r.hists[name] = h
	return h
}

// Histograms returns the registered histograms as (sorted name, histogram)
// pairs — iteration over them is deterministic, unlike a map range.
func (r *Registry) Histograms() []NamedHistogram {
	r.mu.RLock()
	out := make([]NamedHistogram, 0, len(r.hists))
	for name, h := range r.hists {
		out = append(out, NamedHistogram{Name: name, Hist: h})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedHistogram pairs a histogram with its registry name.
type NamedHistogram struct {
	Name string
	Hist *Histogram
}

// Snapshot is a point-in-time copy of every instrument's value.
type Snapshot map[string]int64

// Snapshot captures all instruments. Counter, gauge, and histogram names
// share one namespace in the snapshot; gauges carry a "gauge:" prefix so a
// diff never subtracts a last-value instrument, and histograms appear as
// their (monotonic) observation count under a "hist:" prefix.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := make(Snapshot, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		s[name] = c.Value()
	}
	for name, g := range r.gauges {
		s["gauge:"+name] = g.Value()
	}
	for name, h := range r.hists {
		s["hist:"+name] = h.Count()
	}
	return s
}

// Names returns the snapshot's instrument names sorted. A Snapshot is a
// map, so ranging over it directly is order-nondeterministic; every
// rendering path (String, the CLI's \metrics, the Prometheus exposition)
// iterates via sorted names so output is stable across runs.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Diff returns the change from earlier to s: counter and histogram-count
// entries subtract (new instruments count from zero), gauge entries keep
// their latest value. Entries whose delta is zero are omitted. The result
// is itself a Snapshot; render it with String (or iterate Names) for
// deterministic order.
func (s Snapshot) Diff(earlier Snapshot) Snapshot {
	out := Snapshot{}
	for name, v := range s {
		if strings.HasPrefix(name, "gauge:") {
			if v != earlier[name] {
				out[name] = v
			}
			continue
		}
		if d := v - earlier[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

// String renders the snapshot as sorted "name=value" lines.
func (s Snapshot) String() string {
	var sb strings.Builder
	for _, name := range s.Names() {
		fmt.Fprintf(&sb, "%s=%d\n", name, s[name])
	}
	return sb.String()
}
