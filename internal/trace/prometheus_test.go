package trace

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.executions").Add(3)
	r.Gauge("exec.last_work").Set(42)
	h := r.Histogram("stage.exec")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, w := range []string{
		"# TYPE decorr_engine_executions counter",
		"decorr_engine_executions 3",
		"# TYPE decorr_exec_last_work gauge",
		"decorr_exec_last_work 42",
		"# TYPE decorr_stage_exec_ns summary",
		`decorr_stage_exec_ns{quantile="0.5"}`,
		`decorr_stage_exec_ns{quantile="0.95"}`,
		`decorr_stage_exec_ns{quantile="0.99"}`,
		"decorr_stage_exec_ns_count 100",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q:\n%s", w, out)
		}
	}
	// Byte-stable across scrapes of an unchanged registry.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Errorf("exposition unstable across scrapes")
	}
}

// Strict pin of the text exposition format (version 0.0.4): every line a
// scraper sees must be a well-formed TYPE comment or sample. The test
// parses the whole document with the grammar's own rules — legal metric
// names, float-parseable values, one TYPE per family with its samples
// immediately following, summaries emitting exactly three quantiles plus
// _sum and _count — over a registry exercising the edge cases: an empty
// histogram, a zero counter, a negative gauge, and names needing
// sanitization.
func TestWritePrometheusGrammar(t *testing.T) {
	var (
		typeRe = regexp.MustCompile(
			`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary)$`)
		sampleRe = regexp.MustCompile(
			`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{quantile="(0\.5|0\.95|0\.99)"\})? (\S+)$`)
	)

	r := NewRegistry()
	r.Counter("engine.executions").Add(3)
	r.Counter("zero-touch counter") // registered, never incremented
	r.Gauge("exec.inflight").Set(-7)
	h := r.Histogram("stage.exec")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1_000_000) // values big enough to tempt %g into exponents
	}
	r.Histogram("empty.hist") // registered, never observed

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition does not end in a newline")
	}

	type family struct {
		kind    string
		samples int
	}
	families := map[string]*family{}
	var cur string // family the most recent TYPE line opened
	var lastFam string
	for i, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if m := typeRe.FindStringSubmatch(line); m != nil {
			name, kind := m[1], m[2]
			if _, dup := families[name]; dup {
				t.Fatalf("line %d: family %q declared twice", i+1, name)
			}
			if name <= lastFam {
				t.Fatalf("line %d: family %q out of sorted order (after %q)", i+1, name, lastFam)
			}
			families[name] = &family{kind: kind}
			cur, lastFam = name, name
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: %q is neither a TYPE comment nor a sample", i+1, line)
		}
		name, quantile, value := m[1], m[2], m[3]
		if value != "NaN" && value != "+Inf" && value != "-Inf" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Fatalf("line %d: sample value %q does not parse: %v", i+1, value, err)
			}
		}
		fam := families[cur]
		if fam == nil {
			t.Fatalf("line %d: sample %q before any TYPE comment", i+1, line)
		}
		switch {
		case name == cur:
			if fam.kind == "summary" && quantile == "" {
				t.Fatalf("line %d: bare summary sample %q without quantile label", i+1, line)
			}
			if fam.kind != "summary" && quantile != "" {
				t.Fatalf("line %d: %s sample %q has a quantile label", i+1, fam.kind, line)
			}
		case fam.kind == "summary" && (name == cur+"_sum" || name == cur+"_count"):
			if quantile != "" {
				t.Fatalf("line %d: %q carries a quantile label", i+1, line)
			}
		default:
			t.Fatalf("line %d: sample %q does not belong to family %q", i+1, name, cur)
		}
		fam.samples++
	}

	want := map[string]struct {
		kind    string
		samples int
	}{
		"decorr_engine_executions":  {"counter", 1},
		"decorr_zero_touch_counter": {"counter", 1},
		"decorr_exec_inflight":      {"gauge", 1},
		"decorr_stage_exec_ns":      {"summary", 5}, // 3 quantiles + _sum + _count
		"decorr_empty_hist_ns":      {"summary", 5},
	}
	for name, w := range want {
		fam := families[name]
		if fam == nil {
			t.Errorf("family %q missing from exposition:\n%s", name, out)
			continue
		}
		if fam.kind != w.kind || fam.samples != w.samples {
			t.Errorf("family %q: kind=%s samples=%d, want kind=%s samples=%d",
				name, fam.kind, fam.samples, w.kind, w.samples)
		}
	}
	if len(families) != len(want) {
		t.Errorf("exposition has %d families, want %d:\n%s", len(families), len(want), out)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"engine.executions":     "decorr_engine_executions",
		"exec.strategy.OptMag":  "decorr_exec_strategy_OptMag",
		"plancache.get-hit":     "decorr_plancache_get_hit",
		"weird name/with=chars": "decorr_weird_name_with_chars",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
