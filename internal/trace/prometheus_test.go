package trace

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.executions").Add(3)
	r.Gauge("exec.last_work").Set(42)
	h := r.Histogram("stage.exec")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, w := range []string{
		"# TYPE decorr_engine_executions counter",
		"decorr_engine_executions 3",
		"# TYPE decorr_exec_last_work gauge",
		"decorr_exec_last_work 42",
		"# TYPE decorr_stage_exec_ns summary",
		`decorr_stage_exec_ns{quantile="0.5"}`,
		`decorr_stage_exec_ns{quantile="0.95"}`,
		`decorr_stage_exec_ns{quantile="0.99"}`,
		"decorr_stage_exec_ns_count 100",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q:\n%s", w, out)
		}
	}
	// Byte-stable across scrapes of an unchanged registry.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Errorf("exposition unstable across scrapes")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"engine.executions":     "decorr_engine_executions",
		"exec.strategy.OptMag":  "decorr_exec_strategy_OptMag",
		"plancache.get-hit":     "decorr_plancache_get_hit",
		"weird name/with=chars": "decorr_weird_name_with_chars",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
