package trace

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func emitN(s Sink, n int) {
	tr := New(s)
	for i := 0; i < n; i++ {
		tr.Begin("ev", "test", Int("i", int64(i))).End()
	}
}

func TestRingSinkWraps(t *testing.T) {
	ring := NewRingSink(4)
	emitN(ring, 10)
	evs := ring.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// The four newest survive, in begin order.
	for i, ev := range evs {
		if want := int64(6 + i + 1); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
	ring.Reset()
	if len(ring.Events()) != 0 {
		t.Error("Reset left events behind")
	}
}

func TestJSONLSink(t *testing.T) {
	var sb strings.Builder
	emitN(NewJSONLSink(&sb), 3)
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	lines := 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		if obj["name"] != "ev" || obj["ph"] != "X" {
			t.Errorf("line %d = %v", lines, obj)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("got %d JSONL lines, want 3", lines)
	}
}

func TestChromeSinkProducesValidTrace(t *testing.T) {
	var sb strings.Builder
	sink := NewChromeSink(&sb)
	tr := New(sink)
	sp := tr.Begin("parse", "prepare")
	tr.Instant("fired", "rewrite", Str("rule", "merge-spj"))
	sp.End()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d traceEvents, want 2", len(doc.TraceEvents))
	}
	// Seq order: the span began before the instant, even though it was
	// emitted after.
	if doc.TraceEvents[0].Name != "parse" || doc.TraceEvents[0].Phase != "X" {
		t.Errorf("first event = %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].Phase != "i" || doc.TraceEvents[1].Args["rule"] != "merge-spj" {
		t.Errorf("second event = %+v", doc.TraceEvents[1])
	}
	for _, ev := range doc.TraceEvents {
		if ev.PID != 1 {
			t.Errorf("event %q pid = %d, want 1", ev.Name, ev.PID)
		}
	}
}
