package trace

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestHistogramQuantileErrorBounds checks the estimated quantiles against
// exact order statistics of the recorded samples: log-linear buckets with
// 16 sub-buckets per power of two bound the relative error at 1/16, and
// interpolation keeps it well under that in practice. Assert <= 6.25%.
func TestHistogramQuantileErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dist := range []struct {
		name string
		draw func() int64
	}{
		{"uniform", func() int64 { return rng.Int63n(1_000_000) }},
		{"lognormal", func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 10)) }},
		{"heavy-tail", func() int64 {
			if rng.Intn(100) == 0 {
				return rng.Int63n(1 << 40)
			}
			return rng.Int63n(1000)
		}},
	} {
		t.Run(dist.name, func(t *testing.T) {
			h := NewHistogram()
			samples := make([]int64, 20000)
			for i := range samples {
				v := dist.draw()
				samples[i] = v
				h.Observe(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
				exact := float64(samples[int(q*float64(len(samples)-1))])
				got := h.Quantile(q)
				relErr := math.Abs(got-exact) / math.Max(exact, 1)
				if relErr > 1.0/16 {
					t.Errorf("q%.2f: got %.0f want %.0f (rel err %.4f > 1/16)", q, got, exact, relErr)
				}
			}
			if h.Count() != int64(len(samples)) {
				t.Errorf("count = %d, want %d", h.Count(), len(samples))
			}
			if h.Min() != samples[0] || h.Max() != samples[len(samples)-1] {
				t.Errorf("min/max = %d/%d, want %d/%d", h.Min(), h.Max(), samples[0], samples[len(samples)-1])
			}
		})
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Errorf("empty histogram should report zeros")
	}
	h.Observe(-5) // clamps to 0
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Errorf("negative observation should clamp to 0: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many goroutines
// under -race; totals must be exact because recording is atomic.
func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	// Concurrent readers must be safe too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			_ = h.Quantile(0.99)
			_ = h.Snapshot()
		}
	}()
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Errorf("count = %d, want %d", h.Count(), workers*perWorker)
	}
}

// TestHistogramMergeAssociativity: merge(a, merge(b, c)) must equal
// merge(merge(a, b), c) in every bucket and summary field.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	build := func() *Histogram {
		h := NewHistogram()
		for i := 0; i < 1000; i++ {
			h.Observe(rng.Int63n(1 << uint(10+rng.Intn(20))))
		}
		return h
	}
	clone := func(h *Histogram) *Histogram {
		c := NewHistogram()
		c.Merge(h)
		return c
	}
	a, b, c := build(), build(), build()

	lab := clone(a)
	lab.Merge(b)
	lab.Merge(c) // (a+b)+c

	bc := clone(b)
	bc.Merge(c)
	rab := clone(a)
	rab.Merge(bc) // a+(b+c)

	if lab.Count() != rab.Count() || lab.Sum() != rab.Sum() ||
		lab.Min() != rab.Min() || lab.Max() != rab.Max() {
		t.Fatalf("merge summaries differ: %+v vs %+v", lab.Snapshot(), rab.Snapshot())
	}
	for i := 0; i < numBuckets; i++ {
		if lab.buckets[i].Load() != rab.buckets[i].Load() {
			t.Fatalf("bucket %d differs: %d vs %d", i, lab.buckets[i].Load(), rab.buckets[i].Load())
		}
	}
	// Merging an empty histogram is the identity.
	before := lab.Snapshot()
	lab.Merge(NewHistogram())
	lab.Merge(nil)
	if lab.Snapshot() != before {
		t.Errorf("merging empty/nil changed the histogram")
	}
}

func TestRegistryHistograms(t *testing.T) {
	r := NewRegistry()
	r.Histogram("b.lat").Observe(10)
	r.Histogram("a.lat").Observe(20)
	r.Histogram("a.lat").Observe(30)
	hs := r.Histograms()
	if len(hs) != 2 || hs[0].Name != "a.lat" || hs[1].Name != "b.lat" {
		t.Fatalf("Histograms() not sorted: %+v", hs)
	}
	if hs[0].Hist.Count() != 2 {
		t.Errorf("a.lat count = %d, want 2", hs[0].Hist.Count())
	}
	// Histograms appear in snapshots as "hist:<name>" observation counts
	// and diff like counters.
	before := r.Snapshot()
	r.Histogram("a.lat").Observe(40)
	d := r.Snapshot().Diff(before)
	if d["hist:a.lat"] != 1 {
		t.Errorf("hist diff = %v, want hist:a.lat=1", d)
	}
	if _, ok := d["hist:b.lat"]; ok {
		t.Errorf("unchanged histogram should be absent from diff: %v", d)
	}
}

func TestSnapshotNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Inc()
	r.Counter("a").Inc()
	r.Gauge("m").Set(1)
	r.Histogram("k").Observe(1)
	s := r.Snapshot()
	names := s.Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	// String must render in the same sorted order every time.
	first := s.String()
	for i := 0; i < 10; i++ {
		if got := s.String(); got != first {
			t.Fatalf("String() unstable:\n%s\nvs\n%s", first, got)
		}
	}
	if !strings.Contains(first, "hist:k=1") || !strings.Contains(first, "gauge:m=1") {
		t.Errorf("snapshot missing instruments:\n%s", first)
	}
}
