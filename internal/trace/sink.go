package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sink receives finished events. Spans arrive when they End, so arrival
// order is completion order; sort by Seq to recover begin order. Emit is
// called under the tracer's lock — implementations need no extra locking
// when used through a Tracer.
type Sink interface {
	Emit(ev Event)
	// Flush finalizes any buffered output (a no-op for in-memory sinks).
	Flush() error
}

// RingSink keeps the most recent events in memory — the REPL's \trace
// view and the golden tests use it.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	wrap  bool
	limit int
}

// NewRingSink creates a ring holding at most limit events (a non-positive
// limit defaults to 4096).
func NewRingSink(limit int) *RingSink {
	if limit <= 0 {
		limit = 4096
	}
	return &RingSink{buf: make([]Event, 0, min(limit, 64)), limit: limit}
}

// Emit implements Sink.
func (r *RingSink) Emit(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < r.limit {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % r.limit
	r.wrap = true
}

// Flush implements Sink.
func (r *RingSink) Flush() error { return nil }

// Events returns the retained events sorted by Seq (begin order).
func (r *RingSink) Events() []Event {
	r.mu.Lock()
	out := make([]Event, 0, len(r.buf))
	if r.wrap {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset drops all retained events.
func (r *RingSink) Reset() {
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.next = 0
	r.wrap = false
	r.mu.Unlock()
}

// JSONLSink streams one JSON object per event to w as events finish.
type JSONLSink struct {
	enc *json.Encoder
}

// NewJSONLSink creates a JSONL sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

type jsonlEvent struct {
	Seq     int64          `json:"seq"`
	Name    string         `json:"name"`
	Cat     string         `json:"cat"`
	Phase   string         `json:"ph"`
	StartUs float64        `json:"ts"`
	DurUs   float64        `json:"dur,omitempty"`
	Depth   int            `json:"depth"`
	Args    map[string]any `json:"args,omitempty"`
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	_ = s.enc.Encode(jsonlEvent{
		Seq:     ev.Seq,
		Name:    ev.Name,
		Cat:     ev.Cat,
		Phase:   string(rune(ev.Phase)),
		StartUs: micros(ev.Start),
		DurUs:   micros(ev.Dur),
		Depth:   ev.Depth,
		Args:    argsMap(ev.Args),
	})
}

// Flush implements Sink.
func (s *JSONLSink) Flush() error { return nil }

// ChromeSink accumulates events and writes a Chrome trace-event JSON
// document on Flush; open the file in chrome://tracing or Perfetto.
type ChromeSink struct {
	mu  sync.Mutex
	w   io.Writer
	evs []Event
}

// NewChromeSink creates a Chrome trace-event sink over w.
func NewChromeSink(w io.Writer) *ChromeSink { return &ChromeSink{w: w} }

// Emit implements Sink.
func (s *ChromeSink) Emit(ev Event) {
	s.mu.Lock()
	s.evs = append(s.evs, ev)
	s.mu.Unlock()
}

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Flush implements Sink, writing the whole trace document.
func (s *ChromeSink) Flush() error {
	s.mu.Lock()
	evs := append([]Event(nil), s.evs...)
	s.mu.Unlock()
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(evs)), DisplayTimeUnit: "ms"}
	for _, ev := range evs {
		ce := chromeEvent{
			Name:  ev.Name,
			Cat:   ev.Cat,
			Phase: string(rune(ev.Phase)),
			TS:    micros(ev.Start),
			PID:   1,
			TID:   1,
			Args:  argsMap(ev.Args),
		}
		if ev.Phase == PhaseSpan {
			ce.Dur = micros(ev.Dur)
		} else {
			ce.Scope = "t"
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	enc := json.NewEncoder(s.w)
	return enc.Encode(doc)
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func argsMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// FormatEvents renders events as a depth-indented tree in begin order.
// With timing=false the output is deterministic for a deterministic
// pipeline (names, categories, nesting, and annotations only), which is
// what the golden-file tests pin down.
func FormatEvents(evs []Event, timing bool) string {
	sorted := append([]Event(nil), evs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	var sb strings.Builder
	for _, ev := range sorted {
		sb.WriteString(strings.Repeat("  ", ev.Depth))
		if ev.Phase == PhaseInstant {
			sb.WriteString("* ")
		}
		fmt.Fprintf(&sb, "[%s] %s", ev.Cat, ev.Name)
		for _, a := range ev.Args {
			fmt.Fprintf(&sb, " %s=%v", a.Key, a.Value)
		}
		if timing && ev.Phase == PhaseSpan {
			fmt.Fprintf(&sb, " (%s)", ev.Dur.Round(time.Microsecond))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
