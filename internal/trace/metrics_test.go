package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("exec.rows_scanned")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	if r.Counter("exec.rows_scanned") != c {
		t.Error("Counter is not idempotent per name")
	}
	g := r.Gauge("parallel.nodes")
	g.Set(8)
	g.Set(4)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestCounterRejectsNegativeDelta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c").Add(-1)
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(10)
	r.Gauge("g").Set(5)
	before := r.Snapshot()
	r.Counter("a").Add(7)
	r.Counter("b").Add(3) // created after the first snapshot
	r.Gauge("g").Set(9)
	diff := r.Snapshot().Diff(before)
	if diff["a"] != 7 || diff["b"] != 3 || diff["gauge:g"] != 9 {
		t.Errorf("diff = %v", diff)
	}
	// An unchanged registry diffs to empty.
	if d := r.Snapshot().Diff(r.Snapshot()); len(d) != 0 {
		t.Errorf("no-op diff = %v", d)
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	got := r.Snapshot().String()
	if got != "a=1\nb=2\n" {
		t.Errorf("String = %q", got)
	}
	if strings.Contains(got, "gauge:") {
		t.Errorf("unexpected gauge entries: %q", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Gauge("last").Set(int64(j))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("shared").Value(); v != 8000 {
		t.Errorf("shared = %d, want 8000", v)
	}
}
