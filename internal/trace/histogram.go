package trace

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a lock-free log-bucketed latency histogram. Recording is one
// atomic add into a fixed bucket array (plus min/max CAS loops that almost
// always succeed on the first try), so hot paths — plan-cache lookups,
// per-statement stage timings — can record without contention. Buckets are
// log-linear: exact below 16, then 16 sub-buckets per power of two, which
// bounds the relative quantile error at 1/16 (6.25%) before interpolation.
//
// Histograms are mergeable (bucket-wise addition), which makes Merge
// associative and commutative — per-shard or per-worker histograms can fold
// into one without losing quantile fidelity.
//
// Values are int64 and unit-agnostic; the engine records nanoseconds.
// Negative observations clamp to zero (durations are never negative; the
// clamp keeps a clock hiccup from corrupting the bucket index).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// subBucketBits fixes the log-linear resolution: 2^4 = 16 sub-buckets per
// power of two.
const subBucketBits = 4

const subBuckets = 1 << subBucketBits // 16

// numBuckets covers every int64: exact buckets [0,16) plus 16 sub-buckets
// for each of the 59 exponent ranges [2^(4+k), 2^(5+k)).
const numBuckets = subBuckets + (63-subBucketBits)*subBuckets

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u) // exact small values
	}
	// Shift u down into [subBuckets, 2*subBuckets); the shift count is the
	// exponent range, the shifted value the sub-bucket.
	exp := bits.Len64(u) - subBucketBits - 1
	mant := u >> uint(exp) // in [subBuckets, 2*subBuckets)
	return exp*subBuckets + int(mant)
}

// bucketBounds returns the inclusive low and exclusive high value covered
// by bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < subBuckets {
		return int64(i), int64(i) + 1
	}
	exp := i/subBuckets - 1
	mant := int64(i - exp*subBuckets)
	return mant << uint(exp), (mant + 1) << uint(exp)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile estimates the q-th quantile (q in [0, 1]). The estimate lands in
// the bucket containing the true quantile and interpolates linearly within
// it, so the relative error is bounded by the bucket width: at most 1/16 of
// the value. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n-1)
	var cum float64
	for i := 0; i < numBuckets; i++ {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if cum+c > rank {
			lo, hi := bucketBounds(i)
			// Interpolate the rank's position within this bucket, clamped
			// to the recorded extremes so a single-bucket histogram reports
			// values the data actually contains.
			frac := (rank - cum) / c
			v := float64(lo) + frac*float64(hi-lo)
			if mn := float64(h.Min()); v < mn {
				v = mn
			}
			if mx := float64(h.Max()); v > mx {
				v = mx
			}
			return v
		}
		cum += c
	}
	return float64(h.Max())
}

// Merge folds o into h bucket-wise. Merging is associative and commutative,
// so shard- or worker-local histograms can combine in any order.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := 0; i < numBuckets; i++ {
		if c := o.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
	n := o.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(o.sum.Load())
	for v := o.min.Load(); ; {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for v := o.max.Load(); ; {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time summary of one histogram.
type HistogramSnapshot struct {
	Count, Sum, Min, Max int64
	P50, P95, P99        float64
}

// Snapshot summarizes the histogram. Concurrent Observe calls may land
// between the field reads; each field is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}
