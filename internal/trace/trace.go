// Package trace is the engine's observability substrate: a lightweight
// span/event tracer threaded through the whole pipeline (parse → semant →
// rewrite rules → decorrelation → planning → per-box execution) plus a
// process-wide metrics registry.
//
// The tracer is designed so that a disabled tracer costs nothing on the
// execution hot path: every method is safe on a nil *Tracer (and nil
// *Span), so call sites guard with a single pointer comparison and perform
// no allocations when tracing is off.
//
// Events flow into a pluggable Sink; three implementations ship with the
// package: an in-memory ring buffer (REPL \trace, tests), a JSONL stream,
// and Chrome trace-event format, which chrome://tracing and Perfetto load
// directly.
package trace

import (
	"sync"
	"time"
)

// Attr is one key/value annotation on an event.
type Attr struct {
	Key   string
	Value any
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Phase distinguishes event kinds, mirroring the Chrome trace-event "ph"
// field.
type Phase byte

const (
	// PhaseSpan is a complete span with a start offset and duration.
	PhaseSpan Phase = 'X'
	// PhaseInstant is a point-in-time event.
	PhaseInstant Phase = 'i'
)

// Event is one finished trace record.
type Event struct {
	// Seq orders events by when they *began* (deterministic across runs
	// for a deterministic pipeline, unlike wall-clock offsets).
	Seq int64
	// Name labels the event; Cat groups it by pipeline stage ("prepare",
	// "rewrite", "decorrelate", "exec", ...).
	Name string
	Cat  string
	// Phase is PhaseSpan or PhaseInstant.
	Phase Phase
	// Start is the offset from the tracer's epoch; Dur the span length
	// (zero for instants).
	Start time.Duration
	Dur   time.Duration
	// Depth is the span-nesting depth at which the event began.
	Depth int
	// Args are the event's annotations, in the order they were added.
	Args []Attr
}

// Tracer collects spans and events into a Sink. The zero of *Tracer (nil)
// is a valid, disabled tracer: all methods no-op.
type Tracer struct {
	mu    sync.Mutex
	sink  Sink
	epoch time.Time
	seq   int64
	depth int
}

// New creates a tracer emitting into sink.
func New(sink Sink) *Tracer {
	return &Tracer{sink: sink, epoch: time.Now()}
}

// Enabled reports whether the tracer collects anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Begin opens a span. It returns nil (still safe to End) on a nil tracer.
func (t *Tracer) Begin(name, cat string, args ...Attr) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	t.seq++
	sp := &Span{
		t: t,
		ev: Event{
			Seq:   t.seq,
			Name:  name,
			Cat:   cat,
			Phase: PhaseSpan,
			Start: now.Sub(t.epoch),
			Depth: t.depth,
			Args:  args,
		},
		start: now,
	}
	t.depth++
	t.mu.Unlock()
	return sp
}

// Instant records a point event at the current nesting depth.
func (t *Tracer) Instant(name, cat string, args ...Attr) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.seq++
	ev := Event{
		Seq:   t.seq,
		Name:  name,
		Cat:   cat,
		Phase: PhaseInstant,
		Start: now.Sub(t.epoch),
		Depth: t.depth,
		Args:  args,
	}
	if t.sink != nil {
		t.sink.Emit(ev)
	}
	t.mu.Unlock()
}

// Span is an open interval; close it with End. A nil *Span (from a nil
// tracer) ignores all calls.
type Span struct {
	t     *Tracer
	ev    Event
	start time.Time
	done  bool
}

// Attrs appends annotations to the span before it ends.
func (s *Span) Attrs(args ...Attr) {
	if s == nil {
		return
	}
	s.ev.Args = append(s.ev.Args, args...)
}

// End closes the span, appending any final annotations, and emits it.
// Calling End twice emits once.
func (s *Span) End(args ...Attr) {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.ev.Dur = time.Since(s.start)
	s.ev.Args = append(s.ev.Args, args...)
	t := s.t
	t.mu.Lock()
	t.depth--
	if t.depth < 0 {
		t.depth = 0
	}
	if t.sink != nil {
		t.sink.Emit(s.ev)
	}
	t.mu.Unlock()
}
