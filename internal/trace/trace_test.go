package trace

import (
	"strings"
	"testing"
)

func TestSpanNestingAndOrder(t *testing.T) {
	ring := NewRingSink(0)
	tr := New(ring)
	outer := tr.Begin("outer", "test")
	inner := tr.Begin("inner", "test", Str("k", "v"))
	tr.Instant("mark", "test")
	inner.End(Int("rows", 3))
	outer.End()

	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Seq order is begin order: outer, inner, mark.
	if evs[0].Name != "outer" || evs[1].Name != "inner" || evs[2].Name != "mark" {
		t.Fatalf("wrong order: %q %q %q", evs[0].Name, evs[1].Name, evs[2].Name)
	}
	if evs[0].Depth != 0 || evs[1].Depth != 1 || evs[2].Depth != 2 {
		t.Errorf("depths = %d %d %d, want 0 1 2", evs[0].Depth, evs[1].Depth, evs[2].Depth)
	}
	if evs[2].Phase != PhaseInstant {
		t.Errorf("mark phase = %c, want i", evs[2].Phase)
	}
	var keys []string
	for _, a := range evs[1].Args {
		keys = append(keys, a.Key)
	}
	if strings.Join(keys, ",") != "k,rows" {
		t.Errorf("inner args = %v", keys)
	}
}

func TestDoubleEndEmitsOnce(t *testing.T) {
	ring := NewRingSink(0)
	tr := New(ring)
	sp := tr.Begin("once", "test")
	sp.End()
	sp.End()
	if n := len(ring.Events()); n != 1 {
		t.Fatalf("double End emitted %d events, want 1", n)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin("x", "y")
	sp.Attrs(Str("a", "b"))
	sp.End()
	tr.Instant("x", "y")
}

// The disabled tracer must cost nothing on the execution hot path: a
// plain nil check plus no allocations.
func TestNilTracerNoAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		if tr != nil {
			sp := tr.Begin("box", "exec")
			sp.End()
		}
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f per op, want 0", allocs)
	}
}

func TestFormatEvents(t *testing.T) {
	ring := NewRingSink(0)
	tr := New(ring)
	outer := tr.Begin("prepare", "engine", Str("strategy", "Mag"))
	inner := tr.Begin("parse", "prepare")
	inner.End()
	outer.End()
	got := FormatEvents(ring.Events(), false)
	want := "[engine] prepare strategy=Mag\n  [prepare] parse\n"
	if got != want {
		t.Errorf("FormatEvents = %q, want %q", got, want)
	}
	timed := FormatEvents(ring.Events(), true)
	if !strings.Contains(timed, "(") {
		t.Errorf("timed rendering lacks durations: %q", timed)
	}
}

// TestTracerConcurrentEmission hammers one tracer (and its ring sink) from
// many goroutines. The span *tree* is only meaningful for single-threaded
// emitters — here we assert race-freedom and that no event is lost, which
// is the contract the metrics/trace publication paths rely on when the
// parallel executor reports per-Run results.
func TestTracerConcurrentEmission(t *testing.T) {
	ring := NewRingSink(0)
	tr := New(ring)
	const workers, perWorker = 8, 200
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < perWorker; i++ {
				sp := tr.Begin("work", "test", Int("i", int64(i)))
				tr.Instant("tick", "test")
				sp.End()
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	evs := ring.Events()
	if len(evs) != workers*perWorker*2 {
		t.Fatalf("got %d events, want %d", len(evs), workers*perWorker*2)
	}
	seen := map[int64]bool{}
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}
