package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders every instrument in the registry in Prometheus
// text exposition format (version 0.0.4), suitable for a /metrics scrape
// endpoint. Counters and gauges emit as their kinds; histograms emit as
// summaries with p50/p95/p99 quantiles plus _sum and _count series.
//
// Names are sanitized to the Prometheus grammar ([a-zA-Z0-9_:], '.' and
// '-' become '_') and prefixed with "decorr_". Histogram values are in the
// unit they were recorded in — the engine records nanoseconds — so the
// duration summaries carry a "_ns" suffix to make the unit explicit.
// Output is sorted by metric name, so scrapes are byte-stable for a fixed
// registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	type inst struct {
		name string
		kind string // "counter" | "gauge" | "summary"
		c    *Counter
		g    *Gauge
		h    *Histogram
	}
	insts := make([]inst, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		insts = append(insts, inst{name: promName(name), kind: "counter", c: c})
	}
	for name, g := range r.gauges {
		insts = append(insts, inst{name: promName(name), kind: "gauge", g: g})
	}
	for name, h := range r.hists {
		insts = append(insts, inst{name: promName(name) + "_ns", kind: "summary", h: h})
	}
	r.mu.RUnlock()
	sort.Slice(insts, func(i, j int) bool { return insts[i].name < insts[j].name })
	for _, in := range insts {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", in.name, in.kind); err != nil {
			return err
		}
		var err error
		switch in.kind {
		case "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", in.name, in.c.Value())
		case "gauge":
			_, err = fmt.Fprintf(w, "%s %d\n", in.name, in.g.Value())
		case "summary":
			s := in.h.Snapshot()
			_, err = fmt.Fprintf(w,
				"%s{quantile=\"0.5\"} %g\n%s{quantile=\"0.95\"} %g\n%s{quantile=\"0.99\"} %g\n%s_sum %d\n%s_count %d\n",
				in.name, s.P50, in.name, s.P95, in.name, s.P99, in.name, s.Sum, in.name, s.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry instrument name to a legal Prometheus metric
// name: the "decorr_" namespace prefix plus the name with every character
// outside [a-zA-Z0-9_:] replaced by '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len("decorr_") + len(name))
	b.WriteString("decorr_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
