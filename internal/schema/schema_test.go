package schema

import "testing"

func TestColIndexCaseInsensitive(t *testing.T) {
	tbl := NewTable("T", Column{Name: "Alpha", Type: TInt}, Column{Name: "beta", Type: TString})
	if tbl.Name != "t" {
		t.Errorf("table name = %q", tbl.Name)
	}
	if tbl.ColIndex("ALPHA") != 0 || tbl.ColIndex("Beta") != 1 {
		t.Error("case-insensitive lookup broken")
	}
	if tbl.ColIndex("gamma") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestKeys(t *testing.T) {
	tbl := NewTable("ps",
		Column{Name: "pk", Type: TInt},
		Column{Name: "sk", Type: TInt},
		Column{Name: "cost", Type: TFloat})
	tbl.AddKey("pk", "sk")
	if !tbl.HasKeyWithin(map[int]bool{0: true, 1: true, 2: true}) {
		t.Error("full column set contains the key")
	}
	if tbl.HasKeyWithin(map[int]bool{0: true}) {
		t.Error("pk alone is not the declared key")
	}
	if tbl.HasKeyWithin(nil) {
		t.Error("empty set has no key")
	}
	defer func() {
		if recover() == nil {
			t.Error("AddKey with unknown column must panic")
		}
	}()
	tbl.AddKey("ghost")
}

func TestCatalogOrderAndReplace(t *testing.T) {
	c := NewCatalog()
	c.Add(NewTable("b", Column{Name: "x", Type: TInt}))
	c.Add(NewTable("a", Column{Name: "y", Type: TInt}))
	replacement := NewTable("b", Column{Name: "z", Type: TInt})
	c.Add(replacement)
	tables := c.Tables()
	if len(tables) != 2 || tables[0].Name != "b" || tables[1].Name != "a" {
		t.Fatalf("tables = %v", tables)
	}
	if c.Lookup("B") != replacement {
		t.Error("replacement not effective / lookup not case-insensitive")
	}
}

func TestTypeKinds(t *testing.T) {
	for _, typ := range []Type{TInt, TFloat, TString, TBool} {
		if typ.String() == "" || typ.Kind().String() == "" {
			t.Errorf("type %v has no name", typ)
		}
	}
}
