// Package schema defines the logical catalog: table definitions, column
// types, and declared candidate keys. Keys matter to two algorithms in this
// repository: Dayal's method groups the merged query by a key of the outer
// relations, and optimized magic decorrelation (OptMag) eliminates the
// supplementary common subexpression when the correlation attributes form a
// key of the supplementary table.
package schema

import (
	"fmt"
	"strings"

	"decorr/internal/sqltypes"
)

// Type is a column's declared type.
type Type uint8

const (
	// TInt is a 64-bit integer column.
	TInt Type = iota
	// TFloat is a double-precision column.
	TFloat
	// TString is a varchar column.
	TString
	// TBool is a boolean column.
	TBool
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INTEGER"
	case TFloat:
		return "DOUBLE"
	case TString:
		return "VARCHAR"
	case TBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Kind maps a schema type to its runtime value kind.
func (t Type) Kind() sqltypes.Kind {
	switch t {
	case TInt:
		return sqltypes.KindInt
	case TFloat:
		return sqltypes.KindFloat
	case TString:
		return sqltypes.KindString
	case TBool:
		return sqltypes.KindBool
	}
	return sqltypes.KindNull
}

// Column is one column of a table.
type Column struct {
	Name string
	Type Type
}

// Table is a table definition. Keys holds candidate keys, each a set of
// column ordinals; Keys[0], when present, is the primary key.
type Table struct {
	Name    string
	Columns []Column
	Keys    [][]int
}

// NewTable builds a table definition. Column names are case-insensitive
// (stored lower-cased, looked up lower-cased).
func NewTable(name string, cols ...Column) *Table {
	t := &Table{Name: strings.ToLower(name)}
	for _, c := range cols {
		t.Columns = append(t.Columns, Column{Name: strings.ToLower(c.Name), Type: c.Type})
	}
	return t
}

// AddKey declares a candidate key by column names. It panics on unknown
// columns: keys are declared by the data generator, not by user input.
func (t *Table) AddKey(cols ...string) *Table {
	var key []int
	for _, c := range cols {
		i := t.ColIndex(c)
		if i < 0 {
			panic(fmt.Sprintf("schema: key column %q not in table %q", c, t.Name))
		}
		key = append(key, i)
	}
	t.Keys = append(t.Keys, key)
	return t
}

// ColIndex returns the ordinal of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	name = strings.ToLower(name)
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// HasKeyWithin reports whether some declared candidate key of t is fully
// contained in the given set of column ordinals.
func (t *Table) HasKeyWithin(cols map[int]bool) bool {
	for _, key := range t.Keys {
		all := true
		for _, k := range key {
			if !cols[k] {
				all = false
				break
			}
		}
		if all && len(key) > 0 {
			return true
		}
	}
	return false
}

// Catalog is a named collection of table definitions.
type Catalog struct {
	tables map[string]*Table
	order  []string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*Table{}}
}

// Add registers a table definition; it replaces any same-named table.
func (c *Catalog) Add(t *Table) {
	key := strings.ToLower(t.Name)
	if _, ok := c.tables[key]; !ok {
		c.order = append(c.order, key)
	}
	c.tables[key] = t
}

// Lookup returns the named table definition, or nil.
func (c *Catalog) Lookup(name string) *Table {
	return c.tables[strings.ToLower(name)]
}

// Tables returns the table definitions in registration order.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.tables[n])
	}
	return out
}
