package qgm

import (
	"fmt"
	"strings"

	"decorr/internal/sqltypes"
)

// Expr is a scalar or predicate expression over quantifier columns.
type Expr interface{ qexpr() }

// ColRef references column Col of quantifier Q's input box. When Q is owned
// by an ancestor box of the expression's box, the reference is correlated.
type ColRef struct {
	Q   *Quantifier
	Col int
}

// Const is a literal value.
type Const struct{ V sqltypes.Value }

// Param is a `?` placeholder (zero-based). Its value is supplied per
// execution (exec.Options.Params), so one plan serves many bindings.
type Param struct{ Idx int }

// Op enumerates QGM expression operators.
type Op uint8

// Expression operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// String returns the SQL spelling.
func (op Op) String() string {
	return [...]string{"+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}[op]
}

// IsComparison reports whether op is a comparison operator.
func (op Op) IsComparison() bool { return op >= OpEq && op <= OpGe }

// Flip mirrors a comparison (a op b == b op.Flip() a).
func (op Op) Flip() Op {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

// Negate returns the complement of a comparison (for NOT pushing and ALL/ANY
// duality). Note: this is the two-valued complement; three-valued logic is
// handled in the evaluator.
func (op Op) Negate() Op {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return op
}

// Bin is a binary expression.
type Bin struct {
	Op   Op
	L, R Expr
}

// Not is logical negation.
type Not struct{ E Expr }

// IsNull is the IS [NOT] NULL predicate.
type IsNull struct {
	E      Expr
	Negate bool
}

// Like is the LIKE predicate.
type Like struct {
	E, Pattern Expr
	Negate     bool
}

// Func is a scalar function call (coalesce, abs).
type Func struct {
	Name string
	Args []Expr
}

// AggOp enumerates aggregate functions.
type AggOp uint8

// Aggregate functions.
const (
	AggCount AggOp = iota // COUNT(expr) — counts non-NULL; AggCountStar counts rows
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL name.
func (a AggOp) String() string {
	return [...]string{"COUNT", "COUNT(*)", "SUM", "AVG", "MIN", "MAX"}[a]
}

// NeverNullOnEmpty reports whether the aggregate yields a non-NULL value
// (zero) over an empty input — the property behind the COUNT bug.
func (a AggOp) NeverNullOnEmpty() bool { return a == AggCount || a == AggCountStar }

// When is one arm of a Case expression.
type When struct {
	Cond, Result Expr
}

// Case is a searched CASE expression: the first arm whose condition is
// TRUE supplies the result; otherwise Else (NULL when nil).
type Case struct {
	Whens []When
	Else  Expr
}

// Agg is an aggregate expression; valid only in the output columns of a
// BoxGroup, where Arg ranges over the group's input quantifier.
type Agg struct {
	Op       AggOp
	Arg      Expr // nil for COUNT(*)
	Distinct bool
}

func (*ColRef) qexpr() {}
func (*Const) qexpr()  {}
func (*Param) qexpr()  {}
func (*Bin) qexpr()    {}
func (*Not) qexpr()    {}
func (*IsNull) qexpr() {}
func (*Like) qexpr()   {}
func (*Func) qexpr()   {}
func (*Case) qexpr()   {}
func (*Agg) qexpr()    {}

// NewEq builds an equality comparison.
func NewEq(l, r Expr) Expr { return &Bin{Op: OpEq, L: l, R: r} }

// NewNullEq builds a NULL-aware equality (IS NOT DISTINCT FROM): TRUE when
// both sides are NULL, never UNKNOWN. Decorrelation tie predicates need it
// wherever a NULL correlation binding must re-find its compensated row.
func NewNullEq(l, r Expr) Expr {
	return &Bin{Op: OpOr,
		L: &Bin{Op: OpEq, L: l, R: r},
		R: &Bin{Op: OpAnd,
			L: &IsNull{E: CloneExpr(l)},
			R: &IsNull{E: CloneExpr(r)}}}
}

// Ref builds a column reference.
func Ref(q *Quantifier, col int) *ColRef { return &ColRef{Q: q, Col: col} }

// ConstInt builds an integer literal expression.
func ConstInt(i int64) Expr { return &Const{V: sqltypes.NewInt(i)} }

// Walk visits e and all sub-expressions in prefix order; returning false
// from f stops descent into that node.
func Walk(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch x := e.(type) {
	case *Bin:
		Walk(x.L, f)
		Walk(x.R, f)
	case *Not:
		Walk(x.E, f)
	case *IsNull:
		Walk(x.E, f)
	case *Like:
		Walk(x.E, f)
		Walk(x.Pattern, f)
	case *Func:
		for _, a := range x.Args {
			Walk(a, f)
		}
	case *Case:
		for _, w := range x.Whens {
			Walk(w.Cond, f)
			Walk(w.Result, f)
		}
		Walk(x.Else, f)
	case *Agg:
		Walk(x.Arg, f)
	}
}

// Rewrite rebuilds e bottom-up, applying f to every node after its children
// have been rewritten. f must return a non-nil expression.
func Rewrite(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Bin:
		return f(&Bin{Op: x.Op, L: Rewrite(x.L, f), R: Rewrite(x.R, f)})
	case *Not:
		return f(&Not{E: Rewrite(x.E, f)})
	case *IsNull:
		return f(&IsNull{E: Rewrite(x.E, f), Negate: x.Negate})
	case *Like:
		return f(&Like{E: Rewrite(x.E, f), Pattern: Rewrite(x.Pattern, f), Negate: x.Negate})
	case *Func:
		n := &Func{Name: x.Name}
		for _, a := range x.Args {
			n.Args = append(n.Args, Rewrite(a, f))
		}
		return f(n)
	case *Case:
		n := &Case{Else: Rewrite(x.Else, f)}
		for _, w := range x.Whens {
			n.Whens = append(n.Whens, When{Cond: Rewrite(w.Cond, f), Result: Rewrite(w.Result, f)})
		}
		return f(n)
	case *Agg:
		return f(&Agg{Op: x.Op, Arg: Rewrite(x.Arg, f), Distinct: x.Distinct})
	case *ColRef:
		return f(&ColRef{Q: x.Q, Col: x.Col})
	case *Const:
		return f(&Const{V: x.V})
	case *Param:
		return f(&Param{Idx: x.Idx})
	}
	return f(e)
}

// Refs returns every ColRef in e in visit order.
func Refs(e Expr) []*ColRef {
	var out []*ColRef
	Walk(e, func(x Expr) bool {
		if r, ok := x.(*ColRef); ok {
			out = append(out, r)
		}
		return true
	})
	return out
}

// RefsQuant reports whether e references quantifier q.
func RefsQuant(e Expr, q *Quantifier) bool {
	for _, r := range Refs(e) {
		if r.Q == q {
			return true
		}
	}
	return false
}

// QuantSet returns the set of quantifiers referenced by e.
func QuantSet(e Expr) map[*Quantifier]bool {
	s := map[*Quantifier]bool{}
	for _, r := range Refs(e) {
		s[r.Q] = true
	}
	return s
}

// SplitConjuncts flattens an AND tree into its conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Bin); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll conjoins a list of predicates (nil for an empty list).
func AndAll(ps []Expr) Expr {
	var out Expr
	for _, p := range ps {
		if out == nil {
			out = p
		} else {
			out = &Bin{Op: OpAnd, L: out, R: p}
		}
	}
	return out
}

// FormatExpr renders an expression for plans and traces, naming columns as
// Q<id>.<colname> where the input box exposes a name.
func FormatExpr(e Expr) string {
	if e == nil {
		return "<nil>"
	}
	switch x := e.(type) {
	case *ColRef:
		name := fmt.Sprintf("c%d", x.Col)
		if x.Q.Input != nil && x.Col < len(x.Q.Input.Cols) {
			if n := x.Q.Input.Cols[x.Col].Name; n != "" {
				name = n
			}
		}
		return fmt.Sprintf("%s.%s", x.Q.Name(), name)
	case *Const:
		if x.V.K == sqltypes.KindString {
			return "'" + x.V.S + "'"
		}
		return x.V.String()
	case *Param:
		return fmt.Sprintf("?%d", x.Idx+1)
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(x.L), x.Op, FormatExpr(x.R))
	case *Not:
		return fmt.Sprintf("NOT %s", FormatExpr(x.E))
	case *IsNull:
		if x.Negate {
			return fmt.Sprintf("%s IS NOT NULL", FormatExpr(x.E))
		}
		return fmt.Sprintf("%s IS NULL", FormatExpr(x.E))
	case *Like:
		neg := ""
		if x.Negate {
			neg = "NOT "
		}
		return fmt.Sprintf("%s %sLIKE %s", FormatExpr(x.E), neg, FormatExpr(x.Pattern))
	case *Func:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = FormatExpr(a)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	case *Case:
		var sb strings.Builder
		sb.WriteString("CASE")
		for _, w := range x.Whens {
			fmt.Fprintf(&sb, " WHEN %s THEN %s", FormatExpr(w.Cond), FormatExpr(w.Result))
		}
		if x.Else != nil {
			fmt.Fprintf(&sb, " ELSE %s", FormatExpr(x.Else))
		}
		sb.WriteString(" END")
		return sb.String()
	case *Agg:
		if x.Op == AggCountStar {
			return "COUNT(*)"
		}
		d := ""
		if x.Distinct {
			d = "DISTINCT "
		}
		return fmt.Sprintf("%s(%s%s)", x.Op, d, FormatExpr(x.Arg))
	}
	return fmt.Sprintf("%T", e)
}
