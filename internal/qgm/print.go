package qgm

import (
	"fmt"
	"strings"
)

// Format renders the graph as a deterministic textual plan, one box per
// stanza, in DFS preorder from the root. Shared boxes (common
// subexpressions) appear once and are referenced by id. This is the
// text-mode analogue of the paper's Figure 1.
func Format(g *Graph) string {
	var sb strings.Builder
	for _, b := range Boxes(g.Root) {
		formatBox(&sb, b, g.Root)
	}
	if len(g.OrderBy) > 0 {
		keys := make([]string, len(g.OrderBy))
		for i, k := range g.OrderBy {
			dir := "asc"
			if k.Desc {
				dir = "desc"
			}
			keys[i] = fmt.Sprintf("c%d %s", k.Col, dir)
		}
		fmt.Fprintf(&sb, "order by: %s\n", strings.Join(keys, ", "))
	}
	return sb.String()
}

func formatBox(sb *strings.Builder, b *Box, root *Box) {
	tag := b.Label
	if tag != "" {
		tag = " [" + tag + "]"
	}
	d := ""
	if b.Distinct {
		d = " DISTINCT"
	}
	fmt.Fprintf(sb, "Box %d: %s%s%s\n", b.ID, b.Kind, d, tag)
	if b.Kind == BoxBase {
		fmt.Fprintf(sb, "  table %s(%s)\n", b.Table.Name, strings.Join(b.OutNames(), ", "))
		return
	}
	inside := subtreeSet(b)
	for _, q := range b.Quants {
		fmt.Fprintf(sb, "  quant %s (%s) over box %d\n", q.Name(), q.Kind, q.Input.ID)
	}
	for _, p := range b.Preds {
		corr := ""
		for _, r := range Refs(p) {
			if !inside[r.Q.Owner] {
				corr = "   <- correlated"
				break
			}
		}
		fmt.Fprintf(sb, "  pred %s%s\n", FormatExpr(p), corr)
	}
	if len(b.GroupBy) > 0 {
		gb := make([]string, len(b.GroupBy))
		for i, e := range b.GroupBy {
			gb[i] = FormatExpr(e)
		}
		fmt.Fprintf(sb, "  group by %s\n", strings.Join(gb, ", "))
	}
	for _, c := range b.Cols {
		fmt.Fprintf(sb, "  out %s = %s\n", c.Name, FormatExpr(c.Expr))
	}
}
