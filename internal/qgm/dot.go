package qgm

import (
	"fmt"
	"strings"
)

// Dot renders the graph in Graphviz DOT form, mimicking the paper's QGM
// figures: boxes as nodes (non-SPJ boxes shaded, as in Figure 1), solid
// edges for quantifiers ("iterators"), dashed edges for correlations from
// the destination box to the source quantifier's owner.
func Dot(g *Graph) string {
	var b strings.Builder
	b.WriteString("digraph qgm {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, box := range Boxes(g.Root) {
		label := fmt.Sprintf("Box %d: %s", box.ID, box.Kind)
		if box.Label != "" {
			label += " [" + box.Label + "]"
		}
		if box.Distinct {
			label += " DISTINCT"
		}
		if box.Kind == BoxBase {
			label += "\\n" + box.Table.Name
		}
		for _, p := range box.Preds {
			label += "\\n" + escapeDot(FormatExpr(p))
		}
		if len(box.GroupBy) > 0 {
			gb := make([]string, len(box.GroupBy))
			for i, e := range box.GroupBy {
				gb[i] = FormatExpr(e)
			}
			label += "\\nGROUP BY " + escapeDot(strings.Join(gb, ", "))
		}
		style := ""
		if box.Kind != BoxSelect && box.Kind != BoxBase {
			// The paper shades non-SPJ boxes grey.
			style = ", style=filled, fillcolor=lightgrey"
		}
		fmt.Fprintf(&b, "  b%d [label=\"%s\"%s];\n", box.ID, label, style)
	}
	// Quantifier edges.
	for _, box := range Boxes(g.Root) {
		for _, q := range box.Quants {
			fmt.Fprintf(&b, "  b%d -> b%d [label=\"%s (%s)\"];\n",
				q.Input.ID, box.ID, q.Name(), q.Kind)
		}
	}
	// Correlation edges (dashed), one per correlated (destination box,
	// source box) pair.
	seen := map[[2]int]bool{}
	for _, box := range Boxes(g.Root) {
		inside := subtreeSet(box)
		_ = inside
		box.ExprSlots(func(slot *Expr) {
			for _, r := range Refs(*slot) {
				if r.Q.Owner == box {
					continue
				}
				key := [2]int{box.ID, r.Q.Owner.ID}
				if seen[key] {
					continue
				}
				seen[key] = true
				fmt.Fprintf(&b, "  b%d -> b%d [style=dashed, color=red, label=\"corr\"];\n",
					box.ID, r.Q.Owner.ID)
			}
		})
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\"", "\\\"")
}
