package qgm

import (
	"fmt"
)

// ExprSlots calls f with a pointer to every expression slot of box b (its
// predicates, output column expressions, and grouping expressions), so
// callers can inspect or replace them in place.
func (b *Box) ExprSlots(f func(*Expr)) {
	for i := range b.Preds {
		f(&b.Preds[i])
	}
	for i := range b.Cols {
		if b.Cols[i].Expr != nil {
			f(&b.Cols[i].Expr)
		}
	}
	for i := range b.GroupBy {
		f(&b.GroupBy[i])
	}
}

// subtreeSet returns the set of boxes reachable from b.
func subtreeSet(b *Box) map[*Box]bool {
	s := map[*Box]bool{}
	for _, x := range Boxes(b) {
		s[x] = true
	}
	return s
}

// FreeRefs returns the ColRefs occurring anywhere in b's subtree whose
// quantifier is owned outside the subtree — i.e. the correlated references
// of the subtree. Order is deterministic (box DFS order, slot order).
func FreeRefs(b *Box) []*ColRef {
	inside := subtreeSet(b)
	var out []*ColRef
	for _, box := range Boxes(b) {
		box.ExprSlots(func(slot *Expr) {
			for _, r := range Refs(*slot) {
				if !inside[r.Q.Owner] {
					out = append(out, r)
				}
			}
		})
	}
	return out
}

// IsCorrelated reports whether b's subtree has any correlated reference.
func IsCorrelated(b *Box) bool { return len(FreeRefs(b)) > 0 }

// CorrelatedTo reports whether b's subtree references any quantifier owned
// by the given box.
func CorrelatedTo(b, owner *Box) bool {
	for _, r := range FreeRefs(b) {
		if r.Q.Owner == owner {
			return true
		}
	}
	return false
}

// RewriteSubtree applies f (bottom-up, per Rewrite) to every expression of
// every box in root's subtree.
func RewriteSubtree(root *Box, f func(Expr) Expr) {
	for _, b := range Boxes(root) {
		b.ExprSlots(func(slot *Expr) {
			*slot = Rewrite(*slot, f)
		})
	}
}

// RedirectRefs rewrites, across root's whole subtree, every reference to a
// (quantifier, column) pair present in the mapping, replacing it with the
// mapped expression. Keys are encoded by refKey.
func RedirectRefs(root *Box, mapping map[RefKey]Expr) {
	RewriteSubtree(root, func(e Expr) Expr {
		if r, ok := e.(*ColRef); ok {
			if repl, ok := mapping[RefKey{r.Q, r.Col}]; ok {
				return CloneExpr(repl)
			}
		}
		return e
	})
}

// RefKey identifies a (quantifier, column) pair for rewrite maps.
type RefKey struct {
	Q   *Quantifier
	Col int
}

// CloneExpr deep-copies an expression (quantifier pointers are shared; they
// identify graph edges, not owned state).
func CloneExpr(e Expr) Expr {
	return Rewrite(e, func(x Expr) Expr { return x })
}

// Parents computes the parent multimap of the graph rooted at root.
func Parents(root *Box) map[*Box][]*Box {
	p := map[*Box][]*Box{}
	for _, b := range Boxes(root) {
		for _, q := range b.Quants {
			p[q.Input] = append(p[q.Input], b)
		}
	}
	return p
}

// Validate checks structural invariants of the graph. It is called by the
// engine after semantic analysis and after every rewrite, mirroring the
// paper's requirement that "each rule application should leave the QGM in
// a consistent state".
func Validate(g *Graph) error {
	if g.Root == nil {
		return fmt.Errorf("qgm: graph has no root")
	}
	parents := Parents(g.Root)
	// ancestors: transitive closure over parents.
	anc := map[*Box]map[*Box]bool{}
	var ancestorsOf func(b *Box, seen map[*Box]bool) map[*Box]bool
	ancestorsOf = func(b *Box, seen map[*Box]bool) map[*Box]bool {
		if a, ok := anc[b]; ok {
			return a
		}
		if seen[b] {
			return map[*Box]bool{}
		}
		seen[b] = true
		a := map[*Box]bool{}
		for _, p := range parents[b] {
			a[p] = true
			for x := range ancestorsOf(p, seen) {
				a[x] = true
			}
		}
		anc[b] = a
		return a
	}
	for _, b := range Boxes(g.Root) {
		if err := validateBoxShape(b); err != nil {
			return err
		}
		quants := map[*Quantifier]bool{}
		for _, q := range b.Quants {
			if q.Owner != b {
				return fmt.Errorf("qgm: box %d has quantifier %s owned by box %d", b.ID, q.Name(), q.Owner.ID)
			}
			if q.Input == nil {
				return fmt.Errorf("qgm: quantifier %s of box %d has no input", q.Name(), b.ID)
			}
			quants[q] = true
		}
		a := ancestorsOf(b, map[*Box]bool{})
		var refErr error
		b.ExprSlots(func(slot *Expr) {
			if refErr != nil {
				return
			}
			for _, r := range Refs(*slot) {
				if r.Q == nil || r.Q.Input == nil {
					refErr = fmt.Errorf("qgm: box %d references a detached quantifier", b.ID)
					return
				}
				if !quants[r.Q] && !a[r.Q.Owner] {
					refErr = fmt.Errorf("qgm: box %d references %s.c%d owned by box %d which is not an ancestor",
						b.ID, r.Q.Name(), r.Col, r.Q.Owner.ID)
					return
				}
				if r.Col < 0 || r.Col >= len(r.Q.Input.Cols) {
					refErr = fmt.Errorf("qgm: box %d references %s.c%d out of range (input box %d has %d cols)",
						b.ID, r.Q.Name(), r.Col, r.Q.Input.ID, len(r.Q.Input.Cols))
					return
				}
			}
		})
		if refErr != nil {
			return refErr
		}
	}
	return nil
}

func validateBoxShape(b *Box) error {
	switch b.Kind {
	case BoxBase:
		if b.Table == nil {
			return fmt.Errorf("qgm: base box %d has no table", b.ID)
		}
		if len(b.Quants) != 0 || len(b.Preds) != 0 {
			return fmt.Errorf("qgm: base box %d must have no quantifiers or predicates", b.ID)
		}
		if len(b.Cols) != len(b.Table.Columns) {
			return fmt.Errorf("qgm: base box %d arity mismatch with table %q", b.ID, b.Table.Name)
		}
	case BoxSelect:
		if len(b.ForEachQuants()) == 0 {
			return fmt.Errorf("qgm: select box %d has no row-contributing quantifier", b.ID)
		}
		for _, c := range b.Cols {
			if c.Expr == nil {
				return fmt.Errorf("qgm: select box %d output %q has no expression", b.ID, c.Name)
			}
			if containsAgg(c.Expr) {
				return fmt.Errorf("qgm: select box %d output %q contains an aggregate", b.ID, c.Name)
			}
		}
		for _, p := range b.Preds {
			if containsAgg(p) {
				return fmt.Errorf("qgm: select box %d predicate contains an aggregate", b.ID)
			}
		}
	case BoxGroup:
		if len(b.Quants) != 1 || b.Quants[0].Kind != QForEach {
			return fmt.Errorf("qgm: group box %d must have exactly one ForEach quantifier", b.ID)
		}
		if len(b.Preds) != 0 {
			return fmt.Errorf("qgm: group box %d must not carry predicates (HAVING lives above)", b.ID)
		}
		for _, c := range b.Cols {
			if c.Expr == nil {
				return fmt.Errorf("qgm: group box %d output %q has no expression", b.ID, c.Name)
			}
		}
	case BoxUnion, BoxIntersect, BoxExcept:
		if len(b.Quants) < 2 {
			return fmt.Errorf("qgm: %s box %d needs at least two inputs", b.Kind, b.ID)
		}
		if b.Kind != BoxUnion && len(b.Quants) != 2 {
			return fmt.Errorf("qgm: %s box %d must have exactly two inputs", b.Kind, b.ID)
		}
		arity := len(b.Quants[0].Input.Cols)
		for _, q := range b.Quants {
			if q.Kind != QForEach {
				return fmt.Errorf("qgm: %s box %d has non-ForEach quantifier", b.Kind, b.ID)
			}
			if len(q.Input.Cols) != arity {
				return fmt.Errorf("qgm: %s box %d inputs have differing arity", b.Kind, b.ID)
			}
		}
		if len(b.Cols) != arity {
			return fmt.Errorf("qgm: %s box %d output arity mismatch", b.Kind, b.ID)
		}
		if len(b.Preds) != 0 {
			return fmt.Errorf("qgm: %s box %d must not carry predicates", b.Kind, b.ID)
		}
	case BoxLeftJoin:
		if len(b.Quants) != 2 || b.Quants[0].Kind != QForEach || b.Quants[1].Kind != QForEach {
			return fmt.Errorf("qgm: left-join box %d must have exactly two ForEach quantifiers", b.ID)
		}
		for _, c := range b.Cols {
			if c.Expr == nil {
				return fmt.Errorf("qgm: left-join box %d output %q has no expression", b.ID, c.Name)
			}
		}
	}
	return nil
}

func containsAgg(e Expr) bool {
	found := false
	Walk(e, func(x Expr) bool {
		if _, ok := x.(*Agg); ok {
			found = true
		}
		return true
	})
	return found
}
