package qgm

// KeyWithin reports whether the given set of output ordinals of box b
// functionally determines a full row of b — i.e. contains a candidate key
// of b's result. OptMag uses it for the supplementary-table test ("when
// the correlation attributes form a key of the supplementary table",
// §5.1) and the rewrite engine uses it to drop redundant DISTINCTs.
func KeyWithin(b *Box, cols map[int]bool) bool {
	switch b.Kind {
	case BoxBase:
		return b.Table.HasKeyWithin(cols)
	case BoxSelect:
		if b.Distinct {
			all := true
			for j := range b.Cols {
				if !cols[j] {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
		for _, q := range b.Quants {
			if q.Kind != QForEach {
				continue // scalar contributes one row; existential none
			}
			sub := map[int]bool{}
			for j, c := range b.Cols {
				if !cols[j] {
					continue
				}
				if r, ok := c.Expr.(*ColRef); ok && r.Q == q {
					sub[r.Col] = true
				}
			}
			if !KeyWithin(q.Input, sub) {
				return false
			}
		}
		return true
	case BoxGroup:
		// The grouping columns are a key of the result; all of them must
		// be among the chosen outputs.
		for _, ge := range b.GroupBy {
			gr, ok := ge.(*ColRef)
			if !ok {
				return false
			}
			found := false
			for j, c := range b.Cols {
				if !cols[j] {
					continue
				}
				if cr, ok := c.Expr.(*ColRef); ok && cr.Q == gr.Q && cr.Col == gr.Col {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	return false
}
