package qgm

import (
	"strings"
	"testing"

	"decorr/internal/sqltypes"
)

func TestDotRendersBoxesEdgesAndCorrelation(t *testing.T) {
	g, _, _, _, _ := buildCorrelated()
	out := Dot(g)
	for _, want := range []string{
		"digraph qgm",
		"SELECT",
		"BASE",
		"->",           // quantifier edges
		"style=dashed", // correlation edge
		"corr",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces")
	}
	if strings.Count(out, "[label=\"Box") != len(Boxes(g.Root)) {
		t.Errorf("node count mismatch:\n%s", out)
	}
}

func TestDotEscapesQuotes(t *testing.T) {
	g := NewGraph()
	base := g.NewBaseBox(demoTable("t", "s"))
	root := g.NewBox(BoxSelect, "r")
	q := g.AddQuant(root, QForEach, base)
	root.Preds = append(root.Preds, &Like{E: Ref(q, 0),
		Pattern: &Const{V: sqltypes.NewString(`a"b`)}})
	root.Cols = []OutCol{{Name: "s", Expr: Ref(q, 0)}}
	g.Root = root
	out := Dot(g)
	if !strings.Contains(out, `\"`) {
		t.Errorf("quotes not escaped:\n%s", out)
	}
}
