// Package qgm implements the Query Graph Model, the plan representation
// used by Starburst and by this reproduction. A query is a DAG of boxes
// (SELECT/SPJ, GROUP BY, UNION, LEFT OUTER JOIN, and base tables) connected
// by quantifiers ("iterators" in the paper's figures). Correlation is
// represented structurally: a column reference inside a box that resolves
// to a quantifier owned by an ancestor box.
//
// The magic decorrelation rewrite (internal/core), the classic rewrites
// (internal/classic) and the executor (internal/exec) all operate on this
// representation.
package qgm

import (
	"fmt"

	"decorr/internal/schema"
)

// BoxKind enumerates the query constructs modeled as boxes.
type BoxKind uint8

const (
	// BoxBase is a base-table leaf.
	BoxBase BoxKind = iota
	// BoxSelect is a Select-Project-Join block, possibly with subquery
	// quantifiers (scalar, existential, universal) and DISTINCT.
	BoxSelect
	// BoxGroup is a grouped aggregation over a single input quantifier.
	BoxGroup
	// BoxUnion combines same-arity inputs; Distinct selects UNION vs
	// UNION ALL semantics.
	BoxUnion
	// BoxLeftJoin is a left outer join of exactly two quantifiers, with
	// the ON condition in Preds. Quants[0] is the row-preserving side.
	// It is introduced only by rewrites (Dayal's method and the magic
	// COUNT-bug removal); the surface grammar has no outer joins.
	BoxLeftJoin
	// BoxIntersect intersects exactly two same-arity inputs; Distinct
	// selects INTERSECT vs INTERSECT ALL (multiset minimum) semantics.
	// The paper lists Intersection among the QGM box kinds (§3).
	BoxIntersect
	// BoxExcept subtracts Quants[1] from Quants[0]; Distinct selects
	// EXCEPT (set difference over distinct left rows) vs EXCEPT ALL
	// (multiset difference).
	BoxExcept
)

// String names the box kind the way the paper's figures do.
func (k BoxKind) String() string {
	switch k {
	case BoxBase:
		return "BASE"
	case BoxSelect:
		return "SELECT"
	case BoxGroup:
		return "GROUPBY"
	case BoxUnion:
		return "UNION"
	case BoxLeftJoin:
		return "LOJ"
	case BoxIntersect:
		return "INTERSECT"
	case BoxExcept:
		return "EXCEPT"
	}
	return fmt.Sprintf("BoxKind(%d)", uint8(k))
}

// QuantKind enumerates quantifier kinds. ForEach ("F") quantifiers are the
// ordinary FROM-clause iterators; the others attach subqueries to a box.
type QuantKind uint8

const (
	// QForEach ranges over every row of its input.
	QForEach QuantKind = iota
	// QScalar expects at most one row; an empty input contributes a
	// single all-NULL row (SQL scalar subquery semantics), more than one
	// row is a runtime error.
	QScalar
	// QExists requires at least one input row satisfying the predicates
	// that mention this quantifier.
	QExists
	// QNotExists requires that no input row satisfies them.
	QNotExists
	// QAny requires some input row to satisfy them (x op ANY (...)).
	QAny
	// QAll requires every input row to satisfy them (x op ALL (...));
	// vacuously true on an empty input.
	QAll
)

// String returns the single-letter Starburst-style tag.
func (k QuantKind) String() string {
	switch k {
	case QForEach:
		return "F"
	case QScalar:
		return "S"
	case QExists:
		return "E"
	case QNotExists:
		return "¬E"
	case QAny:
		return "ANY"
	case QAll:
		return "ALL"
	}
	return "?"
}

// IsSubquery reports whether the quantifier attaches a subquery (rather
// than iterating rows into the join).
func (k QuantKind) IsSubquery() bool { return k >= QExists }

// Quantifier is an iterator of a box over an input box.
type Quantifier struct {
	ID    int
	Kind  QuantKind
	Input *Box
	Owner *Box
}

// Name returns the display name used in plans and traces (Q<id>).
func (q *Quantifier) Name() string { return fmt.Sprintf("Q%d", q.ID) }

// OutCol is a named output column of a box.
type OutCol struct {
	Name string
	Expr Expr // nil only for BoxBase columns
}

// Box is one node of the query graph.
type Box struct {
	ID       int
	Kind     BoxKind
	Label    string // human tag: root, SUPP, MAGIC, DCO, CI, ...
	Distinct bool

	Quants []*Quantifier
	Preds  []Expr // conjunction
	Cols   []OutCol

	// BoxGroup only: grouping expressions over Quants[0]. Aggregates
	// appear in Cols as *Agg expressions.
	GroupBy []Expr

	// BoxBase only.
	Table *schema.Table
}

// Graph owns id allocation and the root box of one query.
type Graph struct {
	Root      *Box
	nextBox   int
	nextQuant int

	// OrderBy is an executor-level sort of the root output (column
	// ordinals plus direction); it plays no role in rewriting.
	OrderBy []OrderKey
	// Limit caps the root result cardinality after sorting; negative
	// means unlimited. Like OrderBy it is executor-level only.
	Limit int64
	// Params is the number of `?` placeholders the graph's expressions
	// reference; an execution must supply exactly this many values.
	Params int
}

// OrderKey orders root output column Col; Desc selects descending order.
type OrderKey struct {
	Col  int
	Desc bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{nextBox: 1, nextQuant: 1, Limit: -1} }

// NewBox allocates a box of the given kind.
func (g *Graph) NewBox(kind BoxKind, label string) *Box {
	b := &Box{ID: g.nextBox, Kind: kind, Label: label}
	g.nextBox++
	return b
}

// NewBaseBox allocates a base-table leaf whose output columns mirror the
// table definition.
func (g *Graph) NewBaseBox(t *schema.Table) *Box {
	b := g.NewBox(BoxBase, t.Name)
	b.Table = t
	for _, c := range t.Columns {
		b.Cols = append(b.Cols, OutCol{Name: c.Name})
	}
	return b
}

// AddQuant attaches a new quantifier of the given kind over input to box b.
func (g *Graph) AddQuant(b *Box, kind QuantKind, input *Box) *Quantifier {
	q := &Quantifier{ID: g.nextQuant, Kind: kind, Input: input, Owner: b}
	g.nextQuant++
	b.Quants = append(b.Quants, q)
	return q
}

// RemoveQuant detaches q from its owner. Predicates and outputs referencing
// q must already have been rewritten; Validate catches violations.
func (b *Box) RemoveQuant(q *Quantifier) {
	for i, x := range b.Quants {
		if x == q {
			b.Quants = append(b.Quants[:i], b.Quants[i+1:]...)
			return
		}
	}
}

// OutNames returns the output column names of the box.
func (b *Box) OutNames() []string {
	out := make([]string, len(b.Cols))
	for i, c := range b.Cols {
		out[i] = c.Name
	}
	return out
}

// ColIndex returns the ordinal of the named output column, or -1.
func (b *Box) ColIndex(name string) int {
	for i, c := range b.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// ForEachQuants returns the box's ForEach and Scalar quantifiers (the ones
// that contribute rows to the join), in declaration order.
func (b *Box) ForEachQuants() []*Quantifier {
	var out []*Quantifier
	for _, q := range b.Quants {
		if !q.Kind.IsSubquery() {
			out = append(out, q)
		}
	}
	return out
}

// SubqueryQuants returns the box's existential/universal quantifiers.
func (b *Box) SubqueryQuants() []*Quantifier {
	var out []*Quantifier
	for _, q := range b.Quants {
		if q.Kind.IsSubquery() {
			out = append(out, q)
		}
	}
	return out
}

// Boxes returns every box reachable from root (root first, then inputs,
// depth-first, each box once even when shared).
func Boxes(root *Box) []*Box {
	var out []*Box
	seen := map[*Box]bool{}
	var walk func(*Box)
	walk = func(b *Box) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		out = append(out, b)
		for _, q := range b.Quants {
			walk(q.Input)
		}
	}
	walk(root)
	return out
}

// Contains reports whether needle is reachable from root (inclusive).
func Contains(root, needle *Box) bool {
	for _, b := range Boxes(root) {
		if b == needle {
			return true
		}
	}
	return false
}
