package qgm

// Batched correlation signatures. The runtime subquery-batching path
// (internal/exec) evaluates one correlated subtree set-at-a-time for a
// whole batch of outer bindings instead of once per outer tuple — the
// batched-bindings evaluation of Guravannavar & Sudarshan, applied at
// runtime rather than by rewrite. That is only sound when the correlation
// enters the subtree exclusively through root-level equality predicates:
// then the subtree can run once with those predicates stripped, its rows
// partitioned by the subquery-side key, and each outer binding probes its
// partition — exactly a hash join against the synthesized bindings
// relation.

// BatchSignature describes how a correlated BoxSelect subtree can be
// evaluated once for many outer bindings. Outer[i] = Inner[i] are the
// stripped correlated equalities: Outer[i] is a function of the varying
// (outer) quantifiers only, Inner[i] of the subtree's own quantifiers
// (plus run-constant ancestors). Key equality is the canonical
// sqltypes.AppendKey grouping notion — the same one every hash join in
// the executor already uses for OpEq predicates — and a NULL on either
// side never matches, matching the stripped predicate's UNKNOWN.
type BatchSignature struct {
	// Outer are the probe-side key expressions, evaluated per outer
	// binding.
	Outer []Expr
	// Inner are the partition-side key expressions, evaluated per subtree
	// row.
	Inner []Expr
	// Skip identifies (by pointer identity) the root predicates the
	// batched execution must not evaluate: their filtering is re-applied
	// by the partition/probe step.
	Skip map[Expr]bool
}

// ExtractBatchSignature decides whether subtree b, correlated to the
// quantifiers in varying, fits the batchable shape, and if so returns its
// signature. The conditions, each of which otherwise changes semantics:
//
//   - b is a plain SELECT box without DISTINCT: dedup is defined over one
//     binding's rows, not over the whole batch, so DISTINCT roots decline.
//   - Every root predicate that mentions a varying quantifier is a
//     conjunct of the form outerExpr = innerExpr, with the varying
//     references confined to one side and none of the subtree's own
//     quantifiers on it; and no such predicate also ties a subquery-kind
//     quantifier of b (stripping it would detach the subquery's binding).
//   - No other expression slot anywhere in the subtree — root outputs,
//     remaining root predicates, or anything in nested boxes — mentions a
//     varying quantifier. Correlation reaching a nested box (or the
//     output row itself) cannot be stripped at the root.
//
// Callers that hold a subtree failing these conditions fall back to
// per-distinct-binding evaluation, which is always sound.
func ExtractBatchSignature(b *Box, varying map[*Quantifier]bool) (*BatchSignature, bool) {
	if b.Kind != BoxSelect || b.Distinct || len(varying) == 0 {
		return nil, false
	}
	inside := subtreeSet(b)
	sig := &BatchSignature{Skip: map[Expr]bool{}}
	for _, p := range b.Preds {
		qs := QuantSet(p)
		hasVarying := false
		for q := range qs {
			if varying[q] {
				hasVarying = true
				break
			}
		}
		if !hasVarying {
			continue
		}
		for q := range qs {
			if q.Kind.IsSubquery() {
				return nil, false
			}
		}
		outer, inner, ok := splitBatchEq(p, varying, inside)
		if !ok {
			return nil, false
		}
		sig.Outer = append(sig.Outer, outer)
		sig.Inner = append(sig.Inner, inner)
		sig.Skip[p] = true
	}
	if len(sig.Outer) == 0 {
		// The correlation never surfaces in a root predicate: it lives in
		// a nested box or in the outputs, where it cannot be stripped.
		return nil, false
	}
	for _, box := range Boxes(b) {
		for _, slot := range batchCheckedSlots(box, b, sig) {
			for _, r := range Refs(slot) {
				if varying[r.Q] {
					return nil, false
				}
			}
		}
	}
	return sig, true
}

// batchCheckedSlots lists the expression slots of box that must be free of
// varying references: everything, except the root predicates the signature
// strips (matched by identity, and only in the predicate slot — a stripped
// predicate expression appearing as an output column would still disqualify
// the subtree).
func batchCheckedSlots(box, root *Box, sig *BatchSignature) []Expr {
	var slots []Expr
	for _, p := range box.Preds {
		if box == root && sig.Skip[p] {
			continue
		}
		slots = append(slots, p)
	}
	for _, c := range box.Cols {
		if c.Expr != nil {
			slots = append(slots, c.Expr)
		}
	}
	slots = append(slots, box.GroupBy...)
	return slots
}

// splitBatchEq decomposes p as outerSide = innerSide: the outer side
// references at least one varying quantifier and nothing inside the
// subtree; the inner side references no varying quantifier. References to
// run-constant ancestors (neither varying nor inside) are allowed on both
// sides — they evaluate identically under every binding.
func splitBatchEq(p Expr, varying map[*Quantifier]bool, inside map[*Box]bool) (outer, inner Expr, ok bool) {
	bin, isBin := p.(*Bin)
	if !isBin || bin.Op != OpEq {
		return nil, nil, false
	}
	side := func(e Expr) (hasVarying, hasInside bool) {
		for q := range QuantSet(e) {
			if varying[q] {
				hasVarying = true
			}
			if inside[q.Owner] {
				hasInside = true
			}
		}
		return
	}
	lv, li := side(bin.L)
	rv, ri := side(bin.R)
	switch {
	case lv && !li && !rv:
		return bin.L, bin.R, true
	case rv && !ri && !lv:
		return bin.R, bin.L, true
	}
	return nil, nil, false
}
