package qgm

import (
	"strings"
	"testing"

	"decorr/internal/schema"
	"decorr/internal/sqltypes"
)

func demoTable(name string, cols ...string) *schema.Table {
	var cs []schema.Column
	for _, c := range cols {
		cs = append(cs, schema.Column{Name: c, Type: schema.TInt})
	}
	return schema.NewTable(name, cs...)
}

// buildCorrelated constructs a minimal correlated graph:
//
//	root: SELECT over t, with a scalar quantifier over sub
//	sub:  SELECT over u with pred u.c0 = t.c0 (correlated)
func buildCorrelated() (*Graph, *Box, *Box, *Quantifier, *Quantifier) {
	g := NewGraph()
	root := g.NewBox(BoxSelect, "root")
	tBase := g.NewBaseBox(demoTable("t", "a", "b"))
	uBase := g.NewBaseBox(demoTable("u", "c", "d"))
	qt := g.AddQuant(root, QForEach, tBase)

	sub := g.NewBox(BoxSelect, "sub")
	qu := g.AddQuant(sub, QForEach, uBase)
	sub.Preds = append(sub.Preds, NewEq(Ref(qu, 0), Ref(qt, 0))) // correlated
	sub.Cols = append(sub.Cols, OutCol{Name: "d", Expr: Ref(qu, 1)})

	qs := g.AddQuant(root, QScalar, sub)
	root.Preds = append(root.Preds, &Bin{Op: OpGt, L: Ref(qt, 1), R: Ref(qs, 0)})
	root.Cols = append(root.Cols, OutCol{Name: "a", Expr: Ref(qt, 0)})
	g.Root = root
	return g, root, sub, qt, qs
}

func TestValidateAcceptsCorrelatedGraph(t *testing.T) {
	g, _, _, _, _ := buildCorrelated()
	if err := Validate(g); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestFreeRefsAndCorrelatedTo(t *testing.T) {
	_, root, sub, qt, _ := buildCorrelated()
	refs := FreeRefs(sub)
	if len(refs) != 1 || refs[0].Q != qt || refs[0].Col != 0 {
		t.Fatalf("free refs = %+v", refs)
	}
	if !CorrelatedTo(sub, root) {
		t.Error("sub is correlated to root")
	}
	if !IsCorrelated(sub) {
		t.Error("sub is correlated")
	}
	if IsCorrelated(root) {
		t.Error("root has no free refs")
	}
}

func TestValidateRejectsOutOfScopeRef(t *testing.T) {
	g := NewGraph()
	a := g.NewBox(BoxSelect, "a")
	b := g.NewBox(BoxSelect, "b")
	base1 := g.NewBaseBox(demoTable("t", "x"))
	base2 := g.NewBaseBox(demoTable("u", "y"))
	qa := g.AddQuant(a, QForEach, base1)
	qb := g.AddQuant(b, QForEach, base2)
	a.Cols = []OutCol{{Name: "x", Expr: Ref(qa, 0)}}
	// b references a's quantifier, but a is not an ancestor of b.
	b.Cols = []OutCol{{Name: "bad", Expr: Ref(qa, 0)}}
	_ = qb
	g.Root = b
	if err := Validate(g); err == nil {
		t.Fatal("expected scope violation")
	}
}

func TestValidateRejectsColumnOutOfRange(t *testing.T) {
	g := NewGraph()
	root := g.NewBox(BoxSelect, "root")
	base := g.NewBaseBox(demoTable("t", "x"))
	q := g.AddQuant(root, QForEach, base)
	root.Cols = []OutCol{{Name: "boom", Expr: Ref(q, 5)}}
	g.Root = root
	if err := Validate(g); err == nil {
		t.Fatal("expected column-range violation")
	}
}

func TestValidateBoxShapes(t *testing.T) {
	g := NewGraph()
	base := g.NewBaseBox(demoTable("t", "x"))

	group := g.NewBox(BoxGroup, "g")
	q := g.AddQuant(group, QForEach, base)
	group.Cols = []OutCol{{Name: "n", Expr: &Agg{Op: AggCountStar}}}
	g.Root = group
	if err := Validate(g); err != nil {
		t.Fatalf("group box rejected: %v", err)
	}
	// Group boxes must not carry predicates.
	group.Preds = append(group.Preds, NewEq(Ref(q, 0), ConstInt(1)))
	if err := Validate(g); err == nil {
		t.Fatal("group box with predicates accepted")
	}
	group.Preds = nil

	// Aggregates are illegal in select boxes.
	sel := g.NewBox(BoxSelect, "s")
	qs := g.AddQuant(sel, QForEach, base)
	_ = qs
	sel.Cols = []OutCol{{Name: "n", Expr: &Agg{Op: AggCountStar}}}
	g.Root = sel
	if err := Validate(g); err == nil {
		t.Fatal("select box with aggregate output accepted")
	}
}

func TestUnionArityChecked(t *testing.T) {
	g := NewGraph()
	one := g.NewBaseBox(demoTable("t", "x"))
	two := g.NewBaseBox(demoTable("u", "y", "z"))
	u := g.NewBox(BoxUnion, "u")
	g.AddQuant(u, QForEach, one)
	g.AddQuant(u, QForEach, two)
	u.Cols = []OutCol{{Name: "x"}}
	g.Root = u
	if err := Validate(g); err == nil {
		t.Fatal("union with mismatched arity accepted")
	}
}

func TestSplitConjunctsAndAndAll(t *testing.T) {
	a := ConstInt(1)
	b := ConstInt(2)
	c := ConstInt(3)
	e := AndAll([]Expr{a, b, c})
	parts := SplitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("got %d conjuncts", len(parts))
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	if len(SplitConjuncts(nil)) != 0 {
		t.Error("SplitConjuncts(nil) should be empty")
	}
}

func TestRewritePreservesStructure(t *testing.T) {
	_, _, sub, qt, _ := buildCorrelated()
	// Redirect the correlated ref to a constant; the graph loses its
	// correlation.
	RedirectRefs(sub, map[RefKey]Expr{{Q: qt, Col: 0}: &Const{V: sqltypes.NewInt(9)}})
	if IsCorrelated(sub) {
		t.Fatalf("still correlated after redirect: %+v", FreeRefs(sub))
	}
}

func TestCloneExprIsDeep(t *testing.T) {
	_, _, sub, _, _ := buildCorrelated()
	orig := sub.Preds[0]
	cl := CloneExpr(orig)
	// Mutating the clone must not affect the original.
	cl.(*Bin).Op = OpNe
	if orig.(*Bin).Op != OpEq {
		t.Error("clone aliases the original")
	}
}

func TestOpHelpers(t *testing.T) {
	if OpLt.Flip() != OpGt || OpGe.Flip() != OpLe || OpEq.Flip() != OpEq {
		t.Error("Flip broken")
	}
	if OpLt.Negate() != OpGe || OpEq.Negate() != OpNe {
		t.Error("Negate broken")
	}
	if !OpLe.IsComparison() || OpAnd.IsComparison() || OpAdd.IsComparison() {
		t.Error("IsComparison broken")
	}
}

func TestBoxesVisitsSharedOnce(t *testing.T) {
	g := NewGraph()
	base := g.NewBaseBox(demoTable("t", "x"))
	root := g.NewBox(BoxSelect, "root")
	q1 := g.AddQuant(root, QForEach, base)
	q2 := g.AddQuant(root, QForEach, base) // shared CSE
	root.Cols = []OutCol{{Name: "x", Expr: Ref(q1, 0)}, {Name: "y", Expr: Ref(q2, 0)}}
	g.Root = root
	if got := len(Boxes(root)); got != 2 {
		t.Errorf("Boxes visited %d boxes, want 2 (shared box once)", got)
	}
}

func TestFormatMentionsCorrelation(t *testing.T) {
	g, _, _, _, _ := buildCorrelated()
	s := Format(g)
	if !strings.Contains(s, "correlated") {
		t.Errorf("plan should flag the correlated predicate:\n%s", s)
	}
	if !strings.Contains(s, "BASE") || !strings.Contains(s, "SELECT") {
		t.Errorf("plan missing box kinds:\n%s", s)
	}
}

func TestFormatExprShapes(t *testing.T) {
	g := NewGraph()
	base := g.NewBaseBox(demoTable("t", "price"))
	root := g.NewBox(BoxSelect, "r")
	q := g.AddQuant(root, QForEach, base)
	cases := []struct {
		e    Expr
		want string
	}{
		{Ref(q, 0), ".price"},
		{&Const{V: sqltypes.NewString("x")}, "'x'"},
		{&IsNull{E: Ref(q, 0)}, "IS NULL"},
		{&IsNull{E: Ref(q, 0), Negate: true}, "IS NOT NULL"},
		{&Agg{Op: AggCountStar}, "COUNT(*)"},
		{&Agg{Op: AggSum, Arg: Ref(q, 0)}, "SUM("},
		{&Func{Name: "coalesce", Args: []Expr{Ref(q, 0), ConstInt(0)}}, "coalesce("},
		{&Like{E: Ref(q, 0), Pattern: &Const{V: sqltypes.NewString("%a")}}, "LIKE"},
	}
	for _, c := range cases {
		if got := FormatExpr(c.e); !strings.Contains(got, c.want) {
			t.Errorf("FormatExpr = %q, want substring %q", got, c.want)
		}
	}
}

func TestQuantAndRefUtilities(t *testing.T) {
	_, root, sub, qt, qs := buildCorrelated()
	if !RefsQuant(root.Preds[0], qs) {
		t.Error("root pred references the scalar quantifier")
	}
	qset := QuantSet(root.Preds[0])
	if !qset[qt] || !qset[qs] || len(qset) != 2 {
		t.Errorf("quant set = %v", qset)
	}
	if !Contains(root, sub) || Contains(sub, root) {
		t.Error("Contains broken")
	}
}

func TestRemoveQuant(t *testing.T) {
	_, root, _, qt, qs := buildCorrelated()
	root.RemoveQuant(qt)
	if len(root.Quants) != 1 || root.Quants[0] != qs {
		t.Errorf("quants after removal = %v", root.Quants)
	}
	root.RemoveQuant(qt) // no-op
	if len(root.Quants) != 1 {
		t.Error("double removal changed the box")
	}
}
