package parser

import (
	"reflect"
	"testing"

	"decorr/internal/ast"
)

// The printer must emit SQL that re-parses to a structurally identical
// AST: parse(print(parse(q))) == parse(q).
func TestPrintParseRoundtrip(t *testing.T) {
	corpus := []string{
		"select a from t",
		"select distinct a, b as bee, t.* from t, u as v",
		"select a from t where a = 1 and b < 2 or not c >= 3",
		"select a from t where x is null and y is not null",
		"select a from t where s like 'a%' and s not like '_b'",
		"select a from t where n between 1 and 10 and m not between 2 and 3",
		"select a from t where c in (1, 2, 3) and d not in (4)",
		"select a from t where b in (select c from u) and e not in (select f from w)",
		"select a from t where exists (select 1 from u) and not exists (select 2 from w)",
		"select a from t where x > all (select y from u) and z = any (select w from v)",
		"select a, (select max(b) from u where u.k = t.k) from t",
		"select count(*), count(distinct a), sum(a + b * 2 - 1) from t group by c having count(*) > 1",
		"select a from t order by a desc, 2",
		"select a from t order by a limit 10",
		"select a from (select b from u) as d(a) where a <> 0",
		"select a from t union select b from u union all select c from v",
		"select a from t intersect all select b from u",
		"(select a from t except select b from u) union (select c from v)",
		"select -x, -3, 'it''s', 2.5, null from t",
		"select a from t left outer join u on t.k = u.k",
		"select a from t inner join u on t.k = u.k left join v on v.k = t.k, w",
		"select coalesce(a, 0) from t where abs(b) > 1",
		"select case when a = 1 then 'x' when a > 2 then 'y' else 'z' end from t",
		"select case when a = 1 then b end from t where case when c > 0 then true else false end",
		`select d.name from dept d where d.budget < 10000 and d.num_emps >
		   (select count(*) from emp e where d.building = e.building)`,
	}
	for _, sql := range corpus {
		orig, err := Parse(sql)
		if err != nil {
			t.Fatalf("corpus entry does not parse: %q: %v", sql, err)
		}
		printed := ast.FormatQuery(orig)
		back, err := Parse(printed)
		if err != nil {
			t.Errorf("printed SQL does not re-parse:\n  orig: %s\n  printed: %s\n  err: %v", sql, printed, err)
			continue
		}
		if !reflect.DeepEqual(orig, back) {
			t.Errorf("roundtrip changed the tree:\n  orig sql: %s\n  printed:  %s", sql, printed)
		}
	}
}

// Idempotence: printing the re-parsed tree yields the same text.
func TestPrintIsIdempotent(t *testing.T) {
	sql := `select a, count(*) from t where b in (select c from u where u.k = t.k)
	        group by a having count(*) >= 2 order by a`
	q1, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p1 := ast.FormatQuery(q1)
	q2, err := Parse(p1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := ast.FormatQuery(q2)
	if p1 != p2 {
		t.Errorf("printer not idempotent:\n1: %s\n2: %s", p1, p2)
	}
}
