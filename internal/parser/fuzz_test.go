package parser

import (
	"reflect"
	"testing"

	"decorr/internal/ast"
)

// FuzzParse asserts the parser never panics, and that anything it accepts
// survives a print→reparse roundtrip.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"select a from t",
		"select a, b from t where a = 1 and b in (select c from u)",
		"select count(*) from t group by b having count(*) > 2",
		"select case when a then b else c end from t",
		"select * from t left outer join u on t.a = u.b",
		"(select a from t) union all (select b from u) intersect select c from v",
		"create view v(a) as select b from t",
		"select 'str''ing', 2.5, -3 from t order by 1 desc",
		"select a from t where x like '%y' and z between 1 and 2",
		"select a from (select b from u) as d(a)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			return
		}
		printed := ast.FormatQuery(q)
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q, printed %q, reparse failed: %v", sql, printed, err)
		}
		if !reflect.DeepEqual(q, back) {
			t.Fatalf("roundtrip changed tree for %q (printed %q)", sql, printed)
		}
	})
}

// FuzzParseStatement covers the statement entry point.
func FuzzParseStatement(f *testing.F) {
	f.Add("create view v as select a from t")
	f.Add("select 1 from t;")
	f.Fuzz(func(t *testing.T, sql string) {
		_, _ = ParseStatement(sql) // must not panic
	})
}
