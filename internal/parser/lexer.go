// Package parser implements a hand-written lexer and recursive-descent
// parser for the SQL subset used by the paper's workloads.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string // keywords lower-cased; idents lower-cased; strings unquoted
	pos  int
}

var keywords = map[string]bool{
	"select": true, "distinct": true, "from": true, "where": true,
	"group": true, "by": true, "having": true, "order": true, "asc": true,
	"desc": true, "union": true, "intersect": true, "except": true,
	"all": true, "any": true, "some": true,
	"exists": true, "in": true, "not": true, "and": true, "or": true,
	"is": true, "null": true, "like": true, "between": true, "as": true,
	"true": true, "false": true, "create": true, "view": true,
	"case": true, "when": true, "then": true, "else": true, "end": true,
	"join": true, "left": true, "outer": true, "inner": true, "on": true,
	"limit": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexWord(start)
		case c >= '0' && c <= '9':
			if err := l.lexNumber(start); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

// Identifiers are ASCII; the lexer walks bytes, so admitting high bytes
// would silently treat Latin-1 letters as identifier characters while
// string literals pass arbitrary bytes through.
func isIdentStart(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || r == '#' || (r >= '0' && r <= '9')
}

func (l *lexer) lexWord(start int) {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	w := strings.ToLower(l.src[start:l.pos])
	kind := tokIdent
	if keywords[w] {
		kind = tokKeyword
	}
	l.toks = append(l.toks, token{kind: kind, text: w, pos: start})
}

func (l *lexer) lexNumber(start int) error {
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !isFloat {
			isFloat = true
			l.pos++
			continue
		}
		break
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	l.toks = append(l.toks, token{kind: kind, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("parser: unterminated string literal at offset %d", start)
}

func (l *lexer) lexSymbol(start int) error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		if two == "!=" {
			two = "<>"
		}
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: start})
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', '.', ';', '?':
		l.pos++
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	}
	return fmt.Errorf("parser: unexpected character %q at offset %d", c, start)
}
