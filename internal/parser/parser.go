package parser

import (
	"fmt"
	"strconv"

	"decorr/internal/ast"
)

// ParseStatement parses one top-level statement: a query expression or a
// CREATE VIEW definition.
func ParseStatement(sql string) (ast.Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	var stmt ast.Statement
	if p.atKeyword("create") {
		p.advance()
		if err := p.expectKeyword("view"); err != nil {
			return nil, err
		}
		cv := &ast.CreateView{}
		if !p.at(tokIdent, "") {
			return nil, p.errorf("expected view name, found %q", p.cur().text)
		}
		cv.Name = p.advance().text
		// Views live in the unqualified namespace; dotted names are how
		// system catalogs (sys.*) are addressed. Reject the qualifier here
		// with a direct message rather than letting it surface as a
		// confusing "expected keyword as" error downstream.
		if p.at(tokSymbol, ".") {
			return nil, p.errorf("view name %q cannot be qualified: dotted names are reserved for system catalogs", cv.Name)
		}
		if p.acceptSymbol("(") {
			for {
				if !p.at(tokIdent, "") {
					return nil, p.errorf("expected view column name, found %q", p.cur().text)
				}
				cv.Cols = append(cv.Cols, p.advance().text)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("as"); err != nil {
			return nil, err
		}
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		cv.Query = q
		stmt = cv
	} else {
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		stmt = q.(ast.Statement)
	}
	p.acceptSymbol(";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input starting at %q", p.cur().text)
	}
	return stmt, nil
}

// Parse parses one SQL query expression (SELECT block or UNION of blocks),
// optionally terminated by a semicolon.
func Parse(sql string) (ast.QueryExpr, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	q, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input starting at %q", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
	src  string
	// nparams counts `?` placeholders seen so far; each occurrence takes
	// the next zero-based index in text order.
	nparams int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) atKeyword(kw string) bool { return p.at(tokKeyword, kw) }

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptSymbol(s string) bool {
	if p.at(tokSymbol, s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errorf("expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("parser: %s (at offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

// parseQueryExpr handles UNION/EXCEPT chains (left-associative), with
// INTERSECT binding tighter per the SQL standard.
func (p *parser) parseQueryExpr() (ast.QueryExpr, error) {
	left, err := p.parseIntersectChain()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.SetOpKind
		switch {
		case p.acceptKeyword("union"):
			op = ast.Union
		case p.acceptKeyword("except"):
			op = ast.Except
		default:
			return left, nil
		}
		all := p.acceptKeyword("all")
		right, err := p.parseIntersectChain()
		if err != nil {
			return nil, err
		}
		left = &ast.SetOp{Op: op, All: all, Left: left, Right: right}
	}
}

func (p *parser) parseIntersectChain() (ast.QueryExpr, error) {
	left, err := p.parseQueryTerm()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("intersect") {
		all := p.acceptKeyword("all")
		right, err := p.parseQueryTerm()
		if err != nil {
			return nil, err
		}
		left = &ast.SetOp{Op: ast.Intersect, All: all, Left: left, Right: right}
	}
	return left, nil
}

// parseQueryTerm parses either a parenthesized query expression or a
// SELECT block.
func (p *parser) parseQueryTerm() (ast.QueryExpr, error) {
	if p.at(tokSymbol, "(") {
		// Could be "(query) union ..." — a parenthesized branch.
		save := p.i
		p.advance()
		if p.atKeyword("select") || p.at(tokSymbol, "(") {
			q, err := p.parseQueryExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return q, nil
		}
		p.i = save
	}
	return p.parseSelect()
}

func (p *parser) parseSelect() (*ast.Select, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	s := &ast.Select{Limit: -1}
	s.Distinct = p.acceptKeyword("distinct")
	p.acceptKeyword("all")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, fi)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := ast.OrderItem{Expr: e}
			if p.acceptKeyword("desc") {
				oi.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			s.OrderBy = append(s.OrderBy, oi)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		t := p.cur()
		if t.kind != tokInt {
			return nil, p.errorf("LIMIT expects an integer, found %q", t.text)
		}
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseSelectItem() (ast.SelectItem, error) {
	if p.acceptSymbol("*") {
		return ast.SelectItem{Star: true}, nil
	}
	// "ident.*"
	if p.at(tokIdent, "") && p.peek().kind == tokSymbol && p.peek().text == "." {
		if p.i+2 < len(p.toks) && p.toks[p.i+2].kind == tokSymbol && p.toks[p.i+2].text == "*" {
			q := p.advance().text
			p.advance() // .
			p.advance() // *
			return ast.SelectItem{Star: true, Qualifier: q}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	item := ast.SelectItem{Expr: e}
	if p.acceptKeyword("as") {
		if !p.at(tokIdent, "") {
			return item, p.errorf("expected alias after AS, found %q", p.cur().text)
		}
		item.Alias = p.advance().text
	} else if p.at(tokIdent, "") {
		item.Alias = p.advance().text
	}
	return item, nil
}

// parseFromItem parses a primary FROM element followed by any chain of
// [LEFT [OUTER]] [INNER] JOIN ... ON ... clauses (left-associative).
func (p *parser) parseFromItem() (ast.FromItem, error) {
	left, err := p.parseFromPrimary()
	if err != nil {
		return left, err
	}
	for {
		outer := false
		switch {
		case p.atKeyword("left"):
			p.advance()
			p.acceptKeyword("outer")
			if err := p.expectKeyword("join"); err != nil {
				return left, err
			}
			outer = true
		case p.atKeyword("inner"):
			p.advance()
			if err := p.expectKeyword("join"); err != nil {
				return left, err
			}
		case p.atKeyword("join"):
			p.advance()
		default:
			return left, nil
		}
		right, err := p.parseFromPrimary()
		if err != nil {
			return left, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return left, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return left, err
		}
		left = ast.FromItem{Join: &ast.JoinClause{Left: left, Right: right, On: cond, Outer: outer}}
	}
}

func (p *parser) parseFromPrimary() (ast.FromItem, error) {
	var fi ast.FromItem
	if p.at(tokSymbol, "(") {
		p.advance()
		q, err := p.parseQueryExpr()
		if err != nil {
			return fi, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return fi, err
		}
		fi.Sub = q
	} else if p.at(tokIdent, "") {
		name := p.advance().text
		// A qualified table name ("sys.active_queries"): the schema
		// qualifier joins the table part with a dot into one catalog name.
		if p.at(tokSymbol, ".") && p.peek().kind == tokIdent {
			p.advance() // .
			name = name + "." + p.advance().text
		}
		fi.Table = name
	} else {
		return fi, p.errorf("expected table name or subquery in FROM, found %q", p.cur().text)
	}
	p.acceptKeyword("as")
	if p.at(tokIdent, "") {
		fi.Alias = p.advance().text
		if p.at(tokSymbol, "(") {
			// column aliases: alias(c1, c2, ...)
			p.advance()
			for {
				if !p.at(tokIdent, "") {
					return fi, p.errorf("expected column alias, found %q", p.cur().text)
				}
				fi.ColAliases = append(fi.ColAliases, p.advance().text)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return fi, err
			}
		}
	}
	if fi.Sub != nil && fi.Alias == "" {
		return fi, p.errorf("derived table requires an alias")
	}
	return fi, nil
}

// Expression precedence, loosest first:
//
//	OR, AND, NOT, predicate (comparison/IS/LIKE/BETWEEN/IN/quantified),
//	additive, multiplicative, unary, primary.
func (p *parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.Bin{Op: ast.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.Bin{Op: ast.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (ast.Expr, error) {
	if p.acceptKeyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Not{E: e}, nil
	}
	return p.parsePredicate()
}

var cmpOps = map[string]ast.BinOp{
	"=": ast.OpEq, "<>": ast.OpNe, "<": ast.OpLt, "<=": ast.OpLe,
	">": ast.OpGt, ">=": ast.OpGe,
}

func (p *parser) parsePredicate() (ast.Expr, error) {
	if p.atKeyword("exists") {
		p.advance()
		sub, err := p.parseParenQuery()
		if err != nil {
			return nil, err
		}
		return &ast.Exists{Sub: sub}, nil
	}
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// comparison with optional ANY/ALL quantifier
	if p.cur().kind == tokSymbol {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.advance()
			if p.atKeyword("any") || p.atKeyword("some") || p.atKeyword("all") {
				all := p.atKeyword("all")
				p.advance()
				sub, err := p.parseParenQuery()
				if err != nil {
					return nil, err
				}
				return &ast.QuantCmp{Op: op, E: l, All: all, Sub: sub}, nil
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &ast.Bin{Op: op, L: l, R: r}, nil
		}
	}
	negate := false
	if p.atKeyword("not") {
		// "x NOT IN/LIKE/BETWEEN ..."
		nxt := p.peek()
		if nxt.kind == tokKeyword && (nxt.text == "in" || nxt.text == "like" || nxt.text == "between") {
			p.advance()
			negate = true
		}
	}
	switch {
	case p.acceptKeyword("is"):
		neg := p.acceptKeyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return &ast.IsNull{E: l, Negate: neg}, nil
	case p.acceptKeyword("like"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &ast.Like{E: l, Pattern: pat, Negate: negate}, nil
	case p.acceptKeyword("between"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &ast.Between{E: l, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.acceptKeyword("in"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if p.atKeyword("select") || p.at(tokSymbol, "(") {
			sub, err := p.parseQueryExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &ast.InSubquery{E: l, Sub: sub, Negate: negate}, nil
		}
		var list []ast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &ast.InList{E: l, List: list, Negate: negate}, nil
	}
	if negate {
		return nil, p.errorf("dangling NOT")
	}
	return l, nil
}

func (p *parser) parseParenQuery() (ast.QueryExpr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	q, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseAdditive() (ast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinOp
		switch {
		case p.at(tokSymbol, "+"):
			op = ast.OpAdd
		case p.at(tokSymbol, "-"):
			op = ast.OpSub
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &ast.Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinOp
		switch {
		case p.at(tokSymbol, "*"):
			op = ast.OpMul
		case p.at(tokSymbol, "/"):
			op = ast.OpDiv
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Neg{E: e}, nil
	}
	p.acceptSymbol("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", t.text)
		}
		return &ast.IntLit{V: v}, nil
	case tokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad float literal %q", t.text)
		}
		return &ast.FloatLit{V: v}, nil
	case tokString:
		p.advance()
		return &ast.StringLit{V: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "case":
			return p.parseCase()
		case "null":
			p.advance()
			return &ast.NullLit{}, nil
		case "true":
			p.advance()
			return &ast.BoolLit{V: true}, nil
		case "false":
			p.advance()
			return &ast.BoolLit{V: false}, nil
		}
	case tokSymbol:
		if t.text == "?" {
			p.advance()
			idx := p.nparams
			p.nparams++
			return &ast.Param{Idx: idx}, nil
		}
		if t.text == "(" {
			// scalar subquery or parenthesized expression
			if p.peek().kind == tokKeyword && p.peek().text == "select" {
				p.advance()
				sub, err := p.parseQueryExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &ast.ScalarSubquery{Sub: sub}, nil
			}
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		name := p.advance().text
		if p.at(tokSymbol, "(") {
			return p.parseFuncCall(name)
		}
		if p.at(tokSymbol, ".") {
			p.advance()
			if !p.at(tokIdent, "") {
				return nil, p.errorf("expected column name after %q.", name)
			}
			col := p.advance().text
			return &ast.ColRef{Qualifier: name, Name: col}, nil
		}
		return &ast.ColRef{Name: name}, nil
	}
	return nil, p.errorf("unexpected token %q", t.text)
}

// parseCase parses both CASE forms; "CASE operand WHEN v THEN r ..." is
// desugared into the searched form with equality conditions.
func (p *parser) parseCase() (ast.Expr, error) {
	if err := p.expectKeyword("case"); err != nil {
		return nil, err
	}
	var operand ast.Expr
	if !p.atKeyword("when") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		operand = e
	}
	c := &ast.CaseExpr{}
	for p.acceptKeyword("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if operand != nil {
			cond = &ast.Bin{Op: ast.OpEq, L: operand, R: cond}
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.WhenClause{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseFuncCall(name string) (ast.Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	f := &ast.FuncCall{Name: name}
	if p.acceptSymbol("*") {
		f.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	f.Distinct = p.acceptKeyword("distinct")
	if !p.at(tokSymbol, ")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return f, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
