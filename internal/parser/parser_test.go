package parser

import (
	"strings"
	"testing"

	"decorr/internal/ast"
)

func parse(t *testing.T, sql string) ast.QueryExpr {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return q
}

func sel(t *testing.T, q ast.QueryExpr) *ast.Select {
	t.Helper()
	s, ok := q.(*ast.Select)
	if !ok {
		t.Fatalf("expected *ast.Select, got %T", q)
	}
	return s
}

func TestBasicSelect(t *testing.T) {
	s := sel(t, parse(t, "select a, b as bee from t where a = 1"))
	if len(s.Items) != 2 || s.Items[1].Alias != "bee" {
		t.Fatalf("items = %+v", s.Items)
	}
	if len(s.From) != 1 || s.From[0].Table != "t" {
		t.Fatalf("from = %+v", s.From)
	}
	bin, ok := s.Where.(*ast.Bin)
	if !ok || bin.Op != ast.OpEq {
		t.Fatalf("where = %#v", s.Where)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	s := sel(t, parse(t, "SELECT A FROM T WHERE B LIKE 'X%'"))
	if s.From[0].Table != "t" {
		t.Errorf("table name not lower-cased: %q", s.From[0].Table)
	}
	if _, ok := s.Where.(*ast.Like); !ok {
		t.Errorf("where = %#v", s.Where)
	}
	// But string literals keep their case.
	lk := s.Where.(*ast.Like)
	if lk.Pattern.(*ast.StringLit).V != "X%" {
		t.Errorf("literal case mangled: %#v", lk.Pattern)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	s := sel(t, parse(t, "select a + b * c - d from t"))
	// ((a + (b*c)) - d)
	top := s.Items[0].Expr.(*ast.Bin)
	if top.Op != ast.OpSub {
		t.Fatalf("top op = %v", top.Op)
	}
	add := top.L.(*ast.Bin)
	if add.Op != ast.OpAdd {
		t.Fatalf("left op = %v", add.Op)
	}
	if mul := add.R.(*ast.Bin); mul.Op != ast.OpMul {
		t.Fatalf("inner op = %v", mul.Op)
	}
}

func TestBooleanPrecedence(t *testing.T) {
	s := sel(t, parse(t, "select a from t where x = 1 or y = 2 and z = 3"))
	or := s.Where.(*ast.Bin)
	if or.Op != ast.OpOr {
		t.Fatalf("top = %v (AND must bind tighter than OR)", or.Op)
	}
	and := or.R.(*ast.Bin)
	if and.Op != ast.OpAnd {
		t.Fatalf("right = %v", and.Op)
	}
}

func TestNotVariants(t *testing.T) {
	s := sel(t, parse(t, "select a from t where not x = 1 and y not in (1, 2) and z not like 'a%' and w not between 1 and 2"))
	conj := s.Where.(*ast.Bin)
	_ = conj
	found := map[string]bool{}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.Bin:
			walk(x.L)
			walk(x.R)
		case *ast.Not:
			found["not"] = true
		case *ast.InList:
			if x.Negate {
				found["notin"] = true
			}
		case *ast.Like:
			if x.Negate {
				found["notlike"] = true
			}
		case *ast.Between:
			if x.Negate {
				found["notbetween"] = true
			}
		}
	}
	walk(s.Where)
	for _, k := range []string{"not", "notin", "notlike", "notbetween"} {
		if !found[k] {
			t.Errorf("missing %s in %#v", k, s.Where)
		}
	}
}

func TestSubqueries(t *testing.T) {
	s := sel(t, parse(t, `
		select a from t
		where exists (select 1 from u)
		  and b in (select c from v)
		  and d = (select max(e) from w)
		  and f > all (select g from x)
		  and h < any (select i from y)`))
	kinds := map[string]int{}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.Bin:
			walk(x.L)
			walk(x.R)
		case *ast.Exists:
			kinds["exists"]++
		case *ast.InSubquery:
			kinds["in"]++
		case *ast.ScalarSubquery:
			kinds["scalar"]++
		case *ast.QuantCmp:
			if x.All {
				kinds["all"]++
			} else {
				kinds["any"]++
			}
		}
	}
	walk(s.Where)
	for _, k := range []string{"exists", "in", "scalar", "all", "any"} {
		if kinds[k] != 1 {
			t.Errorf("%s parsed %d times", k, kinds[k])
		}
	}
}

func TestUnionAssociativityAndParens(t *testing.T) {
	q := parse(t, "select a from t union all select a from u union select a from v")
	top, ok := q.(*ast.SetOp)
	if !ok || top.All {
		t.Fatalf("top = %#v (left-assoc: (t UNION ALL u) UNION v)", q)
	}
	left, ok := top.Left.(*ast.SetOp)
	if !ok || !left.All {
		t.Fatalf("left = %#v", top.Left)
	}
	// Parenthesized branches.
	q = parse(t, "(select a from t) union (select a from u)")
	if _, ok := q.(*ast.SetOp); !ok {
		t.Fatalf("parenthesized union = %#v", q)
	}
}

func TestDerivedTableWithColumnAliases(t *testing.T) {
	s := sel(t, parse(t, "select x from (select a, b from t) as d(x, y) where y > 0"))
	fi := s.From[0]
	if fi.Sub == nil || fi.Alias != "d" || len(fi.ColAliases) != 2 {
		t.Fatalf("from item = %+v", fi)
	}
}

func TestGroupByHavingOrderBy(t *testing.T) {
	s := sel(t, parse(t, `
		select b, count(*) from t
		group by b having count(*) > 1
		order by 2 desc, b`))
	if len(s.GroupBy) != 1 || s.Having == nil || len(s.OrderBy) != 2 {
		t.Fatalf("select = %+v", s)
	}
	if !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("order dirs = %+v", s.OrderBy)
	}
}

func TestAggregateForms(t *testing.T) {
	s := sel(t, parse(t, "select count(*), count(distinct a), sum(a + 1) from t"))
	c0 := s.Items[0].Expr.(*ast.FuncCall)
	if !c0.Star {
		t.Error("count(*) lost its star")
	}
	c1 := s.Items[1].Expr.(*ast.FuncCall)
	if !c1.Distinct {
		t.Error("count(distinct a) lost distinct")
	}
}

func TestStars(t *testing.T) {
	s := sel(t, parse(t, "select *, t.* from t"))
	if !s.Items[0].Star || s.Items[0].Qualifier != "" {
		t.Errorf("item0 = %+v", s.Items[0])
	}
	if !s.Items[1].Star || s.Items[1].Qualifier != "t" {
		t.Errorf("item1 = %+v", s.Items[1])
	}
}

func TestLiteralsAndComments(t *testing.T) {
	s := sel(t, parse(t, `
		-- leading comment
		select 1, 2.5, 'it''s', null from t -- trailing`))
	if v := s.Items[0].Expr.(*ast.IntLit); v.V != 1 {
		t.Errorf("int = %+v", v)
	}
	if v := s.Items[1].Expr.(*ast.FloatLit); v.V != 2.5 {
		t.Errorf("float = %+v", v)
	}
	if v := s.Items[2].Expr.(*ast.StringLit); v.V != "it's" {
		t.Errorf("string = %+v", v)
	}
	if _, ok := s.Items[3].Expr.(*ast.NullLit); !ok {
		t.Errorf("null = %#v", s.Items[3].Expr)
	}
}

func TestNegativeNumbers(t *testing.T) {
	s := sel(t, parse(t, "select -3, -x from t where a <> -1"))
	if _, ok := s.Items[0].Expr.(*ast.Neg); !ok {
		t.Errorf("unary minus = %#v", s.Items[0].Expr)
	}
}

func TestPaperQueriesParse(t *testing.T) {
	for name, sql := range map[string]string{
		"example": `
			Select D.name From Dept D
			Where D.budget < 10000 and D.num_emps >
			(Select Count(*) From Emp E Where D.building = E.building)`,
		"qualified": "select t.a from s t where t.b = 1",
	} {
		if _, err := Parse(sql); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"select",
		"select a",      // missing FROM
		"select a from", // missing table
		"select a from t where",
		"select a from t where a = ",
		"select a from (select b from u)", // derived table needs alias
		"select a from t group",
		"select a from t order by",
		"select 'unterminated from t",
		"select a ~ b from t",
		"select a from t; select b from u", // trailing statement
		"select a from t where x not 5",    // dangling NOT
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

// Dotted names are legal in FROM (they address system catalogs) but not
// as view names; the qualified-view rejection is a direct, deterministic
// message rather than a downstream "expected keyword as" confusion.
func TestDottedNames(t *testing.T) {
	stmt, err := ParseStatement("select metrics.name from sys.metrics where metrics.value > 0")
	if err != nil {
		t.Fatalf("dotted FROM name: %v", err)
	}
	sel := stmt.(*ast.Select)
	if got := sel.From[0].Table; got != "sys.metrics" {
		t.Errorf("FROM table = %q, want %q", got, "sys.metrics")
	}

	for _, sql := range []string{
		"create view sys.shadow as select name from emp",
		"create view a.b(c) as select c from t",
	} {
		_, err := ParseStatement(sql)
		if err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error", sql)
			continue
		}
		if !strings.Contains(err.Error(), "cannot be qualified") {
			t.Errorf("ParseStatement(%q) error %q lacks the qualified-name message", sql, err)
		}
	}
}

func TestSemicolonTolerated(t *testing.T) {
	if _, err := Parse("select a from t;"); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
}

func TestLexerOffsetsInErrors(t *testing.T) {
	_, err := Parse("select a from t where !")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("error should carry an offset: %v", err)
	}
}

func TestParseQualifiedTableName(t *testing.T) {
	q, err := Parse("SELECT name, value FROM sys.metrics WHERE value > 0")
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := q.(*ast.Select)
	if !ok {
		t.Fatalf("not a select: %T", q)
	}
	if got := sel.From[0].Table; got != "sys.metrics" {
		t.Fatalf("table = %q, want %q", got, "sys.metrics")
	}
	// The qualified name must survive a print→reparse round trip.
	q2, err := Parse(ast.FormatQuery(q))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if got := q2.(*ast.Select).From[0].Table; got != "sys.metrics" {
		t.Fatalf("round-tripped table = %q", got)
	}
	// An alias still parses after a qualified name.
	q3, err := Parse("SELECT m.value FROM sys.metrics AS m")
	if err != nil {
		t.Fatal(err)
	}
	fi := q3.(*ast.Select).From[0]
	if fi.Table != "sys.metrics" || fi.Alias != "m" {
		t.Fatalf("table/alias = %q/%q", fi.Table, fi.Alias)
	}
}
