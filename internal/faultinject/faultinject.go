// Package faultinject is a seeded, build-tag-free fault-injection registry
// used to prove the engine's failure-handling contract: under injected
// errors, panics, and latency at storage scans, hash builds, and morsel
// claims, every query either returns correct results or a clean typed
// error — never a wrong answer, a hang, or a process crash.
//
// The registry is always compiled in (no build tags), and the disabled hot
// path costs exactly one atomic pointer load per call site, so production
// code and the differential fault sweep run the same binary. Injection
// decisions are a pure function of (seed, point, hit index): a sweep run
// is reproducible from its seed alone, and two runs of the same seed
// inject the same number of faults at every site.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Point identifies one injection site in the engine.
type Point string

// The instrumented sites. Scans cover every base-table read the executor
// performs (storage.Table.Scan); hash builds cover join and subquery hash
// tables; morsel claims cover every unit of work the parallel scheduler
// hands out — including the degenerate single-worker inline loop, so
// injection coverage does not depend on Options.Workers.
const (
	StorageScan Point = "storage.scan"
	HashBuild   Point = "exec.hash-build"
	MorselClaim Point = "exec.morsel-claim"
	// WireRead and WireWrite extend the contract to the serving layer:
	// they cover every protocol frame read and write (package wire). An
	// injected error at WireWrite tears the frame mid-write; at WireRead
	// it abandons the read. In both cases the session closes the
	// connection, so the peer observes exactly what a network reset or
	// a torn TCP stream produces. Latency rules model a slow network.
	WireRead  Point = "wire.read"
	WireWrite Point = "wire.write"
)

// ErrInjected marks every error produced by the registry. Harnesses
// classify it with errors.Is as a "clean" failure: the fault was delivered
// as a typed error instead of a wrong answer or a crash.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule configures one site. Each Every field selects roughly one out of
// that many hits (seeded, deterministic); zero disables that behavior.
type Rule struct {
	// ErrEvery injects an ErrInjected-wrapped error on ~1/ErrEvery hits.
	ErrEvery int
	// PanicEvery injects a panic on ~1/PanicEvery hits — exercising the
	// scheduler's morsel recovery and the engine's boundary recovery.
	PanicEvery int
	// LatencyEvery sleeps Latency on ~1/LatencyEvery hits — exercising
	// deadline enforcement under slow operators.
	LatencyEvery int
	Latency      time.Duration
}

// Plan is a full injection configuration: a seed plus per-site rules.
type Plan struct {
	Seed  int64
	Rules map[Point]Rule
}

// state is the installed plan plus per-site hit counters.
type state struct {
	plan Plan
	hits map[Point]*atomic.Int64
}

var active atomic.Pointer[state]

// Enable installs a plan process-wide, replacing any previous one. Hit
// counters restart from zero.
func Enable(p Plan) {
	s := &state{plan: p, hits: make(map[Point]*atomic.Int64, len(p.Rules))}
	for pt := range p.Rules {
		s.hits[pt] = &atomic.Int64{}
	}
	active.Store(s)
}

// Disable removes the installed plan; every Check becomes a no-op again.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is installed.
func Enabled() bool { return active.Load() != nil }

// Hits reports how many times the point was checked under the current
// plan (zero when disabled or the point has no rule).
func Hits(pt Point) int64 {
	s := active.Load()
	if s == nil {
		return 0
	}
	if c, ok := s.hits[pt]; ok {
		return c.Load()
	}
	return 0
}

// splitmix64 is the standard 64-bit avalanche mixer — enough to turn
// (seed, point, hit) into an unbiased selection without package state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func pointHash(pt Point) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(pt); i++ {
		h ^= uint64(pt[i])
		h *= 1099511628211
	}
	return h
}

// selected reports whether hit n at pt fires a 1/every event. The salt
// separates the error, panic, and latency streams at one site.
func (s *state) selected(pt Point, n int64, every int, salt uint64) bool {
	if every <= 0 {
		return false
	}
	h := splitmix64(uint64(s.plan.Seed) ^ pointHash(pt) ^ uint64(n)*0x9e3779b97f4a7c15 ^ salt)
	return h%uint64(every) == 0
}

// Check is the injection site hook. With no plan installed it is one
// atomic load. With a plan, it may sleep (latency rule), panic (panic
// rule), or return an error wrapping ErrInjected (error rule), decided
// deterministically from the seed and this site's hit index.
func Check(pt Point) error {
	s := active.Load()
	if s == nil {
		return nil
	}
	r, ok := s.plan.Rules[pt]
	if !ok {
		return nil
	}
	n := s.hits[pt].Add(1) - 1
	if s.selected(pt, n, r.LatencyEvery, 0x1a7e) {
		time.Sleep(r.Latency)
	}
	if s.selected(pt, n, r.PanicEvery, 0x9a1c) {
		panic(fmt.Sprintf("faultinject: injected panic at %s (hit %d)", pt, n))
	}
	if s.selected(pt, n, r.ErrEvery, 0xe44) {
		return fmt.Errorf("%w at %s (hit %d)", ErrInjected, pt, n)
	}
	return nil
}
