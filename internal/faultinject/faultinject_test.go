package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable()")
	}
	for i := 0; i < 100; i++ {
		if err := Check(StorageScan); err != nil {
			t.Fatalf("disabled Check returned %v", err)
		}
	}
	if n := Hits(StorageScan); n != 0 {
		t.Fatalf("disabled Hits = %d, want 0", n)
	}
}

func TestUnruledPointIsNoop(t *testing.T) {
	Enable(Plan{Seed: 1, Rules: map[Point]Rule{StorageScan: {ErrEvery: 1}}})
	defer Disable()
	for i := 0; i < 50; i++ {
		if err := Check(HashBuild); err != nil {
			t.Fatalf("unruled point injected %v", err)
		}
	}
}

// collectErrs runs n Checks and returns which hit indexes errored.
func collectErrs(pt Point, n int) []int {
	var idx []int
	for i := 0; i < n; i++ {
		if err := Check(pt); err != nil {
			idx = append(idx, i)
		}
	}
	return idx
}

func TestSeededDeterminism(t *testing.T) {
	plan := Plan{Seed: 99, Rules: map[Point]Rule{StorageScan: {ErrEvery: 5}}}
	Enable(plan)
	first := collectErrs(StorageScan, 2000)
	Enable(plan) // re-Enable resets hit counters
	second := collectErrs(StorageScan, 2000)
	Disable()
	if len(first) == 0 {
		t.Fatal("ErrEvery=5 over 2000 hits injected nothing")
	}
	if len(first) != len(second) {
		t.Fatalf("same seed, different injection counts: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed, different hit %d: %d vs %d", i, first[i], second[i])
		}
	}
	// The rate is roughly 1/5; a uniform mixer stays well inside 2x bounds.
	if len(first) < 200 || len(first) > 800 {
		t.Fatalf("ErrEvery=5 injected %d/2000, far from ~400", len(first))
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	Enable(Plan{Seed: 1, Rules: map[Point]Rule{StorageScan: {ErrEvery: 4}}})
	a := collectErrs(StorageScan, 500)
	Enable(Plan{Seed: 2, Rules: map[Point]Rule{StorageScan: {ErrEvery: 4}}})
	b := collectErrs(StorageScan, 500)
	Disable()
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical injection streams")
	}
}

func TestErrorIsTyped(t *testing.T) {
	Enable(Plan{Seed: 7, Rules: map[Point]Rule{HashBuild: {ErrEvery: 1}}})
	defer Disable()
	err := Check(HashBuild)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v is not ErrInjected", err)
	}
	if Hits(HashBuild) != 1 {
		t.Fatalf("Hits = %d, want 1", Hits(HashBuild))
	}
}

func TestPanicRule(t *testing.T) {
	Enable(Plan{Seed: 7, Rules: map[Point]Rule{MorselClaim: {PanicEvery: 1}}})
	defer Disable()
	defer func() {
		if recover() == nil {
			t.Error("PanicEvery=1 did not panic")
		}
	}()
	_ = Check(MorselClaim)
}

func TestLatencyRule(t *testing.T) {
	Enable(Plan{Seed: 7, Rules: map[Point]Rule{StorageScan: {LatencyEvery: 1, Latency: 5 * time.Millisecond}}})
	defer Disable()
	start := time.Now()
	if err := Check(StorageScan); err != nil {
		t.Fatalf("latency-only rule returned error %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("LatencyEvery=1 slept %v, want >= 5ms", d)
	}
}
