package sqltypes

import (
	"math"
	"testing"
)

// TestCompareMixedNumeric pins the ordering of mixed int/float operand
// pairs, including integers beyond 2^53 where promotion to float64 would
// round and report false equality.
func TestCompareMixedNumeric(t *testing.T) {
	const big = int64(1) << 62 // not representable as float64
	cases := []struct {
		name string
		a, b Value
		c    int
		ok   bool
	}{
		{"int=int", NewInt(3), NewInt(3), 0, true},
		{"int<float", NewInt(3), NewFloat(3.5), -1, true},
		{"int>float", NewInt(4), NewFloat(3.5), 1, true},
		{"int=float", NewInt(3), NewFloat(3.0), 0, true},
		{"float<int", NewFloat(2.5), NewInt(3), -1, true},
		{"negfrac", NewInt(-3), NewFloat(-3.5), 1, true},
		{"negfrac2", NewInt(-4), NewFloat(-3.5), -1, true},
		{"zero=negzero", NewInt(0), NewFloat(math.Copysign(0, -1)), 0, true},
		// 2^62 rounds to itself? No: 2^62 is a power of two, exactly
		// representable. Use 2^62+1, which rounds to 2^62 under float64.
		{"bigint>roundedfloat", NewInt(big + 1), NewFloat(float64(big)), 1, true},
		{"bigint=exactfloat", NewInt(big), NewFloat(float64(big)), 0, true},
		{"roundedfloat<bigint", NewFloat(float64(big)), NewInt(big + 1), -1, true},
		// 2^53+1 is the smallest positive integer float64 cannot hold.
		{"2^53+1 vs 2^53.0", NewInt(1<<53 + 1), NewFloat(1 << 53), 1, true},
		{"maxint<+inf", NewInt(math.MaxInt64), NewFloat(math.Inf(1)), -1, true},
		{"minint>-inf", NewInt(math.MinInt64), NewFloat(math.Inf(-1)), 1, true},
		{"minint=-2^63.0", NewInt(math.MinInt64), NewFloat(-9223372036854775808.0), 0, true},
		{"int-nan", NewInt(1), NewFloat(math.NaN()), 0, false},
		{"nan-nan", NewFloat(math.NaN()), NewFloat(math.NaN()), 0, false},
		{"null", Null, NewInt(1), 0, false},
		{"crosskind", NewInt(1), NewString("1"), 0, false},
	}
	for _, tc := range cases {
		c, ok := Compare(tc.a, tc.b)
		if c != tc.c || ok != tc.ok {
			t.Errorf("%s: Compare(%v, %v) = (%d, %v), want (%d, %v)",
				tc.name, tc.a, tc.b, c, ok, tc.c, tc.ok)
		}
	}
}

// TestCompareKeyConsistency: Identical(a, b) must hold exactly when the
// canonical Key encodings agree — hash joins and grouping rely on it.
func TestCompareKeyConsistency(t *testing.T) {
	vals := []Value{
		Null, NewInt(0), NewInt(3), NewInt(-3), NewFloat(3), NewFloat(3.5),
		NewFloat(math.Copysign(0, -1)), NewFloat(0),
		NewInt(1<<53 + 1), NewFloat(1 << 53), NewInt(1 << 53),
		NewInt(1<<62 + 1), NewFloat(1 << 62), NewInt(1 << 62),
		NewInt(math.MaxInt64), NewInt(math.MinInt64),
		NewFloat(-9223372036854775808.0),
		NewString("3"), NewString(""), NewBool(true), NewBool(false),
	}
	for _, a := range vals {
		for _, b := range vals {
			id := Identical(a, b)
			keyEq := Key([]Value{a}) == Key([]Value{b})
			if id != keyEq {
				t.Errorf("Identical(%v, %v) = %v but key equality = %v", a, b, id, keyEq)
			}
		}
	}
}

// TestCompareAvgVsInt mimics the executor comparing an AVG result (always
// DOUBLE) against an integer column.
func TestCompareAvgVsInt(t *testing.T) {
	avg := func(sum, n int64) Value { return NewFloat(float64(sum) / float64(n)) }
	cases := []struct {
		name   string
		column Value
		avg    Value
		c      int
		ok     bool
	}{
		{"col<avg", NewInt(2), avg(5, 2), -1, true}, // 2 vs 2.5
		{"col>avg", NewInt(3), avg(5, 2), 1, true},
		{"col=avg", NewInt(3), avg(6, 2), 0, true},
		{"col=avg-exact-third", NewInt(1), avg(10, 3), -1, true}, // 1 vs 3.33
		{"null-col", Null, avg(6, 2), 0, false},
	}
	for _, tc := range cases {
		c, ok := Compare(tc.column, tc.avg)
		if c != tc.c || ok != tc.ok {
			t.Errorf("%s: Compare(%v, %v) = (%d, %v), want (%d, %v)",
				tc.name, tc.column, tc.avg, c, ok, tc.c, tc.ok)
		}
	}
	// Antisymmetry on the mixed pairs.
	for _, tc := range cases {
		c1, ok1 := Compare(tc.column, tc.avg)
		c2, ok2 := Compare(tc.avg, tc.column)
		if ok1 != ok2 || c1 != -c2 {
			t.Errorf("%s: Compare not antisymmetric: (%d,%v) vs (%d,%v)", tc.name, c1, ok1, c2, ok2)
		}
	}
}
