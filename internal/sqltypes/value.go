// Package sqltypes implements the SQL value domain used throughout the
// engine: typed datums, NULL, three-valued logic, null-aware comparison,
// arithmetic with numeric promotion, and hashable encodings for joins and
// grouping.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

const (
	// KindNull is the SQL NULL marker; it carries no payload.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float (SQL DOUBLE/DECIMAL stand-in).
	KindFloat
	// KindString is a variable-length character string.
	KindString
	// KindBool is a boolean (used for predicate results, not storage).
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single SQL datum. The zero Value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// Null is the SQL NULL value.
var Null = Value{K: KindNull}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewFloat returns a floating-point value.
func NewFloat(f float64) Value { return Value{K: KindFloat, F: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{K: KindBool, B: b} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// IsNumeric reports whether v is an integer or float.
func (v Value) IsNumeric() bool { return v.K == KindInt || v.K == KindFloat }

// AsFloat converts a numeric value to float64. It panics on non-numerics;
// callers must check IsNumeric (or rely on expression type checking).
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	}
	panic(fmt.Sprintf("sqltypes: AsFloat on %s", v.K))
}

// String renders the value the way the CLI prints result rows.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Tri is a three-valued logic truth value.
type Tri int8

const (
	// False is definitely false.
	False Tri = -1
	// Unknown is the SQL UNKNOWN truth value (NULL comparison result).
	Unknown Tri = 0
	// True is definitely true.
	True Tri = 1
)

// String returns FALSE/UNKNOWN/TRUE.
func (t Tri) String() string {
	switch t {
	case False:
		return "FALSE"
	case True:
		return "TRUE"
	}
	return "UNKNOWN"
}

// TriOf converts a Go bool to a Tri.
func TriOf(b bool) Tri {
	if b {
		return True
	}
	return False
}

// And is three-valued conjunction.
func (t Tri) And(o Tri) Tri {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or is three-valued disjunction.
func (t Tri) Or(o Tri) Tri {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// Not is three-valued negation.
func (t Tri) Not() Tri { return -t }

// Compare returns the ordering of a and b (-1, 0, +1) and ok=false when the
// comparison is NULL-valued (either side NULL) or the values are not
// comparable. Numeric kinds compare cross-kind with promotion to float.
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.K == KindInt && b.K == KindInt {
			switch {
			case a.I < b.I:
				return -1, true
			case a.I > b.I:
				return 1, true
			}
			return 0, true
		}
		// Mixed int/float: compare exactly. Promoting the integer to
		// float64 would round values beyond 2^53 and disagree with the
		// exact AppendKey encoding (Identical must match Key equality).
		if a.K == KindInt {
			c, ok := compareIntFloat(a.I, b.F)
			return c, ok
		}
		if b.K == KindInt {
			c, ok := compareIntFloat(b.I, a.F)
			return -c, ok
		}
		af, bf := a.F, b.F
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		}
		if af != bf { // NaN on either side: incomparable
			return 0, false
		}
		return 0, true
	}
	if a.K != b.K {
		return 0, false
	}
	switch a.K {
	case KindString:
		return strings.Compare(a.S, b.S), true
	case KindBool:
		ai, bi := 0, 0
		if a.B {
			ai = 1
		}
		if b.B {
			bi = 1
		}
		return ai - bi, true
	}
	return 0, false
}

// compareIntFloat orders an int64 against a float64 without converting the
// integer to float (which rounds beyond 2^53). ok=false only for NaN.
func compareIntFloat(i int64, f float64) (int, bool) {
	if math.IsNaN(f) {
		return 0, false
	}
	// Every int64 is < 2^63 ≤ f here; the negative bound -2^63 is itself
	// exactly representable, so values below it are strictly smaller.
	if f >= 9223372036854775808.0 { // 2^63
		return -1, true
	}
	if f < -9223372036854775808.0 { // < -2^63
		return 1, true
	}
	t := int64(f) // exact truncation toward zero: |f| < 2^63
	switch {
	case i < t:
		return -1, true
	case i > t:
		return 1, true
	}
	// Integer parts agree; the fraction decides.
	frac := f - float64(t)
	switch {
	case frac > 0:
		return -1, true
	case frac < 0:
		return 1, true
	}
	return 0, true
}

// Equal reports SQL equality as a Tri (Unknown when either side is NULL).
func Equal(a, b Value) Tri {
	c, ok := Compare(a, b)
	if !ok {
		return Unknown
	}
	return TriOf(c == 0)
}

// Identical reports whether two values are the same datum, treating NULL as
// identical to NULL. This is the grouping / DISTINCT notion of equality,
// not the WHERE-clause notion.
func Identical(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	c, ok := Compare(a, b)
	return ok && c == 0
}

// OrderCompare is a total order over all values for sorting and histogram
// construction: NULL sorts first, comparable values by Compare, and
// incomparable cross-kind values by kind.
func OrderCompare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if c, ok := Compare(a, b); ok {
		return c
	}
	return int(a.K) - int(b.K)
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

const (
	// OpAdd is addition.
	OpAdd ArithOp = iota
	// OpSub is subtraction.
	OpSub
	// OpMul is multiplication.
	OpMul
	// OpDiv is division (always float; SQL integer division is not modeled).
	OpDiv
)

// String returns the operator symbol.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// Arith applies op with SQL NULL propagation and numeric promotion.
// Non-numeric operands yield an error.
func Arith(op ArithOp, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("sqltypes: %s applied to %s and %s", op, a.K, b.K)
	}
	if a.K == KindInt && b.K == KindInt && op != OpDiv {
		switch op {
		case OpAdd:
			return NewInt(a.I + b.I), nil
		case OpSub:
			return NewInt(a.I - b.I), nil
		case OpMul:
			return NewInt(a.I * b.I), nil
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch op {
	case OpAdd:
		return NewFloat(af + bf), nil
	case OpSub:
		return NewFloat(af - bf), nil
	case OpMul:
		return NewFloat(af * bf), nil
	case OpDiv:
		if bf == 0 {
			return Null, fmt.Errorf("sqltypes: division by zero")
		}
		return NewFloat(af / bf), nil
	}
	return Null, fmt.Errorf("sqltypes: unknown arith op %d", op)
}

// Coalesce returns the first non-NULL argument, or NULL if all are NULL.
func Coalesce(vs ...Value) Value {
	for _, v := range vs {
		if !v.IsNull() {
			return v
		}
	}
	return Null
}

// AppendKey appends the canonical, injective encoding of each value to
// dst in order and returns the extended slice. Two value sequences produce
// the same encoding iff they are elementwise Identical. Numeric kinds
// normalize so that INT 3 and DOUBLE 3.0 encode identically (they compare
// equal). Reusing dst across calls is the hot-path idiom: the executor's
// join, grouping, and DISTINCT keys encode into a scratch buffer and probe
// maps via string(buf) without allocating.
func AppendKey(dst []byte, vals ...Value) []byte {
	for _, v := range vals {
		dst = appendValueKey(dst, v)
	}
	return dst
}

func appendValueKey(dst []byte, v Value) []byte {
	switch v.K {
	case KindNull:
		return append(dst, 'n')
	case KindInt:
		// Encode integers through the float path only when the value is
		// exactly representable; otherwise keep full integer precision.
		f := float64(v.I)
		if int64(f) == v.I {
			return appendFloatKey(dst, f)
		}
		dst = append(dst, 'i')
		return strconv.AppendInt(dst, v.I, 10)
	case KindFloat:
		return appendFloatKey(dst, v.F)
	case KindString:
		dst = append(dst, 's')
		dst = strconv.AppendInt(dst, int64(len(v.S)), 10)
		dst = append(dst, ':')
		return append(dst, v.S...)
	case KindBool:
		if v.B {
			return append(dst, 'T')
		}
		return append(dst, 'F')
	}
	return append(dst, '?')
}

func appendFloatKey(dst []byte, f float64) []byte {
	dst = append(dst, 'f')
	bits := math.Float64bits(f)
	if f == 0 {
		bits = 0 // normalize -0.0 and +0.0
	}
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(bits>>(8*uint(i))))
	}
	return dst
}

// Key returns the canonical encoding of a tuple of values, suitable as a
// map key for hash joins, grouping, and DISTINCT.
func Key(vs []Value) string {
	return string(AppendKey(nil, vs...))
}

// Like evaluates the SQL LIKE predicate with % and _ wildcards. NULL
// operands yield Unknown.
func Like(s, pattern Value) Tri {
	if s.IsNull() || pattern.IsNull() {
		return Unknown
	}
	if s.K != KindString || pattern.K != KindString {
		return False
	}
	return TriOf(likeMatch(s.S, pattern.S))
}

func likeMatch(s, p string) bool {
	// Standard two-pointer wildcard match; % matches any run, _ one rune.
	var si, pi int
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, match = pi, si
			pi++
		case star != -1:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
