package sqltypes

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCompareNumericPromotion(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
		ok   bool
	}{
		{NewInt(3), NewInt(3), 0, true},
		{NewInt(3), NewFloat(3.0), 0, true},
		{NewFloat(2.5), NewInt(3), -1, true},
		{NewInt(4), NewFloat(3.5), 1, true},
		{NewString("a"), NewString("b"), -1, true},
		{NewString("b"), NewString("b"), 0, true},
		{NewBool(false), NewBool(true), -1, true},
		{Null, NewInt(1), 0, false},
		{NewInt(1), Null, 0, false},
		{Null, Null, 0, false},
		{NewInt(1), NewString("1"), 0, false}, // cross-kind non-numeric
	}
	for _, c := range cases {
		got, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Compare(%v, %v) = %d,%v want %d,%v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestEqualThreeValued(t *testing.T) {
	if Equal(Null, Null) != Unknown {
		t.Error("NULL = NULL must be UNKNOWN")
	}
	if Equal(NewInt(1), Null) != Unknown {
		t.Error("1 = NULL must be UNKNOWN")
	}
	if Equal(NewInt(1), NewInt(1)) != True {
		t.Error("1 = 1 must be TRUE")
	}
	if Equal(NewInt(1), NewInt(2)) != False {
		t.Error("1 = 2 must be FALSE")
	}
}

func TestIdenticalGroupsNulls(t *testing.T) {
	if !Identical(Null, Null) {
		t.Error("grouping equality treats NULL as identical to NULL")
	}
	if Identical(Null, NewInt(0)) {
		t.Error("NULL is not identical to 0")
	}
	if !Identical(NewInt(3), NewFloat(3)) {
		t.Error("3 and 3.0 compare equal, so they group together")
	}
}

func TestTriLogicTables(t *testing.T) {
	tris := []Tri{False, Unknown, True}
	for _, a := range tris {
		for _, b := range tris {
			and := a.And(b)
			or := a.Or(b)
			// Kleene logic: AND is min, OR is max.
			if want := minTri(a, b); and != want {
				t.Errorf("%v AND %v = %v, want %v", a, b, and, want)
			}
			if want := maxTri(a, b); or != want {
				t.Errorf("%v OR %v = %v, want %v", a, b, or, want)
			}
		}
		if a.Not().Not() != a {
			t.Errorf("double negation of %v", a)
		}
	}
}

func minTri(a, b Tri) Tri {
	if a < b {
		return a
	}
	return b
}

func maxTri(a, b Tri) Tri {
	if a > b {
		return a
	}
	return b
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   ArithOp
		a, b Value
		want Value
	}{
		{OpAdd, NewInt(2), NewInt(3), NewInt(5)},
		{OpSub, NewInt(2), NewInt(3), NewInt(-1)},
		{OpMul, NewInt(4), NewFloat(0.5), NewFloat(2)},
		{OpDiv, NewInt(7), NewInt(2), NewFloat(3.5)},
		{OpAdd, Null, NewInt(1), Null},
		{OpMul, NewInt(1), Null, Null},
	}
	for _, c := range cases {
		got, err := Arith(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("Arith(%v,%v,%v): %v", c.op, c.a, c.b, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Arith(%v,%v,%v) = %v want %v", c.op, c.a, c.b, got, c.want)
		}
	}
	if _, err := Arith(OpDiv, NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero must error")
	}
	if _, err := Arith(OpAdd, NewString("x"), NewInt(1)); err == nil {
		t.Error("string arithmetic must error")
	}
}

func TestCoalesce(t *testing.T) {
	if got := Coalesce(Null, Null, NewInt(7), NewInt(8)); got.I != 7 {
		t.Errorf("coalesce picked %v", got)
	}
	if got := Coalesce(Null, Null); !got.IsNull() {
		t.Errorf("coalesce of all NULLs = %v", got)
	}
	if got := Coalesce(); !got.IsNull() {
		t.Errorf("empty coalesce = %v", got)
	}
}

func TestKeyNormalizesNumericKinds(t *testing.T) {
	if Key([]Value{NewInt(3)}) != Key([]Value{NewFloat(3)}) {
		t.Error("3 and 3.0 must share a hash key (they compare equal)")
	}
	if Key([]Value{NewFloat(0)}) != Key([]Value{NewFloat(math.Copysign(0, -1))}) {
		t.Error("-0.0 and +0.0 must share a hash key")
	}
	if Key([]Value{Null}) == Key([]Value{NewInt(0)}) {
		t.Error("NULL and 0 must not collide")
	}
}

// genValue produces a random value across all kinds.
func genValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return NewInt(int64(r.Intn(2000) - 1000))
	case 2:
		return NewFloat(float64(r.Intn(2000)-1000) / 4)
	case 3:
		return NewString(string(rune('a' + r.Intn(26))))
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

// Property: Key is injective with respect to Identical — two values encode
// identically iff the grouping equality holds.
func TestQuickKeyMatchesIdentical(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genValue(r), genValue(r)
		sameKey := Key([]Value{a}) == Key([]Value{b})
		return sameKey == Identical(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and Equal is symmetric.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genValue(r), genValue(r)
		ab, ok1 := Compare(a, b)
		ba, ok2 := Compare(b, a)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return ab == -ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: tuple keys are prefix-unambiguous — concatenating encodings
// cannot make different tuples collide.
func TestQuickTupleKeyInjective(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(3)
		a := make([]Value, n)
		b := make([]Value, n)
		same := true
		for i := range a {
			a[i], b[i] = genValue(r), genValue(r)
			if !Identical(a[i], b[i]) {
				same = false
			}
		}
		return (Key(a) == Key(b)) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want Tri
	}{
		{"hello", "hello", True},
		{"hello", "h%", True},
		{"hello", "%llo", True},
		{"hello", "h_llo", True},
		{"hello", "h_lo", False},
		{"hello", "%", True},
		{"", "%", True},
		{"", "_", False},
		{"BRASS STEEL", "%BRASS%", True},
		{"abc", "a%c%", True},
		{"abc", "a%d", False},
	}
	for _, c := range cases {
		if got := Like(NewString(c.s), NewString(c.p)); got != c.want {
			t.Errorf("Like(%q, %q) = %v want %v", c.s, c.p, got, c.want)
		}
	}
	if Like(Null, NewString("%")) != Unknown {
		t.Error("NULL LIKE pattern must be UNKNOWN")
	}
	if Like(NewString("x"), Null) != Unknown {
		t.Error("value LIKE NULL must be UNKNOWN")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-42), "-42"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q want %q", c.v, got, c.want)
		}
	}
}

func TestOrderCompareTotalOrder(t *testing.T) {
	vals := []Value{
		Null, NewInt(-3), NewInt(0), NewFloat(0.5), NewInt(1),
		NewString("a"), NewString("b"), NewBool(false), NewBool(true),
	}
	// NULL sorts before everything.
	for _, v := range vals[1:] {
		if OrderCompare(Null, v) >= 0 {
			t.Errorf("NULL should precede %v", v)
		}
	}
	// Antisymmetry and reflexivity over the sample.
	for _, a := range vals {
		for _, b := range vals {
			if OrderCompare(a, b) != -OrderCompare(b, a) {
				t.Errorf("antisymmetry broken for %v, %v", a, b)
			}
		}
		if OrderCompare(a, a) != 0 {
			t.Errorf("reflexivity broken for %v", a)
		}
	}
	// Numeric promotion holds in the total order too.
	if OrderCompare(NewInt(1), NewFloat(0.5)) <= 0 {
		t.Error("1 should follow 0.5")
	}
}
