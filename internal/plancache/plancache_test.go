package plancache

import (
	"fmt"
	"sync"
	"testing"

	"decorr/internal/trace"
)

func delta(t *testing.T, f func()) Stats {
	t.Helper()
	before := StatsNow()
	f()
	after := StatsNow()
	return Stats{
		Hits:          after.Hits - before.Hits,
		Misses:        after.Misses - before.Misses,
		Evictions:     after.Evictions - before.Evictions,
		Invalidations: after.Invalidations - before.Invalidations,
	}
}

func TestGetPut(t *testing.T) {
	c := New(64)
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", 1, "v")
	v, ok := c.Get("k", 1)
	if !ok || v.(string) != "v" {
		t.Fatalf("Get = (%v, %v), want (v, true)", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestEpochInvalidation(t *testing.T) {
	c := New(64)
	c.Put("k", 1, "v")
	d := delta(t, func() {
		if _, ok := c.Get("k", 2); ok {
			t.Error("stale entry served after epoch bump")
		}
	})
	if d.Invalidations != 1 || d.Misses != 1 {
		t.Fatalf("delta = %+v, want 1 invalidation and 1 miss", d)
	}
	// The stale entry must be gone, not just skipped: looking it up at
	// its original epoch must also miss.
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("stale entry survived invalidation")
	}
}

func TestLRUEviction(t *testing.T) {
	// One entry per shard keeps the LRU order observable per key chain.
	c := New(1) // shardCap = 1
	c.Put("a", 1, 1)
	c.Put("a", 1, 2) // replace, no eviction
	if v, ok := c.Get("a", 1); !ok || v.(int) != 2 {
		t.Fatalf("replacement lost: %v %v", v, ok)
	}
	// Force two distinct keys into the same shard by brute force.
	s := c.shardOf("a")
	other := ""
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardOf(k) == s {
			other = k
			break
		}
	}
	if other == "" {
		t.Fatal("no colliding key found")
	}
	d := delta(t, func() { c.Put(other, 1, 3) })
	if d.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", d.Evictions)
	}
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("LRU victim still present")
	}
	if v, ok := c.Get(other, 1); !ok || v.(int) != 3 {
		t.Fatal("newest entry evicted instead of LRU")
	}
}

func TestPurge(t *testing.T) {
	c := New(64)
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprintf("k%d", i), 1, i)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
}

func TestShardStats(t *testing.T) {
	c := New(64) // shardCap = 4
	stats := c.ShardStats()
	if len(stats) != shardCount {
		t.Fatalf("ShardStats len = %d, want %d", len(stats), shardCount)
	}
	for i, s := range stats {
		if s.Entries != 0 || s.Capacity != 4 {
			t.Fatalf("empty cache shard %d = %+v, want {0 4}", i, s)
		}
	}
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprintf("k%d", i), 1, i)
	}
	total := 0
	for _, s := range c.ShardStats() {
		if s.Entries > s.Capacity {
			t.Fatalf("shard over capacity: %+v", s)
		}
		total += s.Entries
	}
	if total != c.Len() {
		t.Fatalf("ShardStats total = %d, Len = %d", total, c.Len())
	}
}

func TestGetLatencyHistograms(t *testing.T) {
	hit := trace.Metrics.Histogram("plancache.get.hit")
	miss := trace.Metrics.Histogram("plancache.get.miss")
	hitBefore, missBefore := hit.Count(), miss.Count()

	c := New(64)
	c.Get("absent", 1) // miss
	c.Put("k", 1, "v")
	c.Get("k", 1) // hit
	c.Get("k", 2) // stale → invalidation, counts as miss

	if d := hit.Count() - hitBefore; d != 1 {
		t.Errorf("hit histogram delta = %d, want 1", d)
	}
	if d := miss.Count() - missBefore; d != 2 {
		t.Errorf("miss histogram delta = %d, want 2", d)
	}
}

// TestConcurrent hammers one cache from many goroutines; run under -race.
func TestConcurrent(t *testing.T) {
	c := New(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", i%97)
				epoch := uint64(i % 3)
				if v, ok := c.Get(k, epoch); ok && v == nil {
					t.Error("nil value served")
				}
				c.Put(k, epoch, i)
				if i%500 == 0 {
					c.Purge()
				}
				_ = c.Len()
			}
		}(w)
	}
	wg.Wait()
}
