// Package plancache provides the concurrency-safe, sharded LRU cache the
// engine uses to amortize query preparation (parse → bind → rewrite →
// cleanup → cost) across repeated executions. Keys are opaque strings the
// caller derives from the normalized statement text plus every knob that
// influences the produced plan; values are opaque (the engine stores
// *engine.Prepared — this package stays below the engine to avoid a cycle).
//
// Staleness is handled by epochs, not by enumerating dependents: the engine
// bumps its catalog/view epoch on every DDL (CreateView/DropView), and a
// cached entry whose recorded epoch differs from the caller's current epoch
// is discarded on lookup instead of served. Hit, miss, eviction, and
// invalidation counts are published to the process-wide trace.Metrics
// registry under plancache.*.
package plancache

import (
	"container/list"
	"sync"
	"time"

	"decorr/internal/trace"
)

// shardCount spreads keys over independently locked shards so concurrent
// clients rarely contend; a power of two keeps the modulo cheap.
const shardCount = 16

// Cache is a sharded LRU keyed by string with epoch-based invalidation.
// All methods are safe for concurrent use.
type Cache struct {
	shards   [shardCount]shard
	shardCap int

	hits          *trace.Counter
	misses        *trace.Counter
	evictions     *trace.Counter
	invalidations *trace.Counter
	hitLat        *trace.Histogram
	missLat       *trace.Histogram
}

type shard struct {
	mu  sync.Mutex
	lru *list.List // front = most recently used; element values are *entry
	m   map[string]*list.Element
}

type entry struct {
	key   string
	epoch uint64
	v     any
}

// New creates a cache holding about capacity entries in total (split
// evenly across shards, at least one per shard). Non-positive capacity
// selects the default of 256.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 256
	}
	c := &Cache{
		shardCap:      (capacity + shardCount - 1) / shardCount,
		hits:          trace.Metrics.Counter("plancache.hits"),
		misses:        trace.Metrics.Counter("plancache.misses"),
		evictions:     trace.Metrics.Counter("plancache.evictions"),
		invalidations: trace.Metrics.Counter("plancache.invalidations"),
		hitLat:        trace.Metrics.Histogram("plancache.get.hit"),
		missLat:       trace.Metrics.Histogram("plancache.get.miss"),
	}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].m = map[string]*list.Element{}
	}
	return c
}

// shardOf picks the shard for a key (FNV-1a).
func (c *Cache) shardOf(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%shardCount]
}

// Get returns the value cached under key if it is present and was stored
// at the given epoch. A present-but-stale entry counts as an invalidation
// (and a miss) and is removed so it cannot be served later. Lookup wall
// time records into the plancache.get.hit / plancache.get.miss histograms,
// so shard-lock contention under concurrent clients is observable rather
// than inferred from the aggregate counters.
func (c *Cache) Get(key string, epoch uint64) (any, bool) {
	start := time.Now()
	s := c.shardOf(key)
	s.mu.Lock()
	el, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Inc()
		c.missLat.Observe(time.Since(start).Nanoseconds())
		return nil, false
	}
	e := el.Value.(*entry)
	if e.epoch != epoch {
		s.lru.Remove(el)
		delete(s.m, key)
		s.mu.Unlock()
		c.invalidations.Inc()
		c.misses.Inc()
		c.missLat.Observe(time.Since(start).Nanoseconds())
		return nil, false
	}
	s.lru.MoveToFront(el)
	s.mu.Unlock()
	c.hits.Inc()
	c.hitLat.Observe(time.Since(start).Nanoseconds())
	return e.v, true
}

// Put stores v under key at the given epoch, replacing any existing entry
// and evicting the least recently used entry of the shard when full.
func (c *Cache) Put(key string, epoch uint64, v any) {
	s := c.shardOf(key)
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		e := el.Value.(*entry)
		e.epoch = epoch
		e.v = v
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.m[key] = s.lru.PushFront(&entry{key: key, epoch: epoch, v: v})
	var evicted bool
	if s.lru.Len() > c.shardCap {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.m, back.Value.(*entry).key)
		evicted = true
	}
	s.mu.Unlock()
	if evicted {
		c.evictions.Inc()
	}
}

// ShardStat is the occupancy of one cache shard.
type ShardStat struct {
	// Entries is the number of live entries in the shard.
	Entries int
	// Capacity is the shard's entry cap (total capacity / shard count).
	Capacity int
}

// ShardStats reports per-shard occupancy in shard order — the engine's
// sys.plan_cache table emits one row per shard from this, which is how a
// skewed key distribution (hot shard evicting while others sit empty)
// becomes visible.
func (c *Cache) ShardStats() []ShardStat {
	out := make([]ShardStat, shardCount)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out[i] = ShardStat{Entries: s.lru.Len(), Capacity: c.shardCap}
		s.mu.Unlock()
	}
	return out
}

// Len reports the number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge drops every entry (counted neither as eviction nor invalidation:
// it is an operator action, not a policy decision).
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.lru.Init()
		s.m = map[string]*list.Element{}
		s.mu.Unlock()
	}
}

// Stats is a point-in-time copy of the process-wide plancache counters.
// Note the counters are registry-global: every Cache in the process feeds
// the same instruments (matching how trace.Metrics is used elsewhere).
type Stats struct {
	Hits, Misses, Evictions, Invalidations int64
}

// StatsNow reads the current counter values.
func StatsNow() Stats {
	return Stats{
		Hits:          trace.Metrics.Counter("plancache.hits").Value(),
		Misses:        trace.Metrics.Counter("plancache.misses").Value(),
		Evictions:     trace.Metrics.Counter("plancache.evictions").Value(),
		Invalidations: trace.Metrics.Counter("plancache.invalidations").Value(),
	}
}
