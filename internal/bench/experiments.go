package bench

import (
	"fmt"

	"decorr/internal/engine"
	"decorr/internal/parallel"
	"decorr/internal/tpcd"
)

// Table1 regenerates the paper's Table 1: the TPC-D table cardinalities.
// At SF=1.0 the counts equal the paper's exactly; the report shows both the
// SF=1 contract and the cardinalities of the experiment database.
func Table1(cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	db := tpcd.Generate(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed})
	r := &Report{ID: "table1", Title: "TPC-D database (Table 1)",
		Paper: "customers 15,000 | parts 20,000 | suppliers 1,000 | partsupp 80,000 | lineitem 600,000 (120 MB)",
		Scale: fmt.Sprintf("SF=%g seed=%d", cfg.SF, cfg.Seed)}
	paper := map[string]int{
		"customers": tpcd.BaseCustomers, "parts": tpcd.BaseParts,
		"suppliers": tpcd.BaseSuppliers, "partsupp": tpcd.BasePartSupp,
		"lineitem": tpcd.BaseLineItem,
	}
	r.Extra = append(r.Extra, fmt.Sprintf("%-10s %10s %14s", "table", "tuples", "paper (SF=1)"))
	for _, name := range []string{"customers", "parts", "suppliers", "partsupp", "lineitem"} {
		t := db.Table(name)
		r.Extra = append(r.Extra, fmt.Sprintf("%-10s %10d %14d", name, len(t.Rows), paper[name]))
	}
	return r, nil
}

// Figure1 renders the QGM of the §2 example query — the textual analogue
// of the paper's Figure 1.
func Figure1(cfg Config) (*Report, error) {
	e := engine.New(tpcd.EmpDept())
	p, err := e.Prepare(tpcd.ExampleQuery, engine.NI)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig1", Title: "example query QGM (Figure 1)",
		Paper: "SELECT box over DEPT correlated to an aggregate subquery over EMP"}
	r.Extra = append(r.Extra, p.Explain())
	return r, nil
}

// Figures2to4 replays the magic decorrelation rewrite on the example query
// and prints every captured stage — the paper's Figures 2 (FEED), 3
// (ABSORB non-SPJ) and 4 (ABSORB SPJ).
func Figures2to4(cfg Config) (*Report, error) {
	e := engine.New(tpcd.EmpDept())
	p, err := e.PrepareTraced(tpcd.ExampleQuery, engine.Magic)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig2-4", Title: "magic decorrelation stages (Figures 2–4)",
		Paper: "FEED: SUPP + MAGIC projected; ABSORB: grouping extended by the correlation column; LOJ removes the COUNT bug"}
	for i, s := range p.Trace.Steps {
		r.Extra = append(r.Extra, fmt.Sprintf("--- stage %d: %s ---", i, s.Title))
		r.Extra = append(r.Extra, s.Plan)
	}
	return r, nil
}

// Figure5 is Query 1 with all indexes present.
func Figure5(cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	db := tpcd.Generate(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed})
	return runFigure(db, cfg, "fig5", "Query 1, all indexes (Figure 5)",
		"few invocations, no duplicates: Mag slightly beats NI; Kim wasteful; Dayal competitive; Mag pays SUPP recomputation",
		tpcd.Query1, allStrategies)
}

// Figure6 is the Query 1(b) sensitivity variant: thousands of invocations,
// many duplicated bindings.
func Figure6(cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	db := tpcd.Generate(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed})
	return runFigure(db, cfg, "fig6", "Query 1(b), wide predicates (Figure 6)",
		"Mag stays best; Kim improves (less wasted work); Dayal degrades (large join before aggregation, redundant aggregations)",
		tpcd.Query1b, allStrategies)
}

// Figure7 is Query 1(c): the index used inside the subquery is dropped,
// inflating the cost of each correlated invocation. (The paper drops the
// PartSupp index its plan probed per invocation; our nested-iteration plan
// probes ps_partkey, so that is the index dropped — see DESIGN.md.)
func Figure7(cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	db := tpcd.Generate(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed})
	if err := db.MustTable("partsupp").DropIndex("ps_partkey"); err != nil {
		return nil, err
	}
	return runFigure(db, cfg, "fig7", "Query 1(c), subquery index dropped (Figure 7)",
		"NI degrades badly (full scans per invocation); Mag far ahead of NI; Kim comparable to Mag; Dayal poor",
		tpcd.Query1b, allStrategies)
}

// Figure8 is Query 2: the correlation attribute is a key, the subquery is
// cheap — decorrelation should not help, and must not hurt.
func Figure8(cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	db := tpcd.Generate(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed})
	return runFigure(db, cfg, "fig8", "Query 2, key correlation (Figure 8)",
		"OptMag comparable to NI; Mag slightly worse (SUPP recomputation); Kim and Dayal orders of magnitude worse",
		tpcd.Query2, allStrategies)
}

// Figure9 is Query 3: non-linear (UNION) with only 5 distinct correlation
// values — Kim and Dayal are inapplicable, magic wins by a large factor.
func Figure9(cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	db := tpcd.Generate(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed})
	return runFigure(db, cfg, "fig9", "Query 3, non-linear with duplicates (Figure 9)",
		"Kim/Dayal not applicable (UNION); Mag yields a large improvement: 5 distinct of ~200 bindings",
		tpcd.Query3, allStrategies)
}

// Parallel sweeps cluster sizes for the §6 analysis.
func Parallel(cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	db := tpcd.EmpDeptSized(int(4000*cfg.SF)+100, int(20000*cfg.SF)+500, 32, cfg.Seed)
	r := &Report{ID: "parallel", Title: "shared-nothing execution of the example query (§6)",
		Paper: "NI: per-binding broadcasts, O(n²) fragments; magic: one repartition per table, local joins"}
	r.Extra = append(r.Extra, fmt.Sprintf("%-6s %-9s %10s %10s %10s %10s %10s",
		"nodes", "plan", "messages", "shipped", "fragments", "work", "makespan"))
	for _, n := range []int{2, 4, 8, 16, 32} {
		c := parallel.Config{Nodes: n}
		ni, err := parallel.RunNestedIteration(db, c)
		if err != nil {
			return nil, err
		}
		mg, err := parallel.RunMagic(db, c)
		if err != nil {
			return nil, err
		}
		for _, row := range []struct {
			plan string
			m    parallel.Metrics
		}{{"NI", ni.Metrics}, {"Magic", mg.Metrics}} {
			r.Extra = append(r.Extra, fmt.Sprintf("%-6d %-9s %10d %10d %10d %10d %10d",
				n, row.plan, row.m.Messages, row.m.RowsShipped, row.m.Fragments,
				row.m.Work, row.m.Makespan))
		}
	}
	// Co-partitioned baseline (§6.1 case 1).
	c := parallel.Config{Nodes: 8, Placement: parallel.PartitionByCorrelation}
	ni, err := parallel.RunNestedIteration(db, c)
	if err != nil {
		return nil, err
	}
	r.Extra = append(r.Extra, fmt.Sprintf("%-6d %-9s %10d %10d %10d %10d %10d   (co-partitioned NI, §6.1 case 1)",
		8, "NI", ni.Metrics.Messages, ni.Metrics.RowsShipped, ni.Metrics.Fragments,
		ni.Metrics.Work, ni.Metrics.Makespan))
	return r, nil
}

// ParallelTPCD extends the §6 analysis from the example query to the
// paper's own workload, using the generalized shared-nothing plan model:
// the nested-iteration and magic-decorrelated QGM plans of Queries 1(b)
// and 3 are costed for message traffic and computation fragments.
func ParallelTPCD(cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	db := tpcd.Generate(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed})
	e := engine.New(db)
	r := &Report{ID: "parallel-tpcd", Title: "shared-nothing plan costs for the TPC-D queries (§6 generalized)",
		Paper: "decorrelated plans repartition once per table; nested iteration pays a broadcast and n fragments per binding",
		Scale: fmt.Sprintf("TPC-D SF=%g seed=%d, 8 nodes", cfg.SF, cfg.Seed)}
	r.Extra = append(r.Extra, fmt.Sprintf("%-10s %-6s %10s %10s %10s %8s",
		"query", "plan", "messages", "shipped", "fragments", "phases"))
	for _, q := range []struct{ name, sql string }{
		{"Query 1b", tpcd.Query1b},
		{"Query 2", tpcd.Query2},
		{"Query 3", tpcd.Query3},
	} {
		for _, s := range []engine.Strategy{engine.NI, engine.Magic} {
			p, err := e.Prepare(q.sql, s)
			if err != nil {
				return nil, err
			}
			m := parallel.PlanCost(db, p.Graph, parallel.Config{Nodes: 8})
			r.Extra = append(r.Extra, fmt.Sprintf("%-10s %-6s %10d %10d %10d %8d",
				q.name, s, m.Messages, m.RowsShipped, m.Fragments, m.Phases))
		}
	}
	return r, nil
}

// Ablations exercises the §4.4 / §5.3 knobs: materializing the
// supplementary common subexpression, memoized nested iteration, and
// magic decorrelation without outer-join support.
func Ablations(cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	db := tpcd.Generate(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed})
	r := &Report{ID: "ablation", Title: "knob ablations",
		Paper: "§5.3: materializing SUPP would make Mag comparable to Dayal on Query 1 and better elsewhere",
		Scale: fmt.Sprintf("TPC-D SF=%g seed=%d", cfg.SF, cfg.Seed)}

	e := engine.New(db)
	base, err := measure(e, tpcd.Query1, engine.Magic, cfg.Repeats)
	if err != nil {
		return nil, err
	}
	base.Strategy = "Mag"
	r.Lines = append(r.Lines, base)

	e.MaterializeCSE = true
	mat, err := measure(e, tpcd.Query1, engine.Magic, cfg.Repeats)
	if err != nil {
		return nil, err
	}
	mat.Strategy = "Mag+CSE"
	r.Lines = append(r.Lines, mat)
	e.MaterializeCSE = false

	// Magic without outer-join support: partial decorrelation on the
	// example query (which needs the COUNT-bug LOJ).
	ed := engine.New(tpcd.EmpDept())
	ed.CoreOpts.UseOuterJoin = false
	noLOJ, err := measure(ed, tpcd.ExampleQuery, engine.Magic, cfg.Repeats)
	if err != nil {
		return nil, err
	}
	noLOJ.Strategy = "Mag-LOJ"
	noLOJ.Note = fmt.Sprintf("example query, no outer join: %d correlated invocations remain (partial decorrelation)",
		noLOJ.Stats.SubqueryInvocations)
	r.Lines = append(r.Lines, noLOJ)

	// Magic sets ([MFPR90]): restrict a grouped derived table to its join
	// bindings before aggregating.
	const msQuery = `
		select p.p_partkey, t.total
		from parts p,
		  (select l_partkey, sum(l_quantity) from lineitem group by l_partkey) as t(k, total)
		where p.p_partkey = t.k and p.p_brand = 'Brand#23' and p.p_container = '6 PACK'`
	plainMS, err := measure(engine.New(db), msQuery, engine.NI, cfg.Repeats)
	if err != nil {
		return nil, err
	}
	plainMS.Strategy = "view-join"
	r.Lines = append(r.Lines, plainMS)
	ems := engine.New(db)
	ems.MagicSets = true
	withMS, err := measure(ems, msQuery, engine.NI, cfg.Repeats)
	if err != nil {
		return nil, err
	}
	withMS.Strategy = "+magicset"
	r.Lines = append(r.Lines, withMS)
	return r, nil
}
