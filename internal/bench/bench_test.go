package bench_test

import (
	"strings"
	"testing"

	"decorr/internal/bench"
)

// Every experiment must run at a small scale and produce a report whose
// shape matches its artifact.
func TestAllExperimentsRun(t *testing.T) {
	cfg := bench.Config{SF: 0.02, Seed: 42, Repeats: 1}
	for _, ex := range bench.Experiments {
		t.Run(ex.ID, func(t *testing.T) {
			r, err := ex.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", ex.ID, err)
			}
			out := r.String()
			if !strings.Contains(out, ex.ID) {
				t.Errorf("report does not name its experiment:\n%s", out)
			}
			if len(r.Lines) == 0 && len(r.Extra) == 0 {
				t.Error("empty report")
			}
		})
	}
}

func TestFindExperiments(t *testing.T) {
	if bench.Find("fig8") == nil || bench.Find("table1") == nil || bench.Find("parallel") == nil {
		t.Error("known experiments not found")
	}
	if bench.Find("fig99") != nil {
		t.Error("unknown experiment found")
	}
}

// Shape assertions for the headline findings, on the benchmark scale used
// in EXPERIMENTS.md. These are the regression tests for the reproduction
// itself: if a change breaks a figure's shape, they fail.
func TestFigureShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shapes need the full benchmark scale")
	}
	cfg := bench.Config{SF: 0.1, Seed: 42, Repeats: 1}

	get := func(r *bench.Report, strategy string) bench.Line {
		for _, l := range r.Lines {
			if l.Strategy == strategy {
				return l
			}
		}
		t.Fatalf("%s: no line for %s", r.ID, strategy)
		return bench.Line{}
	}

	// Figure 7: NI must collapse without the subquery index; Mag must not.
	fig7, err := bench.Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ni, mag := get(fig7, "NI"), get(fig7, "Mag")
	if ni.Stats.Work() < 20*mag.Stats.Work() {
		t.Errorf("fig7: NI work %d should dwarf Mag %d", ni.Stats.Work(), mag.Stats.Work())
	}

	// Figure 8: Kim and Dayal must be an order of magnitude worse than NI.
	fig8, err := bench.Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ni8, kim8, dayal8, opt8 := get(fig8, "NI"), get(fig8, "Kim"), get(fig8, "Dayal"), get(fig8, "OptMag")
	if kim8.Stats.Work() < 10*ni8.Stats.Work() || dayal8.Stats.Work() < 10*ni8.Stats.Work() {
		t.Errorf("fig8: Kim/Dayal (%d/%d) should be ≫ NI (%d)",
			kim8.Stats.Work(), dayal8.Stats.Work(), ni8.Stats.Work())
	}
	if opt8.Stats.Work() > 4*ni8.Stats.Work() {
		t.Errorf("fig8: OptMag (%d) should stay near NI (%d)", opt8.Stats.Work(), ni8.Stats.Work())
	}

	// Figure 9: Kim and Dayal inapplicable; Mag beats NI.
	fig9, err := bench.Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if get(fig9, "Kim").Note == "" || get(fig9, "Dayal").Note == "" {
		t.Error("fig9: Kim/Dayal should be flagged not applicable")
	}
	if get(fig9, "Mag").Stats.Work() >= get(fig9, "NI").Stats.Work() {
		t.Error("fig9: Mag should do less work than NI")
	}
}
