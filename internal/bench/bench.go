// Package bench regenerates every table and figure of the paper's
// evaluation (§5, Table 1, Figures 5–9) and the §6 parallel analysis. Each
// experiment builds its workload, runs every strategy the paper ran (noting
// inapplicability where the paper notes it), and reports wall time plus the
// machine-independent work counters. Absolute numbers differ from the 1996
// hardware; the shapes — who wins, by what factor, where the crossovers
// are — are the reproduction target (see EXPERIMENTS.md).
package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"decorr/internal/classic"
	"decorr/internal/engine"
	"decorr/internal/exec"
	"decorr/internal/storage"
)

// Config scales the experiments.
type Config struct {
	// SF is the TPC-D scale factor (1.0 = the paper's 120 MB database).
	SF float64
	// Seed drives data generation.
	Seed int64
	// Repeats is how many timed runs each measurement takes (minimum is
	// reported), mirroring the paper's "average of several consecutive
	// runs" methodology with a sturdier estimator.
	Repeats int
}

// DefaultConfig matches the repository's test/bench scale.
func DefaultConfig() Config { return Config{SF: 0.1, Seed: 42, Repeats: 3} }

func (c Config) normalized() Config {
	if c.SF <= 0 {
		c.SF = 0.1
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

// Line is one bar of a figure: a strategy and its measured cost.
type Line struct {
	Strategy string
	Millis   float64
	Stats    exec.Stats
	Rows     int
	Note     string // e.g. "not applicable (non-linear query)"
}

// Report is one regenerated table or figure.
type Report struct {
	ID    string
	Title string
	Paper string // the paper's qualitative finding for this artifact
	Lines []Line
	Extra []string // free-form rows (Table 1, parallel sweeps)
	Scale string
}

// String renders the report the way cmd/benchfig prints it.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if r.Scale != "" {
		fmt.Fprintf(&b, "workload: %s\n", r.Scale)
	}
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper:    %s\n", r.Paper)
	}
	if len(r.Lines) > 0 {
		fmt.Fprintf(&b, "%-8s %12s %12s %12s %12s %8s\n",
			"strategy", "time(ms)", "work", "invocations", "scanned", "rows")
		for _, l := range r.Lines {
			if l.Note != "" {
				fmt.Fprintf(&b, "%-8s %s\n", l.Strategy, l.Note)
				continue
			}
			fmt.Fprintf(&b, "%-8s %12.3f %12d %12d %12d %8d\n",
				l.Strategy, l.Millis, l.Stats.Work(), l.Stats.SubqueryInvocations,
				l.Stats.RowsScanned, l.Rows)
		}
	}
	for _, e := range r.Extra {
		fmt.Fprintln(&b, e)
	}
	return b.String()
}

// CSV renders the measured lines as comma-separated rows (no header) for
// plotting: id,strategy,ms,work,invocations,scanned,rows. Experiments
// without strategy lines (Table 1, the plan traces) emit nothing.
func (r *Report) CSV() string {
	var b strings.Builder
	for _, l := range r.Lines {
		if l.Note != "" {
			fmt.Fprintf(&b, "%s,%s,NA,NA,NA,NA,NA\n", r.ID, l.Strategy)
			continue
		}
		fmt.Fprintf(&b, "%s,%s,%.3f,%d,%d,%d,%d\n",
			r.ID, l.Strategy, l.Millis, l.Stats.Work(),
			l.Stats.SubqueryInvocations, l.Stats.RowsScanned, l.Rows)
	}
	return b.String()
}

// CSVHeader is the column list matching Report.CSV rows.
const CSVHeader = "experiment,strategy,ms,work,invocations,scanned,rows"

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Report, error)
}

// Experiments lists every artifact in paper order.
var Experiments = []Experiment{
	{"table1", "TPC-D database cardinalities", Table1},
	{"fig1", "QGM of the example query (§2/Figure 1)", Figure1},
	{"fig2-4", "magic decorrelation stage trace (Figures 2–4)", Figures2to4},
	{"fig5", "Query 1 with all indexes", Figure5},
	{"fig6", "Query 1(b): no size predicate, two regions", Figure6},
	{"fig7", "Query 1(c): subquery index dropped", Figure7},
	{"fig8", "Query 2: key correlation, cheap subquery", Figure8},
	{"fig9", "Query 3: non-linear, duplicate-heavy", Figure9},
	{"parallel", "shared-nothing execution (§6)", Parallel},
	{"parallel-tpcd", "shared-nothing plan costs, TPC-D queries (§6 generalized)", ParallelTPCD},
	{"ablation", "knob ablations (§4.4, §5.3)", Ablations},
}

// Find returns the experiment with the given id, or nil.
func Find(id string) *Experiment {
	for i := range Experiments {
		if Experiments[i].ID == id {
			return &Experiments[i]
		}
	}
	return nil
}

// measure runs sql under the strategy, returning the best-of-Repeats time.
func measure(e *engine.Engine, sql string, s engine.Strategy, repeats int) (Line, error) {
	line := Line{Strategy: s.String()}
	p, err := e.Prepare(sql, s)
	if err != nil {
		if errors.Is(err, classic.ErrNotApplicable) {
			line.Note = "not applicable: " + err.Error()
			return line, nil
		}
		return line, err
	}
	best := time.Duration(1<<62 - 1)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		rows, stats, err := p.Run()
		if err != nil {
			return line, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
		line.Stats = *stats
		line.Rows = len(rows)
	}
	line.Millis = float64(best.Microseconds()) / 1000
	return line, nil
}

// runFigure measures one query under the given strategies.
func runFigure(db *storage.DB, cfg Config, id, title, paper, sql string, strategies []engine.Strategy) (*Report, error) {
	e := engine.New(db)
	r := &Report{ID: id, Title: title, Paper: paper,
		Scale: fmt.Sprintf("TPC-D SF=%g seed=%d", cfg.SF, cfg.Seed)}
	for _, s := range strategies {
		l, err := measure(e, sql, s, cfg.Repeats)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", id, s, err)
		}
		r.Lines = append(r.Lines, l)
	}
	return r, nil
}

var allStrategies = []engine.Strategy{
	engine.NI, engine.NIMemo, engine.NIBatch, engine.Kim, engine.Dayal, engine.Magic, engine.OptMagic,
}
