package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"decorr/internal/engine"
	"decorr/internal/tpcd"
	"decorr/internal/trace"
	"decorr/internal/wire"
)

// retryableUnavailable asserts err is the retryable drain/capacity
// rejection with a backoff hint.
func retryableUnavailable(t *testing.T, err error) {
	t.Helper()
	var werr *wire.Error
	if !errors.As(err, &werr) {
		t.Fatalf("err = %v, want *wire.Error", err)
	}
	if werr.Code != wire.CodeUnavailable || !werr.IsRetryable() {
		t.Fatalf("err = %+v, want retryable CodeUnavailable", werr)
	}
	if werr.RetryAfterMs == 0 {
		t.Fatalf("drain rejection carries no retry-after hint: %+v", werr)
	}
}

// Graceful drain end to end: with a stream mid-flight, Shutdown must
// refuse new sessions and new work with a retryable error, let the
// in-flight cursor run to completion, and only then return.
func TestShutdownDrainsInflightStream(t *testing.T) {
	srv, addr := startServer(t, Config{}, 20000)
	want, _, err := srv.cfg.Engine.Query("select name from emp", engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	c := dialClient(t, addr)
	ex, ok := c.rpc(t, &wire.Execute{SQL: "select name from emp"}).(*wire.ExecuteOK)
	if !ok {
		t.Fatal("Execute failed")
	}
	first, ok := c.rpc(t, &wire.Fetch{CursorID: ex.CursorID, MaxRows: 100}).(*wire.Batch)
	if !ok {
		t.Fatal("first fetch did not return a batch")
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	waitFor(t, srv.Draining, "server never started draining")

	// New sessions are refused with the retryable drain code.
	_, err = tryDial(addr)
	if err == nil {
		// The listener may take a beat to close; a raced dial must still
		// be refused at admission.
		t.Fatal("new session admitted during drain")
	}
	if !isConnRefused(err) {
		retryableUnavailable(t, err)
	}

	// New work on the draining session is refused the same way, and the
	// session survives the refusal.
	if werr, ok := c.rpc(t, &wire.Execute{SQL: "select name from dept"}).(*wire.Error); !ok {
		t.Fatal("Execute during drain did not error")
	} else {
		retryableUnavailable(t, werr)
	}

	// Status still answers and reports the drain.
	if st, ok := c.rpc(t, &wire.Status{}).(*wire.StatusOK); !ok || !st.Draining {
		t.Fatalf("StatusOK = %+v ok=%v, want Draining", st, ok)
	}

	// The in-flight cursor completes with every row.
	rows, done, werr := c.drain(t, ex.CursorID, 0)
	if werr != nil {
		t.Fatalf("drain-time fetch failed: %v", werr)
	}
	total := len(first.Rows) + len(rows)
	if total != len(want) || done.RowsOut != uint64(len(want)) {
		t.Fatalf("stream under drain returned %d rows, want %d", total, len(want))
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown = %v after the stream completed", err)
	}
	// The drained session's connection is closed once its cursor is done.
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.Read(c.conn); err == nil {
		t.Fatal("connection stayed open after drain completed")
	}
}

// Sessions with no open cursor must not hold up a drain.
func TestShutdownReleasesIdleSessions(t *testing.T) {
	srv, addr := startServer(t, Config{}, 50)
	c := dialClient(t, addr)
	_ = c
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with only idle sessions = %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("idle drain took %v", d)
	}
}

// When the drain deadline expires with a cursor still open, Shutdown
// falls back to the hard close: it returns ctx.Err() and the stalled
// session's connection is cut.
func TestShutdownDeadlineFallsBackToClose(t *testing.T) {
	srv, addr := startServer(t, Config{}, 20000)
	c := dialClient(t, addr)
	ex, ok := c.rpc(t, &wire.Execute{SQL: "select name from emp"}).(*wire.ExecuteOK)
	if !ok {
		t.Fatal("Execute failed")
	}
	if _, ok := c.rpc(t, &wire.Fetch{CursorID: ex.CursorID, MaxRows: 10}).(*wire.Batch); !ok {
		t.Fatal("first fetch did not return a batch")
	}
	// The client now stalls: it never fetches again.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown past its deadline = %v, want DeadlineExceeded", err)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.Read(c.conn); err == nil {
		t.Fatal("stalled session survived the hard-close fallback")
	}
}

// A peer that connects and never completes a handshake must be dropped
// when HandshakeTimeout expires, freeing its goroutine and slot.
func TestHandshakeDeadline(t *testing.T) {
	drops := trace.Metrics.Counter("server.deadline_drops").Value()
	_, addr := startServer(t, Config{HandshakeTimeout: 100 * time.Millisecond}, 50)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing. The server must cut the connection.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.Read(conn); err == nil {
		t.Fatal("silent pre-Hello peer was never dropped")
	}
	if got := trace.Metrics.Counter("server.deadline_drops").Value(); got <= drops {
		t.Fatalf("deadline_drops did not increase (%d -> %d)", drops, got)
	}
}

// An established session idle past ReadTimeout is dropped.
func TestReadIdleTimeout(t *testing.T) {
	_, addr := startServer(t, Config{ReadTimeout: 100 * time.Millisecond}, 50)
	c := dialClient(t, addr)
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.Read(c.conn); err == nil {
		t.Fatal("idle session survived ReadTimeout")
	}
}

// Overload shedding: past MaxActiveQueries, new sessions and new
// queries are refused with a retryable CodeOverloaded carrying a
// retry-after hint, and the rejection clears when load does.
func TestOverloadShed(t *testing.T) {
	sheds := trace.Metrics.Counter("server.sheds").Value()
	_, addr := startServer(t, Config{MaxActiveQueries: 1}, 20000)
	victim := dialClient(t, addr)
	bystander := dialClient(t, addr)
	ex, ok := victim.rpc(t, &wire.Execute{SQL: "select name from emp"}).(*wire.ExecuteOK)
	if !ok {
		t.Fatal("Execute failed")
	}
	if _, ok := victim.rpc(t, &wire.Fetch{CursorID: ex.CursorID, MaxRows: 10}).(*wire.Batch); !ok {
		t.Fatal("first fetch did not return a batch")
	}

	// The bystander's new query is shed, and its session survives.
	werr, ok := bystander.rpc(t, &wire.Execute{SQL: "select name from dept"}).(*wire.Error)
	if !ok {
		t.Fatal("Execute past the active-query cap did not error")
	}
	if werr.Code != wire.CodeOverloaded || !werr.IsRetryable() || werr.RetryAfterMs == 0 {
		t.Fatalf("shed error = %+v, want retryable CodeOverloaded with a hint", werr)
	}
	if _, ok := bystander.rpc(t, &wire.Ping{}).(*wire.Pong); !ok {
		t.Fatal("session did not survive being shed")
	}

	// New sessions are shed at the handshake too.
	_, err := tryDial(addr)
	var dialErr *wire.Error
	if !errors.As(err, &dialErr) || dialErr.Code != wire.CodeOverloaded {
		t.Fatalf("handshake past the cap: err=%v, want CodeOverloaded", err)
	}
	if got := trace.Metrics.Counter("server.sheds").Value(); got <= sheds {
		t.Fatalf("server.sheds did not increase (%d -> %d)", sheds, got)
	}

	// Draining the victim's stream clears the overload; the bystander's
	// retry eventually succeeds, as its backoff-and-retry would.
	if _, _, werr := victim.drain(t, ex.CursorID, 0); werr != nil {
		t.Fatalf("victim stream failed: %v", werr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		reply := bystander.rpc(t, &wire.Execute{SQL: "select name from dept"})
		if ex2, ok := reply.(*wire.ExecuteOK); ok {
			if _, _, werr := bystander.drain(t, ex2.CursorID, 0); werr != nil {
				t.Fatalf("post-overload stream failed: %v", werr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("overload never cleared: %v", reply)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// flakyListener fails its first n Accepts with a transient error.
type flakyListener struct {
	net.Listener
	remaining atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.remaining.Add(-1) >= 0 {
		return nil, &net.OpError{Op: "accept", Net: "tcp", Err: syscall.ECONNABORTED}
	}
	return l.Listener.Accept()
}

// Transient accept errors must not kill Serve: after a burst of
// ECONNABORTED, clients still connect.
func TestServeRetriesTransientAcceptErrors(t *testing.T) {
	retries := trace.Metrics.Counter("server.accept_retries").Value()
	e := engine.New(tpcd.EmpDeptSized(40, 50, 6, 11))
	e.MountSystemCatalog()
	srv := New(Config{Engine: e})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &flakyListener{Listener: inner}
	ln.remaining.Store(3)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	c, err := tryDial(inner.Addr().String())
	if err != nil {
		t.Fatalf("dial after transient accept errors: %v", err)
	}
	defer c.conn.Close()
	if _, ok := c.rpc(t, &wire.Ping{}).(*wire.Pong); !ok {
		t.Fatal("session after accept retries is not serving")
	}
	if got := trace.Metrics.Counter("server.accept_retries").Value(); got <= retries {
		t.Fatalf("server.accept_retries did not increase (%d -> %d)", retries, got)
	}
}

// A persistent (non-transient) accept error must surface from Serve
// rather than spin forever.
type brokenListener struct {
	net.Listener
}

var errListenerBroken = errors.New("listener permanently broken")

func (l *brokenListener) Accept() (net.Conn, error) { return nil, errListenerBroken }

func TestServeReturnsPersistentAcceptError(t *testing.T) {
	e := engine.New(tpcd.EmpDeptSized(40, 50, 6, 11))
	srv := New(Config{Engine: e})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(&brokenListener{Listener: inner}) }()
	select {
	case err := <-errCh:
		if !errors.Is(err, errListenerBroken) {
			t.Fatalf("Serve = %v, want the listener's error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve kept spinning on a persistent accept error")
	}
}

// Shutdown racing admissions, in-flight streams, and a concurrent
// second Shutdown: every client must end with a completed stream, a
// retryable refusal, or a connection error — and the process must not
// race or deadlock (run under -race).
func TestShutdownRaceHammer(t *testing.T) {
	srv, addr := startServer(t, Config{MaxSessions: 32}, 5000)
	var (
		wg        sync.WaitGroup
		completed atomic.Int64
		refused   atomic.Int64
		cut       atomic.Int64
	)
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 20; j++ {
				c, err := tryDial(addr)
				if err != nil {
					refused.Add(1)
					continue
				}
				outcome := runOneStream(c.conn)
				c.conn.Close()
				switch outcome {
				case "ok":
					completed.Add(1)
				case "refused":
					refused.Add(1)
				default:
					cut.Add(1)
				}
			}
		}()
	}
	close(start)
	time.Sleep(20 * time.Millisecond)
	done1 := make(chan error, 1)
	done2 := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		done1 <- srv.Shutdown(ctx)
	}()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		done2 <- srv.Shutdown(ctx)
	}()
	wg.Wait()
	if err := <-done1; err != nil {
		t.Fatalf("Shutdown #1 = %v", err)
	}
	if err := <-done2; err != nil {
		t.Fatalf("Shutdown #2 = %v", err)
	}
	t.Logf("hammer outcomes: %d completed, %d refused, %d cut",
		completed.Load(), refused.Load(), cut.Load())
	if completed.Load() == 0 {
		t.Fatal("no client ever completed a stream")
	}
}

// runOneStream runs one execute+drain exchange without *testing.T
// fatals, classifying the outcome for the hammer.
func runOneStream(conn net.Conn) string {
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := wire.Write(conn, &wire.Execute{SQL: "select name from emp where building = 'B1'"}); err != nil {
		return "cut"
	}
	reply, err := wire.Read(conn)
	if err != nil {
		return "cut"
	}
	switch m := reply.(type) {
	case *wire.Error:
		if m.IsRetryable() {
			return "refused"
		}
		return "cut"
	case *wire.ExecuteOK:
		for {
			if err := wire.Write(conn, &wire.Fetch{CursorID: m.CursorID}); err != nil {
				return "cut"
			}
			r, err := wire.Read(conn)
			if err != nil {
				return "cut"
			}
			switch r.(type) {
			case *wire.Batch:
			case *wire.Done:
				return "ok"
			default:
				return "cut"
			}
		}
	default:
		return "cut"
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func isConnRefused(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED)
}
