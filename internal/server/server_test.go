package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"decorr/internal/engine"
	"decorr/internal/exec"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
	"decorr/internal/wire"
)

// startServer runs a server over a sized EmpDept database on a loopback
// listener and tears it down with the test.
func startServer(t *testing.T, cfg Config, nEmp int) (*Server, string) {
	t.Helper()
	if cfg.Engine == nil {
		e := engine.New(tpcd.EmpDeptSized(40, nEmp, 6, 11))
		e.EnablePlanCache(64)
		e.MountSystemCatalog()
		cfg.Engine = e
	}
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// client is a test-side protocol peer: dial, handshake, then strict
// request/reply.
type client struct {
	t    *testing.T
	conn net.Conn
}

func dialClient(t *testing.T, addr string, options ...string) *client {
	t.Helper()
	c, err := tryDial(addr, options...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.conn.Close() })
	return c
}

func tryDial(addr string, options ...string) (*client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if err := wire.Write(conn, &wire.Hello{Version: wire.Version, Options: options}); err != nil {
		conn.Close()
		return nil, err
	}
	reply, err := wire.Read(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if e, ok := reply.(*wire.Error); ok {
		conn.Close()
		return nil, e
	}
	if _, ok := reply.(*wire.HelloOK); !ok {
		conn.Close()
		return nil, fmt.Errorf("handshake reply %T", reply)
	}
	return &client{conn: conn}, nil
}

// rpc sends one request and reads one reply.
func (c *client) rpc(t *testing.T, req wire.Message) wire.Message {
	t.Helper()
	if err := wire.Write(c.conn, req); err != nil {
		t.Fatalf("write %T: %v", req, err)
	}
	reply, err := wire.Read(c.conn)
	if err != nil {
		t.Fatalf("read reply to %T: %v", req, err)
	}
	return reply
}

// drain pulls a cursor to exhaustion, returning rows and the Done frame.
func (c *client) drain(t *testing.T, cursorID uint64, maxRows uint32) ([]storage.Row, *wire.Done, *wire.Error) {
	t.Helper()
	var rows []storage.Row
	for {
		switch m := c.rpc(t, &wire.Fetch{CursorID: cursorID, MaxRows: maxRows}).(type) {
		case *wire.Batch:
			if len(m.Rows) == 0 {
				t.Fatal("server sent an empty batch")
			}
			rows = append(rows, m.Rows...)
		case *wire.Done:
			return rows, m, nil
		case *wire.Error:
			return rows, nil, m
		default:
			t.Fatalf("unexpected fetch reply %T", m)
		}
	}
}

func rowStrings(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// The remote result must match the in-process result row for row, in
// order, with the same stats totals in the Done frame.
func TestServeQueryMatchesEngine(t *testing.T) {
	srv, addr := startServer(t, Config{}, 500)
	const sql = "select name, building from emp where building <> 'B1'"
	want, wantStats, err := srv.cfg.Engine.Query(sql, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	c := dialClient(t, addr)
	ex, ok := c.rpc(t, &wire.Execute{SQL: sql}).(*wire.ExecuteOK)
	if !ok {
		t.Fatal("Execute did not return ExecuteOK")
	}
	if len(ex.Columns) != 2 || ex.Columns[0] != "name" {
		t.Fatalf("columns = %v", ex.Columns)
	}
	if ex.QueryID == 0 {
		t.Fatal("QueryID is zero with a registry enabled")
	}
	rows, done, werr := c.drain(t, ex.CursorID, 0)
	if werr != nil {
		t.Fatalf("drain: %v", werr)
	}
	got, wantS := rowStrings(rows), rowStrings(want)
	if len(got) != len(wantS) {
		t.Fatalf("got %d rows, want %d", len(got), len(wantS))
	}
	for i := range got {
		if got[i] != wantS[i] {
			t.Fatalf("row %d: got %q want %q", i, got[i], wantS[i])
		}
	}
	if done.RowsOut != uint64(len(want)) {
		t.Fatalf("Done.RowsOut = %d, want %d", done.RowsOut, len(want))
	}
	if done.Stats.RowsScanned != wantStats.RowsScanned {
		t.Fatalf("Done.Stats.RowsScanned = %d, want %d", done.Stats.RowsScanned, wantStats.RowsScanned)
	}
}

// Prepared statements: params bind per Execute, and small MaxRows values
// chunk the stream without changing its contents.
func TestServePreparedAndChunking(t *testing.T) {
	srv, addr := startServer(t, Config{}, 300)
	c := dialClient(t, addr)
	prep, ok := c.rpc(t, &wire.Prepare{SQL: "select name from emp where building = ?"}).(*wire.PrepareOK)
	if !ok || prep.NumParams != 1 {
		t.Fatalf("PrepareOK = %+v ok=%v", prep, ok)
	}
	for _, building := range []string{"B1", "B2"} {
		want, _, err := srv.cfg.Engine.QueryParams(
			"select name from emp where building = ?", engine.NI,
			[]sqltypes.Value{sqltypes.NewString(building)})
		if err != nil {
			t.Fatal(err)
		}
		ex, ok := c.rpc(t, &wire.Execute{
			StmtID: prep.StmtID,
			Params: []sqltypes.Value{sqltypes.NewString(building)},
		}).(*wire.ExecuteOK)
		if !ok {
			t.Fatalf("%s: Execute failed", building)
		}
		rows, done, werr := c.drain(t, ex.CursorID, 7) // deliberately tiny batches
		if werr != nil {
			t.Fatalf("%s: %v", building, werr)
		}
		if len(rows) != len(want) || done.RowsOut != uint64(len(want)) {
			t.Fatalf("%s: got %d rows, want %d", building, len(rows), len(want))
		}
		got, wantS := rowStrings(rows), rowStrings(want)
		for i := range got {
			if got[i] != wantS[i] {
				t.Fatalf("%s: row %d differs", building, i)
			}
		}
	}
	// Arity mismatch is an ordinary error; the session continues.
	if _, ok := c.rpc(t, &wire.Execute{StmtID: prep.StmtID}).(*wire.Error); !ok {
		t.Fatal("missing params did not error")
	}
	if _, ok := c.rpc(t, &wire.Ping{}).(*wire.Pong); !ok {
		t.Fatal("session did not survive an execute error")
	}
}

// DDL travels through Exec: a view created over the wire is immediately
// queryable on the same engine.
func TestServeExecDDL(t *testing.T) {
	_, addr := startServer(t, Config{}, 100)
	c := dialClient(t, addr)
	if _, ok := c.rpc(t, &wire.Exec{SQL: "create view big as select name from dept where budget > 200"}).(*wire.ExecOK); !ok {
		t.Fatal("create view failed")
	}
	ex, ok := c.rpc(t, &wire.Execute{SQL: "select name from big"}).(*wire.ExecuteOK)
	if !ok {
		t.Fatal("querying the new view failed")
	}
	if _, _, werr := c.drain(t, ex.CursorID, 0); werr != nil {
		t.Fatalf("drain view: %v", werr)
	}
	// A malformed statement is an ordinary error, not a disconnect.
	if _, ok := c.rpc(t, &wire.Exec{SQL: "create view ! nonsense"}).(*wire.Error); !ok {
		t.Fatal("bad DDL did not error")
	}
	if _, ok := c.rpc(t, &wire.Ping{}).(*wire.Pong); !ok {
		t.Fatal("session did not survive a DDL error")
	}
}

// Out-of-band cancellation: a Cancel frame on a second connection kills
// a stream mid-flight, and the victim's next Fetch reports the typed
// cancellation error.
func TestServeCancelMidStream(t *testing.T) {
	srv, addr := startServer(t, Config{}, 20000)
	c := dialClient(t, addr)
	ex, ok := c.rpc(t, &wire.Execute{SQL: "select name from emp"}).(*wire.ExecuteOK)
	if !ok {
		t.Fatal("Execute failed")
	}
	// Pull one batch so the stream is demonstrably mid-flight.
	if _, ok := c.rpc(t, &wire.Fetch{CursorID: ex.CursorID}).(*wire.Batch); !ok {
		t.Fatal("first fetch did not return a batch")
	}
	// The stream shows up in the remote system catalog while it runs.
	c2 := dialClient(t, addr)
	ex2, ok := c2.rpc(t, &wire.Execute{SQL: "select id, query from sys.active_queries"}).(*wire.ExecuteOK)
	if !ok {
		t.Fatal("sys.active_queries query failed")
	}
	active, _, werr := c2.drain(t, ex2.CursorID, 0)
	if werr != nil {
		t.Fatalf("drain sys.active_queries: %v", werr)
	}
	foundActive := false
	for _, r := range active {
		if r[0].I == ex.QueryID {
			foundActive = true
		}
	}
	if !foundActive {
		t.Fatalf("query %d missing from remote sys.active_queries: %v", ex.QueryID, rowStrings(active))
	}
	// Kill it from the second connection.
	kill, ok := c2.rpc(t, &wire.Cancel{QueryID: ex.QueryID}).(*wire.KillOK)
	if !ok || !kill.Found {
		t.Fatalf("Cancel = %+v ok=%v", kill, ok)
	}
	_, _, werr = c.drain(t, ex.CursorID, 0)
	if werr == nil {
		t.Fatal("stream survived a kill")
	}
	if !errors.Is(werr, exec.ErrCanceled) {
		t.Fatalf("kill error %v does not match exec.ErrCanceled", werr)
	}
	// Killing an already-finished query reports not found.
	kill, ok = c2.rpc(t, &wire.Cancel{QueryID: ex.QueryID}).(*wire.KillOK)
	if !ok || kill.Found {
		t.Fatalf("second Cancel = %+v ok=%v", kill, ok)
	}
	// The victim's session is still usable.
	if _, ok := c.rpc(t, &wire.Ping{}).(*wire.Pong); !ok {
		t.Fatal("session did not survive its query being killed")
	}
	_ = srv
}

// Session limits from the engine apply remotely with their typed
// identity: a row budget trips as CodeRowBudget.
func TestServeRowBudget(t *testing.T) {
	e := engine.New(tpcd.EmpDeptSized(40, 4000, 6, 11))
	e.Limits = exec.Limits{MaxOutputRows: 100}
	e.MountSystemCatalog()
	_, addr := startServer(t, Config{Engine: e}, 0)
	c := dialClient(t, addr)
	ex, ok := c.rpc(t, &wire.Execute{SQL: "select name from emp"}).(*wire.ExecuteOK)
	if !ok {
		t.Fatal("Execute failed")
	}
	rows, _, werr := c.drain(t, ex.CursorID, 0)
	if werr == nil {
		t.Fatal("stream ignored the row budget")
	}
	if !errors.Is(werr, exec.ErrRowBudget) {
		t.Fatalf("budget error %v does not match exec.ErrRowBudget", werr)
	}
	if len(rows) > 100 {
		t.Fatalf("%d rows crossed the wire past a 100-row budget", len(rows))
	}
}

// Handshake rejections: version mismatch, bad options, and admission
// control past MaxSessions.
func TestServeHandshakeAndAdmission(t *testing.T) {
	_, addr := startServer(t, Config{MaxSessions: 1}, 50)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire.Write(conn, &wire.Hello{Version: 99})
	if m, err := wire.Read(conn); err != nil {
		t.Fatal(err)
	} else if e, ok := m.(*wire.Error); !ok || e.Code != wire.CodeProtocol {
		t.Fatalf("version mismatch reply = %+v", m)
	}

	if _, err := tryDial(addr, "strategy", "nope"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := tryDial(addr, "workers", "-3"); err == nil {
		t.Fatal("negative workers accepted")
	}

	first, err := tryDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.conn.Close()
	_, err = tryDial(addr)
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeUnavailable {
		t.Fatalf("second session past MaxSessions=1: err=%v", err)
	}
	// Dropping the first session frees the slot.
	first.conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := tryDial(addr)
		if err == nil {
			c.conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Status reports liveness numbers, and protocol violations close the
// connection after an Error reply.
func TestServeStatusAndProtocolErrors(t *testing.T) {
	_, addr := startServer(t, Config{}, 50)
	c := dialClient(t, addr)
	st, ok := c.rpc(t, &wire.Status{}).(*wire.StatusOK)
	if !ok || st.Sessions < 1 || st.HeapAlloc == 0 {
		t.Fatalf("StatusOK = %+v ok=%v", st, ok)
	}
	// Fetching a cursor that never existed is fatal to the session.
	reply, ok := c.rpc(t, &wire.Fetch{CursorID: 42}).(*wire.Error)
	if !ok || reply.Code != wire.CodeProtocol {
		t.Fatalf("unknown cursor reply = %+v", reply)
	}
	if _, err := wire.Read(c.conn); err == nil {
		t.Fatal("connection stayed open after a protocol violation")
	}
}
