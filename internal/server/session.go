package server

import (
	"bufio"
	"context"
	"io"
	"net"
	"sync/atomic"
	"time"

	"decorr/internal/engine"
	"decorr/internal/storage"
	"decorr/internal/wire"
)

// session is one connection's state: its prepared statements, its open
// cursors, and its execution overrides from the handshake. All fields
// are owned by the connection goroutine; only disconnect and drain
// (called by Server.Close/Shutdown) run on another goroutine, and they
// touch nothing but the context cancel, the draining flag, and the
// connection's deadline/close — all safe cross-goroutine.
type session struct {
	srv      *Server
	conn     net.Conn
	ctx      context.Context
	cancel   context.CancelFunc
	strategy engine.Strategy
	workers  int

	// draining tells the loop a graceful shutdown began: new work is
	// refused with a retryable CodeUnavailable, open cursors keep
	// serving fetches, and the session ends once no cursor remains.
	draining atomic.Bool

	stmts      map[uint64]*engine.Prepared
	cursors    map[uint64]*cursor
	nextStmt   uint64
	nextCursor uint64
}

// cursor is one streaming result: the engine stream plus the tail of the
// last engine batch that did not fit in a Fetch reply. The buffer is at
// most one engine batch — the session-side memory bound.
type cursor struct {
	st   *engine.Stream
	buf  []storage.Row
	sent uint64
}

// disconnect force-closes the session from outside its goroutine: the
// context cancel trips every streaming query's governor, and closing the
// connection unblocks the goroutine's pending read.
func (s *session) disconnect() {
	s.cancel()
	s.conn.Close()
}

// drain flips the session into drain mode from outside its goroutine.
// The immediate read deadline unblocks a loop parked in its frame read
// without closing the connection, so the loop can observe the flag:
// with no open cursor it ends the session; with cursors it keeps
// serving fetches until the stream completes.
func (s *session) drain() {
	s.draining.Store(true)
	s.conn.SetReadDeadline(time.Now())
}

// shutdown releases the session's resources on the connection goroutine.
func (s *session) shutdown() {
	s.cancel()
	for id, c := range s.cursors {
		c.st.Close()
		delete(s.cursors, id)
		s.srv.cursors.Add(-1)
	}
}

// countingReader counts consumed bytes so the loop can tell a clean
// between-frames timeout (retryable: the stream is still in sync) from
// a mid-frame one (fatal: resuming would misparse the stream).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// loop runs the request/reply exchange until the connection drops, a
// deadline expires, a protocol violation makes the peer's state
// untrustworthy, or a drain completes.
func (s *session) loop() {
	cr := &countingReader{r: s.conn}
	w := bufio.NewWriter(s.conn)
	for {
		if s.draining.Load() && len(s.cursors) == 0 {
			return
		}
		s.armReadDeadline()
		before := cr.n
		msg, err := wire.Read(cr)
		if err != nil {
			if isTimeout(err) && cr.n == before {
				// Nothing consumed: the frame stream is still in sync. If
				// this was the drain nudge (or a drain-time idle expiry)
				// and cursors are still streaming, keep serving them; the
				// top-of-loop check ends the session once they close.
				if s.draining.Load() && len(s.cursors) > 0 {
					continue
				}
				if s.draining.Load() {
					return
				}
				// Idle peer past ReadTimeout: reclaim the slot.
				s.srv.cDeadlineDrops.Inc()
				return
			}
			if isTimeout(err) {
				// Mid-frame expiry: the peer stalled while sending a
				// request. Resuming would misparse the stream, so drop.
				s.srv.cDeadlineDrops.Inc()
			}
			return // disconnect (or a frame too broken to answer)
		}
		reply, fatal := s.handle(msg)
		s.armWriteDeadline()
		if err := wire.Write(w, reply); err != nil {
			if isTimeout(err) {
				s.srv.cDeadlineDrops.Inc()
			}
			return
		}
		if err := w.Flush(); err != nil {
			if isTimeout(err) {
				s.srv.cDeadlineDrops.Inc()
			}
			return
		}
		if fatal {
			return
		}
	}
}

// armReadDeadline bounds the wait for the next request frame. During
// drain a short poll deadline wins over everything, so the loop keeps
// re-checking the cursor set and a session whose last cursor just
// closed (or that raced the drain nudge) exits promptly instead of
// lingering until the client's next frame. Otherwise ReadTimeout
// applies when configured, and the deadline is cleared when not.
func (s *session) armReadDeadline() {
	if s.draining.Load() {
		s.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		return
	}
	if d := s.srv.cfg.ReadTimeout; d > 0 {
		s.conn.SetReadDeadline(time.Now().Add(d))
		return
	}
	s.conn.SetReadDeadline(time.Time{})
}

// armWriteDeadline bounds the reply write, so a peer that stops reading
// cannot pin the session goroutine once the kernel buffers fill.
func (s *session) armWriteDeadline() {
	if d := s.srv.cfg.WriteTimeout; d > 0 {
		s.conn.SetWriteDeadline(time.Now().Add(d))
	} else {
		s.conn.SetWriteDeadline(time.Time{})
	}
}

// handle dispatches one request to its reply. fatal reports that the
// connection must close after the reply (protocol violations only —
// query failures are ordinary replies and the session continues).
//
// During drain, requests that would start new work (Prepare, Execute,
// Exec) are refused with a retryable CodeUnavailable; everything that
// finishes or observes existing work (Fetch, Cancel, the closes,
// Status, Ping) still runs, so in-flight streams complete cleanly.
func (s *session) handle(msg wire.Message) (reply wire.Message, fatal bool) {
	switch m := msg.(type) {
	case *wire.Prepare:
		if s.draining.Load() {
			return s.srv.unavailablef("server draining"), false
		}
		return s.handlePrepare(m), false
	case *wire.Execute:
		if s.draining.Load() {
			return s.srv.unavailablef("server draining"), false
		}
		if err := s.srv.shedErr(); err != nil {
			return err, false
		}
		return s.handleExecute(m), false
	case *wire.Fetch:
		return s.handleFetch(m)
	case *wire.Exec:
		if s.draining.Load() {
			return s.srv.unavailablef("server draining"), false
		}
		if err := s.srv.shedErr(); err != nil {
			return err, false
		}
		return s.handleExec(m), false
	case *wire.Cancel:
		return &wire.KillOK{Found: s.srv.cfg.Engine.Kill(m.QueryID)}, false
	case *wire.CloseCursor:
		// Idempotent: Done already closed the cursor server-side, and the
		// client may close again without tracking that.
		if c, ok := s.cursors[m.CursorID]; ok {
			s.dropCursor(m.CursorID, c)
		}
		return &wire.CloseOK{}, false
	case *wire.CloseStmt:
		delete(s.stmts, m.StmtID)
		return &wire.CloseOK{}, false
	case *wire.Status:
		return s.srv.status(), false
	case *wire.Ping:
		return &wire.Pong{}, false
	default:
		return wire.Protocolf("unexpected message %T", msg), true
	}
}

func (s *session) handlePrepare(m *wire.Prepare) wire.Message {
	p, err := s.srv.cfg.Engine.PrepareCached(m.SQL, s.strategy)
	if err != nil {
		return wire.ToError(err)
	}
	s.nextStmt++
	id := s.nextStmt
	s.stmts[id] = p
	return &wire.PrepareOK{
		StmtID:    id,
		NumParams: uint32(p.NumParams),
		Columns:   p.Columns,
	}
}

// resolve finds the statement an Execute/Exec names: a prepared handle
// when StmtID is set, a fresh preparation of SQL otherwise.
func (s *session) resolve(stmtID uint64, sql string) (*engine.Prepared, *wire.Error) {
	if stmtID != 0 {
		p, ok := s.stmts[stmtID]
		if !ok {
			return nil, wire.Protocolf("unknown statement %d", stmtID)
		}
		return p, nil
	}
	p, err := s.srv.cfg.Engine.PrepareCached(sql, s.strategy)
	if err != nil {
		return nil, wire.ToError(err)
	}
	return p, nil
}

func (s *session) handleExecute(m *wire.Execute) wire.Message {
	p, werr := s.resolve(m.StmtID, m.SQL)
	if werr != nil {
		return werr
	}
	st, err := p.StreamWithOpts(s.ctx, m.Params, engine.StreamOpts{Workers: s.workers})
	if err != nil {
		return wire.ToError(err)
	}
	s.nextCursor++
	id := s.nextCursor
	s.cursors[id] = &cursor{st: st}
	s.srv.cursors.Add(1)
	return &wire.ExecuteOK{CursorID: id, QueryID: st.ID(), Columns: st.Columns()}
}

func (s *session) handleFetch(m *wire.Fetch) (wire.Message, bool) {
	c, ok := s.cursors[m.CursorID]
	if !ok {
		// Fetching a cursor that never existed (or was already drained) is
		// a protocol violation: the client's cursor accounting is broken.
		return wire.Protocolf("unknown cursor %d", m.CursorID), true
	}
	max := s.srv.cfg.FetchRows
	if m.MaxRows > 0 {
		max = int(m.MaxRows)
	}
	if len(c.buf) == 0 {
		batch, err := c.st.Next()
		if err != nil {
			s.dropCursor(m.CursorID, c)
			return wire.ToError(err), false
		}
		if batch == nil {
			stats := c.st.Stats()
			s.dropCursor(m.CursorID, c)
			return &wire.Done{RowsOut: c.sent, Stats: stats}, false
		}
		c.buf = batch
	}
	rows := c.buf
	if len(rows) > max {
		rows = rows[:max]
		c.buf = c.buf[max:]
	} else {
		c.buf = nil
	}
	c.sent += uint64(len(rows))
	return &wire.Batch{Rows: rows}, false
}

func (s *session) handleExec(m *wire.Exec) wire.Message {
	// The StmtID form runs a prepared statement to completion; the SQL
	// form goes through the engine's statement path, which also accepts
	// DDL (CREATE VIEW) — that is how views arrive over the network.
	if m.StmtID != 0 {
		p, werr := s.resolve(m.StmtID, "")
		if werr != nil {
			return werr
		}
		rows, _, err := p.RunParamsContext(s.ctx, m.Params)
		if err != nil {
			return wire.ToError(err)
		}
		return &wire.ExecOK{RowsOut: uint64(len(rows))}
	}
	rows, _, err := s.srv.cfg.Engine.ExecParamsContext(s.ctx, m.SQL, s.strategy, m.Params)
	if err != nil {
		return wire.ToError(err)
	}
	return &wire.ExecOK{RowsOut: uint64(len(rows))}
}

func (s *session) dropCursor(id uint64, c *cursor) {
	c.st.Close()
	delete(s.cursors, id)
	s.srv.cursors.Add(-1)
}
