package server

import (
	"bufio"
	"context"
	"net"

	"decorr/internal/engine"
	"decorr/internal/storage"
	"decorr/internal/wire"
)

// session is one connection's state: its prepared statements, its open
// cursors, and its execution overrides from the handshake. All fields
// are owned by the connection goroutine; only disconnect (called by
// Server.Close) runs on another goroutine, and it touches nothing but
// the context cancel and the connection.
type session struct {
	srv      *Server
	conn     net.Conn
	ctx      context.Context
	cancel   context.CancelFunc
	strategy engine.Strategy
	workers  int

	stmts      map[uint64]*engine.Prepared
	cursors    map[uint64]*cursor
	nextStmt   uint64
	nextCursor uint64
}

// cursor is one streaming result: the engine stream plus the tail of the
// last engine batch that did not fit in a Fetch reply. The buffer is at
// most one engine batch — the session-side memory bound.
type cursor struct {
	st   *engine.Stream
	buf  []storage.Row
	sent uint64
}

// disconnect force-closes the session from outside its goroutine: the
// context cancel trips every streaming query's governor, and closing the
// connection unblocks the goroutine's pending read.
func (s *session) disconnect() {
	s.cancel()
	s.conn.Close()
}

// shutdown releases the session's resources on the connection goroutine.
func (s *session) shutdown() {
	s.cancel()
	for id, c := range s.cursors {
		c.st.Close()
		delete(s.cursors, id)
		s.srv.cursors.Add(-1)
	}
}

// loop runs the request/reply exchange until the connection drops or a
// protocol violation makes the peer's state untrustworthy.
func (s *session) loop() {
	w := bufio.NewWriter(s.conn)
	for {
		msg, err := wire.Read(s.conn)
		if err != nil {
			return // disconnect (or a frame too broken to answer)
		}
		reply, fatal := s.handle(msg)
		if err := wire.Write(w, reply); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if fatal {
			return
		}
	}
}

// handle dispatches one request to its reply. fatal reports that the
// connection must close after the reply (protocol violations only —
// query failures are ordinary replies and the session continues).
func (s *session) handle(msg wire.Message) (reply wire.Message, fatal bool) {
	switch m := msg.(type) {
	case *wire.Prepare:
		return s.handlePrepare(m), false
	case *wire.Execute:
		return s.handleExecute(m), false
	case *wire.Fetch:
		return s.handleFetch(m)
	case *wire.Exec:
		return s.handleExec(m), false
	case *wire.Cancel:
		return &wire.KillOK{Found: s.srv.cfg.Engine.Kill(m.QueryID)}, false
	case *wire.CloseCursor:
		// Idempotent: Done already closed the cursor server-side, and the
		// client may close again without tracking that.
		if c, ok := s.cursors[m.CursorID]; ok {
			s.dropCursor(m.CursorID, c)
		}
		return &wire.CloseOK{}, false
	case *wire.CloseStmt:
		delete(s.stmts, m.StmtID)
		return &wire.CloseOK{}, false
	case *wire.Status:
		return s.srv.status(), false
	case *wire.Ping:
		return &wire.Pong{}, false
	default:
		return wire.Protocolf("unexpected message %T", msg), true
	}
}

func (s *session) handlePrepare(m *wire.Prepare) wire.Message {
	p, err := s.srv.cfg.Engine.PrepareCached(m.SQL, s.strategy)
	if err != nil {
		return wire.ToError(err)
	}
	s.nextStmt++
	id := s.nextStmt
	s.stmts[id] = p
	return &wire.PrepareOK{
		StmtID:    id,
		NumParams: uint32(p.NumParams),
		Columns:   p.Columns,
	}
}

// resolve finds the statement an Execute/Exec names: a prepared handle
// when StmtID is set, a fresh preparation of SQL otherwise.
func (s *session) resolve(stmtID uint64, sql string) (*engine.Prepared, *wire.Error) {
	if stmtID != 0 {
		p, ok := s.stmts[stmtID]
		if !ok {
			return nil, wire.Protocolf("unknown statement %d", stmtID)
		}
		return p, nil
	}
	p, err := s.srv.cfg.Engine.PrepareCached(sql, s.strategy)
	if err != nil {
		return nil, wire.ToError(err)
	}
	return p, nil
}

func (s *session) handleExecute(m *wire.Execute) wire.Message {
	p, werr := s.resolve(m.StmtID, m.SQL)
	if werr != nil {
		return werr
	}
	st, err := p.StreamWithOpts(s.ctx, m.Params, engine.StreamOpts{Workers: s.workers})
	if err != nil {
		return wire.ToError(err)
	}
	s.nextCursor++
	id := s.nextCursor
	s.cursors[id] = &cursor{st: st}
	s.srv.cursors.Add(1)
	return &wire.ExecuteOK{CursorID: id, QueryID: st.ID(), Columns: st.Columns()}
}

func (s *session) handleFetch(m *wire.Fetch) (wire.Message, bool) {
	c, ok := s.cursors[m.CursorID]
	if !ok {
		// Fetching a cursor that never existed (or was already drained) is
		// a protocol violation: the client's cursor accounting is broken.
		return wire.Protocolf("unknown cursor %d", m.CursorID), true
	}
	max := s.srv.cfg.FetchRows
	if m.MaxRows > 0 {
		max = int(m.MaxRows)
	}
	if len(c.buf) == 0 {
		batch, err := c.st.Next()
		if err != nil {
			s.dropCursor(m.CursorID, c)
			return wire.ToError(err), false
		}
		if batch == nil {
			stats := c.st.Stats()
			s.dropCursor(m.CursorID, c)
			return &wire.Done{RowsOut: c.sent, Stats: stats}, false
		}
		c.buf = batch
	}
	rows := c.buf
	if len(rows) > max {
		rows = rows[:max]
		c.buf = c.buf[max:]
	} else {
		c.buf = nil
	}
	c.sent += uint64(len(rows))
	return &wire.Batch{Rows: rows}, false
}

func (s *session) handleExec(m *wire.Exec) wire.Message {
	// The StmtID form runs a prepared statement to completion; the SQL
	// form goes through the engine's statement path, which also accepts
	// DDL (CREATE VIEW) — that is how views arrive over the network.
	if m.StmtID != 0 {
		p, werr := s.resolve(m.StmtID, "")
		if werr != nil {
			return werr
		}
		rows, _, err := p.RunParamsContext(s.ctx, m.Params)
		if err != nil {
			return wire.ToError(err)
		}
		return &wire.ExecOK{RowsOut: uint64(len(rows))}
	}
	rows, _, err := s.srv.cfg.Engine.ExecParamsContext(s.ctx, m.SQL, s.strategy, m.Params)
	if err != nil {
		return wire.ToError(err)
	}
	return &wire.ExecOK{RowsOut: uint64(len(rows))}
}

func (s *session) dropCursor(id uint64, c *cursor) {
	c.st.Close()
	delete(s.cursors, id)
	s.srv.cursors.Add(-1)
}
