// Package server implements decorrd: a network front end serving the
// decorrelation engine over the wire protocol (package wire).
//
// The design is one goroutine per connection running a strict
// request/reply loop — the protocol never pushes unsolicited frames, so
// a session needs no writer goroutine and no reply multiplexing. All
// cross-session coordination happens inside the shared *engine.Engine
// (plan cache, registry, storage), which is already built for concurrent
// clients; the server's own shared state is just the session set.
//
// Memory: a session holds at most one engine batch per open cursor
// (streamed via engine.Stream, which holds no full result), so the
// server-side cost of a million-row result is one batch plus the frame
// being written — this is the property the server-smoke benchmark pins.
//
// Cancellation is out-of-band: a Cancel frame on any connection kills
// the registry query ID it names, which trips the victim's governor at
// its next morsel claim. A disconnect cancels the session context, which
// kills every query the session still has streaming.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"decorr/internal/engine"
	"decorr/internal/wire"
)

// Config configures a Server. Engine is required; everything else has a
// serving default.
type Config struct {
	// Engine executes the queries. Enable its registry (or mount the
	// system catalog) before serving if remote Cancel should work; the
	// server functions without one, reporting Cancel targets as not found.
	Engine *engine.Engine
	// Strategy is the default decorrelation strategy for sessions that do
	// not pick one in their handshake. The zero value is NI; servers
	// usually want Auto.
	Strategy engine.Strategy
	// MaxSessions caps concurrent sessions; further handshakes are
	// refused with CodeUnavailable. Zero means DefaultMaxSessions.
	MaxSessions int
	// FetchRows is the reply-batch row cap used when a Fetch names none.
	// Zero means DefaultFetchRows.
	FetchRows int
	// Name is the server name announced in the handshake.
	Name string
}

const (
	// DefaultMaxSessions bounds concurrent sessions by default.
	DefaultMaxSessions = 64
	// DefaultFetchRows is the default reply-batch row cap. It matches the
	// engine's streaming batch so one Fetch usually maps to one engine
	// batch.
	DefaultFetchRows = 1024
)

// Server serves the wire protocol on a listener.
type Server struct {
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	closed   bool
	wg       sync.WaitGroup

	cursors atomic.Int64 // open cursors across all sessions, for Status
}

// New builds a Server. It panics on a nil engine — that is a programming
// error, not a runtime condition.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("server: Config.Engine is required")
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.FetchRows <= 0 {
		cfg.FetchRows = DefaultFetchRows
	}
	if cfg.Name == "" {
		cfg.Name = "decorrd"
	}
	return &Server{cfg: cfg, sessions: make(map[*session]struct{})}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It returns nil after
// Close and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Addr reports the listening address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener, disconnects every session (canceling their
// in-flight queries), and waits for the connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	open := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, sess := range open {
		sess.disconnect()
	}
	s.wg.Wait()
	return nil
}

// admit registers a session, enforcing MaxSessions.
func (s *Server) admit(sess *session) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return &wire.Error{Code: wire.CodeUnavailable, Msg: "server shutting down"}
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return &wire.Error{Code: wire.CodeUnavailable,
			Msg: fmt.Sprintf("server at capacity (%d sessions)", s.cfg.MaxSessions)}
	}
	s.sessions[sess] = struct{}{}
	return nil
}

func (s *Server) drop(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}

// status builds the health snapshot for a Status request.
func (s *Server) status() *wire.StatusOK {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	sessions := len(s.sessions)
	s.mu.Unlock()
	var active int
	if reg := s.cfg.Engine.Registry(); reg != nil {
		active = len(reg.Active())
	}
	return &wire.StatusOK{
		HeapAlloc:     ms.HeapAlloc,
		TotalAlloc:    ms.TotalAlloc,
		NumGoroutine:  uint32(runtime.NumGoroutine()),
		Sessions:      uint32(sessions),
		OpenCursors:   uint32(s.cursors.Load()),
		ActiveQueries: uint32(active),
	}
}

// serveConn runs one connection's handshake and request loop.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	msg, err := wire.Read(conn)
	if err != nil {
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		wire.Write(conn, wire.Protocolf("expected Hello, got %T", msg))
		return
	}
	if hello.Version != wire.Version {
		wire.Write(conn, wire.Protocolf("protocol version %d not supported (server speaks %d)",
			hello.Version, wire.Version))
		return
	}
	sess, err := s.newSession(conn, hello.Options)
	if err != nil {
		wire.Write(conn, wire.ToError(err))
		return
	}
	if err := s.admit(sess); err != nil {
		wire.Write(conn, wire.ToError(err))
		return
	}
	defer func() {
		sess.shutdown()
		s.drop(sess)
	}()
	if err := wire.Write(conn, &wire.HelloOK{Version: wire.Version, ServerName: s.cfg.Name}); err != nil {
		return
	}
	sess.loop()
}

// strategyNames maps handshake strategy options to engine strategies,
// matching the CLI's -strategy vocabulary plus "auto".
var strategyNames = map[string]engine.Strategy{
	"ni": engine.NI, "nimemo": engine.NIMemo, "nibatch": engine.NIBatch,
	"kim": engine.Kim, "dayal": engine.Dayal, "gw": engine.GanskiWong,
	"magic": engine.Magic, "optmagic": engine.OptMagic, "auto": engine.Auto,
}

// ParseStrategy resolves a strategy name from the handshake/DSN
// vocabulary (ni, nimemo, nibatch, kim, dayal, gw, magic, optmagic, auto).
func ParseStrategy(name string) (engine.Strategy, bool) {
	s, ok := strategyNames[strings.ToLower(name)]
	return s, ok
}

// newSession builds a session from handshake options. Unknown option
// keys are rejected — a typo in a DSN should fail the connect, not
// silently run with defaults.
func (s *Server) newSession(conn net.Conn, options []string) (*session, error) {
	if len(options)%2 != 0 {
		return nil, wire.Protocolf("handshake options must be key/value pairs")
	}
	sess := &session{
		srv:      s,
		conn:     conn,
		strategy: s.cfg.Strategy,
		stmts:    make(map[uint64]*engine.Prepared),
		cursors:  make(map[uint64]*cursor),
	}
	sess.ctx, sess.cancel = context.WithCancel(context.Background())
	for i := 0; i+1 < len(options); i += 2 {
		key, val := options[i], options[i+1]
		switch key {
		case "strategy":
			st, ok := ParseStrategy(val)
			if !ok {
				return nil, fmt.Errorf("server: unknown strategy %q", val)
			}
			sess.strategy = st
		case "workers":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("server: bad workers option %q", val)
			}
			sess.workers = n
		default:
			return nil, fmt.Errorf("server: unknown handshake option %q", key)
		}
	}
	return sess, nil
}
