// Package server implements decorrd: a network front end serving the
// decorrelation engine over the wire protocol (package wire).
//
// The design is one goroutine per connection running a strict
// request/reply loop — the protocol never pushes unsolicited frames, so
// a session needs no writer goroutine and no reply multiplexing. All
// cross-session coordination happens inside the shared *engine.Engine
// (plan cache, registry, storage), which is already built for concurrent
// clients; the server's own shared state is just the session set.
//
// Memory: a session holds at most one engine batch per open cursor
// (streamed via engine.Stream, which holds no full result), so the
// server-side cost of a million-row result is one batch plus the frame
// being written — this is the property the server-smoke benchmark pins.
//
// Cancellation is out-of-band: a Cancel frame on any connection kills
// the registry query ID it names, which trips the victim's governor at
// its next morsel claim. A disconnect cancels the session context, which
// kills every query the session still has streaming.
//
// Lifecycle: Shutdown drains — it stops accepting, refuses new work
// with a retryable CodeUnavailable, lets in-flight queries and open
// cursors finish, and falls back to the hard Close at its context
// deadline. Peer protection (handshake, per-request read, and reply
// write deadlines) frees the slot of a silent or dead peer, and
// admission sheds load past the active-query/heap watermarks with a
// retryable CodeOverloaded carrying a backoff hint. Every client-visible
// outcome under faults, overload, and shutdown is a correct result or a
// clean typed error — the serving-layer mirror of the engine's
// fault-injection contract (see docs/robustness.md).
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"decorr/internal/engine"
	"decorr/internal/trace"
	"decorr/internal/wire"
)

// Config configures a Server. Engine is required; everything else has a
// serving default.
type Config struct {
	// Engine executes the queries. Enable its registry (or mount the
	// system catalog) before serving if remote Cancel should work; the
	// server functions without one, reporting Cancel targets as not found.
	Engine *engine.Engine
	// Strategy is the default decorrelation strategy for sessions that do
	// not pick one in their handshake. The zero value is NI; servers
	// usually want Auto.
	Strategy engine.Strategy
	// MaxSessions caps concurrent sessions; further handshakes are
	// refused with a retryable CodeUnavailable. Zero means
	// DefaultMaxSessions.
	MaxSessions int
	// FetchRows is the reply-batch row cap used when a Fetch names none.
	// Zero means DefaultFetchRows.
	FetchRows int
	// Name is the server name announced in the handshake.
	Name string

	// HandshakeTimeout bounds the whole handshake: a peer that connects
	// and never completes a Hello is dropped when it expires, freeing
	// the goroutine and connection it would otherwise pin forever. Zero
	// means DefaultHandshakeTimeout; negative disables the bound.
	HandshakeTimeout time.Duration
	// ReadTimeout bounds the idle wait for the next request frame on an
	// established session; a session that exceeds it is dropped. Zero
	// means no bound (connection pools legitimately hold idle
	// sessions); set it when serving untrusted peers.
	ReadTimeout time.Duration
	// WriteTimeout bounds each reply frame write, so a peer that stops
	// reading cannot pin a session goroutine (and the engine batch its
	// cursor buffers) once the kernel buffers fill. Zero means
	// DefaultWriteTimeout; negative disables the bound.
	WriteTimeout time.Duration

	// MaxActiveQueries sheds new sessions and new queries with a
	// retryable CodeOverloaded while this many queries are already
	// running (per the engine registry). Zero means no cap. Requires a
	// registry; without one the check is skipped.
	MaxActiveQueries int
	// MaxHeapBytes sheds the same way while the process heap exceeds
	// this many bytes (sampled, at most every 100ms). Zero means no cap.
	MaxHeapBytes uint64
	// RetryAfter is the backoff hint carried by shed and drain
	// rejections. Zero means DefaultRetryAfter.
	RetryAfter time.Duration
}

const (
	// DefaultMaxSessions bounds concurrent sessions by default.
	DefaultMaxSessions = 64
	// DefaultFetchRows is the default reply-batch row cap. It matches the
	// engine's streaming batch so one Fetch usually maps to one engine
	// batch.
	DefaultFetchRows = 1024
	// DefaultHandshakeTimeout bounds the pre-Hello window by default.
	DefaultHandshakeTimeout = 10 * time.Second
	// DefaultWriteTimeout bounds each reply frame write by default.
	DefaultWriteTimeout = time.Minute
	// DefaultRetryAfter is the default backoff hint on retryable
	// rejections.
	DefaultRetryAfter = 250 * time.Millisecond

	// heapSampleEvery is how stale the cached heap reading may go:
	// runtime.ReadMemStats stops the world, so admission must not pay
	// for it per request.
	heapSampleEvery = 100 * time.Millisecond

	// acceptBackoffMin/Max bound the retry backoff for transient Accept
	// errors (EMFILE, ECONNABORTED, …).
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = time.Second
)

// Server serves the wire protocol on a listener.
type Server struct {
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	draining bool
	closed   bool
	wg       sync.WaitGroup

	cursors atomic.Int64 // open cursors across all sessions, for Status

	heapAt    atomic.Int64  // unix nanos of the last heap sample
	heapBytes atomic.Uint64 // cached HeapAlloc

	// Robustness counters, published in trace.Metrics (and therefore in
	// sys.metrics and the Prometheus endpoint). Created eagerly so they
	// are visible at zero.
	cRefused       *trace.Counter // handshakes refused (capacity, drain, overload)
	cSheds         *trace.Counter // overload sheds (admission + per-query)
	cDrains        *trace.Counter // graceful drains begun
	cDeadlineDrops *trace.Counter // peers dropped by handshake/read/write deadlines
	cAcceptRetries *trace.Counter // transient Accept errors retried
}

// New builds a Server. It panics on a nil engine — that is a programming
// error, not a runtime condition.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("server: Config.Engine is required")
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.FetchRows <= 0 {
		cfg.FetchRows = DefaultFetchRows
	}
	if cfg.Name == "" {
		cfg.Name = "decorrd"
	}
	switch {
	case cfg.HandshakeTimeout == 0:
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	case cfg.HandshakeTimeout < 0:
		cfg.HandshakeTimeout = 0
	}
	switch {
	case cfg.WriteTimeout == 0:
		cfg.WriteTimeout = DefaultWriteTimeout
	case cfg.WriteTimeout < 0:
		cfg.WriteTimeout = 0
	}
	if cfg.ReadTimeout < 0 {
		cfg.ReadTimeout = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	return &Server{
		cfg:            cfg,
		sessions:       make(map[*session]struct{}),
		cRefused:       trace.Metrics.Counter("server.sessions_refused"),
		cSheds:         trace.Metrics.Counter("server.sheds"),
		cDrains:        trace.Metrics.Counter("server.drains"),
		cDeadlineDrops: trace.Metrics.Counter("server.deadline_drops"),
		cAcceptRetries: trace.Metrics.Counter("server.accept_retries"),
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close or Shutdown. Transient
// accept errors (EMFILE, ECONNABORTED, a timeout) are retried with
// capped exponential backoff — one bad accept must not kill the server.
// Serve returns nil after Close/Shutdown and the accept error on
// persistent (non-transient) failure.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.closed || s.draining
			s.mu.Unlock()
			if stopped {
				return nil
			}
			if !transientAcceptError(err) {
				return err
			}
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			s.cAcceptRetries.Inc()
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// transientAcceptError classifies listener errors worth retrying: load-
// or peer-induced conditions that clear on their own. A closed listener
// is never transient (Serve checks the close flags first and returns
// the error only for an unexpected close).
func transientAcceptError(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNABORTED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EMFILE) ||
		errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.EINTR)
}

// Addr reports the listening address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener, disconnects every session (canceling their
// in-flight queries), and waits for the connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	open := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, sess := range open {
		sess.disconnect()
	}
	s.wg.Wait()
	return nil
}

// Shutdown drains the server gracefully: it stops accepting, refuses
// new sessions and new queries with a retryable CodeUnavailable, lets
// in-flight queries and open cursors run to completion, and returns nil
// once every session has ended. Sessions with no open cursor are closed
// immediately; sessions mid-stream close as soon as their last cursor
// drains. If ctx expires first, Shutdown falls back to the hard Close
// (canceling whatever is still running) and returns ctx.Err().
//
// Shutdown is idempotent and safe to race with Close, admissions, and
// in-flight streams; a second concurrent Shutdown waits for the same
// drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	first := !s.draining
	s.draining = true
	ln := s.ln
	open := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	if first {
		s.cDrains.Inc()
		if ln != nil {
			ln.Close()
		}
		// Nudge every session: cursorless ones exit now, streaming ones
		// keep serving fetches and exit when their last cursor closes.
		for _, sess := range open {
			sess.drain()
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		s.Close()
		return ctx.Err()
	}
}

// Draining reports whether a graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// unavailablef builds the retryable drain/capacity rejection.
func (s *Server) unavailablef(format string, args ...any) *wire.Error {
	return &wire.Error{
		Code: wire.CodeUnavailable, Msg: fmt.Sprintf(format, args...),
		Retryable: true, RetryAfterMs: s.retryAfterMs(),
	}
}

func (s *Server) retryAfterMs() uint32 {
	ms := s.cfg.RetryAfter / time.Millisecond
	if ms <= 0 {
		ms = 1
	}
	return uint32(ms)
}

// admit registers a session, enforcing drain, MaxSessions, and the
// overload watermarks.
func (s *Server) admit(sess *session) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		s.cRefused.Inc()
		return s.unavailablef("server draining")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.cRefused.Inc()
		return s.unavailablef("server at capacity (%d sessions)", s.cfg.MaxSessions)
	}
	s.mu.Unlock()
	if err := s.shedErr(); err != nil {
		s.cRefused.Inc()
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check the states that may have flipped while shedding was
	// evaluated without the lock.
	if s.closed || s.draining {
		s.cRefused.Inc()
		return s.unavailablef("server draining")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.cRefused.Inc()
		return s.unavailablef("server at capacity (%d sessions)", s.cfg.MaxSessions)
	}
	s.sessions[sess] = struct{}{}
	return nil
}

// shedErr reports the overload rejection when the server is past its
// active-query or heap watermark, nil otherwise. Both signals are the
// ones status() reports, so what an operator sees is what admission
// acts on.
func (s *Server) shedErr() *wire.Error {
	if s.cfg.MaxActiveQueries > 0 {
		if reg := s.cfg.Engine.Registry(); reg != nil {
			if active := len(reg.Active()); active >= s.cfg.MaxActiveQueries {
				s.cSheds.Inc()
				return &wire.Error{
					Code:      wire.CodeOverloaded,
					Msg:       fmt.Sprintf("overloaded: %d active queries at the %d cap", active, s.cfg.MaxActiveQueries),
					Retryable: true, RetryAfterMs: s.retryAfterMs(),
				}
			}
		}
	}
	if s.cfg.MaxHeapBytes > 0 {
		if heap := s.heapAlloc(); heap >= s.cfg.MaxHeapBytes {
			s.cSheds.Inc()
			return &wire.Error{
				Code:      wire.CodeOverloaded,
				Msg:       fmt.Sprintf("overloaded: heap %d bytes over the %d watermark", heap, s.cfg.MaxHeapBytes),
				Retryable: true, RetryAfterMs: s.retryAfterMs(),
			}
		}
	}
	return nil
}

// heapAlloc returns the live heap, sampled at most every
// heapSampleEvery — ReadMemStats stops the world, so admission cannot
// afford a fresh reading per request.
func (s *Server) heapAlloc() uint64 {
	now := time.Now().UnixNano()
	last := s.heapAt.Load()
	if now-last < int64(heapSampleEvery) {
		return s.heapBytes.Load()
	}
	if s.heapAt.CompareAndSwap(last, now) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.heapBytes.Store(ms.HeapAlloc)
	}
	return s.heapBytes.Load()
}

func (s *Server) drop(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}

// status builds the health snapshot for a Status request.
func (s *Server) status() *wire.StatusOK {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	sessions := len(s.sessions)
	draining := s.draining
	s.mu.Unlock()
	var active int
	if reg := s.cfg.Engine.Registry(); reg != nil {
		active = len(reg.Active())
	}
	return &wire.StatusOK{
		HeapAlloc:     ms.HeapAlloc,
		TotalAlloc:    ms.TotalAlloc,
		NumGoroutine:  uint32(runtime.NumGoroutine()),
		Sessions:      uint32(sessions),
		OpenCursors:   uint32(s.cursors.Load()),
		ActiveQueries: uint32(active),
		Draining:      draining,
	}
}

// isTimeout reports a deadline-induced I/O failure.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// serveConn runs one connection's handshake and request loop. The whole
// handshake runs under HandshakeTimeout — a peer that connects and
// never sends a complete Hello is dropped when it expires instead of
// pinning this goroutine and the connection forever.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	if d := s.cfg.HandshakeTimeout; d > 0 {
		conn.SetDeadline(time.Now().Add(d))
	}
	msg, err := wire.Read(conn)
	if err != nil {
		if isTimeout(err) {
			s.cDeadlineDrops.Inc()
		}
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		wire.Write(conn, wire.Protocolf("expected Hello, got %T", msg))
		return
	}
	if hello.Version != wire.Version {
		wire.Write(conn, wire.Protocolf("protocol version %d not supported (server speaks %d)",
			hello.Version, wire.Version))
		return
	}
	sess, err := s.newSession(conn, hello.Options)
	if err != nil {
		wire.Write(conn, wire.ToError(err))
		return
	}
	if err := s.admit(sess); err != nil {
		wire.Write(conn, wire.ToError(err))
		return
	}
	defer func() {
		sess.shutdown()
		s.drop(sess)
	}()
	if err := wire.Write(conn, &wire.HelloOK{Version: wire.Version, ServerName: s.cfg.Name}); err != nil {
		return
	}
	// Hand deadline control to the loop's per-request arming.
	conn.SetDeadline(time.Time{})
	sess.loop()
}

// strategyNames maps handshake strategy options to engine strategies,
// matching the CLI's -strategy vocabulary plus "auto".
var strategyNames = map[string]engine.Strategy{
	"ni": engine.NI, "nimemo": engine.NIMemo, "nibatch": engine.NIBatch,
	"kim": engine.Kim, "dayal": engine.Dayal, "gw": engine.GanskiWong,
	"magic": engine.Magic, "optmagic": engine.OptMagic, "auto": engine.Auto,
}

// ParseStrategy resolves a strategy name from the handshake/DSN
// vocabulary (ni, nimemo, nibatch, kim, dayal, gw, magic, optmagic, auto).
func ParseStrategy(name string) (engine.Strategy, bool) {
	s, ok := strategyNames[strings.ToLower(name)]
	return s, ok
}

// newSession builds a session from handshake options. Unknown option
// keys are rejected — a typo in a DSN should fail the connect, not
// silently run with defaults.
func (s *Server) newSession(conn net.Conn, options []string) (*session, error) {
	if len(options)%2 != 0 {
		return nil, wire.Protocolf("handshake options must be key/value pairs")
	}
	sess := &session{
		srv:      s,
		conn:     conn,
		strategy: s.cfg.Strategy,
		stmts:    make(map[uint64]*engine.Prepared),
		cursors:  make(map[uint64]*cursor),
	}
	sess.ctx, sess.cancel = context.WithCancel(context.Background())
	for i := 0; i+1 < len(options); i += 2 {
		key, val := options[i], options[i+1]
		switch key {
		case "strategy":
			st, ok := ParseStrategy(val)
			if !ok {
				return nil, fmt.Errorf("server: unknown strategy %q", val)
			}
			sess.strategy = st
		case "workers":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("server: bad workers option %q", val)
			}
			sess.workers = n
		default:
			return nil, fmt.Errorf("server: unknown handshake option %q", key)
		}
	}
	return sess, nil
}
