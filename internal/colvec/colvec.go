// Package colvec implements typed column vectors: the columnar value
// representation of the vectorized executor. A Vec holds one column of a
// batch as a typed array (int64/float64/string/bool) plus a null bitmap,
// falling back to a boxed []Value only for mixed-kind columns. Vectors are
// immutable after construction; batch operators share them freely and
// express filtering through selection vectors (index lists) rather than
// copying.
package colvec

import (
	"decorr/internal/sqltypes"
)

// Bitmap is a dense bit set marking NULL positions of a Vec. The nil
// Bitmap means "no nulls" and answers Get(i) == false for every i, so the
// common all-valid column costs one nil check per element.
type Bitmap []uint64

// NewBitmap returns an all-clear bitmap covering n positions.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Set marks position i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether position i is marked. A nil bitmap reports false.
func (b Bitmap) Get(i int) bool {
	if b == nil {
		return false
	}
	return b[i>>6]&(1<<(uint(i)&63)) != 0
}

// Any reports whether any position is marked.
func (b Bitmap) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Vec is one column of values. Exactly one representation is active:
//
//   - Mixed != nil: boxed values, used when a column holds more than one
//     non-NULL kind (rare — generated data and expression outputs are
//     almost always uniformly typed).
//   - otherwise K selects the typed array (Ints/Floats/Strs/Bools) with
//     Nulls marking NULL positions; K == KindNull means every value is
//     NULL and no array is allocated.
//
// Elements at NULL positions of a typed array hold the zero value of the
// type; readers must consult Nulls (or use Value/IsNull).
type Vec struct {
	K      sqltypes.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Nulls  Bitmap
	Mixed  []sqltypes.Value
	n      int
}

// Len returns the number of elements.
func (v *Vec) Len() int { return v.n }

// IsNull reports whether element i is SQL NULL.
func (v *Vec) IsNull(i int) bool {
	if v.Mixed != nil {
		return v.Mixed[i].IsNull()
	}
	if v.K == sqltypes.KindNull {
		return true
	}
	return v.Nulls.Get(i)
}

// HasNulls reports whether any element is NULL.
func (v *Vec) HasNulls() bool {
	if v.Mixed != nil {
		for i := range v.Mixed {
			if v.Mixed[i].IsNull() {
				return true
			}
		}
		return false
	}
	return v.K == sqltypes.KindNull || v.Nulls.Any()
}

// Value boxes element i. The returned Value shares the string payload.
func (v *Vec) Value(i int) sqltypes.Value {
	if v.Mixed != nil {
		return v.Mixed[i]
	}
	if v.K == sqltypes.KindNull || v.Nulls.Get(i) {
		return sqltypes.Null
	}
	switch v.K {
	case sqltypes.KindInt:
		return sqltypes.NewInt(v.Ints[i])
	case sqltypes.KindFloat:
		return sqltypes.NewFloat(v.Floats[i])
	case sqltypes.KindString:
		return sqltypes.NewString(v.Strs[i])
	case sqltypes.KindBool:
		return sqltypes.NewBool(v.Bools[i])
	}
	return sqltypes.Null
}

// AppendKeyAt appends the canonical key encoding of element i to dst —
// identical bytes to sqltypes.AppendKey of the boxed value.
func (v *Vec) AppendKeyAt(dst []byte, i int) []byte {
	return sqltypes.AppendKey(dst, v.Value(i))
}

// FromColumn builds a Vec from the col'th value of each row. It detects a
// uniform kind in one pass and falls back to the boxed representation for
// mixed-kind columns. The generic signature admits any row type defined
// as []sqltypes.Value (e.g. storage.Row) without copying.
func FromColumn[R ~[]sqltypes.Value](rows []R, col int) Vec {
	n := len(rows)
	kind := sqltypes.KindNull
	mixed := false
	hasNull := false
	for i := range rows {
		k := rows[i][col].K
		if k == sqltypes.KindNull {
			hasNull = true
			continue
		}
		if kind == sqltypes.KindNull {
			kind = k
		} else if kind != k {
			mixed = true
			break
		}
	}
	if mixed {
		out := Vec{Mixed: make([]sqltypes.Value, n), n: n}
		for i := range rows {
			out.Mixed[i] = rows[i][col]
		}
		return out
	}
	out := Vec{K: kind, n: n}
	if kind == sqltypes.KindNull {
		return out
	}
	if hasNull {
		out.Nulls = NewBitmap(n)
	}
	switch kind {
	case sqltypes.KindInt:
		out.Ints = make([]int64, n)
	case sqltypes.KindFloat:
		out.Floats = make([]float64, n)
	case sqltypes.KindString:
		out.Strs = make([]string, n)
	case sqltypes.KindBool:
		out.Bools = make([]bool, n)
	}
	for i := range rows {
		x := rows[i][col]
		if x.K == sqltypes.KindNull {
			out.Nulls.Set(i)
			continue
		}
		switch kind {
		case sqltypes.KindInt:
			out.Ints[i] = x.I
		case sqltypes.KindFloat:
			out.Floats[i] = x.F
		case sqltypes.KindString:
			out.Strs[i] = x.S
		case sqltypes.KindBool:
			out.Bools[i] = x.B
		}
	}
	return out
}

// FromValues builds a Vec from a dense value slice, detecting a uniform
// kind the same way FromColumn does.
func FromValues(vals []sqltypes.Value) Vec {
	n := len(vals)
	kind := sqltypes.KindNull
	for i := range vals {
		k := vals[i].K
		if k == sqltypes.KindNull {
			continue
		}
		if kind == sqltypes.KindNull {
			kind = k
		} else if kind != k {
			return Vec{Mixed: append([]sqltypes.Value(nil), vals...), n: n}
		}
	}
	out := Vec{K: kind, n: n}
	if kind == sqltypes.KindNull {
		return out
	}
	switch kind {
	case sqltypes.KindInt:
		out.Ints = make([]int64, n)
	case sqltypes.KindFloat:
		out.Floats = make([]float64, n)
	case sqltypes.KindString:
		out.Strs = make([]string, n)
	case sqltypes.KindBool:
		out.Bools = make([]bool, n)
	}
	for i := range vals {
		x := vals[i]
		if x.K == sqltypes.KindNull {
			if out.Nulls == nil {
				out.Nulls = NewBitmap(n)
			}
			out.Nulls.Set(i)
			continue
		}
		switch kind {
		case sqltypes.KindInt:
			out.Ints[i] = x.I
		case sqltypes.KindFloat:
			out.Floats[i] = x.F
		case sqltypes.KindString:
			out.Strs[i] = x.S
		case sqltypes.KindBool:
			out.Bools[i] = x.B
		}
	}
	return out
}

// Broadcast builds a Vec of n copies of v — outer (correlated) column
// references resolve to one value per batch and broadcast into the
// kernels.
func Broadcast(v sqltypes.Value, n int) Vec {
	out := Vec{K: v.K, n: n}
	switch v.K {
	case sqltypes.KindNull:
	case sqltypes.KindInt:
		out.Ints = make([]int64, n)
		for i := range out.Ints {
			out.Ints[i] = v.I
		}
	case sqltypes.KindFloat:
		out.Floats = make([]float64, n)
		for i := range out.Floats {
			out.Floats[i] = v.F
		}
	case sqltypes.KindString:
		out.Strs = make([]string, n)
		for i := range out.Strs {
			out.Strs[i] = v.S
		}
	case sqltypes.KindBool:
		out.Bools = make([]bool, n)
		for i := range out.Bools {
			out.Bools[i] = v.B
		}
	}
	return out
}

// FromInts builds an int64 Vec over the given array (no copy).
func FromInts(xs []int64) Vec { return Vec{K: sqltypes.KindInt, Ints: xs, n: len(xs)} }

// FromFloats builds a float64 Vec over the given array (no copy).
func FromFloats(xs []float64) Vec { return Vec{K: sqltypes.KindFloat, Floats: xs, n: len(xs)} }

// FromMixed builds a boxed Vec over the given values (no copy).
func FromMixed(vals []sqltypes.Value) Vec { return Vec{Mixed: vals, n: len(vals)} }

// Gather returns a dense Vec holding v's elements at the given physical
// indices, in order, preserving the typed representation. A contiguous
// ascending index range — the common case for scan-order selection
// chunks — returns a zero-copy view sharing v's arrays (vectors are
// immutable, so views are safe); the null bitmap cannot be re-based, so
// vectors with nulls always copy.
func (v *Vec) Gather(idx []int32) Vec {
	n := len(idx)
	if n > 0 && v.Nulls == nil {
		base := idx[0]
		contig := true
		for k := 1; k < n; k++ {
			if idx[k] != base+int32(k) {
				contig = false
				break
			}
		}
		if contig {
			lo, hi := int(base), int(base)+n
			out := Vec{K: v.K, n: n}
			switch {
			case v.Mixed != nil:
				out = Vec{Mixed: v.Mixed[lo:hi], n: n}
			case v.K == sqltypes.KindInt:
				out.Ints = v.Ints[lo:hi]
			case v.K == sqltypes.KindFloat:
				out.Floats = v.Floats[lo:hi]
			case v.K == sqltypes.KindString:
				out.Strs = v.Strs[lo:hi]
			case v.K == sqltypes.KindBool:
				out.Bools = v.Bools[lo:hi]
			}
			return out
		}
	}
	if v.Mixed != nil {
		out := Vec{Mixed: make([]sqltypes.Value, n), n: n}
		for k, i := range idx {
			out.Mixed[k] = v.Mixed[i]
		}
		return out
	}
	out := Vec{K: v.K, n: n}
	if v.K == sqltypes.KindNull {
		return out
	}
	if v.Nulls != nil {
		out.Nulls = NewBitmap(n)
		for k, i := range idx {
			if v.Nulls.Get(int(i)) {
				out.Nulls.Set(k)
			}
		}
	}
	switch v.K {
	case sqltypes.KindInt:
		out.Ints = make([]int64, n)
		for k, i := range idx {
			out.Ints[k] = v.Ints[i]
		}
	case sqltypes.KindFloat:
		out.Floats = make([]float64, n)
		for k, i := range idx {
			out.Floats[k] = v.Floats[i]
		}
	case sqltypes.KindString:
		out.Strs = make([]string, n)
		for k, i := range idx {
			out.Strs[k] = v.Strs[i]
		}
	case sqltypes.KindBool:
		out.Bools = make([]bool, n)
		for k, i := range idx {
			out.Bools[k] = v.Bools[i]
		}
	}
	return out
}

// GatherVia is Gather through an optional second-level index map: it
// returns the values at m[idx[k]] (a nil map is the identity) without
// materializing the composed index list. This is the read path for
// late-materialized join output, where a batch's tuple indices reach a
// quantifier's shared base vectors through a per-quantifier row map.
func (v *Vec) GatherVia(idx []int32, m []int32) Vec {
	if m == nil {
		return v.Gather(idx)
	}
	n := len(idx)
	if v.Mixed != nil {
		out := Vec{Mixed: make([]sqltypes.Value, n), n: n}
		for k, i := range idx {
			out.Mixed[k] = v.Mixed[m[i]]
		}
		return out
	}
	out := Vec{K: v.K, n: n}
	if v.K == sqltypes.KindNull {
		return out
	}
	if v.Nulls != nil {
		out.Nulls = NewBitmap(n)
		for k, i := range idx {
			if v.Nulls.Get(int(m[i])) {
				out.Nulls.Set(k)
			}
		}
	}
	switch v.K {
	case sqltypes.KindInt:
		out.Ints = make([]int64, n)
		for k, i := range idx {
			out.Ints[k] = v.Ints[m[i]]
		}
	case sqltypes.KindFloat:
		out.Floats = make([]float64, n)
		for k, i := range idx {
			out.Floats[k] = v.Floats[m[i]]
		}
	case sqltypes.KindString:
		out.Strs = make([]string, n)
		for k, i := range idx {
			out.Strs[k] = v.Strs[m[i]]
		}
	case sqltypes.KindBool:
		out.Bools = make([]bool, n)
		for k, i := range idx {
			out.Bools[k] = v.Bools[m[i]]
		}
	}
	return out
}
