// Package wire implements decorrd's client/server protocol: a
// length-prefixed binary framing, a tagged value codec over the engine's
// SQL value domain, and the message vocabulary of the remote query
// lifecycle (handshake, prepare, execute, fetch, cancel).
//
// Framing. Every frame is
//
//	uint32 big-endian length  |  1 type byte  |  payload
//
// where length counts the type byte plus the payload, so a frame reader
// needs exactly one length read and one body read. Frames are capped at
// MaxFrame; a peer announcing a larger frame is broken or hostile and the
// connection is abandoned rather than the length trusted.
//
// Flow control is strict request/response: the client sends one request
// frame and reads exactly one reply frame. Result sets never stream
// unsolicited — the client pulls each batch with a Fetch, which is what
// bounds both peers' memory to one batch regardless of result size.
// Cancellation is therefore out-of-band, Postgres style: a Cancel frame
// travels on a separate short-lived connection carrying the target query
// ID, because the primary connection is (by protocol) blocked inside a
// request/reply exchange.
//
// Values are tagged per sqltypes.Kind: nulls are a bare tag, integers are
// zigzag varints, floats are 8 fixed bytes of IEEE bits, strings are
// length-prefixed. The codec round-trips exactly (NaN bits included) —
// the differential tests compare server-side and client-side rows for
// byte equality.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"decorr/internal/faultinject"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// MaxFrame caps one frame's encoded size (type byte + payload). It is far
// above anything the protocol produces — result batches are bounded by
// the fetch size — and exists so a corrupt or malicious length prefix
// cannot drive an arbitrarily large allocation.
const MaxFrame = 16 << 20

// writeFrame emits one frame: length prefix, type byte, payload.
//
// faultinject.WireWrite is checked (latency, injected error) before the
// frame goes out. An injected error tears the frame: a valid header and
// a truncated body are emitted before the error returns, so the peer
// sees exactly what a connection dying mid-write produces — the caller
// must treat the error as fatal to the connection and close it, which
// turns the peer's blocked body read into io.ErrUnexpectedEOF.
func writeFrame(w io.Writer, t byte, payload []byte) error {
	n := len(payload) + 1
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", n)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = t
	if err := faultinject.Check(faultinject.WireWrite); err != nil {
		w.Write(hdr[:])
		if len(payload) > 1 {
			w.Write(payload[:len(payload)/2])
		}
		return err
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, returning its type byte and payload.
//
// faultinject.WireRead is checked (latency, injected error) before the
// header read. An injected error abandons the read with the connection
// state unknown; the caller closes the connection, so the peer observes
// a reset or EOF — the "connection died mid-request" failure mode.
func readFrame(r io.Reader) (byte, []byte, error) {
	if err := faultinject.Check(faultinject.WireRead); err != nil {
		return 0, nil, err
	}
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// enc builds a message payload. Append-only; errors are impossible until
// the frame write, so the methods have no error returns.
type enc struct {
	buf []byte
}

func (e *enc) u8(b byte)   { e.buf = append(e.buf, b) }
func (e *enc) bool(b bool) { e.buf = append(e.buf, boolByte(b)) }
func (e *enc) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}
func (e *enc) varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}
func (e *enc) f64(f float64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(f))
}
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *enc) strs(ss []string) {
	e.uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Value tags. Each value on the wire is one tag byte plus a
// kind-dependent payload.
const (
	tagNull  = 'n'
	tagInt   = 'i'
	tagFloat = 'f'
	tagStr   = 's'
	tagTrue  = 'T'
	tagFalse = 'F'
)

func (e *enc) value(v sqltypes.Value) {
	switch v.K {
	case sqltypes.KindNull:
		e.u8(tagNull)
	case sqltypes.KindInt:
		e.u8(tagInt)
		e.varint(v.I)
	case sqltypes.KindFloat:
		e.u8(tagFloat)
		e.f64(v.F)
	case sqltypes.KindString:
		e.u8(tagStr)
		e.str(v.S)
	case sqltypes.KindBool:
		if v.B {
			e.u8(tagTrue)
		} else {
			e.u8(tagFalse)
		}
	default:
		// Unknown kinds cannot arise from the engine; encode as NULL so a
		// future kind degrades visibly rather than corrupting the frame.
		e.u8(tagNull)
	}
}

func (e *enc) values(vs []sqltypes.Value) {
	e.uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.value(v)
	}
}

func (e *enc) rows(rows []storage.Row) {
	e.uvarint(uint64(len(rows)))
	for _, r := range rows {
		e.values(r)
	}
}

// dec consumes a message payload. The first malformed read latches err
// and every later read returns zero values, so decode functions can run
// straight-line and check err once at the end.
type dec struct {
	buf []byte
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *dec) u8() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail("truncated payload")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *dec) bool() bool { return d.u8() != 0 }

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.fail("truncated string of %d bytes", n)
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *dec) strs() []string {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.buf)) { // each string costs ≥ 1 byte
		d.fail("string count %d exceeds payload", n)
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func (d *dec) value() sqltypes.Value {
	switch t := d.u8(); t {
	case tagNull:
		return sqltypes.Null
	case tagInt:
		return sqltypes.NewInt(d.varint())
	case tagFloat:
		return sqltypes.NewFloat(d.f64())
	case tagStr:
		return sqltypes.NewString(d.str())
	case tagTrue:
		return sqltypes.NewBool(true)
	case tagFalse:
		return sqltypes.NewBool(false)
	default:
		if d.err == nil {
			d.fail("unknown value tag %q", t)
		}
		return sqltypes.Null
	}
}

func (d *dec) values() []sqltypes.Value {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.buf)) { // each value costs ≥ 1 byte
		d.fail("value count %d exceeds payload", n)
		return nil
	}
	out := make([]sqltypes.Value, n)
	for i := range out {
		out[i] = d.value()
	}
	return out
}

func (d *dec) rows() []storage.Row {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.fail("row count %d exceeds payload", n)
		return nil
	}
	out := make([]storage.Row, n)
	for i := range out {
		out[i] = d.values()
	}
	return out
}

// done checks that the payload was consumed exactly. Trailing bytes mean
// the peer speaks a different dialect; failing loudly beats silently
// ignoring fields.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in payload", len(d.buf))
	}
	return nil
}
