package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"decorr/internal/exec"
	"decorr/internal/faultinject"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// roundtrip writes m as a frame and reads it back.
func roundtrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("Write(%T): %v", m, err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read(%T): %v", m, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%T: %d bytes left after one frame", m, buf.Len())
	}
	return got
}

func TestMessageRoundtrip(t *testing.T) {
	stats := exec.Stats{
		SubqueryInvocations: 3954, DistinctInvocations: 2138, MemoHits: 7,
		BoxEvals: 12, RowsScanned: 1 << 40, IndexLookups: 5, RowsJoined: 99,
		RowsGrouped: 4, HashBuilds: 2, CSERecomputes: 1,
	}
	msgs := []Message{
		&Hello{Version: Version, Options: []string{"strategy", "auto", "workers", "4"}},
		&Hello{Version: Version},
		&HelloOK{Version: Version, ServerName: "decorrd/test"},
		&Prepare{SQL: "select name from dept where budget > ?"},
		&PrepareOK{StmtID: 7, NumParams: 1, Columns: []string{"name"}},
		&PrepareOK{StmtID: 8}, // DDL shape: no columns
		&Execute{StmtID: 7, Params: []sqltypes.Value{sqltypes.NewInt(100)}},
		&Execute{SQL: "select 1 from dept"},
		&ExecuteOK{CursorID: 3, QueryID: 41, Columns: []string{"name", "budget"}},
		&ExecuteOK{CursorID: 3, QueryID: 0, Columns: []string{"?column?"}},
		&Fetch{CursorID: 3, MaxRows: 1024},
		&Batch{Rows: []storage.Row{
			{sqltypes.NewString("eng"), sqltypes.NewInt(-12)},
			{sqltypes.Null, sqltypes.NewFloat(2.5)},
		}},
		&Done{RowsOut: 1_000_000, Stats: stats},
		&Done{},
		&Exec{SQL: "create view v as select name from dept"},
		&ExecOK{RowsOut: 0},
		&Cancel{QueryID: 41},
		&KillOK{Found: true},
		&KillOK{Found: false},
		&CloseCursor{CursorID: 3},
		&CloseStmt{StmtID: 7},
		&CloseOK{},
		&Status{},
		&StatusOK{HeapAlloc: 1 << 30, TotalAlloc: 1 << 33, NumGoroutine: 12, Sessions: 2, OpenCursors: 1, ActiveQueries: 1},
		&StatusOK{HeapAlloc: 1, Draining: true},
		&Ping{},
		&Pong{},
		&Error{Code: CodeRowBudget, Msg: "exec: row budget exceeded"},
		&Error{Code: CodeUnavailable, Msg: "server draining", Retryable: true, RetryAfterMs: 250},
		&Error{Code: CodeOverloaded, Msg: "12 active queries over the 8 cap", Retryable: true, RetryAfterMs: 100},
	}
	for _, m := range msgs {
		got := roundtrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("roundtrip %T:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

// Values must round-trip exactly, including the bit patterns the string
// form would lose.
func TestValueCodecExact(t *testing.T) {
	values := []sqltypes.Value{
		sqltypes.Null,
		sqltypes.NewInt(0),
		sqltypes.NewInt(math.MaxInt64),
		sqltypes.NewInt(math.MinInt64),
		sqltypes.NewFloat(0),
		sqltypes.NewFloat(math.Copysign(0, -1)),
		sqltypes.NewFloat(math.Inf(1)),
		sqltypes.NewFloat(math.Inf(-1)),
		sqltypes.NewFloat(math.NaN()),
		sqltypes.NewFloat(1e-300),
		sqltypes.NewString(""),
		sqltypes.NewString("héllo\x00world"),
		sqltypes.NewString(strings.Repeat("x", 1<<16)),
		sqltypes.NewBool(true),
		sqltypes.NewBool(false),
	}
	got := roundtrip(t, &Batch{Rows: []storage.Row{values}}).(*Batch)
	if len(got.Rows) != 1 || len(got.Rows[0]) != len(values) {
		t.Fatalf("shape mismatch: %v", got.Rows)
	}
	for i, want := range values {
		v := got.Rows[0][i]
		if v.K != want.K || v.I != want.I || v.S != want.S || v.B != want.B ||
			math.Float64bits(v.F) != math.Float64bits(want.F) {
			t.Errorf("value %d: got %#v, want %#v", i, v, want)
		}
	}
}

func TestFrameErrors(t *testing.T) {
	// Oversized length prefix: rejected before allocating.
	var buf bytes.Buffer
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], MaxFrame+1)
	buf.Write(hdr[:])
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("oversized frame: got %v", err)
	}

	// Zero-length frame (no room for the type byte).
	buf.Reset()
	buf.Write(make([]byte, 5))
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("zero-length frame: got %v", err)
	}

	// Truncated body.
	buf.Reset()
	if err := Write(&buf, &Prepare{SQL: "select 1 from dept"}); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	if _, err := Read(trunc); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated body: got %v", err)
	}

	// Unknown type byte.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:4], 1)
	hdr[4] = 0xee
	buf.Write(hdr[:])
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "unknown message type") {
		t.Errorf("unknown type: got %v", err)
	}

	// Trailing bytes in an otherwise valid payload.
	buf.Reset()
	payload := []byte{1, 0xff} // Ping carries no payload
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typePing
	buf.Write(hdr[:])
	buf.Write(payload)
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "trailing bytes") {
		t.Errorf("trailing bytes: got %v", err)
	}

	// Hostile count prefix: a Batch claiming 2^50 rows in a tiny payload
	// must fail without attempting the allocation.
	buf.Reset()
	var e enc
	e.uvarint(1 << 50)
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(e.buf)+1))
	hdr[4] = typeBatch
	buf.Write(hdr[:])
	buf.Write(e.buf)
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "exceeds payload") {
		t.Errorf("hostile row count: got %v", err)
	}
}

// The sentinel mapping must hold in both directions so typed governance
// errors survive the network: server classifies with CodeOf, client
// matches with errors.Is.
func TestRemoteErrorSentinels(t *testing.T) {
	cases := []struct {
		err      error
		code     ErrorCode
		sentinel error
	}{
		{exec.ErrCanceled, CodeCanceled, exec.ErrCanceled},
		{exec.ErrDeadlineExceeded, CodeDeadline, exec.ErrDeadlineExceeded},
		{fmt.Errorf("%w: 10 output rows over budget 5", exec.ErrRowBudget), CodeRowBudget, exec.ErrRowBudget},
		{exec.ErrMemBudget, CodeMemBudget, exec.ErrMemBudget},
		{&exec.PanicError{Val: "boom"}, CodePanic, exec.ErrPanic},
		{errors.New("parse error"), CodeInternal, nil},
	}
	for _, tc := range cases {
		we := ToError(tc.err)
		if we.Code != tc.code {
			t.Errorf("CodeOf(%v) = %d, want %d", tc.err, we.Code, tc.code)
			continue
		}
		// Across the wire: encode, decode, then match.
		got := roundtrip(t, we).(*Error)
		if tc.sentinel != nil && !errors.Is(got, tc.sentinel) {
			t.Errorf("decoded %v does not match sentinel %v", got, tc.sentinel)
		}
		if tc.sentinel == nil {
			for _, s := range []error{exec.ErrCanceled, exec.ErrDeadlineExceeded, exec.ErrRowBudget, exec.ErrMemBudget, exec.ErrPanic} {
				if errors.Is(got, s) {
					t.Errorf("internal error %v spuriously matches %v", got, s)
				}
			}
		}
	}
	// ToError preserves an existing wire error rather than reclassifying.
	orig := &Error{Code: CodeUnavailable, Msg: "too many sessions"}
	if got := ToError(fmt.Errorf("wrapped: %w", orig)); got.Code != CodeUnavailable {
		t.Errorf("ToError reclassified a wire error: %+v", got)
	}
}

// Retryability: the flag is authoritative, the code fallback covers
// peers that predate it, and nothing else is retryable.
func TestErrorRetryability(t *testing.T) {
	cases := []struct {
		err  *Error
		want bool
	}{
		{&Error{Code: CodeUnavailable, Retryable: true, RetryAfterMs: 250}, true},
		{&Error{Code: CodeUnavailable}, true}, // legacy peer: code implies retryable
		{&Error{Code: CodeOverloaded}, true},
		{&Error{Code: CodeInternal, Retryable: true}, true}, // flag wins
		{&Error{Code: CodeInternal}, false},
		{&Error{Code: CodeProtocol}, false},
		{&Error{Code: CodeCanceled}, false},
		{&Error{Code: CodeRowBudget}, false},
	}
	for _, tc := range cases {
		if got := tc.err.IsRetryable(); got != tc.want {
			t.Errorf("IsRetryable(%+v) = %v, want %v", tc.err, got, tc.want)
		}
	}
	e := &Error{RetryAfterMs: 250}
	if e.RetryAfter() != 250*time.Millisecond {
		t.Errorf("RetryAfter() = %v", e.RetryAfter())
	}
}

// Wire-level fault injection: an injected write error tears the frame
// (valid header, truncated body) so the peer's read fails cleanly with
// io.ErrUnexpectedEOF once the connection closes, and an injected read
// error abandons the read with ErrInjected. Neither can hang a peer.
func TestWireFaultInjection(t *testing.T) {
	defer faultinject.Disable()

	// Every write faults: the frame is torn.
	faultinject.Enable(faultinject.Plan{Seed: 1, Rules: map[faultinject.Point]faultinject.Rule{
		faultinject.WireWrite: {ErrEvery: 1},
	}})
	var buf bytes.Buffer
	err := Write(&buf, &Prepare{SQL: "select name from dept"})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn write error = %v", err)
	}
	full := len("select name from dept") + 2 // uvarint len + type byte ≈ lower bound
	if buf.Len() == 0 || buf.Len() >= full+5 {
		t.Fatalf("torn frame wrote %d bytes (full frame would be > %d)", buf.Len(), full)
	}
	faultinject.Disable()
	// The torn bytes parse as a truncated frame, not a wrong message.
	if _, err := Read(&buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("reading a torn frame: %v", err)
	}

	// Every read faults: the read is abandoned before consuming bytes.
	faultinject.Enable(faultinject.Plan{Seed: 1, Rules: map[faultinject.Point]faultinject.Rule{
		faultinject.WireRead: {ErrEvery: 1},
	}})
	buf.Reset()
	faultinject.Disable()
	if err := Write(&buf, &Ping{}); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.Plan{Seed: 1, Rules: map[faultinject.Point]faultinject.Rule{
		faultinject.WireRead: {ErrEvery: 1},
	}})
	n := buf.Len()
	if _, err := Read(&buf); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected read error = %v", err)
	}
	if buf.Len() != n {
		t.Fatalf("injected read consumed %d bytes", n-buf.Len())
	}
	faultinject.Disable()
	// With the plan gone the same bytes decode normally.
	if m, err := Read(&buf); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*Ping); !ok {
		t.Fatalf("decoded %T after disable", m)
	}
}
