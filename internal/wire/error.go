package wire

import (
	"errors"
	"fmt"
	"time"

	"decorr/internal/exec"
)

// ErrorCode classifies a server-side failure coarsely enough to travel
// the wire and still support errors.Is on the client: governance trips
// keep their typed identity end-to-end, so a database/sql caller can
// match exec.ErrRowBudget on an error that crossed the network.
type ErrorCode uint16

const (
	// CodeInternal is any failure without a more specific class (parse
	// errors, semantic errors, evaluation errors).
	CodeInternal ErrorCode = 1
	// CodeCanceled maps to exec.ErrCanceled.
	CodeCanceled ErrorCode = 2
	// CodeDeadline maps to exec.ErrDeadlineExceeded.
	CodeDeadline ErrorCode = 3
	// CodeRowBudget maps to exec.ErrRowBudget.
	CodeRowBudget ErrorCode = 4
	// CodeMemBudget maps to exec.ErrMemBudget.
	CodeMemBudget ErrorCode = 5
	// CodePanic maps to exec.ErrPanic (a recovered operator panic).
	CodePanic ErrorCode = 6
	// CodeProtocol is a wire-level violation: bad frame, unexpected
	// message, unknown statement or cursor handle. The server closes the
	// connection after sending it.
	CodeProtocol ErrorCode = 7
	// CodeUnavailable reports admission rejection: too many sessions, or
	// the server is draining toward shutdown. The request was not
	// executed, so a retry (against this server later, or another one)
	// is always safe.
	CodeUnavailable ErrorCode = 8
	// CodeOverloaded reports load shedding: the server is past its
	// active-query or heap watermark and refused to start new work. Like
	// CodeUnavailable, nothing was executed and a retry is safe; the
	// error carries the server's backoff hint.
	CodeOverloaded ErrorCode = 9
)

// Error is the wire form of a server-side failure. It implements error
// (see RemoteError below for the client-facing alias with sentinel
// matching).
type Error struct {
	Code ErrorCode
	Msg  string
	// Retryable marks rejections where the request was provably not
	// executed (admission during drain, overload sheds), so the client
	// may retry without risking duplicate work.
	Retryable bool
	// RetryAfterMs is the server's backoff hint for retryable errors,
	// in milliseconds. Zero means the client picks its own backoff.
	RetryAfterMs uint32
}

func (e *Error) Error() string { return e.Msg }

// Is maps the code back to the executor's typed sentinels, so
// errors.Is(err, exec.ErrRowBudget) holds across the network exactly as
// it does in-process.
func (e *Error) Is(target error) bool {
	switch e.Code {
	case CodeCanceled:
		return target == exec.ErrCanceled
	case CodeDeadline:
		return target == exec.ErrDeadlineExceeded
	case CodeRowBudget:
		return target == exec.ErrRowBudget
	case CodeMemBudget:
		return target == exec.ErrMemBudget
	case CodePanic:
		return target == exec.ErrPanic
	}
	return false
}

// IsRetryable reports whether a retry of the rejected request is safe
// and may succeed. The Retryable flag is authoritative when set; the
// code-based fallback keeps the classification working against peers
// that predate the flag.
func (e *Error) IsRetryable() bool {
	return e.Retryable || e.Code == CodeUnavailable || e.Code == CodeOverloaded
}

// RetryAfter is the server's backoff hint as a duration (zero when the
// server sent none).
func (e *Error) RetryAfter() time.Duration {
	return time.Duration(e.RetryAfterMs) * time.Millisecond
}

// RemoteError is the name client code sees; *Error is what crosses the
// wire. They are one type.
type RemoteError = Error

// CodeOf classifies err for the wire, the inverse of Error.Is.
func CodeOf(err error) ErrorCode {
	switch {
	case errors.Is(err, exec.ErrCanceled):
		return CodeCanceled
	case errors.Is(err, exec.ErrDeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, exec.ErrRowBudget):
		return CodeRowBudget
	case errors.Is(err, exec.ErrMemBudget):
		return CodeMemBudget
	case errors.Is(err, exec.ErrPanic):
		return CodePanic
	}
	return CodeInternal
}

// ToError converts any error to its wire form, preserving an existing
// *Error (so codes survive a proxy hop) and classifying everything else.
func ToError(err error) *Error {
	var we *Error
	if errors.As(err, &we) {
		return we
	}
	return &Error{Code: CodeOf(err), Msg: err.Error()}
}

// Protocolf builds a CodeProtocol error.
func Protocolf(format string, args ...any) *Error {
	return &Error{Code: CodeProtocol, Msg: fmt.Sprintf(format, args...)}
}
