package wire

import (
	"fmt"
	"io"

	"decorr/internal/exec"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// Message type bytes. Requests and replies share one space; the
// request/reply pairing is by protocol state, not by byte value.
const (
	typeHello       = 0x01
	typeHelloOK     = 0x02
	typePrepare     = 0x03
	typePrepareOK   = 0x04
	typeExecute     = 0x05
	typeExecuteOK   = 0x06
	typeFetch       = 0x07
	typeBatch       = 0x08
	typeDone        = 0x09
	typeExec        = 0x0a
	typeExecOK      = 0x0b
	typeCancel      = 0x0c
	typeKillOK      = 0x0d
	typeCloseCursor = 0x0e
	typeCloseStmt   = 0x0f
	typeCloseOK     = 0x10
	typeStatus      = 0x11
	typeStatusOK    = 0x12
	typePing        = 0x13
	typePong        = 0x14
	typeError       = 0x15
)

// Version is the protocol version sent in the handshake. The server
// refuses mismatched majors rather than guessing at compatibility.
const Version = 1

// Message is one protocol frame's decoded form.
type Message interface {
	msgType() byte
	encode(e *enc)
}

// Hello opens a connection. Options carries session knobs parsed from the
// client DSN (e.g. "strategy", "workers") as alternating key/value pairs.
type Hello struct {
	Version uint32
	Options []string
}

// HelloOK accepts the handshake.
type HelloOK struct {
	Version    uint32
	ServerName string
}

// Prepare compiles a statement server-side.
type Prepare struct {
	SQL string
}

// PrepareOK reports the prepared statement's handle and shape. Columns is
// empty for DDL statements, which have no result shape.
type PrepareOK struct {
	StmtID    uint64
	NumParams uint32
	Columns   []string
}

// Execute begins a streaming query. With StmtID != 0 it runs that
// prepared statement with Params bound; with StmtID == 0 it prepares and
// runs SQL directly (the one-shot path).
type Execute struct {
	StmtID uint64
	SQL    string
	Params []sqltypes.Value
}

// ExecuteOK reports the opened cursor. QueryID is the server registry's
// query ID — the handle for out-of-band Cancel — or zero when the server
// runs without a registry.
type ExecuteOK struct {
	CursorID uint64
	QueryID  int64
	Columns  []string
}

// Fetch pulls the next batch from a cursor. MaxRows caps the reply batch;
// zero means the server's default.
type Fetch struct {
	CursorID uint64
	MaxRows  uint32
}

// Batch is a non-empty slice of result rows. The cursor remains open;
// the client fetches again for more.
type Batch struct {
	Rows []storage.Row
}

// Done reports cursor exhaustion: the total row count and the execution's
// final work counters. The server closes the cursor before replying, so
// no CloseCursor is needed after Done.
type Done struct {
	RowsOut uint64
	Stats   exec.Stats
}

// Exec runs a statement to completion server-side (DDL, or any statement
// whose rows the client does not want streamed).
type Exec struct {
	StmtID uint64
	SQL    string
	Params []sqltypes.Value
}

// ExecOK reports a completed Exec.
type ExecOK struct {
	RowsOut uint64
}

// Cancel kills the query with the given registry ID. It travels on its
// own connection (see the package comment) and is answered by KillOK.
type Cancel struct {
	QueryID int64
}

// KillOK reports whether Cancel found a matching active query.
type KillOK struct {
	Found bool
}

// CloseCursor abandons a cursor before exhaustion.
type CloseCursor struct {
	CursorID uint64
}

// CloseStmt discards a prepared statement handle.
type CloseStmt struct {
	StmtID uint64
}

// CloseOK acknowledges CloseCursor or CloseStmt.
type CloseOK struct{}

// Status asks for a server health snapshot.
type Status struct{}

// StatusOK is the server health snapshot. HeapAlloc is the live Go heap
// in bytes — the server-smoke benchmark polls it mid-stream to prove the
// server never materializes a full result.
type StatusOK struct {
	HeapAlloc     uint64
	TotalAlloc    uint64
	NumGoroutine  uint32
	Sessions      uint32
	OpenCursors   uint32
	ActiveQueries uint32
	// Draining reports that the server has begun a graceful shutdown:
	// in-flight work is completing, new sessions are refused.
	Draining bool
}

// Ping is a liveness probe; Pong answers it.
type Ping struct{}

// Pong answers Ping.
type Pong struct{}

func (*Hello) msgType() byte       { return typeHello }
func (*HelloOK) msgType() byte     { return typeHelloOK }
func (*Prepare) msgType() byte     { return typePrepare }
func (*PrepareOK) msgType() byte   { return typePrepareOK }
func (*Execute) msgType() byte     { return typeExecute }
func (*ExecuteOK) msgType() byte   { return typeExecuteOK }
func (*Fetch) msgType() byte       { return typeFetch }
func (*Batch) msgType() byte       { return typeBatch }
func (*Done) msgType() byte        { return typeDone }
func (*Exec) msgType() byte        { return typeExec }
func (*ExecOK) msgType() byte      { return typeExecOK }
func (*Cancel) msgType() byte      { return typeCancel }
func (*KillOK) msgType() byte      { return typeKillOK }
func (*CloseCursor) msgType() byte { return typeCloseCursor }
func (*CloseStmt) msgType() byte   { return typeCloseStmt }
func (*CloseOK) msgType() byte     { return typeCloseOK }
func (*Status) msgType() byte      { return typeStatus }
func (*StatusOK) msgType() byte    { return typeStatusOK }
func (*Ping) msgType() byte        { return typePing }
func (*Pong) msgType() byte        { return typePong }
func (*Error) msgType() byte       { return typeError }

func (m *Hello) encode(e *enc) {
	e.uvarint(uint64(m.Version))
	e.strs(m.Options)
}

func (m *HelloOK) encode(e *enc) {
	e.uvarint(uint64(m.Version))
	e.str(m.ServerName)
}

func (m *Prepare) encode(e *enc) {
	e.str(m.SQL)
}

func (m *PrepareOK) encode(e *enc) {
	e.uvarint(m.StmtID)
	e.uvarint(uint64(m.NumParams))
	e.strs(m.Columns)
}

func (m *Execute) encode(e *enc) {
	e.uvarint(m.StmtID)
	e.str(m.SQL)
	e.values(m.Params)
}

func (m *ExecuteOK) encode(e *enc) {
	e.uvarint(m.CursorID)
	e.varint(m.QueryID)
	e.strs(m.Columns)
}

func (m *Fetch) encode(e *enc) {
	e.uvarint(m.CursorID)
	e.uvarint(uint64(m.MaxRows))
}

func (m *Batch) encode(e *enc) {
	e.rows(m.Rows)
}

func (m *Done) encode(e *enc) {
	e.uvarint(m.RowsOut)
	encodeStats(e, m.Stats)
}

func (m *Exec) encode(e *enc) {
	e.uvarint(m.StmtID)
	e.str(m.SQL)
	e.values(m.Params)
}

func (m *ExecOK) encode(e *enc) {
	e.uvarint(m.RowsOut)
}

func (m *Cancel) encode(e *enc) {
	e.varint(m.QueryID)
}

func (m *KillOK) encode(e *enc) {
	e.bool(m.Found)
}

func (m *CloseCursor) encode(e *enc) {
	e.uvarint(m.CursorID)
}

func (m *CloseStmt) encode(e *enc) {
	e.uvarint(m.StmtID)
}

func (*CloseOK) encode(*enc) {}

func (*Status) encode(*enc) {}

func (m *StatusOK) encode(e *enc) {
	e.uvarint(m.HeapAlloc)
	e.uvarint(m.TotalAlloc)
	e.uvarint(uint64(m.NumGoroutine))
	e.uvarint(uint64(m.Sessions))
	e.uvarint(uint64(m.OpenCursors))
	e.uvarint(uint64(m.ActiveQueries))
	e.bool(m.Draining)
}

func (*Ping) encode(*enc) {}

func (*Pong) encode(*enc) {}

func (m *Error) encode(e *enc) {
	e.uvarint(uint64(m.Code))
	e.str(m.Msg)
	e.bool(m.Retryable)
	e.uvarint(uint64(m.RetryAfterMs))
}

// encodeStats lays out the counters as varints in struct-field order.
// Both peers compile from one source tree, so the order is the contract.
func encodeStats(e *enc, s exec.Stats) {
	e.varint(s.SubqueryInvocations)
	e.varint(s.DistinctInvocations)
	e.varint(s.MemoHits)
	e.varint(s.BoxEvals)
	e.varint(s.RowsScanned)
	e.varint(s.IndexLookups)
	e.varint(s.RowsJoined)
	e.varint(s.RowsGrouped)
	e.varint(s.HashBuilds)
	e.varint(s.CSERecomputes)
}

func decodeStats(d *dec) exec.Stats {
	return exec.Stats{
		SubqueryInvocations: d.varint(),
		DistinctInvocations: d.varint(),
		MemoHits:            d.varint(),
		BoxEvals:            d.varint(),
		RowsScanned:         d.varint(),
		IndexLookups:        d.varint(),
		RowsJoined:          d.varint(),
		RowsGrouped:         d.varint(),
		HashBuilds:          d.varint(),
		CSERecomputes:       d.varint(),
	}
}

// Write encodes m and writes it as one frame.
func Write(w io.Writer, m Message) error {
	var e enc
	m.encode(&e)
	return writeFrame(w, m.msgType(), e.buf)
}

// Read reads one frame and decodes it into its message type. Protocol
// state (who may send what, and when) is the caller's to enforce.
func Read(r io.Reader) (Message, error) {
	t, payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	d := &dec{buf: payload}
	var m Message
	switch t {
	case typeHello:
		m = &Hello{Version: uint32(d.uvarint()), Options: d.strs()}
	case typeHelloOK:
		m = &HelloOK{Version: uint32(d.uvarint()), ServerName: d.str()}
	case typePrepare:
		m = &Prepare{SQL: d.str()}
	case typePrepareOK:
		m = &PrepareOK{StmtID: d.uvarint(), NumParams: uint32(d.uvarint()), Columns: d.strs()}
	case typeExecute:
		m = &Execute{StmtID: d.uvarint(), SQL: d.str(), Params: d.values()}
	case typeExecuteOK:
		m = &ExecuteOK{CursorID: d.uvarint(), QueryID: d.varint(), Columns: d.strs()}
	case typeFetch:
		m = &Fetch{CursorID: d.uvarint(), MaxRows: uint32(d.uvarint())}
	case typeBatch:
		m = &Batch{Rows: d.rows()}
	case typeDone:
		m = &Done{RowsOut: d.uvarint(), Stats: decodeStats(d)}
	case typeExec:
		m = &Exec{StmtID: d.uvarint(), SQL: d.str(), Params: d.values()}
	case typeExecOK:
		m = &ExecOK{RowsOut: d.uvarint()}
	case typeCancel:
		m = &Cancel{QueryID: d.varint()}
	case typeKillOK:
		m = &KillOK{Found: d.bool()}
	case typeCloseCursor:
		m = &CloseCursor{CursorID: d.uvarint()}
	case typeCloseStmt:
		m = &CloseStmt{StmtID: d.uvarint()}
	case typeCloseOK:
		m = &CloseOK{}
	case typeStatus:
		m = &Status{}
	case typeStatusOK:
		m = &StatusOK{
			HeapAlloc:     d.uvarint(),
			TotalAlloc:    d.uvarint(),
			NumGoroutine:  uint32(d.uvarint()),
			Sessions:      uint32(d.uvarint()),
			OpenCursors:   uint32(d.uvarint()),
			ActiveQueries: uint32(d.uvarint()),
			Draining:      d.bool(),
		}
	case typePing:
		m = &Ping{}
	case typePong:
		m = &Pong{}
	case typeError:
		m = &Error{Code: ErrorCode(d.uvarint()), Msg: d.str(),
			Retryable: d.bool(), RetryAfterMs: uint32(d.uvarint())}
	default:
		return nil, fmt.Errorf("wire: unknown message type 0x%02x", t)
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("%w (message type 0x%02x)", err, t)
	}
	return m, nil
}
