package semant_test

import (
	"strings"
	"testing"

	"decorr/internal/parser"
	"decorr/internal/qgm"
	"decorr/internal/schema"
	"decorr/internal/semant"
	"decorr/internal/tpcd"
)

func bind(t *testing.T, sql string) *qgm.Graph {
	t.Helper()
	g, err := bindErr(sql)
	if err != nil {
		t.Fatalf("bind %q: %v", sql, err)
	}
	return g
}

func bindErr(sql string) (*qgm.Graph, error) {
	q, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	cat := tpcd.EmpDept().Catalog
	return semant.Bind(q, cat)
}

func TestBindSimpleShape(t *testing.T) {
	g := bind(t, "select name, budget from dept where budget < 100")
	if g.Root.Kind != qgm.BoxSelect || len(g.Root.Cols) != 2 || len(g.Root.Preds) != 1 {
		t.Fatalf("root = %+v", g.Root)
	}
	if g.Root.Quants[0].Input.Kind != qgm.BoxBase {
		t.Fatalf("input = %+v", g.Root.Quants[0].Input)
	}
}

func TestBindExampleQueryCorrelation(t *testing.T) {
	g := bind(t, tpcd.ExampleQuery)
	// The subquery (group over select over emp) must be correlated to the
	// root through the scalar quantifier.
	var scalar *qgm.Quantifier
	for _, q := range g.Root.Quants {
		if q.Kind == qgm.QScalar {
			scalar = q
		}
	}
	if scalar == nil {
		t.Fatal("no scalar quantifier bound")
	}
	if !qgm.CorrelatedTo(scalar.Input, g.Root) {
		t.Fatal("subquery not correlated to root")
	}
	if scalar.Input.Kind != qgm.BoxSelect && scalar.Input.Kind != qgm.BoxGroup {
		t.Fatalf("subquery shape = %v", scalar.Input.Kind)
	}
}

func TestBindGroupedLayering(t *testing.T) {
	g := bind(t, "select building, count(*) as n from emp group by building having count(*) > 1")
	// Layering: SELECT (having+projection) over GROUP over SELECT (from).
	root := g.Root
	if root.Kind != qgm.BoxSelect || len(root.Preds) != 1 {
		t.Fatalf("root = %v with %d preds", root.Kind, len(root.Preds))
	}
	grp := root.Quants[0].Input
	if grp.Kind != qgm.BoxGroup || len(grp.GroupBy) != 1 {
		t.Fatalf("group = %+v", grp)
	}
	if grp.Quants[0].Input.Kind != qgm.BoxSelect {
		t.Fatalf("spj = %v", grp.Quants[0].Input.Kind)
	}
	if root.Cols[0].Name != "building" || root.Cols[1].Name != "n" {
		t.Fatalf("output names = %v", root.OutNames())
	}
}

func TestBindSharedAggregateReused(t *testing.T) {
	g := bind(t, "select count(*) from emp having count(*) > 0")
	grp := g.Root.Quants[0].Input
	count := 0
	for _, c := range grp.Cols {
		if _, ok := c.Expr.(*qgm.Agg); ok {
			count++
		}
	}
	if count != 1 {
		t.Errorf("count(*) bound %d times; identical aggregates must share one slot", count)
	}
}

func TestBindUnion(t *testing.T) {
	g := bind(t, "select name from emp union select name from dept")
	if g.Root.Kind != qgm.BoxUnion || !g.Root.Distinct {
		t.Fatalf("root = %+v", g.Root)
	}
	g = bind(t, "select name from emp union all select name from dept")
	if g.Root.Distinct {
		t.Fatal("UNION ALL must not be distinct")
	}
}

func TestBindStarExpansion(t *testing.T) {
	g := bind(t, "select * from dept d, emp e")
	if len(g.Root.Cols) != 6 { // dept(4) + emp(2)
		t.Fatalf("star expanded to %d cols", len(g.Root.Cols))
	}
	g = bind(t, "select e.* from dept d, emp e")
	if len(g.Root.Cols) != 2 {
		t.Fatalf("qualified star expanded to %d cols", len(g.Root.Cols))
	}
}

func TestBindSubqueryKinds(t *testing.T) {
	g := bind(t, `
		select name from dept d
		where exists (select * from emp e where e.building = d.building)
		  and budget in (select budget from dept)
		  and budget >= all (select budget from dept)
		  and name not in (select name from emp)`)
	kinds := map[qgm.QuantKind]int{}
	for _, q := range g.Root.Quants {
		kinds[q.Kind]++
	}
	if kinds[qgm.QExists] != 1 || kinds[qgm.QAny] != 1 || kinds[qgm.QAll] != 2 {
		t.Fatalf("quant kinds = %v (NOT IN must become ALL(<>))", kinds)
	}
}

func TestBindLateralDerivedTable(t *testing.T) {
	// Derived tables see FROM items to their left (paper Query 3 style).
	g := bind(t, `
		select d.name, t.n from dept d,
		  (select count(*) from emp e where e.building = d.building) as t(n)`)
	var derived *qgm.Quantifier
	for _, q := range g.Root.Quants {
		if q.Input.Kind != qgm.BoxBase {
			derived = q
		}
	}
	if derived == nil {
		t.Fatal("derived table not bound")
	}
	if !qgm.CorrelatedTo(derived.Input, g.Root) {
		t.Fatal("lateral correlation not wired")
	}
}

func TestBindColumnAliasRenames(t *testing.T) {
	g := bind(t, "select x from (select name from emp) as t(x)")
	if g.Root.Cols[0].Name != "x" {
		t.Fatalf("output names = %v", g.Root.OutNames())
	}
}

func TestBindOrderBy(t *testing.T) {
	g := bind(t, "select name, budget from dept order by budget desc, 1")
	if len(g.OrderBy) != 2 || g.OrderBy[0].Col != 1 || !g.OrderBy[0].Desc || g.OrderBy[1].Col != 0 {
		t.Fatalf("order by = %+v", g.OrderBy)
	}
}

func TestBindErrors(t *testing.T) {
	cases := map[string]string{
		"select x from nosuch":                                                 "unknown table",
		"select nosuch from dept":                                              "unresolved column",
		"select name from dept, emp":                                           "ambiguous",
		"select name from dept d, dept d":                                      "duplicate FROM alias",
		"select budget from dept group by name":                                "must appear in GROUP BY",
		"select sum(budget) from dept where sum(budget) > 1":                   "not allowed",
		"select name from emp union select name, building from emp":            "columns",
		"select name from dept where (select name, budget from dept) is null":  "one column",
		"select name from dept where budget = 1 or exists (select * from emp)": "top-level conjunct",
		"select * from dept group by name":                                     "not valid with GROUP BY",
		"select name from dept order by nosuch":                                "ORDER BY",
	}
	for sql, frag := range cases {
		_, err := bindErr(sql)
		if err == nil {
			t.Errorf("bind(%q) succeeded, want error containing %q", sql, frag)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("bind(%q) error %q does not mention %q", sql, err, frag)
		}
	}
}

func TestBindValidatesAgainstCatalog(t *testing.T) {
	cat := schema.NewCatalog()
	cat.Add(schema.NewTable("t", schema.Column{Name: "a", Type: schema.TInt}))
	q, err := parser.Parse("select a from t")
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.Bind(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := qgm.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestBindExpressionOutputsNamed(t *testing.T) {
	g := bind(t, "select budget + 1, budget + 2 as more from dept")
	if g.Root.Cols[0].Name != "c0" || g.Root.Cols[1].Name != "more" {
		t.Fatalf("names = %v", g.Root.OutNames())
	}
}

func TestBindAggregateInExpression(t *testing.T) {
	g := bind(t, "select 0.2 * avg(budget) from dept")
	grp := g.Root.Quants[0].Input
	if grp.Kind != qgm.BoxGroup || len(grp.GroupBy) != 0 {
		t.Fatalf("grouped shape = %+v", grp)
	}
	// The projection multiplies the aggregate output.
	if _, ok := g.Root.Cols[0].Expr.(*qgm.Bin); !ok {
		t.Fatalf("projection = %#v", g.Root.Cols[0].Expr)
	}
}

func TestBindQualifiedTableDefaultAlias(t *testing.T) {
	cat := schema.NewCatalog()
	cat.Add(schema.NewTable("sys.metrics",
		schema.Column{Name: "name", Type: schema.TString},
		schema.Column{Name: "value", Type: schema.TInt},
	))
	// The default alias of a dot-qualified table is the bare table part.
	q, err := parser.Parse("SELECT metrics.value FROM sys.metrics WHERE metrics.name = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := semant.Bind(q, cat); err != nil {
		t.Fatalf("bind with bare-part qualifier: %v", err)
	}
	// An explicit alias overrides it.
	q, err = parser.Parse("SELECT m.value FROM sys.metrics m")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := semant.Bind(q, cat); err != nil {
		t.Fatalf("bind with explicit alias: %v", err)
	}
	// Unknown qualified names still fail cleanly.
	q, err = parser.Parse("SELECT 1 FROM sys.nonsense")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := semant.Bind(q, cat); err == nil {
		t.Fatal("binding unknown sys.nonsense succeeded")
	}
}
