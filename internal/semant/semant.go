// Package semant translates parsed SQL (internal/ast) into the Query Graph
// Model (internal/qgm). Name resolution walks lexical scopes outward, so a
// column that resolves to an enclosing block's quantifier becomes a
// correlated reference — exactly the structural notion of correlation the
// decorrelation algorithms consume.
//
// Dialect notes (documented deviations from the paper's 1993-era SQL):
//   - derived tables are written "(query) AS alias(col, ...)" rather than
//     "alias(col) AS (query)";
//   - EXISTS/IN/ANY/ALL predicates must appear as top-level conjuncts of
//     WHERE/HAVING (not under OR), which is all the paper's workloads need.
package semant

import (
	"fmt"
	"reflect"
	"strings"

	"decorr/internal/ast"
	"decorr/internal/qgm"
	"decorr/internal/schema"
	"decorr/internal/sqltypes"
)

// ViewDef is a stored named query with optional column renames.
type ViewDef struct {
	Cols  []string
	Query ast.QueryExpr
}

// Views maps lower-cased view names to definitions; FROM-clause names not
// found in the catalog are expanded from here.
type Views map[string]*ViewDef

// Bind translates a query expression against the catalog into a QGM graph.
func Bind(q ast.QueryExpr, cat *schema.Catalog) (*qgm.Graph, error) {
	return BindWithViews(q, cat, nil)
}

// BindWithViews is Bind with view expansion: views are inlined at their
// use sites (views cannot be correlated — they see no outer scope), and
// recursive view definitions are rejected.
func BindWithViews(q ast.QueryExpr, cat *schema.Catalog, views Views) (*qgm.Graph, error) {
	b := &binder{cat: cat, g: qgm.NewGraph(), views: views, expanding: map[string]bool{}, maxParam: -1}
	root, err := b.bindQuery(q, nil, true)
	if err != nil {
		return nil, err
	}
	b.g.Root = root
	b.g.Params = b.maxParam + 1
	if err := qgm.Validate(b.g); err != nil {
		return nil, fmt.Errorf("semant: internal inconsistency: %w", err)
	}
	return b.g, nil
}

type binder struct {
	cat       *schema.Catalog
	g         *qgm.Graph
	views     Views
	expanding map[string]bool
	// maxParam is the highest `?` placeholder index bound so far (-1 when
	// the statement has none).
	maxParam int
}

// bindParam records a placeholder use and returns its QGM node.
func (b *binder) bindParam(p *ast.Param) qgm.Expr {
	if p.Idx > b.maxParam {
		b.maxParam = p.Idx
	}
	return &qgm.Param{Idx: p.Idx}
}

// scope maps FROM aliases to quantifiers for one block, linked to the
// enclosing block's scope.
type scope struct {
	parent  *scope
	entries []scopeEntry
}

// scopeEntry maps an alias to a quantifier; when hi > lo the alias covers
// only the column window [lo, hi) of the quantifier's input (both sides of
// a join resolve through the single join quantifier).
type scopeEntry struct {
	alias  string
	q      *qgm.Quantifier
	lo, hi int // hi == 0 means the full width
}

func (s *scope) add(alias string, q *qgm.Quantifier) error {
	return s.addRange(alias, q, 0, 0)
}

func (s *scope) addRange(alias string, q *qgm.Quantifier, lo, hi int) error {
	for _, e := range s.entries {
		if e.alias == alias {
			return fmt.Errorf("semant: duplicate FROM alias %q", alias)
		}
	}
	s.entries = append(s.entries, scopeEntry{alias: alias, q: q, lo: lo, hi: hi})
	return nil
}

// find returns the column ordinal of name within the entry's window.
func (e scopeEntry) find(name string) int {
	cols := e.q.Input.Cols
	lo, hi := e.lo, e.hi
	if hi == 0 {
		lo, hi = 0, len(cols)
	}
	for i := lo; i < hi && i < len(cols); i++ {
		if cols[i].Name == name {
			return i
		}
	}
	return -1
}

// scalarFuncs lists the scalar functions the executor implements.
var scalarFuncs = map[string]bool{"coalesce": true, "abs": true}

func qualified(qual, name string) string {
	if qual == "" {
		return name
	}
	return qual + "." + name
}

// lookup finds the quantifier column for a (possibly qualified) name,
// searching this scope then enclosing scopes. A hit in an enclosing scope
// yields a correlated reference.
func (s *scope) lookup(qual, name string) (*qgm.ColRef, error) {
	for sc := s; sc != nil; sc = sc.parent {
		var found *qgm.ColRef
		for _, e := range sc.entries {
			if qual != "" && e.alias != qual {
				continue
			}
			c := e.find(name)
			if c < 0 {
				continue
			}
			if found != nil && (found.Q != e.q || found.Col != c) {
				return nil, fmt.Errorf("semant: ambiguous column %q", qualified(qual, name))
			}
			found = qgm.Ref(e.q, c)
		}
		if found != nil {
			return found, nil
		}
	}
	return nil, fmt.Errorf("semant: unresolved column %s", qualified(qual, name))
}

// bindQuery translates a SELECT or UNION tree. outer is the enclosing
// scope (nil at top level); top marks the outermost query (ORDER BY is
// only honored there).
func (b *binder) bindQuery(q ast.QueryExpr, outer *scope, top bool) (*qgm.Box, error) {
	switch x := q.(type) {
	case *ast.Select:
		return b.bindSelect(x, outer, top)
	case *ast.SetOp:
		// A trailing ORDER BY / LIMIT textually terminates the whole set
		// operation, but the parser attaches it to the final branch;
		// hoist it to the set-op level here.
		var hoistOrder []ast.OrderItem
		hoistLimit := int64(-1)
		if top {
			if rs := rightmostSelect(x); rs != nil {
				hoistOrder, rs.OrderBy = rs.OrderBy, nil
				hoistLimit, rs.Limit = rs.Limit, -1
			}
		}
		left, err := b.bindQuery(x.Left, outer, false)
		if err != nil {
			return nil, err
		}
		right, err := b.bindQuery(x.Right, outer, false)
		if err != nil {
			return nil, err
		}
		if len(left.Cols) != len(right.Cols) {
			return nil, fmt.Errorf("semant: %s branches have %d and %d columns",
				x.Op, len(left.Cols), len(right.Cols))
		}
		kind := qgm.BoxUnion
		switch x.Op {
		case ast.Intersect:
			kind = qgm.BoxIntersect
		case ast.Except:
			kind = qgm.BoxExcept
		}
		u := b.g.NewBox(kind, "")
		u.Distinct = !x.All
		b.g.AddQuant(u, qgm.QForEach, left)
		b.g.AddQuant(u, qgm.QForEach, right)
		for _, c := range left.Cols {
			u.Cols = append(u.Cols, qgm.OutCol{Name: c.Name})
		}
		if top {
			if len(hoistOrder) > 0 {
				if err := b.bindOrderBy(hoistOrder, u); err != nil {
					return nil, err
				}
			}
			b.g.Limit = hoistLimit
		}
		return u, nil
	}
	return nil, fmt.Errorf("semant: unknown query node %T", q)
}

// blockCtx carries what expression translation needs: the scope for names
// and the box that newly created subquery quantifiers attach to.
type blockCtx struct {
	b   *binder
	sc  *scope
	box *qgm.Box
}

func (b *binder) bindSelect(sel *ast.Select, outer *scope, top bool) (*qgm.Box, error) {
	s := b.g.NewBox(qgm.BoxSelect, "")
	sc := &scope{parent: outer}
	for _, fi := range sel.From {
		if err := b.bindFromItem(fi, s, sc); err != nil {
			return nil, err
		}
	}
	ctx := &blockCtx{b: b, sc: sc, box: s}
	if sel.Where != nil {
		preds, err := ctx.trConjuncts(sel.Where)
		if err != nil {
			return nil, err
		}
		s.Preds = append(s.Preds, preds...)
	}

	grouped := len(sel.GroupBy) > 0 || sel.Having != nil || selectHasAggregate(sel)
	var result *qgm.Box
	if grouped {
		r, err := b.bindGrouped(sel, ctx, s)
		if err != nil {
			return nil, err
		}
		result = r
	} else {
		if err := b.bindPlainOutputs(sel, ctx, s); err != nil {
			return nil, err
		}
		s.Distinct = sel.Distinct
		result = s
	}
	if top {
		if len(sel.OrderBy) > 0 {
			if err := b.bindOrderBy(sel.OrderBy, result); err != nil {
				return nil, err
			}
		}
		b.g.Limit = sel.Limit
	} else {
		if sel.Limit >= 0 {
			return nil, fmt.Errorf("semant: LIMIT is only supported on the outermost query")
		}
		if len(sel.OrderBy) > 0 {
			return nil, fmt.Errorf("semant: ORDER BY is only supported on the outermost query")
		}
	}
	return result, nil
}

// bindFromItem adds one FROM element to select box s: a leaf table or
// derived table becomes a ForEach quantifier; an INNER JOIN flattens into
// s (its ON condition joins the predicates); a LEFT OUTER JOIN builds a
// BoxLeftJoin whose two sides stay addressable through column windows.
func (b *binder) bindFromItem(fi ast.FromItem, s *qgm.Box, sc *scope) error {
	if fi.Join == nil {
		input, alias, err := b.bindFromLeaf(fi, sc)
		if err != nil {
			return err
		}
		q := b.g.AddQuant(s, qgm.QForEach, input)
		return sc.add(alias, q)
	}
	j := fi.Join
	if !j.Outer {
		// INNER JOIN: equivalent to comma-join plus the ON predicates.
		if err := b.bindFromItem(j.Left, s, sc); err != nil {
			return err
		}
		if err := b.bindFromItem(j.Right, s, sc); err != nil {
			return err
		}
		ctx := &blockCtx{b: b, sc: sc, box: s}
		preds, err := ctx.trConjuncts(j.On)
		if err != nil {
			return err
		}
		s.Preds = append(s.Preds, preds...)
		return nil
	}
	// LEFT OUTER JOIN. Sides must be leaves (nest further joins in a
	// derived table if needed — the paper's rewritten queries only join
	// two operands).
	if j.Left.Join != nil || j.Right.Join != nil {
		return fmt.Errorf("semant: nested joins inside LEFT OUTER JOIN are not supported; use a derived table")
	}
	lbox, lalias, err := b.bindFromLeaf(j.Left, sc)
	if err != nil {
		return err
	}
	rbox, ralias, err := b.bindFromLeaf(j.Right, sc)
	if err != nil {
		return err
	}
	loj := b.g.NewBox(qgm.BoxLeftJoin, "")
	ql := b.g.AddQuant(loj, qgm.QForEach, lbox)
	qr := b.g.AddQuant(loj, qgm.QForEach, rbox)
	for i, c := range lbox.Cols {
		loj.Cols = append(loj.Cols, qgm.OutCol{Name: c.Name, Expr: qgm.Ref(ql, i)})
	}
	for i, c := range rbox.Cols {
		loj.Cols = append(loj.Cols, qgm.OutCol{Name: c.Name, Expr: qgm.Ref(qr, i)})
	}
	// The ON condition resolves the two sides inside the join box (outer
	// scopes remain visible for correlation).
	onScope := &scope{parent: sc}
	if err := onScope.add(lalias, ql); err != nil {
		return err
	}
	if err := onScope.add(ralias, qr); err != nil {
		return err
	}
	onCtx := &blockCtx{b: b, sc: onScope, box: loj}
	on, err := onCtx.trExpr(j.On)
	if err != nil {
		return err
	}
	loj.Preds = append(loj.Preds, qgm.SplitConjuncts(on)...)
	qj := b.g.AddQuant(s, qgm.QForEach, loj)
	if err := sc.addRange(lalias, qj, 0, len(lbox.Cols)); err != nil {
		return err
	}
	return sc.addRange(ralias, qj, len(lbox.Cols), len(lbox.Cols)+len(rbox.Cols))
}

// bindFromLeaf resolves a table/view/derived-table FROM element to its
// input box and alias.
func (b *binder) bindFromLeaf(fi ast.FromItem, sc *scope) (*qgm.Box, string, error) {
	var input *qgm.Box
	alias := fi.Alias
	switch {
	case fi.Table != "":
		def := b.cat.Lookup(fi.Table)
		if def == nil {
			expanded, err := b.expandView(fi.Table)
			if err != nil {
				return nil, "", err
			}
			if expanded == nil {
				return nil, "", fmt.Errorf("semant: unknown table %q", fi.Table)
			}
			input = expanded
		} else {
			input = b.g.NewBaseBox(def)
		}
		if alias == "" {
			alias = strings.ToLower(fi.Table)
			// A dot-qualified name ("sys.metrics") defaults its alias to the
			// bare table part, so "metrics.value" resolves without an AS.
			if i := strings.LastIndexByte(alias, '.'); i >= 0 {
				alias = alias[i+1:]
			}
		}
	case fi.Sub != nil:
		// Derived tables see FROM items to their left (implicit LATERAL),
		// which is how the paper's Query 3 correlates its table
		// expression on the supplier's nation.
		sub, err := b.bindQuery(fi.Sub, sc, false)
		if err != nil {
			return nil, "", err
		}
		input = sub
	default:
		return nil, "", fmt.Errorf("semant: empty FROM element")
	}
	if len(fi.ColAliases) > 0 {
		if len(fi.ColAliases) != len(input.Cols) {
			return nil, "", fmt.Errorf("semant: %d column aliases for %d columns of %q",
				len(fi.ColAliases), len(input.Cols), alias)
		}
		for i, a := range fi.ColAliases {
			input.Cols[i].Name = strings.ToLower(a)
		}
	}
	return input, alias, nil
}

// expandView inlines the named view, or returns (nil, nil) when no such
// view exists.
func (b *binder) expandView(name string) (*qgm.Box, error) {
	name = strings.ToLower(name)
	vd, ok := b.views[name]
	if !ok {
		return nil, nil
	}
	if b.expanding[name] {
		return nil, fmt.Errorf("semant: view %q is recursively defined", name)
	}
	b.expanding[name] = true
	defer delete(b.expanding, name)
	box, err := b.bindQuery(vd.Query, nil, false)
	if err != nil {
		return nil, fmt.Errorf("semant: expanding view %q: %w", name, err)
	}
	if len(vd.Cols) > 0 {
		if len(vd.Cols) != len(box.Cols) {
			return nil, fmt.Errorf("semant: view %q declares %d columns for %d outputs",
				name, len(vd.Cols), len(box.Cols))
		}
		for i, c := range vd.Cols {
			box.Cols[i].Name = strings.ToLower(c)
		}
	}
	if box.Label == "" {
		box.Label = "view:" + name
	}
	return box, nil
}

// rightmostSelect returns the textually last SELECT block of a set
// operation tree (where a trailing ORDER BY / LIMIT lands in the parse).
func rightmostSelect(q ast.QueryExpr) *ast.Select {
	for {
		switch x := q.(type) {
		case *ast.Select:
			return x
		case *ast.SetOp:
			q = x.Right
		default:
			return nil
		}
	}
}

func selectHasAggregate(sel *ast.Select) bool {
	for _, it := range sel.Items {
		if !it.Star && ast.ContainsAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// bindPlainOutputs fills the select box outputs for an ungrouped block.
func (b *binder) bindPlainOutputs(sel *ast.Select, ctx *blockCtx, s *qgm.Box) error {
	for _, it := range sel.Items {
		if it.Star {
			if err := expandStar(it, ctx, s); err != nil {
				return err
			}
			continue
		}
		e, err := ctx.trExpr(it.Expr)
		if err != nil {
			return err
		}
		s.Cols = append(s.Cols, qgm.OutCol{Name: outName(it, len(s.Cols)), Expr: e})
	}
	return nil
}

func expandStar(it ast.SelectItem, ctx *blockCtx, s *qgm.Box) error {
	matched := false
	for _, e := range ctx.sc.entries {
		if it.Qualifier != "" && e.alias != it.Qualifier {
			continue
		}
		matched = true
		lo, hi := e.lo, e.hi
		if hi == 0 {
			lo, hi = 0, len(e.q.Input.Cols)
		}
		for ci := lo; ci < hi; ci++ {
			s.Cols = append(s.Cols, qgm.OutCol{Name: e.q.Input.Cols[ci].Name, Expr: qgm.Ref(e.q, ci)})
		}
	}
	if !matched {
		return fmt.Errorf("semant: %s.* matches no FROM item", it.Qualifier)
	}
	return nil
}

func outName(it ast.SelectItem, pos int) string {
	if it.Alias != "" {
		return strings.ToLower(it.Alias)
	}
	if c, ok := it.Expr.(*ast.ColRef); ok {
		return strings.ToLower(c.Name)
	}
	return fmt.Sprintf("c%d", pos)
}

// bindGrouped builds the SPJ -> GROUPBY -> SELECT (having/projection)
// layering for aggregate queries. s is the already-built SPJ with FROM and
// WHERE applied.
func (b *binder) bindGrouped(sel *ast.Select, ctx *blockCtx, s *qgm.Box) (*qgm.Box, error) {
	// Outputs of s: group-by expressions first, then aggregate arguments.
	type aggSlot struct {
		astExpr *ast.FuncCall
		col     int // output ordinal in group box
	}
	g := b.g.NewBox(qgm.BoxGroup, "")
	h := b.g.NewBox(qgm.BoxSelect, "")

	var groupASTs []ast.Expr
	for _, ge := range sel.GroupBy {
		e, err := ctx.trExpr(ge)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("g%d", len(s.Cols))
		if c, ok := ge.(*ast.ColRef); ok {
			name = strings.ToLower(c.Name)
		}
		s.Cols = append(s.Cols, qgm.OutCol{Name: name, Expr: e})
		groupASTs = append(groupASTs, ge)
	}
	qg := b.g.AddQuant(g, qgm.QForEach, s)
	for i := range sel.GroupBy {
		g.GroupBy = append(g.GroupBy, qgm.Ref(qg, i))
		g.Cols = append(g.Cols, qgm.OutCol{Name: s.Cols[i].Name, Expr: qgm.Ref(qg, i)})
	}

	var aggs []aggSlot
	qh := b.g.AddQuant(h, qgm.QForEach, g)
	hctx := &blockCtx{b: b, sc: ctx.sc, box: h}

	// trPost translates a post-grouping expression: aggregates map to
	// group-box outputs, group-by expressions map to their group columns,
	// anything else must resolve to an enclosing (correlated) scope.
	var trPost func(e ast.Expr) (qgm.Expr, error)
	trPost = func(e ast.Expr) (qgm.Expr, error) {
		for gi, ga := range groupASTs {
			if reflect.DeepEqual(e, ga) {
				return qgm.Ref(qh, gi), nil
			}
		}
		if f, ok := e.(*ast.FuncCall); ok && ast.AggFuncs[f.Name] {
			for _, slot := range aggs {
				if reflect.DeepEqual(f, slot.astExpr) {
					return qgm.Ref(qh, slot.col), nil
				}
			}
			agg, err := makeAgg(f, ctx, s, qg)
			if err != nil {
				return nil, err
			}
			col := len(g.Cols)
			g.Cols = append(g.Cols, qgm.OutCol{Name: fmt.Sprintf("a%d", col), Expr: agg})
			aggs = append(aggs, aggSlot{astExpr: f, col: col})
			return qgm.Ref(qh, col), nil
		}
		switch x := e.(type) {
		case *ast.ColRef:
			ref, err := ctx.sc.lookup(x.Qualifier, strings.ToLower(x.Name))
			if err != nil {
				return nil, err
			}
			if ref.Q.Owner == s {
				return nil, fmt.Errorf("semant: column %s must appear in GROUP BY or inside an aggregate",
					qualified(x.Qualifier, x.Name))
			}
			return ref, nil // correlated reference to an enclosing block
		case *ast.Bin:
			l, err := trPost(x.L)
			if err != nil {
				return nil, err
			}
			r, err := trPost(x.R)
			if err != nil {
				return nil, err
			}
			return &qgm.Bin{Op: binOp(x.Op), L: l, R: r}, nil
		case *ast.Not:
			inner, err := trPost(x.E)
			if err != nil {
				return nil, err
			}
			return &qgm.Not{E: inner}, nil
		case *ast.Neg:
			inner, err := trPost(x.E)
			if err != nil {
				return nil, err
			}
			return &qgm.Bin{Op: qgm.OpSub, L: qgm.ConstInt(0), R: inner}, nil
		case *ast.IsNull:
			inner, err := trPost(x.E)
			if err != nil {
				return nil, err
			}
			return &qgm.IsNull{E: inner, Negate: x.Negate}, nil
		case *ast.IntLit, *ast.FloatLit, *ast.StringLit, *ast.NullLit, *ast.BoolLit, *ast.Param:
			return hctx.trExpr(e)
		case *ast.FuncCall: // scalar function over post-group expressions
			if !scalarFuncs[x.Name] {
				return nil, fmt.Errorf("semant: unknown function %q", x.Name)
			}
			fn := &qgm.Func{Name: x.Name}
			for _, a := range x.Args {
				ta, err := trPost(a)
				if err != nil {
					return nil, err
				}
				fn.Args = append(fn.Args, ta)
			}
			return fn, nil
		case *ast.ScalarSubquery:
			return hctx.trExpr(e) // attaches the subquery to h
		case *ast.CaseExpr:
			out := &qgm.Case{}
			for _, w := range x.Whens {
				cond, err := trPost(w.Cond)
				if err != nil {
					return nil, err
				}
				res, err := trPost(w.Result)
				if err != nil {
					return nil, err
				}
				out.Whens = append(out.Whens, qgm.When{Cond: cond, Result: res})
			}
			if x.Else != nil {
				e2, err := trPost(x.Else)
				if err != nil {
					return nil, err
				}
				out.Else = e2
			}
			return out, nil
		}
		return nil, fmt.Errorf("semant: unsupported expression %T after GROUP BY", e)
	}

	if sel.Having != nil {
		for _, conj := range splitAnd(sel.Having) {
			// Quantified predicates attach to the HAVING box; their
			// scalar sides translate in the post-grouping context.
			var p qgm.Expr
			var err error
			switch x := conj.(type) {
			case *ast.Exists:
				kind := qgm.QExists
				if x.Negate {
					kind = qgm.QNotExists
				}
				_, err = hctx.attachSubquery(x.Sub, kind)
			case *ast.InSubquery:
				var lhs qgm.Expr
				lhs, err = trPost(x.E)
				if err == nil {
					kind, op := qgm.QAny, qgm.OpEq
					if x.Negate {
						kind, op = qgm.QAll, qgm.OpNe
					}
					var q *qgm.Quantifier
					q, err = hctx.attachSubquery(x.Sub, kind)
					if err == nil {
						p = &qgm.Bin{Op: op, L: lhs, R: qgm.Ref(q, 0)}
					}
				}
			case *ast.QuantCmp:
				var lhs qgm.Expr
				lhs, err = trPost(x.E)
				if err == nil {
					kind := qgm.QAny
					if x.All {
						kind = qgm.QAll
					}
					var q *qgm.Quantifier
					q, err = hctx.attachSubquery(x.Sub, kind)
					if err == nil {
						p = &qgm.Bin{Op: binOp(x.Op), L: lhs, R: qgm.Ref(q, 0)}
					}
				}
			default:
				p, err = trPost(conj)
			}
			if err != nil {
				return nil, err
			}
			if p != nil {
				h.Preds = append(h.Preds, p)
			}
		}
	}
	// A HAVING/SELECT-list subquery may reference enclosing blocks, but
	// not the pre-grouping FROM columns of this block.
	for _, q := range h.Quants {
		if q.Kind == qgm.QForEach {
			continue
		}
		for _, r := range qgm.FreeRefs(q.Input) {
			if r.Q.Owner == s {
				return nil, fmt.Errorf("semant: subquery above GROUP BY references an ungrouped column of this block (unsupported)")
			}
		}
	}
	for _, it := range sel.Items {
		if it.Star {
			return nil, fmt.Errorf("semant: SELECT * is not valid with GROUP BY / aggregates")
		}
		e, err := trPost(it.Expr)
		if err != nil {
			return nil, err
		}
		h.Cols = append(h.Cols, qgm.OutCol{Name: outName(it, len(h.Cols)), Expr: e})
	}
	h.Distinct = sel.Distinct
	return h, nil
}

// makeAgg translates one aggregate call; its argument is computed as a new
// output of the SPJ box s so the group box aggregates a plain column of
// its input quantifier qg.
func makeAgg(f *ast.FuncCall, ctx *blockCtx, s *qgm.Box, qg *qgm.Quantifier) (*qgm.Agg, error) {
	if f.Star {
		if f.Name != "count" {
			return nil, fmt.Errorf("semant: %s(*) is not valid", f.Name)
		}
		return &qgm.Agg{Op: qgm.AggCountStar}, nil
	}
	if len(f.Args) != 1 {
		return nil, fmt.Errorf("semant: aggregate %s takes exactly one argument", f.Name)
	}
	arg, err := ctx.trExpr(f.Args[0])
	if err != nil {
		return nil, err
	}
	col := len(s.Cols)
	s.Cols = append(s.Cols, qgm.OutCol{Name: fmt.Sprintf("arg%d", col), Expr: arg})
	var op qgm.AggOp
	switch f.Name {
	case "count":
		op = qgm.AggCount
	case "sum":
		op = qgm.AggSum
	case "avg":
		op = qgm.AggAvg
	case "min":
		op = qgm.AggMin
	case "max":
		op = qgm.AggMax
	default:
		return nil, fmt.Errorf("semant: unknown aggregate %q", f.Name)
	}
	return &qgm.Agg{Op: op, Arg: qgm.Ref(qg, col), Distinct: f.Distinct}, nil
}

func (b *binder) bindOrderBy(items []ast.OrderItem, result *qgm.Box) error {
	for _, it := range items {
		col := -1
		switch x := it.Expr.(type) {
		case *ast.IntLit:
			if x.V >= 1 && int(x.V) <= len(result.Cols) {
				col = int(x.V) - 1
			}
		case *ast.ColRef:
			// Qualified or not, an ORDER BY name matches an output column
			// (the usual projection of the same column).
			col = result.ColIndex(strings.ToLower(x.Name))
		}
		if col < 0 {
			return fmt.Errorf("semant: ORDER BY item must be an output column name or ordinal")
		}
		b.g.OrderBy = append(b.g.OrderBy, qgm.OrderKey{Col: col, Desc: it.Desc})
	}
	return nil
}

func splitAnd(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.Bin); ok && b.Op == ast.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []ast.Expr{e}
}

func binOp(op ast.BinOp) qgm.Op {
	switch op {
	case ast.OpAdd:
		return qgm.OpAdd
	case ast.OpSub:
		return qgm.OpSub
	case ast.OpMul:
		return qgm.OpMul
	case ast.OpDiv:
		return qgm.OpDiv
	case ast.OpEq:
		return qgm.OpEq
	case ast.OpNe:
		return qgm.OpNe
	case ast.OpLt:
		return qgm.OpLt
	case ast.OpLe:
		return qgm.OpLe
	case ast.OpGt:
		return qgm.OpGt
	case ast.OpGe:
		return qgm.OpGe
	case ast.OpAnd:
		return qgm.OpAnd
	case ast.OpOr:
		return qgm.OpOr
	}
	panic(fmt.Sprintf("semant: unmapped operator %v", op))
}

// trConjuncts translates a WHERE tree conjunct by conjunct so that
// subquery predicates (EXISTS/IN/ANY/ALL) land as quantifiers plus tie
// predicates on the current box.
func (c *blockCtx) trConjuncts(e ast.Expr) ([]qgm.Expr, error) {
	var out []qgm.Expr
	for _, conj := range splitAnd(e) {
		p, err := c.trPredicate(conj)
		if err != nil {
			return nil, err
		}
		if p != nil {
			out = append(out, p)
		}
	}
	return out, nil
}

// trPredicate translates one conjunct. It may attach subquery quantifiers
// to the context box and may return nil when the conjunct is fully captured
// by a quantifier (bare EXISTS).
func (c *blockCtx) trPredicate(e ast.Expr) (qgm.Expr, error) {
	switch x := e.(type) {
	case *ast.Exists:
		kind := qgm.QExists
		if x.Negate {
			kind = qgm.QNotExists
		}
		_, err := c.attachSubquery(x.Sub, kind)
		return nil, err
	case *ast.Not:
		if ex, ok := x.E.(*ast.Exists); ok {
			return c.trPredicate(&ast.Exists{Sub: ex.Sub, Negate: !ex.Negate})
		}
		if in, ok := x.E.(*ast.InSubquery); ok {
			return c.trPredicate(&ast.InSubquery{E: in.E, Sub: in.Sub, Negate: !in.Negate})
		}
		inner, err := c.trExpr(x.E)
		if err != nil {
			return nil, err
		}
		return &qgm.Not{E: inner}, nil
	case *ast.InSubquery:
		lhs, err := c.trExpr(x.E)
		if err != nil {
			return nil, err
		}
		if x.Negate {
			// x NOT IN (S) == x <> ALL (S), with full SQL NULL semantics.
			q, err := c.attachSubquery(x.Sub, qgm.QAll)
			if err != nil {
				return nil, err
			}
			return &qgm.Bin{Op: qgm.OpNe, L: lhs, R: qgm.Ref(q, 0)}, nil
		}
		q, err := c.attachSubquery(x.Sub, qgm.QAny)
		if err != nil {
			return nil, err
		}
		return &qgm.Bin{Op: qgm.OpEq, L: lhs, R: qgm.Ref(q, 0)}, nil
	case *ast.QuantCmp:
		lhs, err := c.trExpr(x.E)
		if err != nil {
			return nil, err
		}
		kind := qgm.QAny
		if x.All {
			kind = qgm.QAll
		}
		q, err := c.attachSubquery(x.Sub, kind)
		if err != nil {
			return nil, err
		}
		return &qgm.Bin{Op: binOp(x.Op), L: lhs, R: qgm.Ref(q, 0)}, nil
	}
	return c.trExpr(e)
}

// attachSubquery binds a subquery block and attaches it to the context box
// with the given quantifier kind. Single-column output is enforced for
// value-producing kinds.
func (c *blockCtx) attachSubquery(sub ast.QueryExpr, kind qgm.QuantKind) (*qgm.Quantifier, error) {
	box, err := c.b.bindQuery(sub, c.sc, false)
	if err != nil {
		return nil, err
	}
	if kind == qgm.QScalar || kind == qgm.QAny || kind == qgm.QAll {
		if len(box.Cols) != 1 {
			return nil, fmt.Errorf("semant: subquery used as a value must return one column, got %d", len(box.Cols))
		}
	}
	return c.b.g.AddQuant(c.box, kind, box), nil
}

// trExpr translates a scalar expression (no quantified predicates).
func (c *blockCtx) trExpr(e ast.Expr) (qgm.Expr, error) {
	switch x := e.(type) {
	case *ast.ColRef:
		return c.sc.lookup(x.Qualifier, strings.ToLower(x.Name))
	case *ast.IntLit:
		return &qgm.Const{V: sqltypes.NewInt(x.V)}, nil
	case *ast.FloatLit:
		return &qgm.Const{V: sqltypes.NewFloat(x.V)}, nil
	case *ast.StringLit:
		return &qgm.Const{V: sqltypes.NewString(x.V)}, nil
	case *ast.NullLit:
		return &qgm.Const{V: sqltypes.Null}, nil
	case *ast.BoolLit:
		return &qgm.Const{V: sqltypes.NewBool(x.V)}, nil
	case *ast.Param:
		return c.b.bindParam(x), nil
	case *ast.Bin:
		l, err := c.trExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.trExpr(x.R)
		if err != nil {
			return nil, err
		}
		return &qgm.Bin{Op: binOp(x.Op), L: l, R: r}, nil
	case *ast.Not:
		inner, err := c.trExpr(x.E)
		if err != nil {
			return nil, err
		}
		return &qgm.Not{E: inner}, nil
	case *ast.Neg:
		inner, err := c.trExpr(x.E)
		if err != nil {
			return nil, err
		}
		if k, ok := inner.(*qgm.Const); ok {
			switch k.V.K {
			case sqltypes.KindInt:
				return &qgm.Const{V: sqltypes.NewInt(-k.V.I)}, nil
			case sqltypes.KindFloat:
				return &qgm.Const{V: sqltypes.NewFloat(-k.V.F)}, nil
			}
		}
		return &qgm.Bin{Op: qgm.OpSub, L: qgm.ConstInt(0), R: inner}, nil
	case *ast.IsNull:
		inner, err := c.trExpr(x.E)
		if err != nil {
			return nil, err
		}
		return &qgm.IsNull{E: inner, Negate: x.Negate}, nil
	case *ast.Like:
		inner, err := c.trExpr(x.E)
		if err != nil {
			return nil, err
		}
		pat, err := c.trExpr(x.Pattern)
		if err != nil {
			return nil, err
		}
		return &qgm.Like{E: inner, Pattern: pat, Negate: x.Negate}, nil
	case *ast.Between:
		inner, err := c.trExpr(x.E)
		if err != nil {
			return nil, err
		}
		lo, err := c.trExpr(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.trExpr(x.Hi)
		if err != nil {
			return nil, err
		}
		rng := &qgm.Bin{Op: qgm.OpAnd,
			L: &qgm.Bin{Op: qgm.OpGe, L: inner, R: lo},
			R: &qgm.Bin{Op: qgm.OpLe, L: qgm.CloneExpr(inner), R: hi}}
		if x.Negate {
			return &qgm.Not{E: rng}, nil
		}
		return rng, nil
	case *ast.InList:
		inner, err := c.trExpr(x.E)
		if err != nil {
			return nil, err
		}
		var disj qgm.Expr
		for _, item := range x.List {
			it, err := c.trExpr(item)
			if err != nil {
				return nil, err
			}
			eq := &qgm.Bin{Op: qgm.OpEq, L: qgm.CloneExpr(inner), R: it}
			if disj == nil {
				disj = eq
			} else {
				disj = &qgm.Bin{Op: qgm.OpOr, L: disj, R: eq}
			}
		}
		if disj == nil {
			disj = &qgm.Const{V: sqltypes.NewBool(false)}
		}
		if x.Negate {
			return &qgm.Not{E: disj}, nil
		}
		return disj, nil
	case *ast.ScalarSubquery:
		q, err := c.attachSubquery(x.Sub, qgm.QScalar)
		if err != nil {
			return nil, err
		}
		return qgm.Ref(q, 0), nil
	case *ast.CaseExpr:
		out := &qgm.Case{}
		for _, w := range x.Whens {
			cond, err := c.trExpr(w.Cond)
			if err != nil {
				return nil, err
			}
			res, err := c.trExpr(w.Result)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, qgm.When{Cond: cond, Result: res})
		}
		if x.Else != nil {
			e, err := c.trExpr(x.Else)
			if err != nil {
				return nil, err
			}
			out.Else = e
		}
		return out, nil
	case *ast.FuncCall:
		if ast.AggFuncs[x.Name] {
			return nil, fmt.Errorf("semant: aggregate %s not allowed here", x.Name)
		}
		if !scalarFuncs[x.Name] {
			return nil, fmt.Errorf("semant: unknown function %q", x.Name)
		}
		fn := &qgm.Func{Name: x.Name}
		for _, a := range x.Args {
			ta, err := c.trExpr(a)
			if err != nil {
				return nil, err
			}
			fn.Args = append(fn.Args, ta)
		}
		return fn, nil
	case *ast.Exists, *ast.InSubquery, *ast.QuantCmp:
		return nil, fmt.Errorf("semant: quantified predicate must be a top-level conjunct of WHERE/HAVING")
	}
	return nil, fmt.Errorf("semant: unsupported expression %T", e)
}
