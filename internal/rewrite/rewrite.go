// Package rewrite implements the rule-driven QGM rewrite engine, modeled on
// Starburst's query rewrite phase [PHH92]: rules apply at the granularity
// of one box and must leave the graph consistent after every application.
// The cleanup rules here are the "existing rewrite rules that merge query
// blocks" which the paper's §4.2/§4.3 rely on to merge CI boxes into their
// parents (turning correlated predicates into equi-joins) and to remove
// redundant DCO boxes.
package rewrite

import (
	"errors"
	"fmt"

	"decorr/internal/qgm"
	"decorr/internal/trace"
)

// ErrNoFixpoint is wrapped by Run when MaxPasses is exhausted before the
// rule set converges. Callers (the REPL, the CLI, Auto-strategy fallback)
// match it with errors.Is to distinguish "the rewrite engine itself is
// broken" from an unsupported query: the graph may be half-rewritten, so
// no plan derived from it should be shown or executed.
var ErrNoFixpoint = errors.New("rewrite rule set did not converge")

// Rule is one rewrite rule.
type Rule interface {
	// Name identifies the rule in traces.
	Name() string
	// Apply attempts one round of the rule over the whole graph, returning
	// whether anything changed.
	Apply(g *qgm.Graph) (bool, error)
}

// Engine runs rules to a fixpoint, validating after each change.
type Engine struct {
	Rules []Rule
	// MaxPasses bounds fixpoint iteration (safety valve; the rules are
	// strictly reducing so this should never bind).
	MaxPasses int
	// Tracer, when non-nil, receives one span per rule application
	// (rule name, pass number, whether it fired, box-count delta).
	Tracer *trace.Tracer
}

// NewCleanup returns the standard cleanup engine.
func NewCleanup() *Engine {
	return &Engine{
		Rules: []Rule{
			MergeSPJ{}, RemoveTrivial{}, PruneDuplicatePreds{},
			FoldConstants{}, DropRedundantDistinct{}, PushPredicates{},
			PruneProjections{},
		},
		MaxPasses: 64,
	}
}

// NewCleanupWithout returns the standard cleanup engine minus the named
// rules. The differential harness uses it to cross-check strategy results
// with individual cleanup rules (predicate pushdown, projection pruning)
// disabled: a rewrite whose correctness silently depends on a later
// cleanup pass is a bug this exposes.
func NewCleanupWithout(names ...string) *Engine {
	drop := map[string]bool{}
	for _, n := range names {
		drop[n] = true
	}
	e := NewCleanup()
	kept := e.Rules[:0:0]
	for _, r := range e.Rules {
		if !drop[r.Name()] {
			kept = append(kept, r)
		}
	}
	e.Rules = kept
	return e
}

// WithTracer attaches a tracer and returns e (chainable after NewCleanup).
func (e *Engine) WithTracer(t *trace.Tracer) *Engine {
	e.Tracer = t
	return e
}

// Run applies all rules to a fixpoint. It fails when MaxPasses is
// exhausted without reaching one: a rule set that never converges is a
// bug, and returning the final graph silently would hide it.
func (e *Engine) Run(g *qgm.Graph) error {
	max := e.MaxPasses
	if max <= 0 {
		max = 64
	}
	for pass := 0; pass < max; pass++ {
		changed := false
		for _, r := range e.Rules {
			c, err := e.applyRule(g, r, pass)
			if err != nil {
				return err
			}
			changed = changed || c
		}
		if !changed {
			return nil
		}
	}
	e.Tracer.Instant("fixpoint-exhausted", "rewrite", trace.Int("max_passes", int64(max)))
	return fmt.Errorf("rewrite: no fixpoint after %d passes (a rule keeps reporting changes): %w", max, ErrNoFixpoint)
}

// applyRule runs one rule over the graph, emitting its trace span.
func (e *Engine) applyRule(g *qgm.Graph, r Rule, pass int) (bool, error) {
	var sp *trace.Span
	var boxesBefore int
	if e.Tracer != nil {
		boxesBefore = len(qgm.Boxes(g.Root))
		sp = e.Tracer.Begin("rule:"+r.Name(), "rewrite",
			trace.Str("rule", r.Name()), trace.Int("pass", int64(pass)))
	}
	c, err := r.Apply(g)
	if err != nil {
		sp.End(trace.Str("error", err.Error()))
		return false, fmt.Errorf("rewrite: rule %s: %w", r.Name(), err)
	}
	if c {
		if err := qgm.Validate(g); err != nil {
			sp.End(trace.Str("error", err.Error()))
			return false, fmt.Errorf("rewrite: rule %s left inconsistent graph: %w", r.Name(), err)
		}
	}
	if sp != nil {
		sp.End(trace.Bool("fired", c),
			trace.Int("box_delta", int64(len(qgm.Boxes(g.Root))-boxesBefore)))
	}
	return c, nil
}

// MergeSPJ merges a non-shared, non-distinct SELECT child into its SELECT
// parent: the child's quantifiers move up, its predicates conjoin with the
// parent's, and references to the child's outputs are replaced by the
// defining expressions. When the child carried correlated predicates (a CI
// box), those become ordinary join predicates of the parent — exactly the
// CI-merge of §4.2.
type MergeSPJ struct{}

// Name implements Rule.
func (MergeSPJ) Name() string { return "merge-spj" }

// Apply implements Rule.
func (MergeSPJ) Apply(g *qgm.Graph) (bool, error) {
	refCount := map[*qgm.Box]int{}
	for _, b := range qgm.Boxes(g.Root) {
		for _, q := range b.Quants {
			refCount[q.Input]++
		}
	}
	for _, parent := range qgm.Boxes(g.Root) {
		if parent.Kind != qgm.BoxSelect {
			continue
		}
		for _, q := range parent.Quants {
			child := q.Input
			if q.Kind != qgm.QForEach || child.Kind != qgm.BoxSelect {
				continue
			}
			if child.Distinct || refCount[child] > 1 {
				continue
			}
			mergeChild(g, parent, q)
			return true, nil
		}
	}
	return false, nil
}

// mergeChild splices child (q.Input) into parent.
func mergeChild(g *qgm.Graph, parent *qgm.Box, q *qgm.Quantifier) {
	child := q.Input
	// Replacement map: (q, i) -> child.Cols[i].Expr.
	mapping := map[qgm.RefKey]qgm.Expr{}
	for i, c := range child.Cols {
		mapping[qgm.RefKey{Q: q, Col: i}] = c.Expr
	}
	// Move the child's quantifiers up.
	for _, cq := range child.Quants {
		cq.Owner = parent
		parent.Quants = append(parent.Quants, cq)
	}
	parent.RemoveQuant(q)
	parent.Preds = append(parent.Preds, child.Preds...)
	// Replace references to q throughout the parent's entire subtree
	// (descendants may reference q as a correlated quantifier).
	qgm.RedirectRefs(parent, mapping)
	// Keep g.Root intact; parent identity unchanged.
	_ = g
}

// RemoveTrivial splices out SELECT boxes that are an identity projection of
// a single ForEach quantifier with no predicates and no DISTINCT — the
// shape redundant DCO and CI boxes take after decorrelation.
type RemoveTrivial struct{}

// Name implements Rule.
func (RemoveTrivial) Name() string { return "remove-trivial" }

// Apply implements Rule.
func (RemoveTrivial) Apply(g *qgm.Graph) (bool, error) {
	changed := false
	for _, b := range qgm.Boxes(g.Root) {
		for _, q := range b.Quants {
			inner := q.Input
			if isTrivial(inner) {
				q.Input = inner.Quants[0].Input
				changed = true
			}
		}
	}
	// The root's output names are client-visible: only splice it when the
	// inner box exposes the same names.
	if isTrivial(g.Root) && sameOutNames(g.Root, g.Root.Quants[0].Input) {
		g.Root = g.Root.Quants[0].Input
		changed = true
	}
	return changed, nil
}

func sameOutNames(a, b *qgm.Box) bool {
	if len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i].Name != b.Cols[i].Name {
			return false
		}
	}
	return true
}

func isTrivial(b *qgm.Box) bool {
	if b.Kind != qgm.BoxSelect || b.Distinct || len(b.Preds) != 0 || len(b.Quants) != 1 {
		return false
	}
	q := b.Quants[0]
	if q.Kind != qgm.QForEach {
		return false
	}
	if len(b.Cols) != len(q.Input.Cols) {
		return false
	}
	for i, c := range b.Cols {
		r, ok := c.Expr.(*qgm.ColRef)
		if !ok || r.Q != q || r.Col != i {
			return false
		}
		// Renaming projections are fine to splice only if names match;
		// output names are advisory, so allow them to differ.
	}
	// A trivial root must preserve column names for the client; only
	// splice the root when names agree.
	return true
}

// PruneDuplicatePreds drops syntactically identical duplicate conjuncts
// within a box (rewrites can leave behind repeated equality predicates).
type PruneDuplicatePreds struct{}

// Name implements Rule.
func (PruneDuplicatePreds) Name() string { return "prune-duplicate-preds" }

// Apply implements Rule.
func (PruneDuplicatePreds) Apply(g *qgm.Graph) (bool, error) {
	changed := false
	for _, b := range qgm.Boxes(g.Root) {
		seen := map[string]bool{}
		kept := b.Preds[:0:0]
		for _, p := range b.Preds {
			k := qgm.FormatExpr(p)
			if seen[k] {
				changed = true
				continue
			}
			seen[k] = true
			kept = append(kept, p)
		}
		b.Preds = kept
	}
	return changed, nil
}
