package rewrite_test

import (
	"testing"

	"decorr/internal/qgm"
)

func TestPushPredicateBelowDistinct(t *testing.T) {
	// MergeSPJ cannot touch the DISTINCT child, but the filter can sink
	// into it.
	g := bind(t, `
		select b from (select distinct building, building from emp) as d(b, b2)
		where b = 'B1'`)
	cleanup(t, g)
	var distinctBox *qgm.Box
	for _, b := range qgm.Boxes(g.Root) {
		if b.Distinct {
			distinctBox = b
		}
	}
	if distinctBox == nil {
		t.Fatal("distinct box vanished")
	}
	if len(distinctBox.Preds) == 0 {
		t.Fatalf("filter not pushed into the DISTINCT child:\n%s", qgm.Format(g))
	}
	if len(g.Root.Preds) != 0 && g.Root != distinctBox {
		t.Fatalf("filter left in parent:\n%s", qgm.Format(g))
	}
}

func TestPushSkipsJoinPredicates(t *testing.T) {
	g := bind(t, `
		select x.b from
		  (select distinct building, building from emp) as x(b, c),
		  (select distinct building, building from dept) as y(b, c)
		where x.b = y.b`)
	cleanup(t, g)
	// The equi-join predicate touches two quantifiers and must stay put.
	if len(g.Root.Preds) != 1 {
		t.Fatalf("join predicate moved:\n%s", qgm.Format(g))
	}
}

func TestPushSkipsComplexOutputs(t *testing.T) {
	// The child output is an expression (budget*2); duplicating it below
	// the filter is declined.
	g := bind(t, `
		select v from (select distinct budget * 2, building from dept) as d(v, w)
		where v > 100`)
	cleanup(t, g)
	found := false
	for _, b := range qgm.Boxes(g.Root) {
		if b.Distinct && len(b.Preds) > 0 {
			found = true
		}
	}
	if found {
		t.Fatalf("expression output pushed:\n%s", qgm.Format(g))
	}
}

func TestPushPreservesResults(t *testing.T) {
	g := bind(t, `
		select b, n from (select distinct building, name from emp) as d(b, n)
		where b = 'B2' order by n`)
	cleanup(t, g)
	if err := qgm.Validate(g); err != nil {
		t.Fatal(err)
	}
}
