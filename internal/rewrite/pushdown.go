package rewrite

import (
	"decorr/internal/qgm"
)

// PushPredicates moves a parent SELECT's conjuncts into a non-shared
// SELECT child when every reference the predicate makes resolves through
// that child (outer correlated references ride along). Magic decorrelation
// benefits doubly: filters sink below the supplementary table's
// projection, and the magic table's input shrinks before the DISTINCT.
//
// Pushing below DISTINCT is sound for filters (restricting before or
// after deduplication keeps the same set). Pushing into GROUP BY or set
// operations is not attempted.
type PushPredicates struct{}

// Name implements Rule.
func (PushPredicates) Name() string { return "push-predicates" }

// Apply implements Rule.
func (PushPredicates) Apply(g *qgm.Graph) (bool, error) {
	refCount := map[*qgm.Box]int{}
	for _, b := range qgm.Boxes(g.Root) {
		for _, q := range b.Quants {
			refCount[q.Input]++
		}
	}
	changed := false
	for _, parent := range qgm.Boxes(g.Root) {
		if parent.Kind != qgm.BoxSelect {
			continue
		}
		kept := parent.Preds[:0:0]
		for _, p := range parent.Preds {
			target := pushTarget(parent, p, refCount)
			if target == nil {
				kept = append(kept, p)
				continue
			}
			pushed, ok := rebaseThroughChild(p, target)
			if !ok {
				kept = append(kept, p)
				continue
			}
			target.Input.Preds = append(target.Input.Preds, pushed)
			changed = true
		}
		parent.Preds = kept
	}
	return changed, nil
}

// pushTarget returns the single ForEach quantifier (over a pushable SELECT
// child) that p's local references go through, or nil.
func pushTarget(parent *qgm.Box, p qgm.Expr, refCount map[*qgm.Box]int) *qgm.Quantifier {
	var target *qgm.Quantifier
	for q := range qgm.QuantSet(p) {
		if q.Owner != parent {
			continue // outer reference: rides along
		}
		if target != nil && target != q {
			return nil // touches two local quantifiers: a join predicate
		}
		target = q
	}
	if target == nil || target.Kind != qgm.QForEach {
		return nil
	}
	child := target.Input
	if child.Kind != qgm.BoxSelect || refCount[child] > 1 {
		return nil
	}
	return target
}

// rebaseThroughChild rewrites p, replacing references through q with the
// child's defining output expressions. It refuses when an output
// expression is not a plain column reference or constant (duplicating
// arbitrary expressions below a filter could re-evaluate side-conditions
// like division).
func rebaseThroughChild(p qgm.Expr, q *qgm.Quantifier) (qgm.Expr, bool) {
	child := q.Input
	ok := true
	out := qgm.Rewrite(p, func(e qgm.Expr) qgm.Expr {
		r, isRef := e.(*qgm.ColRef)
		if !isRef || r.Q != q {
			return e
		}
		if r.Col >= len(child.Cols) {
			ok = false
			return e
		}
		def := child.Cols[r.Col].Expr
		switch def.(type) {
		case *qgm.ColRef, *qgm.Const:
			return qgm.CloneExpr(def)
		default:
			ok = false
			return e
		}
	})
	if !ok {
		return nil, false
	}
	return out, true
}
