package rewrite

import (
	"sort"

	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
)

// PruneProjections removes output columns no consumer references. The
// supplementary tables magic decorrelation builds carry every column any
// consumer might need; after the CI merges settle, many are dead weight —
// pruning them narrows hash-join payloads and scans of derived tables.
//
// Boxes are skipped when pruning would change semantics or break
// alignment: base tables (storage layout), DISTINCT boxes (projection
// width defines duplicate semantics), union boxes and their direct inputs
// (positional alignment), and the root (client-visible shape).
type PruneProjections struct{}

// Name implements Rule.
func (PruneProjections) Name() string { return "prune-projections" }

// Apply implements Rule.
func (PruneProjections) Apply(g *qgm.Graph) (bool, error) {
	boxes := qgm.Boxes(g.Root)
	used := map[*qgm.Box]map[int]bool{}
	setOpInput := map[*qgm.Box]bool{}
	isSetOp := func(k qgm.BoxKind) bool {
		return k == qgm.BoxUnion || k == qgm.BoxIntersect || k == qgm.BoxExcept
	}
	for _, b := range boxes {
		for _, q := range b.Quants {
			if used[q.Input] == nil {
				used[q.Input] = map[int]bool{}
			}
			if isSetOp(b.Kind) {
				setOpInput[q.Input] = true
			}
		}
		b.ExprSlots(func(slot *qgm.Expr) {
			for _, r := range qgm.Refs(*slot) {
				if used[r.Q.Input] == nil {
					used[r.Q.Input] = map[int]bool{}
				}
				used[r.Q.Input][r.Col] = true
			}
		})
	}
	changed := false
	for _, b := range boxes {
		// Set-operation boxes and their inputs are untouchable: row
		// identity covers every column and branch arities must align.
		if b == g.Root || b.Kind == qgm.BoxBase || isSetOp(b.Kind) ||
			b.Distinct || setOpInput[b] {
			continue
		}
		u := used[b]
		if len(u) == len(b.Cols) {
			continue
		}
		// Keep at least one column so the box still produces rows with
		// observable width (existential inputs may use none).
		keep := make([]int, 0, len(u))
		for c := range u {
			keep = append(keep, c)
		}
		sort.Ints(keep)
		if len(keep) == 0 {
			keep = []int{0}
		}
		if len(keep) == len(b.Cols) {
			continue
		}
		remap := map[int]int{}
		newCols := make([]qgm.OutCol, 0, len(keep))
		for newIdx, oldIdx := range keep {
			remap[oldIdx] = newIdx
			newCols = append(newCols, b.Cols[oldIdx])
		}
		b.Cols = newCols
		// Rewrite every reference to b across the graph.
		for _, holder := range boxes {
			holder.ExprSlots(func(slot *qgm.Expr) {
				*slot = qgm.Rewrite(*slot, func(e qgm.Expr) qgm.Expr {
					if r, ok := e.(*qgm.ColRef); ok && r.Q.Input == b {
						if n, ok := remap[r.Col]; ok {
							return qgm.Ref(r.Q, n)
						}
					}
					return e
				})
			})
		}
		changed = true
	}
	return changed, nil
}

// FoldConstants evaluates constant sub-expressions at rewrite time and
// removes predicates that fold to TRUE.
type FoldConstants struct{}

// Name implements Rule.
func (FoldConstants) Name() string { return "fold-constants" }

// Apply implements Rule.
func (FoldConstants) Apply(g *qgm.Graph) (bool, error) {
	changed := false
	for _, b := range qgm.Boxes(g.Root) {
		b.ExprSlots(func(slot *qgm.Expr) {
			folded := qgm.Rewrite(*slot, foldConst)
			if qgm.FormatExpr(folded) != qgm.FormatExpr(*slot) {
				*slot = folded
				changed = true
			}
		})
		if b.Kind != qgm.BoxSelect && b.Kind != qgm.BoxLeftJoin {
			continue
		}
		kept := b.Preds[:0:0]
		for _, p := range b.Preds {
			if c, ok := p.(*qgm.Const); ok && c.V.K == sqltypes.KindBool && c.V.B {
				changed = true
				continue // constant TRUE conjunct
			}
			kept = append(kept, p)
		}
		// A LOJ's ON clause and an SPJ both tolerate losing TRUE conjuncts.
		b.Preds = kept
	}
	return changed, nil
}

func foldConst(e qgm.Expr) qgm.Expr {
	switch x := e.(type) {
	case *qgm.Bin:
		l, lok := x.L.(*qgm.Const)
		r, rok := x.R.(*qgm.Const)
		if !lok || !rok {
			return e
		}
		switch x.Op {
		case qgm.OpAdd, qgm.OpSub, qgm.OpMul, qgm.OpDiv:
			v, err := sqltypes.Arith(arith(x.Op), l.V, r.V)
			if err != nil {
				return e // keep the runtime error (e.g. division by zero)
			}
			return &qgm.Const{V: v}
		case qgm.OpEq, qgm.OpNe, qgm.OpLt, qgm.OpLe, qgm.OpGt, qgm.OpGe:
			c, ok := sqltypes.Compare(l.V, r.V)
			if !ok {
				return &qgm.Const{V: sqltypes.Null}
			}
			var res bool
			switch x.Op {
			case qgm.OpEq:
				res = c == 0
			case qgm.OpNe:
				res = c != 0
			case qgm.OpLt:
				res = c < 0
			case qgm.OpLe:
				res = c <= 0
			case qgm.OpGt:
				res = c > 0
			case qgm.OpGe:
				res = c >= 0
			}
			return &qgm.Const{V: sqltypes.NewBool(res)}
		}
	case *qgm.Func:
		if x.Name == "coalesce" {
			// coalesce with a leading non-NULL constant folds to it.
			if len(x.Args) > 0 {
				if c, ok := x.Args[0].(*qgm.Const); ok && !c.V.IsNull() {
					return c
				}
			}
		}
	case *qgm.IsNull:
		if c, ok := x.E.(*qgm.Const); ok {
			res := c.V.IsNull()
			if x.Negate {
				res = !res
			}
			return &qgm.Const{V: sqltypes.NewBool(res)}
		}
	}
	return e
}

func arith(op qgm.Op) sqltypes.ArithOp {
	switch op {
	case qgm.OpAdd:
		return sqltypes.OpAdd
	case qgm.OpSub:
		return sqltypes.OpSub
	case qgm.OpMul:
		return sqltypes.OpMul
	}
	return sqltypes.OpDiv
}

// DropRedundantDistinct clears the DISTINCT flag of select boxes whose
// output is provably duplicate-free (the outputs contain a candidate key of
// the underlying join). Magic tables over key-preserving supplementary
// tables are the motivating case.
type DropRedundantDistinct struct{}

// Name implements Rule.
func (DropRedundantDistinct) Name() string { return "drop-redundant-distinct" }

// Apply implements Rule.
func (DropRedundantDistinct) Apply(g *qgm.Graph) (bool, error) {
	changed := false
	for _, b := range qgm.Boxes(g.Root) {
		if b.Kind != qgm.BoxSelect || !b.Distinct {
			continue
		}
		all := map[int]bool{}
		for i := range b.Cols {
			all[i] = true
		}
		b.Distinct = false // evaluate the key property of the bare join
		if qgm.KeyWithin(b, all) {
			changed = true // flag stays cleared
		} else {
			b.Distinct = true
		}
	}
	return changed, nil
}
