package rewrite_test

import (
	"strings"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/qgm"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

func TestPruneProjectionsRemovesDeadColumns(t *testing.T) {
	// Only x survives: y and z of the derived table are never referenced.
	g := bind(t, `select x from (select name, building, name from emp) as d(x, y, z) where x like 'a%'`)
	cleanup(t, g)
	for _, b := range qgm.Boxes(g.Root) {
		if b == g.Root || b.Kind == qgm.BoxBase {
			continue
		}
		if len(b.Cols) > 1 {
			t.Errorf("box %d still carries %d columns: %v", b.ID, len(b.Cols), b.OutNames())
		}
	}
}

func TestPruneKeepsDistinctWidth(t *testing.T) {
	// building/building is not a key, so the DISTINCT is load-bearing and
	// its projection width must not change.
	g := bind(t, `select x from (select distinct building, building from emp) as d(x, y)`)
	cleanup(t, g)
	found := false
	for _, b := range qgm.Boxes(g.Root) {
		if b.Distinct {
			found = true
			if len(b.Cols) != 2 {
				t.Errorf("DISTINCT box pruned to %d cols; duplicate semantics depend on width", len(b.Cols))
			}
		}
	}
	if !found {
		t.Fatal("distinct box missing")
	}
}

func TestPruneSkipsUnionAlignment(t *testing.T) {
	g := bind(t, `
		select a from
		  (select name, building from emp
		   union all
		   select name, building from emp) as u(a, b)`)
	cleanup(t, g)
	for _, b := range qgm.Boxes(g.Root) {
		if b.Kind == qgm.BoxUnion && len(b.Cols) != 2 {
			t.Errorf("union pruned to %d cols; branches must stay aligned", len(b.Cols))
		}
	}
}

func TestFoldConstants(t *testing.T) {
	g := bind(t, `select name from emp where 1 + 1 = 2 and building = 'B1'`)
	cleanup(t, g)
	if len(g.Root.Preds) != 1 {
		t.Fatalf("TRUE conjunct survived: %d preds", len(g.Root.Preds))
	}
	g = bind(t, `select budget * 2 + 1 - 1 from dept`)
	cleanup(t, g)
	plan := qgm.Format(g)
	// (budget*2)+1-1 cannot fully fold (column involved), but 3*4 can:
	g = bind(t, `select 3 * 4 from dept`)
	cleanup(t, g)
	plan = qgm.Format(g)
	if !strings.Contains(plan, "12") {
		t.Errorf("3*4 not folded:\n%s", plan)
	}
}

func TestFoldKeepsDivisionByZeroForRuntime(t *testing.T) {
	g := bind(t, `select 1 / 0 from dept`)
	cleanup(t, g) // must not panic or fold to garbage
	if !strings.Contains(qgm.Format(g), "/") {
		t.Error("division by zero folded away; it must raise at runtime")
	}
}

func TestDropRedundantDistinct(t *testing.T) {
	// name is the declared key of emp: DISTINCT over it is a no-op.
	g := bind(t, `select y from (select distinct name, building from emp) as d(x, y)`)
	cleanup(t, g)
	for _, b := range qgm.Boxes(g.Root) {
		if b.Distinct {
			t.Errorf("distinct over a key survived:\n%s", qgm.Format(g))
		}
	}
	// building is not a key: DISTINCT must stay.
	g = bind(t, `select x from (select distinct building from emp) as d(x)`)
	cleanup(t, g)
	kept := false
	for _, b := range qgm.Boxes(g.Root) {
		if b.Distinct {
			kept = true
		}
	}
	if !kept {
		t.Error("necessary DISTINCT dropped")
	}
}

// The rules must preserve semantics end to end on a query whose plan they
// visibly change.
func TestRulesPreserveResults(t *testing.T) {
	db := tpcd.EmpDept()
	e := engine.New(db)
	rows, _, err := e.Query(`
		select x from (select name, building, budget from dept) as d(x, y, z)
		where 2 > 1 and z < 10000 order by x`, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	got := render(rows)
	want := "archives;shoes;tools;toys"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func render(rows []storage.Row) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
		}
		parts[i] = strings.Join(cells, "|")
	}
	return strings.Join(parts, ";")
}
