package rewrite_test

import (
	"errors"
	"strings"
	"testing"

	"decorr/internal/qgm"
	"decorr/internal/rewrite"
	"decorr/internal/trace"
)

// alwaysChanges claims progress on every application, so the engine can
// never reach a fixpoint.
type alwaysChanges struct{}

func (alwaysChanges) Name() string                     { return "always-changes" }
func (alwaysChanges) Apply(g *qgm.Graph) (bool, error) { return true, nil }

func TestRunErrorsWhenFixpointNotReached(t *testing.T) {
	g := bind(t, "select name from dept")
	ring := trace.NewRingSink(0)
	e := &rewrite.Engine{
		Rules:     []rewrite.Rule{alwaysChanges{}},
		MaxPasses: 3,
		Tracer:    trace.New(ring),
	}
	err := e.Run(g)
	if err == nil {
		t.Fatal("Run returned nil after exhausting MaxPasses without a fixpoint")
	}
	if !strings.Contains(err.Error(), "no fixpoint after 3 passes") {
		t.Errorf("error %q does not name the exhausted pass budget", err)
	}
	if !errors.Is(err, rewrite.ErrNoFixpoint) {
		t.Errorf("error %q does not wrap ErrNoFixpoint", err)
	}
	// The event must also land in the trace.
	var found bool
	for _, ev := range ring.Events() {
		if ev.Name == "fixpoint-exhausted" {
			found = true
			if len(ev.Args) == 0 || ev.Args[0].Key != "max_passes" || ev.Args[0].Value != int64(3) {
				t.Errorf("fixpoint-exhausted args = %v", ev.Args)
			}
		}
	}
	if !found {
		t.Error("fixpoint-exhausted event missing from trace")
	}
}

func TestNewCleanupWithout(t *testing.T) {
	full := rewrite.NewCleanup()
	trimmed := rewrite.NewCleanupWithout("push-predicates", "prune-projections")
	if len(trimmed.Rules) != len(full.Rules)-2 {
		names := make([]string, len(trimmed.Rules))
		for i, r := range trimmed.Rules {
			names[i] = r.Name()
		}
		t.Fatalf("expected %d rules after dropping two, got %v", len(full.Rules)-2, names)
	}
	for _, r := range trimmed.Rules {
		if r.Name() == "push-predicates" || r.Name() == "prune-projections" {
			t.Errorf("rule %s not dropped", r.Name())
		}
	}
	// The trimmed engine must still converge on an ordinary query.
	g := bind(t, "select name from (select name from dept) d")
	if err := trimmed.Run(g); err != nil {
		t.Fatalf("trimmed cleanup failed: %v", err)
	}
}

func TestRunConvergesAndTracesRules(t *testing.T) {
	g := bind(t, "select name from (select name from dept) d")
	ring := trace.NewRingSink(0)
	if err := rewrite.NewCleanup().WithTracer(trace.New(ring)).Run(g); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for _, ev := range ring.Events() {
		if !strings.HasPrefix(ev.Name, "rule:") {
			continue
		}
		args := map[string]any{}
		for _, a := range ev.Args {
			args[a.Key] = a.Value
		}
		for _, key := range []string{"rule", "pass", "fired", "box_delta"} {
			if _, ok := args[key]; !ok {
				t.Fatalf("rule span %s missing %q: %v", ev.Name, key, ev.Args)
			}
		}
		if args["fired"] == true {
			fired++
		}
	}
	if fired == 0 {
		t.Error("no rule fired on a mergeable derived table")
	}
}
