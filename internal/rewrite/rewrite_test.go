package rewrite_test

import (
	"testing"

	"decorr/internal/parser"
	"decorr/internal/qgm"
	"decorr/internal/rewrite"
	"decorr/internal/semant"
	"decorr/internal/tpcd"
)

func bind(t *testing.T, sql string) *qgm.Graph {
	t.Helper()
	q, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.Bind(q, tpcd.EmpDept().Catalog)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func cleanup(t *testing.T, g *qgm.Graph) {
	t.Helper()
	if err := rewrite.NewCleanup().Run(g); err != nil {
		t.Fatal(err)
	}
	if err := qgm.Validate(g); err != nil {
		t.Fatalf("cleanup broke the graph: %v", err)
	}
}

func countBoxes(g *qgm.Graph) int { return len(qgm.Boxes(g.Root)) }

func TestMergeSPJFlattensDerivedTables(t *testing.T) {
	g := bind(t, `
		select x.name from
		  (select name, building from emp where building = 'B1') as x,
		  (select building from dept where budget < 10000) as y
		where x.building = y.building`)
	before := countBoxes(g)
	cleanup(t, g)
	after := countBoxes(g)
	if after >= before {
		t.Fatalf("no merge happened: %d -> %d boxes", before, after)
	}
	// Fully flattened: root select over two base tables.
	if g.Root.Kind != qgm.BoxSelect || len(g.Root.Quants) != 2 {
		t.Fatalf("root = %+v", g.Root)
	}
	for _, q := range g.Root.Quants {
		if q.Input.Kind != qgm.BoxBase {
			t.Fatalf("unmerged input %v", q.Input.Kind)
		}
	}
	// Predicates merged too: building='B1', budget<10000, join.
	if len(g.Root.Preds) != 3 {
		t.Fatalf("merged preds = %d", len(g.Root.Preds))
	}
}

func TestMergeSkipsDistinctChild(t *testing.T) {
	g := bind(t, `select b from (select distinct building from emp) as d(b)`)
	cleanup(t, g)
	// The distinct box must survive (merging would change duplicates).
	found := false
	for _, b := range qgm.Boxes(g.Root) {
		if b.Kind == qgm.BoxSelect && b.Distinct {
			found = true
		}
	}
	if !found {
		t.Fatal("DISTINCT child was merged away")
	}
}

func TestMergePreservesSemantics(t *testing.T) {
	// Aggregate above a derived table: the wrapper merges, the group box
	// stays, references survive.
	g := bind(t, `
		select n from
		  (select count(*) from emp group by building) as t(n)
		where n > 1`)
	cleanup(t, g)
	hasGroup := false
	for _, b := range qgm.Boxes(g.Root) {
		if b.Kind == qgm.BoxGroup {
			hasGroup = true
		}
	}
	if !hasGroup {
		t.Fatal("group box disappeared")
	}
}

func TestMergeCorrelatedChildBecomesJoin(t *testing.T) {
	// A CI-shaped child: the correlated predicate moves into the parent
	// when the child merges (it becomes an ordinary predicate there).
	g := bind(t, `
		select d.name, x.n from dept d,
		  (select num_emps from dept d2 where d2.building = d.building) as x(n)`)
	cleanup(t, g)
	if len(g.Root.Quants) != 2 {
		t.Fatalf("quants = %d", len(g.Root.Quants))
	}
	for _, q := range g.Root.Quants {
		if q.Input.Kind != qgm.BoxBase {
			t.Fatalf("child %v not merged", q.Input.Kind)
		}
	}
	if len(g.Root.Preds) != 1 {
		t.Fatalf("correlated predicate not hoisted: %d preds", len(g.Root.Preds))
	}
}

func TestPruneDuplicatePreds(t *testing.T) {
	g := bind(t, "select name from dept where budget < 10 and budget < 10")
	cleanup(t, g)
	if len(g.Root.Preds) != 1 {
		t.Fatalf("duplicate predicate survived: %d", len(g.Root.Preds))
	}
}

func TestCleanupIsIdempotent(t *testing.T) {
	g := bind(t, tpcd.ExampleQuery)
	cleanup(t, g)
	boxes := countBoxes(g)
	cleanup(t, g)
	if countBoxes(g) != boxes {
		t.Fatal("second cleanup changed the graph")
	}
}

func TestSharedChildNotMerged(t *testing.T) {
	// Build a graph with a shared box manually: two quantifiers over the
	// same derived select.
	g := bind(t, "select name from emp where building = 'B1'")
	inner := g.Root
	outer := g.NewBox(qgm.BoxSelect, "outer")
	q1 := g.AddQuant(outer, qgm.QForEach, inner)
	q2 := g.AddQuant(outer, qgm.QForEach, inner)
	outer.Cols = []qgm.OutCol{
		{Name: "a", Expr: qgm.Ref(q1, 0)},
		{Name: "b", Expr: qgm.Ref(q2, 0)},
	}
	g.Root = outer
	if err := qgm.Validate(g); err != nil {
		t.Fatal(err)
	}
	cleanup(t, g)
	// The shared box must not merge into one of its two consumers.
	for _, q := range g.Root.Quants {
		if q.Input != inner {
			t.Fatal("shared common subexpression was merged")
		}
	}
}
