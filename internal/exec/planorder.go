package exec

import (
	"math"

	"decorr/internal/qgm"
)

// JoinOrder computes the static binding order of all quantifiers of a
// select box. ForEach quantifiers are ordered greedily by estimated growth
// (selective scans first, connected joins before cross products); scalar
// and existential quantifiers are then placed at the position of minimum
// estimated intermediate cardinality among positions where their
// dependencies are satisfied.
//
// This placement rule reproduces the optimizer behavior the paper reports:
// Query 1's subquery runs after the outer joins (they shrink the
// intermediate result below the number of qualifying parts), while Query
// 2's subquery runs right after the Parts scan, before the join with
// Lineitem inflates the tuple count (§5.3). Magic decorrelation reuses this
// same order to split off the supplementary table (§7).
func (ex *Exec) JoinOrder(b *qgm.Box) []*qgm.Quantifier {
	own := map[*qgm.Quantifier]bool{}
	for _, q := range b.Quants {
		own[q] = true
	}
	// Predicates with bookkeeping local to the simulation.
	preds := make([]*selPred, 0, len(b.Preds))
	for _, p := range b.Preds {
		pi := &selPred{expr: p, deps: map[*qgm.Quantifier]bool{}}
		for q := range qgm.QuantSet(p) {
			if !own[q] {
				continue
			}
			if q.Kind.IsSubquery() {
				pi.sub = q
			} else {
				pi.deps[q] = true
			}
		}
		preds = append(preds, pi)
	}
	// Lateral dependencies of row-contributing quantifiers, and full
	// dependencies of late quantifiers.
	deps := map[*qgm.Quantifier]map[*qgm.Quantifier]bool{}
	for _, q := range b.Quants {
		d := map[*qgm.Quantifier]bool{}
		for _, r := range qgm.FreeRefs(q.Input) {
			if own[r.Q] && !r.Q.Kind.IsSubquery() {
				d[r.Q] = true
			}
		}
		if q.Kind.IsSubquery() {
			for _, pi := range preds {
				if pi.sub == q {
					for x := range pi.deps {
						d[x] = true
					}
				}
			}
		}
		deps[q] = d
	}

	var fquants, late []*qgm.Quantifier
	for _, q := range b.Quants {
		if q.Kind == qgm.QForEach || q.Kind == qgm.QScalar {
			// Correlated scalar subqueries are "late" (they do not grow
			// the intermediate result); lateral ForEach quantifiers join
			// rows and participate in the greedy order with a dependency
			// constraint.
			if q.Kind == qgm.QScalar {
				late = append(late, q)
			} else {
				fquants = append(fquants, q)
			}
			continue
		}
		late = append(late, q)
	}

	// Greedy order over ForEach quantifiers with dependency constraints,
	// recording the estimated cardinality after each step.
	bound := map[*qgm.Quantifier]bool{}
	var order []*qgm.Quantifier
	card := []float64{1}
	cur := 1.0
	remaining := append([]*qgm.Quantifier(nil), fquants...)
	for len(remaining) > 0 {
		best, bestScore := -1, math.Inf(1)
		for i, q := range remaining {
			ok := true
			for d := range deps[q] {
				if !bound[d] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			score := ex.estQuantGrowth(q, bound, preds)
			if score < bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			// Dependency cycle among lateral quantifiers; fall back to
			// declared order to avoid losing quantifiers entirely.
			best = 0
		}
		q := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		order = append(order, q)
		bound[q] = true
		for _, pi := range preds {
			if pi.sub == nil && !pi.applied && depsSubset(pi.deps, bound, q) {
				pi.applied = true
			}
		}
		cur *= bestScoreOr(bestScore, 1)
		cur = math.Max(cur, 1)
		card = append(card, cur)
	}

	// Place each late quantifier at the cheapest legal position.
	type insertion struct {
		q   *qgm.Quantifier
		pos int
		seq int // declared order for stable ties
	}
	var ins []insertion
	for seq, q := range late {
		earliest := 0
		for d := range deps[q] {
			for i, oq := range order {
				if oq == d && i+1 > earliest {
					earliest = i + 1
				}
			}
		}
		bestPos, bestCard := earliest, math.Inf(1)
		for p := earliest; p < len(card); p++ {
			if card[p] < bestCard {
				bestPos, bestCard = p, card[p]
			}
		}
		ins = append(ins, insertion{q: q, pos: bestPos, seq: seq})
	}
	// Build the final interleaving: after binding order[:p], insert all
	// late quantifiers with pos == p (declared order).
	var out []*qgm.Quantifier
	for p := 0; p <= len(order); p++ {
		for _, in := range ins {
			if in.pos == p {
				out = append(out, in.q)
			}
		}
		if p < len(order) {
			out = append(out, order[p])
		}
	}
	return out
}

func bestScoreOr(v, def float64) float64 {
	if math.IsInf(v, 1) || math.IsNaN(v) {
		return def
	}
	return v
}
