// Streaming execution. RunStream evaluates a graph through the same
// operator pipeline as Run but hands the result back batch-at-a-time
// through a RowIterator instead of one materialized slice, so a server can
// put a million-row answer on the wire in constant memory. Three modes,
// chosen at start:
//
//   - scan streaming: the root is a single-table SPJ box (one ForEach
//     quantifier over a base table, only local/constant predicates, no
//     usable index). Filtering and projection run per batch directly over
//     the stored rows, so nothing proportional to the result is ever
//     materialized — the only resident data is the table itself.
//   - tuple streaming: any other root select box. Phase 1 (join ordering,
//     quantifier binding, predicate application — selectTuples) runs
//     eagerly as in Run; the final projection (and DISTINCT dedup) then
//     streams per batch, eliminating the projected-output buffer.
//   - materialized: roots that need a global view (GROUP BY, set
//     operations, ORDER BY, LIMIT) or a serialized run (tracer, profiler)
//     fall back to the exact Run pipeline and serve the slice in batches.
//
// Batches are a fixed multiple of the morsel size and are claimed in
// order, so morsel boundaries — and with them the scheduler's min-index
// error semantics, governance checkpoints, and output row order — match
// the materialized path. Rows, Stats totals, and error classification are
// identical between Run and RunStream for every query; the one documented
// divergence is which of several co-occurring failures surfaces first
// (e.g. a projection error in one batch versus a budget trip charged by a
// later batch), since streaming observes them in batch order. Both modes
// remain individually deterministic at every worker count.
package exec

import (
	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/trace"
)

// streamBatchRows is the iterator's batch granularity. It is a multiple of
// rowMorsel so streamed batches decompose into exactly the morsel
// boundaries the materialized path uses.
const streamBatchRows = 4 * rowMorsel

type streamMode int

const (
	modeMaterialized streamMode = iota
	modeTuples
	modeScan
)

// RowIterator yields one query's result rows batch-at-a-time. Obtain one
// from RunStream, call Next until it returns (nil, nil) or an error, and
// Close it (Close is idempotent and safe after exhaustion). A RowIterator
// is not safe for concurrent use, and its Exec must not start another Run
// or RunStream until the iterator is closed. Batches are read-only views:
// they may alias stored rows, so callers must not mutate them.
type RowIterator struct {
	ex *Exec
	g  *qgm.Graph

	started  bool
	finished bool
	err      error
	before   Stats

	mode streamMode

	// tuple mode: phase-1 bindings awaiting projection. When the root
	// select is vectorized, cbatch replaces tuples: the bound column batch
	// streams through colProjectRows one selection-vector range at a time.
	box    *qgm.Box
	tuples []*Env
	tpos   int
	cbatch *colBatch
	cpos   int

	// scan mode: stored rows awaiting filter+projection.
	q      *qgm.Quantifier
	locals []qgm.Expr
	scan   []storage.Row
	spos   int

	// seen carries DISTINCT dedup state across batches (first occurrence
	// wins, as in dedupeRows).
	seen map[string]bool

	// emitted counts post-dedup output rows for the incremental
	// MaxOutputRows check.
	emitted int64

	// materialized mode: the fully evaluated result, served in slices.
	rows []storage.Row
}

// RunStream begins a streaming evaluation of g. The governor (deadline
// anchor included) arms here; evaluation itself starts lazily at the first
// Next, so a pre-canceled context surfaces from Next, not RunStream.
func (ex *Exec) RunStream(g *qgm.Graph) *RowIterator {
	ex.gov = newGovernor(ex.opts.Ctx, ex.opts.Limits)
	return &RowIterator{ex: ex, g: g}
}

// Run evaluates the graph and returns the result rows (after any top-level
// ORDER BY). When Options.Ctx or Options.Limits are armed, Run enforces
// them: a pre-canceled context returns ErrCanceled before any row is
// produced, and mid-run trips unwind through the scheduler's deterministic
// error machinery as the typed sentinels of this package. Run is a thin
// collector over RunStream.
func (ex *Exec) Run(g *qgm.Graph) ([]storage.Row, error) {
	return ex.RunStream(g).collect()
}

// Next returns the next non-empty batch of result rows, or (nil, nil) when
// the stream is exhausted, or the run's terminal error. After an error (or
// exhaustion) every further Next repeats the same outcome.
func (it *RowIterator) Next() ([]storage.Row, error) {
	if it.finished {
		return nil, it.err
	}
	if !it.started {
		if err := it.start(); err != nil {
			it.finish(err)
			return nil, err
		}
	} else if err := it.ex.gov.checkpoint(); err != nil {
		// Every batch boundary is a cancellation point, whatever the mode.
		// Scan and tuple batches would trip at their next morsel claim, but
		// materialized (and already-evaluated) results are served without
		// claiming morsels, so without this check a kill or deadline landing
		// mid-serve would be silently ignored and the stream would drain to
		// a clean finish.
		it.finish(err)
		return nil, err
	}
	switch it.mode {
	case modeTuples:
		for it.tupleRemaining() {
			batch, err := it.tupleBatch()
			if err != nil {
				it.finish(err)
				return nil, err
			}
			if len(batch) > 0 {
				return batch, nil
			}
		}
	case modeScan:
		for it.spos < len(it.scan) {
			batch, err := it.scanBatch()
			if err != nil {
				it.finish(err)
				return nil, err
			}
			if len(batch) > 0 {
				return batch, nil
			}
		}
	default:
		if len(it.rows) > 0 {
			n := min(streamBatchRows, len(it.rows))
			batch := it.rows[:n:n]
			it.rows = it.rows[n:]
			return batch, nil
		}
	}
	it.finish(nil)
	return nil, nil
}

// Close releases the iterator's state. Closing before exhaustion abandons
// the stream: the work already done is published to the metrics registry,
// and no error is reported. Close never fails; the error return exists for
// io.Closer-shaped call sites.
func (it *RowIterator) Close() error {
	if !it.finished {
		it.finish(nil)
	}
	return nil
}

// Err returns the stream's terminal error, if any. It is meaningful once
// Next has returned (nil, nil) or an error, or after Close.
func (it *RowIterator) Err() error { return it.err }

// collect drains the iterator into one slice — the Run semantics.
func (it *RowIterator) collect() ([]storage.Row, error) {
	if !it.started {
		if err := it.start(); err != nil {
			it.finish(err)
			return nil, err
		}
	}
	if it.mode == modeMaterialized {
		rows := it.rows
		it.rows = nil
		it.finish(nil)
		return rows, nil
	}
	var out []storage.Row
	for {
		batch, err := it.Next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return out, nil
		}
		out = append(out, batch...)
	}
}

// start performs the pre-row work: analysis, mode selection, and — in
// tuple and materialized modes — the eager evaluation phases.
func (it *RowIterator) start() error {
	it.started = true
	ex := it.ex
	if err := ex.gov.checkpoint(); err != nil {
		return err
	}
	it.before = ex.Stats
	ex.analyze(it.g.Root)
	root := it.g.Root
	// Streaming requires a root whose output needs no global pass: a plain
	// select with no ORDER BY or LIMIT, and no tracer or profiler (both
	// observe whole box evaluations).
	if root.Kind == qgm.BoxSelect && len(it.g.OrderBy) == 0 && it.g.Limit < 0 &&
		ex.opts.Tracer == nil && ex.profile == nil {
		if root.Distinct {
			it.seen = make(map[string]bool)
		}
		it.box = root
		bump(&ex.Stats.BoxEvals, 1) // the root evaluation evalBox would count
		if q, consts, locals, ok := ex.scanStreamPlan(root); ok {
			it.mode = modeScan
			it.q = q
			it.locals = locals
			return it.startScan(consts)
		}
		it.mode = modeTuples
		if ex.colEnabled() && ex.colSel[root] {
			batch, err := ex.colSelectBatch(root, nil)
			if err != nil {
				return err
			}
			if batch == nil {
				batch = &colBatch{} // empty result; an armed cbatch marks columnar mode
			}
			it.cbatch = batch
			return nil
		}
		tuples, err := ex.selectTuples(root, nil)
		if err != nil {
			return err
		}
		it.tuples = tuples
		return nil
	}
	// Materialized fallback: exactly the Run pipeline.
	rows, err := ex.evalBox(root, nil)
	if err != nil {
		return err
	}
	if err := ex.gov.checkOutput(len(rows)); err != nil {
		return err
	}
	if len(it.g.OrderBy) > 0 {
		sortRows(rows, it.g.OrderBy)
	}
	if it.g.Limit >= 0 && int64(len(rows)) > it.g.Limit {
		rows = rows[:it.g.Limit]
	}
	it.rows = rows
	return nil
}

// finish latches the stream's terminal state: governance classification on
// error, metrics publication on clean (or abandoned) completion.
func (it *RowIterator) finish(err error) {
	if it.finished {
		return
	}
	it.finished = true
	it.err = err
	it.tuples, it.scan, it.rows = nil, nil, nil
	it.cbatch = nil
	it.seen = nil
	if err != nil {
		if counter, ok := classifyGovernance(err); ok {
			trace.Metrics.Counter(counter).Inc()
		}
		return
	}
	if it.started {
		publishStats(statsDelta(it.before, it.ex.Stats))
	}
}

// scanStreamPlan decides whether root select b qualifies for scan
// streaming and splits its predicates into constant conjuncts (no
// quantifier references — evaluated once, before the scan) and local
// conjuncts (referencing only the single ForEach quantifier). Any shape
// the materialized path would execute differently — multiple quantifiers,
// subqueries, an index-eligible equality — declines, so the tuple or
// materialized mode reproduces its exact stats.
func (ex *Exec) scanStreamPlan(b *qgm.Box) (q *qgm.Quantifier, consts, locals []qgm.Expr, ok bool) {
	if len(b.Quants) != 1 {
		return nil, nil, nil, false
	}
	q = b.Quants[0]
	if q.Kind != qgm.QForEach || q.Input.Kind != qgm.BoxBase {
		return nil, nil, nil, false
	}
	tbl := ex.db.Table(q.Input.Table.Name)
	if tbl == nil {
		return nil, nil, nil, false
	}
	for _, p := range b.Preds {
		qs := qgm.QuantSet(p)
		refsQ := false
		for qq := range qs {
			if qq != q {
				return nil, nil, nil, false
			}
			refsQ = true
		}
		if !refsQ {
			consts = append(consts, p)
			continue
		}
		// An index-eligible equality would take the IndexLookups path in
		// bindForEach; decline so stats stay identical.
		if bin, isBin := p.(*qgm.Bin); isBin && bin.Op == qgm.OpEq {
			for _, try := range [][2]qgm.Expr{{bin.L, bin.R}, {bin.R, bin.L}} {
				if ref, isRef := try[0].(*qgm.ColRef); isRef && ref.Q == q &&
					!qgm.RefsQuant(try[1], q) && tbl.HasIndex(ref.Col) {
					return nil, nil, nil, false
				}
			}
		}
		locals = append(locals, p)
	}
	return q, consts, locals, true
}

// startScan applies the constant conjuncts (over the root's single empty
// binding, exactly as applyReady does) and scans the base table. A false
// constant short-circuits to an empty stream without touching storage.
func (it *RowIterator) startScan(consts []qgm.Expr) error {
	ex := it.ex
	tuples := []*Env{nil}
	for _, p := range consts {
		kept, err := parallelFilter(ex, tuples, rowMorsel, func(t *Env) (bool, error) {
			tr, err := ex.EvalPred(p, t)
			if err != nil {
				return false, err
			}
			return tr == sqltypes.True, nil
		})
		if err != nil {
			return err
		}
		if len(kept) == 0 {
			return nil // empty scan, stream exhausts immediately
		}
	}
	tbl := ex.db.Table(it.q.Input.Table.Name)
	rows, err := tbl.Scan()
	if err != nil {
		return err
	}
	bump(&ex.Stats.RowsScanned, int64(len(rows)))
	if err := ex.govRows(len(rows)); err != nil {
		return err
	}
	it.scan = rows
	return nil
}

// scanBatch filters and projects the next batch of scanned rows. The fused
// per-morsel loop evaluates the local conjuncts in declared order and
// projects survivors immediately, so a batch's working set is one batch of
// output rows.
func (it *RowIterator) scanBatch() ([]storage.Row, error) {
	ex, b, q := it.ex, it.box, it.q
	lo := it.spos
	hi := min(lo+streamBatchRows, len(it.scan))
	it.spos = hi
	seg := it.scan[lo:hi]
	chunks, err := parallelChunks(ex, len(seg), rowMorsel, func(clo, chi int) ([]storage.Row, error) {
		var out []storage.Row
		for _, r := range seg[clo:chi] {
			renv := Bind(nil, q, r)
			keep := true
			for _, p := range it.locals {
				tr, err := ex.EvalPred(p, renv)
				if err != nil {
					return nil, err
				}
				if tr != sqltypes.True {
					keep = false
					break
				}
			}
			if !keep {
				continue
			}
			row := make(storage.Row, len(b.Cols))
			for i, c := range b.Cols {
				v, err := ex.EvalExpr(c.Expr, renv)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			out = append(out, row)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	batch := concat(chunks)
	// The surviving bindings are what the materialized path counts as the
	// (single-quantifier) join result.
	bump(&ex.Stats.RowsJoined, int64(len(batch)))
	if err := ex.govRows(len(batch)); err != nil {
		return nil, err
	}
	return it.emit(batch)
}

// tupleRemaining reports whether phase-1 output (row tuples or the
// columnar batch's selection vector) is still awaiting projection.
func (it *RowIterator) tupleRemaining() bool {
	if it.cbatch != nil {
		return it.cpos < len(it.cbatch.sel)
	}
	return it.tpos < len(it.tuples)
}

// tupleBatch projects the next batch of phase-1 bindings.
func (it *RowIterator) tupleBatch() ([]storage.Row, error) {
	if it.cbatch != nil {
		lo := it.cpos
		hi := min(lo+streamBatchRows, len(it.cbatch.sel))
		it.cpos = hi
		batch, err := it.ex.colProjectRows(it.box, it.cbatch, it.cbatch.sel[lo:hi], nil)
		if err != nil {
			return nil, err
		}
		return it.emit(batch)
	}
	lo := it.tpos
	hi := min(lo+streamBatchRows, len(it.tuples))
	it.tpos = hi
	batch, err := it.ex.projectTuples(it.box, it.tuples[lo:hi])
	if err != nil {
		return nil, err
	}
	return it.emit(batch)
}

// emit applies cross-batch DISTINCT dedup and the incremental output-row
// budget, then releases the batch to the caller.
func (it *RowIterator) emit(batch []storage.Row) ([]storage.Row, error) {
	if it.seen != nil {
		kept := batch[:0]
		for _, r := range batch {
			k := sqltypes.Key(r)
			if !it.seen[k] {
				it.seen[k] = true
				kept = append(kept, r)
			}
		}
		batch = kept
	}
	it.emitted += int64(len(batch))
	if err := it.ex.gov.checkOutputTotal(it.emitted); err != nil {
		return nil, err
	}
	return batch, nil
}
