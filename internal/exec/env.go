// Package exec evaluates QGM graphs against stored tables. It is a
// volcano-flavored interpreter with a small greedy join planner: hash joins
// on equality predicates, index lookups on base tables, and per-tuple
// re-evaluation of correlated subqueries. Running an *un-rewritten*
// correlated graph therefore is exactly the paper's "nested iteration"
// strategy, while running a decorrelated graph is set-oriented — the cost
// difference between strategies emerges from the same interpreter.
package exec

import (
	"fmt"

	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// Env is a chain of quantifier bindings supplying values for (possibly
// correlated) column references during evaluation.
type Env struct {
	parent *Env
	q      *qgm.Quantifier
	row    storage.Row
}

// Bind extends env with a binding of q to row.
func Bind(parent *Env, q *qgm.Quantifier, row storage.Row) *Env {
	return &Env{parent: parent, q: q, row: row}
}

// Get returns the row bound to q, walking outward.
func (e *Env) Get(q *qgm.Quantifier) (storage.Row, bool) {
	for x := e; x != nil; x = x.parent {
		if x.q == q {
			return x.row, true
		}
	}
	return nil, false
}

// EvalExpr computes a scalar expression under env.
func (ex *Exec) EvalExpr(e qgm.Expr, env *Env) (sqltypes.Value, error) {
	switch x := e.(type) {
	case *qgm.ColRef:
		row, ok := env.Get(x.Q)
		if !ok {
			return sqltypes.Null, fmt.Errorf("exec: unbound quantifier %s", x.Q.Name())
		}
		if x.Col >= len(row) {
			return sqltypes.Null, fmt.Errorf("exec: column %d out of range for %s (row width %d)",
				x.Col, x.Q.Name(), len(row))
		}
		return row[x.Col], nil
	case *qgm.Const:
		return x.V, nil
	case *qgm.Param:
		if x.Idx < 0 || x.Idx >= len(ex.opts.Params) {
			return sqltypes.Null, fmt.Errorf("exec: parameter ?%d not bound (%d values supplied)",
				x.Idx+1, len(ex.opts.Params))
		}
		return ex.opts.Params[x.Idx], nil
	case *qgm.Bin:
		switch x.Op {
		case qgm.OpAdd, qgm.OpSub, qgm.OpMul, qgm.OpDiv:
			l, err := ex.EvalExpr(x.L, env)
			if err != nil {
				return sqltypes.Null, err
			}
			r, err := ex.EvalExpr(x.R, env)
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.Arith(arithOf(x.Op), l, r)
		default:
			t, err := ex.EvalPred(e, env)
			if err != nil {
				return sqltypes.Null, err
			}
			return triValue(t), nil
		}
	case *qgm.Not, *qgm.IsNull, *qgm.Like:
		t, err := ex.EvalPred(e, env)
		if err != nil {
			return sqltypes.Null, err
		}
		return triValue(t), nil
	case *qgm.Func:
		return ex.evalFunc(x, env)
	case *qgm.Case:
		for _, w := range x.Whens {
			t, err := ex.EvalPred(w.Cond, env)
			if err != nil {
				return sqltypes.Null, err
			}
			if t == sqltypes.True {
				return ex.EvalExpr(w.Result, env)
			}
		}
		if x.Else != nil {
			return ex.EvalExpr(x.Else, env)
		}
		return sqltypes.Null, nil
	case *qgm.Agg:
		return sqltypes.Null, fmt.Errorf("exec: aggregate evaluated outside a group box")
	}
	return sqltypes.Null, fmt.Errorf("exec: unknown expression %T", e)
}

func triValue(t sqltypes.Tri) sqltypes.Value {
	if t == sqltypes.Unknown {
		return sqltypes.Null
	}
	return sqltypes.NewBool(t == sqltypes.True)
}

func arithOf(op qgm.Op) sqltypes.ArithOp {
	switch op {
	case qgm.OpAdd:
		return sqltypes.OpAdd
	case qgm.OpSub:
		return sqltypes.OpSub
	case qgm.OpMul:
		return sqltypes.OpMul
	}
	return sqltypes.OpDiv
}

func (ex *Exec) evalFunc(f *qgm.Func, env *Env) (sqltypes.Value, error) {
	args := make([]sqltypes.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := ex.EvalExpr(a, env)
		if err != nil {
			return sqltypes.Null, err
		}
		args[i] = v
	}
	switch f.Name {
	case "coalesce":
		return sqltypes.Coalesce(args...), nil
	case "abs":
		if len(args) != 1 {
			return sqltypes.Null, fmt.Errorf("exec: abs takes one argument")
		}
		v := args[0]
		switch v.K {
		case sqltypes.KindNull:
			return sqltypes.Null, nil
		case sqltypes.KindInt:
			if v.I < 0 {
				return sqltypes.NewInt(-v.I), nil
			}
			return v, nil
		case sqltypes.KindFloat:
			if v.F < 0 {
				return sqltypes.NewFloat(-v.F), nil
			}
			return v, nil
		}
		return sqltypes.Null, fmt.Errorf("exec: abs of %s", v.K)
	}
	return sqltypes.Null, fmt.Errorf("exec: unknown function %q", f.Name)
}

// EvalPred computes a predicate in SQL three-valued logic under env.
func (ex *Exec) EvalPred(e qgm.Expr, env *Env) (sqltypes.Tri, error) {
	switch x := e.(type) {
	case *qgm.Bin:
		switch x.Op {
		case qgm.OpAnd:
			l, err := ex.EvalPred(x.L, env)
			if err != nil {
				return sqltypes.Unknown, err
			}
			if l == sqltypes.False {
				return sqltypes.False, nil
			}
			r, err := ex.EvalPred(x.R, env)
			if err != nil {
				return sqltypes.Unknown, err
			}
			return l.And(r), nil
		case qgm.OpOr:
			l, err := ex.EvalPred(x.L, env)
			if err != nil {
				return sqltypes.Unknown, err
			}
			if l == sqltypes.True {
				return sqltypes.True, nil
			}
			r, err := ex.EvalPred(x.R, env)
			if err != nil {
				return sqltypes.Unknown, err
			}
			return l.Or(r), nil
		}
		if x.Op.IsComparison() {
			l, err := ex.EvalExpr(x.L, env)
			if err != nil {
				return sqltypes.Unknown, err
			}
			r, err := ex.EvalExpr(x.R, env)
			if err != nil {
				return sqltypes.Unknown, err
			}
			return comparePred(x.Op, l, r), nil
		}
		// Arithmetic used in boolean position: nonsense, reject.
		return sqltypes.Unknown, fmt.Errorf("exec: %s is not a predicate", x.Op)
	case *qgm.Not:
		t, err := ex.EvalPred(x.E, env)
		if err != nil {
			return sqltypes.Unknown, err
		}
		return t.Not(), nil
	case *qgm.IsNull:
		v, err := ex.EvalExpr(x.E, env)
		if err != nil {
			return sqltypes.Unknown, err
		}
		res := v.IsNull()
		if x.Negate {
			res = !res
		}
		return sqltypes.TriOf(res), nil
	case *qgm.Like:
		v, err := ex.EvalExpr(x.E, env)
		if err != nil {
			return sqltypes.Unknown, err
		}
		p, err := ex.EvalExpr(x.Pattern, env)
		if err != nil {
			return sqltypes.Unknown, err
		}
		t := sqltypes.Like(v, p)
		if x.Negate {
			t = t.Not()
		}
		return t, nil
	case *qgm.Const:
		if x.V.IsNull() {
			return sqltypes.Unknown, nil
		}
		if x.V.K == sqltypes.KindBool {
			return sqltypes.TriOf(x.V.B), nil
		}
		// Numeric truthiness is not SQL; reject to catch binder bugs.
		return sqltypes.Unknown, fmt.Errorf("exec: non-boolean constant %s used as predicate", x.V)
	case *qgm.ColRef, *qgm.Case, *qgm.Func, *qgm.Param:
		v, err := ex.EvalExpr(x, env)
		if err != nil {
			return sqltypes.Unknown, err
		}
		if v.IsNull() {
			return sqltypes.Unknown, nil
		}
		if v.K == sqltypes.KindBool {
			return sqltypes.TriOf(v.B), nil
		}
		return sqltypes.Unknown, fmt.Errorf("exec: non-boolean value used as predicate")
	}
	return sqltypes.Unknown, fmt.Errorf("exec: unknown predicate %T", e)
}

func comparePred(op qgm.Op, l, r sqltypes.Value) sqltypes.Tri {
	c, ok := sqltypes.Compare(l, r)
	if !ok {
		return sqltypes.Unknown
	}
	switch op {
	case qgm.OpEq:
		return sqltypes.TriOf(c == 0)
	case qgm.OpNe:
		return sqltypes.TriOf(c != 0)
	case qgm.OpLt:
		return sqltypes.TriOf(c < 0)
	case qgm.OpLe:
		return sqltypes.TriOf(c <= 0)
	case qgm.OpGt:
		return sqltypes.TriOf(c > 0)
	case qgm.OpGe:
		return sqltypes.TriOf(c >= 0)
	}
	return sqltypes.Unknown
}
