package exec_test

import (
	"testing"

	"decorr/internal/tpcd"
)

func TestIntersect(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select building from emp
		intersect
		select building from dept
		order by building`)
	// emp buildings: B1,B2,B3; dept buildings: B1,B2,B9.
	expectRows(t, got, []string{"B1", "B2"})
}

func TestIntersectAllMultiset(t *testing.T) {
	db := tpcd.EmpDept()
	// emp has B1 x2, B2 x3; dept has B1 x2, B2 x2 -> min counts 2 and 2.
	got := run(t, db, `
		select building from emp
		intersect all
		select building from dept
		order by building`)
	expectRows(t, got, []string{"B1", "B1", "B2", "B2"})
}

func TestExcept(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select building from dept
		except
		select building from emp`)
	expectRows(t, got, []string{"B9"})
}

func TestExceptAllMultiset(t *testing.T) {
	db := tpcd.EmpDept()
	// emp B2 x3 minus dept B2 x2 -> one B2 remains; B1: 2-2 -> none;
	// B3: 1-0 -> one.
	got := run(t, db, `
		select building from emp
		except all
		select building from dept
		order by building`)
	expectRows(t, got, []string{"B2", "B3"})
}

func TestIntersectBindsTighterThanUnion(t *testing.T) {
	db := tpcd.EmpDept()
	// A UNION (B INTERSECT C): B∩C = {B1,B2}; A = dept buildings.
	got := run(t, db, `
		select building from dept
		union
		select building from emp
		intersect
		select building from dept
		order by building`)
	expectRows(t, got, []string{"B1", "B2", "B9"})
}

func TestSetOpsNested(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select x from (
			(select building from emp except select building from dept)
			union all
			(select building from dept except select building from emp)
		) as d(x) order by x`)
	expectRows(t, got, []string{"B3", "B9"})
}

func TestCorrelatedIntersectSubquery(t *testing.T) {
	db := tpcd.EmpDept()
	// Buildings that have both an employee and a low-budget department,
	// correlated per department row.
	got := run(t, db, `
		select d.name from dept d
		where exists (
			select e.building from emp e where e.building = d.building
			intersect
			select d2.building from dept d2 where d2.budget < 10000 and d2.building = d.building)
		order by name`)
	expectRows(t, got, []string{"jewels", "shoes", "tools", "toys"})
}

func TestSetOpOrderByAndLimitApplyToWhole(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select building from emp
		union
		select building from dept
		order by building desc
		limit 2`)
	expectRows(t, got, []string{"B9", "B3"})
}
