package exec

import (
	"fmt"
	"sort"
	"time"

	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/trace"
)

// Options select executor policies that the paper treats as system knobs.
type Options struct {
	// MaterializeCSE caches the result of shared, uncorrelated boxes
	// instead of recomputing them per reference. The Starburst prototype
	// in the paper "always recomputes common sub-expressions" (§5.1);
	// the default therefore is false, and the ablation benchmark flips it.
	MaterializeCSE bool
	// MemoizeCorrelated caches correlated subquery results per binding —
	// the NI-with-memo variant used as an extra baseline.
	MemoizeCorrelated bool
	// Tracer, when non-nil, receives one span per box evaluation with the
	// box identity, produced rows, and wall time. The nil case is a single
	// pointer check on the hot path (no timing, no allocations).
	Tracer *trace.Tracer
}

// Exec evaluates QGM graphs against a database. An Exec is single-use per
// Run for statistics purposes but may be reused; counters accumulate.
type Exec struct {
	db    *storage.DB
	opts  Options
	Stats Stats

	freeRefs  map[*qgm.Box][]qgm.RefKey
	refCount  map[*qgm.Box]int
	evalCount map[*qgm.Box]int
	cse       map[*qgm.Box][]storage.Row
	memo      map[*qgm.Box]map[string][]storage.Row
	bindings  map[*qgm.Box]map[string]bool
	est       map[*qgm.Box]float64
	costMemo  map[*qgm.Box]float64
	profile   map[*qgm.Box]*BoxProfile
}

// New creates an executor over db.
func New(db *storage.DB, opts Options) *Exec {
	return &Exec{
		db:        db,
		opts:      opts,
		freeRefs:  map[*qgm.Box][]qgm.RefKey{},
		refCount:  map[*qgm.Box]int{},
		evalCount: map[*qgm.Box]int{},
		cse:       map[*qgm.Box][]storage.Row{},
		memo:      map[*qgm.Box]map[string][]storage.Row{},
		bindings:  map[*qgm.Box]map[string]bool{},
		est:       map[*qgm.Box]float64{},
	}
}

// Run evaluates the graph and returns the result rows (after any top-level
// ORDER BY).
func (ex *Exec) Run(g *qgm.Graph) ([]storage.Row, error) {
	before := ex.Stats
	ex.analyze(g.Root)
	rows, err := ex.evalBox(g.Root, nil)
	if err != nil {
		return nil, err
	}
	if len(g.OrderBy) > 0 {
		sortRows(rows, g.OrderBy)
	}
	if g.Limit >= 0 && int64(len(rows)) > g.Limit {
		rows = rows[:g.Limit]
	}
	publishStats(statsDelta(before, ex.Stats))
	return rows, nil
}

func statsDelta(before, after Stats) Stats {
	return Stats{
		SubqueryInvocations: after.SubqueryInvocations - before.SubqueryInvocations,
		DistinctInvocations: after.DistinctInvocations - before.DistinctInvocations,
		MemoHits:            after.MemoHits - before.MemoHits,
		BoxEvals:            after.BoxEvals - before.BoxEvals,
		RowsScanned:         after.RowsScanned - before.RowsScanned,
		IndexLookups:        after.IndexLookups - before.IndexLookups,
		RowsJoined:          after.RowsJoined - before.RowsJoined,
		RowsGrouped:         after.RowsGrouped - before.RowsGrouped,
		HashBuilds:          after.HashBuilds - before.HashBuilds,
		CSERecomputes:       after.CSERecomputes - before.CSERecomputes,
	}
}

// publishStats folds one Run's counters into the process-wide registry —
// once per Run, so the per-row paths stay registry-free.
func publishStats(d Stats) {
	trace.Metrics.Counter("exec.runs").Inc()
	trace.Metrics.Counter("exec.subquery_invocations").Add(d.SubqueryInvocations)
	trace.Metrics.Counter("exec.box_evals").Add(d.BoxEvals)
	trace.Metrics.Counter("exec.rows_scanned").Add(d.RowsScanned)
	trace.Metrics.Counter("exec.index_lookups").Add(d.IndexLookups)
	trace.Metrics.Counter("exec.rows_joined").Add(d.RowsJoined)
	trace.Metrics.Counter("exec.rows_grouped").Add(d.RowsGrouped)
	trace.Metrics.Counter("exec.hash_builds").Add(d.HashBuilds)
	trace.Metrics.Counter("exec.cse_recomputes").Add(d.CSERecomputes)
	trace.Metrics.Counter("exec.memo_hits").Add(d.MemoHits)
	trace.Metrics.Gauge("exec.last_work").Set(d.Work())
}

func sortRows(rows []storage.Row, keys []qgm.OrderKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			c := sqltypes.OrderCompare(rows[i][k.Col], rows[j][k.Col])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// analyze precomputes per-box free references and reference counts.
func (ex *Exec) analyze(root *qgm.Box) {
	for _, b := range qgm.Boxes(root) {
		if _, ok := ex.freeRefs[b]; !ok {
			ex.freeRefs[b] = dedupRefs(qgm.FreeRefs(b))
		}
	}
	ex.refCount = map[*qgm.Box]int{}
	for _, b := range qgm.Boxes(root) {
		for _, q := range b.Quants {
			ex.refCount[q.Input]++
		}
	}
}

func dedupRefs(refs []*qgm.ColRef) []qgm.RefKey {
	seen := map[qgm.RefKey]bool{}
	var out []qgm.RefKey
	for _, r := range refs {
		k := qgm.RefKey{Q: r.Q, Col: r.Col}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Q.ID != out[j].Q.ID {
			return out[i].Q.ID < out[j].Q.ID
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// isCorrelated reports whether box b has free references (i.e. needs outer
// bindings to evaluate).
func (ex *Exec) isCorrelated(b *qgm.Box) bool {
	fr, ok := ex.freeRefs[b]
	if !ok {
		fr = dedupRefs(qgm.FreeRefs(b))
		ex.freeRefs[b] = fr
	}
	return len(fr) > 0
}

// bindingKey evaluates b's free references under env and encodes them.
func (ex *Exec) bindingKey(b *qgm.Box, env *Env) (string, error) {
	fr := ex.freeRefs[b]
	vals := make([]sqltypes.Value, len(fr))
	for i, rk := range fr {
		v, err := ex.EvalExpr(&qgm.ColRef{Q: rk.Q, Col: rk.Col}, env)
		if err != nil {
			return "", err
		}
		vals[i] = v
	}
	return sqltypes.Key(vals), nil
}

// evalSubqueryInput evaluates the input box of a subquery-like quantifier
// for one outer tuple, counting it as a correlated invocation when the box
// is correlated, and applying the NI-memo knob.
func (ex *Exec) evalSubqueryInput(b *qgm.Box, env *Env) ([]storage.Row, error) {
	if !ex.isCorrelated(b) {
		return ex.evalBox(b, env)
	}
	key, err := ex.bindingKey(b, env)
	if err != nil {
		return nil, err
	}
	ex.Stats.SubqueryInvocations++
	seen := ex.bindings[b]
	if seen == nil {
		seen = map[string]bool{}
		ex.bindings[b] = seen
	}
	if !seen[key] {
		seen[key] = true
		ex.Stats.DistinctInvocations++
	}
	if ex.opts.MemoizeCorrelated {
		m := ex.memo[b]
		if m == nil {
			m = map[string][]storage.Row{}
			ex.memo[b] = m
		}
		if rows, ok := m[key]; ok {
			ex.Stats.MemoHits++
			return rows, nil
		}
		rows, err := ex.evalBox(b, env)
		if err != nil {
			return nil, err
		}
		m[key] = rows
		return rows, nil
	}
	return ex.evalBox(b, env)
}

// evalBox evaluates any box under env, applying CSE policy for shared
// uncorrelated boxes.
func (ex *Exec) evalBox(b *qgm.Box, env *Env) ([]storage.Row, error) {
	ex.Stats.BoxEvals++
	shared := ex.refCount[b] > 1
	uncorrelated := !ex.isCorrelated(b)
	if uncorrelated && shared {
		if rows, ok := ex.cse[b]; ok {
			if ex.opts.MaterializeCSE {
				return rows, nil
			}
			ex.Stats.CSERecomputes++
		}
	}
	// Timing is gated on a pointer check so that plain execution (no
	// profile, no tracer) pays nothing here.
	var sp *trace.Span
	var start time.Time
	if ex.opts.Tracer != nil {
		sp = ex.opts.Tracer.Begin(boxSpanName(b), "exec",
			trace.Int("box", int64(b.ID)), trace.Str("kind", b.Kind.String()))
	}
	if ex.profile != nil || sp != nil {
		start = time.Now()
	}
	rows, err := ex.dispatch(b, env)
	if err != nil {
		sp.End(trace.Str("error", err.Error()))
		return nil, err
	}
	if ex.profile != nil || sp != nil {
		elapsed := time.Since(start)
		ex.recordProfile(b, len(rows), elapsed)
		sp.End(trace.Int("rows", int64(len(rows))))
	}
	if uncorrelated && shared {
		if _, ok := ex.cse[b]; !ok {
			ex.cse[b] = rows
		}
	}
	return rows, nil
}

func (ex *Exec) dispatch(b *qgm.Box, env *Env) ([]storage.Row, error) {
	switch b.Kind {
	case qgm.BoxBase:
		t := ex.db.Table(b.Table.Name)
		if t == nil {
			return nil, fmt.Errorf("exec: table %q has no storage", b.Table.Name)
		}
		ex.Stats.RowsScanned += int64(len(t.Rows))
		return t.Rows, nil
	case qgm.BoxSelect:
		return ex.evalSelect(b, env)
	case qgm.BoxGroup:
		return ex.evalGroup(b, env)
	case qgm.BoxUnion:
		return ex.evalUnion(b, env)
	case qgm.BoxLeftJoin:
		return ex.evalLeftJoin(b, env)
	case qgm.BoxIntersect, qgm.BoxExcept:
		return ex.evalSetDiff(b, env)
	}
	return nil, fmt.Errorf("exec: unknown box kind %v", b.Kind)
}

// evalSetDiff evaluates INTERSECT/EXCEPT with SQL multiset semantics:
// INTERSECT ALL keeps min(countL, countR) copies, EXCEPT ALL keeps
// max(0, countL - countR); the DISTINCT variants keep at most one copy of
// each qualifying row.
func (ex *Exec) evalSetDiff(b *qgm.Box, env *Env) ([]storage.Row, error) {
	left, err := ex.evalBox(b.Quants[0].Input, env)
	if err != nil {
		return nil, err
	}
	right, err := ex.evalBox(b.Quants[1].Input, env)
	if err != nil {
		return nil, err
	}
	rCount := make(map[string]int, len(right))
	for _, r := range right {
		rCount[sqltypes.Key(r)]++
	}
	emitted := map[string]int{}
	var out []storage.Row
	for _, l := range left {
		k := sqltypes.Key(l)
		n := emitted[k]
		var keep bool
		if b.Kind == qgm.BoxIntersect {
			if b.Distinct {
				keep = n == 0 && rCount[k] > 0
			} else {
				keep = n < rCount[k]
			}
		} else { // BoxExcept
			if b.Distinct {
				keep = n == 0 && rCount[k] == 0
			} else {
				keep = n >= rCount[k]
			}
		}
		emitted[k] = n + 1
		if keep {
			out = append(out, l)
		}
	}
	return out, nil
}

func (ex *Exec) evalUnion(b *qgm.Box, env *Env) ([]storage.Row, error) {
	var out []storage.Row
	for _, q := range b.Quants {
		rows, err := ex.evalBox(q.Input, env)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	if b.Distinct {
		out = dedupeRows(out)
	}
	return out, nil
}

func dedupeRows(rows []storage.Row) []storage.Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := sqltypes.Key(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

func (ex *Exec) evalGroup(b *qgm.Box, env *Env) ([]storage.Row, error) {
	qg := b.Quants[0]
	input, err := ex.evalBox(qg.Input, env)
	if err != nil {
		return nil, err
	}
	// Collect the aggregate nodes appearing in the outputs.
	var aggs []*qgm.Agg
	aggIndex := map[*qgm.Agg]int{}
	for _, c := range b.Cols {
		qgm.Walk(c.Expr, func(e qgm.Expr) bool {
			if a, ok := e.(*qgm.Agg); ok {
				if _, dup := aggIndex[a]; !dup {
					aggIndex[a] = len(aggs)
					aggs = append(aggs, a)
				}
				return false
			}
			return true
		})
	}
	type groupState struct {
		rep  *Env // representative binding for group expressions
		accs []aggAcc
	}
	groups := map[string]*groupState{}
	var order []string
	for _, row := range input {
		renv := Bind(env, qg, row)
		keyVals := make([]sqltypes.Value, len(b.GroupBy))
		for i, ge := range b.GroupBy {
			v, err := ex.EvalExpr(ge, renv)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
		}
		k := sqltypes.Key(keyVals)
		gs := groups[k]
		if gs == nil {
			gs = &groupState{rep: renv, accs: make([]aggAcc, len(aggs))}
			for i, a := range aggs {
				gs.accs[i] = newAggAcc(a)
			}
			groups[k] = gs
			order = append(order, k)
		}
		for i, a := range aggs {
			var v sqltypes.Value
			if a.Op != qgm.AggCountStar {
				v, err = ex.EvalExpr(a.Arg, renv)
				if err != nil {
					return nil, err
				}
			}
			gs.accs[i].add(v)
		}
	}
	if len(input) == 0 && len(b.GroupBy) == 0 {
		// Ungrouped aggregate over empty input yields exactly one row:
		// COUNT 0, other aggregates NULL. (The rewrites' COUNT-bug
		// handling exists precisely because grouped plans lose this row.)
		gs := &groupState{rep: Bind(env, qg, nullRow(len(qg.Input.Cols))), accs: make([]aggAcc, len(aggs))}
		for i, a := range aggs {
			gs.accs[i] = newAggAcc(a)
		}
		groups[""] = gs
		order = append(order, "")
	}
	out := make([]storage.Row, 0, len(groups))
	for _, k := range order {
		gs := groups[k]
		row := make(storage.Row, len(b.Cols))
		for i, c := range b.Cols {
			v, err := ex.evalWithAggs(c.Expr, gs.rep, aggs, aggIndex, gs.accs)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out = append(out, row)
	}
	ex.Stats.RowsGrouped += int64(len(out))
	return out, nil
}

// evalWithAggs evaluates a group-box output expression, substituting
// finished aggregate values for Agg nodes and using the group's
// representative row for grouping-column references.
func (ex *Exec) evalWithAggs(e qgm.Expr, rep *Env, aggs []*qgm.Agg, aggIndex map[*qgm.Agg]int, accs []aggAcc) (sqltypes.Value, error) {
	if a, ok := e.(*qgm.Agg); ok {
		return accs[aggIndex[a]].result(), nil
	}
	switch x := e.(type) {
	case *qgm.Bin:
		if x.Op == qgm.OpAdd || x.Op == qgm.OpSub || x.Op == qgm.OpMul || x.Op == qgm.OpDiv {
			l, err := ex.evalWithAggs(x.L, rep, aggs, aggIndex, accs)
			if err != nil {
				return sqltypes.Null, err
			}
			r, err := ex.evalWithAggs(x.R, rep, aggs, aggIndex, accs)
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.Arith(arithOf(x.Op), l, r)
		}
	case *qgm.Func:
		args := make([]sqltypes.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := ex.evalWithAggs(a, rep, aggs, aggIndex, accs)
			if err != nil {
				return sqltypes.Null, err
			}
			args[i] = v
		}
		if x.Name == "coalesce" {
			return sqltypes.Coalesce(args...), nil
		}
	}
	return ex.EvalExpr(e, rep)
}

func nullRow(width int) storage.Row {
	r := make(storage.Row, width)
	for i := range r {
		r[i] = sqltypes.Null
	}
	return r
}

func (ex *Exec) evalLeftJoin(b *qgm.Box, env *Env) ([]storage.Row, error) {
	ql, qr := b.Quants[0], b.Quants[1]
	left, err := ex.evalBox(ql.Input, env)
	if err != nil {
		return nil, err
	}
	right, err := ex.evalBox(qr.Input, env)
	if err != nil {
		return nil, err
	}
	// Split ON predicates into hashable equalities and residual filters.
	var lKeys, rKeys []qgm.Expr
	var residual []qgm.Expr
	for _, p := range b.Preds {
		if l, r, ok := equiSides(p, ql, qr); ok {
			lKeys = append(lKeys, l)
			rKeys = append(rKeys, r)
		} else {
			residual = append(residual, p)
		}
	}
	nullRight := nullRow(len(qr.Input.Cols))
	var rHash map[string][]int
	if len(lKeys) > 0 {
		ex.Stats.HashBuilds++
		rHash = make(map[string][]int, len(right))
		for i, rr := range right {
			renv := Bind(env, qr, rr)
			keys := make([]sqltypes.Value, len(rKeys))
			skip := false
			for ki, ke := range rKeys {
				v, err := ex.EvalExpr(ke, renv)
				if err != nil {
					return nil, err
				}
				if v.IsNull() {
					skip = true // NULL join keys never match
					break
				}
				keys[ki] = v
			}
			if skip {
				continue
			}
			k := sqltypes.Key(keys)
			rHash[k] = append(rHash[k], i)
		}
	}
	var out []storage.Row
	emit := func(lenv *Env, rrow storage.Row) error {
		full := Bind(lenv, qr, rrow)
		row := make(storage.Row, len(b.Cols))
		for i, c := range b.Cols {
			v, err := ex.EvalExpr(c.Expr, full)
			if err != nil {
				return err
			}
			row[i] = v
		}
		out = append(out, row)
		return nil
	}
	for _, lr := range left {
		lenv := Bind(env, ql, lr)
		matched := false
		candidates := right
		if rHash != nil {
			keys := make([]sqltypes.Value, len(lKeys))
			nullKey := false
			for ki, ke := range lKeys {
				v, err := ex.EvalExpr(ke, lenv)
				if err != nil {
					return nil, err
				}
				if v.IsNull() {
					nullKey = true
					break
				}
				keys[ki] = v
			}
			if nullKey {
				candidates = nil
			} else {
				ids := rHash[sqltypes.Key(keys)]
				candidates = make([]storage.Row, len(ids))
				for i, id := range ids {
					candidates[i] = right[id]
				}
			}
		}
		for _, rr := range candidates {
			renv := Bind(lenv, qr, rr)
			ok := sqltypes.True
			for _, p := range residual {
				t, err := ex.EvalPred(p, renv)
				if err != nil {
					return nil, err
				}
				ok = ok.And(t)
				if ok != sqltypes.True {
					break
				}
			}
			if ok == sqltypes.True {
				matched = true
				if err := emit(lenv, rr); err != nil {
					return nil, err
				}
			}
		}
		if !matched {
			if err := emit(lenv, nullRight); err != nil {
				return nil, err
			}
		}
	}
	ex.Stats.RowsJoined += int64(len(out))
	return out, nil
}

// equiSides decomposes p as an equality whose sides reference exactly ql
// and qr respectively (in either order); outer references are allowed on
// both sides.
func equiSides(p qgm.Expr, ql, qr *qgm.Quantifier) (lSide, rSide qgm.Expr, ok bool) {
	b, isBin := p.(*qgm.Bin)
	if !isBin || b.Op != qgm.OpEq {
		return nil, nil, false
	}
	lq, rq := qgm.QuantSet(b.L), qgm.QuantSet(b.R)
	switch {
	case lq[ql] && !lq[qr] && rq[qr] && !rq[ql]:
		return b.L, b.R, true
	case lq[qr] && !lq[ql] && rq[ql] && !rq[qr]:
		return b.R, b.L, true
	}
	return nil, nil, false
}
