package exec

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"decorr/internal/colvec"
	"decorr/internal/faultinject"
	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/trace"
)

// Options select executor policies that the paper treats as system knobs.
type Options struct {
	// MaterializeCSE caches the result of shared, uncorrelated boxes
	// instead of recomputing them per reference. The Starburst prototype
	// in the paper "always recomputes common sub-expressions" (§5.1);
	// the default therefore is false, and the ablation benchmark flips it.
	MaterializeCSE bool
	// MemoizeCorrelated caches correlated subquery results per binding —
	// the NI-with-memo variant used as an extra baseline.
	MemoizeCorrelated bool
	// BatchCorrelated evaluates correlated subqueries set-at-a-time — the
	// NIBatch strategy. Where nested iteration would re-evaluate one
	// correlated subtree per outer tuple, the executor collects the
	// distinct correlation bindings of the whole outer stream and runs the
	// subtree once per distinct binding — or, when the correlation is
	// root-level equalities only, exactly once as a decorrelated
	// partition/probe (see batch_subquery.go). Rows, ordering, Stats
	// determinism, and typed errors match NI at every worker count.
	BatchCorrelated bool
	// Workers bounds intra-query parallelism: the number of goroutines
	// (including the caller) the morsel scheduler may use for one Run.
	// Zero or negative selects runtime.GOMAXPROCS(0); one forces the
	// classic single-threaded volcano behavior. Result rows are
	// bit-identical and identically ordered at every setting — only wall
	// clock (and scheduling-sensitive counters like CSERecomputes and
	// MemoHits) changes. See docs/parallel-execution.md.
	Workers int
	// Tracer, when non-nil, receives one span per box evaluation with the
	// box identity, produced rows, and wall time. The nil case is a single
	// pointer check on the hot path (no timing, no allocations).
	Tracer *trace.Tracer
	// Params supplies values for `?` placeholders, indexed by position.
	// Evaluating a qgm.Param outside the supplied range is an error.
	Params []sqltypes.Value
	// Ctx, when non-nil, cancels execution: Run polls it at every morsel
	// claim and box evaluation and returns ErrCanceled (or
	// ErrDeadlineExceeded for a context deadline). A nil Ctx — and a
	// context that can never be canceled — costs nothing on the hot path.
	Ctx context.Context
	// Limits are the per-Run resource budgets (deadline, output rows,
	// intermediate rows, tracked bytes). The zero value imposes none.
	Limits Limits
	// DisableColumnar forces the row-at-a-time interpreter even for plans
	// the vectorized engine could run. Rows, Stats, and errors are
	// identical either way (the differ cross-checks the two paths); the
	// knob exists for benchmarking and for bisecting a suspected
	// vectorization bug. The DECORR_ROWMODE environment variable (any
	// non-empty value) forces it process-wide.
	DisableColumnar bool
}

// Exec evaluates QGM graphs against a database. An Exec is single-use per
// Run for statistics purposes but may be reused; counters accumulate.
// One Run fans out internally across Options.Workers goroutines, but Run
// itself must not be called concurrently on the same Exec.
type Exec struct {
	db    *storage.DB
	opts  Options
	Stats Stats

	workers int
	sem     chan struct{} // worker tokens shared by nested parallel regions

	// gov enforces Options.Ctx and Options.Limits for the current Run; nil
	// when neither is armed. It is rebuilt at each Run entry (the Timeout
	// deadline anchors there) and read-only during the fan-out.
	gov *governor

	// mu guards the cross-worker memo state (cse, memo, bindings) and the
	// profile map. freeRefs and refCount are written only by analyze
	// (before any fan-out) and read-only afterwards; est and costMemo have
	// their own lock (estMu) because they are read from the scheduling
	// hot path.
	mu sync.Mutex

	freeRefs map[*qgm.Box][]qgm.RefKey
	refCount map[*qgm.Box]int
	// volatileBox marks boxes whose subtree reads a synthetic (sys.*) or
	// storageless relation; their results are never shared across
	// bindings. Written only by analyze (before any fan-out) and
	// read-only afterwards, like freeRefs.
	volatileBox map[*qgm.Box]bool
	cse         map[*qgm.Box][]storage.Row
	cseVecs     map[*qgm.Box]*cseVecEntry
	memo        map[*qgm.Box]map[string][]storage.Row
	bindings    map[*qgm.Box]map[string]bool

	estMu    sync.Mutex
	est      map[*qgm.Box]float64
	costMemo map[*qgm.Box]float64

	profile map[*qgm.Box]*BoxProfile

	// colOK enables the vectorized engine; colSel/colGrp mark the boxes it
	// may evaluate. Both maps are written only by analyze (before any
	// fan-out) and read-only afterwards, like freeRefs.
	colOK  bool
	colSel map[*qgm.Box]bool
	colGrp map[*qgm.Box]bool
}

// idSel caches one shared identity selection vector (0,1,2,...) for the
// whole process: every fresh scan batch and join output starts fully
// live, and the prefix slices handed out are read-only by the colBatch
// immutability contract. Package-level so short queries don't refill it
// every Run; atomic swap keeps readers lock-free once grown.
var idSel atomic.Pointer[[]int32]

// identity returns a shared read-only [0,1,...,n-1] selection vector.
func (ex *Exec) identity(n int) []int32 {
	for {
		cur := idSel.Load()
		if cur != nil && len(*cur) >= n {
			return (*cur)[:n]
		}
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(i)
		}
		if idSel.CompareAndSwap(cur, &s) {
			return s[:n]
		}
	}
}

// colEnabled reports whether this Run may take columnar paths. Profiled
// runs (EXPLAIN ANALYZE) stay on the row path: per-box timings are the
// row interpreter's observability contract.
func (ex *Exec) colEnabled() bool {
	return ex.colOK && ex.profile == nil
}

// New creates an executor over db.
func New(db *storage.DB, opts Options) *Exec {
	w := resolveWorkers(opts.Workers)
	if opts.Tracer != nil {
		// Span trees are part of the observability contract: the golden
		// trace tests (and anyone reading a trace) expect parent/child
		// nesting to mirror the plan. The tracer's LIFO depth tracking
		// cannot express interleaved concurrent box spans, so attaching a
		// tracer serializes execution. Profiling and metrics do not.
		w = 1
	}
	return &Exec{
		db:          db,
		opts:        opts,
		workers:     w,
		sem:         make(chan struct{}, w-1),
		freeRefs:    map[*qgm.Box][]qgm.RefKey{},
		refCount:    map[*qgm.Box]int{},
		volatileBox: map[*qgm.Box]bool{},
		cse:         map[*qgm.Box][]storage.Row{},
		cseVecs:     map[*qgm.Box]*cseVecEntry{},
		memo:        map[*qgm.Box]map[string][]storage.Row{},
		bindings:    map[*qgm.Box]map[string]bool{},
		est:         map[*qgm.Box]float64{},
		colOK:       !opts.DisableColumnar && os.Getenv("DECORR_ROWMODE") == "",
		colSel:      map[*qgm.Box]bool{},
		colGrp:      map[*qgm.Box]bool{},
	}
}

func statsDelta(before, after Stats) Stats {
	return Stats{
		SubqueryInvocations: after.SubqueryInvocations - before.SubqueryInvocations,
		DistinctInvocations: after.DistinctInvocations - before.DistinctInvocations,
		MemoHits:            after.MemoHits - before.MemoHits,
		BatchedSubqueries:   after.BatchedSubqueries - before.BatchedSubqueries,
		BatchExecutions:     after.BatchExecutions - before.BatchExecutions,
		BoxEvals:            after.BoxEvals - before.BoxEvals,
		RowsScanned:         after.RowsScanned - before.RowsScanned,
		IndexLookups:        after.IndexLookups - before.IndexLookups,
		RowsJoined:          after.RowsJoined - before.RowsJoined,
		RowsGrouped:         after.RowsGrouped - before.RowsGrouped,
		HashBuilds:          after.HashBuilds - before.HashBuilds,
		CSERecomputes:       after.CSERecomputes - before.CSERecomputes,
	}
}

// publishStats folds one Run's counters into the process-wide registry —
// once per Run, so the per-row paths stay registry-free.
func publishStats(d Stats) {
	trace.Metrics.Counter("exec.runs").Inc()
	trace.Metrics.Counter("exec.subquery_invocations").Add(d.SubqueryInvocations)
	trace.Metrics.Counter("exec.box_evals").Add(d.BoxEvals)
	trace.Metrics.Counter("exec.rows_scanned").Add(d.RowsScanned)
	trace.Metrics.Counter("exec.index_lookups").Add(d.IndexLookups)
	trace.Metrics.Counter("exec.rows_joined").Add(d.RowsJoined)
	trace.Metrics.Counter("exec.rows_grouped").Add(d.RowsGrouped)
	trace.Metrics.Counter("exec.hash_builds").Add(d.HashBuilds)
	trace.Metrics.Counter("exec.cse_recomputes").Add(d.CSERecomputes)
	trace.Metrics.Counter("exec.memo_hits").Add(d.MemoHits)
	trace.Metrics.Counter("exec.batched_subqueries").Add(d.BatchedSubqueries)
	trace.Metrics.Counter("exec.batch_executions").Add(d.BatchExecutions)
	trace.Metrics.Gauge("exec.last_work").Set(d.Work())
}

// sortRows orders rows by the ORDER BY keys. The sort keys are extracted
// into column vectors up front, so each of the O(n log n) comparisons
// indexes two typed arrays instead of chasing two row pointers and boxing
// both values — and uniformly typed null-free key columns compare without
// entering OrderCompare at all.
func sortRows(rows []storage.Row, keys []qgm.OrderKey) {
	if len(rows) < 2 || len(keys) == 0 {
		return
	}
	cmps := make([]func(a, b int32) int, len(keys))
	for ki, k := range keys {
		v := colvec.FromColumn(rows, k.Col)
		cmps[ki] = orderCmp(v)
	}
	perm := make([]int32, len(rows))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(i, j int) bool {
		for ki, k := range keys {
			c := cmps[ki](perm[i], perm[j])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sorted := make([]storage.Row, len(rows))
	for i, p := range perm {
		sorted[i] = rows[p]
	}
	copy(rows, sorted)
}

// orderCmp returns a comparator over the key column with OrderCompare
// semantics (NULLs first). Null-free int and string columns take direct
// typed comparisons; floats keep the boxed path (OrderCompare's NaN
// ordering has no cheap typed equivalent).
func orderCmp(v colvec.Vec) func(a, b int32) int {
	if v.Mixed == nil && v.Nulls == nil {
		switch v.K {
		case sqltypes.KindInt:
			xs := v.Ints
			return func(a, b int32) int {
				x, y := xs[a], xs[b]
				switch {
				case x < y:
					return -1
				case x > y:
					return 1
				}
				return 0
			}
		case sqltypes.KindString:
			xs := v.Strs
			return func(a, b int32) int { return strings.Compare(xs[a], xs[b]) }
		}
	}
	return func(a, b int32) int {
		return sqltypes.OrderCompare(v.Value(int(a)), v.Value(int(b)))
	}
}

// analyze precomputes per-box free references, reference counts, and
// cardinality estimates. It runs single-threaded before any fan-out, so
// that during execution the scheduler workers only ever *read* freeRefs,
// refCount and (for join ordering) the primed est memo — keeping the join
// order, and with it the output row order, identical at every worker
// count.
func (ex *Exec) analyze(root *qgm.Box) {
	boxes := qgm.Boxes(root)
	for _, b := range boxes {
		if _, ok := ex.freeRefs[b]; !ok {
			ex.freeRefs[b] = dedupRefs(qgm.FreeRefs(b))
		}
	}
	for _, b := range boxes {
		if _, ok := ex.volatileBox[b]; !ok {
			computeVolatile(ex.db, b, ex.volatileBox)
		}
	}
	ex.refCount = map[*qgm.Box]int{}
	for _, b := range boxes {
		for _, q := range b.Quants {
			ex.refCount[q.Input]++
		}
	}
	for _, b := range boxes {
		ex.estBoxRows(b)
	}
	if ex.colOK {
		for _, b := range boxes {
			switch b.Kind {
			case qgm.BoxSelect:
				if ex.colSelectable(b) {
					ex.colSel[b] = true
				}
			case qgm.BoxGroup:
				if ex.colGroupable(b) {
					ex.colGrp[b] = true
				}
			}
		}
	}
}

func dedupRefs(refs []*qgm.ColRef) []qgm.RefKey {
	seen := map[qgm.RefKey]bool{}
	var out []qgm.RefKey
	for _, r := range refs {
		k := qgm.RefKey{Q: r.Q, Col: r.Col}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Q.ID != out[j].Q.ID {
			return out[i].Q.ID < out[j].Q.ID
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// isCorrelated reports whether box b has free references (i.e. needs outer
// bindings to evaluate). Boxes reachable from the Run root are filled in by
// analyze; the lazy path below only runs on the single-threaded estimation
// entry points (EstimateCost and friends).
func (ex *Exec) isCorrelated(b *qgm.Box) bool {
	fr, ok := ex.freeRefs[b]
	if !ok {
		fr = dedupRefs(qgm.FreeRefs(b))
		ex.freeRefs[b] = fr
	}
	return len(fr) > 0
}

// bindingKey evaluates b's free references under env and encodes them.
func (ex *Exec) bindingKey(b *qgm.Box, env *Env) (string, error) {
	fr := ex.freeRefs[b]
	vals := make([]sqltypes.Value, len(fr))
	for i, rk := range fr {
		v, err := ex.EvalExpr(&qgm.ColRef{Q: rk.Q, Col: rk.Col}, env)
		if err != nil {
			return "", err
		}
		vals[i] = v
	}
	return sqltypes.Key(vals), nil
}

// evalSubqueryInput evaluates the input box of a subquery-like quantifier
// for one outer tuple, counting it as a correlated invocation when the box
// is correlated, and applying the NI-memo knob. It is called concurrently
// by scheduler workers fanning out over outer bindings; the bindings set
// and memo cache are mutex-guarded, and a memo miss raced by two workers
// computes the (identical) rows twice with the first store winning.
func (ex *Exec) evalSubqueryInput(b *qgm.Box, env *Env) ([]storage.Row, error) {
	if !ex.isCorrelated(b) {
		return ex.evalBox(b, env)
	}
	key, err := ex.bindingKey(b, env)
	if err != nil {
		return nil, err
	}
	bump(&ex.Stats.SubqueryInvocations, 1)
	ex.mu.Lock()
	seen := ex.bindings[b]
	if seen == nil {
		seen = map[string]bool{}
		ex.bindings[b] = seen
	}
	if !seen[key] {
		seen[key] = true
		bump(&ex.Stats.DistinctInvocations, 1)
	}
	ex.mu.Unlock()
	if ex.opts.MemoizeCorrelated && !ex.subtreeVolatile(b) {
		ex.mu.Lock()
		m := ex.memo[b]
		if m == nil {
			m = map[string][]storage.Row{}
			ex.memo[b] = m
		}
		rows, ok := m[key]
		ex.mu.Unlock()
		if ok {
			bump(&ex.Stats.MemoHits, 1)
			return rows, nil
		}
		rows, err := ex.evalBox(b, env)
		if err != nil {
			return nil, err
		}
		if err := ex.govBytes(rows); err != nil {
			return nil, err
		}
		ex.mu.Lock()
		if prior, ok := m[key]; ok {
			rows = prior // a racing worker stored the same result first
		} else {
			m[key] = rows
		}
		ex.mu.Unlock()
		return rows, nil
	}
	return ex.evalBox(b, env)
}

// evalBox evaluates any box under env, applying CSE policy for shared
// uncorrelated boxes.
func (ex *Exec) evalBox(b *qgm.Box, env *Env) ([]storage.Row, error) {
	// Every box evaluation is a cancellation point: nested-iteration plans
	// re-evaluate correlated boxes per outer tuple, so this check alone
	// bounds their trip latency to one subquery invocation.
	if err := ex.gov.checkpoint(); err != nil {
		return nil, err
	}
	bump(&ex.Stats.BoxEvals, 1)
	shared := ex.refCount[b] > 1
	uncorrelated := !ex.isCorrelated(b)
	if uncorrelated && shared {
		ex.mu.Lock()
		rows, ok := ex.cse[b]
		ve := ex.cseVecs[b]
		ex.mu.Unlock()
		if ok || ve != nil {
			if ex.opts.MaterializeCSE {
				if !ok {
					// A fused columnar consumer cached this box's output
					// as vectors; materialize rows once and share them.
					rows, err := ex.colMaterialize(ve.vecs, ve.phys)
					if err != nil {
						return nil, err
					}
					ex.mu.Lock()
					if prior, dup := ex.cse[b]; dup {
						rows = prior
					} else {
						ex.cse[b] = rows
					}
					ex.mu.Unlock()
					return rows, nil
				}
				return rows, nil
			}
			bump(&ex.Stats.CSERecomputes, 1)
		}
	}
	// Timing is gated on a pointer check so that plain execution (no
	// profile, no tracer) pays nothing here.
	var sp *trace.Span
	var start time.Time
	if ex.opts.Tracer != nil {
		sp = ex.opts.Tracer.Begin(boxSpanName(b), "exec",
			trace.Int("box", int64(b.ID)), trace.Str("kind", b.Kind.String()))
	}
	if ex.profile != nil || sp != nil {
		start = time.Now()
	}
	rows, err := ex.dispatch(b, env)
	if err != nil {
		sp.End(trace.Str("error", err.Error()))
		return nil, err
	}
	if ex.profile != nil || sp != nil {
		elapsed := time.Since(start)
		ex.recordProfile(b, len(rows), elapsed)
		sp.End(trace.Int("rows", int64(len(rows))))
	}
	if uncorrelated && shared {
		if err := ex.govBytes(rows); err != nil {
			return nil, err
		}
		ex.mu.Lock()
		if _, ok := ex.cse[b]; !ok {
			ex.cse[b] = rows
		}
		ex.mu.Unlock()
	}
	return rows, nil
}

func (ex *Exec) dispatch(b *qgm.Box, env *Env) ([]storage.Row, error) {
	switch b.Kind {
	case qgm.BoxBase:
		t := ex.db.Table(b.Table.Name)
		if t == nil {
			return nil, fmt.Errorf("exec: table %q has no storage", b.Table.Name)
		}
		rows, err := t.Scan()
		if err != nil {
			return nil, err
		}
		bump(&ex.Stats.RowsScanned, int64(len(rows)))
		if err := ex.govRows(len(rows)); err != nil {
			return nil, err
		}
		return rows, nil
	case qgm.BoxSelect:
		if ex.colEnabled() && ex.colSel[b] {
			return ex.colEvalSelect(b, env)
		}
		return ex.evalSelect(b, env)
	case qgm.BoxGroup:
		if ex.colEnabled() && ex.colGrp[b] {
			return ex.colEvalGroup(b, env)
		}
		return ex.evalGroup(b, env)
	case qgm.BoxUnion:
		return ex.evalUnion(b, env)
	case qgm.BoxLeftJoin:
		return ex.evalLeftJoin(b, env)
	case qgm.BoxIntersect, qgm.BoxExcept:
		return ex.evalSetDiff(b, env)
	}
	return nil, fmt.Errorf("exec: unknown box kind %v", b.Kind)
}

// evalSetDiff evaluates INTERSECT/EXCEPT with SQL multiset semantics:
// INTERSECT ALL keeps min(countL, countR) copies, EXCEPT ALL keeps
// max(0, countL - countR); the DISTINCT variants keep at most one copy of
// each qualifying row. Both inputs evaluate in parallel; the count/emit
// pass is sequential because each decision depends on how many copies
// earlier (left-order) rows already emitted.
func (ex *Exec) evalSetDiff(b *qgm.Box, env *Env) ([]storage.Row, error) {
	ins, err := parallelChunks(ex, 2, 1, func(lo, _ int) ([]storage.Row, error) {
		return ex.evalBox(b.Quants[lo].Input, env)
	})
	if err != nil {
		return nil, err
	}
	left, right := ins[0], ins[1]
	rowKey := func(r storage.Row) (string, error) { return sqltypes.Key(r), nil }
	rKeys, err := parallelMap(ex, right, rowMorsel, rowKey)
	if err != nil {
		return nil, err
	}
	lKeys, err := parallelMap(ex, left, rowMorsel, rowKey)
	if err != nil {
		return nil, err
	}
	rCount := make(map[string]int, len(right))
	for _, k := range rKeys {
		rCount[k]++
	}
	emitted := map[string]int{}
	var out []storage.Row
	for i, l := range left {
		k := lKeys[i]
		n := emitted[k]
		var keep bool
		if b.Kind == qgm.BoxIntersect {
			if b.Distinct {
				keep = n == 0 && rCount[k] > 0
			} else {
				keep = n < rCount[k]
			}
		} else { // BoxExcept
			if b.Distinct {
				keep = n == 0 && rCount[k] == 0
			} else {
				keep = n >= rCount[k]
			}
		}
		emitted[k] = n + 1
		if keep {
			out = append(out, l)
		}
	}
	return out, nil
}

// evalUnion evaluates every branch in parallel and concatenates the
// results in declared branch order, so UNION ALL output — and the
// first-occurrence order dedupeRows preserves for UNION DISTINCT — is the
// same at any worker count.
func (ex *Exec) evalUnion(b *qgm.Box, env *Env) ([]storage.Row, error) {
	branches, err := parallelChunks(ex, len(b.Quants), 1, func(lo, _ int) ([]storage.Row, error) {
		return ex.evalBox(b.Quants[lo].Input, env)
	})
	if err != nil {
		return nil, err
	}
	out := concat(branches)
	if b.Distinct {
		out = dedupeRows(out)
	}
	return out, nil
}

func dedupeRows(rows []storage.Row) []storage.Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	var buf []byte
	for _, r := range rows {
		buf = sqltypes.AppendKey(buf[:0], r...)
		if !seen[string(buf)] { // no-alloc map lookup
			seen[string(buf)] = true
			out = append(out, r)
		}
	}
	return out
}

// groupState is one group's accumulation state during evalGroup.
type groupState struct {
	rep  *Env // representative binding for group expressions
	accs []aggAcc
}

func (ex *Exec) evalGroup(b *qgm.Box, env *Env) ([]storage.Row, error) {
	qg := b.Quants[0]
	input, err := ex.evalBox(qg.Input, env)
	if err != nil {
		return nil, err
	}
	aggs, aggIndex := collectAggs(b)
	var groups map[string]*groupState
	var order []string
	if mergeableAggs(aggs) {
		groups, order, err = ex.groupByPartials(b, qg, aggs, input, env)
	} else {
		groups, order, err = ex.groupBySequentialFold(b, qg, aggs, input, env)
	}
	if err != nil {
		return nil, err
	}
	if len(input) == 0 && len(b.GroupBy) == 0 {
		// Ungrouped aggregate over empty input yields exactly one row:
		// COUNT 0, other aggregates NULL. (The rewrites' COUNT-bug
		// handling exists precisely because grouped plans lose this row.)
		gs := &groupState{rep: Bind(env, qg, nullRow(len(qg.Input.Cols))), accs: make([]aggAcc, len(aggs))}
		for i, a := range aggs {
			gs.accs[i] = newAggAcc(a)
		}
		groups[""] = gs
		order = append(order, "")
	}
	return ex.emitGroupRows(b, groups, order, aggs, aggIndex)
}

// groupKeyVals evaluates the grouping key of one input row.
func (ex *Exec) groupKeyVals(b *qgm.Box, renv *Env) (string, error) {
	keyVals := make([]sqltypes.Value, len(b.GroupBy))
	for i, ge := range b.GroupBy {
		v, err := ex.EvalExpr(ge, renv)
		if err != nil {
			return "", err
		}
		keyVals[i] = v
	}
	return sqltypes.Key(keyVals), nil
}

// groupByPartials is the morsel-style aggregation path: each worker folds
// its morsels into private partial groups, and the partials merge in morsel
// order, preserving first-appearance group order. It requires every
// aggregate to merge exactly (see mergeableAggs).
func (ex *Exec) groupByPartials(b *qgm.Box, qg *qgm.Quantifier, aggs []*qgm.Agg, input []storage.Row, env *Env) (map[string]*groupState, []string, error) {
	type partial struct {
		groups map[string]*groupState
		order  []string
	}
	parts, err := parallelChunks(ex, len(input), rowMorsel, func(lo, hi int) (partial, error) {
		p := partial{groups: map[string]*groupState{}}
		for _, row := range input[lo:hi] {
			renv := Bind(env, qg, row)
			k, err := ex.groupKeyVals(b, renv)
			if err != nil {
				return partial{}, err
			}
			gs := p.groups[k]
			if gs == nil {
				gs = &groupState{rep: renv, accs: make([]aggAcc, len(aggs))}
				for i, a := range aggs {
					gs.accs[i] = newAggAcc(a)
				}
				p.groups[k] = gs
				p.order = append(p.order, k)
			}
			for i, a := range aggs {
				var v sqltypes.Value
				if a.Op != qgm.AggCountStar {
					v, err = ex.EvalExpr(a.Arg, renv)
					if err != nil {
						return partial{}, err
					}
				}
				gs.accs[i].add(v)
			}
		}
		return p, nil
	})
	if err != nil {
		return nil, nil, err
	}
	groups := map[string]*groupState{}
	var order []string
	for _, p := range parts {
		for _, k := range p.order {
			pg := p.groups[k]
			gs, ok := groups[k]
			if !ok {
				groups[k] = pg
				order = append(order, k)
				continue
			}
			for i := range gs.accs {
				gs.accs[i].merge(pg.accs[i])
			}
		}
	}
	return groups, order, nil
}

// groupBySequentialFold parallelizes only the per-row expression work (key
// and aggregate arguments) and folds the accumulators sequentially in input
// row order. SUM and AVG take this path: they may accumulate doubles, and
// floating-point addition order changes the last ulp, so merging per-worker
// partials would break the engine's bit-identical-at-any-worker-count
// guarantee (and silently diverge from the differential oracle).
func (ex *Exec) groupBySequentialFold(b *qgm.Box, qg *qgm.Quantifier, aggs []*qgm.Agg, input []storage.Row, env *Env) (map[string]*groupState, []string, error) {
	type rowEval struct {
		key  string
		renv *Env
		args []sqltypes.Value
	}
	evals, err := parallelMap(ex, input, rowMorsel, func(row storage.Row) (rowEval, error) {
		renv := Bind(env, qg, row)
		k, err := ex.groupKeyVals(b, renv)
		if err != nil {
			return rowEval{}, err
		}
		args := make([]sqltypes.Value, len(aggs))
		for i, a := range aggs {
			if a.Op != qgm.AggCountStar {
				v, err := ex.EvalExpr(a.Arg, renv)
				if err != nil {
					return rowEval{}, err
				}
				args[i] = v
			}
		}
		return rowEval{key: k, renv: renv, args: args}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	groups := map[string]*groupState{}
	var order []string
	for _, re := range evals {
		gs := groups[re.key]
		if gs == nil {
			gs = &groupState{rep: re.renv, accs: make([]aggAcc, len(aggs))}
			for i, a := range aggs {
				gs.accs[i] = newAggAcc(a)
			}
			groups[re.key] = gs
			order = append(order, re.key)
		}
		for i := range aggs {
			gs.accs[i].add(re.args[i])
		}
	}
	return groups, order, nil
}

// evalWithAggs evaluates a group-box output expression, substituting
// finished aggregate values for Agg nodes and using the group's
// representative row for grouping-column references.
func (ex *Exec) evalWithAggs(e qgm.Expr, rep *Env, aggs []*qgm.Agg, aggIndex map[*qgm.Agg]int, accs []aggAcc) (sqltypes.Value, error) {
	if a, ok := e.(*qgm.Agg); ok {
		return accs[aggIndex[a]].result(), nil
	}
	switch x := e.(type) {
	case *qgm.Bin:
		if x.Op == qgm.OpAdd || x.Op == qgm.OpSub || x.Op == qgm.OpMul || x.Op == qgm.OpDiv {
			l, err := ex.evalWithAggs(x.L, rep, aggs, aggIndex, accs)
			if err != nil {
				return sqltypes.Null, err
			}
			r, err := ex.evalWithAggs(x.R, rep, aggs, aggIndex, accs)
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.Arith(arithOf(x.Op), l, r)
		}
	case *qgm.Func:
		args := make([]sqltypes.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := ex.evalWithAggs(a, rep, aggs, aggIndex, accs)
			if err != nil {
				return sqltypes.Null, err
			}
			args[i] = v
		}
		if x.Name == "coalesce" {
			return sqltypes.Coalesce(args...), nil
		}
	}
	return ex.EvalExpr(e, rep)
}

func nullRow(width int) storage.Row {
	r := make(storage.Row, width)
	for i := range r {
		r[i] = sqltypes.Null
	}
	return r
}

func (ex *Exec) evalLeftJoin(b *qgm.Box, env *Env) ([]storage.Row, error) {
	ql, qr := b.Quants[0], b.Quants[1]
	ins, err := parallelChunks(ex, 2, 1, func(lo, _ int) ([]storage.Row, error) {
		return ex.evalBox(b.Quants[lo].Input, env)
	})
	if err != nil {
		return nil, err
	}
	left, right := ins[0], ins[1]
	// Split ON predicates into hashable equalities and residual filters.
	var lKeys, rKeys []qgm.Expr
	var residual []qgm.Expr
	for _, p := range b.Preds {
		if l, r, ok := equiSides(p, ql, qr); ok {
			lKeys = append(lKeys, l)
			rKeys = append(rKeys, r)
		} else {
			residual = append(residual, p)
		}
	}
	nullRight := nullRow(len(qr.Input.Cols))
	var rHash map[string][]int
	if len(lKeys) > 0 {
		if err := ex.hashBuildCheck(right); err != nil {
			return nil, err
		}
		bump(&ex.Stats.HashBuilds, 1)
		// Build: key expressions evaluate in parallel; the table fills
		// sequentially in row order so bucket chains are deterministic.
		type buildKey struct {
			key  string
			skip bool
		}
		keys, err := parallelMap(ex, right, rowMorsel, func(rr storage.Row) (buildKey, error) {
			renv := Bind(env, qr, rr)
			key, null, err := ex.keyFor(rKeys, renv)
			if err != nil {
				return buildKey{}, err
			}
			return buildKey{key: key, skip: null}, nil // NULL join keys never match
		})
		if err != nil {
			return nil, err
		}
		rHash = make(map[string][]int, len(right))
		for i, bk := range keys {
			if !bk.skip {
				rHash[bk.key] = append(rHash[bk.key], i)
			}
		}
	}
	// Probe: each morsel of left rows emits into its own slot; slots
	// concatenate in morsel order, preserving the left-to-right row order
	// of the single-threaded join.
	chunks, err := parallelChunks(ex, len(left), rowMorsel, func(lo, hi int) ([]storage.Row, error) {
		var out []storage.Row
		emit := func(lenv *Env, rrow storage.Row) error {
			full := Bind(lenv, qr, rrow)
			row := make(storage.Row, len(b.Cols))
			for i, c := range b.Cols {
				v, err := ex.EvalExpr(c.Expr, full)
				if err != nil {
					return err
				}
				row[i] = v
			}
			out = append(out, row)
			return nil
		}
		for _, lr := range left[lo:hi] {
			lenv := Bind(env, ql, lr)
			matched := false
			candidates := right
			if rHash != nil {
				keys := make([]sqltypes.Value, len(lKeys))
				nullKey := false
				for ki, ke := range lKeys {
					v, err := ex.EvalExpr(ke, lenv)
					if err != nil {
						return nil, err
					}
					if v.IsNull() {
						nullKey = true
						break
					}
					keys[ki] = v
				}
				if nullKey {
					candidates = nil
				} else {
					ids := rHash[sqltypes.Key(keys)]
					candidates = make([]storage.Row, len(ids))
					for i, id := range ids {
						candidates[i] = right[id]
					}
				}
			}
			for _, rr := range candidates {
				renv := Bind(lenv, qr, rr)
				ok := sqltypes.True
				for _, p := range residual {
					t, err := ex.EvalPred(p, renv)
					if err != nil {
						return nil, err
					}
					ok = ok.And(t)
					if ok != sqltypes.True {
						break
					}
				}
				if ok == sqltypes.True {
					matched = true
					if err := emit(lenv, rr); err != nil {
						return nil, err
					}
				}
			}
			if !matched {
				if err := emit(lenv, nullRight); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	out := concat(chunks)
	bump(&ex.Stats.RowsJoined, int64(len(out)))
	if err := ex.govRows(len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

// hashBuildCheck gates every hash-table build: the fault-injection
// hash-build point fires first, then the build side is charged against the
// byte budget — a hash join's dominant allocation is its build table.
func (ex *Exec) hashBuildCheck(build []storage.Row) error {
	if err := faultinject.Check(faultinject.HashBuild); err != nil {
		return err
	}
	return ex.govBytes(build)
}

// equiSides decomposes p as an equality whose sides reference exactly ql
// and qr respectively (in either order); outer references are allowed on
// both sides.
func equiSides(p qgm.Expr, ql, qr *qgm.Quantifier) (lSide, rSide qgm.Expr, ok bool) {
	b, isBin := p.(*qgm.Bin)
	if !isBin || b.Op != qgm.OpEq {
		return nil, nil, false
	}
	lq, rq := qgm.QuantSet(b.L), qgm.QuantSet(b.R)
	switch {
	case lq[ql] && !lq[qr] && rq[qr] && !rq[ql]:
		return b.L, b.R, true
	case lq[qr] && !lq[ql] && rq[ql] && !rq[qr]:
		return b.R, b.L, true
	}
	return nil, nil, false
}
