package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// Limits are the per-query resource budgets of one Run. The zero value
// imposes no limits. Every limit is enforced at morsel-claim boundaries in
// the scheduler and at box boundaries in the operators, so trip latency is
// bounded by one morsel of leaf work even at Workers == 1. Limits are
// execution-time policy only: they never influence planning, which is why
// a cached plan prepared under one deadline runs correctly under another.
type Limits struct {
	// Timeout bounds one Run's wall clock, measured from Run entry. It
	// combines with any Options.Ctx deadline: the earlier one wins.
	Timeout time.Duration
	// MaxOutputRows caps the rows of the final result (checked at the
	// root, before ORDER BY/LIMIT trimming). Exceeding it is ErrRowBudget.
	MaxOutputRows int64
	// MaxIntermediateRows caps the total rows the executor materializes
	// while evaluating the plan: exactly the sum of Stats.RowsScanned,
	// Stats.RowsJoined, and Stats.RowsGrouped, which lets tests pin the
	// trip boundary. Exceeding it is ErrRowBudget.
	MaxIntermediateRows int64
	// MaxTrackedBytes caps the approximate bytes held in the executor's
	// materializations: hash-join and subquery hash builds, NI-memo
	// entries, CSE caches, and the batch path's bindings relation and
	// partitioned results. Exceeding it is ErrMemBudget.
	MaxTrackedBytes int64
}

// Enabled reports whether any limit is set.
func (l Limits) Enabled() bool {
	return l.Timeout > 0 || l.MaxOutputRows > 0 || l.MaxIntermediateRows > 0 || l.MaxTrackedBytes > 0
}

// Typed sentinel errors of query-lifecycle governance. They unwind through
// parallel regions via the scheduler's deterministic min-index error
// machinery and are classified with errors.Is at the engine boundary.
var (
	// ErrCanceled reports that Options.Ctx was canceled mid-run.
	ErrCanceled = errors.New("exec: query canceled")
	// ErrDeadlineExceeded reports that the Limits.Timeout or the
	// Options.Ctx deadline passed mid-run.
	ErrDeadlineExceeded = errors.New("exec: query deadline exceeded")
	// ErrRowBudget reports a MaxOutputRows or MaxIntermediateRows trip.
	ErrRowBudget = errors.New("exec: row budget exceeded")
	// ErrMemBudget reports a MaxTrackedBytes trip.
	ErrMemBudget = errors.New("exec: memory budget exceeded")
)

// ErrPanic marks errors produced by recovering an operator panic; match it
// with errors.Is. The concrete error is a *PanicError carrying the stack.
var ErrPanic = errors.New("exec: operator panic")

// PanicError is a recovered operator panic converted to an error: the
// scheduler recovers panics inside morsel workers (a goroutine panic would
// otherwise kill the process) and the engine boundary recovers panics on
// the caller's own stack.
type PanicError struct {
	// Val is the recovered panic value.
	Val any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("exec: operator panic: %v", e.Val) }

// Is lets errors.Is(err, ErrPanic) classify recovered panics.
func (e *PanicError) Is(target error) bool { return target == ErrPanic }

// governor enforces one Run's cancellation, deadline, and budgets. A nil
// *governor (no ctx, no limits) disables every check at the cost of one
// pointer comparison. All methods are safe from concurrent morsel workers:
// the accounting is atomic, and the first trip is latched so every
// subsequent checkpoint reports the same error.
type governor struct {
	ctx         context.Context
	done        <-chan struct{}
	deadline    time.Time
	hasDeadline bool

	maxOut   int64
	maxInter int64
	maxBytes int64

	rows  atomic.Int64
	bytes atomic.Int64

	tripped atomic.Bool
	tripErr atomic.Value // error; written once under the tripped latch
}

// newGovernor builds the governor for one Run, or nil when ctx and limits
// impose nothing. The Timeout deadline is anchored at the call (Run entry).
func newGovernor(ctx context.Context, lim Limits) *governor {
	g := &governor{}
	active := false
	if ctx != nil {
		if ctx.Done() != nil {
			g.ctx = ctx
			g.done = ctx.Done()
			active = true
		}
		if d, ok := ctx.Deadline(); ok {
			g.deadline, g.hasDeadline = d, true
			active = true
		}
	}
	if lim.Timeout > 0 {
		d := time.Now().Add(lim.Timeout)
		if !g.hasDeadline || d.Before(g.deadline) {
			g.deadline = d
		}
		g.hasDeadline = true
		active = true
	}
	if lim.MaxOutputRows > 0 {
		g.maxOut = lim.MaxOutputRows
		active = true
	}
	if lim.MaxIntermediateRows > 0 {
		g.maxInter = lim.MaxIntermediateRows
		active = true
	}
	if lim.MaxTrackedBytes > 0 {
		g.maxBytes = lim.MaxTrackedBytes
		active = true
	}
	if !active {
		return nil
	}
	return g
}

// trip latches err as the run's governance failure and returns the latched
// error (the first trip wins, so racing workers all report one cause).
func (g *governor) trip(err error) error {
	if g.tripped.CompareAndSwap(false, true) {
		g.tripErr.Store(err)
		return err
	}
	// Another worker latched first; spin-free read is fine because the
	// CAS winner stores before any loser can observe tripped == true...
	// except in the tiny CAS-to-Store window, so fall back to our error.
	if e, ok := g.tripErr.Load().(error); ok {
		return e
	}
	return err
}

// checkpoint polls cancellation and the deadline. It is called at every
// morsel claim and box evaluation, so its cost matters: a latched trip or
// nil governor returns immediately, the ctx poll is one channel select,
// and the deadline poll is one time.Now.
func (g *governor) checkpoint() error {
	if g == nil {
		return nil
	}
	if g.tripped.Load() {
		if e, ok := g.tripErr.Load().(error); ok {
			return e
		}
	}
	if g.done != nil {
		select {
		case <-g.done:
			return g.trip(ctxErr(g.ctx))
		default:
		}
	}
	if g.hasDeadline && !time.Now().Before(g.deadline) {
		return g.trip(ErrDeadlineExceeded)
	}
	return nil
}

// ctxErr maps a context failure to the executor's typed sentinels.
func ctxErr(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return ErrDeadlineExceeded
	}
	return ErrCanceled
}

// addRows accounts n intermediate rows against MaxIntermediateRows.
func (g *governor) addRows(n int64) error {
	if g == nil || g.maxInter == 0 {
		return nil
	}
	if total := g.rows.Add(n); total > g.maxInter {
		return g.trip(fmt.Errorf("%w: %d intermediate rows over budget %d", ErrRowBudget, total, g.maxInter))
	}
	return nil
}

// addBytes accounts n tracked bytes against MaxTrackedBytes.
func (g *governor) addBytes(n int64) error {
	if g == nil || g.maxBytes == 0 {
		return nil
	}
	if total := g.bytes.Add(n); total > g.maxBytes {
		return g.trip(fmt.Errorf("%w: %d tracked bytes over budget %d", ErrMemBudget, total, g.maxBytes))
	}
	return nil
}

// checkOutput enforces MaxOutputRows on a materialized root result.
func (g *governor) checkOutput(n int) error {
	return g.checkOutputTotal(int64(n))
}

// checkOutputTotal enforces MaxOutputRows against a cumulative output-row
// count — the streaming iterator calls it per batch with its running
// total, so the trip condition (total exceeds the budget) is identical to
// the materialized check, just observed at the batch that crosses it.
func (g *governor) checkOutputTotal(n int64) error {
	if g == nil || g.maxOut == 0 || n <= g.maxOut {
		return nil
	}
	return g.trip(fmt.Errorf("%w: %d output rows over budget %d", ErrRowBudget, n, g.maxOut))
}

// govRows is the operator-side accounting hook; call sites are exactly the
// places that bump Stats.RowsScanned, RowsJoined, and RowsGrouped, so at
// run end the governed total equals their sum — which is what lets tests
// pin the exact trip boundary.
func (ex *Exec) govRows(n int) error {
	if ex.gov == nil {
		return nil
	}
	return ex.gov.addRows(int64(n))
}

// govBytes accounts an approximate materialization size. The estimate is
// computed only when a byte budget is armed, so unbudgeted runs never scan
// row contents.
func (ex *Exec) govBytes(rows []storage.Row) error {
	if ex.gov == nil || ex.gov.maxBytes == 0 {
		return nil
	}
	return ex.gov.addBytes(rowsBytes(rows))
}

// govAddBytes charges n pre-computed tracked bytes — the batch path's
// bindings relation, whose size is the encoded key lengths rather than a
// row set.
func (ex *Exec) govAddBytes(n int64) error {
	if ex.gov == nil {
		return nil
	}
	return ex.gov.addBytes(n)
}

// rowsBytes approximates the in-memory size of a row set: a fixed
// per-value overhead plus string payloads. It is an accounting model, not
// an allocator measurement — the point is a monotone, deterministic proxy
// that budget tests can pin.
func rowsBytes(rows []storage.Row) int64 {
	const perValue = 24 // Value struct minus string payload, rounded
	var n int64
	for _, r := range rows {
		n += int64(len(r)) * perValue
		for _, v := range r {
			if v.K == sqltypes.KindString {
				n += int64(len(v.S))
			}
		}
	}
	return n
}

// classifyGovernance maps a governed failure to its metrics counter:
// exec.canceled counts cancellations and deadline trips, exec.budget_trips
// counts row/memory budget trips.
func classifyGovernance(err error) (counter string, ok bool) {
	switch {
	case errors.Is(err, ErrCanceled), errors.Is(err, ErrDeadlineExceeded):
		return "exec.canceled", true
	case errors.Is(err, ErrRowBudget), errors.Is(err, ErrMemBudget):
		return "exec.budget_trips", true
	}
	return "", false
}
