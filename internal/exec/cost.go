package exec

import (
	"math"

	"decorr/internal/qgm"
)

// EstimateCost returns an abstract cost (row operations) for one
// evaluation of the graph. It powers the paper's §7 plan choice: "our
// implementation simply optimizes the query once without decorrelation,
// and ... repeats the optimization with decorrelation. The better of the
// two optimized plans is chosen."
//
// The model mirrors the executor's actual access decisions: greedy join
// order, index probes when an equality predicate meets a hash index,
// per-tuple re-evaluation of correlated subquery inputs, and recomputation
// of shared uncorrelated boxes (unless materialization is enabled).
func (ex *Exec) EstimateCost(g *qgm.Graph) float64 {
	ex.analyze(g.Root)
	return ex.EstimateBoxCost(g.Root)
}

// EstimateRows exposes the cardinality estimate of one box (used by the
// shared-nothing plan model in internal/parallel).
func (ex *Exec) EstimateRows(b *qgm.Box) float64 { return ex.estBoxRows(b) }

// EstimateBoxCost estimates the cost of evaluating one box once (plus its
// inputs). Callers evaluating a whole graph should go through
// EstimateCost, which primes the reference-count analysis.
func (ex *Exec) EstimateBoxCost(b *qgm.Box) float64 {
	ex.estMu.Lock()
	if ex.costMemo == nil {
		ex.costMemo = map[*qgm.Box]float64{}
	}
	if c, ok := ex.costMemo[b]; ok {
		ex.estMu.Unlock()
		return c
	}
	ex.costMemo[b] = 0 // cycle guard
	ex.estMu.Unlock()
	var c float64
	switch b.Kind {
	case qgm.BoxBase:
		c = ex.estBoxRows(b)
	case qgm.BoxSelect:
		c = ex.costSelect(b, ex.EstimateBoxCost)
	case qgm.BoxGroup:
		c = ex.EstimateBoxCost(b.Quants[0].Input) + ex.estBoxRows(b.Quants[0].Input)
	case qgm.BoxUnion, qgm.BoxIntersect, qgm.BoxExcept:
		for _, q := range b.Quants {
			c += ex.EstimateBoxCost(q.Input) + ex.estBoxRows(q.Input)
		}
	case qgm.BoxLeftJoin:
		l, r := b.Quants[0].Input, b.Quants[1].Input
		c = ex.EstimateBoxCost(l) + ex.EstimateBoxCost(r) + ex.estBoxRows(l) + ex.estBoxRows(r)
	}
	// Shared uncorrelated boxes are recomputed per reference unless the
	// engine materializes them.
	if refs := ex.refCount[b]; refs > 1 && !ex.isCorrelated(b) && !ex.opts.MaterializeCSE {
		c *= float64(refs)
	}
	ex.estMu.Lock()
	ex.costMemo[b] = c
	ex.estMu.Unlock()
	return c
}

// correlatedEvalOverhead is the fixed cost of re-entering a correlated
// subquery plan for one binding (plan setup, hash rebuilds) on top of the
// rows it touches. Duplicate-heavy workloads pay it per duplicate.
const correlatedEvalOverhead = 8.0

// costSelect walks the static join order accumulating access and join
// costs, charging correlated subquery inputs once per estimated
// intermediate tuple.
func (ex *Exec) costSelect(b *qgm.Box, costBox func(*qgm.Box) float64) float64 {
	own := map[*qgm.Quantifier]bool{}
	for _, q := range b.Quants {
		own[q] = true
	}
	order := ex.JoinOrder(b)
	// Predicate bookkeeping mirrors JoinOrder's.
	preds := make([]*selPred, 0, len(b.Preds))
	for _, p := range b.Preds {
		pi := &selPred{expr: p, deps: map[*qgm.Quantifier]bool{}}
		for q := range qgm.QuantSet(p) {
			if !own[q] {
				continue
			}
			if q.Kind.IsSubquery() {
				pi.sub = q
			} else {
				pi.deps[q] = true
			}
		}
		preds = append(preds, pi)
	}
	bound := map[*qgm.Quantifier]bool{}
	card := 1.0
	cost := 0.0
	for _, q := range order {
		correlatedInput := false
		for _, r := range qgm.FreeRefs(q.Input) {
			if own[r.Q] && !r.Q.Kind.IsSubquery() {
				correlatedInput = true
				break
			}
		}
		inputCost := costBox(q.Input)
		switch {
		case q.Kind == qgm.QScalar || q.Kind.IsSubquery():
			if correlatedInput {
				// Nested iteration: one evaluation per tuple, plus the
				// fixed per-invocation overhead of re-entering the
				// subquery plan.
				cost += card * (math.Max(inputCost, 1) + correlatedEvalOverhead)
			} else {
				// Materialized once, probed per tuple.
				cost += inputCost + card
			}
			if q.Kind.IsSubquery() {
				card *= 0.5 // existential filters keep some tuples
			}
		case correlatedInput: // lateral derived table
			cost += card * (math.Max(inputCost, 1) + correlatedEvalOverhead)
			card *= math.Max(ex.estBoxRows(q.Input), 0.1)
		default:
			growth := ex.estQuantGrowth(q, bound, preds)
			// Index probe beats a scan when an equality predicate on an
			// indexed base column connects q to the bound set.
			if ex.hasIndexPath(b, q, bound) {
				cost += card * math.Max(growth, 1)
			} else {
				cost += inputCost // materialize / scan
				cost += card * math.Max(growth, 1)
			}
			card = math.Max(card*growth, 1)
		}
		bound[q] = true
		for _, pi := range preds {
			if pi.sub == nil && !pi.applied && depsSubset(pi.deps, bound, q) {
				pi.applied = true
			}
		}
	}
	return cost + card
}

// hasIndexPath reports whether an equality predicate lets q's base-table
// input be probed through a hash index given the bound quantifiers.
func (ex *Exec) hasIndexPath(b *qgm.Box, q *qgm.Quantifier, bound map[*qgm.Quantifier]bool) bool {
	if q.Input.Kind != qgm.BoxBase {
		return false
	}
	tbl := ex.db.Table(q.Input.Table.Name)
	if tbl == nil {
		return false
	}
	for _, p := range b.Preds {
		bin, ok := p.(*qgm.Bin)
		if !ok || bin.Op != qgm.OpEq {
			continue
		}
		for _, try := range [][2]qgm.Expr{{bin.L, bin.R}, {bin.R, bin.L}} {
			ref, ok := try[0].(*qgm.ColRef)
			if !ok || ref.Q != q || qgm.RefsQuant(try[1], q) {
				continue
			}
			usable := true
			for oq := range qgm.QuantSet(try[1]) {
				if oq.Owner == q.Owner && !bound[oq] {
					usable = false
					break
				}
			}
			if usable && tbl.HasIndex(ref.Col) {
				return true
			}
		}
	}
	return false
}
