package exec_test

import (
	"testing"

	"decorr/internal/tpcd"
)

func TestSearchedCase(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select name,
		  case when budget < 1000 then 'tiny'
		       when budget < 10000 then 'small'
		       else 'big' end
		from dept order by name`)
	expectRows(t, got, []string{
		"archives|tiny", "jewels|big", "shoes|small", "tools|small", "toys|small",
	})
}

func TestOperandCaseDesugars(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select name, case building when 'B1' then 1 when 'B2' then 2 end
		from dept order by name`)
	expectRows(t, got, []string{
		"archives|NULL", "jewels|2", "shoes|2", "tools|1", "toys|1",
	})
}

func TestCaseMissingElseIsNull(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `select case when 1 = 2 then 'x' end from dept where name = 'toys'`)
	expectRows(t, got, []string{"NULL"})
}

func TestCaseInWhere(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select name from dept
		where case when building = 'B1' then budget > 7500 else false end
		order by name`)
	expectRows(t, got, []string{"toys"})
}

func TestCaseInAggregateArgument(t *testing.T) {
	db := tpcd.EmpDept()
	// Conditional aggregation: count departments per building bucket.
	got := run(t, db, `
		select sum(case when budget < 10000 then 1 else 0 end),
		       sum(case when budget >= 10000 then 1 else 0 end)
		from dept`)
	expectRows(t, got, []string{"4|1"})
}

func TestCaseFirstTrueArmWins(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select case when budget > 0 then 'first' when budget > 100 then 'second' end
		from dept where name = 'toys'`)
	expectRows(t, got, []string{"first"})
}

func TestCaseWithUnknownCondSkipsArm(t *testing.T) {
	db := tpcd.EmpDept()
	// NULL < 5 is UNKNOWN, not TRUE: the arm must be skipped.
	got := run(t, db, `
		select case when null < budget then 'yes' else 'no' end
		from dept where name = 'toys'`)
	expectRows(t, got, []string{"no"})
}
