package exec_test

import (
	"testing"

	"decorr/internal/tpcd"
)

func TestInnerJoinSyntax(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select d.name, e.name from dept d inner join emp e on d.building = e.building
		where d.budget < 8000 order by 1, 2`)
	expectRows(t, got, []string{"tools|anne", "tools|bob"})
	// Bare JOIN means INNER.
	got2 := run(t, db, `
		select d.name, e.name from dept d join emp e on d.building = e.building
		where d.budget < 8000 order by 1, 2`)
	expectRows(t, got2, got)
}

func TestLeftOuterJoinSyntax(t *testing.T) {
	db := tpcd.EmpDept()
	// The §2 Dayal rewrite shape, written directly: every low-budget
	// department appears, employee NULL when the building is empty.
	got := run(t, db, `
		select d.name, e.name
		from dept d left outer join emp e on d.building = e.building
		where d.budget < 10000
		order by 1, 2`)
	expectRows(t, got, []string{
		"archives|NULL",
		"shoes|carl", "shoes|dina", "shoes|ed",
		"tools|anne", "tools|bob",
		"toys|anne", "toys|bob",
	})
}

func TestLeftJoinWithoutOuterKeyword(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select d.name from dept d left join emp e on d.building = e.building
		where e.name is null`)
	expectRows(t, got, []string{"archives"})
}

func TestDayalRewriteByHandMatchesExample(t *testing.T) {
	db := tpcd.EmpDept()
	// The paper's §2 Dayal transformation written as surface SQL; COUNT
	// of the nullable side counts zero for unmatched departments.
	got := run(t, db, `
		select d.name
		from dept d left outer join emp e on d.building = e.building
		where d.budget < 10000
		group by d.name, d.num_emps
		having d.num_emps > count(e.name)
		order by d.name`)
	expectRows(t, got, []string{"archives", "toys"})
}

func TestLeftJoinStarExpansion(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select e.* from dept d left outer join emp e on d.building = e.building
		where d.name = 'archives'`)
	expectRows(t, got, []string{"NULL|NULL"})
	got = run(t, db, `
		select * from dept d left outer join emp e on d.building = e.building
		where d.name = 'archives'`)
	expectRows(t, got, []string{"archives|500|1|B9|NULL|NULL"})
}

func TestLeftJoinDerivedSide(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select d.name, c.n
		from dept d left outer join
		  (select building, count(*) from emp group by building) as c(b, n)
		  on d.building = c.b
		where d.budget < 10000
		order by d.name`)
	expectRows(t, got, []string{"archives|NULL", "shoes|3", "tools|2", "toys|2"})
}

func TestJoinChain(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select count(*) from dept d
		join emp e on d.building = e.building
		join emp e2 on e2.building = e.building`)
	// B1: 2 depts × 2 emps × 2 emps = 8; B2: 2 × 3 × 3 = 18.
	expectRows(t, got, []string{"26"})
}

func TestLeftJoinNullOnCondition(t *testing.T) {
	db := tpcd.EmpDept()
	// ON predicates never match NULL keys, rows are still preserved.
	got := run(t, db, `
		select d.name, e.name
		from dept d left outer join emp e on d.building = e.building and e.name = 'nobody'
		where d.name = 'toys'`)
	expectRows(t, got, []string{"toys|NULL"})
}
