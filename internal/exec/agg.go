package exec

import (
	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
)

// aggAcc accumulates one aggregate over one group.
type aggAcc interface {
	// add feeds the evaluated argument (ignored value for COUNT(*)).
	add(v sqltypes.Value)
	// merge folds another accumulator of the same concrete type into this
	// one (the morsel scheduler's partial-aggregate combine). Only the
	// order-insensitive accumulators admitted by mergeableAggs are merged
	// in practice; the float-accumulating ones implement merge for
	// completeness but never take that path.
	merge(o aggAcc)
	// result returns the aggregate value; SQL semantics over empty input
	// (COUNT 0, others NULL).
	result() sqltypes.Value
}

// mergeableAggs reports whether every aggregate combines associatively
// with *bit-identical* results: COUNT, COUNT(*), MIN, MAX (plus their
// DISTINCT forms). SUM and AVG are excluded — they may accumulate doubles,
// and reassociating float additions shifts the last ulp, which would make
// results depend on morsel boundaries; those aggregates use the
// sequential-fold group path instead.
func mergeableAggs(aggs []*qgm.Agg) bool {
	for _, a := range aggs {
		switch a.Op {
		case qgm.AggCountStar, qgm.AggCount, qgm.AggMin, qgm.AggMax:
		default:
			return false
		}
	}
	return true
}

func newAggAcc(a *qgm.Agg) aggAcc {
	var inner aggAcc
	switch a.Op {
	case qgm.AggCountStar:
		return &countStarAcc{} // DISTINCT is meaningless for COUNT(*)
	case qgm.AggCount:
		inner = &countAcc{}
	case qgm.AggSum:
		inner = &sumAcc{}
	case qgm.AggAvg:
		inner = &avgAcc{}
	case qgm.AggMin:
		inner = &minmaxAcc{min: true}
	case qgm.AggMax:
		inner = &minmaxAcc{}
	default:
		inner = &countAcc{}
	}
	if a.Distinct {
		return &distinctAcc{inner: inner, seen: map[string]sqltypes.Value{}}
	}
	return inner
}

type countStarAcc struct{ n int64 }

func (a *countStarAcc) add(sqltypes.Value)     { a.n++ }
func (a *countStarAcc) merge(o aggAcc)         { a.n += o.(*countStarAcc).n }
func (a *countStarAcc) result() sqltypes.Value { return sqltypes.NewInt(a.n) }

type countAcc struct{ n int64 }

func (a *countAcc) add(v sqltypes.Value) {
	if !v.IsNull() {
		a.n++
	}
}
func (a *countAcc) merge(o aggAcc)         { a.n += o.(*countAcc).n }
func (a *countAcc) result() sqltypes.Value { return sqltypes.NewInt(a.n) }

type sumAcc struct {
	seen    bool
	isFloat bool
	i       int64
	f       float64
}

func (a *sumAcc) add(v sqltypes.Value) {
	if v.IsNull() {
		return
	}
	switch v.K {
	case sqltypes.KindInt:
		if a.isFloat {
			a.f += float64(v.I)
		} else {
			a.i += v.I
		}
	case sqltypes.KindFloat:
		if !a.isFloat {
			a.isFloat = true
			a.f = float64(a.i)
		}
		a.f += v.F
	default:
		return
	}
	a.seen = true
}

func (a *sumAcc) merge(o aggAcc) {
	b := o.(*sumAcc)
	if !b.seen {
		return
	}
	if b.isFloat {
		a.add(sqltypes.NewFloat(b.f))
	} else {
		a.add(sqltypes.NewInt(b.i))
	}
}

func (a *sumAcc) result() sqltypes.Value {
	if !a.seen {
		return sqltypes.Null
	}
	if a.isFloat {
		return sqltypes.NewFloat(a.f)
	}
	return sqltypes.NewInt(a.i)
}

type avgAcc struct {
	n   int64
	sum float64
}

func (a *avgAcc) add(v sqltypes.Value) {
	if v.IsNull() || !v.IsNumeric() {
		return
	}
	a.n++
	a.sum += v.AsFloat()
}

func (a *avgAcc) merge(o aggAcc) {
	b := o.(*avgAcc)
	a.n += b.n
	a.sum += b.sum
}

func (a *avgAcc) result() sqltypes.Value {
	if a.n == 0 {
		return sqltypes.Null
	}
	return sqltypes.NewFloat(a.sum / float64(a.n))
}

type minmaxAcc struct {
	min  bool
	best sqltypes.Value // zero Value is NULL == "none yet"
}

func (a *minmaxAcc) add(v sqltypes.Value) {
	if v.IsNull() {
		return
	}
	if a.best.IsNull() {
		a.best = v
		return
	}
	c, ok := sqltypes.Compare(v, a.best)
	if !ok {
		return
	}
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.best = v
	}
}

func (a *minmaxAcc) merge(o aggAcc) {
	b := o.(*minmaxAcc)
	if !b.best.IsNull() {
		a.add(b.best)
	}
}

func (a *minmaxAcc) result() sqltypes.Value { return a.best }

// distinctAcc wraps another accumulator, feeding it each distinct non-NULL
// argument once. The seen map keeps the value alongside its key so that
// merge can re-feed the inner accumulator with arguments first observed in
// another partial.
type distinctAcc struct {
	inner aggAcc
	seen  map[string]sqltypes.Value
}

func (a *distinctAcc) add(v sqltypes.Value) {
	if v.IsNull() {
		return
	}
	k := sqltypes.Key([]sqltypes.Value{v})
	if _, ok := a.seen[k]; ok {
		return
	}
	a.seen[k] = v
	a.inner.add(v)
}

func (a *distinctAcc) merge(o aggAcc) {
	// Map iteration order is random, which is fine here: only
	// order-insensitive inner accumulators reach the merge path.
	for k, v := range o.(*distinctAcc).seen {
		if _, ok := a.seen[k]; ok {
			continue
		}
		a.seen[k] = v
		a.inner.add(v)
	}
}

func (a *distinctAcc) result() sqltypes.Value { return a.inner.result() }
