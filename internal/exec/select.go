package exec

import (
	"fmt"

	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// selPred is one conjunct of a select box during evaluation.
type selPred struct {
	expr    qgm.Expr
	deps    map[*qgm.Quantifier]bool // b's own row-contributing quantifiers referenced
	sub     *qgm.Quantifier          // subquery quantifier tied by this predicate, if any
	applied bool
}

// lateQuant is a scalar or existential/universal quantifier awaiting its
// dependencies.
type lateQuant struct {
	q    *qgm.Quantifier
	deps map[*qgm.Quantifier]bool
	ties []*selPred
}

// evalSelect evaluates an SPJ box: phase 1 (selectTuples) produces the
// bound tuple stream, phase 2 (projectTuples) evaluates the output
// expressions, and DISTINCT dedups last. The streaming iterator drives the
// same two phases with phase 2 batched.
func (ex *Exec) evalSelect(b *qgm.Box, env *Env) ([]storage.Row, error) {
	tuples, err := ex.selectTuples(b, env)
	if err != nil || len(tuples) == 0 {
		return nil, err
	}
	out, err := ex.projectTuples(b, tuples)
	if err != nil {
		return nil, err
	}
	if b.Distinct {
		out = dedupeRows(out)
	}
	return out, nil
}

// selectTuples is phase 1 of select evaluation: it greedily orders the
// ForEach quantifiers by estimated growth, binds scalar and
// existential/universal quantifiers at the earliest point their
// dependencies allow (mirroring how the paper's optimizer placed subqueries
// before or after outer joins — §5.3, Query 1 vs Query 2), uses index
// lookups and hash joins where predicates permit, and re-evaluates
// correlated subquery inputs per outer tuple (nested iteration). The
// result is the fully bound, fully filtered tuple stream awaiting
// projection.
func (ex *Exec) selectTuples(b *qgm.Box, env *Env) ([]*Env, error) {
	return ex.selectTuplesSkip(b, env, nil)
}

// selectTuplesSkip is selectTuples with a predicate skip set: the batched
// subquery path strips the correlated equalities (identified by pointer
// identity) from the root and re-applies their filtering as a
// partition/probe step. A skipped predicate never enters the plan, so it
// cannot drive index or hash-join placement either — the set-oriented
// execution deliberately trades those per-binding access paths for one
// shared pass.
func (ex *Exec) selectTuplesSkip(b *qgm.Box, env *Env, skip map[qgm.Expr]bool) ([]*Env, error) {
	own := map[*qgm.Quantifier]bool{}
	for _, q := range b.Quants {
		own[q] = true
	}

	preds := make([]*selPred, 0, len(b.Preds))
	for _, p := range b.Preds {
		if skip[p] {
			continue
		}
		pi := &selPred{expr: p, deps: map[*qgm.Quantifier]bool{}}
		for q := range qgm.QuantSet(p) {
			if !own[q] {
				continue
			}
			if q.Kind.IsSubquery() {
				if pi.sub != nil && pi.sub != q {
					return nil, fmt.Errorf("exec: predicate references two subquery quantifiers")
				}
				pi.sub = q
			} else {
				pi.deps[q] = true
			}
		}
		preds = append(preds, pi)
	}

	order := ex.JoinOrder(b)

	bound := map[*qgm.Quantifier]bool{}
	tuples := []*Env{env}

	depsBound := func(deps map[*qgm.Quantifier]bool) bool {
		for d := range deps {
			if !bound[d] {
				return false
			}
		}
		return true
	}

	// applyReady filters tuples through every now-applicable ordinary
	// predicate.
	applyReady := func() error {
		for _, pi := range preds {
			if pi.applied || pi.sub != nil || !depsBound(pi.deps) {
				continue
			}
			pi.applied = true
			kept, err := parallelFilter(ex, tuples, rowMorsel, func(t *Env) (bool, error) {
				tr, err := ex.EvalPred(pi.expr, t)
				if err != nil {
					return false, err
				}
				return tr == sqltypes.True, nil
			})
			if err != nil {
				return err
			}
			tuples = kept
		}
		return nil
	}
	if err := applyReady(); err != nil {
		return nil, err
	}

	for _, q := range order {
		if len(tuples) == 0 {
			return nil, nil
		}
		var err error
		switch {
		case q.Kind == qgm.QScalar:
			deps := ownDeps(q, own)
			tuples, err = ex.bindScalar(q, deps, tuples, env)
		case q.Kind.IsSubquery():
			li := &lateQuant{q: q}
			for _, pi := range preds {
				if pi.sub == q {
					li.ties = append(li.ties, pi)
				}
			}
			tuples, err = ex.bindSubqueryCheck(li, tuples, env)
			for _, pi := range li.ties {
				pi.applied = true
			}
		case len(ownDeps(q, own)) > 0:
			// Lateral derived table: re-evaluate per tuple.
			tuples, err = ex.bindLateral(q, tuples)
		default:
			tuples, err = ex.bindForEach(q, bound, preds, tuples, env)
		}
		if err != nil {
			return nil, err
		}
		bound[q] = true
		if err := applyReady(); err != nil {
			return nil, err
		}
	}
	if len(tuples) == 0 {
		return nil, nil
	}
	for _, pi := range preds {
		if !pi.applied {
			return nil, fmt.Errorf("exec: predicate %s left unapplied in box %d", qgm.FormatExpr(pi.expr), b.ID)
		}
	}
	return tuples, nil
}

// projectTuples is phase 2 of select evaluation: the output expressions
// over an already bound and filtered tuple stream (or one batch of it).
func (ex *Exec) projectTuples(b *qgm.Box, tuples []*Env) ([]storage.Row, error) {
	return parallelMap(ex, tuples, rowMorsel, func(t *Env) (storage.Row, error) {
		row := make(storage.Row, len(b.Cols))
		for i, c := range b.Cols {
			v, err := ex.EvalExpr(c.Expr, t)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return row, nil
	})
}

// ownDeps returns the row-contributing quantifiers of the same box that
// q's input subtree references (lateral/scalar correlation to siblings).
func ownDeps(q *qgm.Quantifier, own map[*qgm.Quantifier]bool) map[*qgm.Quantifier]bool {
	deps := map[*qgm.Quantifier]bool{}
	for _, r := range qgm.FreeRefs(q.Input) {
		if own[r.Q] && !r.Q.Kind.IsSubquery() {
			deps[r.Q] = true
		}
	}
	return deps
}

// bindLateral joins a derived table that references sibling quantifiers
// (the paper's Query 3 style), re-evaluating it per tuple. The per-tuple
// re-evaluations fan out across workers — this is the nested-iteration hot
// loop, so one morsel is only a few tuples.
func (ex *Exec) bindLateral(q *qgm.Quantifier, tuples []*Env) ([]*Env, error) {
	out, err := parallelFlatMap(ex, tuples, subqMorsel, func(t *Env) ([]*Env, error) {
		rows, err := ex.evalSubqueryInput(q.Input, t)
		if err != nil {
			return nil, err
		}
		bound := make([]*Env, len(rows))
		for i, r := range rows {
			bound[i] = Bind(t, q, r)
		}
		return bound, nil
	})
	if err != nil {
		return nil, err
	}
	bump(&ex.Stats.RowsJoined, int64(len(out)))
	if err := ex.govRows(len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

// bindScalar joins a scalar subquery quantifier into the tuple stream. An
// input with no own-quantifier dependencies is evaluated once per
// select-box evaluation; otherwise per tuple (nested iteration).
func (ex *Exec) bindScalar(q *qgm.Quantifier, deps map[*qgm.Quantifier]bool, tuples []*Env, env *Env) ([]*Env, error) {
	width := len(q.Input.Cols)
	if len(deps) == 0 {
		rows, err := ex.evalSubqueryInput(q.Input, env)
		if err != nil {
			return nil, err
		}
		row, err := scalarRow(rows, width)
		if err != nil {
			return nil, err
		}
		out := make([]*Env, len(tuples))
		for i, t := range tuples {
			out[i] = Bind(t, q, row)
		}
		return out, nil
	}
	// Correlated. Under BatchCorrelated the whole outer stream evaluates
	// set-at-a-time; the at-most-one-row check applies per tuple to its
	// probed rows, so cardinality errors surface exactly as in the
	// per-tuple loop below.
	if per, ok, err := ex.batchSubqueryRows(q, tuples, env); err != nil {
		return nil, err
	} else if ok {
		chunks, err := parallelChunks(ex, len(tuples), subqMorsel, func(lo, hi int) ([]*Env, error) {
			out := make([]*Env, 0, hi-lo)
			for i := lo; i < hi; i++ {
				row, err := scalarRow(per[i], width)
				if err != nil {
					return nil, err
				}
				out = append(out, Bind(tuples[i], q, row))
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		return concat(chunks), nil
	}
	// One subquery evaluation per outer tuple, fanned out.
	return parallelMap(ex, tuples, subqMorsel, func(t *Env) (*Env, error) {
		rows, err := ex.evalSubqueryInput(q.Input, t)
		if err != nil {
			return nil, err
		}
		row, err := scalarRow(rows, width)
		if err != nil {
			return nil, err
		}
		return Bind(t, q, row), nil
	})
}

func scalarRow(rows []storage.Row, width int) (storage.Row, error) {
	switch len(rows) {
	case 0:
		return nullRow(width), nil
	case 1:
		return rows[0], nil
	}
	return nil, fmt.Errorf("exec: scalar subquery returned %d rows", len(rows))
}

// bindForEach joins the next ForEach quantifier into the tuple stream,
// choosing among index lookup, hash join, and nested loops.
func (ex *Exec) bindForEach(q *qgm.Quantifier, bound map[*qgm.Quantifier]bool, preds []*selPred, tuples []*Env, env *Env) ([]*Env, error) {
	if len(tuples) == 0 {
		return tuples, nil
	}
	// Index access: base-table input with an equality predicate on an
	// indexed column whose other side is computable now.
	if q.Input.Kind == qgm.BoxBase {
		if tbl := ex.db.Table(q.Input.Table.Name); tbl != nil {
			if pi, col, other := findIndexPred(q, bound, preds, tbl); pi != nil {
				return ex.indexBind(q, tbl, col, other, pi, bound, preds, tuples)
			}
		}
	}
	// Materialize and filter by local predicates.
	var rows []storage.Row
	if q.Input.Kind == qgm.BoxBase {
		tbl := ex.db.Table(q.Input.Table.Name)
		if tbl == nil {
			return nil, fmt.Errorf("exec: table %q has no storage", q.Input.Table.Name)
		}
		scanned, err := tbl.Scan()
		if err != nil {
			return nil, err
		}
		bump(&ex.Stats.RowsScanned, int64(len(scanned)))
		if err := ex.govRows(len(scanned)); err != nil {
			return nil, err
		}
		ex.recordProfile(q.Input, len(scanned), 0)
		rows = scanned
	} else {
		var err error
		rows, err = ex.evalBox(q.Input, env)
		if err != nil {
			return nil, err
		}
	}
	rows, err := ex.filterLocal(q, preds, rows, env)
	if err != nil {
		return nil, err
	}
	// Hash join on equality predicates connecting q to the bound set.
	var qSides, boundSides []qgm.Expr
	for _, pi := range preds {
		if pi.applied || pi.sub != nil || !pi.deps[q] {
			continue
		}
		if !depsSubset(pi.deps, bound, q) {
			continue
		}
		if qs, bs, ok := splitEqui(pi.expr, q, bound); ok {
			qSides = append(qSides, qs)
			boundSides = append(boundSides, bs)
			pi.applied = true
		}
	}
	if len(qSides) > 0 {
		if err := ex.hashBuildCheck(rows); err != nil {
			return nil, err
		}
		bump(&ex.Stats.HashBuilds, 1)
		// Build side: hash keys evaluate in parallel, the table fills
		// sequentially in row order so every bucket chain — and therefore
		// probe emission order — is deterministic.
		type buildKey struct {
			key  string
			skip bool
		}
		keys, err := parallelMap(ex, rows, rowMorsel, func(r storage.Row) (buildKey, error) {
			renv := Bind(env, q, r)
			key, null, err := ex.keyFor(qSides, renv)
			if err != nil {
				return buildKey{}, err
			}
			return buildKey{key: key, skip: null}, nil
		})
		if err != nil {
			return nil, err
		}
		h := make(map[string][]int, len(rows))
		for i, bk := range keys {
			if !bk.skip {
				h[bk.key] = append(h[bk.key], i)
			}
		}
		out, err := parallelFlatMap(ex, tuples, rowMorsel, func(t *Env) ([]*Env, error) {
			key, null, err := ex.keyFor(boundSides, t)
			if err != nil {
				return nil, err
			}
			if null {
				return nil, nil
			}
			ids := h[key]
			matched := make([]*Env, len(ids))
			for i, id := range ids {
				matched[i] = Bind(t, q, rows[id])
			}
			return matched, nil
		})
		if err != nil {
			return nil, err
		}
		bump(&ex.Stats.RowsJoined, int64(len(out)))
		if err := ex.govRows(len(out)); err != nil {
			return nil, err
		}
		return out, nil
	}
	// Nested-loop (cross product; residual predicates apply via applyReady).
	out, err := parallelFlatMap(ex, tuples, rowMorsel, func(t *Env) ([]*Env, error) {
		joined := make([]*Env, len(rows))
		for i, r := range rows {
			joined[i] = Bind(t, q, r)
		}
		return joined, nil
	})
	if err != nil {
		return nil, err
	}
	bump(&ex.Stats.RowsJoined, int64(len(out)))
	if err := ex.govRows(len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

// keyFor evaluates the key expressions under env; null=true when any
// component is NULL (null join keys never match).
func (ex *Exec) keyFor(exprs []qgm.Expr, env *Env) (string, bool, error) {
	vals := make([]sqltypes.Value, len(exprs))
	for i, e := range exprs {
		v, err := ex.EvalExpr(e, env)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		vals[i] = v
	}
	return string(sqltypes.AppendKey(nil, vals...)), false, nil
}

// filterLocal applies predicates referencing only q (plus outer bindings).
func (ex *Exec) filterLocal(q *qgm.Quantifier, preds []*selPred, rows []storage.Row, env *Env) ([]storage.Row, error) {
	var local []*selPred
	for _, pi := range preds {
		if pi.applied || pi.sub != nil {
			continue
		}
		if len(pi.deps) == 1 && pi.deps[q] {
			local = append(local, pi)
		}
	}
	if len(local) == 0 {
		return rows, nil
	}
	out, err := parallelFilter(ex, rows, rowMorsel, func(r storage.Row) (bool, error) {
		renv := Bind(env, q, r)
		for _, pi := range local {
			tr, err := ex.EvalPred(pi.expr, renv)
			if err != nil {
				return false, err
			}
			if tr != sqltypes.True {
				return false, nil
			}
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	for _, pi := range local {
		pi.applied = true
	}
	return out, nil
}

// findIndexPred locates an unapplied equality predicate of the form
// q.col = <expr over bound/outer> where tbl has an index on col.
func findIndexPred(q *qgm.Quantifier, bound map[*qgm.Quantifier]bool, preds []*selPred, tbl *storage.Table) (*selPred, int, qgm.Expr) {
	for _, pi := range preds {
		if pi.applied || pi.sub != nil || !pi.deps[q] {
			continue
		}
		if !depsSubset(pi.deps, bound, q) {
			continue
		}
		bin, ok := pi.expr.(*qgm.Bin)
		if !ok || bin.Op != qgm.OpEq {
			continue
		}
		for _, try := range [][2]qgm.Expr{{bin.L, bin.R}, {bin.R, bin.L}} {
			ref, ok := try[0].(*qgm.ColRef)
			if !ok || ref.Q != q {
				continue
			}
			if qgm.RefsQuant(try[1], q) {
				continue
			}
			if tbl.HasIndex(ref.Col) {
				return pi, ref.Col, try[1]
			}
		}
	}
	return nil, 0, nil
}

// indexBind performs an index (nested-loop) join: for each tuple, probe the
// base table's hash index, then filter remaining local predicates.
func (ex *Exec) indexBind(q *qgm.Quantifier, tbl *storage.Table, col int, other qgm.Expr, ipred *selPred, bound map[*qgm.Quantifier]bool, preds []*selPred, tuples []*Env) ([]*Env, error) {
	ipred.applied = true
	var local []*selPred
	for _, pi := range preds {
		if pi.applied || pi.sub != nil {
			continue
		}
		if pi.deps[q] && depsSubset(pi.deps, bound, q) {
			local = append(local, pi)
			pi.applied = true
		}
	}
	out, err := parallelFlatMap(ex, tuples, rowMorsel, func(t *Env) ([]*Env, error) {
		v, err := ex.EvalExpr(other, t)
		if err != nil {
			return nil, err
		}
		ids, ok := tbl.Lookup(col, v)
		if !ok {
			return nil, fmt.Errorf("exec: index on %s.%d vanished mid-plan", tbl.Def.Name, col)
		}
		bump(&ex.Stats.IndexLookups, 1)
		var matched []*Env
		for _, id := range ids {
			renv := Bind(t, q, tbl.Rows[id])
			keep := true
			for _, pi := range local {
				tr, err := ex.EvalPred(pi.expr, renv)
				if err != nil {
					return nil, err
				}
				if tr != sqltypes.True {
					keep = false
					break
				}
			}
			if keep {
				matched = append(matched, renv)
			}
		}
		return matched, nil
	})
	if err != nil {
		return nil, err
	}
	bump(&ex.Stats.RowsJoined, int64(len(out)))
	if err := ex.govRows(len(out)); err != nil {
		return nil, err
	}
	ex.recordProfile(q.Input, len(out), 0)
	return out, nil
}

// depsSubset reports whether deps ⊆ bound ∪ {q}.
func depsSubset(deps, bound map[*qgm.Quantifier]bool, q *qgm.Quantifier) bool {
	for d := range deps {
		if d != q && !bound[d] {
			return false
		}
	}
	return true
}

// splitEqui decomposes p as qSideExpr = boundSideExpr where the q side
// references q (and possibly outer quantifiers) and the bound side only
// bound/outer quantifiers.
func splitEqui(p qgm.Expr, q *qgm.Quantifier, bound map[*qgm.Quantifier]bool) (qSide, boundSide qgm.Expr, ok bool) {
	bin, isBin := p.(*qgm.Bin)
	if !isBin || bin.Op != qgm.OpEq {
		return nil, nil, false
	}
	sideOK := func(e qgm.Expr, wantQ bool) bool {
		hasQ := false
		for qq := range qgm.QuantSet(e) {
			if qq == q {
				hasQ = true
			} else if qq.Owner == q.Owner && !bound[qq] {
				return false
			}
		}
		return hasQ == wantQ
	}
	if sideOK(bin.L, true) && sideOK(bin.R, false) {
		return bin.L, bin.R, true
	}
	if sideOK(bin.R, true) && sideOK(bin.L, false) {
		return bin.R, bin.L, true
	}
	return nil, nil, false
}
