// Columnar select evaluation: the vectorized phase 1 (colSelectBatch,
// mirroring selectTuples) and phase 2 (colProjectRows, mirroring
// projectTuples). The join order, predicate placement, index/hash/cross
// dispatch, statistics bumps, governance charges, and fault-injection
// points are the row path's exactly — only the unit of work changes from
// one bound tuple to one column-batch morsel. Hash joins replace the
// per-row string-keyed map with an arena hash table: all key encodings
// live in one []byte, buckets are power-of-two FNV-1a, and chains emit in
// ascending build-row order so probe output matches the row engine's
// append-built map buckets row for row.
package exec

import (
	"bytes"
	"fmt"

	"decorr/internal/colvec"
	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// colSelectable reports whether the vectorized engine can evaluate select
// box b: every quantifier is a plain ForEach over either a stored base
// table or an uncorrelated derived input (evaluated through evalBox and
// re-columnarized at the boundary). Subqueries, laterals, and synthetic
// relations stay on the row path, and every predicate and output
// expression must vectorize.
func (ex *Exec) colSelectable(b *qgm.Box) bool {
	own := map[*qgm.Quantifier]bool{}
	for _, q := range b.Quants {
		own[q] = true
	}
	for _, q := range b.Quants {
		if q.Kind != qgm.QForEach {
			return false
		}
		if q.Input.Kind == qgm.BoxBase {
			tbl := ex.db.Table(q.Input.Table.Name)
			if tbl == nil || tbl.Synthetic() {
				return false
			}
		} else if len(ownDeps(q, own)) > 0 {
			// Lateral derived table: re-evaluates per tuple on the row path.
			return false
		}
	}
	for _, p := range b.Preds {
		if !colExprOK(p) {
			return false
		}
	}
	for _, c := range b.Cols {
		if !colExprOK(c.Expr) {
			return false
		}
	}
	return true
}

// colEvalSelect is the vectorized evalSelect: phase 1 builds the bound
// batch, phase 2 projects it to rows at the materialization boundary.
func (ex *Exec) colEvalSelect(b *qgm.Box, env *Env) ([]storage.Row, error) {
	batch, err := ex.colSelectBatch(b, env)
	if err != nil || batch == nil || len(batch.sel) == 0 {
		return nil, err
	}
	out, err := ex.colProjectRows(b, batch, batch.sel, env)
	if err != nil {
		return nil, err
	}
	if b.Distinct {
		out = dedupeRows(out)
	}
	return out, nil
}

// colSelectBatch is the vectorized selectTuples: it binds the ForEach
// quantifiers in the same greedy join order, applies each predicate at the
// same point, and returns the fully bound, fully filtered batch (nil when
// the result is empty).
func (ex *Exec) colSelectBatch(b *qgm.Box, env *Env) (*colBatch, error) {
	own := map[*qgm.Quantifier]bool{}
	for _, q := range b.Quants {
		own[q] = true
	}
	preds := make([]*selPred, 0, len(b.Preds))
	for _, p := range b.Preds {
		pi := &selPred{expr: p, deps: map[*qgm.Quantifier]bool{}}
		for q := range qgm.QuantSet(p) {
			if own[q] {
				pi.deps[q] = true
			}
		}
		preds = append(preds, pi)
	}

	order := ex.JoinOrder(b)
	bound := map[*qgm.Quantifier]bool{}
	// The seed batch is the row path's single outer tuple: one live row
	// with no bound quantifiers, so predicates over only outer bindings
	// and constants can apply before the first join.
	batch := &colBatch{phys: 1, sel: []int32{0}}

	depsBound := func(deps map[*qgm.Quantifier]bool) bool {
		for d := range deps {
			if !bound[d] {
				return false
			}
		}
		return true
	}
	applyReady := func() error {
		for _, pi := range preds {
			if pi.applied || !depsBound(pi.deps) {
				continue
			}
			pi.applied = true
			if err := ex.colFilterBatch(batch, pi.expr, env); err != nil {
				return err
			}
		}
		return nil
	}
	if err := applyReady(); err != nil {
		return nil, err
	}
	for _, q := range order {
		if len(batch.sel) == 0 {
			return nil, nil
		}
		next, err := ex.colBindForEach(q, bound, preds, batch, env)
		if err != nil {
			return nil, err
		}
		batch = next
		bound[q] = true
		if err := applyReady(); err != nil {
			return nil, err
		}
	}
	if len(batch.sel) == 0 {
		return nil, nil
	}
	for _, pi := range preds {
		if !pi.applied {
			return nil, fmt.Errorf("exec: predicate %s left unapplied in box %d", qgm.FormatExpr(pi.expr), b.ID)
		}
	}
	return batch, nil
}

// colFilterBatch narrows the batch's selection vector to the rows where e
// is TRUE. Column data is never copied — only the index list shrinks.
func (ex *Exec) colFilterBatch(b *colBatch, e qgm.Expr, env *Env) error {
	kept, err := parallelChunks(ex, len(b.sel), colMorsel, func(lo, hi int) ([]int32, error) {
		idx := b.sel[lo:hi]
		tris, err := ex.colEvalPred(e, b, idx, env)
		if err != nil {
			return nil, err
		}
		out := idx[:0:0]
		for k, t := range tris {
			if t == sqltypes.True {
				out = append(out, idx[k])
			}
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	b.sel = concat(kept)
	return nil
}

// colBindForEach is the vectorized bindForEach: index lookup (base tables
// only), then hash join, then cross product, with the same predicate
// consumption and the same statistics at each exit. Derived inputs
// materialize through evalBox — the row path's exact call, so its
// bookkeeping carries over — and re-columnarize at the boundary.
func (ex *Exec) colBindForEach(q *qgm.Quantifier, bound map[*qgm.Quantifier]bool, preds []*selPred, batch *colBatch, env *Env) (*colBatch, error) {
	var vecs []colvec.Vec
	var phys int
	if q.Input.Kind == qgm.BoxBase {
		tbl := ex.db.Table(q.Input.Table.Name)
		if tbl == nil {
			return nil, fmt.Errorf("exec: table %q has no storage", q.Input.Table.Name)
		}
		if pi, col, other := findIndexPred(q, bound, preds, tbl); pi != nil {
			return ex.colIndexBind(q, tbl, col, other, pi, bound, preds, batch, env)
		}
		// Scan. Table.Scan stays the fault-injection point; the cached
		// column vectors carry the same rows (eligibility excluded synthetic
		// tables, whose vectors could go stale).
		scanned, err := tbl.Scan()
		if err != nil {
			return nil, err
		}
		bump(&ex.Stats.RowsScanned, int64(len(scanned)))
		if err := ex.govRows(len(scanned)); err != nil {
			return nil, err
		}
		vecs, phys = nil, len(scanned)
		if v, ok := tbl.ColVecs(); ok && colLen(v) == len(scanned) {
			vecs = v
		} else {
			vecs = colsFromRows(scanned, len(tbl.Def.Columns))
		}
	} else if in := q.Input; in.Kind == qgm.BoxSelect && ex.colSel[in] && !in.Distinct &&
		ex.opts.Tracer == nil {
		// Fused select→select: the derived input is itself a vectorizable
		// select, so its output columns project straight into dense vectors
		// — no row materialization and re-columnarization round trip.
		var err error
		vecs, phys, err = ex.colInputVecs(in, env)
		if err != nil {
			return nil, err
		}
	} else {
		rows, err := ex.evalBox(q.Input, env)
		if err != nil {
			return nil, err
		}
		vecs, phys = colsFromRows(rows, len(q.Input.Cols)), len(rows)
	}
	qb := &colBatch{phys: phys, sel: ex.identity(phys),
		quants: []*qgm.Quantifier{q}, cols: [][]colvec.Vec{vecs}}
	// Local predicates narrow the scan before any join. The row path
	// tests them row-major (all predicates per row); one predicate per
	// pass over the survivors keeps the same result set — which of two
	// co-failing predicates' errors surfaces first may differ, the
	// documented vector-major divergence.
	var local []*selPred
	for _, pi := range preds {
		if !pi.applied && pi.sub == nil && len(pi.deps) == 1 && pi.deps[q] {
			local = append(local, pi)
		}
	}
	for _, pi := range local {
		if err := ex.colFilterBatch(qb, pi.expr, env); err != nil {
			return nil, err
		}
	}
	for _, pi := range local {
		pi.applied = true
	}
	// Hash join on equality predicates connecting q to the bound set.
	var qSides, boundSides []qgm.Expr
	for _, pi := range preds {
		if pi.applied || pi.sub != nil || !pi.deps[q] {
			continue
		}
		if !depsSubset(pi.deps, bound, q) {
			continue
		}
		if qs, bs, ok := splitEqui(pi.expr, q, bound); ok {
			qSides = append(qSides, qs)
			boundSides = append(boundSides, bs)
			pi.applied = true
		}
	}
	if len(qSides) > 0 {
		if err := ex.colHashBuildCheck(vecs, qb.sel); err != nil {
			return nil, err
		}
		bump(&ex.Stats.HashBuilds, 1)
		ht, err := ex.colBuildHash(qSides, qb, env)
		if err != nil {
			return nil, err
		}
		tupleIdx, rowIdx, err := ex.colProbeHash(ht, boundSides, batch, env)
		if err != nil {
			return nil, err
		}
		joined, err := ex.colJoin(batch, tupleIdx, q, vecs, rowIdx)
		if err != nil {
			return nil, err
		}
		bump(&ex.Stats.RowsJoined, int64(len(joined.sel)))
		if err := ex.govRows(len(joined.sel)); err != nil {
			return nil, err
		}
		return joined, nil
	}
	// Cross product (residual predicates apply via applyReady).
	nq := len(qb.sel)
	pairs, err := parallelChunks(ex, len(batch.sel), colMorsel, func(lo, hi int) (colPairs, error) {
		p := colPairs{
			tuple: make([]int32, 0, (hi-lo)*nq),
			row:   make([]int32, 0, (hi-lo)*nq),
		}
		for _, t := range batch.sel[lo:hi] {
			for _, r := range qb.sel {
				p.tuple = append(p.tuple, t)
				p.row = append(p.row, r)
			}
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	tupleIdx, rowIdx := flattenPairs(pairs)
	joined, err := ex.colJoin(batch, tupleIdx, q, vecs, rowIdx)
	if err != nil {
		return nil, err
	}
	bump(&ex.Stats.RowsJoined, int64(len(joined.sel)))
	if err := ex.govRows(len(joined.sel)); err != nil {
		return nil, err
	}
	return joined, nil
}

// colPairs is one chunk's join output: parallel arrays of probe-side
// (tuple) and build-side (row) physical indices.
type colPairs struct {
	tuple, row []int32
}

func flattenPairs(chunks []colPairs) (tuple, row []int32) {
	if len(chunks) == 1 {
		return chunks[0].tuple, chunks[0].row
	}
	n := 0
	for _, c := range chunks {
		n += len(c.tuple)
	}
	tuple = make([]int32, 0, n)
	row = make([]int32, 0, n)
	for _, c := range chunks {
		tuple = append(tuple, c.tuple...)
		row = append(row, c.row...)
	}
	return tuple, row
}

// colJoin assembles the batch after joining q: when nothing was bound
// before (the first ForEach), the pair row indices simply become the new
// selection vector over the table's shared vectors — zero copies;
// otherwise all sides gather into a dense batch.
func (ex *Exec) colJoin(batch *colBatch, tupleIdx []int32, q *qgm.Quantifier, qVecs []colvec.Vec, rowIdx []int32) (*colBatch, error) {
	if len(batch.quants) == 0 {
		return &colBatch{phys: colLen(qVecs), sel: rowIdx,
			quants: []*qgm.Quantifier{q}, cols: [][]colvec.Vec{qVecs}}, nil
	}
	return ex.joinGather(batch, tupleIdx, q, qVecs, rowIdx)
}

func colLen(vecs []colvec.Vec) int {
	if len(vecs) == 0 {
		return 0
	}
	return vecs[0].Len()
}

// colKeyChunk is one chunk's evaluated join- or group-key columns: vecs[j]
// aligns with the chunk's index list, null[k] marks rows with a NULL key
// component (never matched, never inserted).
type colKeyChunk struct {
	vecs []colvec.Vec
	null []bool
}

// colKeyCols evaluates multi-column key expressions over the chunk with
// the row path's short-circuit: keyFor stops at a tuple's first NULL
// component, so expression j+1 must never evaluate on a row whose
// component j was NULL. The live subset narrows after each nullable
// component; narrowed results scatter back into chunk-aligned vectors.
func (ex *Exec) colKeyCols(exprs []qgm.Expr, b *colBatch, idx []int32, env *Env) (colKeyChunk, error) {
	ck := colKeyChunk{vecs: make([]colvec.Vec, len(exprs)), null: make([]bool, len(idx))}
	live := idx
	var livePos []int // nil while live == idx (identity)
	for j, e := range exprs {
		if len(live) == 0 {
			break
		}
		v, err := ex.colEval(e, b, live, env)
		if err != nil {
			return colKeyChunk{}, err
		}
		if livePos == nil {
			ck.vecs[j] = v
		} else {
			full := make([]sqltypes.Value, len(idx))
			for k := range live {
				full[livePos[k]] = v.Value(k)
			}
			ck.vecs[j] = colvec.FromMixed(full)
		}
		if !v.HasNulls() {
			continue
		}
		var nl []int32
		var np []int
		for k := range live {
			pos := k
			if livePos != nil {
				pos = livePos[k]
			}
			if v.IsNull(k) {
				ck.null[pos] = true
			} else {
				nl = append(nl, live[k])
				np = append(np, pos)
			}
		}
		live, livePos = nl, np
	}
	return ck, nil
}

// appendChunkKey appends row k's full key encoding — identical bytes to
// sqltypes.Key over the boxed key values.
func (ck *colKeyChunk) appendChunkKey(dst []byte, k int) []byte {
	for j := range ck.vecs {
		dst = ck.vecs[j].AppendKeyAt(dst, k)
	}
	return dst
}

// colHashTable is the arena-backed build side of a vectorized hash join:
// every key's encoding lives in one arena (off[i]:off[i+1] spans entry i),
// buckets are open chains over a power-of-two table. Entries append in
// build-row order and buckets fill by reverse-order head insertion, so
// each chain lists entries in ascending build order — the same candidate
// order the row engine's append-built map buckets produce, keeping probe
// output bit-identical.
type colHashTable struct {
	arena []byte
	off   []int
	hash  []uint64
	row   []int32
	head  []int32
	next  []int32
	mask  uint64

	// Typed mode: when the build side's single key column is a typed
	// integer vector, keys are stored and compared as int64 and the arena
	// stays empty. Chain order (ascending build order per bucket) does not
	// depend on the hash function, so probe output stays bit-identical to
	// the encoded mode and to the row engine.
	intKeys bool
	ints    []int64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// hashInt64 is the typed-key hash (splitmix64 finalizer).
func hashInt64(x int64) uint64 {
	h := uint64(x)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// intKeyOf converts a probe value into the typed integer key space — the
// same exact conversion an integer index applies to a float probe.
// ok=false means the value can never equal an integer key.
func intKeyOf(v sqltypes.Value) (int64, bool) {
	switch v.K {
	case sqltypes.KindInt:
		return v.I, true
	case sqltypes.KindFloat:
		f := v.F
		if f >= -9223372036854775808 && f < 9223372036854775808 {
			if i := int64(f); float64(i) == f {
				return i, true
			}
		}
	}
	return 0, false
}

// colBuildHash evaluates the build-side key columns chunk-parallel and
// fills the table sequentially in build-row order (the row path's exact
// structure: parallel key evaluation, deterministic sequential fill).
func (ex *Exec) colBuildHash(exprs []qgm.Expr, qb *colBatch, env *Env) (*colHashTable, error) {
	sel := qb.sel
	chunks, err := parallelChunks(ex, len(sel), colMorsel, func(lo, hi int) (colKeyChunk, error) {
		return ex.colKeyCols(exprs, qb, sel[lo:hi], env)
	})
	if err != nil {
		return nil, err
	}
	n := 0
	for _, ck := range chunks {
		for _, isNull := range ck.null {
			if !isNull {
				n++
			}
		}
	}
	ht := &colHashTable{
		hash: make([]uint64, 0, n),
		row:  make([]int32, 0, n),
	}
	intKeys := len(exprs) == 1
	for _, ck := range chunks {
		if intKeys && !(ck.vecs[0].K == sqltypes.KindInt && ck.vecs[0].Mixed == nil) {
			intKeys = false
		}
	}
	pos := 0
	if intKeys {
		ht.intKeys = true
		ht.ints = make([]int64, 0, n)
		for _, ck := range chunks {
			for k := range ck.null {
				phys := sel[pos]
				pos++
				if ck.null[k] {
					continue
				}
				key := ck.vecs[0].Ints[k]
				ht.ints = append(ht.ints, key)
				ht.hash = append(ht.hash, hashInt64(key))
				ht.row = append(ht.row, phys)
			}
		}
	} else {
		ht.off = make([]int, 1, n+1)
		for _, ck := range chunks {
			for k := range ck.null {
				phys := sel[pos]
				pos++
				if ck.null[k] {
					continue
				}
				ht.arena = ck.appendChunkKey(ht.arena, k)
				ht.off = append(ht.off, len(ht.arena))
				ht.hash = append(ht.hash, fnv1a(ht.arena[ht.off[len(ht.off)-2]:]))
				ht.row = append(ht.row, phys)
			}
		}
	}
	nb := 1
	for nb < len(ht.row) {
		nb <<= 1
	}
	ht.mask = uint64(nb - 1)
	ht.head = make([]int32, nb)
	for i := range ht.head {
		ht.head[i] = -1
	}
	ht.next = make([]int32, len(ht.row))
	for i := len(ht.row) - 1; i >= 0; i-- {
		b := ht.hash[i] & ht.mask
		ht.next[i] = ht.head[b]
		ht.head[b] = int32(i)
	}
	return ht, nil
}

// colProbeHash probes the table with the batch's key columns, emitting
// matches in (probe order, ascending build order) — the row path's
// emission order.
func (ex *Exec) colProbeHash(ht *colHashTable, exprs []qgm.Expr, batch *colBatch, env *Env) (tuple, row []int32, err error) {
	chunks, err := parallelChunks(ex, len(batch.sel), colMorsel, func(lo, hi int) (colPairs, error) {
		idx := batch.sel[lo:hi]
		ck, err := ex.colKeyCols(exprs, batch, idx, env)
		if err != nil {
			return colPairs{}, err
		}
		var p colPairs
		if ht.intKeys {
			if v := &ck.vecs[0]; v.K == sqltypes.KindInt && v.Mixed == nil {
				// Typed probe: int64 keys straight from the vector.
				for k := range idx {
					if ck.null[k] {
						continue
					}
					key := v.Ints[k]
					for e := ht.head[hashInt64(key)&ht.mask]; e >= 0; e = ht.next[e] {
						if ht.ints[e] == key {
							p.tuple = append(p.tuple, idx[k])
							p.row = append(p.row, ht.row[e])
						}
					}
				}
				return p, nil
			}
			for k := range idx {
				if ck.null[k] {
					continue
				}
				key, ok := intKeyOf(ck.vecs[0].Value(k))
				if !ok {
					continue // can never equal an integer build key
				}
				for e := ht.head[hashInt64(key)&ht.mask]; e >= 0; e = ht.next[e] {
					if ht.ints[e] == key {
						p.tuple = append(p.tuple, idx[k])
						p.row = append(p.row, ht.row[e])
					}
				}
			}
			return p, nil
		}
		var buf []byte
		for k := range idx {
			if ck.null[k] {
				continue
			}
			buf = ck.appendChunkKey(buf[:0], k)
			h := fnv1a(buf)
			for e := ht.head[h&ht.mask]; e >= 0; e = ht.next[e] {
				if ht.hash[e] == h && bytes.Equal(ht.arena[ht.off[e]:ht.off[e+1]], buf) {
					p.tuple = append(p.tuple, idx[k])
					p.row = append(p.row, ht.row[e])
				}
			}
		}
		return p, nil
	})
	if err != nil {
		return nil, nil, err
	}
	tuple, row = flattenPairs(chunks)
	return tuple, row, nil
}

// colIndexBind is the vectorized indexBind: per probe row the table's
// hash index supplies candidate ids, then the locally applicable
// predicates filter the joined batch. The row path reads indexed rows
// directly (no Scan), so there is no scan fault point or RowsScanned bump
// here either.
func (ex *Exec) colIndexBind(q *qgm.Quantifier, tbl *storage.Table, col int, other qgm.Expr, ipred *selPred, bound map[*qgm.Quantifier]bool, preds []*selPred, batch *colBatch, env *Env) (*colBatch, error) {
	ipred.applied = true
	var local []*selPred
	for _, pi := range preds {
		if pi.applied || pi.sub != nil {
			continue
		}
		if pi.deps[q] && depsSubset(pi.deps, bound, q) {
			local = append(local, pi)
			pi.applied = true
		}
	}
	intIdx := tbl.IntIndex(col)
	chunks, err := parallelChunks(ex, len(batch.sel), colMorsel, func(lo, hi int) (colPairs, error) {
		idx := batch.sel[lo:hi]
		v, err := ex.colEval(other, batch, idx, env)
		if err != nil {
			return colPairs{}, err
		}
		if intIdx != nil && v.K == sqltypes.KindInt && v.Mixed == nil {
			// Typed probe: int64 keys straight from the column vector into
			// the index's integer map — no per-row boxing or key encoding.
			// Probe twice: a counting pass sizes the pair arrays exactly
			// (index fan-out can exceed the chunk size, and append-doubling
			// on the output pair lists is pure waste), then a fill pass.
			// The duplicate map accesses are cheaper than the GC pressure of
			// remembering the per-probe hit slices.
			total := 0
			for k, key := range v.Ints {
				if !v.IsNull(k) {
					total += len(intIdx[key])
				}
			}
			p := colPairs{
				tuple: make([]int32, 0, total),
				row:   make([]int32, 0, total),
			}
			for k, key := range v.Ints {
				if v.IsNull(k) {
					continue
				}
				for _, id := range intIdx[key] {
					p.tuple = append(p.tuple, idx[k])
					p.row = append(p.row, int32(id))
				}
			}
			bump(&ex.Stats.IndexLookups, int64(len(idx)))
			return p, nil
		}
		p := colPairs{
			tuple: make([]int32, 0, hi-lo),
			row:   make([]int32, 0, hi-lo),
		}
		var buf []byte
		looked := 0
		for k := range idx {
			var ids []int
			var ok bool
			ids, buf, ok = tbl.LookupBuf(col, v.Value(k), buf)
			if !ok {
				bump(&ex.Stats.IndexLookups, int64(looked))
				return colPairs{}, fmt.Errorf("exec: index on %s.%d vanished mid-plan", tbl.Def.Name, col)
			}
			looked++
			for _, id := range ids {
				p.tuple = append(p.tuple, idx[k])
				p.row = append(p.row, int32(id))
			}
		}
		// One atomic add per chunk, same total as the row path's per-lookup
		// bumps.
		bump(&ex.Stats.IndexLookups, int64(looked))
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	tupleIdx, rowIdx := flattenPairs(chunks)
	qVecs, ok := tbl.ColVecs()
	if !ok || colLen(qVecs) != len(tbl.Rows) {
		qVecs = colsFromRows(tbl.Rows, len(tbl.Def.Columns))
	}
	joined, err := ex.colJoin(batch, tupleIdx, q, qVecs, rowIdx)
	if err != nil {
		return nil, err
	}
	for _, pi := range local {
		if err := ex.colFilterBatch(joined, pi.expr, env); err != nil {
			return nil, err
		}
	}
	bump(&ex.Stats.RowsJoined, int64(len(joined.sel)))
	if err := ex.govRows(len(joined.sel)); err != nil {
		return nil, err
	}
	return joined, nil
}

// cseVecEntry is the columnar form of a CSE cache entry: the dense output
// vectors of a shared uncorrelated select, cached so every fused consumer
// skips the row round trip. Content-identical to the rows ex.cse would
// hold, so the two caches can coexist — whichever consumer evaluates the
// box first decides which representation materializes.
type cseVecEntry struct {
	vecs []colvec.Vec
	phys int
}

// colInputVecs returns the dense output vectors of a vectorizable select
// input — the fused select→select boundary. It replicates evalBox's
// bookkeeping exactly (cancellation checkpoint, BoxEvals, CSE policy and
// byte-budget charge for shared uncorrelated boxes) so statistics,
// governance, and typed errors stay bit-identical to the row path while
// rows never materialize.
func (ex *Exec) colInputVecs(in *qgm.Box, env *Env) ([]colvec.Vec, int, error) {
	if err := ex.gov.checkpoint(); err != nil {
		return nil, 0, err
	}
	bump(&ex.Stats.BoxEvals, 1)
	shared := ex.refCount[in] > 1
	uncorrelated := !ex.isCorrelated(in)
	if shared && uncorrelated {
		ex.mu.Lock()
		rows, rok := ex.cse[in]
		ve := ex.cseVecs[in]
		ex.mu.Unlock()
		if rok || ve != nil {
			if ex.opts.MaterializeCSE {
				if ve != nil {
					return ve.vecs, ve.phys, nil
				}
				// A row consumer materialized first; columnarize its rows
				// once and cache the vectors for later fused consumers.
				ve = &cseVecEntry{vecs: colsFromRows(rows, len(in.Cols)), phys: len(rows)}
				ex.mu.Lock()
				if prior := ex.cseVecs[in]; prior != nil {
					ve = prior
				} else {
					ex.cseVecs[in] = ve
				}
				ex.mu.Unlock()
				return ve.vecs, ve.phys, nil
			}
			bump(&ex.Stats.CSERecomputes, 1)
		}
	}
	batch, err := ex.colSelectBatch(in, env)
	if err != nil {
		return nil, 0, err
	}
	vecs, phys, err := ex.colProjectVecs(in, batch, env)
	if err != nil {
		return nil, 0, err
	}
	if shared && uncorrelated {
		// The row path charges every compute of a shared box against the
		// byte budget; colBytes reproduces rowsBytes bit for bit.
		if ex.gov != nil && ex.gov.maxBytes != 0 {
			if err := ex.gov.addBytes(colBytes(vecs, ex.identity(phys))); err != nil {
				return nil, 0, err
			}
		}
		ex.mu.Lock()
		if prior := ex.cseVecs[in]; prior != nil {
			vecs, phys = prior.vecs, prior.phys // a racing store won
		} else {
			ex.cseVecs[in] = &cseVecEntry{vecs: vecs, phys: phys}
		}
		ex.mu.Unlock()
	}
	return vecs, phys, nil
}

// colProjectVecs projects a select batch's output expressions to dense
// column vectors — the fused select→select boundary, where the parent
// binds the child's output without ever materializing rows. A nil or
// empty batch yields zero-length vectors.
func (ex *Exec) colProjectVecs(b *qgm.Box, batch *colBatch, env *Env) ([]colvec.Vec, int, error) {
	vecs := make([]colvec.Vec, len(b.Cols))
	if batch == nil || len(batch.sel) == 0 {
		for c := range vecs {
			vecs[c] = colvec.FromMixed(nil)
		}
		return vecs, 0, nil
	}
	for c := range b.Cols {
		v, err := ex.colEval(b.Cols[c].Expr, batch, batch.sel, env)
		if err != nil {
			return nil, 0, err
		}
		vecs[c] = v
	}
	return vecs, len(batch.sel), nil
}

// colProjectRows is the vectorized projectTuples: each chunk evaluates the
// output expressions as vectors, then materializes rows — the boundary
// back to the row representation.
func (ex *Exec) colProjectRows(b *qgm.Box, batch *colBatch, sel []int32, env *Env) ([]storage.Row, error) {
	chunks, err := parallelChunks(ex, len(sel), colMorsel, func(lo, hi int) ([]storage.Row, error) {
		idx := sel[lo:hi]
		vecs := make([]colvec.Vec, len(b.Cols))
		for c := range b.Cols {
			v, err := ex.colEval(b.Cols[c].Expr, batch, idx, env)
			if err != nil {
				return nil, err
			}
			vecs[c] = v
		}
		out := make([]storage.Row, len(idx))
		// One value arena per chunk instead of one allocation per row;
		// rows are immutable downstream, so slicing a shared backing
		// array is safe.
		arena := make([]sqltypes.Value, len(idx)*len(vecs))
		for k := range idx {
			row := storage.Row(arena[k*len(vecs) : (k+1)*len(vecs) : (k+1)*len(vecs)])
			for c := range vecs {
				row[c] = vecs[c].Value(k)
			}
			out[k] = row
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return concat(chunks), nil
}
