package exec

import (
	"fmt"
	"strings"
	"time"

	"decorr/internal/qgm"
)

// BoxProfile accumulates per-box runtime counters when profiling is on.
type BoxProfile struct {
	// Evals counts how many times the box was evaluated (correlated boxes
	// evaluate once per binding; shared uncorrelated ones once per
	// reference under the recompute policy).
	Evals int64
	// RowsOut is the total number of rows the box produced across evals.
	RowsOut int64
	// Nanos is the total wall-clock time spent evaluating the box
	// (inclusive of its inputs, since box evaluation is recursive).
	Nanos int64
}

// Elapsed returns the accumulated wall time as a duration.
func (p BoxProfile) Elapsed() time.Duration { return time.Duration(p.Nanos) }

// EnableProfiling starts collecting per-box counters for subsequent Runs.
func (ex *Exec) EnableProfiling() {
	if ex.profile == nil {
		ex.profile = map[*qgm.Box]*BoxProfile{}
	}
}

func (ex *Exec) recordProfile(b *qgm.Box, rows int, elapsed time.Duration) {
	if ex.profile == nil {
		return
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	p := ex.profile[b]
	if p == nil {
		p = &BoxProfile{}
		ex.profile[b] = p
	}
	p.Evals++
	p.RowsOut += int64(rows)
	p.Nanos += elapsed.Nanoseconds()
}

// BoxProfileOf returns the collected counters for a box (zero value when
// profiling was off or the box never evaluated).
func (ex *Exec) BoxProfileOf(b *qgm.Box) BoxProfile {
	if ex.profile == nil {
		return BoxProfile{}
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if p, ok := ex.profile[b]; ok {
		return *p
	}
	return BoxProfile{}
}

// boxSpanName labels a box's execution span.
func boxSpanName(b *qgm.Box) string {
	if b.Label != "" {
		return fmt.Sprintf("box %d %s [%s]", b.ID, b.Kind, b.Label)
	}
	if b.Kind == qgm.BoxBase && b.Table != nil {
		return fmt.Sprintf("box %d %s(%s)", b.ID, b.Kind, b.Table.Name)
	}
	return fmt.Sprintf("box %d %s", b.ID, b.Kind)
}

// FormatProfile renders the plan with per-box runtime annotations — the
// timed EXPLAIN ANALYZE view. Correlated subquery boxes show one eval per
// binding; the §5.1 CSE-recomputation behavior shows up as eval counts
// above one on shared boxes; time is cumulative wall-clock (inclusive of
// input evaluation).
func (ex *Exec) FormatProfile(g *qgm.Graph) string {
	var sb strings.Builder
	for _, b := range qgm.Boxes(g.Root) {
		p := ex.BoxProfileOf(b)
		tag := b.Label
		if tag != "" {
			tag = " [" + tag + "]"
		}
		fmt.Fprintf(&sb, "Box %d: %s%s  evals=%d rows=%d time=%s\n",
			b.ID, b.Kind, tag, p.Evals, p.RowsOut, p.Elapsed().Round(time.Microsecond))
	}
	return sb.String()
}
