package exec_test

import (
	"testing"

	"decorr/internal/exec"
	"decorr/internal/parser"
	"decorr/internal/qgm"
	"decorr/internal/semant"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

// orderOf binds sql against db and returns the join order of the box that
// owns the scalar subquery, as (position of scalar, names of inputs bound
// before it).
func orderOf(t *testing.T, db *storage.DB, sql string) (int, []string) {
	t.Helper()
	q, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.Bind(q, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	ex := exec.New(db, exec.Options{})
	for _, b := range qgm.Boxes(g.Root) {
		for _, qq := range b.Quants {
			if qq.Kind == qgm.QScalar {
				order := ex.JoinOrder(b)
				var before []string
				for i, oq := range order {
					if oq == qq {
						return i, before
					}
					label := "?"
					if oq.Input.Kind == qgm.BoxBase {
						label = oq.Input.Table.Name
					}
					_ = i
					before = append(before, label)
				}
				t.Fatal("scalar quantifier missing from join order")
			}
		}
	}
	t.Fatal("no scalar subquery in query")
	return 0, nil
}

// The paper's §5.3 observations about where the optimizer places the
// subquery: Query 1 runs it after the outer joins (they shrink the
// intermediate result), Query 2 runs it right after the Parts scan.
func TestJoinOrderSubqueryPlacement(t *testing.T) {
	db := tpcd.Generate(tpcd.Config{SF: 0.1, Seed: 42})

	pos, before := orderOf(t, db, tpcd.Query1)
	if pos != 3 {
		t.Errorf("Query 1: subquery at position %d after %v, want after all three joins", pos, before)
	}

	pos, before = orderOf(t, db, tpcd.Query2)
	if pos != 1 || before[0] != "parts" {
		t.Errorf("Query 2: subquery at position %d after %v, want right after parts", pos, before)
	}
}

func TestJoinOrderRespectsLateralDeps(t *testing.T) {
	db := tpcd.Generate(tpcd.Config{SF: 0.02, Seed: 42})
	q, err := parser.Parse(tpcd.Query3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.Bind(q, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	ex := exec.New(db, exec.Options{})
	order := ex.JoinOrder(g.Root)
	if len(order) != 2 {
		t.Fatalf("order length = %d", len(order))
	}
	// The lateral derived table references suppliers and must bind second.
	if order[0].Input.Kind != qgm.BoxBase || order[0].Input.Table.Name != "suppliers" {
		t.Errorf("first bound input = %v", order[0].Input.Label)
	}
}

func TestJoinOrderIncludesEveryQuantifierOnce(t *testing.T) {
	db := tpcd.EmpDept()
	q, err := parser.Parse(`
		select d.name from dept d, emp e
		where d.building = e.building
		  and exists (select * from emp e2 where e2.building = d.building)
		  and d.num_emps > (select count(*) from emp e3 where e3.building = d.building)`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.Bind(q, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	ex := exec.New(db, exec.Options{})
	order := ex.JoinOrder(g.Root)
	if len(order) != len(g.Root.Quants) {
		t.Fatalf("order has %d entries for %d quantifiers", len(order), len(g.Root.Quants))
	}
	seen := map[*qgm.Quantifier]bool{}
	for _, oq := range order {
		if seen[oq] {
			t.Fatal("quantifier appears twice in join order")
		}
		seen[oq] = true
	}
}
