package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

func TestNewGovernorNilWhenUnarmed(t *testing.T) {
	if g := newGovernor(nil, Limits{}); g != nil {
		t.Fatal("no ctx, no limits: governor should be nil")
	}
	if g := newGovernor(context.Background(), Limits{}); g != nil {
		t.Fatal("Background ctx (no done channel, no deadline) should not arm the governor")
	}
	// Every method must be nil-safe: the operators call them unconditionally.
	var g *governor
	if err := g.checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := g.addRows(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := g.addBytes(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := g.checkOutput(1 << 30); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := newGovernor(ctx, Limits{})
	if g == nil {
		t.Fatal("cancelable ctx should arm the governor")
	}
	err := g.checkpoint()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled ctx: got %v, want ErrCanceled", err)
	}
	// The trip is latched: every later checkpoint reports the same error.
	if err2 := g.checkpoint(); !errors.Is(err2, ErrCanceled) {
		t.Fatalf("latched trip lost: %v", err2)
	}
}

func TestCheckpointTimeout(t *testing.T) {
	g := newGovernor(nil, Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if err := g.checkpoint(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired Timeout: got %v, want ErrDeadlineExceeded", err)
	}
}

func TestCtxDeadlineMapsToDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	g := newGovernor(ctx, Limits{})
	if err := g.checkpoint(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired ctx deadline: got %v, want ErrDeadlineExceeded", err)
	}
}

func TestEarlierDeadlineWins(t *testing.T) {
	// ctx deadline is far out; Limits.Timeout is already expired.
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	g := newGovernor(ctx, Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if err := g.checkpoint(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("combined deadlines: got %v, want ErrDeadlineExceeded", err)
	}
}

func TestRowBudgetExactBoundary(t *testing.T) {
	g := newGovernor(nil, Limits{MaxIntermediateRows: 10})
	if err := g.addRows(10); err != nil {
		t.Fatalf("exactly at budget: %v", err)
	}
	err := g.addRows(1)
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("one over budget: got %v, want ErrRowBudget", err)
	}
	// Latched: subsequent checkpoints see the trip too.
	if err := g.checkpoint(); !errors.Is(err, ErrRowBudget) {
		t.Fatalf("checkpoint after row trip: %v", err)
	}
}

func TestByteBudget(t *testing.T) {
	g := newGovernor(nil, Limits{MaxTrackedBytes: 100})
	if err := g.addBytes(100); err != nil {
		t.Fatalf("exactly at budget: %v", err)
	}
	if err := g.addBytes(1); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("one over budget: got %v, want ErrMemBudget", err)
	}
}

func TestOutputBudget(t *testing.T) {
	g := newGovernor(nil, Limits{MaxOutputRows: 3})
	if err := g.checkOutput(3); err != nil {
		t.Fatalf("exactly at budget: %v", err)
	}
	if err := g.checkOutput(4); !errors.Is(err, ErrRowBudget) {
		t.Fatalf("over output budget: got %v, want ErrRowBudget", err)
	}
}

func TestFirstTripWins(t *testing.T) {
	g := newGovernor(nil, Limits{MaxIntermediateRows: 1, MaxTrackedBytes: 1})
	first := g.trip(ErrRowBudget)
	second := g.trip(ErrMemBudget)
	if !errors.Is(first, ErrRowBudget) || !errors.Is(second, ErrRowBudget) {
		t.Fatalf("trip latch: first=%v second=%v, want both ErrRowBudget", first, second)
	}
}

func TestPanicErrorIs(t *testing.T) {
	var err error = &PanicError{Val: "boom"}
	if !errors.Is(err, ErrPanic) {
		t.Fatal("PanicError should match ErrPanic via errors.Is")
	}
	if err.Error() == "" {
		t.Fatal("empty PanicError message")
	}
}

func TestRowsBytesModel(t *testing.T) {
	rows := []storage.Row{
		{sqltypes.NewInt(1), sqltypes.NewString("abc")},
		{sqltypes.Null, sqltypes.NewString("")},
	}
	// 4 values × 24 + 3 string bytes.
	if got := rowsBytes(rows); got != 4*24+3 {
		t.Fatalf("rowsBytes = %d, want %d", got, 4*24+3)
	}
}

func TestClassifyGovernance(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want string
	}{
		{ErrCanceled, "exec.canceled"},
		{ErrDeadlineExceeded, "exec.canceled"},
		{ErrRowBudget, "exec.budget_trips"},
		{ErrMemBudget, "exec.budget_trips"},
	} {
		got, ok := classifyGovernance(tc.err)
		if !ok || got != tc.want {
			t.Errorf("classifyGovernance(%v) = %q/%v, want %q", tc.err, got, ok, tc.want)
		}
	}
	if _, ok := classifyGovernance(errors.New("other")); ok {
		t.Error("unrelated error classified as governance")
	}
	if _, ok := classifyGovernance(&PanicError{Val: "x"}); ok {
		t.Error("panic classified as governance (it has its own counter)")
	}
}
