package exec

// Runtime subquery batching (the NIBatch strategy). When bindSubqueryCheck
// or a correlated bindScalar would evaluate the same correlated subtree
// once per outer tuple — the nested-iteration hot loop — this path first
// collects the distinct correlation bindings of the whole outer stream
// (the synthesized bindings relation of Guravannavar & Sudarshan's
// batched-bindings evaluation), then evaluates the subtree set-at-a-time:
//
//   - Single-execution path: when the correlation enters the subtree only
//     through root-level equalities (qgm.ExtractBatchSignature), the
//     subtree runs ONCE with those predicates stripped, its rows are
//     partitioned by the subquery-side key, and each distinct binding
//     probes its partition — one decorrelated execution instead of one
//     per binding.
//   - Per-binding path: otherwise the subtree runs once per DISTINCT
//     binding (plain nested iteration over the bindings relation), which
//     is always sound — group boxes keep their per-binding COUNT-bug
//     semantics, left joins and nested subqueries evaluate faithfully.
//
// Either way, results fan back to outer tuples in the original stream
// order, so rows, ordering, and typed errors are bit-identical to NI at
// every worker count. Batching declines entirely (ok=false) for profiled
// runs — EXPLAIN ANALYZE's per-box invocation counts are the row
// interpreter's observability contract — and for subtrees over sys.*
// synthetic tables or missing storage, whose row sources may change
// between evaluations (the same volatility rule that gates the NI-memo
// cache in evalSubqueryInput).

import (
	"decorr/internal/qgm"
	"decorr/internal/storage"
)

// batchEligible reports whether the batched evaluation path may serve
// subtree b for this Run.
func (ex *Exec) batchEligible(b *qgm.Box) bool {
	return ex.opts.BatchCorrelated && ex.profile == nil && !ex.subtreeVolatile(b)
}

// batchSubqueryRows evaluates the correlated subtree q.Input for every
// outer tuple set-at-a-time. It returns per-tuple row sets aligned with
// tuples; ok=false means the path declined and the caller must fall back
// to the per-tuple NI loop.
func (ex *Exec) batchSubqueryRows(q *qgm.Quantifier, tuples []*Env, env *Env) (per [][]storage.Row, ok bool, err error) {
	b := q.Input
	if !ex.batchEligible(b) || !ex.isCorrelated(b) {
		return nil, false, nil
	}
	keys, err := parallelMap(ex, tuples, rowMorsel, func(t *Env) (string, error) {
		return ex.bindingKey(b, t)
	})
	if err != nil {
		return nil, true, err
	}
	// The distinct bindings, in first-appearance order — the synthesized
	// bindings relation. First-appearance order keeps the representative
	// tuples (and with them every downstream evaluation) identical at any
	// worker count.
	index := make(map[string]int, len(tuples))
	var reps []*Env
	var keyBytes int64
	for i, k := range keys {
		if _, dup := index[k]; !dup {
			index[k] = len(reps)
			reps = append(reps, tuples[i])
			keyBytes += int64(len(k))
		}
	}
	bump(&ex.Stats.SubqueryInvocations, int64(len(tuples)))
	bump(&ex.Stats.BatchedSubqueries, int64(len(tuples)))
	ex.mu.Lock()
	seen := ex.bindings[b]
	if seen == nil {
		seen = map[string]bool{}
		ex.bindings[b] = seen
	}
	var fresh int64
	for k := range index {
		if !seen[k] {
			seen[k] = true
			fresh++
		}
	}
	ex.mu.Unlock()
	bump(&ex.Stats.DistinctInvocations, fresh)
	// The bindings relation is a tracked materialization like a hash-join
	// build side: charge its key bytes before evaluating anything.
	if err := ex.govAddBytes(keyBytes); err != nil {
		return nil, true, err
	}
	var perRep [][]storage.Row
	if sig, sok := qgm.ExtractBatchSignature(b, ex.varyingQuants(b, q.Owner)); sok {
		perRep, err = ex.batchSingleExec(b, sig, reps, env)
	} else {
		// Per-distinct-binding fallback: plain nested iteration over the
		// bindings relation, fanned out like the NI hot loop.
		perRep, err = parallelMap(ex, reps, subqMorsel, func(rep *Env) ([]storage.Row, error) {
			rows, rerr := ex.evalBox(b, rep)
			if rerr != nil {
				return nil, rerr
			}
			if rerr := ex.govBytes(rows); rerr != nil {
				return nil, rerr
			}
			return rows, nil
		})
		bump(&ex.Stats.BatchExecutions, int64(len(reps)))
	}
	if err != nil {
		return nil, true, err
	}
	per = make([][]storage.Row, len(tuples))
	for i, k := range keys {
		per[i] = perRep[index[k]]
	}
	return per, true, nil
}

// varyingQuants returns the sibling quantifiers of owner that subtree b's
// free references resolve to — the quantifiers whose bindings vary across
// the outer tuple stream. References to quantifiers of ancestor boxes are
// run-constant here (env binds them once) and are excluded.
func (ex *Exec) varyingQuants(b *qgm.Box, owner *qgm.Box) map[*qgm.Quantifier]bool {
	varying := map[*qgm.Quantifier]bool{}
	for _, rk := range ex.freeRefs[b] {
		if rk.Q.Owner == owner && !rk.Q.Kind.IsSubquery() {
			varying[rk.Q] = true
		}
	}
	return varying
}

// batchSingleExec is the single-execution path: run subtree b once under
// the run-constant env with the signature's correlated predicates
// stripped, key and project every phase-1 tuple, partition the projected
// rows, and probe one partition per distinct binding. The partition build
// is the moral equivalent of a hash-join build side and goes through the
// same fault-injection and byte-budget gate.
func (ex *Exec) batchSingleExec(b *qgm.Box, sig *qgm.BatchSignature, reps []*Env, env *Env) ([][]storage.Row, error) {
	// This bypasses evalBox for the root (the stripped predicate set is
	// not the box's own evaluation), so it carries evalBox's governance
	// checkpoint and box accounting itself.
	if err := ex.gov.checkpoint(); err != nil {
		return nil, err
	}
	bump(&ex.Stats.BoxEvals, 1)
	bump(&ex.Stats.BatchExecutions, 1)
	tuples, err := ex.selectTuplesSkip(b, env, sig.Skip)
	if err != nil {
		return nil, err
	}
	type keyedRow struct {
		key  string
		skip bool
		row  storage.Row
	}
	outs, err := parallelMap(ex, tuples, rowMorsel, func(t *Env) (keyedRow, error) {
		key, null, kerr := ex.keyFor(sig.Inner, t)
		if kerr != nil {
			return keyedRow{}, kerr
		}
		if null {
			// A NULL key component can never satisfy the stripped
			// equality: the row belongs to no binding's result.
			return keyedRow{skip: true}, nil
		}
		row := make(storage.Row, len(b.Cols))
		for i, c := range b.Cols {
			v, verr := ex.EvalExpr(c.Expr, t)
			if verr != nil {
				return keyedRow{}, verr
			}
			row[i] = v
		}
		return keyedRow{key: key, row: row}, nil
	})
	if err != nil {
		return nil, err
	}
	built := make([]storage.Row, 0, len(outs))
	for _, kr := range outs {
		if !kr.skip {
			built = append(built, kr.row)
		}
	}
	if err := ex.hashBuildCheck(built); err != nil {
		return nil, err
	}
	bump(&ex.Stats.HashBuilds, 1)
	// Partitions fill sequentially in tuple order, so each binding's rows
	// come back in the exact order the per-binding NI evaluation would
	// have produced them.
	parts := make(map[string][]storage.Row, len(built))
	for _, kr := range outs {
		if !kr.skip {
			parts[kr.key] = append(parts[kr.key], kr.row)
		}
	}
	return parallelMap(ex, reps, rowMorsel, func(rep *Env) ([]storage.Row, error) {
		key, null, kerr := ex.keyFor(sig.Outer, rep)
		if kerr != nil {
			return nil, kerr
		}
		if null {
			// NULL probe keys match nothing, same as the stripped
			// predicate evaluating UNKNOWN for every subtree row.
			return nil, nil
		}
		return parts[key], nil
	})
}

// subtreeVolatile reports whether subtree b reads any relation whose
// contents may differ between evaluations within one Run: sys.* synthetic
// tables (RowSource-backed views of live engine state) or tables with no
// storage at all. Such subtrees must not have results shared across
// bindings (batching) or across invocations (the NI-memo cache). Boxes
// reachable from the Run root are precomputed by analyze; the lazy path
// only runs on estimation entry points.
func (ex *Exec) subtreeVolatile(b *qgm.Box) bool {
	if v, ok := ex.volatileBox[b]; ok {
		return v
	}
	v := computeVolatile(ex.db, b, nil)
	ex.volatileBox[b] = v
	return v
}

// computeVolatile walks b's subtree looking for volatile leaves, memoizing
// into memo when non-nil.
func computeVolatile(db *storage.DB, b *qgm.Box, memo map[*qgm.Box]bool) bool {
	if memo != nil {
		if v, ok := memo[b]; ok {
			return v
		}
		memo[b] = false // DAG guard; final value stored below
	}
	v := false
	if b.Kind == qgm.BoxBase {
		t := db.Table(b.Table.Name)
		v = t == nil || t.Synthetic()
	}
	for _, q := range b.Quants {
		if computeVolatile(db, q.Input, memo) {
			v = true
		}
	}
	if memo != nil {
		memo[b] = v
	}
	return v
}
