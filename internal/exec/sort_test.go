package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// legacySortRows is the pre-vectorization ORDER BY comparator: every
// comparison chases two row pointers and boxes both values through
// OrderCompare. Kept as the correctness oracle and benchmark baseline for
// the column-extracted sortRows.
func legacySortRows(rows []storage.Row, keys []qgm.OrderKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			c := sqltypes.OrderCompare(rows[i][k.Col], rows[j][k.Col])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// sortTestRows generates rows with deliberately colliding keys (so
// stability is observable), NULLs, and mixed types in the last column.
func sortTestRows(n int, seed int64) []storage.Row {
	r := rand.New(rand.NewSource(seed))
	rows := make([]storage.Row, n)
	for i := range rows {
		var v1 sqltypes.Value
		switch r.Intn(4) {
		case 0:
			v1 = sqltypes.Null
		case 1:
			v1 = sqltypes.NewFloat(r.NormFloat64())
		default:
			v1 = sqltypes.NewInt(int64(r.Intn(8)))
		}
		rows[i] = storage.Row{
			sqltypes.NewInt(int64(r.Intn(16))),
			sqltypes.NewString(fmt.Sprintf("s%02d", r.Intn(12))),
			v1,
			sqltypes.NewInt(int64(i)), // unique id: exposes any ordering difference
		}
	}
	return rows
}

func TestSortRowsMatchesLegacy(t *testing.T) {
	keySets := [][]qgm.OrderKey{
		{{Col: 0}},
		{{Col: 0, Desc: true}},
		{{Col: 1}, {Col: 0, Desc: true}},
		{{Col: 2}, {Col: 1}},
		{{Col: 2, Desc: true}, {Col: 0}, {Col: 1}},
	}
	for _, n := range []int{0, 1, 2, 100, 2500} {
		for ki, keys := range keySets {
			a := sortTestRows(n, int64(ki+1))
			b := make([]storage.Row, n)
			copy(b, a)
			sortRows(a, keys)
			legacySortRows(b, keys)
			for i := range a {
				for c := range a[i] {
					if !sqltypes.Identical(a[i][c], b[i][c]) {
						t.Fatalf("n=%d keys=%d row %d col %d: got %v want %v",
							n, ki, i, c, a[i][c], b[i][c])
					}
				}
			}
		}
	}
}

// BenchmarkSortRows compares the column-extracted sort against the legacy
// per-comparison boxed path on a multi-key ORDER BY.
func BenchmarkSortRows(b *testing.B) {
	const n = 10000
	keys := []qgm.OrderKey{{Col: 1}, {Col: 0, Desc: true}, {Col: 3}}
	base := sortTestRows(n, 42)
	for _, bc := range []struct {
		name string
		sort func([]storage.Row, []qgm.OrderKey)
	}{
		{"columnar", sortRows},
		{"legacy", legacySortRows},
	} {
		b.Run(bc.name, func(b *testing.B) {
			rows := make([]storage.Row, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(rows, base)
				bc.sort(rows, keys)
			}
		})
	}
}
