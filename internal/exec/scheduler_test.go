package exec_test

import (
	"sync"
	"testing"

	"decorr/internal/exec"
	"decorr/internal/parser"
	"decorr/internal/qgm"
	"decorr/internal/semant"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

// runWorkers executes sql with a fixed worker count, returning rendered
// rows in engine order (no sorting beyond the query's own ORDER BY).
func runWorkers(t *testing.T, db *storage.DB, sql string, workers int, opts exec.Options) []string {
	t.Helper()
	g := mustBind(t, db, sql)
	opts.Workers = workers
	rows, err := exec.New(db, opts).Run(g)
	if err != nil {
		t.Fatalf("run %q workers=%d: %v", sql, workers, err)
	}
	return render(rows)
}

func mustBind(t *testing.T, db *storage.DB, sql string) *qgm.Graph {
	t.Helper()
	q, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	g, err := semant.Bind(q, db.Catalog)
	if err != nil {
		t.Fatalf("bind %q: %v", sql, err)
	}
	if err := qgm.Validate(g); err != nil {
		t.Fatalf("validate %q: %v", sql, err)
	}
	return g
}

// TestParallelDeterminism pins the engine's central parallelism guarantee:
// the same query produces the same rows in the same order at workers 1, 2,
// and 8 — covering union dedup, both group-by paths (mergeable partials
// and the SUM/AVG sequential fold), set operations, outer joins, and
// correlated subquery fan-out. This is the regression test for the
// dedupeRows/evalUnion/group-merge ordering requirement.
func TestParallelDeterminism(t *testing.T) {
	queries := []struct {
		name, sql string
	}{
		{"union-distinct", `
			select building from dept
			union
			select building from emp`},
		{"union-all", `
			select name from dept where budget > 100
			union all
			select name from emp`},
		{"group-mergeable", `
			select building, count(*), min(budget), max(budget)
			from dept group by building`},
		{"group-float-fold", `
			select building, sum(budget), avg(budget)
			from dept group by building`},
		{"group-distinct", `
			select building, count(distinct name) from emp group by building`},
		{"select-distinct", `select distinct building from emp`},
		{"intersect", `
			select building from dept intersect select building from emp`},
		{"except-all", `
			select building from dept except all select building from emp`},
		{"left-join", `
			select d.name, e.name from dept d
			left join emp e on d.building = e.building`},
		{"correlated-exists", `
			select name from dept d where exists
			  (select * from emp e where e.building = d.building)`},
		{"correlated-scalar", `
			select d.name,
			  (select count(*) from emp e where e.building = d.building)
			from dept d`},
		{"count-bug-witness", tpcd.ExampleQuery},
		{"hash-join", `
			select e.name, d.name from emp e, dept d
			where e.building = d.building order by e.name, d.name`},
	}
	dbs := map[string]*storage.DB{
		"empdept": tpcd.EmpDept(),
		"sized":   tpcd.EmpDeptSized(60, 240, 7, 11),
	}
	for dbName, db := range dbs {
		for _, q := range queries {
			t.Run(dbName+"/"+q.name, func(t *testing.T) {
				want := runWorkers(t, db, q.sql, 1, exec.Options{})
				for _, w := range []int{2, 8} {
					got := runWorkers(t, db, q.sql, w, exec.Options{})
					if len(got) != len(want) {
						t.Fatalf("workers=%d: %d rows, want %d", w, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("workers=%d row %d: got %q want %q", w, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestParallelDeterministicError pins sequential error semantics: the first
// failing morsel in input order wins, so the reported error is identical at
// any worker count.
func TestParallelDeterministicError(t *testing.T) {
	db := tpcd.EmpDept()
	// The scalar subquery yields several rows for buildings housing more
	// than one department — a per-tuple runtime error.
	sql := `select e.name,
	  (select d.name from dept d where d.building = e.building)
	from emp e`
	g := mustBind(t, db, sql)
	_, err1 := exec.New(db, exec.Options{Workers: 1}).Run(g)
	if err1 == nil {
		t.Fatalf("expected a scalar-cardinality error")
	}
	for _, w := range []int{2, 8} {
		_, err := exec.New(db, exec.Options{Workers: w}).Run(g)
		if err == nil || err.Error() != err1.Error() {
			t.Fatalf("workers=%d: error %v, want %v", w, err, err1)
		}
	}
}

// TestSchedulerHammer drives one Exec's scheduler hard under the race
// detector: a correlated workload with memoization, CSE sharing, profiling
// and per-Run metrics publication, repeated so every synchronized structure
// (Stats atomics, memo/bindings/cse maps, profile map, estimator memos,
// storage statistics caches) is hit from many workers. The assertions are
// secondary; the point is `go test -race ./internal/exec`.
func TestSchedulerHammer(t *testing.T) {
	db := tpcd.EmpDeptSized(80, 400, 6, 7)
	sql := `
		select d.name,
		  (select count(*) from emp e where e.building = d.building)
		from dept d
		where exists (select * from emp e2 where e2.building = d.building)
		  and d.budget >= (select min(budget) from dept)`
	g := mustBind(t, db, sql)
	ex := exec.New(db, exec.Options{Workers: 8, MemoizeCorrelated: true})
	ex.EnableProfiling()
	var want []string
	for i := 0; i < 6; i++ {
		rows, err := ex.Run(g)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		got := render(rows)
		if i == 0 {
			want = got
			if len(want) == 0 {
				t.Fatalf("hammer query returned no rows")
			}
			continue
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("run %d row %d: got %q want %q", i, j, got[j], want[j])
			}
		}
	}
}

// TestConcurrentExecsShareTables runs independent Execs over the same DB
// concurrently (each itself parallel) — the storage statistics caches and
// the process metrics registry are the shared state under test.
func TestConcurrentExecsShareTables(t *testing.T) {
	db := tpcd.EmpDeptSized(40, 160, 5, 3)
	sql := `select building, count(*) from emp where name <> 'nobody' group by building`
	g := mustBind(t, db, sql)
	want := runWorkers(t, db, sql, 1, exec.Options{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows, err := exec.New(db, exec.Options{Workers: 4}).Run(g)
			if err != nil {
				errs[i] = err
				return
			}
			got := render(rows)
			for j := range got {
				if got[j] != want[j] {
					t.Errorf("exec %d row %d: got %q want %q", i, j, got[j], want[j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
	}
}
