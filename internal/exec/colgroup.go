// Columnar GROUP BY evaluation. Key and aggregate-argument expressions
// evaluate chunk-parallel as vectors; the accumulator fold itself stays
// sequential in input row order — the same discipline as
// groupBySequentialFold, so SUM/AVG floating-point accumulation order (and
// with it bit-identity across worker counts and against the row engine) is
// preserved. Group keys hash through a reusable byte buffer instead of a
// per-row string, so steady-state grouping allocates only on new groups.
//
// When the group's input is an exclusively-owned vectorizable select box,
// the input stays columnar end to end: the select batch's output columns
// feed the fold directly, skipping row materialization entirely.
package exec

import (
	"decorr/internal/colvec"
	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// colGroupable reports whether the vectorized engine can evaluate group
// box b: single input quantifier, vectorizable keys and aggregate
// arguments, and only aggregate ops whose accumulators exist (unknown ops
// must keep producing the row path's per-row behavior).
func (ex *Exec) colGroupable(b *qgm.Box) bool {
	if len(b.Quants) != 1 {
		return false
	}
	for _, ge := range b.GroupBy {
		if !colExprOK(ge) {
			return false
		}
	}
	aggs, _ := collectAggs(b)
	for _, a := range aggs {
		switch a.Op {
		case qgm.AggCountStar, qgm.AggCount, qgm.AggSum, qgm.AggAvg, qgm.AggMin, qgm.AggMax:
		default:
			return false
		}
		if a.Op != qgm.AggCountStar && !colExprOK(a.Arg) {
			return false
		}
	}
	for _, c := range b.Cols {
		ok := true
		qgm.Walk(c.Expr, func(e qgm.Expr) bool {
			if _, isAgg := e.(*qgm.Agg); isAgg {
				return false // evaluated from the accumulator, not vectorized
			}
			switch f := e.(type) {
			case *qgm.Func:
				if f.Name != "coalesce" {
					ok = false
				}
			}
			return ok
		})
		if !ok {
			return false
		}
	}
	return true
}

// collectAggs gathers the aggregate nodes appearing in a group box's
// outputs, in first-appearance order.
func collectAggs(b *qgm.Box) ([]*qgm.Agg, map[*qgm.Agg]int) {
	var aggs []*qgm.Agg
	aggIndex := map[*qgm.Agg]int{}
	for _, c := range b.Cols {
		qgm.Walk(c.Expr, func(e qgm.Expr) bool {
			if a, ok := e.(*qgm.Agg); ok {
				if _, dup := aggIndex[a]; !dup {
					aggIndex[a] = len(aggs)
					aggs = append(aggs, a)
				}
				return false
			}
			return true
		})
	}
	return aggs, aggIndex
}

// emitGroupRows evaluates the output expressions once per group in
// first-appearance order — the final phase shared by every grouping path.
func (ex *Exec) emitGroupRows(b *qgm.Box, groups map[string]*groupState, order []string, aggs []*qgm.Agg, aggIndex map[*qgm.Agg]int) ([]storage.Row, error) {
	states := make([]*groupState, len(order))
	for i, k := range order {
		states[i] = groups[k]
	}
	return ex.emitGroupStates(b, states, aggs, aggIndex)
}

// emitGroupStates is emitGroupRows over an already-ordered state list.
func (ex *Exec) emitGroupStates(b *qgm.Box, states []*groupState, aggs []*qgm.Agg, aggIndex map[*qgm.Agg]int) ([]storage.Row, error) {
	out, err := parallelMap(ex, states, rowMorsel, func(gs *groupState) (storage.Row, error) {
		row := make(storage.Row, len(b.Cols))
		for i, c := range b.Cols {
			v, err := ex.evalWithAggs(c.Expr, gs.rep, aggs, aggIndex, gs.accs)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	bump(&ex.Stats.RowsGrouped, int64(len(out)))
	if err := ex.govRows(len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

// grpChunk is one morsel's evaluated grouping state: keys[j] and args[i]
// align with the chunk's rows; rep (indexed at off+k) supplies the
// representative row for a group first seen in this chunk.
type grpChunk struct {
	n    int
	keys []colvec.Vec
	args []colvec.Vec
	rep  []colvec.Vec
	off  int
}

// colEvalGroup is the vectorized evalGroup.
func (ex *Exec) colEvalGroup(b *qgm.Box, env *Env) ([]storage.Row, error) {
	qg := b.Quants[0]
	aggs, aggIndex := collectAggs(b)
	chunks, n, err := ex.colGroupChunks(b, qg, aggs, env)
	if err != nil {
		return nil, err
	}
	var states []*groupState
	newState := func(rep []colvec.Vec, at int32) *groupState {
		gs := &groupState{
			rep:  Bind(env, qg, colRowAt(rep, at)),
			accs: make([]aggAcc, len(aggs)),
		}
		for i, a := range aggs {
			gs.accs[i] = newAggAcc(a)
		}
		states = append(states, gs)
		return gs
	}
	// A single typed integer key with no NULLs in any chunk can group
	// through an int64 map, skipping per-row key encoding. The canonical
	// key encoding is injective on pure-integer key sets, so the grouping
	// (and first-appearance order) is identical to the encoded path's.
	intKeys := len(b.GroupBy) == 1 && len(chunks) > 0
	for _, ch := range chunks {
		if intKeys && !(ch.keys[0].K == sqltypes.KindInt && ch.keys[0].Mixed == nil && !ch.keys[0].HasNulls()) {
			intKeys = false
		}
	}
	if intKeys {
		groups := map[int64]*groupState{}
		for _, ch := range chunks {
			keys := ch.keys[0].Ints
			for k := 0; k < ch.n; k++ {
				gs := groups[keys[k]]
				if gs == nil {
					gs = newState(ch.rep, int32(ch.off+k))
					groups[keys[k]] = gs
				}
				addGroupRow(gs, aggs, ch, k)
			}
		}
	} else {
		groups := map[string]*groupState{}
		var buf []byte
		for _, ch := range chunks {
			for k := 0; k < ch.n; k++ {
				buf = buf[:0]
				for j := range ch.keys {
					buf = ch.keys[j].AppendKeyAt(buf, k)
				}
				gs := groups[string(buf)] // no-alloc map lookup
				if gs == nil {
					gs = newState(ch.rep, int32(ch.off+k))
					groups[string(buf)] = gs
				}
				addGroupRow(gs, aggs, ch, k)
			}
		}
	}
	if n == 0 && len(b.GroupBy) == 0 {
		// Ungrouped aggregate over empty input yields exactly one row:
		// COUNT 0, other aggregates NULL.
		gs := &groupState{rep: Bind(env, qg, nullRow(len(qg.Input.Cols))), accs: make([]aggAcc, len(aggs))}
		for i, a := range aggs {
			gs.accs[i] = newAggAcc(a)
		}
		states = append(states, gs)
	}
	return ex.emitGroupStates(b, states, aggs, aggIndex)
}

// addGroupRow folds one input row's aggregate arguments into a group.
func addGroupRow(gs *groupState, aggs []*qgm.Agg, ch grpChunk, k int) {
	for i := range aggs {
		var v sqltypes.Value
		if aggs[i].Op != qgm.AggCountStar {
			v = ch.args[i].Value(k)
		}
		gs.accs[i].add(v)
	}
}

// colGroupChunks produces the evaluated per-morsel grouping state and the
// input row count. A vectorizable, exclusively-owned select input bypasses
// row materialization (its evalBox bookkeeping — checkpoint and BoxEvals —
// is replicated here); everything else materializes through evalBox and
// re-columnarizes at the boundary.
func (ex *Exec) colGroupChunks(b *qgm.Box, qg *qgm.Quantifier, aggs []*qgm.Agg, env *Env) ([]grpChunk, int, error) {
	in := qg.Input
	if in.Kind == qgm.BoxSelect && ex.colSel[in] && !in.Distinct &&
		ex.refCount[in] <= 1 && ex.opts.Tracer == nil {
		if err := ex.gov.checkpoint(); err != nil {
			return nil, 0, err
		}
		bump(&ex.Stats.BoxEvals, 1)
		batch, err := ex.colSelectBatch(in, env)
		if err != nil {
			return nil, 0, err
		}
		if batch == nil {
			return nil, 0, nil
		}
		chunks, err := parallelChunks(ex, len(batch.sel), colMorsel, func(lo, hi int) (grpChunk, error) {
			idx := batch.sel[lo:hi]
			outVecs := make([]colvec.Vec, len(in.Cols))
			for c := range in.Cols {
				v, err := ex.colEval(in.Cols[c].Expr, batch, idx, env)
				if err != nil {
					return grpChunk{}, err
				}
				outVecs[c] = v
			}
			chb := &colBatch{phys: len(idx), sel: ex.identity(len(idx)),
				quants: []*qgm.Quantifier{qg}, cols: [][]colvec.Vec{outVecs}}
			return ex.grpChunkEval(b, aggs, chb, chb.sel, outVecs, 0, env)
		})
		return chunks, len(batch.sel), err
	}
	rows, err := ex.evalBox(in, env)
	if err != nil {
		return nil, 0, err
	}
	vecs := colsFromRows(rows, len(in.Cols))
	gb := &colBatch{phys: len(rows), sel: ex.identity(len(rows)),
		quants: []*qgm.Quantifier{qg}, cols: [][]colvec.Vec{vecs}}
	chunks, err := parallelChunks(ex, len(rows), colMorsel, func(lo, hi int) (grpChunk, error) {
		return ex.grpChunkEval(b, aggs, gb, gb.sel[lo:hi], vecs, lo, env)
	})
	return chunks, len(rows), err
}

// grpChunkEval evaluates one chunk's grouping keys and aggregate
// arguments.
func (ex *Exec) grpChunkEval(b *qgm.Box, aggs []*qgm.Agg, gb *colBatch, idx []int32, rep []colvec.Vec, off int, env *Env) (grpChunk, error) {
	ch := grpChunk{n: len(idx), keys: make([]colvec.Vec, len(b.GroupBy)),
		args: make([]colvec.Vec, len(aggs)), rep: rep, off: off}
	for j, ge := range b.GroupBy {
		v, err := ex.colEval(ge, gb, idx, env)
		if err != nil {
			return grpChunk{}, err
		}
		ch.keys[j] = v
	}
	for i, a := range aggs {
		if a.Op == qgm.AggCountStar {
			continue
		}
		v, err := ex.colEval(a.Arg, gb, idx, env)
		if err != nil {
			return grpChunk{}, err
		}
		ch.args[i] = v
	}
	return ch, nil
}
