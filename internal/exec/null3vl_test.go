package exec_test

import (
	"testing"

	"decorr/internal/schema"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// threeVLDB builds:
//
//	t(name, x):  a→1, b→2, c→NULL
//	s(y):        1, 3, NULL
//	empty(y):    no rows
//
// The NULL in s is what makes NOT IN / ALL three-valued: x NOT IN (1,3,NULL)
// is UNKNOWN for every x that is not 1 or 3 (x <> NULL is UNKNOWN), never
// TRUE — a filter that must reject the row, same as FALSE, but crucially a
// NOT IN that an engine folds to "x <> 1 AND x <> 3" would wrongly accept.
func threeVLDB() *storage.DB {
	db := storage.NewDB()
	tt := db.Create(schema.NewTable("t",
		schema.Column{Name: "name", Type: schema.TString},
		schema.Column{Name: "x", Type: schema.TInt},
	))
	for _, r := range []struct {
		name string
		x    sqltypes.Value
	}{
		{"a", sqltypes.NewInt(1)},
		{"b", sqltypes.NewInt(2)},
		{"c", sqltypes.Null},
	} {
		if err := tt.Insert(storage.Row{sqltypes.NewString(r.name), r.x}); err != nil {
			panic(err)
		}
	}
	ss := db.Create(schema.NewTable("s", schema.Column{Name: "y", Type: schema.TInt}))
	for _, v := range []sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewInt(3), sqltypes.Null} {
		if err := ss.Insert(storage.Row{v}); err != nil {
			panic(err)
		}
	}
	db.Create(schema.NewTable("empty", schema.Column{Name: "y", Type: schema.TInt}))
	return db
}

func TestNotInNullOperandAndMembers(t *testing.T) {
	db := threeVLDB()
	// s holds {1, 3, NULL}: x=1 is FALSE (member), x=2 is UNKNOWN (2 <> NULL),
	// x=NULL is UNKNOWN. Nothing may qualify.
	got := run(t, db, `select name from t where x not in (select y from s)`)
	expectRows(t, got, []string{})
}

func TestNotInWithoutNullInSubquery(t *testing.T) {
	db := threeVLDB()
	// Restricting s to non-NULL rows restores two-valued logic: only x=2
	// is outside {1, 3}; x=NULL stays UNKNOWN.
	got := run(t, db, `select name from t where x not in (select y from s where y is not null)`)
	expectRows(t, got, []string{"b"})
}

func TestNotInEmptySubquery(t *testing.T) {
	db := threeVLDB()
	// NOT IN over the empty set is vacuously TRUE — even for x = NULL.
	got := run(t, db, `select name from t where x not in (select y from empty)`)
	expectRows(t, got, []string{"a", "b", "c"})
}

func TestInWithNullInSubquery(t *testing.T) {
	db := threeVLDB()
	// x=1 finds a member (TRUE); x=2 and x=NULL are UNKNOWN, not FALSE —
	// indistinguishable in a WHERE filter, but both must be rejected.
	got := run(t, db, `select name from t where x in (select y from s)`)
	expectRows(t, got, []string{"a"})
}

func TestAllWithNullInSubquery(t *testing.T) {
	db := threeVLDB()
	// x <> ALL {1,3,NULL}: the NULL comparison is UNKNOWN, so no row can
	// reach TRUE (this is exactly NOT IN, tied through QAll + <>).
	got := run(t, db, `select name from t where x <> all (select y from s)`)
	expectRows(t, got, []string{})
	// x >= ALL: 1>=1 TRUE, 1>=3 FALSE short-circuits x=1 to FALSE before
	// the NULL matters; x=2 likewise; nothing qualifies, but for x=2 the
	// reason is FALSE (2>=3), not UNKNOWN.
	got = run(t, db, `select name from t where x >= all (select y from s)`)
	expectRows(t, got, []string{})
}

func TestAllEmptySubquery(t *testing.T) {
	db := threeVLDB()
	got := run(t, db, `select name from t where x > all (select y from empty)`)
	expectRows(t, got, []string{"a", "b", "c"})
}

func TestAnyWithNullInSubquery(t *testing.T) {
	db := threeVLDB()
	// x >= ANY {1,3,NULL}: x=1 and x=2 find 1 (TRUE); x=NULL is UNKNOWN
	// against every member.
	got := run(t, db, `select name from t where x >= any (select y from s)`)
	expectRows(t, got, []string{"a", "b"})
	// x > ANY {1,3,NULL}: only x=2 exceeds a member; x=1 is UNKNOWN (1>NULL)
	// — rejected like FALSE, which is the observable 3VL requirement here.
	got = run(t, db, `select name from t where x > any (select y from s)`)
	expectRows(t, got, []string{"b"})
}

func TestAnyEmptySubquery(t *testing.T) {
	db := threeVLDB()
	got := run(t, db, `select name from t where x = any (select y from empty)`)
	expectRows(t, got, []string{})
}
