// Morsel-driven intra-query parallelism. The executor splits row- and
// tuple-oriented loops into contiguous morsels (fixed-size index ranges)
// that a small worker pool claims from a shared counter — the scheduling
// discipline of Leis et al.'s morsel-driven execution, adapted to this
// interpreter. Three properties make the parallel engine safe to drop into
// the paper's differential experiments:
//
//  1. Determinism. Each morsel writes its result into its own slot and the
//     caller merges slots in morsel order, so output row order is identical
//     at every worker count (including 1). Morsel boundaries depend only on
//     the input size, never on Options.Workers or scheduling luck.
//  2. Bounded fan-out. Workers beyond the caller are admitted through a
//     token pool sized Workers-1. Nested parallel regions (a correlated
//     subquery fanning out inside a parallel join probe) fall back to
//     inline execution when the pool is drained instead of multiplying
//     goroutines.
//  3. Sequential error semantics. When a morsel fails, later morsels stop
//     being claimed and the error of the *earliest* failing morsel is
//     returned — the same error a sequential left-to-right loop reports.
package exec

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"decorr/internal/faultinject"
)

const (
	// rowMorsel sizes morsels for cheap per-item work: predicate filters,
	// projections, hash-key computation, join probes.
	rowMorsel = 256
	// subqMorsel sizes morsels for expensive per-item work: correlated
	// subquery invocations, where one item is a whole sub-plan evaluation.
	subqMorsel = 8
)

// maxWorkers bounds the worker pool: values beyond any plausible core
// count buy nothing and would only oversize the token pool.
const maxWorkers = 1 << 14

// resolveWorkers maps the Options.Workers knob to a concrete pool size:
// zero selects GOMAXPROCS, negative (garbage) input clamps to 1 — a
// deterministic single-threaded run, never a panic — and absurdly large
// values clamp to maxWorkers.
func resolveWorkers(n int) int {
	switch {
	case n == 0:
		return runtime.GOMAXPROCS(0)
	case n < 0:
		return 1
	case n > maxWorkers:
		return maxWorkers
	}
	return n
}

// claimMorsel is the governance gate crossed before every morsel of work,
// on both the parallel and inline paths: the fault-injection morsel-claim
// point fires first, then the run's governor polls cancellation and the
// deadline. The disabled cost is one atomic load plus one nil comparison,
// and running it per claim is what bounds cancellation latency to a single
// morsel of leaf work even at Workers == 1.
func (ex *Exec) claimMorsel() error {
	if err := faultinject.Check(faultinject.MorselClaim); err != nil {
		return err
	}
	return ex.gov.checkpoint()
}

// runMorsel claims and executes one morsel, converting a panic anywhere in
// the claim or the work into a *PanicError so that a fault inside a worker
// goroutine unwinds through the min-index error machinery instead of
// killing the process. The claim happens inside the recover scope on
// purpose: the fault-injection point in claimMorsel can panic too. The
// inline path uses it as well, so single-threaded runs isolate operator
// panics identically.
func runMorsel[T any](ex *Exec, fn func(lo, hi int) (T, error), lo, hi int) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Val: r, Stack: debug.Stack()}
		}
	}()
	if err := ex.claimMorsel(); err != nil {
		return out, err
	}
	return fn(lo, hi)
}

// parallelChunks evaluates fn over [0,n) split into morsels of at most
// `morsel` items each, returning the per-morsel results in morsel order.
// With one worker (or a single morsel) it degenerates to an inline
// sequential loop over the same boundaries, so both paths compute the
// same merge tree.
func parallelChunks[T any](ex *Exec, n, morsel int, fn func(lo, hi int) (T, error)) ([]T, error) {
	if n == 0 {
		return nil, nil
	}
	if morsel < 1 {
		morsel = 1
	}
	chunks := (n + morsel - 1) / morsel
	if chunks == 1 || ex.workers <= 1 {
		out := make([]T, 0, chunks)
		for lo := 0; lo < n; lo += morsel {
			r, err := runMorsel(ex, fn, lo, min(lo+morsel, n))
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	}
	results := make([]T, chunks)
	errs := make([]error, chunks)
	var next atomic.Int64
	var failed atomic.Bool
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= chunks || failed.Load() {
				return
			}
			lo := i * morsel
			r, err := runMorsel(ex, fn, lo, min(lo+morsel, n))
			results[i] = r
			if err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}
	}
	// Admit extra workers through the executor-wide token pool; when the
	// pool is drained (nested region), the caller alone drains the morsels.
	var wg sync.WaitGroup
	for i := 0; i < chunks-1; i++ {
		select {
		case ex.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-ex.sem; wg.Done() }()
				work()
			}()
			continue
		default:
		}
		break
	}
	work()
	wg.Wait()
	// Morsels are claimed in index order and claimed morsels always finish,
	// so every morsel before the earliest recorded error completed cleanly:
	// the minimum-index error is exactly the sequential one.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// concat flattens per-morsel slices in morsel order.
func concat[T any](chunks [][]T) []T {
	switch len(chunks) {
	case 0:
		return nil
	case 1:
		return chunks[0]
	}
	n := 0
	for _, c := range chunks {
		n += len(c)
	}
	out := make([]T, 0, n)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// parallelMap evaluates fn for every element of in, preserving order.
func parallelMap[T, U any](ex *Exec, in []T, morsel int, fn func(T) (U, error)) ([]U, error) {
	chunks, err := parallelChunks(ex, len(in), morsel, func(lo, hi int) ([]U, error) {
		out := make([]U, 0, hi-lo)
		for _, x := range in[lo:hi] {
			u, err := fn(x)
			if err != nil {
				return nil, err
			}
			out = append(out, u)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return concat(chunks), nil
}

// parallelFilter keeps the elements of in for which keep returns true,
// preserving order.
func parallelFilter[T any](ex *Exec, in []T, morsel int, keep func(T) (bool, error)) ([]T, error) {
	chunks, err := parallelChunks(ex, len(in), morsel, func(lo, hi int) ([]T, error) {
		var kept []T
		for _, x := range in[lo:hi] {
			ok, err := keep(x)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, x)
			}
		}
		return kept, nil
	})
	if err != nil {
		return nil, err
	}
	return concat(chunks), nil
}

// parallelFlatMap maps every element of in to a slice and concatenates the
// results in input order.
func parallelFlatMap[T, U any](ex *Exec, in []T, morsel int, fn func(T) ([]U, error)) ([]U, error) {
	chunks, err := parallelChunks(ex, len(in), morsel, func(lo, hi int) ([]U, error) {
		var out []U
		for _, x := range in[lo:hi] {
			us, err := fn(x)
			if err != nil {
				return nil, err
			}
			out = append(out, us...)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return concat(chunks), nil
}
