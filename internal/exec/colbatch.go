// Columnar batch representation. A colBatch is the vectorized executor's
// unit of intermediate state during select evaluation: one typed column
// vector per column of each bound quantifier, plus a selection vector of
// live physical row indices. Predicates narrow the selection vector in
// place and joins compose per-quantifier row-index maps over shared base
// vectors — neither copies column data; values gather lazily where an
// expression reads a column. Morsels become column-batch ranges: every
// columnar loop splits the selection vector into chunks claimed through
// the same scheduler (parallelChunks), so governance checkpoints,
// fault-injection points, and min-index error semantics carry over from
// the row engine unchanged.
package exec

import (
	"decorr/internal/colvec"
	"decorr/internal/faultinject"
	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// colMorsel sizes columnar morsels: one chunk of the selection vector per
// scheduler claim. Larger than rowMorsel because each claimed unit is a
// whole vector kernel pass, not a per-row interpreter step.
const colMorsel = 4096

// colBatch is a set of quantifier-aligned column vectors sharing one
// selection vector. The batch has phys tuples; sel lists the live tuple
// indices in output order. Column data is late-materialized: cols[i]
// holds quantifier i's base vectors (usually the table's shared, cached
// vectors), and rowIdx[i] maps tuple index → physical row in those
// vectors (nil = identity). Joins only compose these index maps — no
// column is gathered until an expression actually reads it.
type colBatch struct {
	phys   int
	sel    []int32
	quants []*qgm.Quantifier
	cols   [][]colvec.Vec
	rowIdx [][]int32
}

// rowMap returns quantifier qi's tuple-index → physical-row map, or nil
// for the identity. Reads compose it inline (Vec.GatherVia) instead of
// materializing the translated index list.
func (b *colBatch) rowMap(qi int) []int32 {
	if qi >= len(b.rowIdx) {
		return nil
	}
	return b.rowIdx[qi]
}

// identitySel returns [0, 1, ..., n-1].
func identitySel(n int) []int32 {
	sel := make([]int32, n)
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// quantIdx locates q among the batch's bound quantifiers, or -1.
func (b *colBatch) quantIdx(q *qgm.Quantifier) int {
	for i, bq := range b.quants {
		if bq == q {
			return i
		}
	}
	return -1
}

// colsFromRows converts a materialized row set into column vectors — the
// row-materialization boundary in the other direction, used when a
// quantifier's input is produced by a not-yet-vectorized operator.
func colsFromRows(rows []storage.Row, width int) []colvec.Vec {
	vecs := make([]colvec.Vec, width)
	for c := range vecs {
		vecs[c] = colvec.FromColumn(rows, c)
	}
	return vecs
}

// joinGather builds the batch that results from joining q into b. No
// column data moves: every side keeps its shared base vectors, the
// already-bound quantifiers' row-index maps re-index through the
// probe-side pair list, and q's map is the build-side pair list itself.
// Columns materialize later, only where an expression reads them.
func (ex *Exec) joinGather(b *colBatch, tupleIdx []int32, q *qgm.Quantifier, qVecs []colvec.Vec, rowIdx []int32) (*colBatch, error) {
	n := len(tupleIdx)
	maps := make([][]int32, len(b.quants))
	compose := false
	for i := range maps {
		if m := b.rowMap(i); m != nil {
			maps[i] = make([]int32, n)
			compose = true
		} else {
			// Identity map: the composed map IS the probe-side pair list.
			// Batches are immutable, so every such quantifier aliases it.
			maps[i] = tupleIdx
		}
	}
	if compose {
		if _, err := parallelChunks(ex, n, colMorsel, func(lo, hi int) (struct{}, error) {
			for i := range maps {
				old := b.rowMap(i)
				if old == nil {
					continue
				}
				for k := lo; k < hi; k++ {
					maps[i][k] = old[tupleIdx[k]]
				}
			}
			return struct{}{}, nil
		}); err != nil {
			return nil, err
		}
	}
	out := &colBatch{
		phys:   n,
		sel:    ex.identity(n),
		quants: make([]*qgm.Quantifier, 0, len(b.quants)+1),
		cols:   make([][]colvec.Vec, 0, len(b.quants)+1),
		rowIdx: make([][]int32, 0, len(b.quants)+1),
	}
	for i, bq := range b.quants {
		out.quants = append(out.quants, bq)
		out.cols = append(out.cols, b.cols[i])
		out.rowIdx = append(out.rowIdx, maps[i])
	}
	out.quants = append(out.quants, q)
	out.cols = append(out.cols, qVecs)
	out.rowIdx = append(out.rowIdx, rowIdx)
	return out, nil
}

// colMaterialize converts dense output vectors (all length n) into rows.
func (ex *Exec) colMaterialize(vecs []colvec.Vec, n int) ([]storage.Row, error) {
	chunks, err := parallelChunks(ex, n, colMorsel, func(lo, hi int) ([]storage.Row, error) {
		out := make([]storage.Row, 0, hi-lo)
		w := len(vecs)
		arena := make([]sqltypes.Value, (hi-lo)*w)
		for i := lo; i < hi; i++ {
			row := storage.Row(arena[(i-lo)*w : (i-lo+1)*w : (i-lo+1)*w])
			for c := range vecs {
				row[c] = vecs[c].Value(i)
			}
			out = append(out, row)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return concat(chunks), nil
}

// colRowAt materializes one physical row of a quantifier's column set.
func colRowAt(vecs []colvec.Vec, i int32) storage.Row {
	row := make(storage.Row, len(vecs))
	for c := range vecs {
		row[c] = vecs[c].Value(int(i))
	}
	return row
}

// colBytes computes the same accounting measure as rowsBytes over the live
// rows of a column set: a fixed per-value overhead plus string payloads.
// Governance byte-budget tests pin exact trip boundaries, so the columnar
// hash build must charge bit-identical byte counts to the row build.
func colBytes(vecs []colvec.Vec, sel []int32) int64 {
	const perValue = 24 // must match rowsBytes
	n := int64(len(sel)) * int64(len(vecs)) * perValue
	for c := range vecs {
		v := &vecs[c]
		switch {
		case v.Mixed != nil:
			for _, i := range sel {
				if x := v.Mixed[i]; x.K == sqltypes.KindString {
					n += int64(len(x.S))
				}
			}
		case v.K == sqltypes.KindString:
			// NULL positions hold "" and contribute 0, as in rowsBytes.
			for _, i := range sel {
				n += int64(len(v.Strs[i]))
			}
		}
	}
	return n
}

// colHashBuildCheck mirrors hashBuildCheck for a columnar build side: the
// fault-injection point fires first, then the live build rows are charged
// against the byte budget (computed only when a byte budget is armed).
func (ex *Exec) colHashBuildCheck(vecs []colvec.Vec, sel []int32) error {
	if err := faultinject.Check(faultinject.HashBuild); err != nil {
		return err
	}
	if ex.gov == nil || ex.gov.maxBytes == 0 {
		return nil
	}
	return ex.gov.addBytes(colBytes(vecs, sel))
}
