// Vectorized expression evaluation. colEval and colEvalPred are the
// columnar counterparts of EvalExpr and EvalPred: one dispatch per
// expression node per batch instead of per row, with typed kernels for the
// hot same-kind comparison and arithmetic cases and a boxed per-element
// fallback (through the exact row-path helpers) everywhere else, so the
// two engines compute identical values, identical three-valued logic, and
// identical error values.
//
// Evaluation order within one predicate is vector-major: the left operand
// evaluates over the whole chunk before the right. Which of several
// co-occurring expression errors surfaces first can therefore differ from
// the row-major interpreter — the same documented divergence class as the
// streaming modes — but per-row short-circuiting (AND skips the right side
// where the left is FALSE, CASE evaluates a result only where its
// condition is TRUE) is preserved exactly by evaluating each sub-tree over
// the narrowed index subset, so vectorization never evaluates an
// expression the row engine would have skipped.
package exec

import (
	"fmt"
	"strings"

	"decorr/internal/colvec"
	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
)

// colExprOK reports whether the vectorized engine supports every node of
// e. Aggregates never appear in select boxes; unknown functions decline so
// the row path produces its per-row error.
func colExprOK(e qgm.Expr) bool {
	ok := true
	qgm.Walk(e, func(x qgm.Expr) bool {
		switch f := x.(type) {
		case *qgm.Agg:
			ok = false
		case *qgm.Func:
			if f.Name != "coalesce" && f.Name != "abs" {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// colEval evaluates e over the batch rows at the physical indices idx,
// returning a dense vector aligned with idx. Outer (correlated) column
// references resolve through env and broadcast.
func (ex *Exec) colEval(e qgm.Expr, b *colBatch, idx []int32, env *Env) (colvec.Vec, error) {
	switch x := e.(type) {
	case *qgm.ColRef:
		if qi := b.quantIdx(x.Q); qi >= 0 {
			vecs := b.cols[qi]
			if x.Col >= len(vecs) {
				return colvec.Vec{}, fmt.Errorf("exec: column %d out of range for %s (row width %d)",
					x.Col, x.Q.Name(), len(vecs))
			}
			return vecs[x.Col].GatherVia(idx, b.rowMap(qi)), nil
		}
		row, ok := env.Get(x.Q)
		if !ok {
			return colvec.Vec{}, fmt.Errorf("exec: unbound quantifier %s", x.Q.Name())
		}
		if x.Col >= len(row) {
			return colvec.Vec{}, fmt.Errorf("exec: column %d out of range for %s (row width %d)",
				x.Col, x.Q.Name(), len(row))
		}
		return colvec.Broadcast(row[x.Col], len(idx)), nil
	case *qgm.Const:
		return colvec.Broadcast(x.V, len(idx)), nil
	case *qgm.Param:
		if x.Idx < 0 || x.Idx >= len(ex.opts.Params) {
			return colvec.Vec{}, fmt.Errorf("exec: parameter ?%d not bound (%d values supplied)",
				x.Idx+1, len(ex.opts.Params))
		}
		return colvec.Broadcast(ex.opts.Params[x.Idx], len(idx)), nil
	case *qgm.Bin:
		switch x.Op {
		case qgm.OpAdd, qgm.OpSub, qgm.OpMul, qgm.OpDiv:
			if s, ok, err := ex.colScalar(x.R, b, env); ok {
				if err != nil {
					return colvec.Vec{}, err
				}
				l, err := ex.colEval(x.L, b, idx, env)
				if err != nil {
					return colvec.Vec{}, err
				}
				return colArithScalar(x.Op, &l, s, false)
			}
			if s, ok, err := ex.colScalar(x.L, b, env); ok {
				if err != nil {
					return colvec.Vec{}, err
				}
				r, err := ex.colEval(x.R, b, idx, env)
				if err != nil {
					return colvec.Vec{}, err
				}
				return colArithScalar(x.Op, &r, s, true)
			}
			l, err := ex.colEval(x.L, b, idx, env)
			if err != nil {
				return colvec.Vec{}, err
			}
			r, err := ex.colEval(x.R, b, idx, env)
			if err != nil {
				return colvec.Vec{}, err
			}
			return colArith(x.Op, &l, &r)
		}
		return ex.colPredValue(e, b, idx, env)
	case *qgm.Not, *qgm.IsNull, *qgm.Like:
		return ex.colPredValue(e, b, idx, env)
	case *qgm.Func:
		return ex.colFunc(x, b, idx, env)
	case *qgm.Case:
		return ex.colCase(x, b, idx, env)
	case *qgm.Agg:
		return colvec.Vec{}, fmt.Errorf("exec: aggregate evaluated outside a group box")
	}
	return colvec.Vec{}, fmt.Errorf("exec: unknown expression %T", e)
}

// colPredValue evaluates a predicate used in value position (row path:
// EvalExpr falling through to EvalPred + triValue).
func (ex *Exec) colPredValue(e qgm.Expr, b *colBatch, idx []int32, env *Env) (colvec.Vec, error) {
	tris, err := ex.colEvalPred(e, b, idx, env)
	if err != nil {
		return colvec.Vec{}, err
	}
	out := make([]sqltypes.Value, len(tris))
	for i, t := range tris {
		out[i] = triValue(t)
	}
	return colvec.FromValues(out), nil
}

func (ex *Exec) colFunc(f *qgm.Func, b *colBatch, idx []int32, env *Env) (colvec.Vec, error) {
	args := make([]colvec.Vec, len(f.Args))
	for i, a := range f.Args {
		v, err := ex.colEval(a, b, idx, env)
		if err != nil {
			return colvec.Vec{}, err
		}
		args[i] = v
	}
	switch f.Name {
	case "coalesce":
		out := make([]sqltypes.Value, len(idx))
		scratch := make([]sqltypes.Value, len(args))
		for k := range idx {
			for ai := range args {
				scratch[ai] = args[ai].Value(k)
			}
			out[k] = sqltypes.Coalesce(scratch...)
		}
		return colvec.FromValues(out), nil
	case "abs":
		if len(args) != 1 {
			return colvec.Vec{}, fmt.Errorf("exec: abs takes one argument")
		}
		a := &args[0]
		if a.Mixed == nil && a.K == sqltypes.KindInt {
			out := make([]int64, len(idx))
			for k, x := range a.Ints {
				if x < 0 {
					x = -x
				}
				out[k] = x
			}
			v := colvec.FromInts(out)
			v.Nulls = a.Nulls
			return v, nil
		}
		out := make([]sqltypes.Value, len(idx))
		for k := range idx {
			x := a.Value(k)
			switch x.K {
			case sqltypes.KindNull:
				out[k] = sqltypes.Null
			case sqltypes.KindInt:
				if x.I < 0 {
					x = sqltypes.NewInt(-x.I)
				}
				out[k] = x
			case sqltypes.KindFloat:
				if x.F < 0 {
					x = sqltypes.NewFloat(-x.F)
				}
				out[k] = x
			default:
				return colvec.Vec{}, fmt.Errorf("exec: abs of %s", x.K)
			}
		}
		return colvec.FromValues(out), nil
	}
	return colvec.Vec{}, fmt.Errorf("exec: unknown function %q", f.Name)
}

// colCase evaluates CASE with per-row laziness: each WHEN condition is
// evaluated only over rows no earlier branch matched, and each result only
// over the rows its condition made TRUE — exactly the rows the interpreter
// would evaluate.
func (ex *Exec) colCase(x *qgm.Case, b *colBatch, idx []int32, env *Env) (colvec.Vec, error) {
	out := make([]sqltypes.Value, len(idx))
	remaining := idx
	remPos := make([]int, len(idx)) // position of remaining[k] in out
	for i := range remPos {
		remPos[i] = i
	}
	assign := func(sub []int32, pos []int, e qgm.Expr) error {
		if len(sub) == 0 {
			return nil
		}
		v, err := ex.colEval(e, b, sub, env)
		if err != nil {
			return err
		}
		for k := range sub {
			out[pos[k]] = v.Value(k)
		}
		return nil
	}
	for _, w := range x.Whens {
		if len(remaining) == 0 {
			break
		}
		tris, err := ex.colEvalPred(w.Cond, b, remaining, env)
		if err != nil {
			return colvec.Vec{}, err
		}
		var hit []int32
		var hitPos []int
		var rest []int32
		var restPos []int
		for k, t := range tris {
			if t == sqltypes.True {
				hit = append(hit, remaining[k])
				hitPos = append(hitPos, remPos[k])
			} else {
				rest = append(rest, remaining[k])
				restPos = append(restPos, remPos[k])
			}
		}
		if err := assign(hit, hitPos, w.Result); err != nil {
			return colvec.Vec{}, err
		}
		remaining, remPos = rest, restPos
	}
	if x.Else != nil {
		if err := assign(remaining, remPos, x.Else); err != nil {
			return colvec.Vec{}, err
		}
	} else {
		for _, p := range remPos {
			out[p] = sqltypes.Null
		}
	}
	return colvec.FromValues(out), nil
}

// colEvalPred evaluates a predicate over the batch rows at idx in SQL
// three-valued logic, returning one Tri per index.
func (ex *Exec) colEvalPred(e qgm.Expr, b *colBatch, idx []int32, env *Env) ([]sqltypes.Tri, error) {
	switch x := e.(type) {
	case *qgm.Bin:
		switch x.Op {
		case qgm.OpAnd:
			return ex.colAndOr(x, b, idx, env, true)
		case qgm.OpOr:
			return ex.colAndOr(x, b, idx, env, false)
		}
		if x.Op.IsComparison() {
			if s, ok, err := ex.colScalar(x.R, b, env); ok {
				if err != nil {
					return nil, err
				}
				l, err := ex.colEval(x.L, b, idx, env)
				if err != nil {
					return nil, err
				}
				return colCompareScalar(x.Op, &l, s, false), nil
			}
			if s, ok, err := ex.colScalar(x.L, b, env); ok {
				if err != nil {
					return nil, err
				}
				r, err := ex.colEval(x.R, b, idx, env)
				if err != nil {
					return nil, err
				}
				return colCompareScalar(x.Op, &r, s, true), nil
			}
			l, err := ex.colEval(x.L, b, idx, env)
			if err != nil {
				return nil, err
			}
			r, err := ex.colEval(x.R, b, idx, env)
			if err != nil {
				return nil, err
			}
			return colCompare(x.Op, &l, &r), nil
		}
		return nil, fmt.Errorf("exec: %s is not a predicate", x.Op)
	case *qgm.Not:
		tris, err := ex.colEvalPred(x.E, b, idx, env)
		if err != nil {
			return nil, err
		}
		for i := range tris {
			tris[i] = tris[i].Not()
		}
		return tris, nil
	case *qgm.IsNull:
		v, err := ex.colEval(x.E, b, idx, env)
		if err != nil {
			return nil, err
		}
		tris := make([]sqltypes.Tri, len(idx))
		for k := range idx {
			res := v.IsNull(k)
			if x.Negate {
				res = !res
			}
			tris[k] = sqltypes.TriOf(res)
		}
		return tris, nil
	case *qgm.Like:
		v, err := ex.colEval(x.E, b, idx, env)
		if err != nil {
			return nil, err
		}
		p, err := ex.colEval(x.Pattern, b, idx, env)
		if err != nil {
			return nil, err
		}
		tris := make([]sqltypes.Tri, len(idx))
		for k := range idx {
			t := sqltypes.Like(v.Value(k), p.Value(k))
			if x.Negate {
				t = t.Not()
			}
			tris[k] = t
		}
		return tris, nil
	case *qgm.Const:
		if x.V.IsNull() {
			return fillTri(len(idx), sqltypes.Unknown), nil
		}
		if x.V.K == sqltypes.KindBool {
			return fillTri(len(idx), sqltypes.TriOf(x.V.B)), nil
		}
		return nil, fmt.Errorf("exec: non-boolean constant %s used as predicate", x.V)
	case *qgm.ColRef, *qgm.Case, *qgm.Func, *qgm.Param:
		v, err := ex.colEval(x, b, idx, env)
		if err != nil {
			return nil, err
		}
		tris := make([]sqltypes.Tri, len(idx))
		for k := range idx {
			val := v.Value(k)
			switch {
			case val.IsNull():
				tris[k] = sqltypes.Unknown
			case val.K == sqltypes.KindBool:
				tris[k] = sqltypes.TriOf(val.B)
			default:
				return nil, fmt.Errorf("exec: non-boolean value used as predicate")
			}
		}
		return tris, nil
	}
	return nil, fmt.Errorf("exec: unknown predicate %T", e)
}

// colAndOr evaluates AND/OR with the interpreter's short-circuiting: the
// right side evaluates only over rows the left side did not decide.
func (ex *Exec) colAndOr(x *qgm.Bin, b *colBatch, idx []int32, env *Env, isAnd bool) ([]sqltypes.Tri, error) {
	l, err := ex.colEvalPred(x.L, b, idx, env)
	if err != nil {
		return nil, err
	}
	short := sqltypes.False
	if !isAnd {
		short = sqltypes.True
	}
	n := 0
	for _, t := range l {
		if t != short {
			n++
		}
	}
	if n == 0 {
		return l, nil
	}
	if n == len(l) {
		// Nothing short-circuited: evaluate the right side over the same
		// index list and combine in place, no subset copies.
		r, err := ex.colEvalPred(x.R, b, idx, env)
		if err != nil {
			return nil, err
		}
		for k := range l {
			if isAnd {
				l[k] = l[k].And(r[k])
			} else {
				l[k] = l[k].Or(r[k])
			}
		}
		return l, nil
	}
	sub := make([]int32, 0, n)
	subPos := make([]int, 0, n)
	for k, t := range l {
		if t != short {
			sub = append(sub, idx[k])
			subPos = append(subPos, k)
		}
	}
	r, err := ex.colEvalPred(x.R, b, sub, env)
	if err != nil {
		return nil, err
	}
	for k, pos := range subPos {
		if isAnd {
			l[pos] = l[pos].And(r[k])
		} else {
			l[pos] = l[pos].Or(r[k])
		}
	}
	return l, nil
}

func fillTri(n int, t sqltypes.Tri) []sqltypes.Tri {
	tris := make([]sqltypes.Tri, n)
	for i := range tris {
		tris[i] = t
	}
	return tris
}

// colCompare compares two aligned vectors elementwise under op. Typed
// same-kind null-free inputs take tight loops; everything else goes
// through the row path's comparePred on boxed elements.
func colCompare(op qgm.Op, l, r *colvec.Vec) []sqltypes.Tri {
	n := l.Len()
	tris := make([]sqltypes.Tri, n)
	typed := l.Mixed == nil && r.Mixed == nil && l.Nulls == nil && r.Nulls == nil
	switch {
	case typed && l.K == sqltypes.KindInt && r.K == sqltypes.KindInt:
		li, ri := l.Ints, r.Ints
		for i := 0; i < n; i++ {
			c := 0
			switch {
			case li[i] < ri[i]:
				c = -1
			case li[i] > ri[i]:
				c = 1
			}
			tris[i] = triOfCmp(op, c)
		}
	case typed && l.K == sqltypes.KindFloat && r.K == sqltypes.KindFloat:
		lf, rf := l.Floats, r.Floats
		for i := 0; i < n; i++ {
			a, b := lf[i], rf[i]
			switch {
			case a < b:
				tris[i] = triOfCmp(op, -1)
			case a > b:
				tris[i] = triOfCmp(op, 1)
			case a == b:
				tris[i] = triOfCmp(op, 0)
			default: // NaN: incomparable
				tris[i] = sqltypes.Unknown
			}
		}
	case typed && l.K == sqltypes.KindString && r.K == sqltypes.KindString:
		ls, rs := l.Strs, r.Strs
		for i := 0; i < n; i++ {
			tris[i] = triOfCmp(op, strings.Compare(ls[i], rs[i]))
		}
	default:
		for i := 0; i < n; i++ {
			tris[i] = comparePred(op, l.Value(i), r.Value(i))
		}
	}
	return tris
}

func triOfCmp(op qgm.Op, c int) sqltypes.Tri {
	switch op {
	case qgm.OpEq:
		return sqltypes.TriOf(c == 0)
	case qgm.OpNe:
		return sqltypes.TriOf(c != 0)
	case qgm.OpLt:
		return sqltypes.TriOf(c < 0)
	case qgm.OpLe:
		return sqltypes.TriOf(c <= 0)
	case qgm.OpGt:
		return sqltypes.TriOf(c > 0)
	case qgm.OpGe:
		return sqltypes.TriOf(c >= 0)
	}
	return sqltypes.Unknown
}

// colScalar resolves e to a single batch-independent value: a literal, a
// bound parameter, or an outer (correlated) column reference. ok=false
// means e varies per batch row and must evaluate as a vector. Resolution
// errors are the exact values colEval would produce for the same node.
func (ex *Exec) colScalar(e qgm.Expr, b *colBatch, env *Env) (sqltypes.Value, bool, error) {
	switch x := e.(type) {
	case *qgm.Const:
		return x.V, true, nil
	case *qgm.Param:
		if x.Idx < 0 || x.Idx >= len(ex.opts.Params) {
			return sqltypes.Null, true, fmt.Errorf("exec: parameter ?%d not bound (%d values supplied)",
				x.Idx+1, len(ex.opts.Params))
		}
		return ex.opts.Params[x.Idx], true, nil
	case *qgm.ColRef:
		if b.quantIdx(x.Q) >= 0 {
			return sqltypes.Value{}, false, nil
		}
		row, ok := env.Get(x.Q)
		if !ok {
			return sqltypes.Null, true, fmt.Errorf("exec: unbound quantifier %s", x.Q.Name())
		}
		if x.Col >= len(row) {
			return sqltypes.Null, true, fmt.Errorf("exec: column %d out of range for %s (row width %d)",
				x.Col, x.Q.Name(), len(row))
		}
		return row[x.Col], true, nil
	}
	return sqltypes.Value{}, false, nil
}

// mirrorCmp swaps a comparison's operand order: a ⋄ b ≡ b ⋄' a.
func mirrorCmp(op qgm.Op) qgm.Op {
	switch op {
	case qgm.OpLt:
		return qgm.OpGt
	case qgm.OpLe:
		return qgm.OpGe
	case qgm.OpGt:
		return qgm.OpLt
	case qgm.OpGe:
		return qgm.OpLe
	}
	return op
}

// colCompareScalar compares a vector against one scalar operand.
// Constants, parameters, and correlated outer references hit this kernel,
// which never broadcasts the scalar into a vector. scalarLeft records the
// scalar's operand position; the typed fast paths mirror the operator so
// vector-on-the-left loops serve both orders, and the boxed fallback
// preserves the original order through comparePred.
func colCompareScalar(op qgm.Op, v *colvec.Vec, s sqltypes.Value, scalarLeft bool) []sqltypes.Tri {
	n := v.Len()
	tris := make([]sqltypes.Tri, n)
	if s.IsNull() || (v.Mixed == nil && v.K == sqltypes.KindNull) {
		for i := range tris {
			tris[i] = sqltypes.Unknown
		}
		return tris
	}
	vop := op
	if scalarLeft {
		vop = mirrorCmp(op)
	}
	nulls := v.Nulls
	switch {
	case v.Mixed == nil && v.K == sqltypes.KindInt && s.K == sqltypes.KindInt:
		c := s.I
		for i, x := range v.Ints {
			if nulls.Get(i) {
				tris[i] = sqltypes.Unknown
				continue
			}
			r := 0
			switch {
			case x < c:
				r = -1
			case x > c:
				r = 1
			}
			tris[i] = triOfCmp(vop, r)
		}
	case v.Mixed == nil && v.K == sqltypes.KindFloat && s.K == sqltypes.KindFloat:
		c := s.F
		for i, x := range v.Floats {
			if nulls.Get(i) {
				tris[i] = sqltypes.Unknown
				continue
			}
			switch {
			case x < c:
				tris[i] = triOfCmp(vop, -1)
			case x > c:
				tris[i] = triOfCmp(vop, 1)
			case x == c:
				tris[i] = triOfCmp(vop, 0)
			default: // NaN: incomparable
				tris[i] = sqltypes.Unknown
			}
		}
	case v.Mixed == nil && v.K == sqltypes.KindString && s.K == sqltypes.KindString:
		c := s.S
		for i, x := range v.Strs {
			if nulls.Get(i) {
				tris[i] = sqltypes.Unknown
				continue
			}
			tris[i] = triOfCmp(vop, strings.Compare(x, c))
		}
	default:
		for i := 0; i < n; i++ {
			if scalarLeft {
				tris[i] = comparePred(op, s, v.Value(i))
			} else {
				tris[i] = comparePred(op, v.Value(i), s)
			}
		}
	}
	return tris
}

// colArithScalar applies +,-,*,/ between a vector and one scalar operand,
// with the same typed fast paths and boxed fallback as colArith (division
// always falls through to sqltypes.Arith so zero-divisor errors match).
func colArithScalar(op qgm.Op, v *colvec.Vec, s sqltypes.Value, scalarLeft bool) (colvec.Vec, error) {
	n := v.Len()
	typed := v.Mixed == nil && v.Nulls == nil && v.K != sqltypes.KindNull
	if typed && op != qgm.OpDiv && v.K == sqltypes.KindInt && s.K == sqltypes.KindInt {
		out := make([]int64, n)
		c := s.I
		switch op {
		case qgm.OpAdd:
			for i, x := range v.Ints {
				out[i] = x + c
			}
		case qgm.OpSub:
			if scalarLeft {
				for i, x := range v.Ints {
					out[i] = c - x
				}
			} else {
				for i, x := range v.Ints {
					out[i] = x - c
				}
			}
		case qgm.OpMul:
			for i, x := range v.Ints {
				out[i] = x * c
			}
		}
		return colvec.FromInts(out), nil
	}
	if typed && op != qgm.OpDiv &&
		(v.K == sqltypes.KindInt || v.K == sqltypes.KindFloat) &&
		(s.K == sqltypes.KindInt || s.K == sqltypes.KindFloat) {
		out := make([]float64, n)
		c := s.F
		if s.K == sqltypes.KindInt {
			c = float64(s.I)
		}
		vf := func(i int) float64 {
			if v.K == sqltypes.KindInt {
				return float64(v.Ints[i])
			}
			return v.Floats[i]
		}
		switch op {
		case qgm.OpAdd:
			for i := range out {
				out[i] = vf(i) + c
			}
		case qgm.OpSub:
			if scalarLeft {
				for i := range out {
					out[i] = c - vf(i)
				}
			} else {
				for i := range out {
					out[i] = vf(i) - c
				}
			}
		case qgm.OpMul:
			for i := range out {
				out[i] = vf(i) * c
			}
		}
		return colvec.FromFloats(out), nil
	}
	out := make([]sqltypes.Value, n)
	aop := arithOf(op)
	for i := 0; i < n; i++ {
		a, b := v.Value(i), s
		if scalarLeft {
			a, b = s, v.Value(i)
		}
		r, err := sqltypes.Arith(aop, a, b)
		if err != nil {
			return colvec.Vec{}, err
		}
		out[i] = r
	}
	return colvec.FromValues(out), nil
}

// colArith applies +,-,*,/ elementwise. Same-kind null-free int and float
// inputs take typed loops that reproduce sqltypes.Arith exactly (integer
// ops wrap, division is always float); other shapes — including every
// division, whose zero-divisor error must match — evaluate per element
// through sqltypes.Arith itself.
func colArith(op qgm.Op, l, r *colvec.Vec) (colvec.Vec, error) {
	n := l.Len()
	typed := l.Mixed == nil && r.Mixed == nil && l.Nulls == nil && r.Nulls == nil
	if typed && op != qgm.OpDiv && l.K == sqltypes.KindInt && r.K == sqltypes.KindInt {
		out := make([]int64, n)
		li, ri := l.Ints, r.Ints
		switch op {
		case qgm.OpAdd:
			for i := range out {
				out[i] = li[i] + ri[i]
			}
		case qgm.OpSub:
			for i := range out {
				out[i] = li[i] - ri[i]
			}
		case qgm.OpMul:
			for i := range out {
				out[i] = li[i] * ri[i]
			}
		}
		return colvec.FromInts(out), nil
	}
	if typed && op != qgm.OpDiv &&
		(l.K == sqltypes.KindInt || l.K == sqltypes.KindFloat) &&
		(r.K == sqltypes.KindInt || r.K == sqltypes.KindFloat) {
		out := make([]float64, n)
		lf := func(i int) float64 {
			if l.K == sqltypes.KindInt {
				return float64(l.Ints[i])
			}
			return l.Floats[i]
		}
		rf := func(i int) float64 {
			if r.K == sqltypes.KindInt {
				return float64(r.Ints[i])
			}
			return r.Floats[i]
		}
		switch op {
		case qgm.OpAdd:
			for i := range out {
				out[i] = lf(i) + rf(i)
			}
		case qgm.OpSub:
			for i := range out {
				out[i] = lf(i) - rf(i)
			}
		case qgm.OpMul:
			for i := range out {
				out[i] = lf(i) * rf(i)
			}
		}
		return colvec.FromFloats(out), nil
	}
	out := make([]sqltypes.Value, n)
	aop := arithOf(op)
	for i := 0; i < n; i++ {
		v, err := sqltypes.Arith(aop, l.Value(i), r.Value(i))
		if err != nil {
			return colvec.Vec{}, err
		}
		out[i] = v
	}
	return colvec.FromValues(out), nil
}
