package exec_test

import (
	"strings"
	"testing"

	"decorr/internal/exec"
	"decorr/internal/parser"
	"decorr/internal/qgm"
	"decorr/internal/semant"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

// run parses, binds and executes sql against db with nested iteration
// (no rewrites), returning rendered rows.
func run(t *testing.T, db *storage.DB, sql string) []string {
	t.Helper()
	rows, _, err := runErr(db, sql)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return rows
}

func runErr(db *storage.DB, sql string) ([]string, *exec.Stats, error) {
	q, err := parser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	g, err := semant.Bind(q, db.Catalog)
	if err != nil {
		return nil, nil, err
	}
	if err := qgm.Validate(g); err != nil {
		return nil, nil, err
	}
	ex := exec.New(db, exec.Options{})
	rows, err := ex.Run(g)
	if err != nil {
		return nil, nil, err
	}
	return render(rows), &ex.Stats, nil
}

func render(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func expectRows(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("row %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestExampleQueryNestedIteration(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, tpcd.ExampleQuery)
	// archives qualifies only because COUNT over an empty building is 0 —
	// the row Kim's method loses.
	expectRows(t, got, []string{"archives", "toys"})
}

func TestSimpleSelect(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `select name, building from emp where building = 'B2' order by name`)
	expectRows(t, got, []string{"carl|B2", "dina|B2", "ed|B2"})
}

func TestJoin(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select d.name, e.name from dept d, emp e
		where d.building = e.building and d.budget < 8000
		order by 1, 2`)
	expectRows(t, got, []string{"tools|anne", "tools|bob"})
}

func TestGroupByHaving(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select building, count(*) as n from emp
		group by building having count(*) >= 2 order by building`)
	expectRows(t, got, []string{"B1|2", "B2|3"})
}

func TestUngroupedAggregateOnEmptyInput(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `select count(*), min(name) from emp where building = 'B777'`)
	expectRows(t, got, []string{"0|NULL"})
}

func TestDistinct(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `select distinct building from emp order by building`)
	expectRows(t, got, []string{"B1", "B2", "B3"})
}

func TestUnion(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select building from emp where name = 'anne'
		union
		select building from dept where name = 'tools'
		order by building`)
	expectRows(t, got, []string{"B1"})
	got = run(t, db, `
		select building from emp where name = 'anne'
		union all
		select building from dept where name = 'tools'
		order by building`)
	expectRows(t, got, []string{"B1", "B1"})
}

func TestExistsAndNotExists(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select d.name from dept d
		where exists (select * from emp e where e.building = d.building)
		order by name`)
	expectRows(t, got, []string{"jewels", "shoes", "tools", "toys"})
	got = run(t, db, `
		select d.name from dept d
		where not exists (select * from emp e where e.building = d.building)`)
	expectRows(t, got, []string{"archives"})
}

func TestInSubquery(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select name from emp where building in
		(select building from dept where budget < 8000) order by name`)
	expectRows(t, got, []string{"anne", "bob"})
	got = run(t, db, `
		select name from emp where building not in
		(select building from dept) order by name`)
	expectRows(t, got, []string{"fay"})
}

func TestAnyAll(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select name from dept where budget >= all (select budget from dept)`)
	expectRows(t, got, []string{"jewels"})
	got = run(t, db, `
		select name from dept where budget < any (select budget from dept) order by name`)
	expectRows(t, got, []string{"archives", "shoes", "tools", "toys"})
}

func TestScalarSubqueryEmptyIsNull(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select name from dept d
		where (select min(e.name) from emp e where e.building = d.building) is null
		order by name`)
	expectRows(t, got, []string{"archives"})
}

func TestCorrelationStats(t *testing.T) {
	db := tpcd.EmpDept()
	_, stats, err := runErr(db, tpcd.ExampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	// 4 low-budget departments -> 4 invocations over 3 distinct buildings
	// (B1 twice).
	if stats.SubqueryInvocations != 4 {
		t.Errorf("invocations = %d, want 4", stats.SubqueryInvocations)
	}
	if stats.DistinctInvocations != 3 {
		t.Errorf("distinct invocations = %d, want 3", stats.DistinctInvocations)
	}
}

func TestMemoizedNI(t *testing.T) {
	db := tpcd.EmpDept()
	q, err := parser.Parse(tpcd.ExampleQuery)
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.Bind(q, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	ex := exec.New(db, exec.Options{MemoizeCorrelated: true})
	rows, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, render(rows), []string{"archives", "toys"})
	if ex.Stats.MemoHits != 1 {
		t.Errorf("memo hits = %d, want 1 (B1 repeated)", ex.Stats.MemoHits)
	}
}

func TestDerivedTable(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select b, n from (select building, count(*) from emp group by building) as t(b, n)
		where n > 1 order by b`)
	expectRows(t, got, []string{"B1|2", "B2|3"})
}

func TestArithmeticAndAliases(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select name, budget / 2 + 1 as half from dept where name = 'toys'`)
	expectRows(t, got, []string{"toys|4001"})
}

func TestBetweenAndLikeAndInList(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `select name from dept where budget between 7000 and 9000 order by name`)
	expectRows(t, got, []string{"shoes", "tools", "toys"})
	got = run(t, db, `select name from emp where name like '%a%' order by name`)
	expectRows(t, got, []string{"anne", "carl", "dina", "fay"})
	got = run(t, db, `select name from emp where building in ('B2', 'B3') order by name`)
	expectRows(t, got, []string{"carl", "dina", "ed", "fay"})
}

func TestMultiLevelCorrelation(t *testing.T) {
	db := tpcd.EmpDept()
	// The innermost block references d.building across two levels.
	got := run(t, db, `
		select d.name from dept d
		where d.num_emps > (
			select count(*) from emp e
			where e.building = d.building and exists (
				select * from emp e2 where e2.building = d.building and e2.name < e.name))
		order by name`)
	// counts: B1 -> emps with a smaller-named colleague in B1: bob(anne) = 1;
	// toys 3>1 yes, tools 2>1 yes. B2 -> dina(carl), ed(carl,dina) = 2;
	// shoes 1>2 no, jewels budget irrelevant (num_emps 4 > 2 yes).
	// archives: count 0, 1>0 yes.
	expectRows(t, got, []string{"archives", "jewels", "tools", "toys"})
}

func TestAvgSumMinMax(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `select sum(budget), min(budget), max(budget) from dept`)
	expectRows(t, got, []string{"74500|500|50000"})
	got = run(t, db, `select count(distinct building) from dept`)
	expectRows(t, got, []string{"3"})
}

func TestHavingWithSubqueries(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select building, count(*) from emp
		group by building
		having count(*) > (select min(num_emps) from dept)
		order by building`)
	// min(num_emps) = 1; buildings with >1 employees: B1 (2), B2 (3).
	expectRows(t, got, []string{"B1|2", "B2|3"})

	got = run(t, db, `
		select building from emp
		group by building
		having exists (select * from dept where budget > 40000)
		order by building`)
	expectRows(t, got, []string{"B1", "B2", "B3"})

	got = run(t, db, `
		select building from emp
		group by building
		having count(*) in (select num_emps from dept)
		order by building`)
	// counts: B1=2, B2=3, B3=1; dept num_emps: {3,1,1,2,4}.
	expectRows(t, got, []string{"B1", "B2", "B3"})
}

func TestHavingSubqueryUngroupedColumnRejected(t *testing.T) {
	db := tpcd.EmpDept()
	_, _, err := runErr(db, `
		select building from emp e
		group by building
		having exists (select * from dept d where d.name = e.name)`)
	if err == nil {
		t.Fatal("HAVING subquery referencing an ungrouped column must be rejected")
	}
}

func TestOrderByNullsFirst(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select d.name, e.name
		from dept d left outer join emp e on d.building = e.building
		where d.budget < 9000
		order by 2, 1`)
	if got[0] != "archives|NULL" {
		t.Fatalf("NULL should sort first ascending: %v", got)
	}
	got = run(t, db, `
		select d.name, e.name
		from dept d left outer join emp e on d.building = e.building
		where d.budget < 9000
		order by 2 desc, 1`)
	if got[len(got)-1] != "archives|NULL" {
		t.Fatalf("NULL should sort last descending: %v", got)
	}
}

func TestScalarSubqueryMultipleRowsErrors(t *testing.T) {
	db := tpcd.EmpDept()
	_, _, err := runErr(db, `
		select name from dept
		where budget = (select budget from dept)`)
	if err == nil || !strings.Contains(err.Error(), "scalar subquery") {
		t.Fatalf("want scalar cardinality error, got %v", err)
	}
}

func TestMinMaxOverStrings(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `select min(name), max(name) from emp`)
	expectRows(t, got, []string{"anne|fay"})
}

func TestGroupByExpression(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select budget / 1000, count(*) from dept
		group by budget / 1000
		order by 1`)
	// Division is float (integer division is not modeled):
	// budgets 500, 7000, 8000, 9000, 50000.
	expectRows(t, got, []string{"0.5|1", "7|1", "8|1", "9|1", "50|1"})
}

func TestAvgOfEmptyGroupIsNull(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `select avg(budget) from dept where budget > 999999`)
	expectRows(t, got, []string{"NULL"})
}

func TestSumIntegerStaysInteger(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `select sum(num_emps) from dept`)
	expectRows(t, got, []string{"11"})
}

func TestNotInWithNullInSubquery(t *testing.T) {
	db := tpcd.EmpDept()
	// The classic NOT IN trap: a NULL in the subquery makes every
	// comparison UNKNOWN, so no row can pass.
	got := run(t, db, `
		select name from emp where building not in
		(select building from dept union all select null from dept)`)
	expectRows(t, got, nil)
	// IN is unaffected by the NULL for matching values.
	got = run(t, db, `
		select name from emp where building in
		(select building from dept union all select null from dept)
		order by name`)
	expectRows(t, got, []string{"anne", "bob", "carl", "dina", "ed"})
}

func TestAllVacuousAndUnknown(t *testing.T) {
	db := tpcd.EmpDept()
	// ALL over an empty set is vacuously true.
	got := run(t, db, `
		select count(*) from dept
		where budget > all (select budget from dept where name = 'nosuch')`)
	expectRows(t, got, []string{"5"})
	// A NULL in the ALL set forces UNKNOWN for otherwise-true rows.
	got = run(t, db, `
		select name from dept
		where budget >= all (select budget from dept union all select null from dept)`)
	expectRows(t, got, nil)
}

func TestAnyOverEmptyIsFalse(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `
		select count(*) from dept
		where budget = any (select budget from dept where name = 'nosuch')`)
	expectRows(t, got, []string{"0"})
}

func TestLimit(t *testing.T) {
	db := tpcd.EmpDept()
	got := run(t, db, `select name from emp order by name limit 3`)
	expectRows(t, got, []string{"anne", "bob", "carl"})
	got = run(t, db, `select name from emp limit 0`)
	expectRows(t, got, nil)
	got = run(t, db, `select name from emp limit 100`)
	if len(got) != 6 {
		t.Fatalf("over-limit truncated: %d rows", len(got))
	}
	if _, _, err := runErr(db, `select name from (select name from emp limit 2) as t`); err == nil {
		t.Fatal("inner LIMIT must be rejected")
	}
	if _, _, err := runErr(db, `select name from (select name from emp order by name) as t`); err == nil {
		t.Fatal("inner ORDER BY must be rejected")
	}
}
