package exec

import (
	"fmt"

	"decorr/internal/qgm"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// bindSubqueryCheck filters the tuple stream through an existential or
// universal quantifier. The input is materialized once when it has no
// dependencies on this box's quantifiers (the set-oriented case a
// decorrelated plan reaches) — with a hash fast path for equality tie
// predicates — and re-evaluated per tuple otherwise (nested iteration).
func (ex *Exec) bindSubqueryCheck(li *lateQuant, tuples []*Env, env *Env) ([]*Env, error) {
	q := li.q
	inputLocal := false // input depends on this box's own quantifiers
	for _, r := range qgm.FreeRefs(q.Input) {
		if r.Q.Owner == q.Owner && !r.Q.Kind.IsSubquery() {
			inputLocal = true
			break
		}
	}
	if inputLocal {
		// Correlated to sibling quantifiers. Under BatchCorrelated the
		// whole outer stream evaluates set-at-a-time; the quantifier
		// condition is order-insensitive over each tuple's materialized
		// rows, so probing the batched results per tuple is exactly the
		// per-tuple evaluation below.
		if per, ok, err := ex.batchSubqueryRows(q, tuples, env); err != nil {
			return nil, err
		} else if ok {
			kept, err := parallelChunks(ex, len(tuples), subqMorsel, func(lo, hi int) ([]*Env, error) {
				var out []*Env
				for i := lo; i < hi; i++ {
					pass, err := ex.quantCond(q, li.ties, per[i], tuples[i])
					if err != nil {
						return nil, err
					}
					if pass {
						out = append(out, tuples[i])
					}
				}
				return out, nil
			})
			if err != nil {
				return nil, err
			}
			return concat(kept), nil
		}
		// Evaluate per tuple: the nested-iteration hot loop, fanned out
		// over outer bindings.
		return parallelFilter(ex, tuples, subqMorsel, func(t *Env) (bool, error) {
			rows, err := ex.evalSubqueryInput(q.Input, t)
			if err != nil {
				return false, err
			}
			return ex.quantCond(q, li.ties, rows, t)
		})
	}

	rows, err := ex.evalSubqueryInput(q.Input, env)
	if err != nil {
		return nil, err
	}

	// Hash fast path: all ties are equalities between a probe expression
	// (bound/outer side) and a subquery-side expression.
	probeExprs, subExprs, hashable := splitTies(li.ties, q)
	if hashable && (q.Kind == qgm.QExists || q.Kind == qgm.QNotExists || q.Kind == qgm.QAny) {
		if err := ex.hashBuildCheck(rows); err != nil {
			return nil, err
		}
		bump(&ex.Stats.HashBuilds, 1)
		type buildKey struct {
			key  string
			skip bool
		}
		keys, err := parallelMap(ex, rows, rowMorsel, func(r storage.Row) (buildKey, error) {
			renv := Bind(env, q, r)
			key, null, err := ex.keyFor(subExprs, renv)
			if err != nil {
				return buildKey{}, err
			}
			// A NULL component can never satisfy the equality.
			return buildKey{key: key, skip: null}, nil
		})
		if err != nil {
			return nil, err
		}
		h := make(map[string]bool, len(rows))
		for _, bk := range keys {
			if !bk.skip {
				h[bk.key] = true
			}
		}
		return parallelFilter(ex, tuples, rowMorsel, func(t *Env) (bool, error) {
			key, null, err := ex.keyFor(probeExprs, t)
			if err != nil {
				return false, err
			}
			switch q.Kind {
			case qgm.QExists, qgm.QAny:
				return !null && h[key], nil
			case qgm.QNotExists:
				return null || !h[key], nil
			}
			return false, nil
		})
	}

	// General slow path over the materialized rows.
	return parallelFilter(ex, tuples, rowMorsel, func(t *Env) (bool, error) {
		return ex.quantCond(q, li.ties, rows, t)
	})
}

// splitTies decomposes tie predicates into (probe, subquery-side) equality
// expression pairs; ok=false when any tie is not such an equality (then the
// slow path runs). A bare EXISTS has zero ties and is trivially hashable.
func splitTies(ties []*selPred, q *qgm.Quantifier) (probe, sub []qgm.Expr, ok bool) {
	for _, pi := range ties {
		bin, isBin := pi.expr.(*qgm.Bin)
		if !isBin || bin.Op != qgm.OpEq {
			return nil, nil, false
		}
		lq, rq := qgm.RefsQuant(bin.L, q), qgm.RefsQuant(bin.R, q)
		switch {
		case rq && !lq:
			probe = append(probe, bin.L)
			sub = append(sub, bin.R)
		case lq && !rq:
			probe = append(probe, bin.R)
			sub = append(sub, bin.L)
		default:
			return nil, nil, false
		}
	}
	return probe, sub, true
}

// quantCond evaluates the quantifier condition for one outer tuple against
// materialized subquery rows, with full three-valued-logic semantics:
//
//	EXISTS      — some row satisfies all ties (TRUE only);
//	NOT EXISTS  — no row does;
//	ANY         — some row compares TRUE;
//	ALL         — every row compares TRUE (vacuously true when empty; a
//	              FALSE or UNKNOWN row fails the predicate, which matches
//	              SQL's rule that only an overall TRUE passes WHERE).
func (ex *Exec) quantCond(q *qgm.Quantifier, ties []*selPred, rows []storage.Row, t *Env) (bool, error) {
	rowTruth := func(r storage.Row) (sqltypes.Tri, error) {
		renv := Bind(t, q, r)
		acc := sqltypes.True
		for _, pi := range ties {
			tr, err := ex.EvalPred(pi.expr, renv)
			if err != nil {
				return sqltypes.Unknown, err
			}
			acc = acc.And(tr)
			if acc == sqltypes.False {
				return sqltypes.False, nil
			}
		}
		return acc, nil
	}
	switch q.Kind {
	case qgm.QExists, qgm.QAny:
		for _, r := range rows {
			tr, err := rowTruth(r)
			if err != nil {
				return false, err
			}
			if tr == sqltypes.True {
				return true, nil
			}
		}
		return false, nil
	case qgm.QNotExists:
		for _, r := range rows {
			tr, err := rowTruth(r)
			if err != nil {
				return false, err
			}
			if tr == sqltypes.True {
				return false, nil
			}
		}
		return true, nil
	case qgm.QAll:
		for _, r := range rows {
			tr, err := rowTruth(r)
			if err != nil {
				return false, err
			}
			if tr != sqltypes.True {
				return false, nil
			}
		}
		return true, nil
	}
	return false, fmt.Errorf("exec: quantCond on %v quantifier", q.Kind)
}
