package exec_test

import (
	"fmt"
	"testing"

	"decorr/internal/exec"
	"decorr/internal/parser"
	"decorr/internal/semant"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

func mustPrepare(b *testing.B, db *storage.DB, sql string) func() {
	b.Helper()
	q, err := parser.Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	g, err := semant.Bind(q, db.Catalog)
	if err != nil {
		b.Fatal(err)
	}
	return func() {
		ex := exec.New(db, exec.Options{})
		if _, err := ex.Run(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashJoin measures the equi-join path (build + probe).
func BenchmarkHashJoin(b *testing.B) {
	db := tpcd.Generate(tpcd.Config{SF: 0.05, Seed: 1, SkipIndexes: true})
	run := mustPrepare(b, db, `
		select count(*) from partsupp ps, suppliers s
		where ps.ps_suppkey = s.s_suppkey`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkIndexNestedLoop measures the index probe path.
func BenchmarkIndexNestedLoop(b *testing.B) {
	db := tpcd.Generate(tpcd.Config{SF: 0.05, Seed: 1})
	run := mustPrepare(b, db, `
		select count(*) from parts p, partsupp ps
		where p.p_partkey = ps.ps_partkey and p.p_size < 4`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkHashAggregate measures grouped aggregation throughput.
func BenchmarkHashAggregate(b *testing.B) {
	db := tpcd.Generate(tpcd.Config{SF: 0.05, Seed: 1})
	run := mustPrepare(b, db, `
		select l_partkey, sum(l_quantity), count(*) from lineitem group by l_partkey`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkDistinct measures deduplication.
func BenchmarkDistinct(b *testing.B) {
	db := tpcd.Generate(tpcd.Config{SF: 0.05, Seed: 1})
	run := mustPrepare(b, db, `select distinct l_partkey from lineitem`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkPredicateEval measures expression evaluation over a scan.
func BenchmarkPredicateEval(b *testing.B) {
	db := tpcd.Generate(tpcd.Config{SF: 0.05, Seed: 1})
	run := mustPrepare(b, db, `
		select count(*) from lineitem
		where l_quantity * 2 + 1 > 30 and l_extendedprice < 50000`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkCorrelatedInvocation isolates the per-binding cost of nested
// iteration (index-assisted subquery).
func BenchmarkCorrelatedInvocation(b *testing.B) {
	for _, nDept := range []int{50, 200} {
		db := tpcd.EmpDeptSized(nDept, 2000, 16, 1)
		run := mustPrepare(b, db, tpcd.ExampleQuery)
		b.Run(fmt.Sprintf("bindings=%d", nDept), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}

// BenchmarkJoinOrderPlanning isolates the static planner.
func BenchmarkJoinOrderPlanning(b *testing.B) {
	db := tpcd.Generate(tpcd.Config{SF: 0.02, Seed: 1})
	q, err := parser.Parse(tpcd.Query1)
	if err != nil {
		b.Fatal(err)
	}
	g, err := semant.Bind(q, db.Catalog)
	if err != nil {
		b.Fatal(err)
	}
	ex := exec.New(db, exec.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.JoinOrder(g.Root)
	}
}
