package exec

import (
	"runtime"
	"testing"
)

// Table-driven contract for the Workers knob: every input — including
// garbage — maps to one deterministic pool size. This is the single
// choke point for worker-count validation; the CLI and REPL reject bad
// values earlier, but library callers land here.
func TestResolveWorkers(t *testing.T) {
	cases := []struct {
		name     string
		in, want int
	}{
		{"default", 0, runtime.GOMAXPROCS(0)},
		{"serial", 1, 1},
		{"small", 7, 7},
		{"at-cap", maxWorkers, maxWorkers},
		{"over-cap", maxWorkers + 1, maxWorkers},
		{"absurd", 1 << 30, maxWorkers},
		{"negative", -1, 1},
		{"very-negative", -1 << 30, 1},
	}
	for _, c := range cases {
		if got := resolveWorkers(c.in); got != c.want {
			t.Errorf("%s: resolveWorkers(%d) = %d, want %d", c.name, c.in, got, c.want)
		}
	}
}
