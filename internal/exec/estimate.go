package exec

import (
	"math"

	"decorr/internal/qgm"
)

// The estimator is deliberately small: it exists to order joins the way the
// paper's optimizer would (selective scans first, connected joins before
// cross products), not to be a cost model. Selectivity defaults follow the
// classic System R constants.
const (
	selEqDefault    = 0.1
	selRange        = 1.0 / 3.0
	selLike         = 0.1
	selNe           = 0.9
	selOther        = 1.0 / 3.0
	crossPenalty    = 1e3
	defaultNDVRatio = 10.0
)

// estBoxRows estimates the output cardinality of a box, memoized. analyze
// warms the memo for every box reachable from the Run root before any
// fan-out, so calls during parallel execution are pure memo hits and the
// join order cannot depend on which worker resolved an estimate first; the
// lock is for -race cleanliness on the estimation-only entry points.
func (ex *Exec) estBoxRows(b *qgm.Box) float64 {
	ex.estMu.Lock()
	if v, ok := ex.est[b]; ok {
		ex.estMu.Unlock()
		return v
	}
	ex.est[b] = 1 // guard against cycles (impossible in valid graphs)
	ex.estMu.Unlock()
	var v float64
	switch b.Kind {
	case qgm.BoxBase:
		if t := ex.db.Table(b.Table.Name); t != nil {
			v = math.Max(1, float64(len(t.Rows)))
		} else {
			v = 1
		}
	case qgm.BoxSelect:
		v = 1
		for _, q := range b.Quants {
			if q.Kind == qgm.QForEach {
				v *= ex.estBoxRows(q.Input)
			}
		}
		for _, p := range b.Preds {
			v *= ex.predSel(p)
		}
		v = math.Max(1, v)
	case qgm.BoxGroup:
		if len(b.GroupBy) == 0 {
			v = 1
		} else {
			in := ex.estBoxRows(b.Quants[0].Input)
			ndv := 1.0
			for _, g := range b.GroupBy {
				ndv *= ex.estNDV(g)
			}
			v = math.Max(1, math.Min(in, ndv))
		}
	case qgm.BoxUnion:
		for _, q := range b.Quants {
			v += ex.estBoxRows(q.Input)
		}
	case qgm.BoxIntersect:
		v = math.Max(1, math.Min(ex.estBoxRows(b.Quants[0].Input), ex.estBoxRows(b.Quants[1].Input))/2)
	case qgm.BoxExcept:
		v = math.Max(ex.estBoxRows(b.Quants[0].Input)/2, 1)
	case qgm.BoxLeftJoin:
		v = math.Max(ex.estBoxRows(b.Quants[0].Input), 1)
	default:
		v = 1
	}
	ex.estMu.Lock()
	ex.est[b] = v
	ex.estMu.Unlock()
	return v
}

// estNDV estimates the number of distinct values of an expression; exact
// for base-table column references, a root heuristic otherwise.
func (ex *Exec) estNDV(e qgm.Expr) float64 {
	if r, ok := e.(*qgm.ColRef); ok {
		in := r.Q.Input
		if in.Kind == qgm.BoxBase {
			if t := ex.db.Table(in.Table.Name); t != nil {
				return math.Max(1, float64(t.NDV(r.Col)))
			}
		}
		return math.Max(1, ex.estBoxRows(in)/defaultNDVRatio)
	}
	return defaultNDVRatio
}

// predSel estimates the selectivity of one conjunct.
func (ex *Exec) predSel(p qgm.Expr) float64 {
	switch x := p.(type) {
	case *qgm.Bin:
		switch x.Op {
		case qgm.OpEq:
			ndv := math.Max(ex.estNDV(x.L), ex.estNDV(x.R))
			// Both sides non-columns: generic equality.
			if _, lc := x.L.(*qgm.ColRef); !lc {
				if _, rc := x.R.(*qgm.ColRef); !rc {
					return selEqDefault
				}
			}
			return 1 / ndv
		case qgm.OpNe:
			return selNe
		case qgm.OpLt, qgm.OpLe, qgm.OpGt, qgm.OpGe:
			if s, ok := ex.histogramSel(x); ok {
				return s
			}
			return selRange
		case qgm.OpAnd:
			return ex.predSel(x.L) * ex.predSel(x.R)
		case qgm.OpOr:
			return math.Min(1, ex.predSel(x.L)+ex.predSel(x.R))
		}
	case *qgm.Like:
		return selLike
	case *qgm.Not:
		return 1 - ex.predSel(x.E)
	case *qgm.IsNull:
		return 0.1
	}
	return selOther
}

// estQuantGrowth estimates the per-tuple growth factor of binding q next:
// its input size after local predicates, times join-predicate selectivity
// against the bound set; disconnected quantifiers pay a cross penalty.
func (ex *Exec) estQuantGrowth(q *qgm.Quantifier, bound map[*qgm.Quantifier]bool, preds []*selPred) float64 {
	base := ex.estBoxRows(q.Input)
	connected := len(bound) == 0
	for _, pi := range preds {
		if pi.applied || pi.sub != nil || !pi.deps[q] {
			continue
		}
		if len(pi.deps) == 1 {
			base *= ex.predSel(pi.expr) // local predicate
			continue
		}
		if depsSubset(pi.deps, bound, q) {
			base *= ex.predSel(pi.expr)
			connected = true
		}
	}
	if !connected && len(bound) > 0 {
		base *= crossPenalty
	}
	return math.Max(base, 1e-6)
}

// EstimateGrowth exposes the per-tuple growth estimate of binding q next
// in box b, given an already-bound set (used by the shared-nothing plan
// model). It accounts for q's local predicate selectivity and the join
// predicates connecting it to the bound set.
func (ex *Exec) EstimateGrowth(b *qgm.Box, q *qgm.Quantifier, bound map[*qgm.Quantifier]bool) float64 {
	own := map[*qgm.Quantifier]bool{}
	for _, bq := range b.Quants {
		own[bq] = true
	}
	preds := make([]*selPred, 0, len(b.Preds))
	for _, p := range b.Preds {
		pi := &selPred{expr: p, deps: map[*qgm.Quantifier]bool{}}
		for qq := range qgm.QuantSet(p) {
			if !own[qq] {
				continue
			}
			if qq.Kind.IsSubquery() {
				pi.sub = qq
			} else {
				pi.deps[qq] = true
			}
		}
		// Predicates already applicable before q binds do not count
		// against q's growth.
		if pi.sub == nil && depsAllBound(pi.deps, bound) {
			pi.applied = true
		}
		preds = append(preds, pi)
	}
	return ex.estQuantGrowth(q, bound, preds)
}

func depsAllBound(deps, bound map[*qgm.Quantifier]bool) bool {
	for d := range deps {
		if !bound[d] {
			return false
		}
	}
	return true
}

// histogramSel estimates a range comparison between a base-table column
// and a constant from the column's equi-depth histogram.
func (ex *Exec) histogramSel(b *qgm.Bin) (float64, bool) {
	ref, cst, op := exprConstSides(b)
	if ref == nil {
		return 0, false
	}
	in := ref.Q.Input
	if in.Kind != qgm.BoxBase {
		return 0, false
	}
	t := ex.db.Table(in.Table.Name)
	if t == nil {
		return 0, false
	}
	h := t.Histogram(ref.Col)
	if h == nil {
		return 0, false
	}
	var s float64
	switch op {
	case qgm.OpLt:
		s = h.FracBelow(cst.V, false)
	case qgm.OpLe:
		s = h.FracBelow(cst.V, true)
	case qgm.OpGt:
		s = float64(h.NonNull)/float64(h.Rows) - h.FracBelow(cst.V, true)
	case qgm.OpGe:
		s = float64(h.NonNull)/float64(h.Rows) - h.FracBelow(cst.V, false)
	default:
		return 0, false
	}
	return math.Min(1, math.Max(s, 1e-4)), true
}

// exprConstSides decomposes cmp into (column, constant, normalized op with
// the column on the left).
func exprConstSides(b *qgm.Bin) (*qgm.ColRef, *qgm.Const, qgm.Op) {
	if r, ok := b.L.(*qgm.ColRef); ok {
		if c, ok := b.R.(*qgm.Const); ok {
			return r, c, b.Op
		}
	}
	if r, ok := b.R.(*qgm.ColRef); ok {
		if c, ok := b.L.(*qgm.Const); ok {
			return r, c, b.Op.Flip()
		}
	}
	return nil, nil, b.Op
}
