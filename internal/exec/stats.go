package exec

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Stats are the work counters the benchmark harness reports alongside wall
// time. They are engine-independent measures of the quantities the paper's
// analysis reasons about: how many times correlated subqueries were
// invoked (and with how many distinct bindings), how many base-table rows
// were touched, and how large the intermediate joins were.
type Stats struct {
	// SubqueryInvocations counts evaluations of correlated boxes — the
	// tuple-at-a-time work that decorrelation eliminates.
	SubqueryInvocations int64
	// DistinctInvocations counts distinct correlation bindings observed
	// across those invocations (the paper reports e.g. "3954 invocations,
	// of which only 2138 are distinct").
	DistinctInvocations int64
	// MemoHits counts correlated evaluations served from the NI-memo
	// cache (only with Options.MemoizeCorrelated).
	MemoHits int64
	// BatchedSubqueries counts correlated evaluations served by the
	// set-at-a-time batch path instead of per-tuple iteration (only with
	// Options.BatchCorrelated). Each one is also a SubqueryInvocation.
	BatchedSubqueries int64
	// BatchExecutions counts subtree executions the batch path performed:
	// one per batch on the single-execution path, one per distinct
	// binding on the per-binding fallback. The fan-out collapse is the
	// ratio BatchedSubqueries / BatchExecutions.
	BatchExecutions int64
	// BoxEvals counts box evaluations of any kind.
	BoxEvals int64
	// RowsScanned counts base-table rows produced by full scans.
	RowsScanned int64
	// IndexLookups counts hash-index probes on base tables.
	IndexLookups int64
	// RowsJoined counts rows emitted by join steps inside select boxes.
	RowsJoined int64
	// RowsGrouped counts groups emitted by group boxes.
	RowsGrouped int64
	// HashBuilds counts hash tables built (joins and subquery probes).
	HashBuilds int64
	// CSERecomputes counts re-evaluations of a shared, uncorrelated box
	// that a materializing optimizer would have cached (Starburst always
	// recomputed; see §5.1).
	CSERecomputes int64
}

// bump atomically increments one Stats counter. Every increment on a path
// reachable from a parallel region goes through here; reading the struct
// plainly is safe once the scheduler's WaitGroup has joined.
func bump(c *int64, delta int64) {
	atomic.AddInt64(c, delta)
}

// AtomicClone copies the counters with atomic loads. It is the read side
// of bump: the engine's live-query registry snapshots a Stats that worker
// goroutines are still incrementing, which a plain struct copy would race
// on. After the scheduler has joined, a plain copy is fine.
func (s *Stats) AtomicClone() Stats {
	return Stats{
		SubqueryInvocations: atomic.LoadInt64(&s.SubqueryInvocations),
		DistinctInvocations: atomic.LoadInt64(&s.DistinctInvocations),
		MemoHits:            atomic.LoadInt64(&s.MemoHits),
		BatchedSubqueries:   atomic.LoadInt64(&s.BatchedSubqueries),
		BatchExecutions:     atomic.LoadInt64(&s.BatchExecutions),
		BoxEvals:            atomic.LoadInt64(&s.BoxEvals),
		RowsScanned:         atomic.LoadInt64(&s.RowsScanned),
		IndexLookups:        atomic.LoadInt64(&s.IndexLookups),
		RowsJoined:          atomic.LoadInt64(&s.RowsJoined),
		RowsGrouped:         atomic.LoadInt64(&s.RowsGrouped),
		HashBuilds:          atomic.LoadInt64(&s.HashBuilds),
		CSERecomputes:       atomic.LoadInt64(&s.CSERecomputes),
	}
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.SubqueryInvocations += o.SubqueryInvocations
	s.DistinctInvocations += o.DistinctInvocations
	s.MemoHits += o.MemoHits
	s.BatchedSubqueries += o.BatchedSubqueries
	s.BatchExecutions += o.BatchExecutions
	s.BoxEvals += o.BoxEvals
	s.RowsScanned += o.RowsScanned
	s.IndexLookups += o.IndexLookups
	s.RowsJoined += o.RowsJoined
	s.RowsGrouped += o.RowsGrouped
	s.HashBuilds += o.HashBuilds
	s.CSERecomputes += o.CSERecomputes
}

// Work is a single scalar summary of effort: rows touched plus probes.
// It is the primary machine-independent series plotted by the harness.
func (s Stats) Work() int64 {
	return s.RowsScanned + s.IndexLookups + s.RowsJoined + s.RowsGrouped
}

// String renders the counters compactly for CLI output.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invocations=%d distinct=%d scanned=%d lookups=%d joined=%d grouped=%d boxes=%d hash-builds=%d cse-recomputes=%d",
		s.SubqueryInvocations, s.DistinctInvocations, s.RowsScanned, s.IndexLookups,
		s.RowsJoined, s.RowsGrouped, s.BoxEvals, s.HashBuilds, s.CSERecomputes)
	if s.MemoHits > 0 {
		fmt.Fprintf(&b, " memo-hits=%d", s.MemoHits)
	}
	if s.BatchedSubqueries > 0 {
		fmt.Fprintf(&b, " batched=%d batch-execs=%d", s.BatchedSubqueries, s.BatchExecutions)
	}
	return b.String()
}
