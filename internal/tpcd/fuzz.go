package tpcd

import (
	"fmt"
	"math/rand"

	"decorr/internal/schema"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// The fuzz instances below feed the differential harness (internal/differ).
// They keep the paper's schemas but shrink the value domains so duplicates,
// empty correlation groups and NULLs all occur within a handful of rows,
// and they honor the declared keys (Dayal's rewrite groups by them, so a
// key column with duplicates would turn data bugs into phantom engine
// bugs).

// EmpDeptRandom builds a random EMP/DEPT instance with NULLs in every
// non-key column. nDept and nEmp are the row-count knobs the shrinker
// turns; buildings span a domain of nBuildings values of which employees
// only use three quarters, so COUNT-bug witnesses (departments in
// employee-free buildings) keep appearing at every size.
func EmpDeptRandom(seed int64, nDept, nEmp, nBuildings int) *storage.DB {
	rng := rand.New(rand.NewSource(seed))
	if nBuildings < 1 {
		nBuildings = 1
	}
	db := storage.NewDB()
	dept := db.Create(deptDef())
	emp := db.Create(empDef())
	maybe := func(p float64, v sqltypes.Value) sqltypes.Value {
		if rng.Float64() < p {
			return sqltypes.Null
		}
		return v
	}
	for i := 0; i < nDept; i++ {
		must(dept.Insert(storage.Row{
			sqltypes.NewString(fmt.Sprintf("dept-%d", i)),
			maybe(0.15, sqltypes.NewInt(int64(rng.Intn(9)*1000))),
			maybe(0.15, sqltypes.NewInt(int64(rng.Intn(6)))),
			maybe(0.15, sqltypes.NewString(fmt.Sprintf("B%d", rng.Intn(nBuildings)))),
		}))
	}
	empBuildings := nBuildings - nBuildings/4
	if empBuildings < 1 {
		empBuildings = 1
	}
	for i := 0; i < nEmp; i++ {
		must(emp.Insert(storage.Row{
			sqltypes.NewString(fmt.Sprintf("emp-%d", i)),
			maybe(0.2, sqltypes.NewString(fmt.Sprintf("B%d", rng.Intn(empBuildings)))),
		}))
	}
	if rng.Intn(2) == 0 {
		must(emp.CreateIndex("building"))
	}
	return db
}

// TPCDMini builds a miniature TPC-D instance: the five tables of Generate
// with roughly n rows each, tiny value domains, and NULLs in the non-key
// columns. Floats land on halves so int/float comparisons hit equality.
func TPCDMini(seed int64, n int) *storage.DB {
	rng := rand.New(rand.NewSource(seed))
	if n < 1 {
		n = 1
	}
	db := storage.NewDB()
	maybe := func(p float64, v sqltypes.Value) sqltypes.Value {
		if rng.Float64() < p {
			return sqltypes.Null
		}
		return v
	}
	halfFloat := func(max int) sqltypes.Value {
		return sqltypes.NewFloat(float64(rng.Intn(2*max)) / 2)
	}

	parts := db.Create(schema.NewTable("parts",
		schema.Column{Name: "p_partkey", Type: schema.TInt},
		schema.Column{Name: "p_name", Type: schema.TString},
		schema.Column{Name: "p_brand", Type: schema.TString},
		schema.Column{Name: "p_type", Type: schema.TString},
		schema.Column{Name: "p_size", Type: schema.TInt},
		schema.Column{Name: "p_container", Type: schema.TString},
		schema.Column{Name: "p_retailprice", Type: schema.TFloat},
	))
	parts.Def.AddKey("p_partkey")
	for i := 0; i < n; i++ {
		must(parts.Insert(storage.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewString(fmt.Sprintf("part-%d", i+1)),
			maybe(0.15, sqltypes.NewString(fmt.Sprintf("Brand#%d", 1+rng.Intn(3)))),
			maybe(0.15, sqltypes.NewString(Metals[rng.Intn(2)])),
			maybe(0.15, sqltypes.NewInt(int64(1+rng.Intn(4)))),
			maybe(0.15, sqltypes.NewString(Containers[rng.Intn(2)])),
			maybe(0.15, halfFloat(5)),
		}))
	}

	suppliers := db.Create(schema.NewTable("suppliers",
		schema.Column{Name: "s_suppkey", Type: schema.TInt},
		schema.Column{Name: "s_name", Type: schema.TString},
		schema.Column{Name: "s_acctbal", Type: schema.TFloat},
		schema.Column{Name: "s_address", Type: schema.TString},
		schema.Column{Name: "s_phone", Type: schema.TString},
		schema.Column{Name: "s_comment", Type: schema.TString},
		schema.Column{Name: "s_nation", Type: schema.TString},
		schema.Column{Name: "s_region", Type: schema.TString},
	))
	suppliers.Def.AddKey("s_suppkey")
	nSupp := n/2 + 1
	for i := 0; i < nSupp; i++ {
		nation, region := nationOf(rng.Intn(4))
		must(suppliers.Insert(storage.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewString(fmt.Sprintf("Supplier#%d", i+1)),
			maybe(0.15, halfFloat(5)),
			sqltypes.NewString(fmt.Sprintf("addr-%d", i+1)),
			sqltypes.NewString("000"),
			sqltypes.NewString("mini supplier"),
			maybe(0.15, sqltypes.NewString(nation)),
			maybe(0.15, sqltypes.NewString(region)),
		}))
	}

	partsupp := db.Create(schema.NewTable("partsupp",
		schema.Column{Name: "ps_partkey", Type: schema.TInt},
		schema.Column{Name: "ps_suppkey", Type: schema.TInt},
		schema.Column{Name: "ps_availqty", Type: schema.TInt},
		schema.Column{Name: "ps_supplycost", Type: schema.TFloat},
	))
	partsupp.Def.AddKey("ps_partkey", "ps_suppkey")
	// A random subset of (part, supplier) pairs, so some parts have no
	// suppliers at all (empty correlation groups).
	for p := 1; p <= n; p++ {
		for s := 1; s <= nSupp; s++ {
			if rng.Float64() > 0.4 {
				continue
			}
			must(partsupp.Insert(storage.Row{
				sqltypes.NewInt(int64(p)),
				sqltypes.NewInt(int64(s)),
				maybe(0.15, sqltypes.NewInt(int64(rng.Intn(5)))),
				maybe(0.15, halfFloat(4)),
			}))
		}
	}

	lineitem := db.Create(schema.NewTable("lineitem",
		schema.Column{Name: "l_orderkey", Type: schema.TInt},
		schema.Column{Name: "l_partkey", Type: schema.TInt},
		schema.Column{Name: "l_suppkey", Type: schema.TInt},
		schema.Column{Name: "l_quantity", Type: schema.TInt},
		schema.Column{Name: "l_extendedprice", Type: schema.TFloat},
	))
	lineitem.Def.AddKey("l_orderkey")
	for i := 0; i < n; i++ {
		must(lineitem.Insert(storage.Row{
			sqltypes.NewInt(int64(i + 1)),
			// Part keys range past n so some line items match no part.
			maybe(0.1, sqltypes.NewInt(int64(1+rng.Intn(n+2)))),
			maybe(0.1, sqltypes.NewInt(int64(1+rng.Intn(nSupp+1)))),
			maybe(0.15, sqltypes.NewInt(int64(1+rng.Intn(4)))),
			maybe(0.15, halfFloat(6)),
		}))
	}

	customers := db.Create(schema.NewTable("customers",
		schema.Column{Name: "c_custkey", Type: schema.TInt},
		schema.Column{Name: "c_name", Type: schema.TString},
		schema.Column{Name: "c_acctbal", Type: schema.TFloat},
		schema.Column{Name: "c_mktsegment", Type: schema.TString},
		schema.Column{Name: "c_nation", Type: schema.TString},
		schema.Column{Name: "c_region", Type: schema.TString},
	))
	customers.Def.AddKey("c_custkey")
	for i := 0; i < n/2+1; i++ {
		nation, region := nationOf(rng.Intn(4))
		must(customers.Insert(storage.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewString(fmt.Sprintf("Customer#%d", i+1)),
			maybe(0.15, halfFloat(5)),
			maybe(0.15, sqltypes.NewString(Segments[rng.Intn(2)])),
			maybe(0.15, sqltypes.NewString(nation)),
			maybe(0.15, sqltypes.NewString(region)),
		}))
	}

	if rng.Intn(2) == 0 {
		must(partsupp.CreateIndex("ps_partkey"))
		must(lineitem.CreateIndex("l_partkey"))
	}
	return db
}
