package tpcd

// The paper's three benchmark queries (§5.3), adjusted only for this
// repository's SQL dialect (derived tables are written
// "(query) AS alias(cols)"). Query 3's tail is truncated in the published
// text; it is reconstructed from the prose: European suppliers and the sum
// of balances of customers in two market segments and the supplier's
// nation (a non-linear correlated UNION, 5 distinct correlation values).

// Query1 lists suppliers offering the desired type and size of parts in a
// particular nation at the minimum cost (TPC-D Q2 flavor).
const Query1 = `
Select s.s_name, s.s_acctbal, s.s_address, s.s_phone, s.s_comment
From parts p, suppliers s, partsupp ps
Where s.s_nation = 'FRANCE' and p.p_size = 15 and p.p_type = 'BRASS'
  and p.p_partkey = ps.ps_partkey and s.s_suppkey = ps.ps_suppkey
  and ps.ps_supplycost =
    (Select min(ps1.ps_supplycost)
     From partsupp ps1, suppliers s1
     Where p.p_partkey = ps1.ps_partkey
       and s1.s_suppkey = ps1.ps_suppkey
       and s1.s_nation = 'FRANCE')`

// Query1b is the §5.3 sensitivity variant: the p_size predicate is dropped
// and the nation predicates widen to two regions, creating thousands of
// subquery invocations with many duplicate bindings (Figure 6).
const Query1b = `
Select s.s_name, s.s_acctbal, s.s_address, s.s_phone, s.s_comment
From parts p, suppliers s, partsupp ps
Where s.s_region in ('AMERICA', 'EUROPE') and p.p_type = 'BRASS'
  and p.p_partkey = ps.ps_partkey and s.s_suppkey = ps.ps_suppkey
  and ps.ps_supplycost =
    (Select min(ps1.ps_supplycost)
     From partsupp ps1, suppliers s1
     Where p.p_partkey = ps1.ps_partkey
       and s1.s_suppkey = ps1.ps_suppkey
       and s1.s_region in ('AMERICA', 'EUROPE'))`

// Query2 asks for the average yearly loss in revenue if small orders were
// discarded (TPC-D Q17 flavor). The correlation attribute is a key of the
// supplementary table, so OptMag eliminates the common subexpression
// (Figure 8).
const Query2 = `
Select sum(l.l_extendedprice * l.l_quantity) / 5
From lineitem l, parts p
Where p.p_partkey = l.l_partkey and p.p_brand = 'Brand#23'
  and p.p_container = '6 PACK'
  and l.l_quantity <
    (Select 0.2 * avg(l1.l_quantity)
     From lineitem l1 Where l1.l_partkey = p.p_partkey)`

// Query3 lists European suppliers and the sum of balances of customers in
// two market segments in the supplier's country. The correlated table
// expression contains a UNION: the query is non-linear, Kim's and Dayal's
// methods do not apply, and only 5 distinct correlation values exist
// (Figure 9).
const Query3 = `
Select s.s_name, s.s_acctbal, dt.sumbal
From suppliers s,
  (Select sum(ddt.bal) From
     ((Select a.c_acctbal From customers a
       Where a.c_mktsegment = 'BUILDING' and a.c_nation = s.s_nation)
      Union All
      (Select b.c_acctbal From customers b
       Where b.c_mktsegment = 'AUTOMOBILE' and b.c_nation = s.s_nation)
     ) As ddt(bal)
  ) As dt(sumbal)
Where s.s_region = 'EUROPE'`

// Query3Distinct is Query3 with UNION instead of UNION ALL, exercising the
// distinct-union absorption path.
const Query3Distinct = `
Select s.s_name, s.s_acctbal, dt.sumbal
From suppliers s,
  (Select sum(ddt.bal) From
     ((Select a.c_acctbal From customers a
       Where a.c_mktsegment = 'BUILDING' and a.c_nation = s.s_nation)
      Union
      (Select b.c_acctbal From customers b
       Where b.c_mktsegment = 'AUTOMOBILE' and b.c_nation = s.s_nation)
     ) As ddt(bal)
  ) As dt(sumbal)
Where s.s_region = 'EUROPE'`
