package tpcd

import (
	"testing"

	"decorr/internal/sqltypes"
)

func TestScaledCardinalities(t *testing.T) {
	db := Generate(Config{SF: 0.01, Seed: 1})
	want := map[string]int{
		"customers": 150, "parts": 200, "suppliers": 10,
		"partsupp": 800, "lineitem": 6000,
	}
	for name, n := range want {
		if got := len(db.MustTable(name).Rows); got != n {
			t.Errorf("%s: %d rows, want %d", name, got, n)
		}
	}
}

// TestTable1Cardinalities checks the paper's Table 1 contract at SF=1.
func TestTable1Cardinalities(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation skipped with -short")
	}
	db := Generate(Config{SF: 1.0, Seed: 1, SkipIndexes: true})
	want := map[string]int{
		"customers": BaseCustomers, "parts": BaseParts, "suppliers": BaseSuppliers,
		"partsupp": BasePartSupp, "lineitem": BaseLineItem,
	}
	for name, n := range want {
		if got := len(db.MustTable(name).Rows); got != n {
			t.Errorf("%s: %d rows, want %d (paper Table 1)", name, got, n)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{SF: 0.01, Seed: 42})
	b := Generate(Config{SF: 0.01, Seed: 42})
	for _, name := range []string{"parts", "suppliers", "lineitem"} {
		ra, rb := a.MustTable(name).Rows, b.MustTable(name).Rows
		if len(ra) != len(rb) {
			t.Fatalf("%s: different sizes", name)
		}
		for i := range ra {
			if sqltypes.Key(ra[i]) != sqltypes.Key(rb[i]) {
				t.Fatalf("%s row %d differs across identically-seeded runs", name, i)
			}
		}
	}
	c := Generate(Config{SF: 0.01, Seed: 43})
	if sqltypes.Key(a.MustTable("parts").Rows[0]) == sqltypes.Key(c.MustTable("parts").Rows[0]) {
		t.Log("warning: different seeds produced an identical first row (possible but unlikely)")
	}
}

func TestNationRegionConsistency(t *testing.T) {
	region := map[string]string{}
	for ri, ns := range Nations {
		for _, n := range ns {
			region[n] = Regions[ri]
		}
	}
	db := Generate(Config{SF: 0.02, Seed: 5})
	sup := db.MustTable("suppliers")
	nIdx := sup.Def.ColIndex("s_nation")
	rIdx := sup.Def.ColIndex("s_region")
	for _, r := range sup.Rows {
		if region[r[nIdx].S] != r[rIdx].S {
			t.Fatalf("supplier nation %q in region %q, want %q", r[nIdx].S, r[rIdx].S, region[r[nIdx].S])
		}
	}
	cust := db.MustTable("customers")
	nIdx = cust.Def.ColIndex("c_nation")
	rIdx = cust.Def.ColIndex("c_region")
	for _, r := range cust.Rows {
		if region[r[nIdx].S] != r[rIdx].S {
			t.Fatalf("customer nation %q in region %q", r[nIdx].S, r[rIdx].S)
		}
	}
}

func TestIndexesCreatedByDefault(t *testing.T) {
	db := Generate(Config{SF: 0.01, Seed: 1})
	checks := map[string]string{
		"parts": "p_partkey", "partsupp": "ps_partkey", "lineitem": "l_partkey",
		"suppliers": "s_suppkey", "customers": "c_nation",
	}
	for table, col := range checks {
		tb := db.MustTable(table)
		if !tb.HasIndex(tb.Def.ColIndex(col)) {
			t.Errorf("missing index %s.%s", table, col)
		}
	}
	bare := Generate(Config{SF: 0.01, Seed: 1, SkipIndexes: true})
	tb := bare.MustTable("parts")
	if tb.HasIndex(tb.Def.ColIndex("p_partkey")) {
		t.Error("SkipIndexes ignored")
	}
}

func TestKeysDeclared(t *testing.T) {
	db := Generate(Config{SF: 0.01, Seed: 1})
	for _, name := range []string{"customers", "parts", "suppliers", "partsupp", "lineitem"} {
		if len(db.MustTable(name).Def.Keys) == 0 {
			t.Errorf("%s has no declared key (Dayal/OptMag need them)", name)
		}
	}
}

func TestPartsuppFanout(t *testing.T) {
	db := Generate(Config{SF: 0.05, Seed: 9})
	ps := db.MustTable("partsupp")
	parts := db.MustTable("parts")
	perPart := map[int64]int{}
	for _, r := range ps.Rows {
		perPart[r[0].I]++
	}
	if len(perPart) != len(parts.Rows) {
		t.Errorf("%d parts have suppliers, want %d (every part supplied)", len(perPart), len(parts.Rows))
	}
	for pk, n := range perPart {
		if n < 1 || n > 8 {
			t.Fatalf("part %d has %d suppliers", pk, n)
		}
	}
}

func TestEmpDeptFixture(t *testing.T) {
	db := EmpDept()
	dept := db.MustTable("dept")
	emp := db.MustTable("emp")
	if len(dept.Rows) != 5 || len(emp.Rows) != 6 {
		t.Fatalf("fixture sizes: %d dept, %d emp", len(dept.Rows), len(emp.Rows))
	}
	// The COUNT-bug witness: a low-budget department in a building with
	// no employees.
	bIdx := dept.Def.ColIndex("building")
	budIdx := dept.Def.ColIndex("budget")
	empB := map[string]bool{}
	for _, r := range emp.Rows {
		empB[r[1].S] = true
	}
	witness := false
	for _, r := range dept.Rows {
		if r[budIdx].I < 10000 && !empB[r[bIdx].S] {
			witness = true
		}
	}
	if !witness {
		t.Fatal("fixture lost its COUNT-bug witness")
	}
}

func TestEmpDeptSizedShapes(t *testing.T) {
	db := EmpDeptSized(100, 500, 8, 3)
	if got := len(db.MustTable("dept").Rows); got != 100 {
		t.Errorf("dept rows = %d", got)
	}
	if got := len(db.MustTable("emp").Rows); got != 500 {
		t.Errorf("emp rows = %d", got)
	}
	// Some buildings must be employee-free (compensation witnesses).
	empB := map[string]bool{}
	for _, r := range db.MustTable("emp").Rows {
		empB[r[1].S] = true
	}
	if len(empB) >= 8 {
		t.Errorf("employees occupy all %d buildings; expected a free quarter", len(empB))
	}
}
