package tpcd

import (
	"fmt"
	"math/rand"

	"decorr/internal/schema"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// EmpDept builds the small fixed EMP/DEPT database of the paper's §2
// running example. It deliberately contains a low-budget department
// ("archives") located in a building where nobody works, so the COUNT bug
// is observable: the correct answer includes that department, Kim's
// rewrite loses it.
func EmpDept() *storage.DB {
	db := storage.NewDB()
	dept := db.Create(deptDef())
	emp := db.Create(empDef())

	// name, budget, num_emps, building
	for _, d := range [][4]any{
		{"toys", 8000, 3, "B1"},
		{"shoes", 9000, 1, "B2"},
		{"archives", 500, 1, "B9"}, // building with no employees: COUNT bug witness
		{"tools", 7000, 2, "B1"},   // duplicate correlation value B1
		{"jewels", 50000, 4, "B2"}, // filtered out by budget predicate
	} {
		must(dept.Insert(storage.Row{
			sqltypes.NewString(d[0].(string)),
			sqltypes.NewInt(int64(d[1].(int))),
			sqltypes.NewInt(int64(d[2].(int))),
			sqltypes.NewString(d[3].(string)),
		}))
	}
	for _, e := range [][2]string{
		{"anne", "B1"}, {"bob", "B1"},
		{"carl", "B2"}, {"dina", "B2"}, {"ed", "B2"},
		{"fay", "B3"},
	} {
		must(emp.Insert(storage.Row{
			sqltypes.NewString(e[0]),
			sqltypes.NewString(e[1]),
		}))
	}
	must(emp.CreateIndex("building"))
	return db
}

// EmpDeptSized builds a synthetic EMP/DEPT database for scaling studies
// (and the §6 parallel-execution experiment): nDept departments spread over
// nBuildings buildings (duplicates in the correlation column whenever
// nDept > nBuildings) and nEmp employees.
func EmpDeptSized(nDept, nEmp, nBuildings int, seed int64) *storage.DB {
	rng := rand.New(rand.NewSource(seed))
	db := storage.NewDB()
	dept := db.Create(deptDef())
	emp := db.Create(empDef())
	for i := 0; i < nDept; i++ {
		must(dept.Insert(storage.Row{
			sqltypes.NewString(fmt.Sprintf("dept-%d", i)),
			sqltypes.NewInt(int64(rng.Intn(20000))),
			sqltypes.NewInt(int64(rng.Intn(150))),
			sqltypes.NewString(fmt.Sprintf("B%d", rng.Intn(nBuildings))),
		}))
	}
	// Employees avoid the last quarter of the buildings, so COUNT-bug
	// witnesses (departments in employee-free buildings) always exist.
	empBuildings := nBuildings - nBuildings/4
	if empBuildings < 1 {
		empBuildings = 1
	}
	for i := 0; i < nEmp; i++ {
		must(emp.Insert(storage.Row{
			sqltypes.NewString(fmt.Sprintf("emp-%d", i)),
			sqltypes.NewString(fmt.Sprintf("B%d", rng.Intn(empBuildings))),
		}))
	}
	must(emp.CreateIndex("building"))
	return db
}

func deptDef() *schema.Table {
	def := schema.NewTable("dept",
		schema.Column{Name: "name", Type: schema.TString},
		schema.Column{Name: "budget", Type: schema.TInt},
		schema.Column{Name: "num_emps", Type: schema.TInt},
		schema.Column{Name: "building", Type: schema.TString},
	)
	def.AddKey("name")
	return def
}

func empDef() *schema.Table {
	def := schema.NewTable("emp",
		schema.Column{Name: "name", Type: schema.TString},
		schema.Column{Name: "building", Type: schema.TString},
	)
	def.AddKey("name")
	return def
}

// ExampleQuery is the §2 running example: departments of low budget with
// more employees than work in the department's building.
const ExampleQuery = `
Select D.name From Dept D
Where D.budget < 10000 and D.num_emps >
    (Select Count(*) From Emp E Where D.building = E.building)
Order By name`
