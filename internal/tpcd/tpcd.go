// Package tpcd generates the deterministic TPC-D-style database used by
// the paper's performance study (§5.2, Table 1), plus the EMP/DEPT example
// data of §2. At scale factor 1.0 the table cardinalities match Table 1 of
// the paper exactly (customers 15,000; parts 20,000; suppliers 1,000;
// partsupp 80,000; lineitem 600,000); benchmarks typically run at a
// fraction of that. Generation is seeded and fully reproducible.
package tpcd

import (
	"fmt"
	"math/rand"

	"decorr/internal/schema"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// Table 1 cardinalities at scale factor 1.0.
const (
	BaseCustomers = 15000
	BaseParts     = 20000
	BaseSuppliers = 1000
	BasePartSupp  = 80000
	BaseLineItem  = 600000
)

// Regions and nations follow the TPC layout: five regions of five nations.
var (
	Regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	Nations = [][]string{
		{"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"},
		{"ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"},
		{"CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"},
		{"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"},
		{"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"},
	}
	Segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	Metals     = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	Containers = []string{"SM CASE", "MED BOX", "6 PACK", "LG DRUM"}
)

// nationOf returns (nation, region) for a flat nation index 0..24.
func nationOf(i int) (string, string) {
	r := i % len(Regions)
	n := (i / len(Regions)) % len(Nations[r])
	return Nations[r][n], Regions[r]
}

// Config controls generation.
type Config struct {
	// SF is the scale factor relative to the paper's 120 MB database.
	SF float64
	// Seed drives the deterministic pseudo-random generator.
	Seed int64
	// SkipIndexes leaves the database unindexed; CreateAllIndexes can be
	// called later (the Figure 7 experiment drops one index instead).
	SkipIndexes bool
}

// scale returns max(1, round(sf*base)).
func scale(sf float64, base int) int {
	n := int(sf*float64(base) + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// Generate builds the five-table database at the given scale factor.
func Generate(cfg Config) *storage.DB {
	if cfg.SF <= 0 {
		cfg.SF = 0.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := storage.NewDB()

	nParts := scale(cfg.SF, BaseParts)
	nSupp := scale(cfg.SF, BaseSuppliers)
	nCust := scale(cfg.SF, BaseCustomers)
	nPS := scale(cfg.SF, BasePartSupp)
	nLI := scale(cfg.SF, BaseLineItem)

	parts := db.Create(schema.NewTable("parts",
		schema.Column{Name: "p_partkey", Type: schema.TInt},
		schema.Column{Name: "p_name", Type: schema.TString},
		schema.Column{Name: "p_brand", Type: schema.TString},
		schema.Column{Name: "p_type", Type: schema.TString},
		schema.Column{Name: "p_size", Type: schema.TInt},
		schema.Column{Name: "p_container", Type: schema.TString},
		schema.Column{Name: "p_retailprice", Type: schema.TFloat},
	))
	parts.Def.AddKey("p_partkey")
	for i := 0; i < nParts; i++ {
		brand := fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))
		must(parts.Insert(storage.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewString(fmt.Sprintf("part-%d", i+1)),
			sqltypes.NewString(brand),
			sqltypes.NewString(Metals[rng.Intn(len(Metals))]),
			sqltypes.NewInt(int64(1 + rng.Intn(50))),
			sqltypes.NewString(Containers[rng.Intn(len(Containers))]),
			sqltypes.NewFloat(900 + float64(rng.Intn(110000))/100),
		}))
	}

	suppliers := db.Create(schema.NewTable("suppliers",
		schema.Column{Name: "s_suppkey", Type: schema.TInt},
		schema.Column{Name: "s_name", Type: schema.TString},
		schema.Column{Name: "s_acctbal", Type: schema.TFloat},
		schema.Column{Name: "s_address", Type: schema.TString},
		schema.Column{Name: "s_phone", Type: schema.TString},
		schema.Column{Name: "s_comment", Type: schema.TString},
		schema.Column{Name: "s_nation", Type: schema.TString},
		schema.Column{Name: "s_region", Type: schema.TString},
	))
	suppliers.Def.AddKey("s_suppkey")
	for i := 0; i < nSupp; i++ {
		nation, region := nationOf(rng.Intn(25))
		must(suppliers.Insert(storage.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewString(fmt.Sprintf("Supplier#%09d", i+1)),
			sqltypes.NewFloat(-999.99 + float64(rng.Intn(1100000))/100),
			sqltypes.NewString(fmt.Sprintf("addr-%d", i+1)),
			sqltypes.NewString(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+rng.Intn(25), rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))),
			sqltypes.NewString("generated supplier"),
			sqltypes.NewString(nation),
			sqltypes.NewString(region),
		}))
	}

	partsupp := db.Create(schema.NewTable("partsupp",
		schema.Column{Name: "ps_partkey", Type: schema.TInt},
		schema.Column{Name: "ps_suppkey", Type: schema.TInt},
		schema.Column{Name: "ps_availqty", Type: schema.TInt},
		schema.Column{Name: "ps_supplycost", Type: schema.TFloat},
	))
	partsupp.Def.AddKey("ps_partkey", "ps_suppkey")
	// Four suppliers per part, like TPC-D.
	perPart := nPS / nParts
	if perPart < 1 {
		perPart = 1
	}
	for p := 1; p <= nParts; p++ {
		start := rng.Intn(nSupp)
		for j := 0; j < perPart; j++ {
			sk := (start+j*(nSupp/perPart+1))%nSupp + 1
			must(partsupp.Insert(storage.Row{
				sqltypes.NewInt(int64(p)),
				sqltypes.NewInt(int64(sk)),
				sqltypes.NewInt(int64(1 + rng.Intn(9999))),
				sqltypes.NewFloat(1 + float64(rng.Intn(99900))/100),
			}))
		}
	}

	lineitem := db.Create(schema.NewTable("lineitem",
		schema.Column{Name: "l_orderkey", Type: schema.TInt},
		schema.Column{Name: "l_partkey", Type: schema.TInt},
		schema.Column{Name: "l_suppkey", Type: schema.TInt},
		schema.Column{Name: "l_quantity", Type: schema.TInt},
		schema.Column{Name: "l_extendedprice", Type: schema.TFloat},
	))
	lineitem.Def.AddKey("l_orderkey")
	for i := 0; i < nLI; i++ {
		pk := 1 + rng.Intn(nParts)
		qty := 1 + rng.Intn(50)
		must(lineitem.Insert(storage.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewInt(int64(pk)),
			sqltypes.NewInt(int64(1 + rng.Intn(nSupp))),
			sqltypes.NewInt(int64(qty)),
			sqltypes.NewFloat(float64(qty) * (900 + float64(rng.Intn(110000))/100)),
		}))
	}

	customers := db.Create(schema.NewTable("customers",
		schema.Column{Name: "c_custkey", Type: schema.TInt},
		schema.Column{Name: "c_name", Type: schema.TString},
		schema.Column{Name: "c_acctbal", Type: schema.TFloat},
		schema.Column{Name: "c_mktsegment", Type: schema.TString},
		schema.Column{Name: "c_nation", Type: schema.TString},
		schema.Column{Name: "c_region", Type: schema.TString},
	))
	customers.Def.AddKey("c_custkey")
	for i := 0; i < nCust; i++ {
		nation, region := nationOf(rng.Intn(25))
		must(customers.Insert(storage.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewString(fmt.Sprintf("Customer#%09d", i+1)),
			sqltypes.NewFloat(-999.99 + float64(rng.Intn(1100000))/100),
			sqltypes.NewString(Segments[rng.Intn(len(Segments))]),
			sqltypes.NewString(nation),
			sqltypes.NewString(region),
		}))
	}

	if !cfg.SkipIndexes {
		CreateAllIndexes(db)
	}
	return db
}

// CreateAllIndexes builds the hash indexes the paper assumes ("indexes
// were available on all the necessary attributes").
func CreateAllIndexes(db *storage.DB) {
	for table, cols := range map[string][]string{
		"parts":     {"p_partkey"},
		"suppliers": {"s_suppkey", "s_nation", "s_region"},
		"partsupp":  {"ps_partkey", "ps_suppkey"},
		"lineitem":  {"l_partkey"},
		"customers": {"c_custkey", "c_nation", "c_mktsegment"},
	} {
		t := db.Table(table)
		if t == nil {
			continue
		}
		for _, c := range cols {
			must(t.CreateIndex(c))
		}
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
