// Package classic implements the pre-magic decorrelation algorithms the
// paper compares against (§2, §5.1): Kim's method [Kim82] — including its
// historical COUNT bug —, Dayal's outer-join method [Day87], and the
// Ganski/Wong method [GW87]. Each has the applicability limits the paper
// describes; ApplyX returns ErrNotApplicable-wrapped errors when a query
// falls outside them (e.g. the non-linear Query 3).
package classic

import (
	"errors"
	"fmt"

	"decorr/internal/qgm"
)

// ErrNotApplicable marks queries outside an algorithm's reach.
var ErrNotApplicable = errors.New("algorithm not applicable")

// aggPattern describes the canonical correlated scalar aggregate subquery
// the classic methods understand: a chain of simple SELECT wrappers over an
// ungrouped GROUP BY over an SPJ body that holds the correlated equality
// predicates.
type aggPattern struct {
	outer *qgm.Box
	q     *qgm.Quantifier
	chain []*qgm.Box // SELECT wrappers from q.Input down (possibly empty)
	group *qgm.Box
	body  *qgm.Box

	// Correlation decomposition: outerRefs[i] = innerExprs[i] were the
	// correlated equality conjuncts removed from body.Preds by decompose.
	outerRefs  []*qgm.ColRef
	innerExprs []qgm.Expr
}

// findAggPattern matches the subquery under q against the canonical shape.
func findAggPattern(outer *qgm.Box, q *qgm.Quantifier) (*aggPattern, error) {
	p := &aggPattern{outer: outer, q: q}
	cur := q.Input
	for cur.Kind == qgm.BoxSelect {
		if len(cur.Quants) != 1 || cur.Quants[0].Kind != qgm.QForEach ||
			len(cur.Preds) != 0 || cur.Distinct {
			return nil, fmt.Errorf("%w: subquery is not a simple aggregate block", ErrNotApplicable)
		}
		p.chain = append(p.chain, cur)
		cur = cur.Quants[0].Input
	}
	if cur.Kind != qgm.BoxGroup || len(cur.GroupBy) != 0 {
		return nil, fmt.Errorf("%w: subquery is not an ungrouped aggregate", ErrNotApplicable)
	}
	p.group = cur
	p.body = cur.Quants[0].Input
	if p.body.Kind != qgm.BoxSelect {
		return nil, fmt.Errorf("%w: aggregate input is not a select block", ErrNotApplicable)
	}
	// Correlation must live exclusively in the body's predicates and
	// reference only the outer box's row quantifiers (single level).
	for _, b := range qgm.Boxes(q.Input) {
		var bad error
		b.ExprSlots(func(slot *qgm.Expr) {
			if bad != nil {
				return
			}
			for _, r := range qgm.Refs(*slot) {
				if r.Q.Owner == b || insideSubtree(r.Q.Owner, q.Input) {
					continue
				}
				if r.Q.Owner != outer {
					bad = fmt.Errorf("%w: correlation spans multiple levels", ErrNotApplicable)
					return
				}
				if b != p.body {
					bad = fmt.Errorf("%w: correlation outside the subquery body", ErrNotApplicable)
					return
				}
			}
		})
		if bad != nil {
			return nil, bad
		}
	}
	return p, nil
}

func insideSubtree(b, root *qgm.Box) bool {
	return qgm.Contains(root, b)
}

// decompose removes the correlated conjuncts from the body, requiring each
// to be a simple equality between a bare outer column and an expression
// over the body's own quantifiers (Kim's restriction: "the transformation
// works only if the correlated predicate is a simple equality predicate").
func (p *aggPattern) decompose() error {
	var kept []qgm.Expr
	for _, pred := range p.body.Preds {
		corr := false
		for _, r := range qgm.Refs(pred) {
			if r.Q.Owner == p.outer {
				corr = true
				break
			}
		}
		if !corr {
			kept = append(kept, pred)
			continue
		}
		bin, ok := pred.(*qgm.Bin)
		if !ok || bin.Op != qgm.OpEq {
			return fmt.Errorf("%w: correlated predicate is not a simple equality", ErrNotApplicable)
		}
		l, r := bin.L, bin.R
		if sideIsOuterRef(r, p.outer) && exprOverBody(l, p.body) {
			l, r = r, l
		}
		if !sideIsOuterRef(l, p.outer) || !exprOverBody(r, p.body) {
			return fmt.Errorf("%w: correlated equality mixes inner and outer columns", ErrNotApplicable)
		}
		p.outerRefs = append(p.outerRefs, l.(*qgm.ColRef))
		p.innerExprs = append(p.innerExprs, r)
	}
	p.body.Preds = kept
	return nil
}

func sideIsOuterRef(e qgm.Expr, outer *qgm.Box) bool {
	r, ok := e.(*qgm.ColRef)
	return ok && r.Q.Owner == outer
}

func exprOverBody(e qgm.Expr, body *qgm.Box) bool {
	for q := range qgm.QuantSet(e) {
		if q.Owner != body {
			return false
		}
	}
	return true
}

// remainingCorrelation reports whether any quantifier's input subtree still
// has free references — correlation an algorithm failed to remove.
func remainingCorrelation(g *qgm.Graph) bool {
	for _, b := range qgm.Boxes(g.Root) {
		for _, q := range b.Quants {
			if qgm.IsCorrelated(q.Input) {
				return true
			}
		}
	}
	return false
}
