package classic_test

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"decorr/internal/classic"
	"decorr/internal/engine"
	"decorr/internal/parser"
	"decorr/internal/qgm"
	"decorr/internal/semant"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

func bind(t *testing.T, db *storage.DB, sql string) *qgm.Graph {
	t.Helper()
	q, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.Bind(q, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func render(rows []storage.Row) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return strings.Join(out, ";")
}

// expectEqual runs sql under NI and under the given strategy and compares.
func expectEqual(t *testing.T, db *storage.DB, sql string, s engine.Strategy) {
	t.Helper()
	e := engine.New(db)
	ni, _, err := e.Query(sql, engine.NI)
	if err != nil {
		t.Fatalf("NI: %v", err)
	}
	got, _, err := e.Query(sql, s)
	if err != nil {
		t.Fatalf("%s: %v", s, err)
	}
	if render(got) != render(ni) {
		t.Fatalf("%s diverges:\n got %s\nwant %s", s, render(got), render(ni))
	}
}

func TestKimRemovesCorrelation(t *testing.T) {
	db := tpcd.EmpDept()
	g := bind(t, db, `
		select d.name from dept d
		where d.budget > (select min(budget) from dept d2 where d2.building = d.building)`)
	if err := classic.ApplyKim(g); err != nil {
		t.Fatal(err)
	}
	for _, b := range qgm.Boxes(g.Root) {
		for _, q := range b.Quants {
			if qgm.IsCorrelated(q.Input) {
				t.Fatal("correlation remains after Kim")
			}
		}
	}
	if err := qgm.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestKimCorrectWhenNoCountBug(t *testing.T) {
	// MIN with a null-rejecting predicate: Kim is semantically fine.
	expectEqual(t, tpcd.EmpDept(), `
		select d.name from dept d
		where d.budget > (select min(budget) from dept d2 where d2.building = d.building)`,
		engine.Kim)
}

func TestKimNotApplicableCases(t *testing.T) {
	db := tpcd.EmpDept()
	cases := map[string]string{
		"non-equality correlation": `
			select d.name from dept d
			where d.num_emps > (select count(*) from emp e where e.building < d.building)`,
		"correlation outside body": `
			select d.name from dept d
			where d.num_emps > (select count(*) + d.budget from emp e where e.building = d.building)`,
		"grouped subquery": `
			select d.name from dept d
			where d.num_emps > (select count(*) from emp e where e.building = d.building group by e.name)`,
	}
	for name, sql := range cases {
		t.Run(name, func(t *testing.T) {
			var g *qgm.Graph
			func() {
				defer func() { recover() }() // grouped scalar may fail bind-time checks
				g = bind(t, db, sql)
			}()
			if g == nil {
				t.Skip("did not bind")
			}
			if err := classic.ApplyKim(g); !errors.Is(err, classic.ErrNotApplicable) {
				t.Errorf("got %v, want ErrNotApplicable", err)
			}
		})
	}
}

func TestDayalCorrectOnExample(t *testing.T) {
	expectEqual(t, tpcd.EmpDept(), tpcd.ExampleQuery, engine.Dayal)
}

func TestDayalCountBugFixedByWitness(t *testing.T) {
	// The archives department (empty building) must survive Dayal's
	// rewrite: COUNT(*) becomes COUNT(witness), counting zero for the
	// NULL-extended row.
	e := engine.New(tpcd.EmpDept())
	rows, _, err := e.Query(tpcd.ExampleQuery, engine.Dayal)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r[0].S == "archives" {
			found = true
		}
	}
	if !found {
		t.Fatal("Dayal lost the empty-building department (COUNT bug)")
	}
}

func TestDayalRequiresKeys(t *testing.T) {
	// A database whose outer table declares no key.
	db := storage.NewDB()
	def := tpcd.EmpDept().Catalog.Lookup("dept")
	clone := *def
	clone.Keys = nil
	db.Create(&clone)
	db.Create(tpcd.EmpDept().Catalog.Lookup("emp"))
	for _, r := range tpcd.EmpDept().MustTable("dept").Rows {
		if err := db.MustTable("dept").Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	g := bind(t, db, tpcd.ExampleQuery)
	if err := classic.ApplyDayal(g); !errors.Is(err, classic.ErrNotApplicable) {
		t.Errorf("got %v, want ErrNotApplicable (no declared key)", err)
	}
}

func TestDayalMultipleSubqueriesNotApplicable(t *testing.T) {
	g := bind(t, tpcd.EmpDept(), `
		select d.name from dept d
		where d.num_emps > (select count(*) from emp e where e.building = d.building)
		  and d.budget < (select sum(budget) from dept d2 where d2.building = d.building)`)
	if err := classic.ApplyDayal(g); !errors.Is(err, classic.ErrNotApplicable) {
		t.Errorf("got %v, want ErrNotApplicable", err)
	}
}

func TestKimHandlesMultipleSubqueries(t *testing.T) {
	expectEqual(t, tpcd.EmpDept(), `
		select d.name from dept d
		where d.budget > (select min(budget) from dept d2 where d2.building = d.building)
		  and d.budget <= (select max(budget) from dept d3 where d3.building = d.building)`,
		engine.Kim)
}

func TestGanskiWongSingleTableOnly(t *testing.T) {
	expectEqual(t, tpcd.EmpDept(), tpcd.ExampleQuery, engine.GanskiWong)

	e := engine.New(tpcd.EmpDept())
	_, err := e.Prepare(`
		select d.name from dept d, emp e0
		where e0.building = d.building
		  and d.num_emps > (select count(*) from emp e where e.building = d.building)`,
		engine.GanskiWong)
	if !errors.Is(err, classic.ErrNotApplicable) {
		t.Errorf("multi-table outer block: got %v, want ErrNotApplicable", err)
	}
}

func TestClassicNoOpOnUncorrelated(t *testing.T) {
	db := tpcd.EmpDept()
	for _, apply := range []func(*qgm.Graph) error{classic.ApplyKim, classic.ApplyDayal} {
		g := bind(t, db, "select name from dept where budget < 10000")
		if err := apply(g); err != nil {
			t.Errorf("uncorrelated query rejected: %v", err)
		}
	}
}

func TestDayalAvgExpressionWrapper(t *testing.T) {
	// The subquery's projection multiplies the aggregate; Dayal must
	// recompose it above the new group box.
	expectEqual(t, tpcd.Generate(tpcd.Config{SF: 0.02, Seed: 7}), tpcd.Query2, engine.Dayal)
}
