package classic

import (
	"fmt"

	"decorr/internal/qgm"
)

// ApplyKim rewrites every correlated scalar aggregate subquery with Kim's
// method [Kim82]: the subquery becomes an unrestricted grouped table
// expression keyed on the (inner side of the) correlation columns, and the
// correlation predicate moves to the outer block as an ordinary join.
//
// Two properties of the original algorithm are reproduced deliberately:
//
//   - the aggregate is computed for every group in the inner table, not
//     just the bindings the outer block needs (the paper's performance
//     criticism), and
//
//   - groups absent from the inner table produce no row at all, so a
//     COUNT(*) that should have been 0 silently disappears — the COUNT bug
//     [Kie84]. TestCountBug asserts this historically faithful wrongness.
func ApplyKim(g *qgm.Graph) error {
	for _, outer := range qgm.Boxes(g.Root) {
		if outer.Kind != qgm.BoxSelect {
			continue
		}
		for _, q := range append([]*qgm.Quantifier(nil), outer.Quants...) {
			if q.Kind != qgm.QScalar || !qgm.CorrelatedTo(q.Input, outer) {
				continue
			}
			if err := kimOne(g, outer, q); err != nil {
				return err
			}
		}
	}
	if remainingCorrelation(g) {
		return fmt.Errorf("%w: Kim's method left correlation behind (non-linear or non-aggregate subquery)", ErrNotApplicable)
	}
	return nil
}

func kimOne(g *qgm.Graph, outer *qgm.Box, q *qgm.Quantifier) error {
	p, err := findAggPattern(outer, q)
	if err != nil {
		return err
	}
	if err := p.decompose(); err != nil {
		return err
	}
	if len(p.outerRefs) == 0 {
		return fmt.Errorf("%w: no correlated predicate found", ErrNotApplicable)
	}

	// The inner correlation expressions become extra body outputs...
	bodyBase := len(p.body.Cols)
	for i, e := range p.innerExprs {
		p.body.Cols = append(p.body.Cols, qgm.OutCol{
			Name: fmt.Sprintf("k%d", i), Expr: e,
		})
	}
	// ...the group box groups by them and passes them through...
	gq := p.group.Quants[0]
	groupBase := len(p.group.Cols)
	for i := range p.innerExprs {
		ref := qgm.Ref(gq, bodyBase+i)
		p.group.GroupBy = append(p.group.GroupBy, ref)
		p.group.Cols = append(p.group.Cols, qgm.OutCol{
			Name: fmt.Sprintf("k%d", i), Expr: qgm.Ref(gq, bodyBase+i),
		})
	}
	// ...and each SELECT wrapper passes them through as well (walking from
	// the innermost wrapper outward).
	prev := groupBase
	for i := len(p.chain) - 1; i >= 0; i-- {
		w := p.chain[i]
		wq := w.Quants[0]
		base := len(w.Cols)
		for j := range p.innerExprs {
			w.Cols = append(w.Cols, qgm.OutCol{
				Name: fmt.Sprintf("k%d", j), Expr: qgm.Ref(wq, prev+j),
			})
		}
		prev = base
	}
	// The outer block joins the grouped table expression on the former
	// correlation columns.
	for i, ref := range p.outerRefs {
		outer.Preds = append(outer.Preds, qgm.NewEq(
			&qgm.ColRef{Q: ref.Q, Col: ref.Col}, qgm.Ref(q, prev+i)))
	}
	q.Kind = qgm.QForEach
	q.Input.Label = "Temp(Kim)"
	return nil
}
