package classic

import (
	"fmt"

	"decorr/internal/core"
	"decorr/internal/qgm"
)

// ApplyGanskiWong applies the Ganski/Wong method [GW87]. As §2 and §7 of
// the paper explain, it is the single-table special case of magic
// decorrelation: a temporary table of distinct correlation values is
// projected from the (single) outer relation and joined into the subquery
// through an outer join. The paper's criticisms are enforced as
// applicability limits: the outer block must consist of exactly one base
// relation plus the correlated aggregate subquery (no supplementary table
// is ever built), and the query must be linear.
func ApplyGanskiWong(g *qgm.Graph, order core.Orderer) error {
	outer := g.Root
	if outer.Kind != qgm.BoxSelect {
		return fmt.Errorf("%w: Ganski/Wong needs a SELECT outer block", ErrNotApplicable)
	}
	var scalar *qgm.Quantifier
	tables := 0
	for _, q := range outer.Quants {
		switch {
		case q.Kind == qgm.QScalar && qgm.CorrelatedTo(q.Input, outer):
			if scalar != nil {
				return fmt.Errorf("%w: Ganski/Wong handles a single correlated subquery", ErrNotApplicable)
			}
			scalar = q
		case q.Kind == qgm.QForEach && q.Input.Kind == qgm.BoxBase:
			tables++
		default:
			return fmt.Errorf("%w: outer block is more than one base relation", ErrNotApplicable)
		}
	}
	if scalar == nil {
		if remainingCorrelation(g) {
			return fmt.Errorf("%w: correlation is not a scalar subquery of the outer block", ErrNotApplicable)
		}
		return nil
	}
	if tables != 1 {
		return fmt.Errorf("%w: Ganski/Wong requires exactly one outer relation, found %d", ErrNotApplicable, tables)
	}
	// Shape-check the subquery the way the original method could handle.
	if _, err := findAggPattern(outer, scalar); err != nil {
		return err
	}
	// The mechanics coincide with magic decorrelation restricted to this
	// shape; the "supplementary table" degenerates to the single relation.
	opts := core.Options{UseOuterJoin: true, Order: order}
	return core.Decorrelate(g, opts, nil)
}
