package classic

import (
	"fmt"

	"decorr/internal/qgm"
)

// ApplyDayal rewrites the query with Dayal's method [Day87]: the outer
// block and the correlated aggregate subquery merge into a single left
// outer join, grouped by a key of the outer relations, with the aggregate
// recomputed per outer row. COUNT(*) becomes COUNT(inner witness) so that
// unmatched outer rows count zero — Dayal's fix for the COUNT bug.
//
// The method's limitations are enforced as the paper states them: it works
// "only for linearly structured queries with SELECT and GROUPBY
// constructs", and it needs declared keys on the outer relations. Its
// performance problems also fall out structurally: the join of all
// relations happens before any aggregation, and duplicate correlation
// values cause repeated aggregate computation.
func ApplyDayal(g *qgm.Graph) error {
	// Locate the (single) SELECT block that owns a correlated scalar
	// subquery; in an aggregate query like the paper's Query 2 that block
	// sits below the outer GROUP BY.
	var outer *qgm.Box
	var scalar *qgm.Quantifier
	for _, b := range qgm.Boxes(g.Root) {
		if b.Kind != qgm.BoxSelect {
			continue
		}
		for _, q := range b.Quants {
			if q.Kind == qgm.QScalar && qgm.CorrelatedTo(q.Input, b) {
				if scalar != nil {
					return fmt.Errorf("%w: Dayal's method handles a single correlated subquery", ErrNotApplicable)
				}
				outer, scalar = b, q
			}
		}
	}
	if scalar == nil {
		if remainingCorrelation(g) {
			return fmt.Errorf("%w: correlation is not a scalar aggregate subquery of a SELECT block", ErrNotApplicable)
		}
		return nil
	}
	for _, q := range outer.Quants {
		if q == scalar {
			continue
		}
		if q.Kind != qgm.QForEach {
			return fmt.Errorf("%w: outer block has a quantified predicate", ErrNotApplicable)
		}
		if qgm.IsCorrelated(q.Input) {
			return fmt.Errorf("%w: outer FROM item is itself correlated", ErrNotApplicable)
		}
	}
	p, err := findAggPattern(outer, scalar)
	if err != nil {
		return err
	}
	if err := p.decompose(); err != nil {
		return err
	}
	if len(p.outerRefs) == 0 {
		return fmt.Errorf("%w: no correlated predicate found", ErrNotApplicable)
	}

	// L: the outer block's own computation (its FROM items and the
	// predicates that do not involve the subquery value).
	l := g.NewBox(qgm.BoxSelect, "Dayal-L")
	for _, q := range append([]*qgm.Quantifier(nil), outer.Quants...) {
		if q == scalar {
			continue
		}
		outer.RemoveQuant(q)
		q.Owner = l
		l.Quants = append(l.Quants, q)
	}
	var keepPreds []qgm.Expr
	for _, pred := range outer.Preds {
		if qgm.RefsQuant(pred, scalar) {
			keepPreds = append(keepPreds, pred)
		} else {
			l.Preds = append(l.Preds, pred)
		}
	}
	outer.Preds = nil

	// L outputs: every outer column referenced anywhere (outputs, the
	// kept predicates, the correlation) plus a declared key of each outer
	// relation — the GROUP BY key that preserves duplicate semantics.
	lpos := map[qgm.RefKey]int{}
	addL := func(q *qgm.Quantifier, col int) int {
		k := qgm.RefKey{Q: q, Col: col}
		if p, ok := lpos[k]; ok {
			return p
		}
		name := fmt.Sprintf("l%d", len(l.Cols))
		if col < len(q.Input.Cols) && q.Input.Cols[col].Name != "" {
			name = q.Input.Cols[col].Name
		}
		lpos[k] = len(l.Cols)
		l.Cols = append(l.Cols, qgm.OutCol{Name: name, Expr: qgm.Ref(q, col)})
		return lpos[k]
	}
	for _, q := range l.Quants {
		if q.Kind != qgm.QForEach {
			continue
		}
		in := q.Input
		if in.Kind != qgm.BoxBase || len(in.Table.Keys) == 0 {
			return fmt.Errorf("%w: outer relation %q has no declared key for Dayal's GROUP BY", ErrNotApplicable, in.Label)
		}
		for _, kc := range in.Table.Keys[0] {
			addL(q, kc)
		}
	}
	collect := func(e qgm.Expr) {
		for _, r := range qgm.Refs(e) {
			if r.Q.Owner == l {
				addL(r.Q, r.Col)
			}
		}
	}
	for _, c := range outer.Cols {
		collect(c.Expr)
	}
	for _, pred := range keepPreds {
		collect(pred)
	}
	for _, ref := range p.outerRefs {
		collect(ref)
	}

	// R: the subquery body, exposing its aggregate arguments and the inner
	// correlation expressions (the join columns, doubling as non-NULL
	// witnesses for COUNT).
	r := p.body
	r.Label = "Dayal-R"
	rInnerBase := len(r.Cols)
	for i, e := range p.innerExprs {
		r.Cols = append(r.Cols, qgm.OutCol{Name: fmt.Sprintf("k%d", i), Expr: e})
	}

	// J: L LOJ R on the former correlation predicates.
	j := g.NewBox(qgm.BoxLeftJoin, "Dayal-LOJ")
	ql := g.AddQuant(j, qgm.QForEach, l)
	qr := g.AddQuant(j, qgm.QForEach, r)
	for i, ref := range p.outerRefs {
		j.Preds = append(j.Preds, qgm.NewEq(
			qgm.Ref(ql, lpos[qgm.RefKey{Q: ref.Q, Col: ref.Col}]),
			qgm.Ref(qr, rInnerBase+i)))
	}
	for i, c := range l.Cols {
		j.Cols = append(j.Cols, qgm.OutCol{Name: c.Name, Expr: qgm.Ref(ql, i)})
	}
	for i, c := range r.Cols {
		j.Cols = append(j.Cols, qgm.OutCol{Name: c.Name, Expr: qgm.Ref(qr, i)})
	}

	// G: group the join by all L columns (they include the keys).
	grp := g.NewBox(qgm.BoxGroup, "Dayal-G")
	qj := g.AddQuant(grp, qgm.QForEach, j)
	for i, c := range l.Cols {
		grp.GroupBy = append(grp.GroupBy, qgm.Ref(qj, i))
		grp.Cols = append(grp.Cols, qgm.OutCol{Name: c.Name, Expr: qgm.Ref(qj, i)})
	}
	aggBase := len(grp.Cols)
	for i, c := range p.group.Cols {
		agg, ok := c.Expr.(*qgm.Agg)
		if !ok {
			return fmt.Errorf("%w: aggregate box output %q is not a plain aggregate", ErrNotApplicable, c.Name)
		}
		na := &qgm.Agg{Op: agg.Op, Distinct: agg.Distinct}
		if agg.Op == qgm.AggCountStar {
			// COUNT(*) over the outer join would count the NULL-extended
			// row; count the witness column instead.
			na.Op = qgm.AggCount
			na.Arg = qgm.Ref(qj, len(l.Cols)+rInnerBase)
		} else if agg.Arg != nil {
			ar, ok := agg.Arg.(*qgm.ColRef)
			if !ok {
				return fmt.Errorf("%w: aggregate argument too complex", ErrNotApplicable)
			}
			na.Arg = qgm.Ref(qj, len(l.Cols)+ar.Col)
		}
		grp.Cols = append(grp.Cols, qgm.OutCol{Name: fmt.Sprintf("a%d", i), Expr: na})
	}

	// Rebuild the outer block on top of G: its outputs and the predicates
	// that used the subquery value, with the value recomposed through the
	// subquery's wrapper chain.
	qg := g.AddQuant(outer, qgm.QForEach, grp)
	outer.RemoveQuant(scalar)
	valueExpr := composeWrapperValue(p, qg, aggBase)
	rewriteMap := func(e qgm.Expr) qgm.Expr {
		return qgm.Rewrite(e, func(x qgm.Expr) qgm.Expr {
			if r, ok := x.(*qgm.ColRef); ok {
				if r.Q == scalar {
					if r.Col >= len(valueExpr) {
						return x
					}
					return qgm.CloneExpr(valueExpr[r.Col])
				}
				if r.Q.Owner == l {
					return qgm.Ref(qg, lpos[qgm.RefKey{Q: r.Q, Col: r.Col}])
				}
			}
			return x
		})
	}
	for i := range outer.Cols {
		outer.Cols[i].Expr = rewriteMap(outer.Cols[i].Expr)
	}
	for _, pred := range keepPreds {
		outer.Preds = append(outer.Preds, rewriteMap(pred))
	}
	return nil
}

// composeWrapperValue rebuilds, for each output column of the subquery's
// top box, an expression over the new group box: the wrapper chain's
// projections are inlined over the aggregate outputs.
func composeWrapperValue(p *aggPattern, qg *qgm.Quantifier, aggBase int) []qgm.Expr {
	// Start at the group box: column i of the original group box lives at
	// aggBase+i in the new one.
	cur := make([]qgm.Expr, len(p.group.Cols))
	for i := range p.group.Cols {
		cur[i] = qgm.Ref(qg, aggBase+i)
	}
	for i := len(p.chain) - 1; i >= 0; i-- {
		w := p.chain[i]
		next := make([]qgm.Expr, len(w.Cols))
		for ci, c := range w.Cols {
			next[ci] = qgm.Rewrite(c.Expr, func(x qgm.Expr) qgm.Expr {
				if r, ok := x.(*qgm.ColRef); ok && r.Q == w.Quants[0] {
					if r.Col < len(cur) {
						return qgm.CloneExpr(cur[r.Col])
					}
				}
				return x
			})
		}
		cur = next
	}
	return cur
}
