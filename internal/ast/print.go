package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// FormatQuery renders a query expression back to SQL in this repository's
// dialect. The output re-parses to a structurally identical AST (the
// roundtrip property tested in internal/parser); it is used by tooling to
// display normalized queries and stored view definitions.
func FormatQuery(q QueryExpr) string {
	var b strings.Builder
	formatQuery(&b, q)
	return b.String()
}

func formatQuery(b *strings.Builder, q QueryExpr) {
	switch x := q.(type) {
	case *Select:
		formatSelect(b, x)
	case *SetOp:
		b.WriteString("(")
		formatQuery(b, x.Left)
		b.WriteString(") ")
		b.WriteString(x.Op.String())
		if x.All {
			b.WriteString(" ALL")
		}
		b.WriteString(" (")
		formatQuery(b, x.Right)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "/* unknown query %T */", q)
	}
}

func formatSelect(b *strings.Builder, s *Select) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.Qualifier != "":
			b.WriteString(it.Qualifier + ".*")
		case it.Star:
			b.WriteString("*")
		default:
			b.WriteString(FormatExpr(it.Expr))
			if it.Alias != "" {
				b.WriteString(" AS " + it.Alias)
			}
		}
	}
	b.WriteString(" FROM ")
	for i, fi := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		formatFromItem(b, fi)
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + FormatExpr(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(FormatExpr(e))
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + FormatExpr(s.Having))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(FormatExpr(o.Expr))
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(b, " LIMIT %d", s.Limit)
	}
}

func formatFromItem(b *strings.Builder, fi FromItem) {
	if fi.Join != nil {
		formatFromItem(b, fi.Join.Left)
		if fi.Join.Outer {
			b.WriteString(" LEFT OUTER JOIN ")
		} else {
			b.WriteString(" INNER JOIN ")
		}
		formatFromItem(b, fi.Join.Right)
		b.WriteString(" ON " + FormatExpr(fi.Join.On))
		return
	}
	if fi.Table != "" {
		b.WriteString(fi.Table)
	} else {
		b.WriteString("(")
		formatQuery(b, fi.Sub)
		b.WriteString(")")
	}
	if fi.Alias != "" {
		b.WriteString(" AS " + fi.Alias)
		if len(fi.ColAliases) > 0 {
			b.WriteString("(" + strings.Join(fi.ColAliases, ", ") + ")")
		}
	}
}

// FormatExpr renders an expression, fully parenthesized so precedence
// never needs reconstructing.
func FormatExpr(e Expr) string {
	switch x := e.(type) {
	case *ColRef:
		if x.Qualifier != "" {
			return x.Qualifier + "." + x.Name
		}
		return x.Name
	case *IntLit:
		return strconv.FormatInt(x.V, 10)
	case *FloatLit:
		s := strconv.FormatFloat(x.V, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	case *StringLit:
		return "'" + strings.ReplaceAll(x.V, "'", "''") + "'"
	case *NullLit:
		return "NULL"
	case *Param:
		// Placeholders are positional; re-parsing reassigns the same
		// indexes in text order, so "?" round-trips.
		return "?"
	case *BoolLit:
		if x.V {
			return "TRUE"
		}
		return "FALSE"
	case *Bin:
		return "(" + FormatExpr(x.L) + " " + x.Op.String() + " " + FormatExpr(x.R) + ")"
	case *Not:
		return "(NOT " + FormatExpr(x.E) + ")"
	case *Neg:
		return "(- " + FormatExpr(x.E) + ")"
	case *IsNull:
		if x.Negate {
			return "(" + FormatExpr(x.E) + " IS NOT NULL)"
		}
		return "(" + FormatExpr(x.E) + " IS NULL)"
	case *Like:
		op := " LIKE "
		if x.Negate {
			op = " NOT LIKE "
		}
		return "(" + FormatExpr(x.E) + op + FormatExpr(x.Pattern) + ")"
	case *Between:
		op := " BETWEEN "
		if x.Negate {
			op = " NOT BETWEEN "
		}
		return "(" + FormatExpr(x.E) + op + FormatExpr(x.Lo) + " AND " + FormatExpr(x.Hi) + ")"
	case *InList:
		op := " IN ("
		if x.Negate {
			op = " NOT IN ("
		}
		items := make([]string, len(x.List))
		for i, it := range x.List {
			items[i] = FormatExpr(it)
		}
		return "(" + FormatExpr(x.E) + op + strings.Join(items, ", ") + "))"
	case *InSubquery:
		op := " IN ("
		if x.Negate {
			op = " NOT IN ("
		}
		return "(" + FormatExpr(x.E) + op + FormatQuery(x.Sub) + "))"
	case *Exists:
		prefix := "EXISTS ("
		if x.Negate {
			prefix = "NOT EXISTS ("
		}
		return "(" + prefix + FormatQuery(x.Sub) + "))"
	case *QuantCmp:
		quant := "ANY"
		if x.All {
			quant = "ALL"
		}
		return "(" + FormatExpr(x.E) + " " + x.Op.String() + " " + quant + " (" + FormatQuery(x.Sub) + "))"
	case *ScalarSubquery:
		return "(" + FormatQuery(x.Sub) + ")"
	case *CaseExpr:
		var b strings.Builder
		b.WriteString("CASE")
		for _, w := range x.Whens {
			b.WriteString(" WHEN " + FormatExpr(w.Cond) + " THEN " + FormatExpr(w.Result))
		}
		if x.Else != nil {
			b.WriteString(" ELSE " + FormatExpr(x.Else))
		}
		b.WriteString(" END")
		return b.String()
	case *FuncCall:
		if x.Star {
			return x.Name + "(*)"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = FormatExpr(a)
		}
		d := ""
		if x.Distinct {
			d = "DISTINCT "
		}
		return x.Name + "(" + d + strings.Join(args, ", ") + ")"
	}
	return fmt.Sprintf("/* unknown expr %T */", e)
}
