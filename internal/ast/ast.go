// Package ast defines the abstract syntax tree produced by the SQL parser.
// The grammar is the SQL-92 subset exercised by the paper: SELECT blocks
// with correlated scalar, EXISTS/IN and quantified (ANY/ALL) subqueries,
// derived tables, GROUP BY / HAVING, and UNION [ALL].
package ast

import "fmt"

// Statement is a top-level SQL statement: a query expression or a view
// definition.
type Statement interface{ statement() }

// QueryExpr is a full query expression: either a Select block or a set
// operation combining two query expressions.
type QueryExpr interface{ queryExpr() }

// CreateView is "CREATE VIEW name [(cols)] AS query".
type CreateView struct {
	Name  string
	Cols  []string
	Query QueryExpr
}

func (*CreateView) statement() {}
func (*Select) statement()     {}
func (*SetOp) statement()      {}

// Select is a single SELECT ... FROM ... WHERE ... GROUP BY ... HAVING
// block with an optional ORDER BY (meaningful only at the top level).
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	// Limit caps the result cardinality; negative means no limit.
	Limit int64
}

func (*Select) queryExpr() {}

// SetOpKind enumerates set operations.
type SetOpKind uint8

const (
	// Union is UNION [ALL].
	Union SetOpKind = iota
	// Intersect is INTERSECT [ALL].
	Intersect
	// Except is EXCEPT [ALL].
	Except
)

// String returns the SQL keyword.
func (k SetOpKind) String() string {
	switch k {
	case Intersect:
		return "INTERSECT"
	case Except:
		return "EXCEPT"
	}
	return "UNION"
}

// SetOp combines two query expressions with UNION/INTERSECT/EXCEPT,
// optionally ALL.
type SetOp struct {
	Op          SetOpKind
	All         bool
	Left, Right QueryExpr
}

func (*SetOp) queryExpr() {}

// SelectItem is one element of the select list: an expression with an
// optional alias, or a star (possibly qualified, as in "s.*").
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	Qualifier string // for "q.*"
}

// FromItem is a FROM-clause element: a base table reference, a derived
// table (subquery), or a join clause; tables and subqueries carry an
// optional alias and column aliases.
type FromItem struct {
	Table      string
	Sub        QueryExpr
	Join       *JoinClause
	Alias      string
	ColAliases []string
}

// JoinClause is "left [OUTER] JOIN right ON cond" (Outer true) or an
// INNER JOIN (Outer false). The paper's transformed queries use the left
// outer join directly ("From DEPT D LOJ EMP E On (...)", §2).
type JoinClause struct {
	Left, Right FromItem
	On          Expr
	Outer       bool
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is any scalar or predicate expression.
type Expr interface{ expr() }

// ColRef is a possibly qualified column reference.
type ColRef struct {
	Qualifier string // empty when unqualified
	Name      string
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

// StringLit is a single-quoted string literal.
type StringLit struct{ V string }

// NullLit is the NULL literal.
type NullLit struct{}

// Param is a `?` placeholder. Idx is the zero-based position of the
// placeholder in the statement text; values are supplied at execution
// time, so one prepared plan serves many bindings.
type Param struct{ Idx int }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ V bool }

// BinOp enumerates binary operators (arithmetic, comparison, boolean).
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// String returns the SQL spelling of the operator.
func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	}
	return fmt.Sprintf("BinOp(%d)", uint8(op))
}

// IsComparison reports whether the operator is a comparison.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// Bin is a binary expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Not is logical negation.
type Not struct{ E Expr }

// Neg is arithmetic negation.
type Neg struct{ E Expr }

// IsNull is "expr IS [NOT] NULL".
type IsNull struct {
	E      Expr
	Negate bool
}

// Like is "expr [NOT] LIKE pattern".
type Like struct {
	E, Pattern Expr
	Negate     bool
}

// Between is "expr [NOT] BETWEEN lo AND hi".
type Between struct {
	E, Lo, Hi Expr
	Negate    bool
}

// InList is "expr [NOT] IN (e1, e2, ...)".
type InList struct {
	E      Expr
	List   []Expr
	Negate bool
}

// InSubquery is "expr [NOT] IN (subquery)".
type InSubquery struct {
	E      Expr
	Sub    QueryExpr
	Negate bool
}

// Exists is "[NOT] EXISTS (subquery)".
type Exists struct {
	Sub    QueryExpr
	Negate bool
}

// QuantCmp is "expr op ANY (subquery)" or "expr op ALL (subquery)".
type QuantCmp struct {
	Op  BinOp // comparison operator
	E   Expr
	All bool // true: ALL, false: ANY/SOME
	Sub QueryExpr
}

// ScalarSubquery is a parenthesized subquery used as a scalar value.
type ScalarSubquery struct{ Sub QueryExpr }

// WhenClause is one WHEN cond THEN result arm of a CASE expression.
type WhenClause struct {
	Cond, Result Expr
}

// CaseExpr is a searched CASE (the operand form is desugared by the
// parser into equality conditions).
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr // nil means ELSE NULL
}

// FuncCall is an aggregate or scalar function call. Star marks COUNT(*).
type FuncCall struct {
	Name     string // lower-cased
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*ColRef) expr()         {}
func (*IntLit) expr()         {}
func (*FloatLit) expr()       {}
func (*StringLit) expr()      {}
func (*NullLit) expr()        {}
func (*Param) expr()          {}
func (*BoolLit) expr()        {}
func (*Bin) expr()            {}
func (*Not) expr()            {}
func (*Neg) expr()            {}
func (*IsNull) expr()         {}
func (*Like) expr()           {}
func (*Between) expr()        {}
func (*InList) expr()         {}
func (*InSubquery) expr()     {}
func (*Exists) expr()         {}
func (*QuantCmp) expr()       {}
func (*ScalarSubquery) expr() {}
func (*CaseExpr) expr()       {}
func (*FuncCall) expr()       {}

// AggFuncs lists the aggregate function names recognized by the binder.
var AggFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// IsAggregate reports whether e is an aggregate function call (shallow).
func IsAggregate(e Expr) bool {
	f, ok := e.(*FuncCall)
	return ok && AggFuncs[f.Name]
}

// ContainsAggregate reports whether any aggregate function call occurs in
// e, without descending into subqueries (their aggregates belong to them).
func ContainsAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *ScalarSubquery, *Exists, *InSubquery, *QuantCmp:
			if _, isQ := x.(*QuantCmp); isQ {
				// still visit the comparison's left expression
				return true
			}
			return false
		}
		if IsAggregate(x) {
			found = true
		}
		return true
	})
	return found
}

// WalkExpr visits e and its sub-expressions in prefix order. If f returns
// false the walk does not descend into the node's children. Subquery bodies
// are never visited (only the scalar parts of subquery-bearing nodes are).
func WalkExpr(e Expr, f func(Expr) bool) {
	if e == nil {
		return
	}
	if !f(e) {
		return
	}
	switch x := e.(type) {
	case *Bin:
		WalkExpr(x.L, f)
		WalkExpr(x.R, f)
	case *Not:
		WalkExpr(x.E, f)
	case *Neg:
		WalkExpr(x.E, f)
	case *IsNull:
		WalkExpr(x.E, f)
	case *Like:
		WalkExpr(x.E, f)
		WalkExpr(x.Pattern, f)
	case *Between:
		WalkExpr(x.E, f)
		WalkExpr(x.Lo, f)
		WalkExpr(x.Hi, f)
	case *InList:
		WalkExpr(x.E, f)
		for _, it := range x.List {
			WalkExpr(it, f)
		}
	case *InSubquery:
		WalkExpr(x.E, f)
	case *QuantCmp:
		WalkExpr(x.E, f)
	case *CaseExpr:
		for _, w := range x.Whens {
			WalkExpr(w.Cond, f)
			WalkExpr(w.Result, f)
		}
		WalkExpr(x.Else, f)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, f)
		}
	}
}
