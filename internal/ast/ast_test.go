package ast

import "testing"

func TestContainsAggregate(t *testing.T) {
	agg := &FuncCall{Name: "count", Star: true}
	plain := &FuncCall{Name: "coalesce", Args: []Expr{&ColRef{Name: "a"}}}
	cases := []struct {
		e    Expr
		want bool
	}{
		{agg, true},
		{plain, false},
		{&Bin{Op: OpAdd, L: &IntLit{V: 1}, R: agg}, true},
		{&Not{E: &Bin{Op: OpGt, L: agg, R: &IntLit{V: 0}}}, true},
		{&ColRef{Name: "x"}, false},
		// Aggregates inside subqueries belong to the subquery, not to the
		// enclosing expression.
		{&ScalarSubquery{Sub: &Select{}}, false},
		{&InSubquery{E: &ColRef{Name: "x"}, Sub: &Select{}}, false},
		{&QuantCmp{Op: OpGt, E: agg, Sub: &Select{}}, true}, // lhs still counts
		{&CaseExpr{Whens: []WhenClause{{Cond: &BoolLit{V: true}, Result: agg}}}, true},
	}
	for i, c := range cases {
		if got := ContainsAggregate(c.e); got != c.want {
			t.Errorf("case %d: ContainsAggregate = %v want %v", i, got, c.want)
		}
	}
}

func TestWalkExprVisitsEverything(t *testing.T) {
	e := &Bin{Op: OpAnd,
		L: &Between{E: &ColRef{Name: "a"}, Lo: &IntLit{V: 1}, Hi: &IntLit{V: 2}},
		R: &Like{E: &ColRef{Name: "b"}, Pattern: &StringLit{V: "%x"}},
	}
	var colRefs, lits int
	WalkExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *ColRef:
			colRefs++
		case *IntLit, *StringLit:
			lits++
		}
		return true
	})
	if colRefs != 2 || lits != 3 {
		t.Errorf("visited %d col refs, %d literals", colRefs, lits)
	}
	// Early cut-off: returning false stops descent.
	visited := 0
	WalkExpr(e, func(x Expr) bool {
		visited++
		return false
	})
	if visited != 1 {
		t.Errorf("cut-off walk visited %d nodes", visited)
	}
}

func TestBinOpHelpers(t *testing.T) {
	if !OpEq.IsComparison() || !OpGe.IsComparison() || OpAnd.IsComparison() || OpMul.IsComparison() {
		t.Error("IsComparison misclassifies")
	}
	for op, want := range map[BinOp]string{
		OpAdd: "+", OpNe: "<>", OpAnd: "AND", OpLe: "<=",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q want %q", op, op.String(), want)
		}
	}
}

func TestSetOpKindString(t *testing.T) {
	if Union.String() != "UNION" || Intersect.String() != "INTERSECT" || Except.String() != "EXCEPT" {
		t.Error("set-op names broken")
	}
}

func TestFormatExprStableShapes(t *testing.T) {
	cases := map[string]Expr{
		"(a + 3)":         &Bin{Op: OpAdd, L: &ColRef{Name: "a"}, R: &IntLit{V: 3}},
		"t.a":             &ColRef{Qualifier: "t", Name: "a"},
		"NULL":            &NullLit{},
		"TRUE":            &BoolLit{V: true},
		"'it''s'":         &StringLit{V: "it's"},
		"count(*)":        &FuncCall{Name: "count", Star: true},
		"sum(DISTINCT a)": &FuncCall{Name: "sum", Distinct: true, Args: []Expr{&ColRef{Name: "a"}}},
	}
	for want, e := range cases {
		if got := FormatExpr(e); got != want {
			t.Errorf("FormatExpr = %q want %q", got, want)
		}
	}
}
