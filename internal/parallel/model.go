package parallel

import (
	"math"

	"decorr/internal/exec"
	"decorr/internal/qgm"
	"decorr/internal/storage"
)

// PlanCost estimates the shared-nothing execution cost of an arbitrary QGM
// plan — the generalization of the §6 walk-through from the example query
// to any (possibly decorrelated) plan in this repository. It tracks, per
// intermediate relation, which source column it is hash-partitioned on,
// and charges:
//
//   - repartitioning: rows × (n-1)/n shipped when join or grouping keys
//     do not match the current partitioning;
//   - broadcasts: rows × (n-1) for non-equi joins and for probing
//     materialized subqueries;
//   - correlated subqueries (nested iteration): per binding, a broadcast
//     of the binding, n local fragments, and n-1 replies — the §6.1
//     pattern;
//   - fragments: n per parallel phase, plus n per correlated invocation;
//   - work: the single-node cost model's row operations.
//
// Cardinalities come from the executor's estimator over the actual
// database, so the model's relative comparisons (NI plan vs decorrelated
// plan) reflect real data sizes.
func PlanCost(db *storage.DB, g *qgm.Graph, cfg Config) Metrics {
	cfg = cfg.normalized()
	ex := exec.New(db, exec.Options{})
	_ = ex.EstimateCost(g) // primes reference counts and the cost memo
	m := &Metrics{}
	w := &planWalker{db: db, ex: ex, cfg: cfg, m: m, seen: map[*qgm.Box]relInfo{}}
	w.walk(g.Root)
	m.Work = int64(ex.EstimateCost(g))
	return *m
}

// relInfo describes a distributed intermediate relation.
type relInfo struct {
	card float64
	// key is the canonical id of the source column the relation is
	// hash-partitioned on ("" when partitioning is arbitrary/unknown).
	key string
}

type planWalker struct {
	db   *storage.DB
	ex   *exec.Exec
	cfg  Config
	m    *Metrics
	seen map[*qgm.Box]relInfo
}

func (w *planWalker) n() float64 { return float64(w.cfg.Nodes) }

func (w *planWalker) phase() {
	w.m.Fragments += int64(w.cfg.Nodes)
	w.m.Phases++
}

// ship charges moving rows between nodes during a repartition (a 1/n
// fraction stays local).
func (w *planWalker) ship(rows float64) {
	moved := rows * (w.n() - 1) / w.n()
	w.m.Messages += int64(math.Ceil(moved))
	w.m.RowsShipped += int64(math.Ceil(moved))
}

// broadcast charges replicating rows to every other node.
func (w *planWalker) broadcast(rows float64) {
	moved := rows * (w.n() - 1)
	w.m.Messages += int64(math.Ceil(moved))
	w.m.RowsShipped += int64(math.Ceil(moved))
}

// keyOf resolves an expression to the canonical id of the base column it
// carries, chasing bare column references through projections; "" when the
// expression is not a plain carried column.
func keyOf(e qgm.Expr) string {
	r, ok := e.(*qgm.ColRef)
	if !ok {
		return ""
	}
	in := r.Q.Input
	if in.Kind == qgm.BoxBase {
		return boxColID(in, r.Col)
	}
	if r.Col < len(in.Cols) && in.Cols[r.Col].Expr != nil {
		return keyOf(in.Cols[r.Col].Expr)
	}
	// Union-like boxes carry positional columns; identify by box+ordinal.
	return boxColID(in, r.Col)
}

func boxColID(b *qgm.Box, col int) string {
	return string(rune('A'+b.ID%26)) + "#" + itoa(b.ID) + "." + itoa(col)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// walk computes the distributed cost of producing box b once.
func (w *planWalker) walk(b *qgm.Box) relInfo {
	if r, ok := w.seen[b]; ok {
		// Shared box: recomputation cost is already folded into Work via
		// the single-node model; distribution costs are charged once.
		return r
	}
	var r relInfo
	switch b.Kind {
	case qgm.BoxBase:
		w.phase() // parallel scan
		col := 0
		if len(b.Table.Keys) > 0 && len(b.Table.Keys[0]) > 0 {
			col = b.Table.Keys[0][0]
		}
		r = relInfo{card: w.ex.EstimateRows(b), key: boxColID(b, col)}
	case qgm.BoxSelect:
		r = w.walkSelect(b)
	case qgm.BoxGroup:
		r = w.walkGroup(b)
	case qgm.BoxUnion, qgm.BoxIntersect, qgm.BoxExcept:
		var cards float64
		for _, q := range b.Quants {
			child := w.walk(q.Input)
			cards += child.card
		}
		w.phase()
		if b.Distinct || b.Kind != qgm.BoxUnion {
			// Global dedup/set-matching needs co-location by full row.
			w.ship(cards)
		}
		r = relInfo{card: w.ex.EstimateRows(b)}
	case qgm.BoxLeftJoin:
		l := w.walk(b.Quants[0].Input)
		rr := w.walk(b.Quants[1].Input)
		w.phase()
		lk, rk := w.lojKeys(b)
		switch {
		case lk != "" && l.key == lk && rr.key == rk:
			// co-partitioned outer join, local
		case lk != "" && l.key == lk:
			w.ship(rr.card)
		case rk != "" && rr.key == rk:
			w.ship(l.card)
		default:
			w.ship(l.card + rr.card)
		}
		r = relInfo{card: w.ex.EstimateRows(b), key: lk}
	}
	w.seen[b] = r
	return r
}

func (w *planWalker) lojKeys(b *qgm.Box) (string, string) {
	ql, qr := b.Quants[0], b.Quants[1]
	for _, p := range b.Preds {
		bin, ok := p.(*qgm.Bin)
		if !ok || bin.Op != qgm.OpEq {
			continue
		}
		if qgm.RefsQuant(bin.L, ql) && qgm.RefsQuant(bin.R, qr) {
			return keyOf(bin.L), keyOf(bin.R)
		}
		if qgm.RefsQuant(bin.L, qr) && qgm.RefsQuant(bin.R, ql) {
			return keyOf(bin.R), keyOf(bin.L)
		}
	}
	return "", ""
}

func (w *planWalker) walkGroup(b *qgm.Box) relInfo {
	child := w.walk(b.Quants[0].Input)
	w.phase()
	if len(b.GroupBy) == 0 {
		// Global aggregate: local partials, one combining message per
		// node to the coordinator, result replicated back.
		w.m.Messages += 2 * int64(w.cfg.Nodes-1)
		w.m.RowsShipped += 2 * int64(w.cfg.Nodes-1)
		return relInfo{card: 1}
	}
	// Grouping is local when the input is partitioned on a grouping
	// column (§6.2: "the aggregation can therefore be performed locally").
	local := false
	var gkey string
	for _, ge := range b.GroupBy {
		if k := keyOf(ge); k != "" {
			if gkey == "" {
				gkey = k
			}
			if k == child.key {
				local = true
				gkey = k
			}
		}
	}
	if !local {
		w.ship(child.card)
	}
	return relInfo{card: w.ex.EstimateRows(b), key: gkey}
}

func (w *planWalker) walkSelect(b *qgm.Box) relInfo {
	own := map[*qgm.Quantifier]bool{}
	for _, q := range b.Quants {
		own[q] = true
	}
	order := w.ex.JoinOrder(b)
	cur := relInfo{card: 1}
	first := true
	bound := map[*qgm.Quantifier]bool{}
	for _, q := range order {
		correlated := false
		for _, fr := range qgm.FreeRefs(q.Input) {
			if own[fr.Q] && !fr.Q.Kind.IsSubquery() {
				correlated = true
				break
			}
		}
		switch {
		case correlated:
			// Nested iteration in shared-nothing form (§6.1): each
			// binding is broadcast, every node runs a fragment, and the
			// partial results come back.
			inv := math.Max(math.Min(cur.card, 1e7), 1)
			w.m.Messages += int64(inv) * 2 * int64(w.cfg.Nodes-1)
			w.m.RowsShipped += int64(inv) * 2 * int64(w.cfg.Nodes-1)
			w.m.Fragments += int64(inv) * int64(w.cfg.Nodes)
			if q.Kind == qgm.QForEach {
				cur.card *= math.Max(w.ex.EstimateRows(q.Input), 0.1)
				cur.key = ""
			}
		case q.Kind == qgm.QScalar || q.Kind.IsSubquery():
			// Materialized once; replicate the (small) result so every
			// node can probe it locally.
			child := w.walk(q.Input)
			w.broadcast(child.card)
			w.phase()
		default:
			child := w.walk(q.Input)
			w.phase()
			if first {
				cur = child
				first = false
				break
			}
			bk, ck := w.joinKeys(b, q, bound)
			switch {
			case ck != "" && child.key == ck && cur.key == bk:
				// co-partitioned local join (the decorrelated §6.2 case)
			case ck != "" && child.key == ck:
				w.ship(cur.card)
				cur.key = bk
			case bk != "" && cur.key == bk:
				w.ship(child.card)
			case ck != "":
				w.ship(cur.card + child.card)
				cur.key = bk
			default:
				// No equality: broadcast the smaller side.
				w.broadcast(math.Min(cur.card, child.card))
			}
			cur.card = math.Max(cur.card*w.ex.EstimateGrowth(b, q, bound), 1)
			if bk != "" {
				cur.key = bk
			}
		}
		bound[q] = true
	}
	out := relInfo{card: w.ex.EstimateRows(b)}
	// Output partitioning survives when some output column carries the
	// current partitioning key.
	for _, c := range b.Cols {
		if keyOf(c.Expr) == cur.key && cur.key != "" {
			out.key = cur.key
			break
		}
	}
	return out
}

// joinKeys finds an equality predicate connecting q to the bound set and
// returns the canonical keys of (bound side, q side).
func (w *planWalker) joinKeys(b *qgm.Box, q *qgm.Quantifier, bound map[*qgm.Quantifier]bool) (string, string) {
	for _, p := range b.Preds {
		bin, ok := p.(*qgm.Bin)
		if !ok || bin.Op != qgm.OpEq {
			continue
		}
		for _, try := range [][2]qgm.Expr{{bin.L, bin.R}, {bin.R, bin.L}} {
			qs, bs := try[0], try[1]
			if !qgm.RefsQuant(qs, q) || qgm.RefsQuant(bs, q) {
				continue
			}
			usable := true
			for oq := range qgm.QuantSet(bs) {
				if oq.Owner == b && !bound[oq] {
					usable = false
					break
				}
			}
			if usable {
				return keyOf(bs), keyOf(qs)
			}
		}
	}
	return "", ""
}
