package parallel_test

import (
	"strings"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/parallel"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

// singleNodeAnswer runs the example query through the real engine.
func singleNodeAnswer(t *testing.T, db *storage.DB) []string {
	t.Helper()
	e := engine.New(db)
	rows, _, err := e.Query(tpcd.ExampleQuery, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r[0].S
	}
	return out
}

func TestSimulatorMatchesEngine(t *testing.T) {
	for _, db := range []*storage.DB{
		tpcd.EmpDept(),
		tpcd.EmpDeptSized(200, 1000, 12, 7),
	} {
		want := singleNodeAnswer(t, db)
		for _, nodes := range []int{1, 2, 4, 8} {
			for _, pl := range []parallel.Placement{parallel.PartitionByPrimaryKey, parallel.PartitionByCorrelation} {
				cfg := parallel.Config{Nodes: nodes, Placement: pl}
				ni, err := parallel.RunNestedIteration(db, cfg)
				if err != nil {
					t.Fatal(err)
				}
				mg, err := parallel.RunMagic(db, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if strings.Join(ni.Rows, ",") != strings.Join(want, ",") {
					t.Errorf("NI n=%d %s: got %v want %v", nodes, pl, ni.Rows, want)
				}
				if strings.Join(mg.Rows, ",") != strings.Join(want, ",") {
					t.Errorf("Magic n=%d %s: got %v want %v", nodes, pl, mg.Rows, want)
				}
			}
		}
	}
}

func TestNestedIterationFragmentGrowthIsQuadratic(t *testing.T) {
	db := tpcd.EmpDeptSized(400, 2000, 16, 3)
	frag := map[int]int64{}
	for _, n := range []int{2, 4, 8} {
		r, err := parallel.RunNestedIteration(db, parallel.Config{Nodes: n})
		if err != nil {
			t.Fatal(err)
		}
		frag[n] = r.Metrics.Fragments
	}
	// Fragments = qualifying-tuples × n: doubling nodes doubles fragments
	// (O(n²) when the workload scales with the cluster, §6.1).
	if frag[4] != 2*frag[2] || frag[8] != 2*frag[4] {
		t.Errorf("NI fragments should scale linearly in n for fixed data: %v", frag)
	}
	mr, err := parallel.RunMagic(db, parallel.Config{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Magic schedules a constant number of fragments per node (5 phases).
	if mr.Metrics.Fragments != 5*8 {
		t.Errorf("magic fragments = %d, want %d", mr.Metrics.Fragments, 5*8)
	}
	if mr.Metrics.Fragments >= frag[8] {
		t.Errorf("magic (%d fragments) should schedule far fewer than NI (%d)",
			mr.Metrics.Fragments, frag[8])
	}
}

func TestMessageAsymptotics(t *testing.T) {
	db := tpcd.EmpDeptSized(400, 2000, 16, 3)
	ni, err := parallel.RunNestedIteration(db, parallel.Config{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := parallel.RunMagic(db, parallel.Config{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ni.Metrics.Messages <= mg.Metrics.Messages {
		t.Errorf("NI should send more messages than magic: ni=%d magic=%d",
			ni.Metrics.Messages, mg.Metrics.Messages)
	}
	if mg.Metrics.Makespan >= ni.Metrics.Makespan {
		t.Errorf("magic makespan %d should beat NI %d", mg.Metrics.Makespan, ni.Metrics.Makespan)
	}
}

func TestCoPartitionedNIIsLocal(t *testing.T) {
	db := tpcd.EmpDeptSized(400, 2000, 16, 3)
	r, err := parallel.RunNestedIteration(db, parallel.Config{Nodes: 8, Placement: parallel.PartitionByCorrelation})
	if err != nil {
		t.Fatal(err)
	}
	// §6.1 case 1: no messages at all when co-partitioned.
	if r.Metrics.Messages != 0 {
		t.Errorf("co-partitioned NI sent %d messages, want 0", r.Metrics.Messages)
	}
}

func TestMagicMakespanImprovesWithNodes(t *testing.T) {
	db := tpcd.EmpDeptSized(800, 4000, 32, 7)
	prev := int64(1 << 62)
	for _, n := range []int{2, 4, 8, 16} {
		r, err := parallel.RunMagic(db, parallel.Config{Nodes: n})
		if err != nil {
			t.Fatal(err)
		}
		if r.Metrics.Makespan >= prev {
			t.Errorf("magic makespan did not improve at n=%d: %d >= %d", n, r.Metrics.Makespan, prev)
		}
		prev = r.Metrics.Makespan
	}
}

func TestSingleNodeDegeneratesGracefully(t *testing.T) {
	db := tpcd.EmpDept()
	ni, err := parallel.RunNestedIteration(db, parallel.Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ni.Metrics.Messages != 0 {
		t.Errorf("single node sent %d messages", ni.Metrics.Messages)
	}
	mg, err := parallel.RunMagic(db, parallel.Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mg.Metrics.Messages != 0 {
		t.Errorf("single-node magic sent %d messages", mg.Metrics.Messages)
	}
}
